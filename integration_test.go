package vmalloc

import (
	"math"
	"testing"

	"vmalloc/internal/core"
)

// Cross-algorithm integration tests at the public API level: every solved
// result must be a valid placement whose reported yield is feasible and
// bounded by the LP relaxation optimum; the meta algorithms must respect
// their documented dominance relations.

func integrationScenarios() []Scenario {
	var out []Scenario
	for _, cov := range []float64{0, 0.6} {
		for _, slack := range []float64{0.4, 0.7} {
			for seed := int64(1); seed <= 2; seed++ {
				out = append(out, Scenario{
					Hosts: 6, Services: 18, COV: cov, Slack: slack, Seed: seed,
				})
			}
		}
	}
	return out
}

func TestIntegrationAllAlgorithmsRespectBoundAndValidity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	algos := []string{AlgoRRND, AlgoRRNZ, AlgoMetaGreedy, AlgoMetaVP, AlgoMetaHVP, AlgoMetaHVPLight}
	for _, scn := range integrationScenarios() {
		p := Generate(scn)
		ub, err := RelaxedUpperBound(p)
		if err != nil {
			t.Fatalf("%s: %v", scn, err)
		}
		for _, algo := range algos {
			res, err := Solve(algo, p, &Options{Seed: 7, Tolerance: 1e-3})
			if err != nil {
				t.Fatalf("%s/%s: %v", scn, algo, err)
			}
			if !res.Solved {
				continue
			}
			if err := res.Placement.Validate(p); err != nil {
				t.Fatalf("%s/%s: invalid placement: %v", scn, algo, err)
			}
			if !FeasibleAtYield(p, res.Placement, res.MinYield-1e-6) {
				t.Fatalf("%s/%s: reported yield %v infeasible", scn, algo, res.MinYield)
			}
			if ub >= 0 && res.MinYield > ub+1e-4 {
				t.Fatalf("%s/%s: yield %v exceeds relaxation bound %v", scn, algo, res.MinYield, ub)
			}
			// Per-service yields must be consistent with the minimum.
			for j, y := range res.Yields {
				if y < res.MinYield-1e-9 {
					t.Fatalf("%s/%s: service %d yield %v below minimum %v", scn, algo, j, y, res.MinYield)
				}
			}
			// Materialized allocations must respect all capacities.
			al, err := core.Materialize(p, res)
			if err != nil {
				t.Fatalf("%s/%s: %v", scn, algo, err)
			}
			if err := al.Check(p, 1e-6); err != nil {
				t.Fatalf("%s/%s: %v", scn, algo, err)
			}
		}
	}
}

func TestIntegrationMetaDominance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for _, scn := range integrationScenarios() {
		p := Generate(scn)
		greedy, _ := Solve(AlgoMetaGreedy, p, nil)
		hvpRes, _ := Solve(AlgoMetaHVP, p, &Options{Tolerance: 1e-3})
		// METAHVP succeeds whenever METAGREEDY does: the HVP set includes
		// first-fit-style packers at yield 0, which succeed whenever any
		// requirement-feasible placement is reachable greedily.
		if greedy.Solved && !hvpRes.Solved {
			t.Fatalf("%s: greedy solved but METAHVP failed", scn)
		}
	}
}

func TestIntegrationExactDominatesHeuristicsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for seed := int64(1); seed <= 4; seed++ {
		p := Generate(Scenario{Hosts: 3, Services: 6, COV: 0.5, Slack: 0.6, Seed: seed})
		exact, err := Solve(AlgoExact, p, &Options{MaxNodes: 20000})
		if err != nil {
			t.Fatal(err)
		}
		heur, err := Solve(AlgoMetaHVP, p, &Options{Tolerance: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		if heur.Solved && !exact.Solved {
			t.Fatalf("seed %d: heuristic solved but exact infeasible", seed)
		}
		if heur.Solved && exact.Solved && heur.MinYield > exact.MinYield+1e-4 {
			t.Fatalf("seed %d: heuristic %v beats exact %v", seed, heur.MinYield, exact.MinYield)
		}
	}
}

func TestIntegrationHomogeneousVPMatchesHVPAtZeroCOV(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	// On perfectly homogeneous platforms bin sorting is a no-op, so METAVP
	// and METAHVP should achieve (nearly) identical yields — the paper's
	// Figure 2 observation at COV 0.
	for seed := int64(1); seed <= 4; seed++ {
		p := Generate(Scenario{Hosts: 6, Services: 24, COV: 0, Slack: 0.5, Seed: seed})
		a, _ := Solve(AlgoMetaVP, p, &Options{Tolerance: 1e-3})
		b, _ := Solve(AlgoMetaHVP, p, &Options{Tolerance: 1e-3})
		if a.Solved != b.Solved {
			t.Fatalf("seed %d: solved mismatch", seed)
		}
		if a.Solved && math.Abs(a.MinYield-b.MinYield) > 0.02 {
			t.Fatalf("seed %d: homogeneous yields diverge: %v vs %v", seed, a.MinYield, b.MinYield)
		}
	}
}
