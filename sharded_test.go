package vmalloc

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// shardedTapeOp is one entry of a deterministic mutation tape shared by
// equivalence and determinism tests.
type shardedTapeOp struct {
	kind    string // add, remove, update, threshold, realloc, repair
	svc     Service
	est     Service
	pick    int
	needs   [4]Vec
	th      float64
	budget  int
	applied bool
}

func shardedTape(n int, seed int64) []shardedTapeOp {
	rng := rand.New(rand.NewSource(seed))
	tape := make([]shardedTapeOp, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%9 == 8:
			tape = append(tape, shardedTapeOp{kind: "realloc"})
		case i%23 == 22:
			tape = append(tape, shardedTapeOp{kind: "repair", budget: 2})
		case i%15 == 14:
			tape = append(tape, shardedTapeOp{kind: "threshold", th: 0.05 + 0.2*rng.Float64()})
		default:
			switch k := rng.Intn(10); {
			case k < 6:
				svc := clusterService(rng)
				est := svc
				est.NeedAgg = svc.NeedAgg.Scale(1 + 0.3*(rng.Float64()-0.5))
				tape = append(tape, shardedTapeOp{kind: "add", svc: svc, est: est})
			case k < 8:
				tape = append(tape, shardedTapeOp{kind: "remove", pick: rng.Int()})
			default:
				nv := Of(rng.Float64()*0.25, 0.02*rng.Float64())
				tape = append(tape, shardedTapeOp{kind: "update", pick: rng.Int(),
					needs: [4]Vec{nv.Clone(), nv.Clone(), nv.Clone(), nv.Clone()}})
			}
		}
	}
	return tape
}

// clusterLike is the mutation surface shared by Cluster and ShardedCluster.
type clusterLike interface {
	AddWithEstimate(trueSvc, estSvc Service) (int, bool, error)
	Remove(id int) bool
	UpdateNeeds(id int, a, b, c, d Vec) error
	SetThreshold(th float64) error
	Reallocate() *ClusterEpoch
	Repair(budget int) *ClusterEpoch
	MinYield(policy SchedPolicy) float64
}

// driveTape applies the tape and returns the per-epoch min yields plus the
// final live id set, both fully determined by the tape.
func driveTape(t *testing.T, c clusterLike, tape []shardedTapeOp) (yields []float64, live []int) {
	t.Helper()
	for i := range tape {
		o := &tape[i]
		switch o.kind {
		case "add":
			id, ok, err := c.AddWithEstimate(o.svc, o.est)
			if err != nil {
				t.Fatalf("op %d add: %v", i, err)
			}
			if ok {
				live = append(live, id)
			}
		case "remove":
			if len(live) == 0 {
				continue
			}
			idx := o.pick % len(live)
			if !c.Remove(live[idx]) {
				t.Fatalf("op %d remove %d failed", i, live[idx])
			}
			live = append(live[:idx], live[idx+1:]...)
		case "update":
			if len(live) == 0 {
				continue
			}
			id := live[o.pick%len(live)]
			if err := c.UpdateNeeds(id, o.needs[0], o.needs[1], o.needs[2], o.needs[3]); err != nil {
				t.Fatalf("op %d update: %v", i, err)
			}
		case "threshold":
			if err := c.SetThreshold(o.th); err != nil {
				t.Fatalf("op %d threshold: %v", i, err)
			}
		case "realloc":
			ce := c.Reallocate()
			yields = append(yields, ce.Result.MinYield, c.MinYield(PolicyAllocCaps))
		case "repair":
			ce := c.Repair(o.budget)
			yields = append(yields, ce.Result.MinYield)
		}
	}
	return yields, live
}

// TestShardedK1Equivalence is the acceptance gate for the sharded tier: a
// one-shard ShardedCluster must follow a fixed-seed mutate/reallocate/repair
// trajectory bit-identically to an unsharded Cluster — same admissions,
// same epoch min yields, same final durable state bytes.
func TestShardedK1Equivalence(t *testing.T) {
	nodes := clusterNodes(12)
	plain, err := NewCluster(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	shd, err := NewShardedCluster(nodes, &ShardedOptions{Shards: 1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	tape := shardedTape(400, 17)
	py, plive := driveTape(t, plain, tape)
	sy, slive := driveTape(t, shd, tape)

	if len(py) != len(sy) {
		t.Fatalf("epoch count differs: %d vs %d", len(py), len(sy))
	}
	for i := range py {
		if py[i] != sy[i] {
			t.Fatalf("epoch sample %d: plain %v != sharded %v (must be bit-identical)", i, py[i], sy[i])
		}
	}
	if len(plive) != len(slive) {
		t.Fatalf("live sets differ: %d vs %d services", len(plive), len(slive))
	}
	for i := range plive {
		if plive[i] != slive[i] {
			t.Fatalf("live id %d differs: %d vs %d", i, plive[i], slive[i])
		}
		pn, _ := plain.Node(plive[i])
		sn, _ := shd.Node(slive[i])
		if pn != sn {
			t.Fatalf("service %d placed on node %d vs %d", plive[i], pn, sn)
		}
	}

	pj, err := json.Marshal(plain.State())
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(shd.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		t.Fatalf("final states differ:\nplain:   %s\nsharded: %s", pj, sj)
	}
}

// TestShardedDeterministicTrajectory runs the same tape through two
// four-shard clusters with the same seed and requires identical outcomes;
// a third cluster with another seed must still satisfy all invariants while
// (almost surely) routing differently.
func TestShardedDeterministicTrajectory(t *testing.T) {
	nodes := clusterNodes(16)
	tape := shardedTape(300, 5)
	mk := func(seed int64) *ShardedCluster {
		c, err := NewShardedCluster(nodes, &ShardedOptions{Shards: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(1234), mk(1234)
	ay, alive := driveTape(t, a, tape)
	by, blive := driveTape(t, b, tape)
	if len(ay) != len(by) || len(alive) != len(blive) {
		t.Fatalf("trajectories diverged in shape")
	}
	for i := range ay {
		if ay[i] != by[i] {
			t.Fatalf("epoch sample %d differs under one seed: %v vs %v", i, ay[i], by[i])
		}
	}
	for i := range alive {
		as, _ := a.Shard(alive[i])
		bs, _ := b.Shard(blive[i])
		if alive[i] != blive[i] || as != bs {
			t.Fatalf("service %d routed to shard %d vs %d", alive[i], as, bs)
		}
	}
	// Structural invariants under any seed.
	c := mk(777)
	_, clive := driveTape(t, c, tape)
	p, pl, ids := c.Snapshot()
	if len(ids) != len(clive) || len(pl) != len(clive) {
		t.Fatalf("snapshot covers %d services, want %d", len(ids), len(clive))
	}
	if p.NumNodes() != len(nodes) {
		t.Fatalf("snapshot park has %d nodes, want %d", p.NumNodes(), len(nodes))
	}
	for i, id := range ids {
		lo, hi := 0, len(nodes)
		if pl[i] != Unplaced && (pl[i] < lo || pl[i] >= hi) {
			t.Fatalf("service %d on out-of-park node %d", id, pl[i])
		}
		s, ok := c.Shard(id)
		if !ok {
			t.Fatalf("snapshot id %d not live", id)
		}
		slo, shi := c.NodeRange(s)
		if pl[i] != Unplaced && (pl[i] < slo || pl[i] >= shi) {
			t.Fatalf("service %d on node %d outside its shard %d range [%d,%d)", id, pl[i], s, slo, shi)
		}
	}
	stats := c.ShardStats()
	total := 0
	for _, st := range stats {
		total += st.Services
	}
	if total != len(clive) {
		t.Fatalf("shard stats count %d services, live set has %d", total, len(clive))
	}
}

// TestShardedStateRoundTrip restores a multi-shard cluster from its
// per-shard states and checks the merged state and future behavior agree.
func TestShardedStateRoundTrip(t *testing.T) {
	nodes := clusterNodes(8)
	opts := &ShardedOptions{Shards: 2, Seed: 3}
	c, err := NewShardedCluster(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	tape := shardedTape(150, 21)
	driveTape(t, c, tape)

	states := make([]*ClusterState, c.Shards())
	for s := range states {
		states[s] = c.ShardState(s)
	}
	rc, err := RestoreShardedCluster(nodes, states, opts)
	if err != nil {
		t.Fatal(err)
	}
	restored, warnings, err := rc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("clean restore produced warnings: %v", warnings)
	}
	cj, _ := json.Marshal(c.State())
	rj, _ := json.Marshal(restored.State())
	if !bytes.Equal(cj, rj) {
		t.Fatalf("restored merged state differs:\n%s\n%s", cj, rj)
	}
	// Both must continue identically: same admissions and epoch outcome.
	rng := rand.New(rand.NewSource(404))
	for i := 0; i < 20; i++ {
		svc := clusterService(rng)
		id1, ok1, _ := c.Add(svc)
		id2, ok2, _ := restored.Add(svc)
		if id1 != id2 || ok1 != ok2 {
			t.Fatalf("post-restore admission %d diverged: (%d,%v) vs (%d,%v)", i, id1, ok1, id2, ok2)
		}
	}
	e1, e2 := c.Reallocate(), restored.Reallocate()
	if e1.Result.MinYield != e2.Result.MinYield || e1.Migrations != e2.Migrations {
		t.Fatalf("post-restore epoch diverged: %v/%d vs %v/%d",
			e1.Result.MinYield, e1.Migrations, e2.Result.MinYield, e2.Migrations)
	}
}

// TestShardedRestoreReadView: the never-finished restore (a replication
// follower's serving state) answers reads identically to the live cluster it
// mirrors, and Finish afterwards still produces the identical cluster.
func TestShardedRestoreReadView(t *testing.T) {
	nodes := clusterNodes(8)
	opts := &ShardedOptions{Shards: 2, Seed: 3}
	c, err := NewShardedCluster(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	driveTape(t, c, shardedTape(120, 33))

	states := make([]*ClusterState, c.Shards())
	for s := range states {
		states[s] = c.ShardState(s)
	}
	rc, err := RestoreShardedCluster(nodes, states, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Reads BEFORE Finish — what a follower serves while tailing.
	if rc.Shards() != c.Shards() || rc.Len() != c.Len() {
		t.Fatalf("read view shape: shards %d/%d len %d/%d",
			rc.Shards(), c.Shards(), rc.Len(), c.Len())
	}
	if got, want := rc.MinYield(PolicyAllocCaps), c.MinYield(PolicyAllocCaps); got != want {
		t.Fatalf("read view MinYield %g, want %g", got, want)
	}
	cj, _ := json.Marshal(c.State())
	rj, _ := json.Marshal(rc.State())
	if !bytes.Equal(cj, rj) {
		t.Fatalf("read view merged state differs:\n%s\n%s", cj, rj)
	}
	for s := 0; s < c.Shards(); s++ {
		cs, _ := json.Marshal(c.ShardState(s))
		rs, _ := json.Marshal(rc.ShardState(s))
		if !bytes.Equal(cs, rs) {
			t.Fatalf("read view shard %d state differs", s)
		}
	}
	stats := rc.ShardStats()
	total := 0
	for _, st := range stats {
		total += st.Services
	}
	if total != c.Len() {
		t.Fatalf("read view stats count %d services, want %d", total, c.Len())
	}
	// The read view did not disturb the restore: Finish still works.
	restored, warnings, err := rc.Finish()
	if err != nil || len(warnings) != 0 {
		t.Fatalf("finish after reads: %v, warnings %v", err, warnings)
	}
	fj, _ := json.Marshal(restored.State())
	if !bytes.Equal(cj, fj) {
		t.Fatal("finish after reads diverged from the live cluster")
	}
}

// TestShardedValidation mirrors the Cluster boundary checks.
func TestShardedValidation(t *testing.T) {
	c, err := NewShardedCluster(clusterNodes(4), &ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := Service{ReqElem: Of(0.1), ReqAgg: Of(0.1, 0.1), NeedElem: Of(0, 0), NeedAgg: Of(0, 0)}
	if _, _, err := c.Add(bad); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := c.SetThreshold(-1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if err := c.UpdateNeeds(99, Of(0, 0), Of(0, 0), Of(0, 0), Of(0, 0)); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := NewShardedCluster(clusterNodes(2), &ShardedOptions{Shards: 5}); err == nil {
		t.Fatal("more shards than nodes accepted")
	}
}
