package vmalloc

import (
	"fmt"

	"vmalloc/internal/engine"
	"vmalloc/internal/shard"
	"vmalloc/internal/vec"
)

// ShardedRestore is an in-progress recovery of a ShardedCluster: the shard
// engines have been rebuilt from their snapshot states, and the caller
// replays each shard's journal tail through the Shard* methods before
// Finish reconciles the shards into a ready cluster. It is the sharded
// counterpart of the RestoreCluster / RestoreAdd / ApplyPlacement replay
// seam of Cluster, with two additions a multi-WAL tier needs: move
// generations (to resolve a rebalance move torn across two shard WALs) and
// departure tombstones (to drop copies a stale source WAL resurrects).
type ShardedRestore struct {
	rc  *shard.Recovery
	dim int
}

// RestoreShardedCluster begins recovery of a sharded cluster over the given
// park. states holds one entry per shard — the shard's last snapshot, or
// nil to bootstrap that shard empty. Each non-nil state must carry exactly
// the node slice its shard owns under the park partition.
func RestoreShardedCluster(nodes []Node, states []*ClusterState, opts *ShardedOptions) (*ShardedRestore, error) {
	if opts == nil {
		opts = &ShardedOptions{}
	}
	cfg := opts.routerConfig(nodes)
	if len(states) != cfg.Shards {
		return nil, fmt.Errorf("vmalloc: %d shard states for %d shards", len(states), cfg.Shards)
	}
	estates := make([]*engine.State, len(states))
	for s, st := range states {
		if st == nil {
			continue
		}
		if err := st.Validate(); err != nil {
			return nil, fmt.Errorf("vmalloc: shard %d state: %w", s, err)
		}
		lo, hi := shard.Partition(len(nodes), cfg.Shards, s)
		if err := nodesMatch(nodes[lo:hi], st.Nodes); err != nil {
			return nil, fmt.Errorf("vmalloc: shard %d state: %w", s, err)
		}
		estates[s] = &st.State
	}
	rc, err := shard.Restore(cfg, estates)
	if err != nil {
		return nil, err
	}
	d := 0
	if len(nodes) > 0 {
		d = nodes[0].Aggregate.Dim()
	}
	return &ShardedRestore{rc: rc, dim: d}, nil
}

func nodesMatch(want, got []Node) error {
	if len(want) != len(got) {
		return fmt.Errorf("has %d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Name != got[i].Name ||
			!vecEqual(want[i].Elementary, got[i].Elementary) ||
			!vecEqual(want[i].Aggregate, got[i].Aggregate) {
			return fmt.Errorf("node %d differs from the park partition", i)
		}
	}
	return nil
}

func vecEqual(a, b Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ShardAdd replays an admission (journal op ADD) into shard s.
func (r *ShardedRestore) ShardAdd(s, id, node int, trueSvc, estSvc Service) error {
	if err := validateServiceVecs(r.dim, "true", trueSvc); err != nil {
		return err
	}
	if err := validateServiceVecs(r.dim, "estimated", estSvc); err != nil {
		return err
	}
	return r.rc.ShardAdd(s, id, node, trueSvc, estSvc)
}

// ShardMoveIn replays a rebalance arrival (journal op MOVE_IN) into shard s.
func (r *ShardedRestore) ShardMoveIn(s, id, node int, gen uint64, trueSvc, estSvc Service) error {
	if err := validateServiceVecs(r.dim, "true", trueSvc); err != nil {
		return err
	}
	if err := validateServiceVecs(r.dim, "estimated", estSvc); err != nil {
		return err
	}
	return r.rc.ShardMoveIn(s, id, node, gen, trueSvc, estSvc)
}

// ShardRemove replays a departure (journal op REMOVE) from shard s.
func (r *ShardedRestore) ShardRemove(s, id int) error { return r.rc.ShardRemove(s, id) }

// ShardMoveOut replays a rebalance departure (journal op MOVE_OUT) from
// shard s.
func (r *ShardedRestore) ShardMoveOut(s, id int, gen uint64) error {
	return r.rc.ShardMoveOut(s, id, gen)
}

// ShardUpdateNeeds replays a needs update in shard s.
func (r *ShardedRestore) ShardUpdateNeeds(s, id int, needs [4]Vec) error {
	var nv [4]vec.Vec
	for i, v := range needs {
		if err := validateVec(r.dim, "need", v); err != nil {
			return err
		}
		nv[i] = vec.Vec(v)
	}
	return r.rc.ShardUpdateNeeds(s, id, nv)
}

// ShardSetThreshold replays a threshold change in shard s.
func (r *ShardedRestore) ShardSetThreshold(s int, th float64) error {
	return r.rc.ShardSetThreshold(s, th)
}

// ShardApplyPlacement replays an applied epoch in shard s (global ids,
// shard-local placement, exactly as journaled).
func (r *ShardedRestore) ShardApplyPlacement(s int, ids []int, pl Placement) error {
	return r.rc.ShardApplyPlacement(s, ids, pl)
}

// Finish reconciles the replayed shards and returns the recovered cluster
// plus human-readable warnings for any cross-WAL repairs (dropped duplicate
// or resurrected copies, threshold realignment); warnings are empty after a
// clean shutdown and after any crash outside a rebalance commit window.
func (r *ShardedRestore) Finish() (*ShardedCluster, []string, error) {
	router, warnings, err := r.rc.Finish()
	if err != nil {
		return nil, warnings, err
	}
	return &ShardedCluster{r: router}, warnings, nil
}
