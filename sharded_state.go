package vmalloc

import (
	"fmt"

	"vmalloc/internal/engine"
	"vmalloc/internal/shard"
	"vmalloc/internal/vec"
)

// ShardedRestore is an in-progress recovery of a ShardedCluster: the shard
// engines have been rebuilt from their snapshot states, and the caller
// replays each shard's journal tail through the Shard* methods before
// Finish reconciles the shards into a ready cluster. It is the sharded
// counterpart of the RestoreCluster / RestoreAdd / ApplyPlacement replay
// seam of Cluster, with two additions a multi-WAL tier needs: move
// generations (to resolve a rebalance move torn across two shard WALs) and
// departure tombstones (to drop copies a stale source WAL resurrects).
type ShardedRestore struct {
	rc  *shard.Recovery
	dim int
}

// RestoreShardedCluster begins recovery of a sharded cluster over the given
// park. states holds one entry per shard — the shard's last snapshot, or
// nil to bootstrap that shard empty. Each non-nil state must carry exactly
// the node slice its shard owns under the park partition.
func RestoreShardedCluster(nodes []Node, states []*ClusterState, opts *ShardedOptions) (*ShardedRestore, error) {
	if opts == nil {
		opts = &ShardedOptions{}
	}
	cfg := opts.routerConfig(nodes)
	if len(states) != cfg.Shards {
		return nil, fmt.Errorf("vmalloc: %d shard states for %d shards", len(states), cfg.Shards)
	}
	estates := make([]*engine.State, len(states))
	for s, st := range states {
		if st == nil {
			continue
		}
		if err := st.Validate(); err != nil {
			return nil, fmt.Errorf("vmalloc: shard %d state: %w", s, err)
		}
		lo, hi := shard.Partition(len(nodes), cfg.Shards, s)
		if err := nodesMatch(nodes[lo:hi], st.Nodes); err != nil {
			return nil, fmt.Errorf("vmalloc: shard %d state: %w", s, err)
		}
		estates[s] = &st.State
	}
	rc, err := shard.Restore(cfg, estates)
	if err != nil {
		return nil, err
	}
	d := 0
	if len(nodes) > 0 {
		d = nodes[0].Aggregate.Dim()
	}
	return &ShardedRestore{rc: rc, dim: d}, nil
}

func nodesMatch(want, got []Node) error {
	if len(want) != len(got) {
		return fmt.Errorf("has %d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Name != got[i].Name ||
			!vecEqual(want[i].Elementary, got[i].Elementary) ||
			!vecEqual(want[i].Aggregate, got[i].Aggregate) {
			return fmt.Errorf("node %d differs from the park partition", i)
		}
	}
	return nil
}

func vecEqual(a, b Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //vmalloc:nondet-ok bit-identity comparison of round-tripped state vectors is the durability contract
			return false
		}
	}
	return true
}

// ShardAdd replays an admission (journal op ADD) into shard s.
func (r *ShardedRestore) ShardAdd(s, id, node int, trueSvc, estSvc Service) error {
	if err := validateServiceVecs(r.dim, "true", trueSvc); err != nil {
		return err
	}
	if err := validateServiceVecs(r.dim, "estimated", estSvc); err != nil {
		return err
	}
	return r.rc.ShardAdd(s, id, node, trueSvc, estSvc)
}

// ShardMoveIn replays a rebalance arrival (journal op MOVE_IN) into shard s.
func (r *ShardedRestore) ShardMoveIn(s, id, node int, gen uint64, trueSvc, estSvc Service) error {
	if err := validateServiceVecs(r.dim, "true", trueSvc); err != nil {
		return err
	}
	if err := validateServiceVecs(r.dim, "estimated", estSvc); err != nil {
		return err
	}
	return r.rc.ShardMoveIn(s, id, node, gen, trueSvc, estSvc)
}

// ShardRemove replays a departure (journal op REMOVE) from shard s.
func (r *ShardedRestore) ShardRemove(s, id int) error { return r.rc.ShardRemove(s, id) }

// ShardMoveOut replays a rebalance departure (journal op MOVE_OUT) from
// shard s.
func (r *ShardedRestore) ShardMoveOut(s, id int, gen uint64) error {
	return r.rc.ShardMoveOut(s, id, gen)
}

// ShardUpdateNeeds replays a needs update in shard s.
func (r *ShardedRestore) ShardUpdateNeeds(s, id int, needs [4]Vec) error {
	var nv [4]vec.Vec
	for i, v := range needs {
		if err := validateVec(r.dim, "need", v); err != nil {
			return err
		}
		nv[i] = vec.Vec(v)
	}
	return r.rc.ShardUpdateNeeds(s, id, nv)
}

// ShardSetThreshold replays a threshold change in shard s.
func (r *ShardedRestore) ShardSetThreshold(s int, th float64) error {
	return r.rc.ShardSetThreshold(s, th)
}

// ShardApplyPlacement replays an applied epoch in shard s (global ids,
// shard-local placement, exactly as journaled).
func (r *ShardedRestore) ShardApplyPlacement(s int, ids []int, pl Placement) error {
	return r.rc.ShardApplyPlacement(s, ids, pl)
}

// Read view — a replication follower applies the leader's journal records
// through the Shard* methods above for as long as it follows, and serves
// these read-only queries from the half-restored cluster without ever
// calling Finish. The caller must serialize reads against replay. All reads
// are valid until Finish; during a torn rebalance window a moving service
// can transiently appear in two shards (Len counts both), exactly the
// duplication Finish reconciles on promotion.

// Shards returns the number of placement domains being restored.
func (r *ShardedRestore) Shards() int { return r.rc.Shards() }

// Len returns the number of live service copies across all shards.
func (r *ShardedRestore) Len() int { return r.rc.Len() }

// Threshold returns the currently replayed mitigation threshold.
func (r *ShardedRestore) Threshold() float64 { return r.rc.Threshold() }

// MinYield evaluates the achieved minimum yield of the replayed placement
// under the §6 error model, exactly as ShardedCluster.MinYield would.
func (r *ShardedRestore) MinYield(policy SchedPolicy) float64 { return r.rc.MinYield(policy) }

// ShardStats returns per-shard statistics over the replayed engines. Epoch
// and migration counters stay zero while following: epochs arrive as
// journaled placements, not locally-solved epochs.
func (r *ShardedRestore) ShardStats() []ShardStat { return r.rc.Stats() }

// ShardState returns the durable state of one replayed placement domain, in
// the same representation as ShardedCluster.ShardState.
func (r *ShardedRestore) ShardState(s int) *ClusterState { return shardState(r.rc, s) }

// State returns the merged park-global durable state of the replayed
// cluster, in the same representation as ShardedCluster.State.
func (r *ShardedRestore) State() *ClusterState { return mergedState(r.rc) }

// Finish reconciles the replayed shards and returns the recovered cluster
// plus human-readable warnings for any cross-WAL repairs (dropped duplicate
// or resurrected copies, threshold realignment); warnings are empty after a
// clean shutdown and after any crash outside a rebalance commit window.
func (r *ShardedRestore) Finish() (*ShardedCluster, []string, error) {
	router, warnings, err := r.rc.Finish()
	if err != nil {
		return nil, warnings, err
	}
	return &ShardedCluster{r: router}, warnings, nil
}
