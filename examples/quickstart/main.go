// Quickstart: build a small heterogeneous platform by hand, place two
// services with METAHVPLIGHT, and inspect the resulting yields.
//
// This is the paper's Figure 1 example extended with a second service, run
// end-to-end through the public API.
package main

import (
	"fmt"
	"os"

	"vmalloc"
)

func main() {
	p := &vmalloc.Problem{
		Nodes: []vmalloc.Node{
			// Node A: four 0.8-capacity cores, large memory.
			{Name: "A", Elementary: vmalloc.Of(0.8, 1.0), Aggregate: vmalloc.Of(3.2, 1.0)},
			// Node B: two full-speed cores, small memory.
			{Name: "B", Elementary: vmalloc.Of(1.0, 0.5), Aggregate: vmalloc.Of(2.0, 0.5)},
		},
		Services: []vmalloc.Service{
			{
				// Two threads that must each saturate half a core, and can
				// each use a whole core at full performance.
				Name:    "web-frontend",
				ReqElem: vmalloc.Of(0.5, 0.5), ReqAgg: vmalloc.Of(1.0, 0.5),
				NeedElem: vmalloc.Of(0.5, 0.0), NeedAgg: vmalloc.Of(1.0, 0.0),
			},
			{
				// A single-threaded batch job with a modest footprint.
				Name:    "batch-worker",
				ReqElem: vmalloc.Of(0.1, 0.3), ReqAgg: vmalloc.Of(0.1, 0.3),
				NeedElem: vmalloc.Of(0.6, 0.0), NeedAgg: vmalloc.Of(0.6, 0.0),
			},
		},
	}

	res, err := vmalloc.Solve(vmalloc.AlgoMetaHVPLight, p, nil)
	if err != nil {
		fatal(err)
	}
	if !res.Solved {
		fatal("no feasible placement")
	}

	fmt.Printf("minimum yield: %.3f\n", res.MinYield)
	for j, h := range res.Placement {
		fmt.Printf("  %-14s -> node %-2s (yield %.3f)\n",
			p.Services[j].Name, p.Nodes[h].Name, res.Yields[j])
	}

	// The LP relaxation bounds how much better any placement could be.
	if ub, err := vmalloc.RelaxedUpperBound(p); err == nil {
		fmt.Printf("LP upper bound: %.3f\n", ub)
	}

	// For an instance this small the exact MILP optimum is cheap.
	exact, err := vmalloc.Solve(vmalloc.AlgoExact, p, nil)
	if err == nil && exact.Solved {
		fmt.Printf("exact optimum:  %.3f\n", exact.MinYield)
	}
}

// fatal reports err on stderr and exits nonzero; examples avoid the global
// log package, which the slogonly analyzer confines to cmd/.
func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}
