// Lifecycle: the paper's §8 outlook made concrete — METAHVPLIGHT as the
// resource manager of a running hosting platform. Services arrive and leave,
// estimates are noisy, and we compare three operating modes over the same
// arrival stream: no mitigation, a fixed threshold, and the adaptive
// threshold controller.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"vmalloc/internal/platform"
	"vmalloc/internal/workload"
)

func main() {
	nodes := workload.Platform(workload.Scenario{
		Hosts: 12, COV: 0.5, Mode: workload.HeteroBoth, Seed: 42,
	}, rand.New(rand.NewSource(42)))

	base := platform.Config{
		Nodes:        nodes,
		ArrivalRate:  3,
		MeanLifetime: 8,
		Horizon:      120,
		Epoch:        4,
		MaxErr:       0.25,
		Seed:         42,
	}

	fmt.Println("mode                 mean min yield   migrations   rejections   failed epochs")
	for _, mode := range []struct {
		name string
		th   float64
	}{
		{"no mitigation", 0},
		{"fixed threshold .15", 0.15},
		{"adaptive threshold", platform.AdaptiveThreshold},
	} {
		cfg := base
		cfg.Threshold = mode.th
		st, err := platform.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-20s %.4f           %-12d %-12d %d\n",
			mode.name, st.MeanMinYield(), st.Migrations, st.Rejections, st.FailedEpoch)
	}
}

// fatal reports err on stderr and exits nonzero; examples avoid the global
// log package, which the slogonly analyzer confines to cmd/.
func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}
