// Federation: three formerly independent clusters — each internally
// homogeneous but very different from one another — are federated into one
// hosting platform (the grid/sky-computing scenario from the paper's
// introduction). The example shows how heterogeneity-aware packing
// (METAHVPLIGHT) behaves as load grows, against the homogeneous METAVP.
//
// This is the offline, single-solve view of federation. The online
// equivalent is the sharded serving tier: vmalloc.ShardedCluster (or
// `vmallocd -shards K`) keeps each federated cluster as its own placement
// domain with its own engine and WAL, admits services by shard headroom
// and reallocates all domains scatter-gather — see the "sharded tier"
// section of the README and `cmd/experiments -exp sharded`.
package main

import (
	"fmt"
	"os"

	"vmalloc"
)

func main() {
	p := &vmalloc.Problem{}

	// Cluster 1: 6 older quad-core machines (slow cores, modest memory).
	addCluster(p, "old", 6, 0.10, 0.40)
	// Cluster 2: 6 mid-generation machines.
	addCluster(p, "mid", 6, 0.17, 0.60)
	// Cluster 3: 4 recent machines (fast cores, large memory).
	addCluster(p, "new", 4, 0.25, 1.00)

	fmt.Printf("federated platform: %d nodes across 3 clusters\n\n", p.NumNodes())
	fmt.Println("services   METAVP     METAHVPLIGHT   (minimum yield; '-' = allocation failed)")

	for _, j := range []int{20, 40, 60, 80, 100, 120} {
		q := p.Clone()
		addServices(q, j)

		row := fmt.Sprintf("%8d", j)
		for _, algo := range []string{vmalloc.AlgoMetaVP, vmalloc.AlgoMetaHVPLight} {
			res, err := vmalloc.Solve(algo, q, nil)
			if err != nil {
				fatal(err)
			}
			if res.Solved {
				row += fmt.Sprintf("   %.4f", res.MinYield)
			} else {
				row += "        -"
			}
		}
		fmt.Println(row)
	}
}

// addCluster appends n identical quad-core nodes with the given per-core
// speed and memory size.
func addCluster(p *vmalloc.Problem, name string, n int, coreSpeed, mem float64) {
	for i := 0; i < n; i++ {
		p.Nodes = append(p.Nodes, vmalloc.Node{
			Name:       fmt.Sprintf("%s-%d", name, i),
			Elementary: vmalloc.Of(coreSpeed, mem),
			Aggregate:  vmalloc.Of(4*coreSpeed, mem),
		})
	}
}

// addServices appends j services with a simple deterministic mix of
// single-core and dual-core jobs.
func addServices(p *vmalloc.Problem, j int) {
	for i := 0; i < j; i++ {
		cores := 1 + i%2 // alternate 1- and 2-core services
		perCore := 0.12
		mem := 0.05 + 0.01*float64(i%5)
		p.Services = append(p.Services, vmalloc.Service{
			Name:    fmt.Sprintf("svc-%d", i),
			ReqElem: vmalloc.Of(0.001, mem), ReqAgg: vmalloc.Of(0.001, mem),
			NeedElem: vmalloc.Of(perCore, 0),
			NeedAgg:  vmalloc.Of(perCore*float64(cores), 0),
		})
	}
}

// fatal reports err on stderr and exits nonzero; examples avoid the global
// log package, which the slogonly analyzer confines to cmd/.
func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}
