// Consolidation: a data-center operator packs a Google-like service mix onto
// a heterogeneous machine park (mixed purchase generations) and compares the
// paper's algorithm roster on the same instance — the Table 1 story at
// example scale.
package main

import (
	"fmt"
	"os"
	"time"

	"vmalloc"
)

func main() {
	// A park of 16 machines spanning purchase generations: COV 0.6 spreads
	// capacities widely around the median machine. Memory slack 0.4 leaves
	// 40% headroom, a moderately constrained consolidation target.
	scn := vmalloc.Scenario{
		Hosts:    16,
		Services: 96,
		COV:      0.6,
		Slack:    0.4,
		Seed:     2024,
	}
	p := vmalloc.Generate(scn)
	fmt.Printf("instance: %d nodes, %d services (%s)\n\n", p.NumNodes(), p.NumServices(), scn)

	for _, algo := range []string{
		vmalloc.AlgoMetaGreedy,
		vmalloc.AlgoMetaVP,
		vmalloc.AlgoMetaHVPLight,
		vmalloc.AlgoMetaHVP,
	} {
		start := time.Now()
		res, err := vmalloc.Solve(algo, p, nil)
		if err != nil {
			fatal(err)
		}
		el := time.Since(start)
		if !res.Solved {
			fmt.Printf("%-14s failed to place all services (%.0f ms)\n", algo, el.Seconds()*1000)
			continue
		}
		fmt.Printf("%-14s min yield %.4f   (%.0f ms)\n", algo, res.MinYield, el.Seconds()*1000)
	}

	// Contrast with the naive baseline: spread services evenly and share
	// CPU with equal weights, using no knowledge of needs at all.
	zk := vmalloc.ZeroKnowledgePlacement(p)
	if zk.Complete() {
		y := vmalloc.EvaluateWithErrors(p, p, zk, vmalloc.PolicyEqualWeights, 0)
		fmt.Printf("\nzero-knowledge baseline (even spread + equal weights): %.4f\n", y)
	}
}

// fatal reports err on stderr and exits nonzero; examples avoid the global
// log package, which the slogonly analyzer confines to cmd/.
func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}
