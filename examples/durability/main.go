// Durability: the crash/restart walkthrough of the durable tier. A
// journaled cluster admits services and runs reallocation epochs; the
// process then "crashes" — no shutdown checkpoint, a torn record on the WAL
// tail — and a second store recovers the exact pre-crash state from
// snapshot + tail replay before carrying on.
//
// What to look for in the output:
//
//   - every mutation is durable when the call returns (group-committed
//     fsync), so the kill loses nothing that was acknowledged;
//   - the torn tail (a record half-written at the kill) is detected by its
//     CRC and truncated, not treated as corruption;
//   - the recovered state is bit-identical: same services, same placements,
//     same incremental load floats — the replay re-applies recorded
//     decisions, it does not re-run the solver.
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"vmalloc"
	"vmalloc/internal/server"
	"vmalloc/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "vmalloc-durability-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	nodes := workload.Platform(workload.Scenario{
		Hosts: 8, COV: 0.5, Mode: workload.HeteroBoth, Seed: 7,
	}, rand.New(rand.NewSource(7)))

	// Phase 1: a journaled store takes traffic. SnapshotEvery is set low so
	// the walkthrough also exercises checkpoint compaction.
	st, err := server.Open(dir, nodes, &server.Options{SnapshotEvery: 16})
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var live []int
	for i := 0; i < 40; i++ {
		req := vmalloc.Of(0.02+0.05*rng.Float64(), 0.02+0.05*rng.Float64())
		need := vmalloc.Of(0.05+0.2*rng.Float64(), 0.02*rng.Float64())
		svc := vmalloc.Service{
			ReqElem: req.Clone(), ReqAgg: req.Clone(),
			NeedElem: need.Clone(), NeedAgg: need.Clone(),
		}
		if id, _, err := st.Add(svc); err == nil {
			live = append(live, id)
		}
		if i%10 == 9 {
			if _, err := st.Reallocate(); err != nil {
				fatal(err)
			}
		}
	}
	stats := st.Stats()
	_, before, err := st.State()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("before the crash: %d live services, %d journaled records, %d checkpoints, min yield %.4f\n",
		stats.Services, stats.Records, stats.Snapshots, stats.LastMinYield)

	// Phase 2: kill the process. No shutdown checkpoint — and to make it
	// ugly, a half-written record lands on the WAL tail, exactly what a
	// power cut mid-append leaves behind.
	st.Kill()
	if err := tearTail(dir); err != nil {
		fatal(err)
	}
	fmt.Println("crashed: journal abandoned with a torn record on the tail")

	// Phase 3: recover. The platform, services, placements and threshold
	// all come from the journal directory; nothing else is needed.
	st2, err := server.Open(dir, nil, &server.Options{SnapshotEvery: 16})
	if err != nil {
		fatal(err)
	}
	defer st2.Close()
	rstats := st2.Stats()
	_, after, err := st2.State()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recovered: %d services via snapshot seq %d + %d replayed records (%d torn bytes truncated)\n",
		rstats.Services, rstats.SnapshotSeq, rstats.Replayed, rstats.TruncatedBytes)
	if bytes.Equal(before, after) {
		fmt.Println("state check: recovered state is bit-identical to the pre-crash state")
	} else {
		fmt.Println("state check: DIVERGED (this is a bug)")
	}

	// Phase 4: the recovered store keeps serving — run another epoch and
	// depart a service, all journaled again.
	if ep, err := st2.Reallocate(); err == nil && ep.Result.Solved {
		fmt.Printf("post-recovery epoch: min yield %.4f, %d migrations\n",
			ep.Result.MinYield, ep.Migrations)
	}
	if len(live) > 0 {
		if _, err := st2.Remove(live[0]); err != nil {
			fatal(err)
		}
		fmt.Printf("post-recovery departure: service %d removed, %d live\n",
			live[0], st2.Stats().Services)
	}
}

// tearTail appends half a record frame to the newest WAL segment.
func tearTail(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	last := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && e.Name() > last {
			last = e.Name()
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, last), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte{0x30, 0x00, 0x00, 0x00, 0x11, 0x22, 0x33})
	return err
}

// fatal reports err on stderr and exits nonzero; examples avoid the global
// log package, which the slogonly analyzer confines to cmd/.
func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}
