// Errors: CPU-need estimates are noisy in practice (§6). This example
// perturbs the estimates of a generated workload, places with the perturbed
// values, and compares the achieved minimum yield under the three sharing
// policies — with and without the paper's minimum-threshold mitigation —
// against the perfect-knowledge and zero-knowledge extremes.
package main

import (
	"fmt"
	"os"

	"vmalloc"
)

func main() {
	scn := vmalloc.Scenario{Hosts: 12, Services: 60, COV: 0.5, Slack: 0.4, Seed: 7}
	trueP := vmalloc.Generate(scn)

	// Perfect knowledge: place with the true needs.
	ideal, err := vmalloc.Solve(vmalloc.AlgoMetaHVPLight, trueP, nil)
	if err != nil || !ideal.Solved {
		fatal("ideal placement failed")
	}
	fmt.Printf("perfect knowledge min yield: %.4f\n", ideal.MinYield)

	// Zero knowledge: spread evenly, equal weights.
	zk := vmalloc.ZeroKnowledgePlacement(trueP)
	if zk.Complete() {
		y := vmalloc.EvaluateWithErrors(trueP, trueP, zk, vmalloc.PolicyEqualWeights, 0)
		fmt.Printf("zero knowledge min yield:    %.4f\n\n", y)
	}

	fmt.Println("maxerr   caps     weights  equal    weights(min=0.1) equal(min=0.1)")
	for _, maxErr := range []float64{0.0, 0.05, 0.1, 0.2, 0.3} {
		est := vmalloc.PerturbCPUNeeds(trueP, maxErr, 1000+int64(maxErr*100))

		row := fmt.Sprintf("%6.2f", maxErr)

		// No mitigation: place with raw erroneous estimates.
		res, err := vmalloc.Solve(vmalloc.AlgoMetaHVPLight, est, nil)
		if err != nil {
			fatal(err)
		}
		if res.Solved {
			for _, pol := range []vmalloc.SchedPolicy{
				vmalloc.PolicyAllocCaps, vmalloc.PolicyAllocWeights, vmalloc.PolicyEqualWeights,
			} {
				row += fmt.Sprintf("   %.4f", vmalloc.EvaluateWithErrors(trueP, est, res.Placement, pol, 0))
			}
		} else {
			row += "        -        -        -"
		}

		// Mitigated: round estimates up to a minimum threshold first.
		mit := vmalloc.ApplyThreshold(est, 0, 0.1)
		resM, err := vmalloc.Solve(vmalloc.AlgoMetaHVPLight, mit, nil)
		if err != nil {
			fatal(err)
		}
		if resM.Solved {
			row += fmt.Sprintf("   %.4f", vmalloc.EvaluateWithErrors(trueP, mit, resM.Placement, vmalloc.PolicyAllocWeights, 0))
			row += fmt.Sprintf("          %.4f", vmalloc.EvaluateWithErrors(trueP, mit, resM.Placement, vmalloc.PolicyEqualWeights, 0))
		} else {
			row += "          -                -"
		}
		fmt.Println(row)
	}
}

// fatal reports err on stderr and exits nonzero; examples avoid the global
// log package, which the slogonly analyzer confines to cmd/.
func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}
