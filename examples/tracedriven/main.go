// Tracedriven: ingest a cluster workload trace (Google-cluster-data-style
// CSV), extract the requested-cores and memory-fraction marginals the paper
// takes from the Google dataset, generate an allocation instance from the
// empirical distributions, and solve it — the full data pipeline of §4.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vmalloc"
	"vmalloc/internal/trace"
	"vmalloc/internal/workload"
)

func main() {
	// In lieu of the real (non-redistributable) dataset, synthesize a trace
	// file; the ingestion below is format-identical either way.
	dir, err := os.MkdirTemp("", "tracedriven")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "task_events.csv")
	if err := trace.WriteFile(path, trace.Synthesize(5000, 7)); err != nil {
		log.Fatal(err)
	}

	recs, err := trace.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	emp, err := trace.Extract(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d records, %d usable submissions\n", len(recs), len(emp.MemFracs))
	fmt.Printf("core-count marginal: values %v weights", emp.CoreValues)
	for _, w := range emp.CoreWeights {
		fmt.Printf(" %.3f", w)
	}
	fmt.Println()

	// Fit the parametric form for inspection.
	g := emp.FitGoogle()
	fmt.Printf("fitted memory log-normal: mu=%.3f sigma=%.3f\n\n", g.MemLogMean, g.MemLogSigma)

	// Generate an instance directly from the empirical marginals.
	scn := vmalloc.Scenario{Hosts: 16, Services: 80, COV: 0.5, Slack: 0.4, Seed: 11}
	p := workload.GenerateSampled(scn, emp)

	res, err := vmalloc.Solve(vmalloc.AlgoMetaHVPLight, p, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatal("no feasible placement for the trace-driven workload")
	}
	fmt.Printf("placed %d trace-derived services on %d nodes: min yield %.4f\n",
		p.NumServices(), p.NumNodes(), res.MinYield)

	// The cheap local-search post-pass sometimes squeezes out a bit more.
	imp := vmalloc.Improve(p, res.Placement)
	fmt.Printf("after local-search improvement:               min yield %.4f (%d migrations)\n",
		imp.MinYield, vmalloc.Migrations(res.Placement, imp.Placement))
}
