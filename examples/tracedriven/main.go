// Tracedriven: ingest a cluster workload trace (Google-cluster-data-style
// CSV), extract the requested-cores and memory-fraction marginals the paper
// takes from the Google dataset, generate an allocation instance from the
// empirical distributions, and replay it *online* through the persistent
// allocation engine (vmalloc.Cluster): trace-derived services stream into
// the cluster in waves, each wave is reallocated on warm solver state, and
// early arrivals depart between epochs — the §4 data pipeline feeding the §8
// dynamic platform.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"vmalloc"
	"vmalloc/internal/trace"
	"vmalloc/internal/workload"
)

func main() {
	// In lieu of the real (non-redistributable) dataset, synthesize a trace
	// file; the ingestion below is format-identical either way.
	dir, err := os.MkdirTemp("", "tracedriven")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "task_events.csv")
	if err := trace.WriteFile(path, trace.Synthesize(5000, 7)); err != nil {
		fatal(err)
	}

	recs, err := trace.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	emp, err := trace.Extract(recs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace: %d records, %d usable submissions\n", len(recs), len(emp.MemFracs))
	fmt.Printf("core-count marginal: values %v weights", emp.CoreValues)
	for _, w := range emp.CoreWeights {
		fmt.Printf(" %.3f", w)
	}
	fmt.Println()

	// Fit the parametric form for inspection.
	g := emp.FitGoogle()
	fmt.Printf("fitted memory log-normal: mu=%.3f sigma=%.3f\n\n", g.MemLogMean, g.MemLogSigma)

	// Generate an instance directly from the empirical marginals.
	scn := vmalloc.Scenario{Hosts: 16, Services: 80, COV: 0.5, Slack: 0.4, Seed: 11}
	p := workload.GenerateSampled(scn, emp)

	// Replay the trace-derived workload online: the cluster keeps its solver
	// arenas warm while services stream in and out.
	cluster, err := vmalloc.NewCluster(p.Nodes, nil)
	if err != nil {
		fatal(err)
	}
	const wave = 20
	var ids []int
	epoch := 0
	for start := 0; start < len(p.Services); start += wave {
		end := start + wave
		if end > len(p.Services) {
			end = len(p.Services)
		}
		admitted, rejected := 0, 0
		for _, svc := range p.Services[start:end] {
			id, ok, err := cluster.Add(svc)
			if err != nil {
				fatal(err)
			}
			if ok {
				ids = append(ids, id)
				admitted++
			} else {
				rejected++
			}
		}
		// The earliest arrivals of the previous wave depart.
		departed := 0
		if epoch > 0 {
			for i := 0; i < wave/4 && len(ids) > 0; i++ {
				cluster.Remove(ids[0])
				ids = ids[1:]
				departed++
			}
		}
		ep := cluster.Reallocate()
		epoch++
		fmt.Printf("epoch %d: +%d/-%d services (live %d, rejected %d), solved=%v, min yield %.4f, %d migrations\n",
			epoch, admitted, departed, cluster.Len(), rejected,
			ep.Result.Solved, ep.Result.MinYield, ep.Migrations)
	}

	// A detached snapshot feeds the offline post-passes unchanged.
	snap, pl, _ := cluster.Snapshot()
	imp := vmalloc.Improve(snap, pl)
	fmt.Printf("final local-search improvement: min yield %.4f (%d migrations)\n",
		imp.MinYield, vmalloc.Migrations(pl, imp.Placement))
}

// fatal reports err on stderr and exits nonzero; examples avoid the global
// log package, which the slogonly analyzer confines to cmd/.
func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}
