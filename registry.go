package vmalloc

import (
	"fmt"
	"math/rand"
	"sort"

	"vmalloc/internal/core"
	"vmalloc/internal/greedy"
	"vmalloc/internal/hvp"
	"vmalloc/internal/milp"
	"vmalloc/internal/opt"
	"vmalloc/internal/relax"
	"vmalloc/internal/sched"
	"vmalloc/internal/vp"
	"vmalloc/internal/workload"
)

// Algorithm names accepted by Solve.
const (
	// AlgoExact solves the MILP by branch and bound (small instances only).
	AlgoExact = "EXACT"
	// AlgoRRND is randomized rounding of the rational relaxation (§3.3.1).
	AlgoRRND = "RRND"
	// AlgoRRNZ is randomized rounding with epsilon-floored probabilities
	// (§3.3.2).
	AlgoRRNZ = "RRNZ"
	// AlgoMetaGreedy runs all 49 greedy algorithms and keeps the best
	// solution (§3.4).
	AlgoMetaGreedy = "METAGREEDY"
	// AlgoMetaVP runs the 33 homogeneous vector-packing strategies inside
	// the yield binary search (§3.5.3).
	AlgoMetaVP = "METAVP"
	// AlgoMetaHVP runs all 253 heterogeneous vector-packing strategies
	// (§3.5.5).
	AlgoMetaHVP = "METAHVP"
	// AlgoMetaHVPLight runs the engineered 60-strategy subset (§5.1).
	AlgoMetaHVPLight = "METAHVPLIGHT"
)

// Options tunes Solve.
type Options struct {
	// Tolerance is the yield binary-search tolerance for packing-based
	// algorithms; <= 0 selects the paper's 1e-4.
	Tolerance float64
	// Seed drives the randomized-rounding algorithms; ignored otherwise.
	Seed int64
	// Attempts caps rounding retries for RRND/RRNZ; <= 0 selects 20.
	Attempts int
	// MaxNodes caps branch-and-bound nodes for EXACT; <= 0 selects 100000.
	MaxNodes int
	// Parallel enables the concurrent meta-strategy runner for METAHVP and
	// METAHVPLIGHT.
	Parallel bool
}

func (o *Options) attempts() int {
	if o == nil || o.Attempts <= 0 {
		return 20
	}
	return o.Attempts
}

func (o *Options) tol() float64 {
	if o == nil {
		return 0
	}
	return o.Tolerance
}

func (o *Options) seed() int64 {
	if o == nil {
		return 1
	}
	return o.Seed
}

// Algorithms returns the registered algorithm names in display order.
func Algorithms() []string {
	names := []string{AlgoExact, AlgoRRND, AlgoRRNZ, AlgoMetaGreedy, AlgoMetaVP, AlgoMetaHVP, AlgoMetaHVPLight}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return names
}

// Solve runs the named algorithm on p. A nil opts selects paper defaults.
// The returned result has Solved=false when the algorithm cannot place all
// services (this is an outcome, not an error); errors indicate invalid input
// or solver breakdown.
func Solve(name string, p *Problem, opts *Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch name {
	case AlgoExact:
		var mo *milp.Options
		if opts != nil && opts.MaxNodes > 0 {
			mo = &milp.Options{MaxNodes: opts.MaxNodes}
		}
		return relax.SolveExact(p, mo)
	case AlgoRRND, AlgoRRNZ:
		rel, err := relax.SolveRelaxed(p)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opts.seed()))
		if name == AlgoRRND {
			return relax.RRND(p, rel, opts.attempts(), rng), nil
		}
		return relax.RRNZ(p, rel, opts.attempts(), rng), nil
	case AlgoMetaGreedy:
		return greedy.MetaGreedy(p, opts != nil && opts.Parallel), nil
	case AlgoMetaVP:
		return vp.MetaVP(p, opts.tol()), nil
	case AlgoMetaHVP:
		if opts != nil && opts.Parallel {
			return hvp.MetaParallel(p, hvp.Strategies(), opts.tol(), 0), nil
		}
		return hvp.MetaHVP(p, opts.tol()), nil
	case AlgoMetaHVPLight:
		if opts != nil && opts.Parallel {
			return hvp.MetaParallel(p, hvp.LightStrategies(), opts.tol(), 0), nil
		}
		return hvp.MetaHVPLight(p, opts.tol()), nil
	default:
		return nil, fmt.Errorf("vmalloc: unknown algorithm %q (known: %v)", name, Algorithms())
	}
}

// RelaxedUpperBound returns the rational relaxation's optimal minimum yield,
// an upper bound on every feasible solution, or -1 when the instance is
// infeasible even fractionally.
func RelaxedUpperBound(p *Problem) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return relax.UpperBound(p)
}

// SchedPolicy selects a §6 CPU-sharing policy.
type SchedPolicy = sched.Policy

// Re-exported scheduling policies.
const (
	PolicyAllocCaps    = sched.AllocCaps
	PolicyAllocWeights = sched.AllocWeights
	PolicyEqualWeights = sched.EqualWeights
)

// EvaluateWithErrors computes the minimum achieved yield when the placement
// pl — computed from the estimates in est — runs against the true CPU needs
// in trueP under the given policy. cpuDim selects the CPU dimension
// (workload-generated problems use dimension 0).
func EvaluateWithErrors(trueP, est *Problem, pl Placement, policy SchedPolicy, cpuDim int) float64 {
	return sched.EvaluatePlacement(trueP, est, pl, policy, cpuDim)
}

// PerturbCPUNeeds returns an estimated copy of p whose aggregate CPU needs
// are shifted by uniform errors within ±maxErr (§6.2).
func PerturbCPUNeeds(p *Problem, maxErr float64, seed int64) *Problem {
	return workload.PerturbCPUNeeds(p, maxErr, rand.New(rand.NewSource(seed)))
}

// ApplyThreshold rounds every estimated CPU need up to at least threshold,
// the paper's mitigation strategy for bounded estimate errors.
func ApplyThreshold(est *Problem, cpuDim int, threshold float64) *Problem {
	return sched.ApplyThreshold(est, cpuDim, threshold)
}

// ZeroKnowledgePlacement spreads services evenly across feasible nodes, the
// baseline used when nothing is known about CPU needs.
func ZeroKnowledgePlacement(p *Problem) Placement {
	return sched.ZeroKnowledgePlacement(p)
}

// FeasibleAtYield reports whether the placement supports a uniform yield of
// at least y on every node.
func FeasibleAtYield(p *Problem, pl Placement, y float64) bool {
	return core.FeasibleAtYield(p, pl, y)
}

// Improve hill-climbs from a solved placement over single-service moves and
// pairwise swaps, never decreasing the minimum yield. Useful as a cheap
// post-pass after any Solve call.
func Improve(p *Problem, pl Placement) *Result {
	return opt.Improve(p, pl, nil)
}

// Repair adapts a previous placement to a changed workload: still-feasible
// services stay put, new or displaced services are re-placed by best fit,
// and at most budget previously-placed services move (negative = unlimited).
func Repair(p *Problem, prev Placement, budget int) *Result {
	return opt.Repair(p, prev, &opt.RepairOptions{Budget: budget, Improve: true})
}

// Migrations counts services whose node changed from prev to next (new
// arrivals, unplaced in prev, do not count).
func Migrations(prev, next Placement) int { return opt.Migrations(prev, next) }

// Materialize converts a solved result into explicit per-service allocation
// vectors (the §2 ordered pairs) with capacity checking available via
// Allocation.Check.
func Materialize(p *Problem, res *Result) (*Allocation, error) {
	return core.Materialize(p, res)
}

// Allocation re-exports the materialized allocation type.
type Allocation = core.Allocation
