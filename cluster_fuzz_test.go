package vmalloc

import (
	"math"
	"testing"
)

// FuzzClusterAdd throws arbitrary service vectors — including NaN, Inf,
// negatives and wrong dimensionalities — at the public admission boundary.
// The contract: malformed input comes back as an error (never a panic, never
// silent acceptance), and well-formed input never errors. This is the
// validation the durable tier relies on so no poisoned vector is ever
// journaled.
func FuzzClusterAdd(f *testing.F) {
	f.Add(0.1, 0.1, 0.1, 0.1, 0.2, 0.0, 0.2, 0.0, false)
	f.Add(math.NaN(), 0.1, 0.1, 0.1, 0.2, 0.0, 0.2, 0.0, false)
	f.Add(0.1, 0.1, math.Inf(1), 0.1, 0.2, 0.0, 0.2, 0.0, false)
	f.Add(-0.5, 0.1, 0.1, 0.1, 0.2, 0.0, 0.2, 0.0, false)
	f.Add(0.1, 0.1, 0.1, 0.1, 0.2, 0.0, -1e300, 0.0, true)
	f.Add(1e308, 1e308, 1e308, 1e308, 1e308, 1e308, 1e308, 1e308, false)
	f.Fuzz(func(t *testing.T, re1, re2, ra1, ra2, ne1, ne2, na1, na2 float64, threeDim bool) {
		c, err := NewCluster([]Node{
			{Elementary: Of(1, 1), Aggregate: Of(4, 2)},
			{Elementary: Of(0.5, 0.5), Aggregate: Of(2, 1)},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		reqElem, reqAgg := Of(re1, re2), Of(ra1, ra2)
		needElem, needAgg := Of(ne1, ne2), Of(na1, na2)
		if threeDim {
			needAgg = Of(na1, na2, 0) // dimensionality mismatch
		}
		svc := Service{ReqElem: reqElem, ReqAgg: reqAgg, NeedElem: needElem, NeedAgg: needAgg}

		valid := !threeDim
		for _, x := range []float64{re1, re2, ra1, ra2, ne1, ne2, na1, na2} {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				valid = false
			}
		}
		id, ok, err := c.Add(svc)
		if valid && err != nil {
			t.Fatalf("well-formed service rejected with error: %v", err)
		}
		if !valid && err == nil {
			t.Fatalf("malformed service accepted (ok=%v)", ok)
		}
		if err != nil && ok {
			t.Fatal("error and ok both set")
		}
		if err != nil && c.Len() != 0 {
			t.Fatal("failed admission mutated the cluster")
		}
		if ok {
			// An admitted service is fully live: present, placed, removable.
			if _, found := c.Node(id); !found {
				t.Fatal("admitted service has no node")
			}
			// The same vectors must survive the state round trip.
			st := c.State()
			if len(st.Services) != 1 || st.Services[0].ID != id {
				t.Fatalf("state does not show the admitted service: %+v", st.Services)
			}
			if !c.Remove(id) {
				t.Fatal("admitted service not removable")
			}
		}
		// The cluster stays usable either way.
		if ep := c.Reallocate(); !ep.Result.Solved && c.Len() > 0 {
			t.Fatal("post-fuzz reallocation failed on live services")
		}
	})
}

// FuzzClusterUpdateNeeds covers the other vector-accepting mutation.
func FuzzClusterUpdateNeeds(f *testing.F) {
	f.Add(0.1, 0.0, 0.1, 0.0)
	f.Add(math.NaN(), 0.0, 0.1, 0.0)
	f.Add(0.1, math.Inf(-1), 0.1, 0.0)
	f.Add(-1.0, 0.0, 0.1, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c1, d float64) {
		c, err := NewCluster([]Node{{Elementary: Of(1, 1), Aggregate: Of(4, 2)}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		id, ok, err := c.Add(Service{
			ReqElem: Of(0.1, 0.1), ReqAgg: Of(0.1, 0.1),
			NeedElem: Of(0.1, 0), NeedAgg: Of(0.1, 0),
		})
		if err != nil || !ok {
			t.Fatalf("seed admission failed: ok=%v err=%v", ok, err)
		}
		valid := true
		for _, x := range []float64{a, b, c1, d} {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				valid = false
			}
		}
		err = c.UpdateNeeds(id, Of(a, b), Of(a, b), Of(c1, d), Of(c1, d))
		if valid && err != nil {
			t.Fatalf("well-formed needs rejected: %v", err)
		}
		if !valid && err == nil {
			t.Fatal("malformed needs accepted")
		}
		if !c.Reallocate().Result.Solved {
			t.Fatal("cluster unusable after fuzzed update")
		}
	})
}
