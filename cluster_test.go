package vmalloc

import (
	"math"
	"math/rand"
	"testing"
)

func clusterNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			Elementary: Of(0.25, 1.0),
			Aggregate:  Of(1.0, 1.0),
		}
	}
	return nodes
}

func clusterService(rng *rand.Rand) Service {
	mem := 0.02 + rng.Float64()*0.1
	need := rng.Float64() * 0.25
	return Service{
		ReqElem:  Of(0.01, mem),
		ReqAgg:   Of(0.01, mem),
		NeedElem: Of(need/4, 0),
		NeedAgg:  Of(need, 0),
	}
}

func TestClusterLifecycle(t *testing.T) {
	c, err := NewCluster(clusterNodes(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(nil, nil); err == nil {
		t.Fatal("accepted an empty platform")
	}
	rng := rand.New(rand.NewSource(1))
	var ids []int
	for i := 0; i < 24; i++ {
		if id, ok, _ := c.Add(clusterService(rng)); ok {
			ids = append(ids, id)
		}
	}
	if c.Len() != len(ids) || len(ids) == 0 {
		t.Fatalf("Len %d, admitted %d", c.Len(), len(ids))
	}
	ep := c.Reallocate()
	if !ep.Result.Solved {
		t.Fatal("reallocation failed")
	}
	if len(ep.IDs) != len(ids) {
		t.Fatalf("%d ids in epoch, want %d", len(ep.IDs), len(ids))
	}
	for i, id := range ep.IDs {
		h, ok := c.Node(id)
		if !ok || h != ep.Result.Placement[i] {
			t.Fatalf("id %d on node %d, placement says %d", id, h, ep.Result.Placement[i])
		}
	}
	if y := c.MinYield(PolicyAllocWeights); y < 0 || y > 1 {
		t.Fatalf("min yield %v out of range", y)
	}

	// Departures and a bounded repair epoch.
	for i := 0; i < 6; i++ {
		if !c.Remove(ids[i]) {
			t.Fatalf("remove of live id %d failed", ids[i])
		}
	}
	if c.Remove(ids[0]) {
		t.Fatal("double remove succeeded")
	}
	rep := c.Repair(2)
	if rep.Result.Solved && rep.Migrations > 2 {
		t.Fatalf("repair migrated %d services over budget 2", rep.Migrations)
	}

	p, pl, snapIDs := c.Snapshot()
	if p.NumServices() != c.Len() || len(pl) != c.Len() || len(snapIDs) != c.Len() {
		t.Fatal("snapshot shape mismatch")
	}
	if res := EvaluatePlacement(p, pl); !res.Solved {
		t.Fatal("snapshot placement infeasible")
	}
}

func TestClusterEstimatesAndThreshold(t *testing.T) {
	c, err := NewCluster(clusterNodes(2), &ClusterOptions{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	trueSvc := Service{
		ReqElem: Of(0.01, 0.05), ReqAgg: Of(0.01, 0.05),
		NeedElem: Of(0.05, 0), NeedAgg: Of(0.2, 0),
	}
	estSvc := trueSvc
	estSvc.NeedElem = Of(0.005, 0)
	estSvc.NeedAgg = Of(0.02, 0) // underestimate, below the threshold
	id, ok, err := c.AddWithEstimate(trueSvc, estSvc)
	if err != nil || !ok {
		t.Fatalf("admission failed: ok=%v err=%v", ok, err)
	}
	ep := c.Reallocate()
	if !ep.Result.Solved {
		t.Fatal("reallocation failed")
	}
	// With the 0.1 threshold the floored estimate halves the error; the
	// achieved yield must reflect the true need being undersupplied but
	// nonzero.
	y := c.MinYield(PolicyAllocWeights)
	if y <= 0 || y > 1 {
		t.Fatalf("min yield %v with mitigation", y)
	}
	if err := c.UpdateNeeds(id, Of(0.05, 0), Of(0.2, 0), Of(0.05, 0), Of(0.2, 0)); err != nil {
		t.Fatalf("UpdateNeeds failed: %v", err)
	}
	c.SetThreshold(0)
	c.Reallocate()
	if y := c.MinYield(PolicyAllocWeights); y < 0.999 {
		t.Fatalf("exact estimates should reach yield 1, got %v", y)
	}
}

// TestClusterRejectsMalformedInput pins the public-boundary validation:
// wrong dimensionality or NaN entries must surface as errors, never reach
// the engine, and leave the cluster untouched.
func TestClusterRejectsMalformedInput(t *testing.T) {
	c, err := NewCluster(clusterNodes(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	threeDim := Service{
		ReqElem: Of(0.1, 0.1, 0.1), ReqAgg: Of(0.1, 0.1, 0.1),
		NeedElem: Of(0, 0, 0), NeedAgg: Of(0, 0, 0),
	}
	if _, _, err := c.Add(threeDim); err == nil {
		t.Fatal("accepted a 3-dimensional service on a 2-dimensional platform")
	}
	bad := clusterService(rand.New(rand.NewSource(1)))
	bad.NeedAgg[0] = math.NaN()
	if _, _, err := c.Add(bad); err == nil {
		t.Fatal("accepted a NaN need")
	}
	good := clusterService(rand.New(rand.NewSource(2)))
	bad2 := good
	bad2.NeedElem = Of(-0.1, 0)
	if _, _, err := c.AddWithEstimate(good, bad2); err == nil {
		t.Fatal("accepted a negative estimated need")
	}
	if c.Len() != 0 {
		t.Fatalf("rejected input still mutated the cluster: Len=%d", c.Len())
	}
	id, ok, err := c.Add(good)
	if err != nil || !ok {
		t.Fatalf("valid service rejected: ok=%v err=%v", ok, err)
	}
	if err := c.UpdateNeeds(id, Of(0.1), Of(0.1), Of(0.1), Of(0.1)); err == nil {
		t.Fatal("accepted 1-dimensional need vectors")
	}
	if err := c.UpdateNeeds(id+999, Of(0.1, 0), Of(0.1, 0), Of(0.1, 0), Of(0.1, 0)); err == nil {
		t.Fatal("accepted an unknown id")
	}
}

// TestClusterParallelMatchesSequential feeds the same admission history to a
// sequential and a parallel cluster and requires identical epochs.
func TestClusterParallelMatchesSequential(t *testing.T) {
	seq, _ := NewCluster(clusterNodes(4), nil)
	par, _ := NewCluster(clusterNodes(4), &ClusterOptions{Parallel: true, Workers: 3})
	rng1 := rand.New(rand.NewSource(5))
	rng2 := rand.New(rand.NewSource(5))
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i < 10; i++ {
			seq.Add(clusterService(rng1))
			par.Add(clusterService(rng2))
		}
		a, b := seq.Reallocate(), par.Reallocate()
		if a.Result.Solved != b.Result.Solved || a.Result.MinYield != b.Result.MinYield ||
			a.Migrations != b.Migrations {
			t.Fatalf("epoch %d: sequential and parallel epochs differ", epoch)
		}
		for i := range a.Result.Placement {
			if a.Result.Placement[i] != b.Result.Placement[i] {
				t.Fatalf("epoch %d: placement[%d] differs", epoch, i)
			}
		}
	}
}

func TestClusterCustomPlacer(t *testing.T) {
	calls := 0
	c, err := NewCluster(clusterNodes(2), &ClusterOptions{
		Placer: func(p *Problem) *Result {
			calls++
			res, err := Solve(AlgoMetaHVPLight, p, nil)
			if err != nil {
				return &Result{}
			}
			return res
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		c.Add(clusterService(rng))
	}
	if ep := c.Reallocate(); !ep.Result.Solved {
		t.Fatal("custom placer epoch failed")
	}
	if calls == 0 {
		t.Fatal("custom placer never invoked")
	}
}

func TestClusterLPBoundPath(t *testing.T) {
	c, err := NewCluster(clusterNodes(3), &ClusterOptions{UseLPBound: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 5; i++ {
			c.Add(clusterService(rng))
		}
		ep := c.Reallocate()
		if !ep.Result.Solved {
			t.Fatalf("LP-bracketed epoch %d failed", epoch)
		}
		if ep.Result.MinYield < 0 || ep.Result.MinYield > 1 {
			t.Fatalf("yield %v out of range", ep.Result.MinYield)
		}
	}
}
