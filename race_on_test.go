//go:build race

package vmalloc

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation skews wall-clock comparisons.
const raceEnabled = true
