package vmalloc

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func stateTestNodes() []Node {
	return []Node{
		{Name: "a", Elementary: Of(1, 1), Aggregate: Of(4, 2)},
		{Name: "b", Elementary: Of(0.5, 0.5), Aggregate: Of(2, 1)},
		{Elementary: Of(2, 2), Aggregate: Of(2, 2)},
	}
}

func stateTestService(cpu float64) Service {
	return Service{
		ReqElem: Of(cpu, cpu/2), ReqAgg: Of(cpu, cpu/2),
		NeedElem: Of(cpu, 0), NeedAgg: Of(cpu, 0),
	}
}

// TestClusterHookReplayReproducesState drives a cluster while recording hook
// events, replays the recorded decisions into a second cluster through the
// restore API, and demands identical durable state — the contract the
// journal's log-the-decision design rests on.
func TestClusterHookReplayReproducesState(t *testing.T) {
	src, err := NewCluster(stateTestNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewCluster(stateTestNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var replayErr error
	src.SetHook(func(ev *ClusterEvent) {
		if replayErr != nil {
			return
		}
		switch ev.Op {
		case ClusterOpAdd:
			replayErr = dst.RestoreAdd(ev.ID, ev.Node, *ev.TrueSvc, *ev.EstSvc)
		case ClusterOpRemove:
			if !dst.Remove(ev.ID) {
				t.Errorf("replay remove %d failed", ev.ID)
			}
		case ClusterOpUpdateNeeds:
			replayErr = dst.UpdateNeeds(ev.ID, ev.Needs[0], ev.Needs[1], ev.Needs[2], ev.Needs[3])
		case ClusterOpSetThreshold:
			dst.SetThreshold(ev.Threshold)
		case ClusterOpEpoch:
			_, replayErr = dst.ApplyPlacement(ev.IDs, ev.Placement)
		}
	})

	ids := make([]int, 0, 8)
	for i := 0; i < 6; i++ {
		id, ok, err := src.Add(stateTestService(0.2 + 0.05*float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			ids = append(ids, id)
		}
	}
	src.SetThreshold(0.3)
	src.Reallocate()
	if err := src.UpdateNeeds(ids[1], Of(0.4, 0), Of(0.4, 0), Of(0.4, 0), Of(0.4, 0)); err != nil {
		t.Fatal(err)
	}
	src.Remove(ids[0])
	src.Repair(1)
	if replayErr != nil {
		t.Fatalf("replay: %v", replayErr)
	}

	if !reflect.DeepEqual(src.State(), dst.State()) {
		t.Fatal("replayed cluster state differs from source")
	}

	// Rejected admissions emit no event: an impossible service leaves the
	// replayed twin untouched.
	events := 0
	src.SetHook(func(*ClusterEvent) { events++ })
	if _, ok, err := src.Add(stateTestService(100)); err != nil || ok {
		t.Fatalf("impossible admission: ok=%v err=%v", ok, err)
	}
	if events != 0 {
		t.Fatalf("rejected admission emitted %d events", events)
	}
}

func TestClusterStateJSONRoundTrip(t *testing.T) {
	c, err := NewCluster(stateTestNodes(), &ClusterOptions{Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := c.Add(stateTestService(0.1 + 0.1*float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Reallocate()
	st := c.State()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back ClusterState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, st) {
		t.Fatalf("state JSON round trip lost information:\n got  %+v\n want %+v", &back, st)
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("state JSON re-encoding not byte-identical")
	}

	// A restored cluster serializes to the same bytes.
	rc, err := RestoreCluster(&back, nil)
	if err != nil {
		t.Fatal(err)
	}
	data3, err := json.Marshal(rc.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data3) {
		t.Fatal("restored cluster state differs from source bytes")
	}
}

func TestClusterStateValidateRejects(t *testing.T) {
	good := func() *ClusterState {
		c, err := NewCluster(stateTestNodes(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Add(stateTestService(0.2)); err != nil {
			t.Fatal(err)
		}
		return c.State()
	}
	for _, tc := range []struct {
		name   string
		break_ func(*ClusterState)
	}{
		{"no nodes", func(st *ClusterState) { st.Nodes = nil }},
		{"negative capacity", func(st *ClusterState) { st.Nodes[0].Aggregate[0] = -1 }},
		{"bad node index", func(st *ClusterState) { st.Services[0].Node = 99 }},
		{"next id too low", func(st *ClusterState) { st.NextID = 0 }},
		{"negative need", func(st *ClusterState) { st.Services[0].True.NeedAgg[0] = -0.5 }},
		{"dim mismatch", func(st *ClusterState) { st.Services[0].Est.ReqElem = Of(1) }},
		{"load count", func(st *ClusterState) { st.ReqLoads = st.ReqLoads[:1] }},
		{"negative threshold", func(st *ClusterState) { st.Threshold = -0.1 }},
	} {
		st := good()
		tc.break_(st)
		if err := st.Validate(); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestSetThresholdRejectsInvalid(t *testing.T) {
	c, err := NewCluster(stateTestNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if err := c.SetThreshold(th); err == nil {
			t.Fatalf("threshold %v accepted", th)
		}
	}
	if err := c.SetThreshold(0.3); err != nil {
		t.Fatalf("valid threshold rejected: %v", err)
	}
	if _, err := NewCluster(stateTestNodes(), &ClusterOptions{Threshold: math.Inf(1)}); err == nil {
		t.Fatal("NewCluster accepted an infinite threshold")
	}
}
