package engine

import (
	"fmt"
	"sort"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// ServiceState is the durable description of one live service: its identity,
// its current node and both service descriptors.
type ServiceState struct {
	ID   int          `json:"id"`
	Node int          `json:"node"`
	True core.Service `json:"true"`
	Est  core.Service `json:"est"`
}

// State is the complete logical state of an engine, detached from all
// internal buffers: everything needed to reconstruct an engine that behaves
// bit-identically to the original from this point on. Nodes and the solver
// configuration travel separately (they are fixed at construction).
//
// ReqLoads/NeedLoads capture the incrementally maintained per-node load
// vectors. They are derivable from Services — recomputing them canonically
// (ascending id) gives values within floating-point drift of the running
// engine — but are carried verbatim so a restored engine's future admission
// decisions cannot diverge from the original by an ULP. When absent (hand-
// written state files), Restore recomputes them canonically.
type State struct {
	Threshold float64        `json:"threshold"`
	NextID    int            `json:"next_id"`
	Services  []ServiceState `json:"services"`
	ReqLoads  []vec.Vec      `json:"req_loads,omitempty"`
	NeedLoads []vec.Vec      `json:"need_loads,omitempty"`
}

// State returns a deep copy of the engine's logical state, services in
// ascending id order.
func (e *Engine) State() *State {
	st := &State{
		Threshold: e.threshold,
		NextID:    e.nextID,
		Services:  make([]ServiceState, 0, len(e.live)),
		ReqLoads:  make([]vec.Vec, len(e.reqLoads)),
		NeedLoads: make([]vec.Vec, len(e.needLoads)),
	}
	for _, si := range e.live {
		sl := &e.slots[si]
		st.Services = append(st.Services, ServiceState{
			ID:   sl.id,
			Node: sl.node,
			True: cloneService(sl.trueSvc),
			Est:  cloneService(sl.estSvc),
		})
	}
	sort.Slice(st.Services, func(i, j int) bool { return st.Services[i].ID < st.Services[j].ID })
	for h := range e.reqLoads {
		st.ReqLoads[h] = e.reqLoads[h].Clone()
		st.NeedLoads[h] = e.needLoads[h].Clone()
	}
	return st
}

// Restore builds an engine from a previously captured state. The returned
// engine continues bit-identically to the one that produced st: services are
// reinstalled in ascending id order, and the per-node loads are either taken
// verbatim from st or — when st omits them — recomputed canonically, which is
// the same arithmetic the running engine applies after every applied epoch.
func Restore(cfg Config, st *State) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.threshold = st.Threshold
	d := e.Dim()
	maxID := -1
	for i := range st.Services {
		ss := &st.Services[i]
		if i > 0 && ss.ID <= st.Services[i-1].ID {
			return nil, fmt.Errorf("engine: restore: service ids not strictly ascending at index %d", i)
		}
		if err := e.RestoreAdd(ss.ID, ss.Node, ss.True, ss.Est); err != nil {
			return nil, err
		}
		if ss.ID > maxID {
			maxID = ss.ID
		}
	}
	if st.NextID <= maxID {
		return nil, fmt.Errorf("engine: restore: next id %d not above max live id %d", st.NextID, maxID)
	}
	e.nextID = st.NextID
	if st.ReqLoads != nil || st.NeedLoads != nil {
		if len(st.ReqLoads) != len(e.reqLoads) || len(st.NeedLoads) != len(e.needLoads) {
			return nil, fmt.Errorf("engine: restore: %d/%d load vectors, want %d",
				len(st.ReqLoads), len(st.NeedLoads), len(e.reqLoads))
		}
		for h := range st.ReqLoads {
			if st.ReqLoads[h].Dim() != d || st.NeedLoads[h].Dim() != d {
				return nil, fmt.Errorf("engine: restore: load vector of node %d has wrong dimension", h)
			}
			copy(e.reqLoads[h], st.ReqLoads[h])
			copy(e.needLoads[h], st.NeedLoads[h])
		}
	}
	// Without explicit loads the RestoreAdd accumulation above already
	// equals the canonical ascending-id recomputation.
	return e, nil
}

// RestoreAdd installs a service with an already-decided identity and node,
// mirroring the arithmetic of a live Add exactly (slab slot, live list,
// incremental load accumulation) but skipping the admission test: the
// decision was made — and journaled — when the service was first admitted.
// Node may be core.Unplaced for a service that was admitted but displaced.
// The next fresh id is bumped past id.
func (e *Engine) RestoreAdd(id, node int, trueSvc, estSvc core.Service) error {
	if id < 0 {
		return fmt.Errorf("engine: restore add: negative id %d", id)
	}
	if _, exists := e.byID[id]; exists {
		return fmt.Errorf("engine: restore add: id %d already live", id)
	}
	if node != core.Unplaced && (node < 0 || node >= len(e.cfg.Nodes)) {
		return fmt.Errorf("engine: restore add: node %d out of range [0,%d)", node, len(e.cfg.Nodes))
	}
	d := e.Dim()
	for _, svc := range []*core.Service{&trueSvc, &estSvc} {
		if svc.ReqElem.Dim() != d || svc.ReqAgg.Dim() != d ||
			svc.NeedElem.Dim() != d || svc.NeedAgg.Dim() != d {
			return fmt.Errorf("engine: restore add: service %d has wrong dimensionality", id)
		}
	}
	si := e.allocSlot()
	sl := &e.slots[si]
	sl.id = id
	sl.trueSvc = cloneService(trueSvc)
	sl.estSvc = cloneService(estSvc)
	sl.node = node
	sl.used = true
	sl.livePos = len(e.live)
	e.live = append(e.live, si)
	e.byID[id] = si
	if id >= e.nextID {
		e.nextID = id + 1
	}
	if node != core.Unplaced {
		e.reqLoads[node].AccumAdd(sl.trueSvc.ReqAgg)
		e.needLoads[node].AccumAdd(sl.trueSvc.NeedAgg)
	}
	return nil
}

// ApplyPlacementByID applies an externally decided placement — typically one
// replayed from the journal — to the live services: ids[i] moves to
// placement[i]. The id list must cover exactly the live services in
// ascending order (the canonical epoch view order), so a journaled epoch
// re-applies against precisely the state it was computed from. Migrations of
// already-placed services are counted and the per-node loads are recomputed
// canonically, exactly as after a live solved epoch.
func (e *Engine) ApplyPlacementByID(ids []int, placement core.Placement) (migrations int, err error) {
	if len(ids) != len(placement) {
		return 0, fmt.Errorf("engine: apply placement: %d ids but %d placements", len(ids), len(placement))
	}
	if len(ids) != len(e.live) {
		return 0, fmt.Errorf("engine: apply placement: %d ids but %d live services", len(ids), len(e.live))
	}
	e.buildViews()
	for i, id := range ids {
		if id != e.ids[i] {
			return 0, fmt.Errorf("engine: apply placement: id %d at index %d, live view has %d", id, i, e.ids[i])
		}
		if h := placement[i]; h < 0 || h >= len(e.cfg.Nodes) {
			return 0, fmt.Errorf("engine: apply placement: service %d placed on invalid node %d", id, h)
		}
	}
	res := &core.Result{Solved: true, Placement: placement}
	return e.apply(res), nil
}
