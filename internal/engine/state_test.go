package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

func stateTestNodes(h int, seed int64) []core.Node {
	return workload.Platform(workload.Scenario{
		Hosts: h, COV: 0.4, Mode: workload.HeteroBoth, Seed: seed,
	}, rand.New(rand.NewSource(seed)))
}

func randomService(rng *rand.Rand) core.Service {
	req := vec.Of(0.05+0.15*rng.Float64(), 0.05+0.15*rng.Float64())
	need := vec.Of(0.1+0.3*rng.Float64(), 0.05*rng.Float64())
	return core.Service{
		ReqElem: req.Clone(), ReqAgg: req.Clone(),
		NeedElem: need.Clone(), NeedAgg: need.Clone(),
	}
}

// driveOps applies a deterministic mixed workload of n operations to e,
// mirroring what the durable service journals: admissions, departures, need
// updates, threshold changes and reallocation/repair epochs.
func driveOps(t *testing.T, e *Engine, rng *rand.Rand, n int, liveIDs *[]int) {
	t.Helper()
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 4: // admission
			s := randomService(rng)
			est := s
			est.NeedAgg = s.NeedAgg.Scale(1 + 0.2*(rng.Float64()-0.5))
			est.NeedElem = s.NeedElem.Clone()
			est.ReqElem, est.ReqAgg = s.ReqElem.Clone(), s.ReqAgg.Clone()
			if id, _, ok := e.Add(s, est); ok {
				*liveIDs = append(*liveIDs, id)
			}
		case k < 6: // departure
			if len(*liveIDs) > 0 {
				idx := rng.Intn(len(*liveIDs))
				id := (*liveIDs)[idx]
				if !e.Remove(id) {
					t.Fatalf("remove of live id %d failed", id)
				}
				*liveIDs = append((*liveIDs)[:idx], (*liveIDs)[idx+1:]...)
			}
		case k < 7: // need update
			if len(*liveIDs) > 0 {
				id := (*liveIDs)[rng.Intn(len(*liveIDs))]
				nv := vec.Of(0.1+0.3*rng.Float64(), 0.05*rng.Float64())
				if !e.UpdateNeeds(id, nv.Clone(), nv.Clone(), nv.Clone(), nv.Clone()) {
					t.Fatalf("update of live id %d failed", id)
				}
			}
		case k < 8: // threshold change
			e.SetThreshold(0.1 + 0.2*rng.Float64())
		case k < 9: // full reallocation
			e.Reallocate()
		default: // bounded repair
			e.Repair(2)
		}
	}
}

// TestStateRestoreBitIdentical captures engine state mid-trajectory, restores
// a second engine from it, drives both with the identical remaining
// operation sequence, and demands bit-identical final states — the
// determinism contract the WAL replay path relies on.
func TestStateRestoreBitIdentical(t *testing.T) {
	nodes := stateTestNodes(6, 11)
	cfg := Config{Nodes: nodes}
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var live []int
	driveOps(t, orig, rng, 120, &live)

	st := orig.State()
	restored, err := Restore(cfg, st)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !reflect.DeepEqual(restored.State(), st) {
		t.Fatal("restored engine state differs immediately after Restore")
	}

	// Drive both engines with the same op tape.
	tape1 := rand.New(rand.NewSource(99))
	tape2 := rand.New(rand.NewSource(99))
	live1 := append([]int(nil), live...)
	live2 := append([]int(nil), live...)
	driveOps(t, orig, tape1, 150, &live1)
	driveOps(t, restored, tape2, 150, &live2)

	st1, st2 := orig.State(), restored.State()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("trajectories diverged after restore:\n orig     %+v\n restored %+v", st1, st2)
	}
	// The load vectors must match bit for bit, not just approximately:
	// replay re-applies the same float additions in the same order.
	for h := range st1.ReqLoads {
		for d := range st1.ReqLoads[h] {
			if st1.ReqLoads[h][d] != st2.ReqLoads[h][d] || st1.NeedLoads[h][d] != st2.NeedLoads[h][d] {
				t.Fatalf("node %d load differs in dim %d", h, d)
			}
		}
	}
}

// TestRestoreWithoutLoadsRecomputesCanonically checks the hand-written-state
// path: omitting the load vectors restores loads equal to the canonical
// recomputation.
func TestRestoreWithoutLoadsRecomputesCanonically(t *testing.T) {
	nodes := stateTestNodes(4, 3)
	cfg := Config{Nodes: nodes}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var live []int
	driveOps(t, e, rng, 60, &live)
	e.Reallocate() // ends with canonical loads

	st := e.State()
	st.ReqLoads, st.NeedLoads = nil, nil
	restored, err := Restore(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	want, got := e.State(), restored.State()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("canonical load recomputation differs:\n want %+v\n got  %+v", want, got)
	}
}

// TestApplyPlacementByIDMatchesLiveEpoch replays one engine's solved epoch
// into a twin via ApplyPlacementByID and demands the same state as solving
// live.
func TestApplyPlacementByIDMatchesLiveEpoch(t *testing.T) {
	nodes := stateTestNodes(5, 21)
	cfg := Config{Nodes: nodes}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var live []int
	driveOps(t, a, rng, 80, &live)

	b, err := Restore(cfg, a.State())
	if err != nil {
		t.Fatal(err)
	}
	rep := a.Reallocate()
	if !rep.Result.Solved {
		t.Skip("epoch unsolved at this seed; pick another")
	}
	migA := rep.Migrations
	ids := append([]int(nil), rep.IDs...)
	pl := rep.Result.Placement.Clone()

	migB, err := b.ApplyPlacementByID(ids, pl)
	if err != nil {
		t.Fatalf("ApplyPlacementByID: %v", err)
	}
	if migA != migB {
		t.Fatalf("migration counts differ: live %d, replay %d", migA, migB)
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatal("state after replayed epoch differs from live epoch")
	}
}

func TestApplyPlacementByIDValidation(t *testing.T) {
	nodes := stateTestNodes(3, 2)
	e, err := New(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	s := core.Service{
		ReqElem: vec.Of(0.1, 0.1), ReqAgg: vec.Of(0.1, 0.1),
		NeedElem: vec.Of(0.1, 0), NeedAgg: vec.Of(0.1, 0),
	}
	id, _, ok := e.Add(s, s)
	if !ok {
		t.Fatal("admission failed")
	}
	if _, err := e.ApplyPlacementByID([]int{id, id + 1}, core.Placement{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := e.ApplyPlacementByID([]int{id + 5}, core.Placement{0}); err == nil {
		t.Fatal("wrong id accepted")
	}
	if _, err := e.ApplyPlacementByID([]int{id}, core.Placement{7}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := e.ApplyPlacementByID([]int{id}, core.Placement{0}); err != nil {
		t.Fatalf("valid replay rejected: %v", err)
	}
}

func TestRestoreValidation(t *testing.T) {
	nodes := stateTestNodes(3, 2)
	cfg := Config{Nodes: nodes}
	svc := core.Service{
		ReqElem: vec.Of(0.1, 0.1), ReqAgg: vec.Of(0.1, 0.1),
		NeedElem: vec.Of(0.1, 0), NeedAgg: vec.Of(0.1, 0),
	}
	base := ServiceState{ID: 0, Node: 0, True: svc, Est: svc}
	for _, tc := range []struct {
		name string
		st   State
	}{
		{"duplicate ids", State{NextID: 2, Services: []ServiceState{base, base}}},
		{"descending ids", State{NextID: 5, Services: []ServiceState{
			{ID: 3, Node: 0, True: svc, Est: svc}, {ID: 1, Node: 0, True: svc, Est: svc}}}},
		{"next id too low", State{NextID: 0, Services: []ServiceState{base}}},
		{"bad node", State{NextID: 1, Services: []ServiceState{{ID: 0, Node: 9, True: svc, Est: svc}}}},
		{"bad dim", State{NextID: 1, Services: []ServiceState{{ID: 0, Node: 0,
			True: core.Service{ReqElem: vec.Of(1), ReqAgg: vec.Of(1), NeedElem: vec.Of(1), NeedAgg: vec.Of(1)},
			Est:  svc}}}},
		{"load count mismatch", State{NextID: 1, Services: []ServiceState{base},
			ReqLoads: []vec.Vec{vec.Of(0, 0)}, NeedLoads: []vec.Vec{vec.Of(0, 0)}}},
	} {
		if _, err := Restore(cfg, &tc.st); err == nil {
			t.Fatalf("%s: Restore accepted invalid state", tc.name)
		}
	}
}
