// Package engine is the persistent online allocation engine behind the
// dynamic hosting platform of the paper's §8: one long-lived object owns the
// mutable cluster state — live services, per-node loads, the true and
// estimated problem views — together with the long-lived solver resources
// (arena-backed vp.Solvers, LP warm-start bases) that the epoch hot path
// reuses across reallocations.
//
// The rebuild-per-epoch simulator this replaces recomputed everything from
// scratch at every event: per-node loads were re-summed over all live
// services on each arrival, departures scanned the arrival list linearly,
// and every reallocation rebuilt both problem views and a fresh solver
// arena. The engine instead maintains cluster state incrementally —
//
//   - live services sit in a slab with an id→slot map; departures unlink in
//     O(1) by swap-removing the live list,
//   - per-node requirement and need loads are updated on arrival/departure
//     and recomputed canonically (ascending service id) after each applied
//     reallocation, so admission is O(H·D) instead of O(J·H·D),
//   - the problem views recycle their backing arrays (services are listed in
//     ascending id order, which equals arrival order, so view-dependent
//     tie-breaking is identical to the arrival-ordered rebuild), and
//   - one arena vp.Solver per engine — or one per worker when Parallel — is
//     Rebind-ed to the mutated view each epoch, keeping bin-order caches and
//     flat buffers warm; with UseLPBound the sparse-relaxation bracket bound
//     re-solves warm-started from the previous epoch's optimal basis.
//
// Reallocation through the engine is result-identical to the
// rebuild-per-epoch path: a Rebind-ed solver behaves exactly like a fresh
// one, the sequential meta sweep is unchanged, and the Parallel mode races
// strategies under a lowest-index-success reduction that provably returns
// the sequential result (see hvp.MetaDeterministicSolvers) — so for a given
// engine the trajectory is a function of its history alone, worker count
// notwithstanding. One caveat separates the engine from the *historical*
// simulator it replaces: the incremental load updates of Remove are not
// floating-point-identical to re-summing loads from scratch on every
// arrival, so an admission whose best-fit scores tie within one ULP could
// in principle resolve differently than the old code. The golden-trajectory
// tests pin equality at the acceptance-scale seeds; cross-implementation
// identity beyond that is overwhelmingly likely but not proven.
package engine

import (
	"fmt"
	"math"
	"sort"
	"time"

	"vmalloc/internal/core"
	"vmalloc/internal/hvp"
	"vmalloc/internal/lp"
	"vmalloc/internal/obs"
	"vmalloc/internal/opt"
	"vmalloc/internal/relax"
	"vmalloc/internal/sched"
	"vmalloc/internal/sliceutil"
	"vmalloc/internal/vec"
	"vmalloc/internal/vp"
)

// Placer computes a placement from the (estimated, thresholded) problem
// view. The view is owned by the engine and valid only for the duration of
// the call.
type Placer func(p *core.Problem) *core.Result

// Config parameterizes an Engine.
type Config struct {
	// Nodes is the fixed physical platform (required, never mutated).
	Nodes []core.Node
	// CPUDim is the resource dimension the mitigation threshold applies to
	// (workload-generated problems use 0).
	CPUDim int
	// Tol is the yield binary-search tolerance of the built-in meta placer;
	// <= 0 selects the paper's default.
	Tol float64
	// Strategies is the packing roster of the built-in meta placer; nil
	// selects the METAHVPLIGHT set.
	Strategies []vp.Config
	// Placer overrides the built-in meta placer entirely (the engine's
	// persistent solvers are then unused).
	Placer Placer
	// Parallel races the strategy roster across Workers goroutines with the
	// deterministic lowest-index-success reduction: results stay bit-identical
	// to the sequential sweep.
	Parallel bool
	// Workers is the parallel worker count; <= 0 selects GOMAXPROCS.
	Workers int
	// UseLPBound brackets the built-in meta's binary search with the sparse
	// LP relaxation bound, warm-starting each epoch's relaxation from the
	// previous epoch's optimal basis. The relaxation solve is far from free —
	// enable it only when the roster/tolerance make packing dominate.
	UseLPBound bool
	// Now is the injected wall clock used solely to stamp
	// EpochReport.SolveNs; nil leaves SolveNs zero. The engine is
	// determinism-critical (its decisions are replayed from the WAL), so it
	// never reads the clock itself — time enters only through this seam,
	// wired to time.Now by the clock-owning callers (vmalloc.Cluster, the
	// platform driver, the shard router's own injected clock).
	Now func() time.Time
}

// slot is one slab entry.
type slot struct {
	id      int
	trueSvc core.Service
	estSvc  core.Service
	node    int
	livePos int // index into Engine.live while used
	used    bool
}

// EpochReport describes one Reallocate or Repair call.
type EpochReport struct {
	// Result is the solve outcome; its Placement is in IDs order. On
	// !Result.Solved the previous placement was kept.
	Result *core.Result
	// IDs lists the live service ids in view order (ascending id = arrival
	// order). The slice aliases an engine buffer valid until the next epoch.
	IDs []int
	// Services is len(IDs).
	Services int
	// Migrations counts already-placed services that changed node.
	Migrations int
	// SolveNs is the wall time of the placer (or repair) call alone —
	// view building and load recomputation excluded.
	SolveNs int64
	// Solver aggregates the solver-tier work counters of this epoch: the
	// vp packing attempts (drained from the persistent solvers), and with
	// UseLPBound the simplex/presolve work of the relaxation solves.
	Solver obs.SolverStats
}

// Engine is the persistent allocation engine. It is not safe for concurrent
// use; the Parallel option refers to internal worker parallelism within one
// Reallocate call.
type Engine struct {
	cfg     Config
	configs []vp.Config

	slots  []slot
	free   []int
	byID   map[int]int // service id -> slot index
	live   []int       // slot indices of live services, unordered
	nextID int

	// Per-node aggregate loads over live placed services: requirement and
	// need sums, maintained incrementally between epochs and recomputed
	// canonically (ascending id) after each applied reallocation.
	reqLoads  []vec.Vec
	needLoads []vec.Vec

	threshold float64

	// Epoch view state, rebuilt in place by buildViews.
	ids       []int
	trueP     core.Problem
	estP      core.Problem
	threshBuf []float64 // backs thresholded est need vectors, 2·J·D
	placeBuf  core.Placement

	solver *vp.Solver   // sequential persistent solver (lazy)
	pool   []*vp.Solver // parallel persistent solvers (lazy)
	basis  *lp.Basis    // LP warm-start basis carried across epochs

	// lpStats accumulates the relaxation-solve counters of the current
	// epoch (lpBound is called once per binary-search bracket); drained
	// into the EpochReport alongside the vp solver counters.
	lpStats obs.SolverStats
}

// New validates cfg and returns an empty engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("engine: no nodes")
	}
	d := cfg.Nodes[0].Aggregate.Dim()
	for h, n := range cfg.Nodes {
		if n.Aggregate.Dim() != d || n.Elementary.Dim() != d {
			return nil, fmt.Errorf("engine: node %d dimensionality mismatch", h)
		}
	}
	if cfg.CPUDim < 0 || cfg.CPUDim >= d {
		return nil, fmt.Errorf("engine: CPU dimension %d out of range [0,%d)", cfg.CPUDim, d)
	}
	configs := cfg.Strategies
	if configs == nil {
		configs = hvp.LightStrategies()
	}
	e := &Engine{
		cfg:       cfg,
		configs:   configs,
		byID:      make(map[int]int),
		reqLoads:  make([]vec.Vec, len(cfg.Nodes)),
		needLoads: make([]vec.Vec, len(cfg.Nodes)),
	}
	for h := range cfg.Nodes {
		e.reqLoads[h] = vec.New(d)
		e.needLoads[h] = vec.New(d)
	}
	e.trueP.Nodes = cfg.Nodes
	e.estP.Nodes = cfg.Nodes
	return e, nil
}

// Dim returns the resource dimensionality.
func (e *Engine) Dim() int { return e.cfg.Nodes[0].Aggregate.Dim() }

// CPUDim returns the configured CPU dimension.
func (e *Engine) CPUDim() int { return e.cfg.CPUDim }

// EvaluateMinYield rebuilds the views and evaluates the current placement
// under the §6 error model: true needs running against the estimated
// (thresholded) view with the given CPU-sharing policy. Returns 1 for an
// empty cluster.
func (e *Engine) EvaluateMinYield(policy sched.Policy) float64 {
	if len(e.live) == 0 {
		return 1
	}
	e.buildViews()
	return sched.EvaluatePlacement(&e.trueP, &e.estP, e.placeBuf, policy, e.cfg.CPUDim)
}

// Len returns the number of live services.
func (e *Engine) Len() int { return len(e.live) }

// Nodes returns the platform (not to be mutated).
func (e *Engine) Nodes() []core.Node { return e.cfg.Nodes }

// SetThreshold sets the §6.2 mitigation threshold applied to estimated CPU
// needs when the views are built (0 disables).
func (e *Engine) SetThreshold(th float64) { e.threshold = th }

// Threshold returns the current mitigation threshold.
func (e *Engine) Threshold() float64 { return e.threshold }

// cloneService deep-copies the vectors of s so the slot owns its state.
func cloneService(s core.Service) core.Service {
	s.ReqElem = s.ReqElem.Clone()
	s.ReqAgg = s.ReqAgg.Clone()
	s.NeedElem = s.NeedElem.Clone()
	s.NeedAgg = s.NeedAgg.Clone()
	return s
}

// Add admits a service with the best-fit admission test of the online
// platform: among the nodes whose remaining requirement capacity fits the
// service's true rigid requirements, the one with the least remaining
// aggregate capacity wins. trueSvc carries the real needs, estSvc the
// scheduler's estimate (they share requirements). On admission the engine
// returns the assigned id and node; on rejection ok is false and no state
// changes.
func (e *Engine) Add(trueSvc, estSvc core.Service) (id, node int, ok bool) {
	id = e.nextID
	node, ok = e.AdmitWithID(id, trueSvc, estSvc)
	if !ok {
		return 0, -1, false
	}
	return id, node, true
}

// AdmitWithID runs the same best-fit admission test as Add but installs the
// service under a caller-chosen id — the primitive a shard router uses to
// keep one global id space across several engines. The id must not be live
// in this engine; the next fresh id is bumped past it on success. The
// arithmetic (fit test, score, load accumulation) is bit-identical to Add.
func (e *Engine) AdmitWithID(id int, trueSvc, estSvc core.Service) (node int, ok bool) {
	if _, dup := e.byID[id]; dup || id < 0 {
		return -1, false
	}
	best, bestScore := -1, math.Inf(1)
	for h := range e.cfg.Nodes {
		if !trueSvc.FitsRequirements(&e.cfg.Nodes[h], e.reqLoads[h]) {
			continue
		}
		rem := vec.SumDiff(e.cfg.Nodes[h].Aggregate, e.reqLoads[h])
		if rem < bestScore {
			best, bestScore = h, rem
		}
	}
	if best < 0 {
		return -1, false
	}
	si := e.allocSlot()
	sl := &e.slots[si]
	sl.id = id
	if id >= e.nextID {
		e.nextID = id + 1
	}
	sl.trueSvc = cloneService(trueSvc)
	sl.estSvc = cloneService(estSvc)
	sl.node = best
	sl.used = true
	sl.livePos = len(e.live)
	e.live = append(e.live, si)
	e.byID[sl.id] = si
	e.reqLoads[best].AccumAdd(sl.trueSvc.ReqAgg)
	e.needLoads[best].AccumAdd(sl.trueSvc.NeedAgg)
	return best, true
}

// Headroom returns the total residual aggregate requirement capacity across
// all nodes — the admission-relevant free space a shard router scores
// placement domains by. Dimensions are summed with the same arithmetic the
// best-fit admission score uses per node.
func (e *Engine) Headroom() float64 {
	total := 0.0
	for h := range e.cfg.Nodes {
		total += vec.SumDiff(e.cfg.Nodes[h].Aggregate, e.reqLoads[h])
	}
	return total
}

// Remove departs a live service in O(1) (slab free-list plus swap-remove of
// the live list — no linear scan of the arrival order). It reports whether
// the id was live.
func (e *Engine) Remove(id int) bool {
	si, ok := e.byID[id]
	if !ok {
		return false
	}
	sl := &e.slots[si]
	if sl.node >= 0 {
		e.reqLoads[sl.node].AccumSub(sl.trueSvc.ReqAgg)
		e.needLoads[sl.node].AccumSub(sl.trueSvc.NeedAgg)
	}
	// Swap-remove from the live list.
	last := e.live[len(e.live)-1]
	e.live[sl.livePos] = last
	e.slots[last].livePos = sl.livePos
	e.live = e.live[:len(e.live)-1]
	delete(e.byID, id)
	sl.used = false
	sl.trueSvc, sl.estSvc = core.Service{}, core.Service{}
	e.free = append(e.free, si)
	return true
}

// UpdateNeeds replaces the fluid needs of a live service (true and
// estimated); requirements are rigid and cannot change in place. The need
// loads are adjusted incrementally. It reports whether the id was live.
func (e *Engine) UpdateNeeds(id int, trueNeedElem, trueNeedAgg, estNeedElem, estNeedAgg vec.Vec) bool {
	si, ok := e.byID[id]
	if !ok {
		return false
	}
	sl := &e.slots[si]
	if sl.node >= 0 {
		e.needLoads[sl.node].AccumSub(sl.trueSvc.NeedAgg)
	}
	sl.trueSvc.NeedElem = trueNeedElem.Clone()
	sl.trueSvc.NeedAgg = trueNeedAgg.Clone()
	sl.estSvc.NeedElem = estNeedElem.Clone()
	sl.estSvc.NeedAgg = estNeedAgg.Clone()
	if sl.node >= 0 {
		e.needLoads[sl.node].AccumAdd(sl.trueSvc.NeedAgg)
	}
	return true
}

// Service returns shallow copies of a live service's true and estimated
// descriptors. The vectors are shared with engine state and must not be
// mutated.
func (e *Engine) Service(id int) (trueSvc, estSvc core.Service, ok bool) {
	si, found := e.byID[id]
	if !found {
		return core.Service{}, core.Service{}, false
	}
	return e.slots[si].trueSvc, e.slots[si].estSvc, true
}

// Node returns the node currently hosting id, or false when id is not live.
func (e *Engine) Node(id int) (int, bool) {
	si, ok := e.byID[id]
	if !ok {
		return -1, false
	}
	return e.slots[si].node, true
}

// NodeLoad returns clones of node h's aggregate requirement and need loads
// over its live services.
func (e *Engine) NodeLoad(h int) (req, need vec.Vec) {
	return e.reqLoads[h].Clone(), e.needLoads[h].Clone()
}

func (e *Engine) allocSlot() int {
	if n := len(e.free); n > 0 {
		si := e.free[n-1]
		e.free = e.free[:n-1]
		return si
	}
	e.slots = append(e.slots, slot{})
	return len(e.slots) - 1
}

// buildViews refreshes the true and estimated problem views plus the current
// placement buffer, in ascending id order (equal to arrival order, since ids
// are assigned monotonically), recycling every backing array. The estimated
// view carries the mitigation threshold: services whose estimated CPU need
// falls below it get scratch-backed need vectors mirroring the arithmetic of
// sched.ApplyThreshold exactly, so placements match the clone-based path
// bit for bit.
func (e *Engine) buildViews() {
	d := e.Dim()
	cpu := e.cfg.CPUDim
	th := e.threshold
	j := len(e.live)
	e.ids = sliceutil.Grow(e.ids, j)
	for i, si := range e.live {
		e.ids[i] = e.slots[si].id
	}
	sort.Ints(e.ids)
	e.trueP.Services = sliceutil.Grow(e.trueP.Services, j)
	e.estP.Services = sliceutil.Grow(e.estP.Services, j)
	e.placeBuf = sliceutil.Grow(e.placeBuf, j)
	e.threshBuf = sliceutil.Grow(e.threshBuf, 2*j*d)
	for i, id := range e.ids {
		sl := &e.slots[e.byID[id]]
		e.trueP.Services[i] = sl.trueSvc
		es := sl.estSvc
		if th > 0 && es.NeedAgg[cpu] < th {
			old := es.NeedAgg[cpu]
			na := vec.Vec(e.threshBuf[2*i*d : (2*i+1)*d])
			ne := vec.Vec(e.threshBuf[(2*i+1)*d : (2*i+2)*d])
			copy(na, es.NeedAgg)
			copy(ne, es.NeedElem)
			na[cpu] = th
			if old > 0 {
				ne[cpu] *= th / old
				if ne[cpu] > th {
					ne[cpu] = th
				}
			} else {
				ne[cpu] = th
			}
			if ne[cpu] > na[cpu] {
				ne[cpu] = na[cpu]
			}
			es.NeedAgg, es.NeedElem = na, ne
		}
		e.estP.Services[i] = es
		e.placeBuf[i] = sl.node
	}
}

// TrueView returns the true problem view of the last epoch (valid until the
// next Reallocate/Repair/Add/Remove).
func (e *Engine) TrueView() *core.Problem { return &e.trueP }

// EstView returns the estimated (thresholded) problem view of the last
// epoch.
func (e *Engine) EstView() *core.Problem { return &e.estP }

// ViewPlacement returns the placement of the live services as of the last
// view build, in IDs order.
func (e *Engine) ViewPlacement() core.Placement { return e.placeBuf }

// solve runs the configured placer over the estimated view.
func (e *Engine) solve() *core.Result {
	if e.cfg.Placer != nil {
		return e.cfg.Placer(&e.estP)
	}
	opts := vp.SearchOptions{Tol: e.cfg.Tol}
	if e.cfg.UseLPBound {
		opts.UpperBound = e.lpBound
	}
	if e.cfg.Parallel {
		if e.pool == nil {
			e.pool = hvp.NewSolverPool(&e.estP, e.cfg.Workers)
		} else {
			for _, s := range e.pool {
				s.Rebind(&e.estP)
			}
		}
		return hvp.MetaDeterministicSolvers(e.pool, e.configs, opts)
	}
	if e.solver == nil {
		e.solver = vp.NewSolver(&e.estP)
	} else {
		e.solver.Rebind(&e.estP)
	}
	return vp.MetaConfigsSolver(e.solver, e.configs, opts)
}

// lpBound is the warm-started LPBOUND hook: each epoch's relaxation is
// solved from the previous epoch's optimal basis (the sparse solver falls
// back to a cold start when the cluster changed shape too much for the basis
// to fit).
func (e *Engine) lpBound(p *core.Problem) (float64, error) {
	rel, err := relax.SolveRelaxedWarm(p, e.basis)
	if err != nil {
		e.basis = nil
		return 0, err
	}
	e.noteRelaxation(rel)
	if !rel.Feasible {
		e.basis = nil
		return -1, nil
	}
	e.basis = rel.Basis
	return math.Min(rel.MinYield, 1), nil
}

// noteRelaxation folds one relaxation solve's work counters into the
// current epoch's accumulator.
func (e *Engine) noteRelaxation(rel *relax.Relaxed) {
	st := &e.lpStats
	st.LPSolves++
	st.LPIterations += int64(rel.Iters)
	st.LPRefactorizations += int64(rel.Refactorizations)
	st.LPBlandActivations += int64(rel.BlandActivations)
	if rel.WarmStarted {
		st.LPWarmStarts++
	} else {
		st.LPColdStarts++
	}
	if ps := rel.Presolve; ps != nil {
		st.PresolveRowsEliminated += int64(ps.RowsEliminated)
		st.PresolveColsEliminated += int64(ps.ColsEliminated)
		st.PresolveFixedCols += int64(ps.FixedCols)
		st.PresolveDroppedRows += int64(ps.DroppedRows)
		st.PresolveSubstCols += int64(ps.SubstCols)
		st.PresolveBoundsTightened += int64(ps.BoundsTightened)
		st.PresolveDoubletonSlacks += int64(ps.DoubletonSlacks)
	}
}

// takeSolverStats drains the epoch's solver-tier counters: the lpBound
// accumulator plus the persistent vp solvers' pack counters (the pool
// workers are joined before solve returns, so the drain is race-free).
func (e *Engine) takeSolverStats() obs.SolverStats {
	st := e.lpStats
	e.lpStats = obs.SolverStats{}
	var v vp.Stats
	if e.solver != nil {
		v.Add(e.solver.TakeStats())
	}
	for _, s := range e.pool {
		v.Add(s.TakeStats())
	}
	st.VPPacks += int64(v.Packs)
	st.VPPacksSolved += int64(v.PacksSolved)
	st.VPStepsPruned += int64(v.StepsPruned)
	return st
}

// apply commits a solved placement (in IDs order), counting migrations of
// already-placed services, then recomputes the per-node loads canonically in
// ascending id order — resetting incremental floating-point drift every
// epoch.
func (e *Engine) apply(res *core.Result) int {
	migrations := 0
	for i, id := range e.ids {
		sl := &e.slots[e.byID[id]]
		if sl.node != res.Placement[i] {
			if sl.node >= 0 {
				migrations++
			}
			sl.node = res.Placement[i]
		}
	}
	e.recomputeLoads()
	return migrations
}

// recomputeLoads rebuilds the per-node load vectors from scratch in
// ascending id order.
func (e *Engine) recomputeLoads() {
	for h := range e.reqLoads {
		e.reqLoads[h].Zero()
		e.needLoads[h].Zero()
	}
	for _, id := range e.ids {
		sl := &e.slots[e.byID[id]]
		if sl.node >= 0 {
			e.reqLoads[sl.node].AccumAdd(sl.trueSvc.ReqAgg)
			e.needLoads[sl.node].AccumAdd(sl.trueSvc.NeedAgg)
		}
	}
}

// Reallocate rebuilds the views and runs a full reallocation epoch with the
// configured placer. On success the new placement is applied (migrations
// counted); on failure the previous placement is kept and the caller can
// evaluate ViewPlacement against the views.
func (e *Engine) Reallocate() *EpochReport {
	e.buildViews()
	rep := &EpochReport{IDs: e.ids, Services: len(e.ids)}
	if len(e.ids) == 0 {
		rep.Result = &core.Result{Solved: true}
		return rep
	}
	start := e.clockNow()
	rep.Result = e.solve()
	rep.SolveNs = e.clockSince(start)
	rep.Solver = e.takeSolverStats()
	if rep.Result.Solved {
		rep.Migrations = e.apply(rep.Result)
	}
	return rep
}

// Repair rebuilds the views and runs a migration-bounded incremental repair
// epoch (internal/opt): still-feasible services stay put and at most budget
// previously-placed services move (negative = unlimited).
func (e *Engine) Repair(budget int) *EpochReport {
	e.buildViews()
	rep := &EpochReport{IDs: e.ids, Services: len(e.ids)}
	if len(e.ids) == 0 {
		rep.Result = &core.Result{Solved: true}
		return rep
	}
	start := e.clockNow()
	rep.Result = opt.Repair(&e.estP, e.placeBuf, &opt.RepairOptions{
		Budget:  budget,
		Improve: true,
	})
	rep.SolveNs = e.clockSince(start)
	rep.Solver = e.takeSolverStats()
	if rep.Result.Solved {
		rep.Migrations = e.apply(rep.Result)
	}
	return rep
}

// clockNow reads the injected clock, or the zero time when no clock was
// wired (SolveNs then reports zero — the engine itself never calls
// time.Now; see Config.Now).
func (e *Engine) clockNow() time.Time {
	if e.cfg.Now == nil {
		return time.Time{}
	}
	return e.cfg.Now()
}

// clockSince returns the elapsed nanoseconds since start on the injected
// clock, or zero without one.
func (e *Engine) clockSince(start time.Time) int64 {
	if e.cfg.Now == nil {
		return 0
	}
	return e.cfg.Now().Sub(start).Nanoseconds()
}

// Snapshot returns a deep copy of the cluster as a placement problem: the
// true view, the current placement and the live ids, all freshly allocated.
func (e *Engine) Snapshot() (*core.Problem, core.Placement, []int) {
	e.buildViews()
	p := e.trueP.Clone()
	return p, e.placeBuf.Clone(), append([]int(nil), e.ids...)
}
