package engine

import (
	"math"
	"math/rand"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/hvp"
	"vmalloc/internal/sched"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

func testNodes(n int) []core.Node {
	nodes := make([]core.Node, n)
	for i := range nodes {
		nodes[i] = core.Node{
			Elementary: vec.Of(0.25, 1.0),
			Aggregate:  vec.Of(1.0, 1.0),
		}
	}
	return nodes
}

func randService(rng *rand.Rand) core.Service {
	mem := 0.02 + rng.Float64()*0.1
	need := rng.Float64() * 0.25
	return core.Service{
		ReqElem:  vec.Of(0.01, mem),
		ReqAgg:   vec.Of(0.01, mem),
		NeedElem: vec.Of(need/4, 0),
		NeedAgg:  vec.Of(need, 0),
	}
}

func perturb(rng *rand.Rand, s core.Service, maxErr float64) core.Service {
	est := cloneService(s)
	e := (rng.Float64()*2 - 1) * maxErr
	est.NeedAgg[0] = math.Max(0.001, est.NeedAgg[0]+e)
	est.NeedElem[0] = est.NeedAgg[0] / 4
	return est
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("accepted empty node list")
	}
	if _, err := New(Config{Nodes: testNodes(2), CPUDim: 5}); err == nil {
		t.Fatal("accepted out-of-range CPU dimension")
	}
	bad := testNodes(2)
	bad[1].Aggregate = vec.Of(1, 1, 1)
	if _, err := New(Config{Nodes: bad}); err == nil {
		t.Fatal("accepted mixed dimensionality")
	}
}

// TestLoadBookkeeping drives random churn and checks the incrementally
// maintained loads against a from-scratch recomputation after every event.
func TestLoadBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := newTestEngine(t, Config{Nodes: testNodes(4)})
	var liveIDs []int
	check := func() {
		req := make([]vec.Vec, 4)
		need := make([]vec.Vec, 4)
		for h := range req {
			req[h], need[h] = vec.New(2), vec.New(2)
		}
		for _, id := range liveIDs {
			h, ok := e.Node(id)
			if !ok {
				t.Fatalf("id %d vanished", id)
			}
			si := e.byID[id]
			req[h].AccumAdd(e.slots[si].trueSvc.ReqAgg)
			need[h].AccumAdd(e.slots[si].trueSvc.NeedAgg)
		}
		for h := range req {
			gr, gn := e.NodeLoad(h)
			for d := 0; d < 2; d++ {
				if math.Abs(gr[d]-req[h][d]) > 1e-12 || math.Abs(gn[d]-need[h][d]) > 1e-12 {
					t.Fatalf("node %d load drift: req %v vs %v, need %v vs %v", h, gr, req[h], gn, need[h])
				}
			}
		}
	}
	for step := 0; step < 400; step++ {
		if len(liveIDs) == 0 || rng.Float64() < 0.6 {
			s := randService(rng)
			if id, node, ok := e.Add(s, perturb(rng, s, 0.1)); ok {
				if node < 0 || node >= 4 {
					t.Fatalf("bad node %d", node)
				}
				liveIDs = append(liveIDs, id)
			}
		} else {
			i := rng.Intn(len(liveIDs))
			if !e.Remove(liveIDs[i]) {
				t.Fatalf("remove of live id %d failed", liveIDs[i])
			}
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
		}
		if e.Len() != len(liveIDs) {
			t.Fatalf("Len %d, want %d", e.Len(), len(liveIDs))
		}
		if step%20 == 0 {
			check()
		}
		if step%60 == 0 && e.Len() > 0 {
			e.Reallocate() // canonical recompute path interleaves with churn
		}
	}
	check()
	if e.Remove(-5) {
		t.Fatal("removed a never-admitted id")
	}
}

// rebuildReallocate is the pre-engine epoch path: rebuild both views and run
// METAHVPLIGHT from a cold solver. The engine must match it exactly.
func rebuildReallocate(e *Engine, th float64) *core.Result {
	trueP := &core.Problem{Nodes: e.cfg.Nodes}
	estP := &core.Problem{Nodes: e.cfg.Nodes}
	e.buildViews() // only to get ids ordering for the oracle
	for _, id := range append([]int(nil), e.ids...) {
		sl := &e.slots[e.byID[id]]
		trueP.Services = append(trueP.Services, sl.trueSvc)
		estP.Services = append(estP.Services, sl.estSvc)
	}
	if th > 0 {
		estP = sched.ApplyThreshold(estP, 0, th)
	}
	return hvp.MetaHVPLight(estP, 0)
}

// TestReallocateMatchesRebuildPath is the engine's core equivalence claim:
// across epochs of churn, with and without an estimation threshold, the
// persistent-solver reallocation returns exactly the placement the
// rebuild-per-epoch path computes.
func TestReallocateMatchesRebuildPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, th := range []float64{0, 0.08} {
		e := newTestEngine(t, Config{Nodes: testNodes(4)})
		e.SetThreshold(th)
		var liveIDs []int
		for epoch := 0; epoch < 8; epoch++ {
			for i := 0; i < 10; i++ {
				s := randService(rng)
				if id, _, ok := e.Add(s, perturb(rng, s, 0.15)); ok {
					liveIDs = append(liveIDs, id)
				}
			}
			for i := 0; i < 5 && len(liveIDs) > 0; i++ {
				k := rng.Intn(len(liveIDs))
				e.Remove(liveIDs[k])
				liveIDs = append(liveIDs[:k], liveIDs[k+1:]...)
			}
			want := rebuildReallocate(e, th)
			rep := e.Reallocate()
			if rep.Result.Solved != want.Solved {
				t.Fatalf("th=%v epoch %d: solved=%v, rebuild %v", th, epoch, rep.Result.Solved, want.Solved)
			}
			if !want.Solved {
				continue
			}
			if rep.Result.MinYield != want.MinYield {
				t.Fatalf("th=%v epoch %d: MinYield %v, rebuild %v", th, epoch, rep.Result.MinYield, want.MinYield)
			}
			for i := range want.Placement {
				if rep.Result.Placement[i] != want.Placement[i] {
					t.Fatalf("th=%v epoch %d: placement[%d]=%d, rebuild %d",
						th, epoch, i, rep.Result.Placement[i], want.Placement[i])
				}
			}
			// Applied state must agree with the placement.
			for i, id := range rep.IDs {
				if h, _ := e.Node(id); h != rep.Result.Placement[i] {
					t.Fatalf("slot node %d != placement %d", h, rep.Result.Placement[i])
				}
			}
		}
	}
}

// TestParallelMatchesSequential runs the same churn trace through a
// sequential and a parallel engine: every epoch must produce identical
// results (the deterministic reduction), including under -race.
func TestParallelMatchesSequential(t *testing.T) {
	mk := func(parallel bool) *Engine {
		e, _ := New(Config{Nodes: testNodes(4), Parallel: parallel, Workers: 4})
		return e
	}
	seq, par := mk(false), mk(true)
	rng1 := rand.New(rand.NewSource(31))
	rng2 := rand.New(rand.NewSource(31))
	var ids1, ids2 []int
	for epoch := 0; epoch < 6; epoch++ {
		for i := 0; i < 8; i++ {
			s1 := randService(rng1)
			s2 := randService(rng2)
			if id, _, ok := seq.Add(s1, perturb(rng1, s1, 0.1)); ok {
				ids1 = append(ids1, id)
			}
			if id, _, ok := par.Add(s2, perturb(rng2, s2, 0.1)); ok {
				ids2 = append(ids2, id)
			}
		}
		for i := 0; i < 4 && len(ids1) > 0 && len(ids2) > 0; i++ {
			k := rng1.Intn(len(ids1))
			seq.Remove(ids1[k])
			ids1 = append(ids1[:k], ids1[k+1:]...)
			k = rng2.Intn(len(ids2))
			par.Remove(ids2[k])
			ids2 = append(ids2[:k], ids2[k+1:]...)
		}
		a, b := seq.Reallocate(), par.Reallocate()
		if a.Result.Solved != b.Result.Solved || a.Result.MinYield != b.Result.MinYield ||
			a.Migrations != b.Migrations {
			t.Fatalf("epoch %d: sequential (%v, %v, %d migrations) vs parallel (%v, %v, %d)",
				epoch, a.Result.Solved, a.Result.MinYield, a.Migrations,
				b.Result.Solved, b.Result.MinYield, b.Migrations)
		}
		for i := range a.Result.Placement {
			if a.Result.Placement[i] != b.Result.Placement[i] {
				t.Fatalf("epoch %d: placement[%d] %d vs %d", epoch, i, a.Result.Placement[i], b.Result.Placement[i])
			}
		}
	}
}

func TestRepairRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	e := newTestEngine(t, Config{Nodes: testNodes(4)})
	for i := 0; i < 20; i++ {
		s := randService(rng)
		e.Add(s, cloneService(s))
	}
	e.Reallocate()
	// Churn, then repair with a tight budget.
	for i := 0; i < 6; i++ {
		s := randService(rng)
		e.Add(s, cloneService(s))
	}
	rep := e.Repair(2)
	if rep.Result.Solved && rep.Migrations > 2 {
		t.Fatalf("repair moved %d services, budget 2", rep.Migrations)
	}
}

func TestUpdateNeedsAdjustsLoadsAndViews(t *testing.T) {
	e := newTestEngine(t, Config{Nodes: testNodes(2)})
	s := randService(rand.New(rand.NewSource(1)))
	id, node, ok := e.Add(s, cloneService(s))
	if !ok {
		t.Fatal("admission failed on an empty cluster")
	}
	if !e.UpdateNeeds(id, vec.Of(0.05, 0), vec.Of(0.2, 0), vec.Of(0.075, 0), vec.Of(0.3, 0)) {
		t.Fatal("update of live id failed")
	}
	_, need := e.NodeLoad(node)
	if need[0] != 0.2 {
		t.Fatalf("need load %v after update, want 0.2", need[0])
	}
	rep := e.Reallocate()
	if !rep.Result.Solved {
		t.Fatal("single-service cluster must solve")
	}
	if e.EstView().Services[0].NeedAgg[0] != 0.3 {
		t.Fatalf("est view need %v, want 0.3", e.EstView().Services[0].NeedAgg[0])
	}
	if e.UpdateNeeds(999, nil, nil, nil, nil) {
		t.Fatal("update of unknown id succeeded")
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := newTestEngine(t, Config{Nodes: testNodes(3)})
	var ids []int
	for i := 0; i < 9; i++ {
		s := randService(rng)
		if id, _, ok := e.Add(s, cloneService(s)); ok {
			ids = append(ids, id)
		}
	}
	p, pl, snapIDs := e.Snapshot()
	if p.NumServices() != len(ids) || len(pl) != len(ids) || len(snapIDs) != len(ids) {
		t.Fatalf("snapshot shape %d/%d/%d, want %d", p.NumServices(), len(pl), len(snapIDs), len(ids))
	}
	// Mutating the cluster must not affect the snapshot.
	before := p.Services[0].ReqAgg.Clone()
	e.Remove(snapIDs[0])
	e.Reallocate()
	for d := range before {
		if p.Services[0].ReqAgg[d] != before[d] {
			t.Fatal("snapshot aliases engine state")
		}
	}
	if res := core.EvaluatePlacement(p, pl); !res.Solved {
		t.Fatal("snapshot placement must be feasible")
	}
}

// TestEmptyAndRejection covers the empty-epoch fast path and admission
// rejection under overload.
func TestEmptyAndRejection(t *testing.T) {
	e := newTestEngine(t, Config{Nodes: testNodes(1)})
	rep := e.Reallocate()
	if !rep.Result.Solved || rep.Services != 0 {
		t.Fatalf("empty epoch: %+v", rep)
	}
	big := core.Service{
		ReqElem:  vec.Of(0.2, 0.9),
		ReqAgg:   vec.Of(0.2, 0.9),
		NeedElem: vec.Of(0, 0),
		NeedAgg:  vec.Of(0, 0),
	}
	if _, _, ok := e.Add(big, cloneService(big)); !ok {
		t.Fatal("first big service must fit")
	}
	if _, _, ok := e.Add(big, cloneService(big)); ok {
		t.Fatal("second big service must be rejected (memory full)")
	}
}

// TestGeneratedWorkload sanity-checks the engine against the §4 generator at
// a platform-like scale with the adaptive usage pattern of the simulator.
func TestGeneratedWorkload(t *testing.T) {
	nodes := workload.Platform(workload.Scenario{
		Hosts: 8, COV: 0.5, Mode: workload.HeteroBoth, Seed: 1,
	}, rand.New(rand.NewSource(1)))
	e := newTestEngine(t, Config{Nodes: nodes})
	rng := rand.New(rand.NewSource(2))
	admitted := 0
	for i := 0; i < 60; i++ {
		s := randService(rng)
		if _, _, ok := e.Add(s, perturb(rng, s, 0.2)); ok {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	rep := e.Reallocate()
	if !rep.Result.Solved {
		t.Fatalf("reallocation failed for %d services", admitted)
	}
	min := sched.EvaluatePlacement(e.TrueView(), e.EstView(), rep.Result.Placement, sched.AllocWeights, 0)
	if min < 0 || min > 1 {
		t.Fatalf("evaluated min yield %v out of range", min)
	}
}
