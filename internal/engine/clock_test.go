package engine

import (
	"math/rand"
	"testing"
	"time"
)

// TestInjectedClockTimesEpochs proves the Config.Now seam: the engine never
// reads the wall clock itself, so SolveNs is exactly the delta the injected
// clock reports, and a nil clock yields SolveNs == 0.
func TestInjectedClockTimesEpochs(t *testing.T) {
	base := time.Unix(1000, 0)
	tick := 0
	fake := func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 5 * time.Millisecond)
	}

	e := newTestEngine(t, Config{Nodes: testNodes(4), Now: fake})
	svc := randService(rand.New(rand.NewSource(1)))
	if _, _, ok := e.Add(svc, svc); !ok {
		t.Fatal("admission rejected")
	}

	rep := e.Reallocate()
	if !rep.Result.Solved {
		t.Fatal("reallocation failed")
	}
	if want := int64(5 * time.Millisecond); rep.SolveNs != want {
		t.Fatalf("SolveNs = %d, want %d (one fake-clock tick)", rep.SolveNs, want)
	}

	rep = e.Repair(-1)
	if !rep.Result.Solved {
		t.Fatal("repair failed")
	}
	if want := int64(5 * time.Millisecond); rep.SolveNs != want {
		t.Fatalf("repair SolveNs = %d, want %d (one fake-clock tick)", rep.SolveNs, want)
	}
}

// TestNilClockReportsZeroSolveNs pins the no-clock default: an engine built
// without Config.Now must not fall back to the wall clock.
func TestNilClockReportsZeroSolveNs(t *testing.T) {
	e := newTestEngine(t, Config{Nodes: testNodes(4)})
	svc := randService(rand.New(rand.NewSource(2)))
	if _, _, ok := e.Add(svc, svc); !ok {
		t.Fatal("admission rejected")
	}
	rep := e.Reallocate()
	if !rep.Result.Solved {
		t.Fatal("reallocation failed")
	}
	if rep.SolveNs != 0 {
		t.Fatalf("SolveNs = %d without an injected clock, want 0", rep.SolveNs)
	}
}
