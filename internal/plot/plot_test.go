package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render([]Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}, 30, 10, "x", "y")
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "x") {
		t.Fatalf("x label missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, 30, 10, "", ""); out != "(no data)\n" {
		t.Fatalf("got %q", out)
	}
	if out := Render([]Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}, 30, 10, "", ""); out != "(no data)\n" {
		t.Fatalf("got %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Render([]Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{0.5, 0.5}}}, 25, 6, "", "")
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestRenderClampsTinyDimensions(t *testing.T) {
	out := Render([]Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1, "", "")
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("clamped render too small:\n%s", out)
	}
}

func TestMarkerPlacementCorners(t *testing.T) {
	out := Render([]Series{{Name: "s", X: []float64{0, 10}, Y: []float64{0, 1}}}, 20, 5, "", "")
	rows := strings.Split(out, "\n")
	// First grid row (max y) must contain the marker at the right edge.
	first := rows[0]
	if !strings.HasSuffix(strings.TrimRight(first, " "), "*|") {
		t.Fatalf("top-right marker missing: %q", first)
	}
}
