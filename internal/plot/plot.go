// Package plot renders simple ASCII line/scatter charts for the experiment
// figure series, so cmd/experiments can show the shape of Figures 2–7
// directly in a terminal without external tooling.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers cycles across series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series into a width×height character grid with y-axis
// labels and a legend. Width and height are clamped to sane minimums.
func Render(series []Series, width, height int, xlabel, ylabel string) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return "(no data)\n"
	}
	if maxX == minX { //vmalloc:nondet-ok degenerate-range guard; equal extrema only matter when bit-identical
		maxX = minX + 1
	}
	if maxY == minY { //vmalloc:nondet-ok degenerate-range guard; equal extrema only matter when bit-identical
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			grid[r][c] = mk
		}
	}

	var sb strings.Builder
	if ylabel != "" {
		fmt.Fprintf(&sb, "%s\n", ylabel)
	}
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%9.4f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&sb, "%9s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%9s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	if xlabel != "" {
		fmt.Fprintf(&sb, "%9s  %s\n", "", centered(xlabel, width))
	}
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

func centered(s string, width int) string {
	if len(s) >= width {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}
