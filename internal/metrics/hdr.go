package metrics

import "math/bits"

// hdrSubBits sets the HDR histogram resolution: every power-of-two value
// range is split into 2^hdrSubBits linear sub-buckets, bounding the relative
// quantile error at 2^-hdrSubBits (~1.6%).
const hdrSubBits = 6

const hdrFirstLinear = 1 << hdrSubBits

// hdrBuckets covers the full non-negative int64 range: the linear prefix
// plus one sub-bucket block per remaining exponent.
const hdrBuckets = hdrFirstLinear + (63-hdrSubBits)*hdrFirstLinear

// HDR is a log-linear ("HDR-style") histogram of non-negative int64 values —
// latencies in nanoseconds, in practice. Small values are recorded exactly;
// larger ones land in sub-buckets whose width is a fixed fraction of the
// value, so quantiles up to p999 and beyond carry a bounded ~1.6% relative
// error regardless of range. Recording is O(1) with no allocation.
//
// HDR is not safe for concurrent use: give each worker its own and Merge.
type HDR struct {
	counts [hdrBuckets]uint64
	count  uint64
	sum    float64
	max    int64
}

// NewHDR returns an empty histogram.
func NewHDR() *HDR { return &HDR{} }

func hdrIndex(v int64) int {
	u := uint64(v)
	if u < hdrFirstLinear {
		return int(u)
	}
	exp := bits.Len64(u) - hdrSubBits // >= 1
	m := (u >> uint(exp-1)) - hdrFirstLinear
	return hdrFirstLinear + (exp-1)*hdrFirstLinear + int(m)
}

// hdrUpper returns the inclusive upper edge of bucket i, so quantiles err
// toward reporting slightly slower, never slightly faster.
func hdrUpper(i int) int64 {
	if i < hdrFirstLinear {
		return int64(i)
	}
	exp := (i-hdrFirstLinear)/hdrFirstLinear + 1
	m := uint64((i - hdrFirstLinear) % hdrFirstLinear)
	lo := (hdrFirstLinear + m) << uint(exp-1)
	return int64(lo + (1 << uint(exp-1)) - 1)
}

// Record adds one value (negative values count as zero).
func (h *HDR) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)]++
	h.count++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *HDR) Count() uint64 { return h.count }

// Max returns the largest recorded value (0 when empty).
func (h *HDR) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *HDR) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1] — the upper edge of the
// bucket containing the q-th ordered observation (the exact Max for q >= 1).
// Returns 0 when empty.
func (h *HDR) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i]
		if cum > rank {
			v := hdrUpper(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds o's observations into h.
func (h *HDR) Merge(o *HDR) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
