package metrics

import (
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_requests_total", "Requests.")
	v.With(L("path", "/a", "code", "200")).Add(3)
	v.With(L("path", "/b", "code", "404")).Inc()
	v.With(L("path", "/a", "code", "200")).Inc()

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_requests_total Requests.\n",
		"# TYPE test_requests_total counter\n",
		`test_requests_total{path="/a",code="200"} 4` + "\n",
		`test_requests_total{path="/b",code="404"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Children render in first-use order.
	if strings.Index(out, `path="/a"`) > strings.Index(out, `path="/b"`) {
		t.Errorf("children out of first-use order:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_seconds", "Latency.", []float64{0.1, 1, 10})
	h := v.With(nil)
	for _, x := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("Sum = %g", h.Sum())
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.1"} 1` + "\n",
		`test_seconds_bucket{le="1"} 3` + "\n",
		`test_seconds_bucket{le="10"} 4` + "\n",
		`test_seconds_bucket{le="+Inf"} 5` + "\n",
		"test_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCollectAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.Collect("test_gauge", "A gauge.", "gauge", func(emit func(Labels, float64)) {
		emit(L("name", "a\"b\\c\nd"), 2.5)
		emit(nil, 7)
	})
	out := render(t, r)
	if !strings.Contains(out, `test_gauge{name="a\"b\\c\nd"} 2.5`+"\n") {
		t.Errorf("label escaping broken:\n%s", out)
	}
	if !strings.Contains(out, "test_gauge 7\n") {
		t.Errorf("unlabelled sample missing:\n%s", out)
	}
}

func TestCollectHistogram(t *testing.T) {
	r := NewRegistry()
	r.CollectHistogram("test_batch", "Batch sizes.", func() HistogramSnapshot {
		return HistogramSnapshot{
			Bounds:    []float64{1, 8, 64},
			CumCounts: []uint64{2, 5, 9},
			Count:     10,
			Sum:       321,
		}
	})
	out := render(t, r)
	for _, want := range []string{
		"# TYPE test_batch histogram\n",
		`test_batch_bucket{le="1"} 2` + "\n",
		`test_batch_bucket{le="8"} 5` + "\n",
		`test_batch_bucket{le="64"} 9` + "\n",
		`test_batch_bucket{le="+Inf"} 10` + "\n",
		"test_batch_sum 321\n",
		"test_batch_count 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family registration did not panic")
		}
	}()
	r.NewCounterVec("dup_total", "y")
}

func TestHDRQuantiles(t *testing.T) {
	h := NewHDR()
	// 1..10000: quantiles are predictable and the tolerance follows from the
	// log-linear bucket width.
	for i := int64(1); i <= 10000; i++ {
		h.Record(i)
	}
	if h.Count() != 10000 || h.Max() != 10000 {
		t.Fatalf("Count=%d Max=%d", h.Count(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-5000.5) > 1e-6 {
		t.Fatalf("Mean = %g", m)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5000}, {0.95, 9500}, {0.99, 9900}, {0.999, 9990},
	} {
		got := float64(h.Quantile(tc.q))
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.02 {
			t.Errorf("Quantile(%g) = %g, want %g ±2%%", tc.q, got, tc.want)
		}
		if got < tc.want-1 {
			t.Errorf("Quantile(%g) = %g underestimates %g", tc.q, got, tc.want)
		}
	}
	if q := h.Quantile(1); q != 10000 {
		t.Fatalf("Quantile(1) = %d, want exact max", q)
	}
}

func TestHDRSmallValuesExact(t *testing.T) {
	h := NewHDR()
	for i := int64(0); i < 64; i++ {
		h.Record(i)
	}
	// Below the linear/log boundary every value has its own bucket.
	if got := h.Quantile(0.5); got != 32 {
		t.Fatalf("Quantile(0.5) = %d, want 32", got)
	}
	h.Record(-5) // clamps to 0
	if h.Count() != 65 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHDRMerge(t *testing.T) {
	a, b := NewHDR(), NewHDR()
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
		b.Record(i * 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if a.Max() != 100000 {
		t.Fatalf("merged Max = %d", a.Max())
	}
	if q := float64(a.Quantile(0.25)); math.Abs(q-50)/50 > 0.04 {
		t.Fatalf("merged Quantile(0.25) = %g, want ~50", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("c_seconds", "x", ExpBuckets(0.001, 2, 10)).With(nil)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Observe(0.004)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if math.Abs(h.Sum()-16) > 1e-9 {
		t.Fatalf("Sum = %g", h.Sum())
	}
}
