// Package metrics is a small, dependency-free instrumentation library with a
// Prometheus-compatible text exposition. It provides exactly what the
// allocation daemon needs — monotone counters, latency histograms, and
// scrape-time collection callbacks for state that already lives elsewhere
// (store counters, per-shard statistics, journal I/O) — rather than a general
// metrics framework.
//
// All instruments are safe for concurrent use; updates are lock-free atomics
// on the hot path. Families render in registration order, children in
// first-use order, so the exposition is deterministic and diffable.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair of a metric child.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set. Order is preserved in the exposition.
type Labels []Label

// L builds a label set from alternating key, value strings: L("path",
// "/v1/stats", "method", "GET"). It panics on an odd count — label sets are
// static call sites, not data.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("metrics: L needs alternating key, value pairs")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// String renders the label set in exposition form, without braces.
func (ls Labels) String() string {
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotone cumulative counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (must be non-negative to keep the counter monotone).
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Histogram is a cumulative-bucket histogram in the Prometheus style: counts
// per upper bound plus a running sum. Observe is lock-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the usual latency bucket layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Sample is one (labels, value) pair emitted by a collect callback.
type Sample struct {
	Labels Labels
	Value  float64
}

// family is one named metric with its children (one per label set).
type family struct {
	name, help, typ string

	mu       sync.Mutex
	order    []string // child keys in first-use order
	counters map[string]*child
	hists    map[string]*histChild

	collect     func(emit func(Labels, float64)) // scrape-time families
	collectHist func() HistogramSnapshot         // scrape-time histograms
}

type child struct {
	labels Labels
	c      Counter
}

type histChild struct {
	labels Labels
	h      *Histogram
}

// Registry holds metric families and renders the exposition.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) addFamily(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.fams {
		if existing.name == f.name {
			panic(fmt.Sprintf("metrics: family %q registered twice", f.name))
		}
	}
	r.fams = append(r.fams, f)
	return f
}

// CounterVec declares a counter family; use With to get per-label children.
type CounterVec struct{ f *family }

// NewCounterVec registers a counter family.
func (r *Registry) NewCounterVec(name, help string) *CounterVec {
	return &CounterVec{f: r.addFamily(&family{
		name: name, help: help, typ: "counter",
		counters: make(map[string]*child),
	})}
}

// With returns the counter for the given label set, creating it on first use.
func (v *CounterVec) With(labels Labels) *Counter {
	key := labels.String()
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.counters[key]
	if !ok {
		c = &child{labels: labels}
		v.f.counters[key] = c
		v.f.order = append(v.f.order, key)
	}
	return &c.c
}

// HistogramVec declares a histogram family with fixed bucket bounds.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// NewHistogramVec registers a histogram family. bounds are the finite upper
// bucket bounds, ascending; the +Inf bucket is implicit.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64) *HistogramVec {
	return &HistogramVec{
		f: r.addFamily(&family{
			name: name, help: help, typ: "histogram",
			hists: make(map[string]*histChild),
		}),
		bounds: bounds,
	}
}

// With returns the histogram for the given label set, creating it on first
// use.
func (v *HistogramVec) With(labels Labels) *Histogram {
	key := labels.String()
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.hists[key]
	if !ok {
		c = &histChild{labels: labels, h: &Histogram{
			bounds: v.bounds,
			counts: make([]atomic.Uint64, len(v.bounds)),
		}}
		v.f.hists[key] = c
		v.f.order = append(v.f.order, key)
	}
	return c.h
}

// Collect registers a scrape-time family: fn runs on every WriteText call and
// emits samples for state owned elsewhere. typ is the declared metric type
// ("counter" for monotone upstream counters, "gauge" for point-in-time
// values).
func (r *Registry) Collect(name, help, typ string, fn func(emit func(Labels, float64))) {
	r.addFamily(&family{name: name, help: help, typ: typ, collect: fn})
}

// HistogramSnapshot is a point-in-time cumulative histogram returned by a
// CollectHistogram callback: counts aggregated by some other subsystem that
// already keeps its own buckets.
type HistogramSnapshot struct {
	Bounds    []float64 // finite upper bounds, ascending
	CumCounts []uint64  // cumulative observation counts per bound
	Count     uint64    // total observations (the implicit +Inf cumulative count)
	Sum       float64   // sum of all observed values
}

// CollectHistogram registers a scrape-time histogram family rendered from a
// snapshot callback.
func (r *Registry) CollectHistogram(name, help string, fn func() HistogramSnapshot) {
	r.addFamily(&family{name: name, help: help, typ: "histogram", collectHist: fn})
}

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): families in registration order, children in first-use
// order, collect callbacks evaluated at call time.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if f.collectHist != nil {
		return writeHistSnapshot(w, f.name, f.collectHist())
	}
	if f.collect != nil {
		var err error
		f.collect(func(labels Labels, v float64) {
			if err != nil {
				return
			}
			err = writeSample(w, f.name, labels.String(), v)
		})
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, key := range f.order {
		if c, ok := f.counters[key]; ok {
			if err := writeSample(w, f.name, key, float64(c.c.Value())); err != nil {
				return err
			}
		}
		if hc, ok := f.hists[key]; ok {
			if err := writeHistogram(w, f.name, hc.labels, hc.h); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name, labelStr string, v float64) error {
	if labelStr == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labelStr, formatValue(v))
	return err
}

func writeHistogram(w io.Writer, name string, labels Labels, h *Histogram) error {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		ls := append(append(Labels(nil), labels...), Label{Key: "le", Value: formatValue(bound)})
		if err := writeSample(w, name+"_bucket", ls.String(), float64(cum)); err != nil {
			return err
		}
	}
	total := h.Count()
	ls := append(append(Labels(nil), labels...), Label{Key: "le", Value: "+Inf"})
	if err := writeSample(w, name+"_bucket", ls.String(), float64(total)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels.String(), h.Sum()); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels.String(), float64(total))
}

func writeHistSnapshot(w io.Writer, name string, s HistogramSnapshot) error {
	for i, bound := range s.Bounds {
		cum := uint64(0)
		if i < len(s.CumCounts) {
			cum = s.CumCounts[i]
		}
		ls := Labels{{Key: "le", Value: formatValue(bound)}}
		if err := writeSample(w, name+"_bucket", ls.String(), float64(cum)); err != nil {
			return err
		}
	}
	ls := Labels{{Key: "le", Value: "+Inf"}}
	if err := writeSample(w, name+"_bucket", ls.String(), float64(s.Count)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", "", s.Sum); err != nil {
		return err
	}
	return writeSample(w, name+"_count", "", float64(s.Count))
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
