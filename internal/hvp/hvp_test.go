package hvp

import (
	"math"
	"math/rand"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
	"vmalloc/internal/vp"
)

func TestStrategyCounts(t *testing.T) {
	if got := len(Strategies()); got != 253 {
		t.Fatalf("|METAHVP| = %d, want 253", got)
	}
	if got := len(LightStrategies()); got != 60 {
		t.Fatalf("|METAHVPLIGHT| = %d, want 60", got)
	}
}

func TestAllStrategiesAreHetero(t *testing.T) {
	for _, c := range Strategies() {
		if !c.Hetero {
			t.Fatalf("strategy %v not marked heterogeneous", c)
		}
	}
	for _, c := range LightStrategies() {
		if !c.Hetero {
			t.Fatalf("light strategy %v not marked heterogeneous", c)
		}
	}
}

func TestLightIsSubsetOfFull(t *testing.T) {
	full := make(map[string]bool)
	for _, c := range Strategies() {
		full[c.String()] = true
	}
	for _, c := range LightStrategies() {
		if !full[c.String()] {
			t.Fatalf("light strategy %v not in METAHVP set", c)
		}
	}
}

func randomProblem(rng *rand.Rand, h, j int) *core.Problem {
	p := &core.Problem{}
	for i := 0; i < h; i++ {
		cpu := 0.3 + rng.Float64()*0.7
		mem := 0.3 + rng.Float64()*0.7
		p.Nodes = append(p.Nodes, core.Node{
			Elementary: vec.Of(cpu/4, mem),
			Aggregate:  vec.Of(cpu, mem),
		})
	}
	for s := 0; s < j; s++ {
		mem := rng.Float64() * 0.15
		need := rng.Float64() * 0.3
		p.Services = append(p.Services, core.Service{
			ReqElem:  vec.Of(0.005, mem),
			ReqAgg:   vec.Of(0.005, mem),
			NeedElem: vec.Of(need/4, 0),
			NeedAgg:  vec.Of(need, 0),
		})
	}
	return p
}

func TestMetaHVPSolvesAndValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	solved := 0
	for iter := 0; iter < 10; iter++ {
		p := randomProblem(rng, 4, 12)
		res := MetaHVP(p, 1e-3)
		if !res.Solved {
			continue
		}
		solved++
		if err := res.Placement.Validate(p); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if res.MinYield < 0 || res.MinYield > 1 {
			t.Fatalf("iter %d: yield %v", iter, res.MinYield)
		}
	}
	if solved == 0 {
		t.Fatal("METAHVP solved nothing across 10 random instances")
	}
}

func TestMetaHVPAtLeastMatchesLight(t *testing.T) {
	// METAHVP tries a strict superset of strategies per binary-search step,
	// so it succeeds whenever METAHVPLIGHT does, with yield no worse than
	// the search tolerance below it.
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 6; iter++ {
		p := randomProblem(rng, 4, 10)
		full := MetaHVP(p, 1e-3)
		light := MetaHVPLight(p, 1e-3)
		if light.Solved && !full.Solved {
			t.Fatalf("iter %d: light solved, full did not", iter)
		}
		if light.Solved && full.Solved && light.MinYield > full.MinYield+2e-3 {
			t.Fatalf("iter %d: light %v > full %v", iter, light.MinYield, full.MinYield)
		}
	}
}

func TestMetaParallelMatchesSequentialSuccess(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 5; iter++ {
		p := randomProblem(rng, 3, 10)
		seq := MetaHVPLight(p, 1e-3)
		par := MetaParallel(p, LightStrategies(), 1e-3, 4)
		if seq.Solved != par.Solved {
			t.Fatalf("iter %d: solved mismatch seq=%v par=%v", iter, seq.Solved, par.Solved)
		}
		if seq.Solved {
			if err := par.Placement.Validate(p); err != nil {
				t.Fatalf("iter %d: parallel placement invalid: %v", iter, err)
			}
			// Both drive the same binary search, so the achieved lower bound
			// must agree up to tolerance (the placement itself may differ).
			if math.Abs(seq.MinYield-par.MinYield) > 0.05 {
				t.Fatalf("iter %d: yields diverge: %v vs %v", iter, seq.MinYield, par.MinYield)
			}
		}
	}
}

func TestSolveStrategyForcesHetero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 3, 6)
	c := vp.Config{Alg: vp.BestFit, ItemOrder: vp.Order{Metric: vec.MetricMax, Descending: true}}
	res := SolveStrategy(p, c, 1e-3)
	if res.Solved {
		if err := res.Placement.Validate(p); err != nil {
			t.Fatal(err)
		}
	}
}

// On a strongly heterogeneous instance, bin-capacity-aware first fit
// (ascending capacity) must beat naive first fit in natural order when the
// natural order lists big nodes first: filling big nodes with small items
// wastes the only homes of big items.
func TestHeteroBinSortingHelps(t *testing.T) {
	p := &core.Problem{}
	// One big node listed first, three small ones.
	big := core.Node{Elementary: vec.Of(1, 2), Aggregate: vec.Of(4, 2)}
	small := core.Node{Elementary: vec.Of(0.5, 0.4), Aggregate: vec.Of(1, 0.4)}
	p.Nodes = []core.Node{big, small, small, small}
	// Three small services then one big service (natural order).
	smallSvc := core.Service{
		ReqElem: vec.Of(0.1, 0.3), ReqAgg: vec.Of(0.1, 0.3),
		NeedElem: vec.Of(0.1, 0), NeedAgg: vec.Of(0.2, 0),
	}
	bigSvc := core.Service{
		ReqElem: vec.Of(0.8, 1.5), ReqAgg: vec.Of(3.0, 1.5),
		NeedElem: vec.Of(0.2, 0), NeedAgg: vec.Of(0.8, 0),
	}
	p.Services = []core.Service{smallSvc, smallSvc, smallSvc, bigSvc}

	naive := vp.Pack
	// Natural order at yield 0: smalls land on the big node (first fit),
	// big service still fits? big needs mem 1.5; big node has 2 - 3*0.3 =
	// 1.1 < 1.5 -> fails.
	_, okNaive := naive(p, 0, vp.Config{Alg: vp.FirstFit, ItemOrder: vp.NoOrder, BinOrder: vp.NoOrder})
	if okNaive {
		t.Fatal("naive FF should fail on this construction")
	}
	// Ascending-capacity bins: smalls go to small nodes, big node stays
	// free for the big service.
	_, okSorted := naive(p, 0, vp.Config{
		Alg: vp.FirstFit, Hetero: true,
		BinOrder: vp.Order{Metric: vec.MetricSum},
	})
	if !okSorted {
		t.Fatal("capacity-sorted FF should succeed")
	}
	// And METAHVP, which includes that strategy, must solve it too.
	if res := MetaHVP(p, 1e-3); !res.Solved {
		t.Fatal("METAHVP should solve the instance")
	}
}

// Bin ordering must actually be applied: with ascending-capacity first fit,
// the smallest feasible node receives the first item.
func TestBinOrderApplied(t *testing.T) {
	big := core.Node{Elementary: vec.Of(1, 2), Aggregate: vec.Of(4, 2)}
	small := core.Node{Elementary: vec.Of(0.5, 0.5), Aggregate: vec.Of(1, 0.5)}
	p := &core.Problem{
		Nodes: []core.Node{big, small},
		Services: []core.Service{{
			ReqElem: vec.Of(0.1, 0.2), ReqAgg: vec.Of(0.1, 0.2),
			NeedElem: vec.New(2), NeedAgg: vec.New(2),
		}},
	}
	pl, ok := vp.Pack(p, 0, vp.Config{
		Alg: vp.FirstFit, Hetero: true,
		ItemOrder: vp.NoOrder,
		BinOrder:  vp.Order{Metric: vec.MetricSum},
	})
	if !ok || pl[0] != 1 {
		t.Fatalf("ascending bins should pick the small node: %v (ok=%v)", pl, ok)
	}
	pl, ok = vp.Pack(p, 0, vp.Config{
		Alg: vp.FirstFit, Hetero: true,
		ItemOrder: vp.NoOrder,
		BinOrder:  vp.Order{Metric: vec.MetricSum, Descending: true},
	})
	if !ok || pl[0] != 0 {
		t.Fatalf("descending bins should pick the big node: %v (ok=%v)", pl, ok)
	}
}

// The LP-bracketed variants must agree with the classic search within the
// binary-search tolerance: the relaxation bound only removes yields no
// packing can reach.
func TestMetaHVPBoundedWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const tol = 1e-3
	for iter := 0; iter < 5; iter++ {
		p := randomProblem(rng, 3, 9)
		plain := MetaHVP(p, tol)
		bounded := MetaHVPBounded(p, tol)
		if plain.Solved != bounded.Solved {
			t.Fatalf("iter %d: solved mismatch plain=%v bounded=%v", iter, plain.Solved, bounded.Solved)
		}
		if plain.Solved && math.Abs(plain.MinYield-bounded.MinYield) > tol {
			t.Fatalf("iter %d: bounded %v vs plain %v", iter, bounded.MinYield, plain.MinYield)
		}
		if bounded.Solved {
			if err := bounded.Placement.Validate(p); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	}
}

// MetaHVPParallel races per-worker solver arenas with first-success
// cancellation over an *unbounded* bracket; comparing against the
// LP-bracketed sequential meta, solvedness must match and yields may differ
// by bracket discretization plus racing nondeterminism, both within the
// 0.05 allowance.
func TestMetaHVPParallelMatchesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 4; iter++ {
		p := randomProblem(rng, 4, 12)
		seq := MetaHVPBounded(p, 1e-3)
		par := MetaHVPParallel(p, 1e-3, 4)
		if seq.Solved != par.Solved {
			t.Fatalf("iter %d: solved mismatch seq=%v par=%v", iter, seq.Solved, par.Solved)
		}
		if seq.Solved {
			if err := par.Placement.Validate(p); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if math.Abs(seq.MinYield-par.MinYield) > 0.05 {
				t.Fatalf("iter %d: yields diverge: %v vs %v", iter, seq.MinYield, par.MinYield)
			}
		}
	}
}

// An empty strategy roster must fail gracefully, not panic.
func TestMetaParallelEmptyRoster(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := randomProblem(rng, 2, 4)
	if res := MetaParallel(p, nil, 1e-3, 4); res.Solved {
		t.Fatal("empty roster cannot solve anything")
	}
}

// METAHVP on the paper's Figure 1 instance must place the service on node B
// and reach yield 1, matching the worked example.
func TestMetaHVPFigure1(t *testing.T) {
	p := &core.Problem{
		Nodes: []core.Node{
			{Elementary: vec.Of(0.8, 1.0), Aggregate: vec.Of(3.2, 1.0)},
			{Elementary: vec.Of(1.0, 0.5), Aggregate: vec.Of(2.0, 0.5)},
		},
		Services: []core.Service{{
			ReqElem: vec.Of(0.5, 0.5), ReqAgg: vec.Of(1.0, 0.5),
			NeedElem: vec.Of(0.5, 0.0), NeedAgg: vec.Of(1.0, 0.0),
		}},
	}
	res := MetaHVP(p, 1e-4)
	if !res.Solved || res.Placement[0] != 1 || math.Abs(res.MinYield-1.0) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
}
