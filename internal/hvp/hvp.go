// Package hvp implements the paper's heterogeneous vector-packing algorithms
// (§3.5.4–3.5.5 and §5.1): packing strategies that explicitly sort the bins
// by capacity and measure fullness by remaining capacity, the METAHVP
// combination of all 253 strategies, and the engineered METAHVPLIGHT subset
// of 60 strategies that runs almost an order of magnitude faster with nearly
// identical solution quality.
package hvp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"vmalloc/internal/core"
	"vmalloc/internal/relax"
	"vmalloc/internal/vec"
	"vmalloc/internal/vp"
)

// Strategies returns the 253 METAHVP strategies: Best-Fit (which imposes its
// own bin selection) over 11 item orders, plus First-Fit and
// Permutation-Pack over 11 item orders × 11 bin orders each:
// 11 + 2·11·11 = 253.
func Strategies() []vp.Config {
	var out []vp.Config
	for _, io := range vp.AllOrders() {
		out = append(out, vp.Config{Alg: vp.BestFit, ItemOrder: io, Hetero: true})
	}
	for _, alg := range []vp.Algorithm{vp.FirstFit, vp.PermutationPack} {
		for _, io := range vp.AllOrders() {
			for _, bo := range vp.AllOrders() {
				out = append(out, vp.Config{Alg: alg, ItemOrder: io, BinOrder: bo, Hetero: true})
			}
		}
	}
	return out
}

// LightStrategies returns the 60 METAHVPLIGHT strategies (§5.1): item
// sortings restricted to descending MAX, SUM, MAXDIFFERENCE and MAXRATIO;
// bin sortings restricted to ascending LEX, MAX and SUM, descending MAX,
// MAXDIFFERENCE and MAXRATIO, and NONE: 4 + 2·4·7 = 60.
func LightStrategies() []vp.Config {
	itemOrders := []vp.Order{
		{Metric: vec.MetricMax, Descending: true},
		{Metric: vec.MetricSum, Descending: true},
		{Metric: vec.MetricMaxDifference, Descending: true},
		{Metric: vec.MetricMaxRatio, Descending: true},
	}
	binOrders := []vp.Order{
		{Metric: vec.MetricLex, Descending: false},
		{Metric: vec.MetricMax, Descending: false},
		{Metric: vec.MetricSum, Descending: false},
		{Metric: vec.MetricMax, Descending: true},
		{Metric: vec.MetricMaxDifference, Descending: true},
		{Metric: vec.MetricMaxRatio, Descending: true},
		vp.NoOrder,
	}
	var out []vp.Config
	for _, io := range itemOrders {
		out = append(out, vp.Config{Alg: vp.BestFit, ItemOrder: io, Hetero: true})
	}
	for _, alg := range []vp.Algorithm{vp.FirstFit, vp.PermutationPack} {
		for _, io := range itemOrders {
			for _, bo := range binOrders {
				out = append(out, vp.Config{Alg: alg, ItemOrder: io, BinOrder: bo, Hetero: true})
			}
		}
	}
	return out
}

// SolveStrategy runs a single heterogeneous strategy inside the yield
// binary search.
func SolveStrategy(p *core.Problem, c vp.Config, tol float64) *core.Result {
	c.Hetero = true
	return vp.Solve(p, c, tol)
}

// MetaHVP runs METAHVP: at each binary-search step all 253 strategies are
// tried until one succeeds.
func MetaHVP(p *core.Problem, tol float64) *core.Result {
	return vp.MetaConfigs(p, Strategies(), tol)
}

// MetaHVPLight runs METAHVPLIGHT over the reduced strategy set.
func MetaHVPLight(p *core.Problem, tol float64) *core.Result {
	return vp.MetaConfigs(p, LightStrategies(), tol)
}

// LPYieldBound adapts the sparse LP relaxation bound (LPBOUND,
// relax.UpperBound) to the vp.SearchOptions upper-bound hook: every integral
// allocation's minimum yield is bounded by the relaxation's optimum, so the
// binary search can start from the bracket [0, min(1, Y_LP)] instead of
// [0, 1] — echoing the bound-guided pruning of stage-decomposed IPs — and
// skip the packing work above the bound entirely.
func LPYieldBound(p *core.Problem) (float64, error) {
	return relax.UpperBound(p)
}

// MetaHVPBounded is METAHVP with the LP-bracketed binary search: the sparse
// relaxation is solved once up front and its optimal yield caps the bracket
// before any packing runs. The relaxation solve is not free — it pays off
// when the packing side dominates (very large strategy rosters or tight
// tolerances) or when the caller already has the relaxation in hand for
// RRND/RRNZ; benchmark both variants on your workload before choosing.
func MetaHVPBounded(p *core.Problem, tol float64) *core.Result {
	return vp.MetaConfigsOpt(p, Strategies(), vp.SearchOptions{Tol: tol, UpperBound: LPYieldBound})
}

// MetaHVPParallel is METAHVP with every binary-search step raced by a worker
// pool with first-success cancellation. workers <= 0 selects GOMAXPROCS.
// Combine with MetaParallelOpt and LPYieldBound for LP bracketing on top.
func MetaHVPParallel(p *core.Problem, tol float64, workers int) *core.Result {
	return MetaParallelOpt(p, Strategies(), vp.SearchOptions{Tol: tol}, workers)
}

// MetaDeterministicSolvers runs the meta search with each binary-search step
// raced by one goroutine per solver, while preserving the *sequential*
// semantics exactly: the step returns the successful strategy with the
// lowest roster index, which is precisely the strategy sequential
// MetaConfigs would have stopped at. Callers own the per-worker solvers
// (typically one long-lived set per online engine, Rebind-ed between
// epochs), so repeated epoch re-solves reuse W warm arenas.
//
// Determinism argument: workers claim strategy indices from an atomic
// counter in ascending order. A claimed index is skipped only when a success
// at a strictly lower index is already recorded, so no index below the
// eventual minimum is ever skipped; every such index is packed to completion
// and fails (packing a strategy is deterministic and independent of sibling
// strategies — each Pack starts from a cleared arena). The minimum recorded
// success is therefore exactly the sequential first success, and its
// placement is byte-identical to the sequential one. Unlike MetaParallelOpt
// — which keeps whichever success lands first — this variant is safe for
// golden-trajectory reproducibility; the price is that workers cannot
// early-cancel siblings below the current minimum.
func MetaDeterministicSolvers(solvers []*vp.Solver, configs []vp.Config, opts vp.SearchOptions) *core.Result {
	if len(solvers) == 0 || len(configs) == 0 {
		return &core.Result{}
	}
	p := solvers[0].Problem()
	if len(solvers) == 1 {
		return vp.MetaConfigsSolver(solvers[0], configs, opts)
	}
	return vp.SearchMaxYieldOpt(p, opts, func(y float64) (core.Placement, bool) {
		// A step no strategy can win fails without spawning any goroutine.
		if !solvers[0].StepFeasible(y) {
			return nil, false
		}
		var (
			next    atomic.Int64
			minIdx  atomic.Int64
			mu      sync.Mutex
			bestPl  core.Placement
			bestIdx = len(configs)
			wg      sync.WaitGroup
		)
		next.Store(-1)
		minIdx.Store(int64(len(configs)))
		for w := 0; w < len(solvers); w++ {
			wg.Add(1)
			go func(sol *vp.Solver) {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					// Indices are claimed in ascending order, so once i cannot
					// beat the recorded minimum no later claim can either.
					if i >= len(configs) || int64(i) > minIdx.Load() {
						return
					}
					if pl, ok := sol.Pack(y, configs[i]); ok {
						mu.Lock()
						if i < bestIdx {
							bestIdx = i
							bestPl = pl.Clone()
							minIdx.Store(int64(i))
						}
						mu.Unlock()
						return // any further claim would be a larger index
					}
				}
			}(solvers[w])
		}
		wg.Wait()
		if bestPl != nil {
			return bestPl, true
		}
		return nil, false
	})
}

// NewSolverPool returns n independent solvers for p (n <= 0 selects
// GOMAXPROCS), the worker set for MetaDeterministicSolvers; rebind each of
// them after mutating the problem.
func NewSolverPool(p *core.Problem, n int) []*vp.Solver {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	solvers := make([]*vp.Solver, n)
	for i := range solvers {
		solvers[i] = vp.NewSolver(p)
	}
	return solvers
}

// MetaParallel runs a meta algorithm with the binary-search step evaluated
// by a pool of workers racing over the strategy list: a step succeeds as
// soon as any worker packs the instance. Results are identical to the
// sequential meta in terms of success/failure per step; the placement kept
// for a successful step may come from a different (still successful)
// strategy. workers <= 0 selects GOMAXPROCS.
func MetaParallel(p *core.Problem, configs []vp.Config, tol float64, workers int) *core.Result {
	return MetaParallelOpt(p, configs, vp.SearchOptions{Tol: tol}, workers)
}

// MetaParallelOpt is MetaParallel with search options (LP-bound
// bracketing). Each worker owns one reusable vp.Solver for the whole search,
// so per-step work is an O(J·D) instance refresh instead of per-strategy
// reallocation, and the first worker to pack a step cancels its siblings
// mid-pack via context.
func MetaParallelOpt(p *core.Problem, configs []vp.Config, opts vp.SearchOptions, workers int) *core.Result {
	if len(configs) == 0 {
		return &core.Result{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	solvers := make([]*vp.Solver, workers)
	for w := range solvers {
		solvers[w] = vp.NewSolver(p)
	}
	return vp.SearchMaxYieldOpt(p, opts, func(y float64) (core.Placement, bool) {
		// A step no strategy can win fails without spawning any packing work.
		if !solvers[0].StepFeasible(y) {
			return nil, false
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var (
			next    int64 = -1
			found   atomic.Value
			success atomic.Bool
			wg      sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sol *vp.Solver) {
				defer wg.Done()
				for {
					if success.Load() {
						return
					}
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(configs) {
						return
					}
					if pl, ok := sol.PackCtx(ctx, y, configs[i]); ok {
						// Clone: the solver arena is reused next step, but the
						// search may retain this placement as its best.
						if success.CompareAndSwap(false, true) {
							found.Store(pl.Clone())
						}
						cancel()
						return
					}
				}
			}(solvers[w])
		}
		wg.Wait()
		if success.Load() {
			return found.Load().(core.Placement), true
		}
		return nil, false
	})
}
