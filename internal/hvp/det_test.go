package hvp

import (
	"math/rand"
	"testing"

	"vmalloc/internal/vp"
)

// TestMetaDeterministicMatchesSequential is the determinism contract: for
// any worker count, MetaDeterministicSolvers must return exactly the result
// of the sequential meta — same Solved flag, same MinYield, same placement —
// because the step reduction keeps the lowest-index success. (MetaParallelOpt
// deliberately does not promise this; the engine's golden trajectories do.)
func TestMetaDeterministicMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	configs := LightStrategies()
	for trial := 0; trial < 12; trial++ {
		p := randomProblem(rng, 3+rng.Intn(5), 8+rng.Intn(40))
		want := vp.MetaConfigs(p, configs, 1e-3)
		for _, workers := range []int{1, 2, 3, 8} {
			solvers := NewSolverPool(p, workers)
			got := MetaDeterministicSolvers(solvers, configs, vp.SearchOptions{Tol: 1e-3})
			if got.Solved != want.Solved || got.MinYield != want.MinYield {
				t.Fatalf("trial %d workers %d: got (%v, %v), sequential (%v, %v)",
					trial, workers, got.Solved, got.MinYield, want.Solved, want.MinYield)
			}
			for i := range want.Placement {
				if got.Placement[i] != want.Placement[i] {
					t.Fatalf("trial %d workers %d: placement[%d]=%d, sequential %d",
						trial, workers, i, got.Placement[i], want.Placement[i])
				}
			}
		}
	}
}

// TestMetaDeterministicRebindChurn drives one persistent solver pool through
// service churn with Rebind between epochs, checking against the sequential
// meta on a fresh clone every epoch — the engine's steady-state epoch path.
func TestMetaDeterministicRebindChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := randomProblem(rng, 4, 24)
	configs := LightStrategies()
	solvers := NewSolverPool(p, 3)
	for epoch := 0; epoch < 6; epoch++ {
		if epoch > 0 {
			fresh := randomProblem(rng, 1, 10+rng.Intn(40))
			p.Services = append(p.Services[:0], fresh.Services...)
			for _, s := range solvers {
				s.Rebind(p)
			}
		}
		got := MetaDeterministicSolvers(solvers, configs, vp.SearchOptions{Tol: 1e-3})
		want := vp.MetaConfigs(p.Clone(), configs, 1e-3)
		if got.Solved != want.Solved || got.MinYield != want.MinYield {
			t.Fatalf("epoch %d: got (%v, %v), sequential (%v, %v)",
				epoch, got.Solved, got.MinYield, want.Solved, want.MinYield)
		}
		for i := range want.Placement {
			if got.Placement[i] != want.Placement[i] {
				t.Fatalf("epoch %d: placement[%d]=%d, sequential %d",
					epoch, i, got.Placement[i], want.Placement[i])
			}
		}
	}
}

func TestMetaDeterministicEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomProblem(rng, 3, 6)
	if res := MetaDeterministicSolvers(nil, LightStrategies(), vp.SearchOptions{}); res.Solved {
		t.Fatal("no solvers must not solve")
	}
	if res := MetaDeterministicSolvers(NewSolverPool(p, 2), nil, vp.SearchOptions{}); res.Solved {
		t.Fatal("no strategies must not solve")
	}
	// Single worker takes the sequential path.
	res := MetaDeterministicSolvers(NewSolverPool(p, 1), LightStrategies(), vp.SearchOptions{Tol: 1e-3})
	want := vp.MetaConfigs(p.Clone(), LightStrategies(), 1e-3)
	if res.Solved != want.Solved || res.MinYield != want.MinYield {
		t.Fatalf("single worker: got (%v, %v), want (%v, %v)", res.Solved, res.MinYield, want.Solved, want.MinYield)
	}
}
