// Package obs is the dependency-free observability seam: a span tracer with
// context.Context propagation, a ring of recent traces, and per-epoch solver
// telemetry aggregated into ring-buffered reports.
//
// The design constraint is the hot path: the placement loops are
// allocation-free today and must stay that way, so every handle in this
// package is nil-safe — a disabled tracer hands out nil *Trace and zero
// Span values whose methods are no-ops, and the only cost left on the
// disabled path is one atomic load. Rings are preallocated at construction;
// steady-state tracing recycles trace slots instead of growing.
package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one integer annotation on a span (shard index, record count,
// byte size — span attributes in this system are always numeric).
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// span is the internal mutable form; snapshots copy it out.
type span struct {
	name   string
	parent int32
	start  int64 // ns since trace start
	end    int64 // ns since trace start; 0 while open
	attrs  [4]Attr
	nattrs int
}

// Trace is one request's (or one epoch's) span tree. A nil *Trace is a
// valid no-op handle: every method short-circuits, so call sites never
// branch on whether tracing is enabled.
type Trace struct {
	tr    *Tracer
	id    string
	name  string
	start time.Time

	mu       sync.Mutex
	spans    []span
	status   int
	endNs    int64
	finished bool
}

// Span addresses one span inside a trace. The zero Span is a no-op handle.
type Span struct {
	t   *Trace
	idx int32
}

// Tracer owns the trace rings. Safe for concurrent use.
type Tracer struct {
	enabled atomic.Bool
	slowNs  atomic.Int64
	seq     atomic.Uint64
	base    string

	mu       sync.Mutex
	ring     []*Trace // recent traces, circular
	next     int
	slow     []*Trace // slow or 5xx traces, circular, kept longer
	slowNext int
	started  uint64
}

// DefaultRing is the trace-ring capacity NewTracer uses for size <= 0.
const DefaultRing = 256

// DefaultSlowThreshold marks traces slower than this for the slow ring.
const DefaultSlowThreshold = 500 * time.Millisecond

// NewTracer returns an enabled tracer keeping the last size traces (and
// size/4 slow traces). size <= 0 means DefaultRing; slow <= 0 means
// DefaultSlowThreshold.
func NewTracer(size int, slow time.Duration) *Tracer {
	if size <= 0 {
		size = DefaultRing
	}
	if slow <= 0 {
		slow = DefaultSlowThreshold
	}
	slowSize := size / 4
	if slowSize < 4 {
		slowSize = 4
	}
	t := &Tracer{
		base: strconv.FormatInt(time.Now().UnixNano(), 36),
		ring: make([]*Trace, size),
		slow: make([]*Trace, slowSize),
	}
	t.enabled.Store(true)
	t.slowNs.Store(int64(slow))
	return t
}

// SetEnabled flips tracing. Disabled, StartTrace returns nil and the whole
// span API degenerates to nil checks.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether StartTrace currently hands out live traces.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSlowThreshold changes the duration beyond which a finished trace is
// copied to the slow ring.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil && d > 0 {
		t.slowNs.Store(int64(d))
	}
}

// NewID mints a process-unique trace id. It works even when tracing is
// disabled, so request ids in responses never depend on the tracer state.
func (t *Tracer) NewID() string {
	if t == nil {
		return ""
	}
	return t.base + "-" + strconv.FormatUint(t.seq.Add(1), 16)
}

// StartTrace opens a trace with a root span of the same name and installs
// it in the recent-trace ring immediately, so in-flight requests are
// visible to GET /v1/debug/traces before they finish. id == "" mints one.
// Returns nil (a valid no-op handle) when tracing is disabled.
func (t *Tracer) StartTrace(name, id string) *Trace {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	if id == "" {
		id = t.NewID()
	}
	tr := &Trace{tr: t, id: id, name: name, start: time.Now()}
	tr.spans = make([]span, 1, 16)
	tr.spans[0] = span{name: name, parent: -1}
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	t.started++
	t.mu.Unlock()
	return tr
}

// Started returns the number of traces ever started.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// ID returns the trace id ("" on a nil trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Root returns the root span handle.
func (tr *Trace) Root() Span {
	if tr == nil {
		return Span{}
	}
	return Span{t: tr, idx: 0}
}

// Finish closes the trace (and its root span) with an HTTP-like status
// code. Slow traces and traces with status >= 500 are copied into the
// longer-lived slow ring so a burst of fast requests cannot evict the
// interesting ones before anybody looks.
func (tr *Trace) Finish(status int) {
	if tr == nil {
		return
	}
	now := time.Since(tr.start).Nanoseconds()
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.status = status
	tr.endNs = now
	if tr.spans[0].end == 0 {
		tr.spans[0].end = now
	}
	tr.mu.Unlock()
	t := tr.tr
	if now >= t.slowNs.Load() || status >= 500 {
		t.mu.Lock()
		t.slow[t.slowNext] = tr
		t.slowNext = (t.slowNext + 1) % len(t.slow)
		t.mu.Unlock()
	}
}

func (tr *Trace) newSpan(name string, parent int32) Span {
	now := time.Since(tr.start).Nanoseconds()
	tr.mu.Lock()
	idx := int32(len(tr.spans))
	tr.spans = append(tr.spans, span{name: name, parent: parent, start: now})
	tr.mu.Unlock()
	return Span{t: tr, idx: idx}
}

// StartChild opens a child span. On the zero Span it is a no-op returning
// another zero Span, so deep call chains need no enabled checks.
func (s Span) StartChild(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.newSpan(name, s.idx)
}

// End closes the span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.start).Nanoseconds()
	s.t.mu.Lock()
	if s.t.spans[s.idx].end == 0 {
		s.t.spans[s.idx].end = now
	}
	s.t.mu.Unlock()
}

// SetInt attaches an integer attribute (up to 4 per span; extras dropped).
func (s Span) SetInt(key string, v int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	if sp.nattrs < len(sp.attrs) {
		sp.attrs[sp.nattrs] = Attr{Key: key, Val: v}
		sp.nattrs++
	}
	s.t.mu.Unlock()
}

// Trace returns the owning trace (nil on the zero Span).
func (s Span) Trace() *Trace { return s.t }

// ctxKey is the context key for the current span.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span. A zero span
// returns ctx unchanged, so the disabled path allocates nothing.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the current span, or the zero no-op Span.
func SpanFromContext(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	s, _ := ctx.Value(ctxKey{}).(Span)
	return s
}

// SpanSnapshot is the exported, immutable form of one span.
type SpanSnapshot struct {
	ID      int    `json:"id"`
	Parent  int    `json:"parent"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// TraceSnapshot is the exported, immutable form of one trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNs int64          `json:"duration_ns"`
	Status     int            `json:"status,omitempty"`
	Finished   bool           `json:"finished"`
	Spans      []SpanSnapshot `json:"spans"`
}

func (tr *Trace) snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := TraceSnapshot{
		ID:         tr.id,
		Name:       tr.name,
		Start:      tr.start,
		DurationNs: tr.endNs,
		Status:     tr.status,
		Finished:   tr.finished,
		Spans:      make([]SpanSnapshot, len(tr.spans)),
	}
	if !tr.finished {
		out.DurationNs = time.Since(tr.start).Nanoseconds()
	}
	for i := range tr.spans {
		sp := &tr.spans[i]
		ss := SpanSnapshot{
			ID:      i,
			Parent:  int(sp.parent),
			Name:    sp.name,
			StartNs: sp.start,
			EndNs:   sp.end,
		}
		if sp.nattrs > 0 {
			ss.Attrs = append([]Attr(nil), sp.attrs[:sp.nattrs]...)
		}
		out.Spans[i] = ss
	}
	return out
}

// Snapshot returns up to limit recent traces, newest first (limit <= 0
// means everything retained). The slow ring is appended after the recent
// ring, deduplicated by identity.
func (t *Tracer) Snapshot(limit int) []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recent := collectRing(t.ring, t.next)
	slow := collectRing(t.slow, t.slowNext)
	t.mu.Unlock()
	seen := make(map[*Trace]bool, len(recent)+len(slow))
	var out []TraceSnapshot
	for _, tr := range append(recent, slow...) {
		if seen[tr] {
			continue
		}
		seen[tr] = true
		out = append(out, tr.snapshot())
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Lookup finds a retained trace by id.
func (t *Tracer) Lookup(id string) (TraceSnapshot, bool) {
	if t == nil || id == "" {
		return TraceSnapshot{}, false
	}
	t.mu.Lock()
	trs := append(collectRing(t.ring, t.next), collectRing(t.slow, t.slowNext)...)
	t.mu.Unlock()
	for _, tr := range trs {
		if tr.id == id {
			return tr.snapshot(), true
		}
	}
	return TraceSnapshot{}, false
}

// collectRing returns ring entries newest first. next points at the slot
// the NEXT insert will take, so next-1 is the newest.
func collectRing(ring []*Trace, next int) []*Trace {
	out := make([]*Trace, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		tr := ring[(next-1-i+2*len(ring))%len(ring)]
		if tr == nil {
			break
		}
		out = append(out, tr)
	}
	return out
}
