package obs

import (
	"sync"
	"time"
)

// SolverStats aggregates the cheap per-solve counters of the whole solver
// tier — presolve reductions, simplex work, branch-and-bound effort, and
// the vector-packing meta-heuristic's pruning — over one epoch (or one
// shard's slice of one). Counters are plain ints: each solver instance is
// single-threaded, and cross-shard aggregation happens after the
// scatter-gather join.
type SolverStats struct {
	// Presolve reductions, by rule.
	PresolveRowsEliminated  int64 `json:"presolve_rows_eliminated"`
	PresolveColsEliminated  int64 `json:"presolve_cols_eliminated"`
	PresolveFixedCols       int64 `json:"presolve_fixed_cols"`
	PresolveDroppedRows     int64 `json:"presolve_dropped_rows"`
	PresolveSubstCols       int64 `json:"presolve_subst_cols"`
	PresolveBoundsTightened int64 `json:"presolve_bounds_tightened"`
	PresolveDoubletonSlacks int64 `json:"presolve_doubleton_slacks"`

	// Simplex work.
	LPSolves           int64 `json:"lp_solves"`
	LPIterations       int64 `json:"lp_iterations"`
	LPRefactorizations int64 `json:"lp_refactorizations"`
	LPBlandActivations int64 `json:"lp_bland_activations"`
	LPWarmStarts       int64 `json:"lp_warm_starts"`
	LPColdStarts       int64 `json:"lp_cold_starts"`

	// Branch and bound.
	MILPNodes  int64 `json:"milp_nodes"`
	MILPPruned int64 `json:"milp_pruned"`

	// Vector-packing meta-heuristic.
	VPPacks       int64 `json:"vp_packs"`
	VPPacksSolved int64 `json:"vp_packs_solved"`
	VPStepsPruned int64 `json:"vp_steps_pruned"`
}

// Add accumulates o into s.
func (s *SolverStats) Add(o SolverStats) {
	s.PresolveRowsEliminated += o.PresolveRowsEliminated
	s.PresolveColsEliminated += o.PresolveColsEliminated
	s.PresolveFixedCols += o.PresolveFixedCols
	s.PresolveDroppedRows += o.PresolveDroppedRows
	s.PresolveSubstCols += o.PresolveSubstCols
	s.PresolveBoundsTightened += o.PresolveBoundsTightened
	s.PresolveDoubletonSlacks += o.PresolveDoubletonSlacks
	s.LPSolves += o.LPSolves
	s.LPIterations += o.LPIterations
	s.LPRefactorizations += o.LPRefactorizations
	s.LPBlandActivations += o.LPBlandActivations
	s.LPWarmStarts += o.LPWarmStarts
	s.LPColdStarts += o.LPColdStarts
	s.MILPNodes += o.MILPNodes
	s.MILPPruned += o.MILPPruned
	s.VPPacks += o.VPPacks
	s.VPPacksSolved += o.VPPacksSolved
	s.VPStepsPruned += o.VPStepsPruned
}

// ShardEpoch is one placement domain's slice of an epoch: outcome, solve
// wall time and the solver counters that produced it.
type ShardEpoch struct {
	Shard      int         `json:"shard"`
	Solved     bool        `json:"solved"`
	MinYield   float64     `json:"min_yield"`
	Services   int         `json:"services"`
	Migrations int         `json:"migrations"`
	SolveNs    int64       `json:"solve_ns"`
	Solver     SolverStats `json:"solver"`
}

// EpochStats is the observability payload of one epoch: total solve time,
// park-wide solver counters, and (for sharded clusters) the per-shard
// breakdown.
type EpochStats struct {
	SolveNs int64        `json:"solve_ns"`
	Solver  SolverStats  `json:"solver"`
	Shards  []ShardEpoch `json:"shards,omitempty"`
}

// EpochRecord is one epoch as retained by the server's ring: the
// EpochStats plus commit-pipeline phase timing and the trace it ran under.
type EpochRecord struct {
	Seq         uint64       `json:"seq"`
	TraceID     string       `json:"trace_id,omitempty"`
	Start       time.Time    `json:"start"`
	Repair      bool         `json:"repair"`
	Budget      int          `json:"budget,omitempty"`
	Solved      bool         `json:"solved"`
	MinYield    float64      `json:"min_yield"`
	Services    int          `json:"services"`
	Migrations  int          `json:"migrations"`
	TotalNs     int64        `json:"total_ns"`
	SolveNs     int64        `json:"solve_ns"`
	FsyncWaitNs int64        `json:"fsync_wait_ns"`
	Solver      SolverStats  `json:"solver"`
	Shards      []ShardEpoch `json:"shards,omitempty"`
}

// EpochTotals are the cumulative counters over every epoch ever recorded,
// exported as /metrics counter families.
type EpochTotals struct {
	Epochs       uint64      `json:"epochs"`
	FailedEpochs uint64      `json:"failed_epochs"`
	TotalNs      int64       `json:"total_ns"`
	SolveNs      int64       `json:"solve_ns"`
	FsyncWaitNs  int64       `json:"fsync_wait_ns"`
	Solver       SolverStats `json:"solver"`
}

// EpochRing retains the last N epoch records plus cumulative totals. A nil
// *EpochRing is a valid no-op handle. Safe for concurrent use.
type EpochRing struct {
	mu     sync.Mutex
	buf    []EpochRecord
	seq    uint64
	totals EpochTotals
}

// DefaultEpochRing is the epoch-ring capacity NewEpochRing uses for
// size <= 0.
const DefaultEpochRing = 128

// NewEpochRing returns a ring retaining the last size epochs.
func NewEpochRing(size int) *EpochRing {
	if size <= 0 {
		size = DefaultEpochRing
	}
	return &EpochRing{buf: make([]EpochRecord, size)}
}

// Add stamps rec with the next sequence number and retains it.
func (r *EpochRing) Add(rec EpochRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	rec.Seq = r.seq
	r.buf[(r.seq-1)%uint64(len(r.buf))] = rec
	r.totals.Epochs++
	if !rec.Solved {
		r.totals.FailedEpochs++
	}
	r.totals.TotalNs += rec.TotalNs
	r.totals.SolveNs += rec.SolveNs
	r.totals.FsyncWaitNs += rec.FsyncWaitNs
	r.totals.Solver.Add(rec.Solver)
	r.mu.Unlock()
}

// Snapshot returns up to limit retained records, newest first (limit <= 0
// means everything retained).
func (r *EpochRing) Snapshot(limit int) []EpochRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.seq)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]EpochRecord, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(r.seq-1-uint64(i))%uint64(len(r.buf))]
	}
	return out
}

// Totals returns the cumulative counters over every recorded epoch.
func (r *EpochRing) Totals() EpochTotals {
	if r == nil {
		return EpochTotals{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals
}

// Observer bundles the two retained-telemetry surfaces a store or handler
// needs. A nil *Observer (or any nil field) is fully functional as a
// no-op.
type Observer struct {
	Tracer *Tracer
	Epochs *EpochRing
}

// NewObserver returns an observer with default-sized tracer and epoch
// rings.
func NewObserver() *Observer {
	return &Observer{Tracer: NewTracer(0, 0), Epochs: NewEpochRing(0)}
}

// TracerOf returns o.Tracer, tolerating a nil receiver.
func (o *Observer) TracerOf() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// EpochsOf returns o.Epochs, tolerating a nil receiver.
func (o *Observer) EpochsOf() *EpochRing {
	if o == nil {
		return nil
	}
	return o.Epochs
}
