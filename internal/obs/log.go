package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the structured logger behind -log-level/-log-format:
// text (the default, human-first) or json (one object per line, for log
// pipelines).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}
