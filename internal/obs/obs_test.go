package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilHandlesNoOp(t *testing.T) {
	var tr *Trace
	tr.Finish(200)
	if got := tr.ID(); got != "" {
		t.Fatalf("nil trace id = %q", got)
	}
	sp := tr.Root()
	child := sp.StartChild("x")
	child.SetInt("k", 1)
	child.End()
	if child.Trace() != nil {
		t.Fatal("zero span has a trace")
	}
	ctx := ContextWithSpan(context.Background(), sp)
	if ctx != context.Background() {
		t.Fatal("zero span should not decorate the context")
	}
	if got := SpanFromContext(ctx); got.t != nil {
		t.Fatal("expected zero span back")
	}
	var tt *Tracer
	if tt.StartTrace("x", "") != nil {
		t.Fatal("nil tracer started a trace")
	}
	if tt.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	var ring *EpochRing
	ring.Add(EpochRecord{})
	if ring.Snapshot(0) != nil || ring.Totals().Epochs != 0 {
		t.Fatal("nil ring not inert")
	}
}

func TestDisabledTracerStartsNothing(t *testing.T) {
	tr := NewTracer(8, time.Second)
	tr.SetEnabled(false)
	if tr.StartTrace("req", "") != nil {
		t.Fatal("disabled tracer returned a live trace")
	}
	if id := tr.NewID(); id == "" {
		t.Fatal("NewID must work while disabled")
	}
	tr.SetEnabled(true)
	if tr.StartTrace("req", "") == nil {
		t.Fatal("re-enabled tracer returned nil")
	}
}

func TestSpanTreeAndLookup(t *testing.T) {
	tc := NewTracer(8, time.Second)
	trace := tc.StartTrace("POST /v1/reallocate", "req-1")
	root := trace.Root()
	ctx := ContextWithSpan(context.Background(), root)

	apply := SpanFromContext(ctx).StartChild("apply")
	shard := apply.StartChild("shard_epoch")
	shard.SetInt("shard", 3)
	shard.End()
	apply.End()
	wait := SpanFromContext(ctx).StartChild("fsync_wait")
	wait.End()
	trace.Finish(200)

	snap, ok := tc.Lookup("req-1")
	if !ok {
		t.Fatal("trace not retained")
	}
	if !snap.Finished || snap.Status != 200 || snap.ID != "req-1" {
		t.Fatalf("bad snapshot header: %+v", snap)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("want 4 spans (root+apply+shard+fsync), got %d", len(snap.Spans))
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["apply"].Parent != 0 {
		t.Fatalf("apply parent = %d, want root 0", byName["apply"].Parent)
	}
	if byName["shard_epoch"].Parent != byName["apply"].ID {
		t.Fatal("shard_epoch is not a child of apply")
	}
	if byName["fsync_wait"].Parent != 0 {
		t.Fatal("fsync_wait is not a child of root")
	}
	if len(byName["shard_epoch"].Attrs) != 1 || byName["shard_epoch"].Attrs[0] != (Attr{Key: "shard", Val: 3}) {
		t.Fatalf("shard attr missing: %+v", byName["shard_epoch"].Attrs)
	}
	if byName["shard_epoch"].EndNs == 0 {
		t.Fatal("ended span has zero end")
	}
}

func TestRingEvictionKeepsSlowTraces(t *testing.T) {
	tc := NewTracer(4, time.Hour)
	bad := tc.StartTrace("failing", "bad-1")
	bad.Finish(500) // 5xx goes to the slow ring regardless of duration
	for i := 0; i < 10; i++ {
		tc.StartTrace("fast", "").Finish(200)
	}
	if _, ok := tc.Lookup("bad-1"); !ok {
		t.Fatal("5xx trace evicted despite slow ring")
	}
	snaps := tc.Snapshot(0)
	if len(snaps) != 5 { // 4 recent + 1 slow
		t.Fatalf("snapshot size = %d, want 5", len(snaps))
	}
	if got := tc.Snapshot(2); len(got) != 2 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	if tc.Started() != 11 {
		t.Fatalf("started = %d, want 11", tc.Started())
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tc := NewTracer(2, time.Hour)
	trace := tc.StartTrace("epoch", "")
	root := trace.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sp := root.StartChild("shard_epoch")
			sp.SetInt("shard", int64(n))
			sp.End()
		}(i)
	}
	wg.Wait()
	trace.Finish(200)
	snap, ok := tc.Lookup(trace.ID())
	if !ok || len(snap.Spans) != 9 {
		t.Fatalf("want 9 spans, got %d (found %v)", len(snap.Spans), ok)
	}
}

func TestTraceSnapshotJSONRoundTrips(t *testing.T) {
	tc := NewTracer(2, time.Hour)
	trace := tc.StartTrace("req", `evil"id\n`)
	trace.Root().StartChild("apply").End()
	trace.Finish(400)
	snap, _ := tc.Lookup(`evil"id\n`)
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != snap.ID || len(back.Spans) != len(snap.Spans) {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestEpochRingWrapAndTotals(t *testing.T) {
	r := NewEpochRing(4)
	for i := 0; i < 6; i++ {
		rec := EpochRecord{
			Solved:  i%2 == 0,
			SolveNs: 10,
			TotalNs: 25,
			Solver:  SolverStats{LPIterations: 3, VPPacks: 2, MILPNodes: 1},
		}
		r.Add(rec)
	}
	snaps := r.Snapshot(0)
	if len(snaps) != 4 {
		t.Fatalf("retained %d, want ring size 4", len(snaps))
	}
	if snaps[0].Seq != 6 || snaps[3].Seq != 3 {
		t.Fatalf("newest-first ordering broken: %d..%d", snaps[0].Seq, snaps[3].Seq)
	}
	tot := r.Totals()
	if tot.Epochs != 6 || tot.FailedEpochs != 3 {
		t.Fatalf("totals: %+v", tot)
	}
	if tot.SolveNs != 60 || tot.TotalNs != 150 {
		t.Fatalf("time totals: %+v", tot)
	}
	if tot.Solver.LPIterations != 18 || tot.Solver.VPPacks != 12 || tot.Solver.MILPNodes != 6 {
		t.Fatalf("solver totals: %+v", tot.Solver)
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].Seq != 6 {
		t.Fatalf("limited snapshot: %+v", got)
	}
}

func TestSolverStatsAdd(t *testing.T) {
	a := SolverStats{LPIterations: 1, PresolveRowsEliminated: 2, VPStepsPruned: 3, LPWarmStarts: 1}
	a.Add(SolverStats{LPIterations: 4, PresolveRowsEliminated: 5, VPStepsPruned: 6, LPColdStarts: 2, MILPPruned: 7})
	want := SolverStats{
		LPIterations: 5, PresolveRowsEliminated: 7, VPStepsPruned: 9,
		LPWarmStarts: 1, LPColdStarts: 2, MILPPruned: 7,
	}
	if a != want {
		t.Fatalf("Add: got %+v want %+v", a, want)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "trace_id", "t-1")
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("json handler emitted non-JSON: %v (%q)", err, buf.String())
	}
	if obj["trace_id"] != "t-1" {
		t.Fatalf("missing trace_id: %v", obj)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	if buf.Len() != 0 {
		t.Fatalf("info leaked through warn level: %q", buf.String())
	}
	lg.Warn("kept")
	if !strings.Contains(buf.String(), "kept") {
		t.Fatalf("warn suppressed: %q", buf.String())
	}

	if _, err := NewLogger(&buf, "nope", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
	if lv, err := ParseLevel(""); err != nil || lv != slog.LevelInfo {
		t.Fatalf("default level: %v %v", lv, err)
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.TracerOf() != nil || o.EpochsOf() != nil {
		t.Fatal("nil observer leaked components")
	}
	o = NewObserver()
	if o.Tracer == nil || o.Epochs == nil {
		t.Fatal("NewObserver left nil components")
	}
}
