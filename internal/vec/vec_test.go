package vec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAndOf(t *testing.T) {
	v := New(3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	if !v.IsZero() {
		t.Fatalf("New vector should be zero, got %v", v)
	}
	w := Of(1, 2, 3)
	if w[0] != 1 || w[1] != 2 || w[2] != 3 {
		t.Fatalf("Of returned %v", w)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Of(1, 2)
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone aliases original: %v", v)
	}
}

func TestArithmetic(t *testing.T) {
	v := Of(1, 2, 3)
	w := Of(4, 5, 6)
	if got := v.Add(w); !reflect.DeepEqual(got, Of(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !reflect.DeepEqual(got, Of(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !reflect.DeepEqual(got, Of(2, 4, 6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.AddScaled(2, w); !reflect.DeepEqual(got, Of(9, 12, 15)) {
		t.Errorf("AddScaled = %v", got)
	}
}

func TestAccumOps(t *testing.T) {
	v := Of(1, 2)
	v.AccumAdd(Of(3, 4))
	if !reflect.DeepEqual(v, Of(4, 6)) {
		t.Fatalf("AccumAdd = %v", v)
	}
	v.AccumSub(Of(1, 1))
	if !reflect.DeepEqual(v, Of(3, 5)) {
		t.Fatalf("AccumSub = %v", v)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Of(1, 2).Add(Of(1, 2, 3))
}

func TestLessEq(t *testing.T) {
	tests := []struct {
		v, w Vec
		eps  float64
		want bool
	}{
		{Of(1, 1), Of(1, 1), 0, true},
		{Of(1, 2), Of(1, 1), 0, false},
		{Of(1.00005, 1), Of(1, 1), 1e-4, true},
		{Of(0, 0), Of(1, 1), 0, true},
		{Of(2, 0), Of(1, 1), 0, false},
	}
	for i, tc := range tests {
		if got := tc.v.LessEq(tc.w, tc.eps); got != tc.want {
			t.Errorf("case %d: LessEq(%v,%v,%g) = %v, want %v", i, tc.v, tc.w, tc.eps, got, tc.want)
		}
	}
}

func TestMaxMinSum(t *testing.T) {
	v := Of(3, 1, 2)
	if v.Max() != 3 || v.Min() != 1 || v.Sum() != 6 {
		t.Fatalf("Max/Min/Sum = %v/%v/%v", v.Max(), v.Min(), v.Sum())
	}
	empty := New(0)
	if empty.Max() != 0 || empty.Min() != 0 || empty.Sum() != 0 {
		t.Fatal("empty vector aggregates should be zero")
	}
}

func TestMetricScalar(t *testing.T) {
	v := Of(0.8, 0.2)
	if got := MetricMax.Scalar(v); got != 0.8 {
		t.Errorf("MAX = %v", got)
	}
	if got := MetricSum.Scalar(v); got != 1.0 {
		t.Errorf("SUM = %v", got)
	}
	if got := MetricMaxRatio.Scalar(v); got != 4.0 {
		t.Errorf("MAXRATIO = %v", got)
	}
	if got := MetricMaxDifference.Scalar(v); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("MAXDIFFERENCE = %v", got)
	}
}

func TestMetricMaxRatioEdgeCases(t *testing.T) {
	if got := MetricMaxRatio.Scalar(Of(0, 0)); got != 1 {
		t.Errorf("MAXRATIO of zero vector = %v, want 1", got)
	}
	if got := MetricMaxRatio.Scalar(Of(1, 0)); !math.IsInf(got, 1) {
		t.Errorf("MAXRATIO with zero min = %v, want +Inf", got)
	}
}

func TestMetricLexCompare(t *testing.T) {
	if MetricLex.Compare(Of(1, 9), Of(2, 0)) >= 0 {
		t.Error("LEX should compare dimension 0 first")
	}
	if MetricLex.Compare(Of(1, 1), Of(1, 2)) >= 0 {
		t.Error("LEX should fall through to dimension 1")
	}
	if MetricLex.Compare(Of(1, 1), Of(1, 1)) != 0 {
		t.Error("LEX equal vectors should compare 0")
	}
}

func TestMetricLexScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for LEX scalar")
		}
	}()
	MetricLex.Scalar(Of(1))
}

func TestMetricStringRoundTrip(t *testing.T) {
	for _, m := range Metrics() {
		got, err := ParseMetric(m.String())
		if err != nil {
			t.Fatalf("ParseMetric(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("round-trip %v -> %v", m, got)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Fatal("ParseMetric should reject unknown names")
	}
}

func TestMetricCompareConsistentWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Metric{MetricMax, MetricSum, MetricMaxDifference} {
		for i := 0; i < 200; i++ {
			v := Of(rng.Float64(), rng.Float64(), rng.Float64())
			w := Of(rng.Float64(), rng.Float64(), rng.Float64())
			c := m.Compare(v, w)
			a, b := m.Scalar(v), m.Scalar(w)
			switch {
			case a < b && c >= 0, a > b && c <= 0, a == b && c != 0:
				t.Fatalf("metric %v: Compare(%v,%v)=%d inconsistent with scalars %v,%v", m, v, w, c, a, b)
			}
		}
	}
}

func TestRank(t *testing.T) {
	v := Of(0.3, 0.9, 0.1, 0.9)
	desc := Rank(v, true)
	if !reflect.DeepEqual(desc, []int{1, 3, 0, 2}) {
		t.Errorf("desc rank = %v (ties must break by index)", desc)
	}
	asc := Rank(v, false)
	if !reflect.DeepEqual(asc, []int{2, 0, 1, 3}) {
		t.Errorf("asc rank = %v", asc)
	}
}

func TestPermutationKeyPaperExample(t *testing.T) {
	// Paper §3.5.2: bin ordering (4,2,3,1), item ordering (3,1,4,2) -> key
	// (3,4,1,2) in 1-based terms. Zero-based: bin (3,1,2,0), item (2,0,3,1)
	// -> key (2,3,0,1).
	binRank := []int{3, 1, 2, 0}
	itemRank := []int{2, 0, 3, 1}
	key := PermutationKey(binRank, itemRank)
	if !reflect.DeepEqual(key, []int{2, 3, 0, 1}) {
		t.Fatalf("key = %v, want [2 3 0 1]", key)
	}
}

func TestPermutationKeyIdentity(t *testing.T) {
	// An item whose ranking matches the bin's ranking has the identity key,
	// which sorts first lexicographically: a perfectly fitted item.
	r := []int{2, 0, 1}
	key := PermutationKey(r, r)
	if !reflect.DeepEqual(key, []int{0, 1, 2}) {
		t.Fatalf("key = %v, want identity", key)
	}
}

func TestCompareKeys(t *testing.T) {
	a := []int{0, 1, 2}
	b := []int{0, 2, 1}
	if CompareKeys(a, b, 0) >= 0 {
		t.Error("full-window compare failed")
	}
	if CompareKeys(a, b, 1) != 0 {
		t.Error("window-1 compare should tie on first position")
	}
	if CompareKeys(b, a, 2) <= 0 {
		t.Error("window-2 compare should order by second position")
	}
}

func TestKeyWithinWindow(t *testing.T) {
	if !KeyWithinWindow([]int{1, 0, 2}, 2) {
		t.Error("top-2 positions {1,0} are within window 2")
	}
	if KeyWithinWindow([]int{2, 0, 1}, 2) {
		t.Error("position 2 in window 2 should fail")
	}
	if !KeyWithinWindow([]int{2, 0, 1}, 0) {
		t.Error("window 0 means full length, any permutation matches")
	}
}

// Property: Add is commutative and Sub undoes Add.
func TestQuickAddSubProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		// Map arbitrary floats into a bounded range so the property is not
		// defeated by overflow or catastrophic cancellation.
		bound := func(xs [4]float64) Vec {
			v := New(4)
			for i, x := range xs {
				v[i] = math.Mod(x, 1e6)
				if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
					v[i] = 0
				}
			}
			return v
		}
		v, w := bound(a), bound(b)
		vw, wv := v.Add(w), w.Add(v)
		if !reflect.DeepEqual(vw, wv) {
			return false
		}
		back := vw.Sub(w)
		for i := range back {
			if math.Abs(back[i]-v[i]) > 1e-9*(1+math.Abs(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Rank returns a permutation and orders values monotonically.
func TestQuickRankIsMonotonePermutation(t *testing.T) {
	f := func(a [5]float64) bool {
		v := Of(a[:]...)
		p := Rank(v, true)
		seen := make(map[int]bool)
		for _, d := range p {
			if d < 0 || d >= len(v) || seen[d] {
				return false
			}
			seen[d] = true
		}
		for i := 1; i < len(p); i++ {
			if v[p[i-1]] < v[p[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PermutationKey is a permutation of 0..D-1 and the key of the bin
// ranking against itself is the identity.
func TestQuickPermutationKeyValid(t *testing.T) {
	f := func(a, b [4]float64) bool {
		br := Rank(Of(a[:]...), true)
		ir := Rank(Of(b[:]...), true)
		key := PermutationKey(br, ir)
		seen := make(map[int]bool)
		for _, k := range key {
			if k < 0 || k >= len(key) || seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
