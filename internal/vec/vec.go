// Package vec provides the small dense-vector arithmetic used throughout the
// resource-allocation library. A Vec holds one value per resource dimension
// (CPU, memory, ...). The package also implements the scalarization metrics
// that the paper's vector-packing heuristics use to order items and bins
// (MAX, SUM, MAXRATIO, MAXDIFFERENCE, LEX) and the dimension-permutation
// ranking used by Permutation-Pack.
package vec

import (
	"fmt"
	"math"
	"strings"
)

// Vec is a vector with one non-negative entry per resource dimension.
type Vec []float64

// New returns a zero vector with d dimensions.
func New(d int) Vec { return make(Vec, d) }

// Of returns a vector holding the given values.
func Of(vals ...float64) Vec {
	v := make(Vec, len(vals))
	copy(v, vals)
	return v
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Dim returns the number of dimensions.
func (v Vec) Dim() int { return len(v) }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	mustMatch(v, w)
	r := make(Vec, len(v))
	for i := range v {
		r[i] = v[i] + w[i]
	}
	return r
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	mustMatch(v, w)
	r := make(Vec, len(v))
	for i := range v {
		r[i] = v[i] - w[i]
	}
	return r
}

// Scale returns v * s.
func (v Vec) Scale(s float64) Vec {
	r := make(Vec, len(v))
	for i := range v {
		r[i] = v[i] * s
	}
	return r
}

// AddScaled returns v + s*w without allocating intermediate vectors.
func (v Vec) AddScaled(s float64, w Vec) Vec {
	mustMatch(v, w)
	r := make(Vec, len(v))
	for i := range v {
		r[i] = v[i] + s*w[i]
	}
	return r
}

// AccumAdd adds w to v in place.
func (v Vec) AccumAdd(w Vec) {
	mustMatch(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// Zero clears v in place.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// AccumSub subtracts w from v in place.
func (v Vec) AccumSub(w Vec) {
	mustMatch(v, w)
	for i := range v {
		v[i] -= w[i]
	}
}

// LessEq reports whether v <= w component-wise within tolerance eps
// (v[i] <= w[i] + eps for every i).
func (v Vec) LessEq(w Vec, eps float64) bool {
	mustMatch(v, w)
	for i := range v {
		if v[i] > w[i]+eps {
			return false
		}
	}
	return true
}

// AddFitsWithin reports whether load + add <= cap + eps in every dimension,
// without materializing the sum. It is the single authoritative kernel
// behind every packing/greedy fit check: the per-dimension expression
// load[d]+add[d] > cap[d]+eps matches the allocating
// load.Add(add).LessEq(cap, eps) formulation bit-for-bit.
func AddFitsWithin(load, add, cap Vec, eps float64) bool {
	for d := range load {
		if load[d]+add[d] > cap[d]+eps {
			return false
		}
	}
	return true
}

// SumDiff returns sum_d (a[d] - b[d]), accumulating per dimension in index
// order so the result is bit-identical to a.Sub(b).Sum() without the
// intermediate vector.
func SumDiff(a, b Vec) float64 {
	s := 0.0
	for d := range b {
		s += a[d] - b[d]
	}
	return s
}

// Max returns the largest component. Max of the empty vector is 0.
func (v Vec) Max() float64 {
	m := 0.0
	for i, x := range v {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest component. Min of the empty vector is 0.
func (v Vec) Min() float64 {
	m := 0.0
	for i, x := range v {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of all components.
func (v Vec) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// IsZero reports whether every component is exactly zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 { //vmalloc:nondet-ok IsZero is an exact structural-zero predicate by contract
			return false
		}
	}
	return true
}

// String renders the vector as "[a b c]" with compact formatting.
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4g", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func mustMatch(v, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// Metric is a scalarization of a vector, used to sort items and bins in the
// vector-packing heuristics (paper §3.5). LEX does not map to a scalar; it is
// handled specially by Compare.
type Metric int

const (
	// MetricMax is the size of the maximum dimension.
	MetricMax Metric = iota
	// MetricSum is the sum of all dimensions.
	MetricSum
	// MetricMaxRatio is the ratio of maximum to minimum dimension.
	MetricMaxRatio
	// MetricMaxDifference is the difference between maximum and minimum
	// dimensions.
	MetricMaxDifference
	// MetricLex orders vectors lexicographically (dimension 0 first). It has
	// no scalar value; Scalar panics for it.
	MetricLex
)

// metricNames indexes Metric names for String and ParseMetric.
var metricNames = [...]string{"MAX", "SUM", "MAXRATIO", "MAXDIFFERENCE", "LEX"}

// String returns the paper's name for the metric.
func (m Metric) String() string {
	if m < 0 || int(m) >= len(metricNames) {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricNames[m]
}

// ParseMetric converts a metric name (as printed by String) to a Metric.
func ParseMetric(s string) (Metric, error) {
	for i, n := range metricNames {
		if strings.EqualFold(s, n) {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("vec: unknown metric %q", s)
}

// Scalar returns the scalar value of v under metric m. It panics for
// MetricLex, which has no scalar form.
func (m Metric) Scalar(v Vec) float64 {
	switch m {
	case MetricMax:
		return v.Max()
	case MetricSum:
		return v.Sum()
	case MetricMaxRatio:
		mn := v.Min()
		if mn == 0 { //vmalloc:nondet-ok exact-zero capacity sentinel distinguishing 0/0 from division by zero
			if v.Max() == 0 { //vmalloc:nondet-ok exact-zero capacity sentinel distinguishing 0/0 from division by zero
				return 1 // 0/0: treat the zero vector as perfectly balanced
			}
			return math.Inf(1)
		}
		return v.Max() / mn
	case MetricMaxDifference:
		return v.Max() - v.Min()
	case MetricLex:
		panic("vec: MetricLex has no scalar value")
	default:
		panic(fmt.Sprintf("vec: unknown metric %d", int(m)))
	}
}

// Compare orders v against w under metric m, returning a negative number if
// v sorts before w in ascending order, 0 if tied, positive otherwise.
func (m Metric) Compare(v, w Vec) int {
	if m == MetricLex {
		mustMatch(v, w)
		for i := range v {
			switch {
			case v[i] < w[i]:
				return -1
			case v[i] > w[i]:
				return 1
			}
		}
		return 0
	}
	a, b := m.Scalar(v), m.Scalar(w)
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Metrics lists every metric in the order used by the paper's strategy
// enumerations.
func Metrics() []Metric {
	return []Metric{MetricMax, MetricSum, MetricMaxRatio, MetricMaxDifference, MetricLex}
}

// Rank returns the permutation of dimension indices that sorts v in the given
// direction; descending=true yields the dimensions from largest to smallest
// value. Ties are broken by dimension index so that the result is
// deterministic. The returned slice p satisfies: p[0] is the index of the
// largest (or smallest) component.
func Rank(v Vec, descending bool) []int {
	return RankInto(make([]int, len(v)), v, descending)
}

// RankInto is Rank writing the permutation into p (which must have len(v)
// entries) instead of allocating. It runs once per bin iteration inside the
// Permutation-Pack selection loop, so it uses a stable insertion sort over
// the handful of resource dimensions: zero allocations (sort.SliceStable's
// reflection swapper allocates) and the exact same permutation, since stable
// sorts under one ordering agree.
func RankInto(p []int, v Vec, descending bool) []int {
	if len(p) != len(v) {
		panic(fmt.Sprintf("vec: rank buffer has %d entries, want %d", len(p), len(v)))
	}
	for i := range p {
		p[i] = i
	}
	for i := 1; i < len(p); i++ {
		x := p[i]
		j := i - 1
		for j >= 0 {
			before := v[x] < v[p[j]]
			if descending {
				before = v[x] > v[p[j]]
			}
			if !before {
				break
			}
			p[j+1] = p[j]
			j--
		}
		p[j+1] = x
	}
	return p
}

// PermutationKey maps an item's dimension ranking into the permutation space
// defined by a bin's dimension ranking, as in the paper's improved
// Permutation-Pack implementation (§3.5.2): key[i] = position of the item's
// i-th ranked dimension within the bin's ranking. An item perfectly matched
// to the bin has key (0, 1, 2, ...).
func PermutationKey(binRank, itemRank []int) []int {
	pos := make([]int, len(binRank))
	key := make([]int, len(itemRank))
	return PermutationKeyInto(key, pos, binRank, itemRank)
}

// PermutationKeyInto is PermutationKey writing into key, with pos as scratch
// (both must have the rank length); the selection loops of Permutation-Pack
// call it once per candidate item, so it must not allocate. When the same
// binRank is reused across items, RankPositionsInto lets callers hoist the
// pos computation out of the item loop.
func PermutationKeyInto(key, pos, binRank, itemRank []int) []int {
	if len(binRank) != len(itemRank) {
		panic("vec: permutation rank length mismatch")
	}
	RankPositionsInto(pos, binRank)
	for i, d := range itemRank {
		key[i] = pos[d]
	}
	return key
}

// RankPositionsInto inverts a rank permutation: pos[d] = position of
// dimension d within rank.
func RankPositionsInto(pos, rank []int) {
	for i, d := range rank {
		pos[d] = i
	}
}

// CompareKeys compares two permutation keys lexicographically over the first
// w entries (the "window"). If w <= 0 or exceeds the key length, the whole
// key is compared.
func CompareKeys(a, b []int, w int) int {
	n := len(a)
	if w > 0 && w < n {
		n = w
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// KeyWithinWindow reports whether two permutation keys agree as *sets* over
// the first w positions, the relaxation used by Choose-Pack: the item's top-w
// dimensions land inside the bin's top-w positions, ignoring order.
func KeyWithinWindow(key []int, w int) bool {
	if w <= 0 || w >= len(key) {
		w = len(key)
	}
	for i := 0; i < w; i++ {
		if key[i] >= w {
			return false
		}
	}
	return true
}
