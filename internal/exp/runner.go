package exp

import (
	"runtime"
	"sync"
	"time"

	"vmalloc/internal/workload"
)

// Outcome is one algorithm's result on one instance.
type Outcome struct {
	Solved   bool
	MinYield float64
	Elapsed  time.Duration
	// Allocs and AllocBytes are the heap allocation deltas (object count and
	// bytes) observed across the algorithm's run via runtime.MemStats, so
	// allocation regressions in the hot paths show up in sweeps alongside
	// wall-clock. The counters are process-global: under a parallel sweep,
	// sibling workers' allocations bleed into each other's deltas, so treat
	// the numbers as indicative per-run magnitudes, not exact counts (run
	// with Workers: 1 for exact ones).
	Allocs     uint64
	AllocBytes uint64
}

// ResultSet holds a full sweep: one Outcome per (algorithm, scenario).
type ResultSet struct {
	Scenarios []workload.Scenario
	Algos     []string
	// ByAlgo[name][i] is the outcome of algorithm name on Scenarios[i].
	ByAlgo map[string][]Outcome
}

// Runner executes sweeps with a bounded worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// DisableAllocStats skips the runtime.MemStats reads around each
	// algorithm run. Each read is a brief stop-the-world pause; in a
	// parallel sweep those pauses land inside sibling workers' Elapsed
	// windows, so disable the reads when timing fidelity matters more than
	// allocation visibility.
	DisableAllocStats bool
}

// Run generates each scenario's instance and runs every algorithm on it.
// Scenarios are processed in parallel; all algorithms for one scenario run
// on the same worker so per-algorithm timing is not perturbed by sibling
// goroutines of the same instance.
func (r *Runner) Run(scns []workload.Scenario, algos []Algo) *ResultSet {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rs := &ResultSet{Scenarios: scns, ByAlgo: map[string][]Outcome{}}
	for _, a := range algos {
		rs.Algos = append(rs.Algos, a.Name)
		rs.ByAlgo[a.Name] = make([]Outcome, len(scns))
	}

	type task struct{ i int }
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var before, after runtime.MemStats
			for t := range ch {
				p := workload.Generate(scns[t.i])
				for _, a := range algos {
					if !r.DisableAllocStats {
						runtime.ReadMemStats(&before)
					}
					start := time.Now()
					res := a.Run(p)
					el := time.Since(start)
					out := Outcome{
						Solved:   res.Solved,
						MinYield: res.MinYield,
						Elapsed:  el,
					}
					if !r.DisableAllocStats {
						runtime.ReadMemStats(&after)
						out.Allocs = after.Mallocs - before.Mallocs
						out.AllocBytes = after.TotalAlloc - before.TotalAlloc
					}
					rs.ByAlgo[a.Name][t.i] = out
				}
			}
		}()
	}
	for i := range scns {
		ch <- task{i}
	}
	close(ch)
	wg.Wait()
	return rs
}

// GridSpec describes a scenario sweep in the style of §4: a cross product of
// service counts, COV values, slack values and seeds at a fixed host count.
type GridSpec struct {
	Hosts    int
	Services []int
	COVs     []float64
	Slacks   []float64
	Seeds    []int64
	Mode     workload.HeterogeneityMode
}

// Scenarios expands the grid into scenario values.
func (g GridSpec) Scenarios() []workload.Scenario {
	var out []workload.Scenario
	for _, j := range g.Services {
		for _, cov := range g.COVs {
			for _, slack := range g.Slacks {
				for _, seed := range g.Seeds {
					out = append(out, workload.Scenario{
						Hosts: g.Hosts, Services: j, COV: cov, Slack: slack,
						Mode: g.Mode, Seed: seed,
					})
				}
			}
		}
	}
	return out
}

// Filter returns the subset of a result set whose scenario satisfies keep,
// preserving algorithm order.
func (rs *ResultSet) Filter(keep func(workload.Scenario) bool) *ResultSet {
	out := &ResultSet{Algos: rs.Algos, ByAlgo: map[string][]Outcome{}}
	var idx []int
	for i, s := range rs.Scenarios {
		if keep(s) {
			idx = append(idx, i)
			out.Scenarios = append(out.Scenarios, s)
		}
	}
	for name, outs := range rs.ByAlgo {
		sel := make([]Outcome, len(idx))
		for k, i := range idx {
			sel[k] = outs[i]
		}
		out.ByAlgo[name] = sel
	}
	return out
}
