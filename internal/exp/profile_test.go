package exp

import (
	"strings"
	"testing"

	"vmalloc/internal/workload"
)

func profileScenarios() []workload.Scenario {
	return []workload.Scenario{
		{Hosts: 6, Services: 18, COV: 0.6, Slack: 0.4, Seed: 1},
		{Hosts: 6, Services: 18, COV: 0.6, Slack: 0.4, Seed: 2},
		{Hosts: 6, Services: 18, COV: 0.2, Slack: 0.6, Seed: 3},
	}
}

func TestProfileStrategiesShapeAndOrdering(t *testing.T) {
	stats := ProfileStrategies(profileScenarios(), 1e-2, 0)
	if len(stats) != 253 {
		t.Fatalf("|stats| = %d, want 253", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		a, b := &stats[i-1], &stats[i]
		if a.Solved < b.Solved {
			t.Fatalf("ranking broken at %d: %d < %d solved", i, a.Solved, b.Solved)
		}
		if a.Solved == b.Solved && a.MeanYield < b.MeanYield-1e-12 {
			t.Fatalf("yield tiebreak broken at %d", i)
		}
	}
	for _, s := range stats {
		if s.Solved > s.Instances {
			t.Fatalf("solved %d > instances %d", s.Solved, s.Instances)
		}
		if s.SuccessRate() < 0 || s.SuccessRate() > 1 {
			t.Fatalf("rate %v", s.SuccessRate())
		}
	}
}

func TestRenderProfileAndLightCoverage(t *testing.T) {
	stats := ProfileStrategies(profileScenarios(), 1e-2, 4)
	out := RenderProfile(stats, 10)
	if !strings.Contains(out, "rank") || !strings.Contains(out, "HVP-") {
		t.Fatalf("render:\n%s", out)
	}
	cov := LightCoverage(stats, 50)
	if cov < 0 || cov > 1 {
		t.Fatalf("coverage = %v", cov)
	}
	// The LIGHT subset was engineered from exactly this ranking; on a small
	// sweep it should still capture a substantial share of the top 50.
	if cov < 0.2 {
		t.Fatalf("LIGHT covers only %.0f%% of the top 50 strategies", cov*100)
	}
}
