package exp

import (
	"strings"
	"testing"
)

func TestShardedSpecRuns(t *testing.T) {
	spec := ShardedSpec{
		Hosts: 8, COV: 0.4,
		Shards:           []int{1, 2},
		ArrivalsPerEpoch: 4,
		Epochs:           8,
		Seeds:            []int64{1},
	}
	rows, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.MeanServices <= 0 {
			t.Fatalf("K=%d saw no services", r.Shards)
		}
		if r.MeanMinYield <= 0 || r.MeanMinYield > 1 {
			t.Fatalf("K=%d mean min yield %v out of range", r.Shards, r.MeanMinYield)
		}
	}
	table := ShardedTable(rows)
	if !strings.Contains(table, "rebal/epoch") || len(strings.Split(strings.TrimSpace(table), "\n")) != 3 {
		t.Fatalf("unexpected table:\n%s", table)
	}
	// Same spec, same rows: the sweep is deterministic.
	again, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		a, b := rows[i], again[i]
		a.EpochMillis, b.EpochMillis = 0, 0 // wall time legitimately varies
		if a != b {
			t.Fatalf("row %d not reproducible: %+v vs %+v", i, a, b)
		}
	}
}
