package exp

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"vmalloc/internal/workload"
)

// Table1 renders the §5 pairwise comparison matrix for the given algorithm
// names: cell (row A, column B) holds (Y_{A,B}%, S_{A,B}%), positive values
// favoring A.
func (rs *ResultSet) Table1(names []string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "A/B")
	for _, b := range names {
		fmt.Fprintf(w, "\t%s", b)
	}
	fmt.Fprintln(w)
	for _, a := range names {
		fmt.Fprintf(w, "%s", a)
		for _, b := range names {
			if a == b {
				fmt.Fprintf(w, "\t—")
				continue
			}
			pw := rs.ComparePair(a, b)
			fmt.Fprintf(w, "\t(%+.1f%%, %+.1f%%)", pw.YAB, pw.SAB)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String()
}

// Table2 renders average run times per algorithm, one column per service
// count present in the result set (the layout of paper Table 2).
func (rs *ResultSet) Table2(names []string) string {
	var sizes []int
	seen := map[int]bool{}
	for _, s := range rs.Scenarios {
		if !seen[s.Services] {
			seen[s.Services] = true
			sizes = append(sizes, s.Services)
		}
	}
	sort.Ints(sizes)

	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm")
	for _, n := range sizes {
		fmt.Fprintf(w, "\t%d tasks", n)
	}
	fmt.Fprintln(w)
	for _, a := range names {
		fmt.Fprintf(w, "%s", a)
		for _, n := range sizes {
			sub := rs.Filter(func(s workload.Scenario) bool { return s.Services == n })
			fmt.Fprintf(w, "\t%.3fs", sub.MeanRuntime(a).Seconds())
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String()
}

// FigureYieldVsCOV renders the Figures 2–4 series: per COV value, the mean
// minimum-yield difference of each algorithm from the reference (METAHVP).
func (rs *ResultSet) FigureYieldVsCOV(names []string, ref string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "cov")
	for _, a := range names {
		fmt.Fprintf(w, "\t%s-%s", a, ref)
	}
	fmt.Fprintln(w)
	// Collect the union of COV values.
	covSet := map[float64]bool{}
	for _, s := range rs.Scenarios {
		covSet[s.COV] = true
	}
	var covs []float64
	for c := range covSet {
		covs = append(covs, c)
	}
	sort.Float64s(covs)

	series := map[string]map[float64]float64{}
	for _, a := range names {
		cs, ds := rs.YieldDifferenceSeries(a, ref)
		m := map[float64]float64{}
		for i := range cs {
			m[cs[i]] = ds[i]
		}
		series[a] = m
	}
	for _, c := range covs {
		fmt.Fprintf(w, "%.3f", c)
		for _, a := range names {
			if d, ok := series[a][c]; ok {
				fmt.Fprintf(w, "\t%+.4f", d)
			} else {
				fmt.Fprintf(w, "\t-")
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String()
}

// FigureErrorCurves renders the Figures 5–7 series: per max-error value, the
// average achieved minimum yield of each policy/threshold curve.
func FigureErrorCurves(curves []ErrorCurves, thresholds []float64) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "maxerr\tideal\tzero-knowledge\tcaps")
	for _, th := range thresholds {
		fmt.Fprintf(w, "\tweight(min=%.2f)\tequal(min=%.2f)", th, th)
	}
	fmt.Fprintln(w)
	for _, c := range curves {
		fmt.Fprintf(w, "%.3f\t%.4f\t%.4f\t%.4f", c.MaxErr, c.Ideal, c.ZeroKnowledge, c.Caps)
		for _, th := range thresholds {
			fmt.Fprintf(w, "\t%.4f\t%.4f", c.Weight[th], c.Equal[th])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String()
}

// SuccessSummary renders success rate and mean yield per algorithm.
func (rs *ResultSet) SuccessSummary(names []string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Algorithm\tsolved\tmean min yield\tmean runtime")
	for _, a := range names {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.4f\t%.3fs\n",
			a, rs.SuccessRate(a)*100, rs.MeanYield(a), rs.MeanRuntime(a).Seconds())
	}
	w.Flush()
	return sb.String()
}
