package exp

import (
	"math/rand"
	"runtime"
	"sync"

	"vmalloc/internal/core"
	"vmalloc/internal/sched"
	"vmalloc/internal/workload"
)

// ErrorCurves are the figure-5/6/7 series at one maximum-error value,
// averaged over the instances whose placement succeeded: the
// perfect-knowledge yield ("ideal"), the zero-knowledge baseline, and the
// ALLOCWEIGHTS/EQUALWEIGHTS yields for each mitigation threshold.
type ErrorCurves struct {
	MaxErr        float64
	Ideal         float64
	ZeroKnowledge float64
	// Weight[t] / Equal[t] hold the average minimum achieved yield when
	// estimates are first rounded up to threshold t.
	Weight map[float64]float64
	Equal  map[float64]float64
	// Caps is ALLOCCAPS without mitigation, reproducing the §6.2 claim that
	// hard caps collapse under error.
	Caps float64
	// Instances is the number of scenarios contributing to the averages.
	Instances int
}

// ErrorExperiment configures a §6.2 sweep.
type ErrorExperiment struct {
	Scenarios  []workload.Scenario
	MaxErrors  []float64
	Thresholds []float64
	// Placer computes placements from (possibly perturbed) estimates; the
	// paper uses METAHVP. The default is METAHVPLIGHT for speed.
	Placer Algo
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// SeedSalt decorrelates the perturbation stream from the instance seed.
	SeedSalt int64
}

// Run executes the sweep and returns one ErrorCurves per max-error value.
func (e *ErrorExperiment) Run() []ErrorCurves {
	placer := e.Placer
	if placer.Run == nil {
		placer = MetaHVPLightAlgo(0)
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type cell struct {
		ideal, zero, caps float64
		weight, equal     map[float64]float64
		ok                bool
	}
	cells := make([][]cell, len(e.MaxErrors)) // [errIdx][scnIdx]
	for i := range cells {
		cells[i] = make([]cell, len(e.Scenarios))
	}

	type task struct{ ei, si int }
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				cells[t.ei][t.si] = e.runOne(placer, e.MaxErrors[t.ei], e.Scenarios[t.si])
			}
		}()
	}
	for ei := range e.MaxErrors {
		for si := range e.Scenarios {
			ch <- task{ei, si}
		}
	}
	close(ch)
	wg.Wait()

	out := make([]ErrorCurves, len(e.MaxErrors))
	for ei, maxErr := range e.MaxErrors {
		c := ErrorCurves{MaxErr: maxErr, Weight: map[float64]float64{}, Equal: map[float64]float64{}}
		for _, th := range e.Thresholds {
			c.Weight[th] = 0
			c.Equal[th] = 0
		}
		for _, cl := range cells[ei] {
			if !cl.ok {
				continue
			}
			c.Instances++
			c.Ideal += cl.ideal
			c.ZeroKnowledge += cl.zero
			c.Caps += cl.caps
			for _, th := range e.Thresholds {
				c.Weight[th] += cl.weight[th]
				c.Equal[th] += cl.equal[th]
			}
		}
		if c.Instances > 0 {
			n := float64(c.Instances)
			c.Ideal /= n
			c.ZeroKnowledge /= n
			c.Caps /= n
			for _, th := range e.Thresholds {
				c.Weight[th] /= n
				c.Equal[th] /= n
			}
		}
		out[ei] = c
	}
	return out
}

// runOne evaluates one (scenario, maxErr) cell.
func (e *ErrorExperiment) runOne(placer Algo, maxErr float64, scn workload.Scenario) (c struct {
	ideal, zero, caps float64
	weight, equal     map[float64]float64
	ok                bool
}) {
	trueP := workload.Generate(scn)
	c.weight = map[float64]float64{}
	c.equal = map[float64]float64{}

	// Perfect knowledge: place and cap with the true needs.
	idealRes := placer.Run(trueP)
	if !idealRes.Solved {
		return c // skip instances the placer cannot solve even without error
	}
	c.ideal = idealRes.MinYield

	// Zero knowledge: spread evenly, equal weights.
	zkPl := sched.ZeroKnowledgePlacement(trueP)
	if zkPl.Complete() {
		c.zero = sched.EvaluatePlacement(trueP, trueP, zkPl, sched.EqualWeights, workload.CPU)
	}

	rng := rand.New(rand.NewSource(scn.Seed ^ e.SeedSalt ^ int64(maxErr*1e6)))
	est := workload.PerturbCPUNeeds(trueP, maxErr, rng)

	// Unmitigated hard caps.
	if res := placer.Run(est); res.Solved {
		c.caps = sched.EvaluatePlacement(trueP, est, res.Placement, sched.AllocCaps, workload.CPU)
	}

	for _, th := range e.Thresholds {
		estT := est
		if th > 0 {
			estT = sched.ApplyThreshold(est, workload.CPU, th)
		}
		res := placer.Run(estT)
		if !res.Solved {
			// Mitigated placement failed: record zero yields for this
			// threshold (the allocation attempt failed outright).
			c.weight[th] = 0
			c.equal[th] = 0
			continue
		}
		c.weight[th] = sched.EvaluatePlacement(trueP, estT, res.Placement, sched.AllocWeights, workload.CPU)
		c.equal[th] = sched.EvaluatePlacement(trueP, estT, res.Placement, sched.EqualWeights, workload.CPU)
	}
	c.ok = true
	return c
}

// IdealMinYield runs the placer on the true problem and returns the
// perfect-knowledge minimum yield, a convenience for tests.
func IdealMinYield(placer Algo, p *core.Problem) float64 {
	res := placer.Run(p)
	if !res.Solved {
		return -1
	}
	return res.MinYield
}
