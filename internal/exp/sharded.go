package exp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"vmalloc/internal/core"
	"vmalloc/internal/shard"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

// ShardedSpec sweeps the sharded serving tier across shard counts under
// sustained churn: one row per K, averaged over seeds. It is the scaling
// companion of OnlineSpec — where the online table asks "how good does the
// platform stay under churn", this one asks "what do K placement domains
// buy (epoch latency) and cost (partitioned packing, rebalance moves) on
// the same park".
type ShardedSpec struct {
	// Hosts and COV shape the park (HeteroBoth, seeded per run).
	Hosts int
	COV   float64
	// Shards is the K axis (values must satisfy 1 <= K <= Hosts).
	Shards []int
	// ArrivalsPerEpoch is the mean Poisson arrival count between epochs
	// (default 8); MeanLifetime is the mean service lifetime in epochs
	// (exponential, default 10).
	ArrivalsPerEpoch float64
	MeanLifetime     float64
	// Epochs is the horizon (default 40).
	Epochs int
	// RebalanceGap and RebalanceMoves tune the cross-shard rebalance as in
	// shard.Config (0 selects defaults, negative disables).
	RebalanceGap   float64
	RebalanceMoves int
	// Seeds drive the replications (default {1}).
	Seeds []int64
}

// ShardedRow aggregates the runs of one shard count.
type ShardedRow struct {
	Shards int
	// MeanServices is the average live-service count at epoch boundaries.
	MeanServices float64
	// MeanMinYield averages the merged epoch min yield over solved epochs.
	MeanMinYield float64
	// RejectionRate is rejected arrivals over arrivals.
	RejectionRate float64
	// MigrationsPerEpoch counts placement changes per epoch (cross-shard
	// moves included).
	MigrationsPerEpoch float64
	// RebalancePerEpoch counts cross-shard rebalance moves per epoch.
	RebalancePerEpoch float64
	// EpochMillis is the mean wall-clock reallocation latency.
	EpochMillis float64
}

func (spec ShardedSpec) defaults() ShardedSpec {
	if spec.MeanLifetime <= 0 {
		spec.MeanLifetime = 10
	}
	if spec.Epochs <= 0 {
		spec.Epochs = 40
	}
	if spec.ArrivalsPerEpoch <= 0 {
		spec.ArrivalsPerEpoch = 8
	}
	if len(spec.Seeds) == 0 {
		spec.Seeds = []int64{1}
	}
	return spec
}

// shardedChurnService draws a small service with a mildly erroneous
// estimate.
func shardedChurnService(rng *rand.Rand) (trueSvc, estSvc core.Service) {
	req := vec.Of(0.01+0.03*rng.Float64(), 0.02+0.06*rng.Float64())
	need := vec.Of(0.05+0.2*rng.Float64(), 0.02*rng.Float64())
	trueSvc = core.Service{
		ReqElem: req.Clone(), ReqAgg: req.Clone(),
		NeedElem: need.Clone(), NeedAgg: need.Clone(),
	}
	estSvc = trueSvc
	estSvc.NeedAgg = trueSvc.NeedAgg.Scale(1 + 0.2*(rng.Float64()-0.5))
	estSvc.NeedElem = trueSvc.NeedElem.Scale(1 + 0.2*(rng.Float64()-0.5))
	return trueSvc, estSvc
}

// Run executes the sweep, one churn simulation per (K, seed). All draws
// come from per-run seeded RNGs, so rows are reproducible.
func (spec ShardedSpec) Run() ([]ShardedRow, error) {
	spec = spec.defaults()
	rows := make([]ShardedRow, 0, len(spec.Shards))
	for _, k := range spec.Shards {
		row := ShardedRow{Shards: k}
		for _, seed := range spec.Seeds {
			nodes := workload.Platform(workload.Scenario{
				Hosts: spec.Hosts, COV: spec.COV, Mode: workload.HeteroBoth, Seed: seed,
			}, rand.New(rand.NewSource(seed)))
			r, err := shard.New(shard.Config{
				Nodes:  nodes,
				Shards: k,
				Seed:   seed,
				Gap:    spec.RebalanceGap,
				Moves:  spec.RebalanceMoves,
				Now:    time.Now,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: sharded run K=%d seed=%d: %v", k, seed, err)
			}
			rng := rand.New(rand.NewSource(seed * 7919))
			type departure struct {
				id    int
				epoch int
			}
			var pending []departure
			arrivals, rejected, migrations, services := 0, 0, 0, 0
			yieldSum, yieldN := 0.0, 0
			moved := 0
			var epochTime time.Duration
			for e := 0; e < spec.Epochs; e++ {
				// Departures due this epoch.
				keep := pending[:0]
				for _, d := range pending {
					if d.epoch <= e {
						r.Remove(d.id)
					} else {
						keep = append(keep, d)
					}
				}
				pending = keep
				// Poisson arrivals with exponential lifetimes.
				n := poisson(rng, spec.ArrivalsPerEpoch)
				for i := 0; i < n; i++ {
					arrivals++
					trueSvc, estSvc := shardedChurnService(rng)
					id, _, _, ok := r.Add(trueSvc, estSvc)
					if !ok {
						rejected++
						continue
					}
					life := int(math.Ceil(rng.ExpFloat64() * spec.MeanLifetime))
					pending = append(pending, departure{id: id, epoch: e + 1 + life})
				}
				start := time.Now()
				ep := r.Reallocate()
				epochTime += time.Since(start)
				if ep.Result.Solved && len(ep.IDs) > 0 {
					yieldSum += ep.Result.MinYield
					yieldN++
				}
				migrations += ep.Migrations
				moved += ep.RebalanceMoves
				services += r.Len()
			}
			row.MeanServices += float64(services) / float64(spec.Epochs)
			if yieldN > 0 {
				row.MeanMinYield += yieldSum / float64(yieldN)
			}
			if arrivals > 0 {
				row.RejectionRate += float64(rejected) / float64(arrivals)
			}
			row.MigrationsPerEpoch += float64(migrations) / float64(spec.Epochs)
			row.RebalancePerEpoch += float64(moved) / float64(spec.Epochs)
			row.EpochMillis += float64(epochTime.Milliseconds()) / float64(spec.Epochs)
		}
		n := float64(len(spec.Seeds))
		row.MeanServices /= n
		row.MeanMinYield /= n
		row.RejectionRate /= n
		row.MigrationsPerEpoch /= n
		row.RebalancePerEpoch /= n
		row.EpochMillis /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// poisson draws a Poisson variate by Knuth's product method (mean rates
// here are small).
func poisson(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// ShardedTable renders the shard-count sweep: yield, churn response and
// epoch latency against K.
func ShardedTable(rows []ShardedRow) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shards\tservices\tmin yield\trejected\tmigr/epoch\trebal/epoch\tepoch ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.4f\t%.1f%%\t%.1f\t%.2f\t%.1f\n",
			r.Shards, r.MeanServices, r.MeanMinYield,
			r.RejectionRate*100, r.MigrationsPerEpoch, r.RebalancePerEpoch, r.EpochMillis)
	}
	w.Flush()
	return sb.String()
}
