package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"vmalloc/internal/platform"
	"vmalloc/internal/workload"
)

// OnlineSpec sweeps the §8 online hosting platform (the persistent
// allocation engine driven by the discrete-event simulator) across churn
// levels: one row per arrival rate, averaged over seeds. It is the online
// counterpart of GridSpec — where the offline tables ask "how good is a
// placement", this table asks "how good does the platform stay under
// sustained arrivals and departures".
type OnlineSpec struct {
	// Hosts and COV shape the platform (HeteroBoth, seeded per run).
	Hosts int
	COV   float64
	// Rates is the churn axis: mean service arrivals per time unit.
	Rates []float64
	// MeanLifetime, Horizon and Epoch parameterize the simulation
	// (defaults: 10, 100, 5).
	MeanLifetime float64
	Horizon      float64
	Epoch        float64
	// MaxErr and Threshold configure the §6 estimate-error model
	// (Threshold may be platform.AdaptiveThreshold).
	MaxErr    float64
	Threshold float64
	// UseRepair switches epochs to migration-bounded repair with
	// MigrationBudget.
	UseRepair       bool
	MigrationBudget int
	// Parallel enables the engine's deterministic parallel meta.
	Parallel bool
	// Seeds drive the per-rate replications.
	Seeds []int64
}

// OnlineRow aggregates the runs of one arrival rate.
type OnlineRow struct {
	Rate float64
	// MeanServices is the average live-service count over epoch samples.
	MeanServices float64
	// MeanMinYield averages the sampled minimum yield over solved epochs.
	MeanMinYield float64
	// RejectionRate is rejected arrivals over arrivals.
	RejectionRate float64
	// MigrationsPerEpoch is the average migration count per reallocation.
	MigrationsPerEpoch float64
	// FailedEpochRate is the fraction of reallocations the placer lost.
	FailedEpochRate float64
}

func (spec OnlineSpec) defaults() OnlineSpec {
	if spec.MeanLifetime <= 0 {
		spec.MeanLifetime = 10
	}
	if spec.Horizon <= 0 {
		spec.Horizon = 100
	}
	if spec.Epoch <= 0 {
		spec.Epoch = 5
	}
	if len(spec.Seeds) == 0 {
		spec.Seeds = []int64{1}
	}
	return spec
}

// Run executes the sweep, one simulation per (rate, seed).
func (spec OnlineSpec) Run() ([]OnlineRow, error) {
	spec = spec.defaults()
	rows := make([]OnlineRow, 0, len(spec.Rates))
	for _, rate := range spec.Rates {
		row := OnlineRow{Rate: rate}
		for _, seed := range spec.Seeds {
			nodes := workload.Platform(workload.Scenario{
				Hosts: spec.Hosts, COV: spec.COV, Mode: workload.HeteroBoth, Seed: seed,
			}, rand.New(rand.NewSource(seed)))
			st, err := platform.Run(platform.Config{
				Nodes:           nodes,
				ArrivalRate:     rate,
				MeanLifetime:    spec.MeanLifetime,
				Horizon:         spec.Horizon,
				Epoch:           spec.Epoch,
				MaxErr:          spec.MaxErr,
				Threshold:       spec.Threshold,
				UseRepair:       spec.UseRepair,
				MigrationBudget: spec.MigrationBudget,
				Parallel:        spec.Parallel,
				Seed:            seed,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: online run rate=%v seed=%d: %v", rate, seed, err)
			}
			services := 0
			for _, s := range st.Samples {
				services += s.Services
			}
			if n := len(st.Samples); n > 0 {
				row.MeanServices += float64(services) / float64(n)
			}
			row.MeanMinYield += st.MeanMinYield()
			row.RejectionRate += st.RejectionRate()
			if st.Reallocs > 0 {
				row.MigrationsPerEpoch += float64(st.Migrations) / float64(st.Reallocs)
				row.FailedEpochRate += float64(st.FailedEpoch) / float64(st.Reallocs)
			}
		}
		n := float64(len(spec.Seeds))
		row.MeanServices /= n
		row.MeanMinYield /= n
		row.RejectionRate /= n
		row.MigrationsPerEpoch /= n
		row.FailedEpochRate /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// OnlineTable renders the churn sweep: steady-state yield, migration load
// and rejection rate against arrival rate.
func OnlineTable(rows []OnlineRow) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rate\tservices\tmin yield\trejected\tmigr/epoch\tfailed epochs")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%.1f\t%.4f\t%.1f%%\t%.1f\t%.1f%%\n",
			r.Rate, r.MeanServices, r.MeanMinYield,
			r.RejectionRate*100, r.MigrationsPerEpoch, r.FailedEpochRate*100)
	}
	w.Flush()
	return sb.String()
}
