// Package exp is the experiment harness: it runs the paper's algorithm
// roster over generated instance sweeps in parallel, computes the pairwise
// comparison metrics of §5, and renders the tables and figure series of
// §5–§6.
package exp

import (
	"math/rand"
	"sync"

	"vmalloc/internal/core"
	"vmalloc/internal/greedy"
	"vmalloc/internal/hvp"
	"vmalloc/internal/lp"
	"vmalloc/internal/relax"
	"vmalloc/internal/vp"
)

// Algo is a named allocation algorithm.
type Algo struct {
	Name string
	Run  func(p *core.Problem) *core.Result
}

// Canonical algorithm names used across tables.
const (
	NameRRND         = "RRND"
	NameRRNZ         = "RRNZ"
	NameMetaGreedy   = "METAGREEDY"
	NameMetaVP       = "METAVP"
	NameMetaHVP      = "METAHVP"
	NameMetaHVPLight = "METAHVPLIGHT"
)

// RoundingAttempts is how many rounding trials RRND/RRNZ get per instance.
const RoundingAttempts = 20

// MetaGreedyAlgo returns the METAGREEDY roster entry.
func MetaGreedyAlgo() Algo {
	return Algo{Name: NameMetaGreedy, Run: func(p *core.Problem) *core.Result {
		return greedy.MetaGreedy(p, false)
	}}
}

// MetaVPAlgo returns the METAVP roster entry with the given binary-search
// tolerance (<= 0 for the paper default).
func MetaVPAlgo(tol float64) Algo {
	return Algo{Name: NameMetaVP, Run: func(p *core.Problem) *core.Result {
		return vp.MetaVP(p, tol)
	}}
}

// MetaHVPAlgo returns the METAHVP roster entry.
func MetaHVPAlgo(tol float64) Algo {
	return Algo{Name: NameMetaHVP, Run: func(p *core.Problem) *core.Result {
		return hvp.MetaHVP(p, tol)
	}}
}

// MetaHVPLightAlgo returns the METAHVPLIGHT roster entry.
func MetaHVPLightAlgo(tol float64) Algo {
	return Algo{Name: NameMetaHVPLight, Run: func(p *core.Problem) *core.Result {
		return hvp.MetaHVPLight(p, tol)
	}}
}

// RRNDAlgo returns the RRND roster entry. Each run solves the rational
// relaxation with the internal simplex and rounds seed-deterministically.
func RRNDAlgo(seed int64) Algo {
	return Algo{Name: NameRRND, Run: func(p *core.Problem) *core.Result {
		rel, err := relax.SolveRelaxed(p)
		if err != nil {
			return &core.Result{}
		}
		return relax.RRND(p, rel, RoundingAttempts, rand.New(rand.NewSource(seed)))
	}}
}

// RRNZAlgo returns the RRNZ roster entry.
func RRNZAlgo(seed int64) Algo {
	return Algo{Name: NameRRNZ, Run: func(p *core.Problem) *core.Result {
		rel, err := relax.SolveRelaxed(p)
		if err != nil {
			return &core.Result{}
		}
		return relax.RRNZ(p, rel, RoundingAttempts, rand.New(rand.NewSource(seed)))
	}}
}

// basisCache hands the optimal simplex basis of one algorithm's relaxation
// solve to the next algorithm running on the same instance. Entries are
// removed when taken, so the cache stays bounded by the number of in-flight
// instances.
type basisCache struct {
	mu    sync.Mutex
	basis map[*core.Problem]*lp.Basis
}

func (c *basisCache) put(p *core.Problem, b *lp.Basis) {
	if b == nil {
		return
	}
	c.mu.Lock()
	c.basis[p] = b
	c.mu.Unlock()
}

func (c *basisCache) take(p *core.Problem) *lp.Basis {
	c.mu.Lock()
	b := c.basis[p]
	delete(c.basis, p)
	c.mu.Unlock()
	return b
}

// LPRoster returns the RRND and RRNZ roster entries sharing a warm-start
// cache: both round the same rational relaxation, so the RRNZ entry
// re-solves each instance warm-started from the basis RRND left behind and
// reconverges in a refactorization instead of two full simplex phases. This
// is the roster the paper-scale LP tier runs.
func LPRoster(seed int64) []Algo {
	cache := &basisCache{basis: map[*core.Problem]*lp.Basis{}}
	rrnd := Algo{Name: NameRRND, Run: func(p *core.Problem) *core.Result {
		rel, err := relax.SolveRelaxed(p)
		if err != nil {
			return &core.Result{}
		}
		cache.put(p, rel.Basis)
		return relax.RRND(p, rel, RoundingAttempts, rand.New(rand.NewSource(seed)))
	}}
	rrnz := Algo{Name: NameRRNZ, Run: func(p *core.Problem) *core.Result {
		rel, err := relax.SolveRelaxedWarm(p, cache.take(p))
		if err != nil {
			return &core.Result{}
		}
		return relax.RRNZ(p, rel, RoundingAttempts, rand.New(rand.NewSource(seed)))
	}}
	return []Algo{rrnd, rrnz}
}

// HeuristicRoster returns the non-LP algorithms of Table 1 (METAGREEDY,
// METAVP, METAHVP) plus METAHVPLIGHT.
func HeuristicRoster(tol float64) []Algo {
	return []Algo{MetaGreedyAlgo(), MetaVPAlgo(tol), MetaHVPAlgo(tol), MetaHVPLightAlgo(tol)}
}

// FullRoster additionally includes the LP-based RRND and RRNZ (sharing the
// LPRoster warm-start cache); with the sparse simplex this runs at the
// paper-scale LP tier, not just reduced sizes.
func FullRoster(tol float64, seed int64) []Algo {
	return append(LPRoster(seed), HeuristicRoster(tol)...)
}
