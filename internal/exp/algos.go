// Package exp is the experiment harness: it runs the paper's algorithm
// roster over generated instance sweeps in parallel, computes the pairwise
// comparison metrics of §5, and renders the tables and figure series of
// §5–§6.
package exp

import (
	"math/rand"

	"vmalloc/internal/core"
	"vmalloc/internal/greedy"
	"vmalloc/internal/hvp"
	"vmalloc/internal/relax"
	"vmalloc/internal/vp"
)

// Algo is a named allocation algorithm.
type Algo struct {
	Name string
	Run  func(p *core.Problem) *core.Result
}

// Canonical algorithm names used across tables.
const (
	NameRRND         = "RRND"
	NameRRNZ         = "RRNZ"
	NameMetaGreedy   = "METAGREEDY"
	NameMetaVP       = "METAVP"
	NameMetaHVP      = "METAHVP"
	NameMetaHVPLight = "METAHVPLIGHT"
)

// RoundingAttempts is how many rounding trials RRND/RRNZ get per instance.
const RoundingAttempts = 20

// MetaGreedyAlgo returns the METAGREEDY roster entry.
func MetaGreedyAlgo() Algo {
	return Algo{Name: NameMetaGreedy, Run: func(p *core.Problem) *core.Result {
		return greedy.MetaGreedy(p, false)
	}}
}

// MetaVPAlgo returns the METAVP roster entry with the given binary-search
// tolerance (<= 0 for the paper default).
func MetaVPAlgo(tol float64) Algo {
	return Algo{Name: NameMetaVP, Run: func(p *core.Problem) *core.Result {
		return vp.MetaVP(p, tol)
	}}
}

// MetaHVPAlgo returns the METAHVP roster entry.
func MetaHVPAlgo(tol float64) Algo {
	return Algo{Name: NameMetaHVP, Run: func(p *core.Problem) *core.Result {
		return hvp.MetaHVP(p, tol)
	}}
}

// MetaHVPLightAlgo returns the METAHVPLIGHT roster entry.
func MetaHVPLightAlgo(tol float64) Algo {
	return Algo{Name: NameMetaHVPLight, Run: func(p *core.Problem) *core.Result {
		return hvp.MetaHVPLight(p, tol)
	}}
}

// RRNDAlgo returns the RRND roster entry. Each run solves the rational
// relaxation with the internal simplex and rounds seed-deterministically.
func RRNDAlgo(seed int64) Algo {
	return Algo{Name: NameRRND, Run: func(p *core.Problem) *core.Result {
		rel, err := relax.SolveRelaxed(p)
		if err != nil {
			return &core.Result{}
		}
		return relax.RRND(p, rel, RoundingAttempts, rand.New(rand.NewSource(seed)))
	}}
}

// RRNZAlgo returns the RRNZ roster entry.
func RRNZAlgo(seed int64) Algo {
	return Algo{Name: NameRRNZ, Run: func(p *core.Problem) *core.Result {
		rel, err := relax.SolveRelaxed(p)
		if err != nil {
			return &core.Result{}
		}
		return relax.RRNZ(p, rel, RoundingAttempts, rand.New(rand.NewSource(seed)))
	}}
}

// HeuristicRoster returns the non-LP algorithms of Table 1 (METAGREEDY,
// METAVP, METAHVP) plus METAHVPLIGHT.
func HeuristicRoster(tol float64) []Algo {
	return []Algo{MetaGreedyAlgo(), MetaVPAlgo(tol), MetaHVPAlgo(tol), MetaHVPLightAlgo(tol)}
}

// FullRoster additionally includes the LP-based RRND and RRNZ; suitable for
// reduced instance sizes where the dense simplex is fast.
func FullRoster(tol float64, seed int64) []Algo {
	return append([]Algo{RRNDAlgo(seed), RRNZAlgo(seed)}, HeuristicRoster(tol)...)
}
