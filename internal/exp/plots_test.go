package exp

import (
	"strings"
	"testing"

	"vmalloc/internal/plot"
	"vmalloc/internal/workload"
)

func TestCOVPlotSeries(t *testing.T) {
	scn := func(cov float64) workload.Scenario { return workload.Scenario{COV: cov} }
	rs := &ResultSet{
		Scenarios: []workload.Scenario{scn(0), scn(1)},
		ByAlgo: map[string][]Outcome{
			"A":   {{Solved: true, MinYield: 0.5}, {Solved: true, MinYield: 0.2}},
			"REF": {{Solved: true, MinYield: 0.6}, {Solved: true, MinYield: 0.5}},
		},
	}
	series := rs.COVPlotSeries([]string{"A"}, "REF")
	if len(series) != 1 || len(series[0].X) != 2 {
		t.Fatalf("series = %+v", series)
	}
	out := plot.Render(series, 40, 8, "cov", "diff")
	if !strings.Contains(out, "A - REF") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestErrorPlotSeries(t *testing.T) {
	curves := []ErrorCurves{
		{MaxErr: 0, Ideal: 0.5, ZeroKnowledge: 0.1, Caps: 0.5,
			Weight: map[float64]float64{0: 0.5}, Equal: map[float64]float64{0: 0.4}},
		{MaxErr: 0.2, Ideal: 0.5, ZeroKnowledge: 0.1, Caps: 0.1,
			Weight: map[float64]float64{0: 0.3}, Equal: map[float64]float64{0: 0.35}},
	}
	series := ErrorPlotSeries(curves, []float64{0})
	// ideal, zero, caps + weight/equal for one threshold = 5 series.
	if len(series) != 5 {
		t.Fatalf("|series| = %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != 2 || len(s.Y) != 2 {
			t.Fatalf("series %s has wrong shape", s.Name)
		}
	}
	out := plot.Render(series, 40, 10, "err", "yield")
	if !strings.Contains(out, "zero-knowledge") {
		t.Fatalf("legend missing:\n%s", out)
	}
}
