package exp

import (
	"fmt"

	"vmalloc/internal/plot"
)

// COVPlotSeries converts the Figures 2–4 data into plottable series: one per
// algorithm, x = COV, y = mean minimum-yield difference from ref.
func (rs *ResultSet) COVPlotSeries(names []string, ref string) []plot.Series {
	var out []plot.Series
	for _, a := range names {
		covs, diffs := rs.YieldDifferenceSeries(a, ref)
		out = append(out, plot.Series{Name: fmt.Sprintf("%s - %s", a, ref), X: covs, Y: diffs})
	}
	return out
}

// ErrorPlotSeries converts Figures 5–7 curves into plottable series: ideal,
// zero-knowledge, caps, and the weight/equal curves per threshold.
func ErrorPlotSeries(curves []ErrorCurves, thresholds []float64) []plot.Series {
	n := len(curves)
	xs := make([]float64, n)
	ideal := make([]float64, n)
	zero := make([]float64, n)
	caps := make([]float64, n)
	for i, c := range curves {
		xs[i] = c.MaxErr
		ideal[i] = c.Ideal
		zero[i] = c.ZeroKnowledge
		caps[i] = c.Caps
	}
	out := []plot.Series{
		{Name: "ideal", X: xs, Y: ideal},
		{Name: "zero-knowledge", X: xs, Y: zero},
		{Name: "caps", X: xs, Y: caps},
	}
	for _, th := range thresholds {
		w := make([]float64, n)
		e := make([]float64, n)
		for i, c := range curves {
			w[i] = c.Weight[th]
			e[i] = c.Equal[th]
		}
		out = append(out,
			plot.Series{Name: fmt.Sprintf("weight(min=%.2f)", th), X: xs, Y: w},
			plot.Series{Name: fmt.Sprintf("equal(min=%.2f)", th), X: xs, Y: e},
		)
	}
	return out
}
