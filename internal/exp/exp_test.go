package exp

import (
	"math"
	"strings"
	"testing"
	"time"

	"vmalloc/internal/core"
	"vmalloc/internal/workload"
)

func smallGrid() GridSpec {
	return GridSpec{
		Hosts:    8,
		Services: []int{16},
		COVs:     []float64{0, 0.5},
		Slacks:   []float64{0.5},
		Seeds:    []int64{1, 2},
	}
}

func TestGridSpecScenarios(t *testing.T) {
	g := GridSpec{
		Hosts:    4,
		Services: []int{10, 20},
		COVs:     []float64{0, 1},
		Slacks:   []float64{0.3, 0.6},
		Seeds:    []int64{1, 2, 3},
	}
	scns := g.Scenarios()
	if len(scns) != 2*2*2*3 {
		t.Fatalf("|scenarios| = %d, want 24", len(scns))
	}
}

func TestRunnerProducesCompleteResultSet(t *testing.T) {
	scns := smallGrid().Scenarios()
	algos := []Algo{MetaGreedyAlgo(), MetaHVPLightAlgo(1e-3)}
	rs := (&Runner{Workers: 2}).Run(scns, algos)
	if len(rs.Scenarios) != len(scns) {
		t.Fatalf("scenarios lost: %d", len(rs.Scenarios))
	}
	for _, a := range algos {
		outs := rs.ByAlgo[a.Name]
		if len(outs) != len(scns) {
			t.Fatalf("%s: %d outcomes", a.Name, len(outs))
		}
		for i, o := range outs {
			if o.Solved && (o.MinYield < 0 || o.MinYield > 1) {
				t.Fatalf("%s[%d]: yield %v", a.Name, i, o.MinYield)
			}
		}
	}
}

func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	scns := smallGrid().Scenarios()
	algos := []Algo{MetaHVPLightAlgo(1e-3)}
	a := (&Runner{Workers: 1}).Run(scns, algos)
	b := (&Runner{Workers: 4}).Run(scns, algos)
	for i := range scns {
		oa := a.ByAlgo[NameMetaHVPLight][i]
		ob := b.ByAlgo[NameMetaHVPLight][i]
		if oa.Solved != ob.Solved || math.Abs(oa.MinYield-ob.MinYield) > 1e-12 {
			t.Fatalf("instance %d: (%v,%v) vs (%v,%v)", i, oa.Solved, oa.MinYield, ob.Solved, ob.MinYield)
		}
	}
}

func TestComparePairMetrics(t *testing.T) {
	rs := &ResultSet{
		Scenarios: make([]workload.Scenario, 4),
		ByAlgo: map[string][]Outcome{
			"A": {
				{Solved: true, MinYield: 0.6},
				{Solved: true, MinYield: 0.4},
				{Solved: true, MinYield: 0.5},
				{Solved: false},
			},
			"B": {
				{Solved: true, MinYield: 0.5},
				{Solved: true, MinYield: 0.5},
				{Solved: false},
				{Solved: true, MinYield: 0.9},
			},
		},
	}
	pw := rs.ComparePair("A", "B")
	// Common instances: 0 (+20%) and 1 (-20%) -> YAB = 0.
	if math.Abs(pw.YAB) > 1e-9 {
		t.Fatalf("YAB = %v, want 0", pw.YAB)
	}
	// A-only 1, B-only 1 over 4 instances -> SAB = 0.
	if math.Abs(pw.SAB) > 1e-9 {
		t.Fatalf("SAB = %v, want 0", pw.SAB)
	}
	if pw.Both != 2 || pw.AOnly != 1 || pw.BOnly != 1 {
		t.Fatalf("counts = %+v", pw)
	}
	// Against itself the comparison is clean zero.
	self := rs.ComparePair("A", "A")
	if self.YAB != 0 || self.SAB != 0 {
		t.Fatalf("self comparison = %+v", self)
	}
}

func TestSuccessAndYieldStats(t *testing.T) {
	rs := &ResultSet{
		Scenarios: make([]workload.Scenario, 2),
		ByAlgo: map[string][]Outcome{
			"A": {
				{Solved: true, MinYield: 0.4, Elapsed: time.Second},
				{Solved: false, Elapsed: 3 * time.Second},
			},
		},
	}
	if got := rs.SuccessRate("A"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("success = %v", got)
	}
	if got := rs.MeanYield("A"); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("mean yield = %v", got)
	}
	if got := rs.MeanRuntime("A"); got != 2*time.Second {
		t.Fatalf("mean runtime = %v", got)
	}
}

func TestYieldDifferenceSeries(t *testing.T) {
	scn := func(cov float64) workload.Scenario { return workload.Scenario{COV: cov} }
	rs := &ResultSet{
		Scenarios: []workload.Scenario{scn(0), scn(0), scn(1)},
		ByAlgo: map[string][]Outcome{
			"A":   {{Solved: true, MinYield: 0.5}, {Solved: true, MinYield: 0.7}, {Solved: true, MinYield: 0.2}},
			"REF": {{Solved: true, MinYield: 0.6}, {Solved: true, MinYield: 0.6}, {Solved: true, MinYield: 0.5}},
		},
	}
	covs, diffs := rs.YieldDifferenceSeries("A", "REF")
	if len(covs) != 2 || covs[0] != 0 || covs[1] != 1 {
		t.Fatalf("covs = %v", covs)
	}
	if math.Abs(diffs[0]-0.0) > 1e-9 { // (-0.1 + 0.1)/2
		t.Fatalf("diff at cov 0 = %v", diffs[0])
	}
	if math.Abs(diffs[1]+0.3) > 1e-9 {
		t.Fatalf("diff at cov 1 = %v", diffs[1])
	}
}

func TestFilter(t *testing.T) {
	scns := smallGrid().Scenarios()
	rs := (&Runner{Workers: 2}).Run(scns, []Algo{MetaGreedyAlgo()})
	sub := rs.Filter(func(s workload.Scenario) bool { return s.COV == 0 })
	if len(sub.Scenarios) != 2 {
		t.Fatalf("filtered %d", len(sub.Scenarios))
	}
	for _, s := range sub.Scenarios {
		if s.COV != 0 {
			t.Fatal("filter leak")
		}
	}
	if len(sub.ByAlgo[NameMetaGreedy]) != 2 {
		t.Fatal("outcomes not filtered")
	}
}

func TestTableRenderings(t *testing.T) {
	scns := smallGrid().Scenarios()
	algos := []Algo{MetaGreedyAlgo(), MetaHVPLightAlgo(1e-3)}
	rs := (&Runner{}).Run(scns, algos)
	t1 := rs.Table1([]string{NameMetaGreedy, NameMetaHVPLight})
	if !strings.Contains(t1, NameMetaGreedy) || !strings.Contains(t1, "%") {
		t.Fatalf("table1:\n%s", t1)
	}
	t2 := rs.Table2([]string{NameMetaGreedy, NameMetaHVPLight})
	if !strings.Contains(t2, "16 tasks") {
		t.Fatalf("table2:\n%s", t2)
	}
	fig := rs.FigureYieldVsCOV([]string{NameMetaGreedy}, NameMetaHVPLight)
	if !strings.Contains(fig, "cov") {
		t.Fatalf("fig:\n%s", fig)
	}
	sum := rs.SuccessSummary([]string{NameMetaGreedy})
	if !strings.Contains(sum, "solved") {
		t.Fatalf("summary:\n%s", sum)
	}
}

func TestErrorExperimentShapes(t *testing.T) {
	e := &ErrorExperiment{
		Scenarios: []workload.Scenario{
			{Hosts: 8, Services: 16, COV: 0.5, Slack: 0.5, Seed: 1},
			{Hosts: 8, Services: 16, COV: 0.5, Slack: 0.5, Seed: 2},
		},
		MaxErrors:  []float64{0, 0.1},
		Thresholds: []float64{0, 0.1},
		Workers:    2,
	}
	curves := e.Run()
	if len(curves) != 2 {
		t.Fatalf("|curves| = %d", len(curves))
	}
	for _, c := range curves {
		if c.Instances == 0 {
			t.Fatal("no instances succeeded")
		}
		if c.Ideal <= 0 || c.Ideal > 1 {
			t.Fatalf("ideal = %v", c.Ideal)
		}
		for th, v := range c.Weight {
			if v < 0 || v > 1 {
				t.Fatalf("weight[%v] = %v", th, v)
			}
		}
	}
	// At zero error with zero threshold, ALLOCWEIGHTS matches the ideal.
	z := curves[0]
	if math.Abs(z.Weight[0]-z.Ideal) > 0.05 {
		t.Fatalf("zero-error weight %v should track ideal %v", z.Weight[0], z.Ideal)
	}
	text := FigureErrorCurves(curves, e.Thresholds)
	if !strings.Contains(text, "zero-knowledge") {
		t.Fatalf("render:\n%s", text)
	}
}

func TestErrorMonotonicityShape(t *testing.T) {
	// The ideal curve must not depend on the error level; check it is
	// constant across max errors for the same scenarios.
	e := &ErrorExperiment{
		Scenarios:  []workload.Scenario{{Hosts: 8, Services: 20, COV: 0.5, Slack: 0.4, Seed: 3}},
		MaxErrors:  []float64{0, 0.2},
		Thresholds: []float64{0},
	}
	curves := e.Run()
	if math.Abs(curves[0].Ideal-curves[1].Ideal) > 1e-12 {
		t.Fatalf("ideal should be error-independent: %v vs %v", curves[0].Ideal, curves[1].Ideal)
	}
}

func TestIdealMinYield(t *testing.T) {
	p := workload.Generate(workload.Scenario{Hosts: 8, Services: 16, COV: 0.5, Slack: 0.5, Seed: 1})
	y := IdealMinYield(MetaHVPLightAlgo(1e-3), p)
	if y < 0 || y > 1 {
		t.Fatalf("ideal = %v", y)
	}
	bad := &core.Problem{}
	_ = bad
}

func TestFullRosterOnTinyInstances(t *testing.T) {
	// The LP-based algorithms must run end-to-end on reduced sizes.
	scns := GridSpec{
		Hosts: 4, Services: []int{8}, COVs: []float64{0.5},
		Slacks: []float64{0.6}, Seeds: []int64{1},
	}.Scenarios()
	rs := (&Runner{}).Run(scns, FullRoster(1e-3, 42))
	for _, name := range []string{NameRRND, NameRRNZ, NameMetaGreedy, NameMetaVP, NameMetaHVP} {
		if _, ok := rs.ByAlgo[name]; !ok {
			t.Fatalf("missing %s", name)
		}
	}
	// METAHVP should solve this easy instance.
	if !rs.ByAlgo[NameMetaHVP][0].Solved {
		t.Fatal("METAHVP failed on an easy instance")
	}
}

func TestSuccessBySlack(t *testing.T) {
	scn := func(slack float64) workload.Scenario { return workload.Scenario{Slack: slack} }
	rs := &ResultSet{
		Scenarios: []workload.Scenario{scn(0.1), scn(0.1), scn(0.5), scn(0.5)},
		ByAlgo: map[string][]Outcome{
			"A": {
				{Solved: false}, {Solved: true, MinYield: 0.2},
				{Solved: true, MinYield: 0.6}, {Solved: true, MinYield: 0.7},
			},
		},
	}
	slacks, rates := rs.SuccessBySlack("A")
	if len(slacks) != 2 || slacks[0] != 0.1 || slacks[1] != 0.5 {
		t.Fatalf("slacks = %v", slacks)
	}
	if math.Abs(rates[0]-0.5) > 1e-12 || math.Abs(rates[1]-1.0) > 1e-12 {
		t.Fatalf("rates = %v", rates)
	}
}

// Success rate should not decrease as slack rises (harder -> easier), a
// sanity check of the §4 hardness claim on real sweeps.
func TestHardnessMonotoneOnRealSweep(t *testing.T) {
	grid := GridSpec{
		Hosts: 8, Services: []int{40}, COVs: []float64{0.5},
		Slacks: []float64{0.1, 0.5, 0.9}, Seeds: []int64{1, 2, 3},
	}
	rs := (&Runner{}).Run(grid.Scenarios(), []Algo{MetaHVPLightAlgo(1e-3)})
	_, rates := rs.SuccessBySlack(NameMetaHVPLight)
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1]-1e-9 {
			t.Fatalf("success rate decreased with slack: %v", rates)
		}
	}
}

// The warm-start-sharing LP roster must produce exactly the results of the
// independent cold RRND/RRNZ entries: basis reuse changes solve time, never
// the relaxation optimum the rounding draws from.
func TestLPRosterMatchesColdRoster(t *testing.T) {
	grid := GridSpec{
		Hosts: 4, Services: []int{10}, COVs: []float64{0.5},
		Slacks: []float64{0.5}, Seeds: []int64{1, 2},
	}
	warm := (&Runner{}).Run(grid.Scenarios(), LPRoster(7))
	cold := (&Runner{}).Run(grid.Scenarios(), []Algo{RRNDAlgo(7), RRNZAlgo(7)})
	for _, name := range []string{NameRRND, NameRRNZ} {
		for i := range warm.ByAlgo[name] {
			w, c := warm.ByAlgo[name][i], cold.ByAlgo[name][i]
			if w.Solved != c.Solved || math.Abs(w.MinYield-c.MinYield) > 1e-9 {
				t.Fatalf("%s scenario %d: warm %+v vs cold %+v", name, i, w, c)
			}
		}
	}
}
