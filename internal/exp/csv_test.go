package exp

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"vmalloc/internal/workload"
)

func sampleResultSet() *ResultSet {
	return &ResultSet{
		Scenarios: []workload.Scenario{
			{Hosts: 4, Services: 10, COV: 0, Slack: 0.5, Seed: 1},
			{Hosts: 4, Services: 10, COV: 0.5, Slack: 0.5, Seed: 2},
		},
		Algos: []string{"A", "REF"},
		ByAlgo: map[string][]Outcome{
			"A":   {{Solved: true, MinYield: 0.5, Elapsed: time.Millisecond}, {Solved: false}},
			"REF": {{Solved: true, MinYield: 0.6, Elapsed: 2 * time.Millisecond}, {Solved: true, MinYield: 0.7}},
		},
	}
}

func TestWriteResultsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResultSet().WriteResultsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 algos × 2 scenarios.
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][6] != "algorithm" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][6] != "A" || rows[1][7] != "true" {
		t.Fatalf("row 1 = %v", rows[1])
	}
	if rows[2][7] != "false" {
		t.Fatalf("row 2 = %v", rows[2])
	}
}

func TestWriteCOVSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResultSet().WriteCOVSeriesCSV(&buf, []string{"A"}, "REF"); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 COV values
		t.Fatalf("rows = %v", rows)
	}
	if !strings.Contains(rows[0][1], "A_minus_REF") {
		t.Fatalf("header = %v", rows[0])
	}
	// COV 0.5: A failed, cell empty.
	if rows[2][1] != "" {
		t.Fatalf("expected empty diff cell, got %q", rows[2][1])
	}
}

func TestWriteErrorCurvesCSV(t *testing.T) {
	curves := []ErrorCurves{
		{MaxErr: 0, Ideal: 0.5, ZeroKnowledge: 0.1, Caps: 0.5, Instances: 3,
			Weight: map[float64]float64{0: 0.5, 0.1: 0.45},
			Equal:  map[float64]float64{0: 0.4, 0.1: 0.42}},
	}
	var buf bytes.Buffer
	if err := WriteErrorCurvesCSV(&buf, curves, []float64{0, 0.1}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 4+4+1 {
		t.Fatalf("shape = %dx%d", len(rows), len(rows[0]))
	}
	if rows[1][len(rows[1])-1] != "3" {
		t.Fatalf("instances column = %v", rows[1])
	}
}

func TestScenarioLabel(t *testing.T) {
	s := workload.Scenario{Hosts: 4, Services: 10, COV: 0.5, Slack: 0.3, Seed: 7}
	if got := scenarioLabel(s); !strings.Contains(got, "H4/J10") {
		t.Fatalf("label = %q", got)
	}
}
