package exp

import "time"

// Pairwise holds the two §5 comparison metrics for algorithms A and B:
// YAB is the average percent minimum-yield difference of A relative to B on
// instances both solve; SAB is the percentage of instances A solves and B
// fails minus the percentage B solves and A fails. Positive values favor A.
type Pairwise struct {
	YAB, SAB float64
	// Both counts instances solved by both; AOnly/BOnly count exclusive
	// successes.
	Both, AOnly, BOnly int
}

// ComparePair computes the pairwise metrics for algorithms a and b over a
// result set.
func (rs *ResultSet) ComparePair(a, b string) Pairwise {
	oa, ob := rs.ByAlgo[a], rs.ByAlgo[b]
	var pw Pairwise
	sumPct, n := 0.0, 0
	for i := range rs.Scenarios {
		switch {
		case oa[i].Solved && ob[i].Solved:
			pw.Both++
			if ob[i].MinYield > 1e-9 {
				sumPct += (oa[i].MinYield - ob[i].MinYield) / ob[i].MinYield * 100
				n++
			}
		case oa[i].Solved:
			pw.AOnly++
		case ob[i].Solved:
			pw.BOnly++
		}
	}
	if n > 0 {
		pw.YAB = sumPct / float64(n)
	}
	total := float64(len(rs.Scenarios))
	if total > 0 {
		pw.SAB = float64(pw.AOnly-pw.BOnly) / total * 100
	}
	return pw
}

// SuccessRate returns the fraction of instances algorithm a solves.
func (rs *ResultSet) SuccessRate(a string) float64 {
	if len(rs.Scenarios) == 0 {
		return 0
	}
	n := 0
	for _, o := range rs.ByAlgo[a] {
		if o.Solved {
			n++
		}
	}
	return float64(n) / float64(len(rs.Scenarios))
}

// MeanYield returns the average minimum yield of algorithm a over the
// instances it solves (0 if it solves none).
func (rs *ResultSet) MeanYield(a string) float64 {
	sum, n := 0.0, 0
	for _, o := range rs.ByAlgo[a] {
		if o.Solved {
			sum += o.MinYield
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanYieldOnCommon returns the average minimum yields of a and b restricted
// to instances both solve.
func (rs *ResultSet) MeanYieldOnCommon(a, b string) (ya, yb float64, n int) {
	oa, ob := rs.ByAlgo[a], rs.ByAlgo[b]
	for i := range rs.Scenarios {
		if oa[i].Solved && ob[i].Solved {
			ya += oa[i].MinYield
			yb += ob[i].MinYield
			n++
		}
	}
	if n > 0 {
		ya /= float64(n)
		yb /= float64(n)
	}
	return ya, yb, n
}

// MeanRuntime returns the average wall-clock run time of algorithm a over
// all instances (solved or not).
func (rs *ResultSet) MeanRuntime(a string) time.Duration {
	outs := rs.ByAlgo[a]
	if len(outs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, o := range outs {
		sum += o.Elapsed
	}
	return sum / time.Duration(len(outs))
}

// YieldDifferenceSeries returns, per COV value (in ascending order), the
// average difference between algorithm a's minimum yield and the reference
// algorithm's minimum yield on instances both solve — the quantity plotted
// in Figures 2–4 with reference METAHVP.
func (rs *ResultSet) YieldDifferenceSeries(a, ref string) (covs, diffs []float64) {
	type acc struct {
		sum float64
		n   int
	}
	byCov := map[float64]*acc{}
	oa, or := rs.ByAlgo[a], rs.ByAlgo[ref]
	for i, s := range rs.Scenarios {
		if !oa[i].Solved || !or[i].Solved {
			continue
		}
		g, ok := byCov[s.COV]
		if !ok {
			g = &acc{}
			byCov[s.COV] = g
		}
		g.sum += oa[i].MinYield - or[i].MinYield
		g.n++
	}
	for cov := range byCov {
		covs = append(covs, cov)
	}
	sortFloats(covs)
	for _, c := range covs {
		g := byCov[c]
		diffs = append(diffs, g.sum/float64(g.n))
	}
	return covs, diffs
}

// SuccessBySlack returns, per memory-slack value in ascending order, the
// fraction of instances algorithm a solves — the §4 hardness curve (lower
// slack = harder memory packing).
func (rs *ResultSet) SuccessBySlack(a string) (slacks, rates []float64) {
	type acc struct{ ok, n int }
	bySlack := map[float64]*acc{}
	outs := rs.ByAlgo[a]
	for i, s := range rs.Scenarios {
		g, found := bySlack[s.Slack]
		if !found {
			g = &acc{}
			bySlack[s.Slack] = g
		}
		g.n++
		if outs[i].Solved {
			g.ok++
		}
	}
	for s := range bySlack {
		slacks = append(slacks, s)
	}
	sortFloats(slacks)
	for _, s := range slacks {
		g := bySlack[s]
		rates = append(rates, float64(g.ok)/float64(g.n))
	}
	return slacks, rates
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
