package recovery

import (
	"strings"
	"testing"
)

func TestSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("durable-tier sweep in short mode")
	}
	spec := Spec{
		Hosts:         4,
		Ops:           []int{60, 150},
		SnapshotEvery: []int{-1, 32},
		Seed:          3,
	}
	rows, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byKey := map[[2]int]Row{}
	for _, r := range rows {
		if r.Records == 0 {
			t.Fatalf("cell ops=%d snap=%d journaled nothing", r.Ops, r.SnapshotEvery)
		}
		if r.RecoveryTime <= 0 {
			t.Fatalf("cell ops=%d snap=%d has no recovery time", r.Ops, r.SnapshotEvery)
		}
		byKey[[2]int{r.Ops, r.SnapshotEvery}] = r
	}
	// Without snapshots, recovery replays the full log; with them, less.
	for _, ops := range spec.Ops {
		never := byKey[[2]int{ops, -1}]
		snap := byKey[[2]int{ops, 32}]
		if never.Replayed != int(never.Records) {
			t.Fatalf("snapshot-free recovery replayed %d of %d records", never.Replayed, never.Records)
		}
		if snap.Replayed >= never.Replayed {
			t.Fatalf("checkpointing did not shorten replay: %d vs %d", snap.Replayed, never.Replayed)
		}
		if never.Services != snap.Services {
			t.Fatalf("recovered service counts disagree: %d vs %d", never.Services, snap.Services)
		}
	}

	table := Table(rows)
	for _, want := range []string{"ops", "snap every", "recovery", "never"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
