// Package recovery sweeps the durable tier's crash-recovery behavior. It
// lives beside internal/exp but in its own package: it drives the journaled
// store (internal/server), which builds on the public vmalloc API, and the
// root package's own benchmarks import internal/exp — keeping the durable
// sweep separate avoids that cycle.
package recovery

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/server"
	"vmalloc/internal/workload"
)

// Spec sweeps the durable tier's recovery behavior: for each (log
// length, snapshot interval) cell it drives a fixed-seed operation mix
// through a journaled store, kills it without a shutdown checkpoint, and
// measures how long reopening takes and how fast the WAL tail replays. It
// answers the operational question the durable tier raises: how does
// recovery time scale with write volume, and how much does checkpointing
// buy.
type Spec struct {
	// Hosts and COV shape the platform (HeteroBoth, seeded per run).
	Hosts int
	COV   float64
	// Ops is the log-length axis: operations journaled before the kill.
	Ops []int
	// SnapshotEvery is the checkpoint-interval axis; use -1 for "never"
	// (recovery must replay the whole log).
	SnapshotEvery []int
	// Seed fixes the platform and the operation mix.
	Seed int64
}

// Row is one (log length, snapshot interval) cell.
type Row struct {
	Ops           int
	SnapshotEvery int
	// Records is the number of journal records the run produced.
	Records uint64
	// Replayed is how many of them recovery had to re-apply.
	Replayed int
	// Services is the live-service count at the kill (sanity: recovered
	// stores must agree).
	Services int
	// RecoveryTime is the wall time of the post-kill Open.
	RecoveryTime time.Duration
	// ReplayPerSec is Replayed divided by the replay share of recovery;
	// 0 when nothing was replayed.
	ReplayPerSec float64
}

func (spec Spec) defaults() Spec {
	if spec.Hosts <= 0 {
		spec.Hosts = 8
	}
	if spec.COV == 0 { //vmalloc:nondet-ok COV==0 is an exact config sentinel selecting the homogeneous park
		spec.COV = 0.5
	}
	if len(spec.Ops) == 0 {
		spec.Ops = []int{200, 1000}
	}
	if len(spec.SnapshotEvery) == 0 {
		spec.SnapshotEvery = []int{-1, 256}
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	return spec
}

// Run executes the sweep. Journal directories are created under
// os.MkdirTemp and removed afterwards.
func (spec Spec) Run() ([]Row, error) {
	spec = spec.defaults()
	nodes := workload.Platform(workload.Scenario{
		Hosts: spec.Hosts, COV: spec.COV, Mode: workload.HeteroBoth, Seed: spec.Seed,
	}, rand.New(rand.NewSource(spec.Seed)))
	rows := make([]Row, 0, len(spec.Ops)*len(spec.SnapshotEvery))
	for _, ops := range spec.Ops {
		for _, every := range spec.SnapshotEvery {
			row, err := spec.runCell(nodes, ops, every)
			if err != nil {
				return nil, fmt.Errorf("recovery: ops=%d snap=%d: %w", ops, every, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func (spec Spec) runCell(nodes []vmalloc.Node, ops, every int) (Row, error) {
	row := Row{Ops: ops, SnapshotEvery: every}
	dir, err := os.MkdirTemp("", "vmalloc-recovery-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	opts := &server.Options{Fsync: journal.FsyncNone, SnapshotEvery: every}
	st, err := server.Open(dir, nodes, opts)
	if err != nil {
		return row, err
	}
	// The op stream depends only on the log-length axis, so the snapshot
	// intervals of one row recover the same trajectory and are comparable.
	rng := rand.New(rand.NewSource(spec.Seed + int64(ops)*31))
	var live []int
	for i := 0; i < ops; i++ {
		switch k := rng.Intn(20); {
		case k < 10: // admission
			req := vmalloc.Of(0.02+0.05*rng.Float64(), 0.02+0.05*rng.Float64())
			need := vmalloc.Of(0.05+0.2*rng.Float64(), 0.02*rng.Float64())
			svc := vmalloc.Service{
				ReqElem: req.Clone(), ReqAgg: req.Clone(),
				NeedElem: need.Clone(), NeedAgg: need.Clone(),
			}
			if id, _, err := st.Add(svc); err == nil {
				live = append(live, id)
			} else if err != server.ErrRejected {
				return row, err
			}
		case k < 15: // departure
			if len(live) > 0 {
				idx := rng.Intn(len(live))
				if _, err := st.Remove(live[idx]); err != nil {
					return row, err
				}
				live = append(live[:idx], live[idx+1:]...)
			}
		case k < 18: // need update
			if len(live) > 0 {
				id := live[rng.Intn(len(live))]
				nv := vmalloc.Of(0.05+0.2*rng.Float64(), 0.02*rng.Float64())
				if err := st.UpdateNeeds(id, nv.Clone(), nv.Clone(), nv.Clone(), nv.Clone()); err != nil {
					return row, err
				}
			}
		default: // epoch
			if _, err := st.Reallocate(); err != nil {
				return row, err
			}
		}
	}
	stats := st.Stats()
	row.Records = stats.Records
	row.Services = stats.Services
	st.Kill() // no shutdown checkpoint: recovery must work for its state

	start := time.Now()
	st2, err := server.Open(dir, nil, opts)
	if err != nil {
		return row, err
	}
	row.RecoveryTime = time.Since(start)
	defer st2.Close()
	after := st2.Stats()
	row.Replayed = after.Replayed
	if after.Services != row.Services {
		return row, fmt.Errorf("recovered %d services, want %d", after.Services, row.Services)
	}
	if row.Replayed > 0 && row.RecoveryTime > 0 {
		row.ReplayPerSec = float64(row.Replayed) / row.RecoveryTime.Seconds()
	}
	return row, nil
}

// Table renders the sweep: recovery time and replay throughput
// against log length and snapshot interval.
func Table(rows []Row) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ops\tsnap every\trecords\treplayed\tservices\trecovery\treplay rec/s")
	for _, r := range rows {
		every := fmt.Sprint(r.SnapshotEvery)
		if r.SnapshotEvery < 0 {
			every = "never"
		}
		perSec := "-"
		if r.ReplayPerSec > 0 {
			perSec = fmt.Sprintf("%.0f", r.ReplayPerSec)
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%s\t%s\n",
			r.Ops, every, r.Records, r.Replayed, r.Services,
			r.RecoveryTime.Round(time.Microsecond), perSec)
	}
	w.Flush()
	return sb.String()
}
