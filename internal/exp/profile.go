package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"vmalloc/internal/core"
	"vmalloc/internal/hvp"
	"vmalloc/internal/vp"
	"vmalloc/internal/workload"
)

// StrategyStats summarizes one base HVP strategy over a sweep — the §5.1
// methodology used to engineer METAHVPLIGHT: strategies are ranked first by
// success rate, then by average achieved minimum yield.
type StrategyStats struct {
	Config    vp.Config
	Solved    int
	Instances int
	MeanYield float64 // over solved instances
}

// SuccessRate returns the fraction of instances solved.
func (s *StrategyStats) SuccessRate() float64 {
	if s.Instances == 0 {
		return 0
	}
	return float64(s.Solved) / float64(s.Instances)
}

// ProfileStrategies runs every METAHVP base strategy individually over the
// scenarios and returns the statistics ranked by (success rate, mean yield)
// descending — reproducing the analysis the paper used to select the
// METAHVPLIGHT subset. workers <= 0 selects GOMAXPROCS.
func ProfileStrategies(scns []workload.Scenario, tol float64, workers int) []StrategyStats {
	configs := hvp.Strategies()
	stats := make([]StrategyStats, len(configs))
	for i, c := range configs {
		stats[i].Config = c
		stats[i].Instances = len(scns)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Pre-generate problems once; strategies share them read-only.
	problems := make([]*core.Problem, len(scns))
	for i, s := range scns {
		problems[i] = workload.Generate(s)
	}

	type task struct{ ci int }
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				st := &stats[t.ci]
				sum := 0.0
				for _, p := range problems {
					res := vp.Solve(p, st.Config, tol)
					if res.Solved {
						st.Solved++
						sum += res.MinYield
					}
				}
				if st.Solved > 0 {
					st.MeanYield = sum / float64(st.Solved)
				}
			}
		}()
	}
	for ci := range configs {
		ch <- task{ci}
	}
	close(ch)
	wg.Wait()

	sort.SliceStable(stats, func(a, b int) bool {
		sa, sb := &stats[a], &stats[b]
		if sa.Solved != sb.Solved {
			return sa.Solved > sb.Solved
		}
		return sa.MeanYield > sb.MeanYield
	})
	return stats
}

// RenderProfile formats the top-k strategies as a table, marking the ones
// included in METAHVPLIGHT.
func RenderProfile(stats []StrategyStats, k int) string {
	light := map[string]bool{}
	for _, c := range hvp.LightStrategies() {
		light[c.String()] = true
	}
	if k <= 0 || k > len(stats) {
		k = len(stats)
	}
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tstrategy\tsolved\tmean min yield\tin LIGHT")
	for i := 0; i < k; i++ {
		s := &stats[i]
		mark := ""
		if light[s.Config.String()] {
			mark = "yes"
		}
		fmt.Fprintf(w, "%d\t%s\t%.1f%%\t%.4f\t%s\n",
			i+1, s.Config, s.SuccessRate()*100, s.MeanYield, mark)
	}
	w.Flush()
	return sb.String()
}

// LightCoverage reports what fraction of the top-k profiled strategies are
// members of the METAHVPLIGHT subset — the §5.1 design validation.
func LightCoverage(stats []StrategyStats, k int) float64 {
	light := map[string]bool{}
	for _, c := range hvp.LightStrategies() {
		light[c.String()] = true
	}
	if k <= 0 || k > len(stats) {
		k = len(stats)
	}
	n := 0
	for i := 0; i < k; i++ {
		if light[stats[i].Config.String()] {
			n++
		}
	}
	return float64(n) / float64(k)
}
