package exp

import (
	"strings"
	"testing"

	"vmalloc/internal/platform"
)

func TestOnlineSweep(t *testing.T) {
	spec := OnlineSpec{
		Hosts: 4, COV: 0.5,
		Rates:   []float64{1, 4},
		Horizon: 40, Epoch: 4,
		MaxErr: 0.2, Threshold: platform.AdaptiveThreshold,
		Seeds: []int64{1, 2},
	}
	rows, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Rate != 1 || rows[1].Rate != 4 {
		t.Fatalf("rates %v/%v", rows[0].Rate, rows[1].Rate)
	}
	// Higher churn hosts more services on the same platform.
	if rows[1].MeanServices <= rows[0].MeanServices {
		t.Fatalf("rate 4 hosts %.1f services, rate 1 hosts %.1f — churn axis broken",
			rows[1].MeanServices, rows[0].MeanServices)
	}
	for _, r := range rows {
		if r.MeanMinYield < 0 || r.MeanMinYield > 1 {
			t.Fatalf("mean min yield %v out of range", r.MeanMinYield)
		}
		if r.RejectionRate < 0 || r.RejectionRate > 1 {
			t.Fatalf("rejection rate %v out of range", r.RejectionRate)
		}
	}
	table := OnlineTable(rows)
	if !strings.Contains(table, "min yield") || len(strings.Split(strings.TrimSpace(table), "\n")) != 3 {
		t.Fatalf("malformed table:\n%s", table)
	}
}

// TestOnlineSweepRepairMode exercises the repair path and checks the
// migration column respects the budget.
func TestOnlineSweepRepairMode(t *testing.T) {
	spec := OnlineSpec{
		Hosts: 4, COV: 0.5,
		Rates:   []float64{2},
		Horizon: 40, Epoch: 4,
		UseRepair: true, MigrationBudget: 2,
		Seeds: []int64{3},
	}
	rows, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MigrationsPerEpoch > 2 {
		t.Fatalf("repair sweep migrated %.2f per epoch, budget 2", rows[0].MigrationsPerEpoch)
	}
}

func TestOnlineSweepBadConfig(t *testing.T) {
	if _, err := (OnlineSpec{Rates: []float64{1}}).Run(); err == nil {
		t.Fatal("zero hosts must error")
	}
}
