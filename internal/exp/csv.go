package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vmalloc/internal/workload"
)

// WriteResultsCSV emits the raw sweep results, one row per (scenario,
// algorithm): ready for external plotting tools.
func (rs *ResultSet) WriteResultsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"hosts", "services", "cov", "slack", "mode", "seed",
		"algorithm", "solved", "min_yield", "runtime_sec", "allocs", "alloc_bytes"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, name := range rs.Algos {
		outs := rs.ByAlgo[name]
		for i, s := range rs.Scenarios {
			row := []string{
				strconv.Itoa(s.Hosts),
				strconv.Itoa(s.Services),
				formatF(s.COV),
				formatF(s.Slack),
				s.Mode.String(),
				strconv.FormatInt(s.Seed, 10),
				name,
				strconv.FormatBool(outs[i].Solved),
				formatF(outs[i].MinYield),
				formatF(outs[i].Elapsed.Seconds()),
				strconv.FormatUint(outs[i].Allocs, 10),
				strconv.FormatUint(outs[i].AllocBytes, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteErrorCurvesCSV emits the Figures 5–7 series as CSV.
func WriteErrorCurvesCSV(w io.Writer, curves []ErrorCurves, thresholds []float64) error {
	cw := csv.NewWriter(w)
	header := []string{"max_error", "ideal", "zero_knowledge", "caps"}
	for _, th := range thresholds {
		header = append(header,
			fmt.Sprintf("weight_min_%.2f", th),
			fmt.Sprintf("equal_min_%.2f", th))
	}
	header = append(header, "instances")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range curves {
		row := []string{formatF(c.MaxErr), formatF(c.Ideal), formatF(c.ZeroKnowledge), formatF(c.Caps)}
		for _, th := range thresholds {
			row = append(row, formatF(c.Weight[th]), formatF(c.Equal[th]))
		}
		row = append(row, strconv.Itoa(c.Instances))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCOVSeriesCSV emits the Figures 2–4 series (difference from ref per
// COV) as CSV.
func (rs *ResultSet) WriteCOVSeriesCSV(w io.Writer, names []string, ref string) error {
	cw := csv.NewWriter(w)
	header := []string{"cov"}
	for _, a := range names {
		header = append(header, a+"_minus_"+ref)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	// Union of COVs in ascending order.
	covSet := map[float64]bool{}
	for _, s := range rs.Scenarios {
		covSet[s.COV] = true
	}
	var covs []float64
	for c := range covSet {
		covs = append(covs, c)
	}
	sortFloats(covs)
	series := map[string]map[float64]float64{}
	for _, a := range names {
		cs, ds := rs.YieldDifferenceSeries(a, ref)
		m := map[float64]float64{}
		for i := range cs {
			m[cs[i]] = ds[i]
		}
		series[a] = m
	}
	for _, c := range covs {
		row := []string{formatF(c)}
		for _, a := range names {
			if d, ok := series[a][c]; ok {
				row = append(row, formatF(d))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// scenarioLabel is a compact identifier used in CSV filenames and logs.
func scenarioLabel(s workload.Scenario) string { return s.String() }
