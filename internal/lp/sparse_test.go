package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem draws a bounded random LP with the given density; ~30% of
// upper bounds are infinite.
func randomProblem(rng *rand.Rand, n, rows int, density float64) *Problem {
	p := &Problem{Obj: make([]float64, n), Upper: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Obj[j] = rng.NormFloat64()
		if rng.Float64() < 0.3 {
			p.Upper[j] = math.Inf(1)
		} else {
			p.Upper[j] = 0.5 + 3*rng.Float64()
		}
	}
	for i := 0; i < rows; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				row[j] = rng.NormFloat64()
			}
		}
		p.A = append(p.A, row)
		p.Sense = append(p.Sense, Sense(rng.Intn(3)))
		p.B = append(p.B, rng.NormFloat64())
	}
	return p
}

func TestCSCRoundTrip(t *testing.T) {
	a := [][]float64{
		{1, 0, -2, 0},
		{0, 0, 0, 0},
		{0, 3, 4, 0},
	}
	c := NewCSCFromDense(a, 4)
	if c.M != 3 || c.N != 4 || c.NNZ() != 4 {
		t.Fatalf("M,N,NNZ = %d,%d,%d", c.M, c.N, c.NNZ())
	}
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	back := c.Dense()
	for i := range a {
		for j := range a[i] {
			if back[i][j] != a[i][j] {
				t.Fatalf("round trip differs at (%d,%d): %v vs %v", i, j, back[i][j], a[i][j])
			}
		}
	}
}

func TestSparseBuilderArbitraryOrder(t *testing.T) {
	b := NewSparseBuilder(3)
	b.Add(2, 1, 5)
	b.Add(0, 0, 1)
	b.Add(1, 1, -2)
	b.Add(0, 2, 3)
	b.Add(1, 0, 0) // dropped
	c := b.Build(3)
	want := [][]float64{{1, 0, 3}, {0, -2, 0}, {0, 5, 0}}
	got := c.Dense()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("entry (%d,%d) = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// checkCSCFeasible verifies x against the sparse rows and bounds of p.
func checkCSCFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j, v := range x {
		l, u := 0.0, math.Inf(1)
		if p.Lower != nil {
			l = p.Lower[j]
		}
		if p.Upper != nil {
			u = p.Upper[j]
		}
		if v < l-tol || v > u+tol {
			t.Fatalf("x[%d] = %v violates bounds [%v,%v]", j, v, l, u)
		}
	}
	lhs := make([]float64, p.NumRows())
	for j := 0; j < p.NumVars(); j++ {
		for k := p.Cols.ColPtr[j]; k < p.Cols.ColPtr[j+1]; k++ {
			lhs[p.Cols.RowIdx[k]] += p.Cols.Val[k] * x[j]
		}
	}
	for i, l := range lhs {
		switch p.Sense[i] {
		case LE:
			if l > p.B[i]+tol {
				t.Fatalf("row %d: %v <= %v violated", i, l, p.B[i])
			}
		case GE:
			if l < p.B[i]-tol {
				t.Fatalf("row %d: %v >= %v violated", i, l, p.B[i])
			}
		case EQ:
			if math.Abs(l-p.B[i]) > tol {
				t.Fatalf("row %d: %v == %v violated", i, l, p.B[i])
			}
		}
	}
}

// Randomized cross-validation: SolveSparse on the CSC form must match the
// dense Solve on status and objective (1e-6) and satisfy the duality checks.
func TestSparseMatchesDenseOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 400; iter++ {
		p := randomProblem(rng, 2+rng.Intn(5), 1+rng.Intn(6), 0.7)
		sp := p.Sparsify()
		dense, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := SolveSparse(sp)
		if err != nil {
			t.Fatal(err)
		}
		if dense.Status != sparse.Status {
			t.Fatalf("iter %d: status dense=%v sparse=%v", iter, dense.Status, sparse.Status)
		}
		if dense.Status != Optimal {
			continue
		}
		if math.Abs(dense.Objective-sparse.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("iter %d: objective dense=%v sparse=%v", iter, dense.Objective, sparse.Objective)
		}
		checkCSCFeasible(t, sp, sparse.X)
		checkFeasible(t, p, sparse.X)
		checkDuality(t, p, sparse)
		if sparse.Basis == nil {
			t.Fatalf("iter %d: optimal sparse solve returned no basis", iter)
		}
	}
}

// Sparse solve of a densified problem and dense solve of a CSC problem must
// both work: the two matrix forms are interchangeable at the API level.
func TestMatrixFormsInterchangeable(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	p := randomProblem(rng, 6, 5, 0.6)
	sp := p.Sparsify()
	fromDense, err := SolveSparse(p) // dense A through the sparse solver
	if err != nil {
		t.Fatal(err)
	}
	fromCSC, err := Solve(sp) // CSC through the dense solver (densifies)
	if err != nil {
		t.Fatal(err)
	}
	if fromDense.Status != fromCSC.Status {
		t.Fatalf("status %v vs %v", fromDense.Status, fromCSC.Status)
	}
	if fromDense.Status == Optimal &&
		math.Abs(fromDense.Objective-fromCSC.Objective) > 1e-6*(1+math.Abs(fromDense.Objective)) {
		t.Fatalf("objective %v vs %v", fromDense.Objective, fromCSC.Objective)
	}
}

func TestLowerBoundsSimple(t *testing.T) {
	// max -x with 1 <= x <= 3: optimum at the lower bound, x = 1.
	p := &Problem{
		Obj:   []float64{-1},
		A:     [][]float64{{1}},
		Sense: []Sense{LE},
		B:     []float64{10},
		Lower: []float64{1},
		Upper: []float64{3},
	}
	for name, solve := range map[string]func(*Problem) (*Solution, error){
		"dense": Solve, "sparse": SolveSparse,
	} {
		s, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Status != Optimal || math.Abs(s.X[0]-1) > 1e-9 || math.Abs(s.Objective+1) > 1e-9 {
			t.Fatalf("%s: status %v x %v obj %v", name, s.Status, s.X, s.Objective)
		}
	}
}

func TestLowerBoundsFixedVariable(t *testing.T) {
	// x fixed to 1 by [1,1] bounds, as internal/milp fixes binaries:
	// max x + y st x + y <= 1.5 -> y = 0.5, objective 1.5.
	p := &Problem{
		Obj:   []float64{1, 1},
		A:     [][]float64{{1, 1}},
		Sense: []Sense{LE},
		B:     []float64{1.5},
		Lower: []float64{1, 0},
		Upper: []float64{1, math.Inf(1)},
	}
	s, err := SolveSparse(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.X[0]-1) > 1e-9 || math.Abs(s.Objective-1.5) > 1e-8 {
		t.Fatalf("status %v x %v obj %v", s.Status, s.X, s.Objective)
	}
}

// Randomized lower-bound cross-validation between the dense and sparse
// paths, including negative lower bounds.
func TestLowerBoundsRandomCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 300; iter++ {
		p := randomProblem(rng, 2+rng.Intn(4), 1+rng.Intn(5), 0.8)
		p.Lower = make([]float64, len(p.Obj))
		for j := range p.Lower {
			if rng.Float64() < 0.6 {
				l := rng.NormFloat64()
				if !math.IsInf(p.Upper[j], 1) && l > p.Upper[j] {
					l = p.Upper[j]
				}
				p.Lower[j] = l
			}
		}
		dense, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := SolveSparse(p.Sparsify())
		if err != nil {
			t.Fatal(err)
		}
		if dense.Status != sparse.Status {
			t.Fatalf("iter %d: status dense=%v sparse=%v", iter, dense.Status, sparse.Status)
		}
		if dense.Status != Optimal {
			continue
		}
		if math.Abs(dense.Objective-sparse.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("iter %d: objective dense=%v sparse=%v", iter, dense.Objective, sparse.Objective)
		}
		checkCSCFeasible(t, p.Sparsify(), sparse.X)
	}
}

func TestWarmStartIdenticalProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for iter := 0; iter < 50; iter++ {
		p := randomProblem(rng, 3+rng.Intn(5), 2+rng.Intn(5), 0.7).Sparsify()
		cold, err := SolveSparse(p)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != Optimal {
			continue
		}
		warm, err := SolveSparseWarm(p, cold.Basis)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.WarmStarted {
			t.Fatalf("iter %d: warm basis of the identical problem was rejected", iter)
		}
		if warm.Status != Optimal || math.Abs(warm.Objective-cold.Objective) > 1e-8*(1+math.Abs(cold.Objective)) {
			t.Fatalf("iter %d: warm %v/%v vs cold %v", iter, warm.Status, warm.Objective, cold.Objective)
		}
		// Re-solving from the optimal basis must converge without pivots.
		if warm.Iters != 0 {
			t.Fatalf("iter %d: warm re-solve took %d pivots", iter, warm.Iters)
		}
	}
}

// Warm starts across perturbed bounds (the branch-and-bound child pattern:
// fix a variable to 0 or 1) must stay correct whether the stale basis is
// reused or rejected.
func TestWarmStartPerturbedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	reused, rejected := 0, 0
	for iter := 0; iter < 200; iter++ {
		p := randomProblem(rng, 3+rng.Intn(5), 2+rng.Intn(5), 0.7)
		for j := range p.Upper { // keep boxes finite so fixings bind
			if math.IsInf(p.Upper[j], 1) {
				p.Upper[j] = 1 + rng.Float64()
			}
		}
		sp := p.Sparsify()
		base, err := SolveSparse(sp)
		if err != nil {
			t.Fatal(err)
		}
		if base.Status != Optimal {
			continue
		}
		q := *sp
		q.Upper = append([]float64(nil), sp.Upper...)
		j := rng.Intn(len(q.Upper))
		if rng.Float64() < 0.5 {
			q.Upper[j] = 0 // fix to 0
		} else {
			q.Lower = make([]float64, len(q.Upper))
			q.Lower[j] = q.Upper[j] // fix to its upper bound
		}
		warm, err := SolveSparseWarm(&q, base.Basis)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := SolveSparse(&q)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("iter %d: warm status %v vs cold %v", iter, warm.Status, cold.Status)
		}
		if warm.WarmStarted {
			reused++
		} else {
			rejected++
		}
		if cold.Status != Optimal {
			continue
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("iter %d: warm objective %v vs cold %v", iter, warm.Objective, cold.Objective)
		}
		checkCSCFeasible(t, q.Sparsify(), warm.X)
	}
	if reused == 0 {
		t.Fatal("warm basis was never reusable across 200 perturbations")
	}
	if rejected == 0 {
		t.Fatal("warm basis was never rejected; the fallback path is untested")
	}
}

// Warm starts with perturbed right-hand sides and objectives (same shape).
func TestWarmStartPerturbedRHSAndObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	for iter := 0; iter < 150; iter++ {
		p := randomProblem(rng, 3+rng.Intn(5), 2+rng.Intn(5), 0.7).Sparsify()
		base, err := SolveSparse(p)
		if err != nil {
			t.Fatal(err)
		}
		if base.Status != Optimal {
			continue
		}
		q := *p
		q.B = append([]float64(nil), p.B...)
		q.Obj = append([]float64(nil), p.Obj...)
		q.B[rng.Intn(len(q.B))] += 0.1 * rng.NormFloat64()
		q.Obj[rng.Intn(len(q.Obj))] += 0.1 * rng.NormFloat64()
		warm, err := SolveSparseWarm(&q, base.Basis)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := SolveSparse(&q)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("iter %d: warm status %v vs cold %v", iter, warm.Status, cold.Status)
		}
		if cold.Status == Optimal &&
			math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("iter %d: warm objective %v vs cold %v", iter, warm.Objective, cold.Objective)
		}
	}
}

// A basis from a differently-shaped problem must be rejected, not crash.
func TestWarmStartShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	small := randomProblem(rng, 3, 2, 0.9).Sparsify()
	big := randomProblem(rng, 6, 5, 0.9).Sparsify()
	bs, err := SolveSparse(small)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Status != Optimal {
		t.Skip("unlucky draw: small problem not optimal")
	}
	s, err := SolveSparseWarm(big, bs.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if s.WarmStarted {
		t.Fatal("mismatched basis must not be installed")
	}
	cold, err := SolveSparse(big)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != cold.Status {
		t.Fatalf("fallback status %v vs cold %v", s.Status, cold.Status)
	}
}

func TestValidateRejectsAmbiguousMatrix(t *testing.T) {
	p := &Problem{
		Obj:   []float64{1},
		A:     [][]float64{{1}},
		Cols:  NewCSCFromDense([][]float64{{1}}, 1),
		Sense: []Sense{LE},
		B:     []float64{1},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate must reject problems with both A and Cols set")
	}
	bad := &Problem{
		Obj:   []float64{1, 2},
		A:     [][]float64{{1, 1}},
		Sense: []Sense{LE},
		B:     []float64{1},
		Lower: []float64{0, 2},
		Upper: []float64{1, 1},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate must reject Lower > Upper")
	}
}
