// Solver-backend seam: the rest of the repository (relax, milp, hvp, exp)
// talks to linear-programming solvers through the Backend interface instead
// of calling SolveSparse directly, so presolve wrappers and future external
// solvers compose with the existing code without touching call sites. The
// in-tree sparse revised simplex is the default backend; internal/presolve
// registers a presolving wrapper around it.

package lp

import (
	"fmt"
	"sort"
	"sync"
)

// Backend solves linear programs in the Problem form. Implementations must
// be safe for concurrent use by multiple goroutines (the experiment harness
// solves instances in parallel through a shared backend).
//
// The *Basis values a backend returns and accepts are backend-internal warm
// tokens: pass a basis back only to the backend that produced it (a
// presolving backend hands out bases of the reduced model, not of p). Every
// backend must degrade gracefully — an unusable warm basis costs a cold
// start, never a wrong answer.
type Backend interface {
	// Name identifies the backend in the registry.
	Name() string
	// Solve maximizes p from a cold start.
	Solve(p *Problem) (*Solution, error)
	// SolveWarm maximizes p, warm-starting from the basis of a previous
	// solve of a same-shaped problem when possible.
	SolveWarm(p *Problem, warm *Basis) (*Solution, error)
}

// Simplex is the default Backend: the in-tree sparse revised simplex with LU
// factorization and warm starts (SolveSparse / SolveSparseWarm).
type Simplex struct{}

// Name implements Backend.
func (Simplex) Name() string { return "simplex" }

// Solve implements Backend.
func (Simplex) Solve(p *Problem) (*Solution, error) { return SolveSparse(p) }

// SolveWarm implements Backend.
func (Simplex) SolveWarm(p *Problem, warm *Basis) (*Solution, error) {
	return SolveSparseWarm(p, warm)
}

var (
	backendMu  sync.RWMutex
	backends   = map[string]Backend{}
	defaultKey string
)

func init() {
	MustRegister(Simplex{})
}

// Register adds a backend to the registry. The first registered backend
// becomes the default until SetDefault overrides it.
func Register(b Backend) error {
	name := b.Name()
	if name == "" {
		return fmt.Errorf("lp: backend with empty name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		return fmt.Errorf("lp: backend %q already registered", name)
	}
	backends[name] = b
	if defaultKey == "" {
		defaultKey = name
	}
	return nil
}

// MustRegister is Register, panicking on error (for init-time registration).
func MustRegister(b Backend) {
	if err := Register(b); err != nil {
		panic(err)
	}
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backends[name]
	return b, ok
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends { //vmalloc:nondet-ok keys are collected into a slice and sorted before any use
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultBackend returns the current default backend.
func DefaultBackend() Backend {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backends[defaultKey]
}

// SetDefault makes the named backend the default, returning an error when it
// is not registered.
func SetDefault(name string) error {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, ok := backends[name]; !ok {
		return fmt.Errorf("lp: unknown backend %q", name)
	}
	defaultKey = name
	return nil
}
