* Balanced 2x3 transportation problem: supplies (20, 30), demands
* (15, 25, 10), plant-2 lanes each cost one less than plant-1, so every
* feasible plan costs sum(d_j * c2j) + 20 = 210. Optimum (min) = 210.
NAME          TRANSP
OBJSENSE
    MIN
ROWS
 N  COST
 E  SUP1
 E  SUP2
 E  DEM1
 E  DEM2
 E  DEM3
COLUMNS
    X11       COST      3
    X11       SUP1      1
    X11       DEM1      1
    X12       COST      5
    X12       SUP1      1
    X12       DEM2      1
    X13       COST      7
    X13       SUP1      1
    X13       DEM3      1
    X21       COST      2
    X21       SUP2      1
    X21       DEM1      1
    X22       COST      4
    X22       SUP2      1
    X22       DEM2      1
    X23       COST      6
    X23       SUP2      1
    X23       DEM3      1
RHS
    RHS       SUP1      20
    RHS       SUP2      30
    RHS       DEM1      15
    RHS       DEM2      25
    RHS       DEM3      10
ENDATA
