* Two-food diet problem with covering (>=) rows. Optimum (min) = 7 at
* (2, 1), where both nutrient constraints are tight.
NAME          DIET
OBJSENSE
    MIN
ROWS
 N  COST
 G  NUT1
 G  NUT2
COLUMNS
    FOOD1     COST      2
    FOOD1     NUT1      1
    FOOD1     NUT2      2
    FOOD2     COST      3
    FOOD2     NUT1      2
    FOOD2     NUT2      1
RHS
    RHS       NUT1      4
    RHS       NUT2      5
ENDATA
