* Klee-Minty cube, n=3: Dantzig pricing visits an exponential number of
* vertices on this family. Optimum (max) = 10000 at (0, 0, 10000).
NAME          KLEE3
OBJSENSE
    MAX
ROWS
 N  PROFIT
 L  C1
 L  C2
 L  C3
COLUMNS
    X1        PROFIT    100
    X1        C1        1
    X1        C2        20
    X1        C3        200
    X2        PROFIT    10
    X2        C2        1
    X2        C3        20
    X3        PROFIT    1
    X3        C3        1
RHS
    RHS       C1        1
    RHS       C2        100
    RHS       C3        10000
ENDATA
