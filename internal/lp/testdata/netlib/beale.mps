* Beale's cycling example: Dantzig's rule cycles forever from the all-slack
* basis without an anti-cycling safeguard. Optimum (min) = -0.05 at
* (0.04, 0, 1, 0).
NAME          BEALE
OBJSENSE
    MIN
ROWS
 N  COST
 L  R1
 L  R2
 L  R3
COLUMNS
    X1        COST      -0.75
    X1        R1        0.25
    X1        R2        0.5
    X2        COST      150
    X2        R1        -60
    X2        R2        -90
    X3        COST      -0.02
    X3        R1        -0.04
    X3        R2        -0.02
    X3        R3        1
    X4        COST      6
    X4        R1        9
    X4        R2        3
RHS
    RHS       R3        1
ENDATA
