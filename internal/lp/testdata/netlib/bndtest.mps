* Bounds exercise: negative lower bound, finite range, and a fixed
* negative variable. Optimum (min) = -7 at (-5, -2).
NAME          BNDTEST
OBJSENSE
    MIN
ROWS
 N  COST
 G  FLOOR
COLUMNS
    X1        COST      1
    X1        FLOOR     1
    X2        COST      1
    X2        FLOOR     1
RHS
    RHS       FLOOR     -10
BOUNDS
 LO BND       X1        -5
 UP BND       X1        3
 FX BND       X2        -2
ENDATA
