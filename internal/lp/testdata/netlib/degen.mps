* Degenerate instance exercising presolve: X4 is fixed at 0 (dropping it
* from the equality), X3 is an empty column declared through a zero
* objective entry, and the inequality is tight with zero slack at the
* optimum. Optimum (max) = 2 at (1, 0, 0, 0).
NAME          DEGEN
OBJSENSE
    MAX
ROWS
 N  OBJ
 E  BAL
 L  SKEW
COLUMNS
    X1        OBJ       2
    X1        BAL       1
    X1        SKEW      1
    X2        OBJ       1
    X2        BAL       1
    X2        SKEW      -1
    X3        OBJ       0
    X4        BAL       1
RHS
    RHS       BAL       1
    RHS       SKEW      1
BOUNDS
 UP BND       X3        5
 FX BND       X4        0
ENDATA
