// Sparse basis factorization for the revised simplex: an LU decomposition
// of the basis matrix held in column-sparse form, plus a product-form eta
// file for the pivots performed since the last refactorization. FTRAN and
// BTRAN are sparse triangular solves through L, U and the eta file, so the
// per-iteration cost tracks the nonzero structure of the basis instead of
// the dense m² of an explicit inverse — on the allocation relaxation
// (a few nonzeros per column) that is the difference between toy-scale and
// paper-scale LP solves.

package lp

import "math"

// luPivotTol is the magnitude below which a factorization pivot is treated
// as singular.
const luPivotTol = 1e-10

// refactorEvery bounds the eta file length: after this many post-
// factorization pivots the basis is refactorized from scratch, keeping both
// solve cost and accumulated roundoff in check.
const refactorEvery = 64

// basisLU is the factorized basis. Elimination step t processed basis slot
// ord[t] and pivoted matrix row pivotRow[t]; L carries the elimination
// multipliers (unit diagonal implicit), U the triangularized columns in
// step space. Slots and rows share the index set 0..m-1 (basis[i] is the
// column basic in row i).
type basisLU struct {
	m        int
	ord      []int // elimination order over basis slots
	pivotRow []int // pivotRow[t] = matrix row pivoted at step t
	rowStep  []int // inverse permutation: rowStep[pivotRow[t]] = t
	lRows    [][]int
	lVals    [][]float64
	uRows    [][]int // row indices of earlier pivots, per step
	uVals    [][]float64
	uDiag    []float64

	// Product-form eta file, flattened into one arena: eta k pivots slot
	// etaSlot[k] with direction entries etaIdx/etaVal[etaStart[k]:
	// etaStart[k+1]] (the FTRAN of the entering column at pivot time), and
	// its pivot entry sits at arena position etaPivot[k].
	etaSlot  []int
	etaStart []int
	etaPivot []int
	etaIdx   []int
	etaVal   []float64

	x []float64 // row/slot-space scratch
	z []float64 // step-space scratch
}

func newBasisLU(m int) *basisLU {
	return &basisLU{
		m:        m,
		ord:      make([]int, m),
		pivotRow: make([]int, m),
		rowStep:  make([]int, m),
		lRows:    make([][]int, m),
		lVals:    make([][]float64, m),
		uRows:    make([][]int, m),
		uVals:    make([][]float64, m),
		uDiag:    make([]float64, m),
		x:        make([]float64, m),
		z:        make([]float64, m),
	}
}

// nEtas returns the eta-file length since the last factorization.
func (lu *basisLU) nEtas() int { return len(lu.etaSlot) }

// factorize rebuilds the LU factors from the given basis columns and clears
// the eta file. Slots are eliminated sparsest-column-first with partial
// pivoting by magnitude. It reports false on a numerically singular basis,
// leaving the factorization unusable.
func (lu *basisLU) factorize(bcols []*sparseCol) bool {
	m := lu.m
	lu.etaSlot = lu.etaSlot[:0]
	lu.etaStart = append(lu.etaStart[:0], 0)
	lu.etaPivot = lu.etaPivot[:0]
	lu.etaIdx = lu.etaIdx[:0]
	lu.etaVal = lu.etaVal[:0]

	// Sparsest columns first keeps the slack-heavy part of the basis
	// fill-free; counting sort by nonzero count.
	buckets := make([][]int, 0)
	for slot, c := range bcols {
		nnz := len(c.rows)
		for len(buckets) <= nnz {
			buckets = append(buckets, nil)
		}
		buckets[nnz] = append(buckets[nnz], slot)
	}
	lu.ord = lu.ord[:0]
	for _, b := range buckets {
		lu.ord = append(lu.ord, b...)
	}

	x := lu.x
	for i := range x {
		x[i] = 0
	}
	pivoted := make([]bool, m)
	touched := make([]int, 0, m)

	for t, slot := range lu.ord {
		c := bcols[slot]
		touched = touched[:0]
		for k, r := range c.rows {
			x[r] = c.vals[k]
			touched = append(touched, r)
		}
		// Eliminate with the L columns of earlier steps, tracking fill-in.
		for t2 := 0; t2 < t; t2++ {
			r2 := lu.pivotRow[t2]
			xr := x[r2]
			if xr == 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
				continue
			}
			rows, vals := lu.lRows[t2], lu.lVals[t2]
			for k, i := range rows {
				if x[i] == 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
					touched = append(touched, i)
				}
				x[i] -= vals[k] * xr
			}
		}
		// Partial pivoting among unpivoted rows.
		piv, pivAbs := -1, luPivotTol
		for _, i := range touched {
			if !pivoted[i] {
				if a := math.Abs(x[i]); a > pivAbs {
					piv, pivAbs = i, a
				}
			}
		}
		if piv < 0 {
			for _, i := range touched {
				x[i] = 0
			}
			return false
		}
		pv := x[piv]
		var lr []int
		var lv []float64
		var ur []int
		var uv []float64
		for _, i := range touched {
			v := x[i]
			x[i] = 0
			if v == 0 || i == piv { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
				continue
			}
			if pivoted[i] {
				ur = append(ur, i)
				uv = append(uv, v)
			} else {
				lr = append(lr, i)
				lv = append(lv, v/pv)
			}
		}
		lu.lRows[t], lu.lVals[t] = lr, lv
		lu.uRows[t], lu.uVals[t] = ur, uv
		lu.uDiag[t] = pv
		lu.pivotRow[t] = piv
		lu.rowStep[piv] = t
		pivoted[piv] = true
	}
	return true
}

// appendEta records a post-factorization pivot: the basis column at slot
// changed, with FTRAN direction w (dense, row space).
func (lu *basisLU) appendEta(slot int, w []float64) {
	pivotAt := -1
	for i, v := range w {
		if v != 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
			if i == slot {
				pivotAt = len(lu.etaIdx)
			}
			lu.etaIdx = append(lu.etaIdx, i)
			lu.etaVal = append(lu.etaVal, v)
		}
	}
	lu.etaSlot = append(lu.etaSlot, slot)
	lu.etaPivot = append(lu.etaPivot, pivotAt)
	lu.etaStart = append(lu.etaStart, len(lu.etaIdx))
}

// ftran solves B w = a for the sparse column a, writing the dense result
// (indexed by basis slot) into dst.
func (lu *basisLU) ftran(dst []float64, a *sparseCol) {
	x := lu.x
	for i := range x {
		x[i] = 0
	}
	for k, r := range a.rows {
		x[r] = a.vals[k]
	}
	lu.solveLU(dst, x)
	lu.applyEtas(dst)
}

// ftranDense is ftran for a dense right-hand side (row space); src is left
// untouched.
func (lu *basisLU) ftranDense(dst, src []float64) {
	x := lu.x
	copy(x, src)
	lu.solveLU(dst, x)
	lu.applyEtas(dst)
}

// solveLU performs the L then U triangular solves. x is the scattered
// right-hand side in row space and is consumed (zeroed); the solution lands
// in dst indexed by basis slot.
func (lu *basisLU) solveLU(dst, x []float64) {
	m := lu.m
	// L-solve in row space: after step t, x[pivotRow[t]] is settled.
	for t := 0; t < m; t++ {
		xr := x[lu.pivotRow[t]]
		if xr == 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
			continue
		}
		rows, vals := lu.lRows[t], lu.lVals[t]
		for k, i := range rows {
			x[i] -= vals[k] * xr
		}
	}
	// Backward U-solve, scattering contributions back into row space.
	for t := m - 1; t >= 0; t-- {
		r := lu.pivotRow[t]
		v := x[r]
		x[r] = 0
		if v == 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
			dst[lu.ord[t]] = 0
			continue
		}
		xt := v / lu.uDiag[t]
		dst[lu.ord[t]] = xt
		rows, vals := lu.uRows[t], lu.uVals[t]
		for k, i := range rows {
			x[i] -= vals[k] * xt
		}
	}
}

// applyEtas applies the eta file in pivot order to the slot-space vector w.
func (lu *basisLU) applyEtas(w []float64) {
	for k, slot := range lu.etaSlot {
		if w[slot] == 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
			continue
		}
		wr := w[slot] / lu.etaVal[lu.etaPivot[k]]
		pivotAt := lu.etaPivot[k]
		for p := lu.etaStart[k]; p < lu.etaStart[k+1]; p++ {
			if p == pivotAt {
				continue
			}
			w[lu.etaIdx[p]] -= lu.etaVal[p] * wr
		}
		w[slot] = wr
	}
}

// btran solves yᵀB = cᵀ: dst receives y in row space; c is indexed by basis
// slot and left untouched.
func (lu *basisLU) btran(dst, c []float64) {
	m := lu.m
	x := lu.x
	copy(x, c)
	// Transposed eta file, reverse order.
	for k := len(lu.etaSlot) - 1; k >= 0; k-- {
		slot := lu.etaSlot[k]
		pivotAt := lu.etaPivot[k]
		s := 0.0
		for p := lu.etaStart[k]; p < lu.etaStart[k+1]; p++ {
			if p == pivotAt {
				continue
			}
			if v := x[lu.etaIdx[p]]; v != 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
				s += lu.etaVal[p] * v
			}
		}
		x[slot] = (x[slot] - s) / lu.etaVal[pivotAt]
	}
	// Uᵀ-solve forward in step space.
	z := lu.z
	for t := 0; t < m; t++ {
		s := x[lu.ord[t]]
		rows, vals := lu.uRows[t], lu.uVals[t]
		for k, i := range rows {
			if v := z[lu.rowStep[i]]; v != 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
				s -= vals[k] * v
			}
		}
		z[t] = s / lu.uDiag[t]
	}
	// Lᵀ-solve backward into row space.
	for t := m - 1; t >= 0; t-- {
		s := z[t]
		rows, vals := lu.lRows[t], lu.lVals[t]
		for k, i := range rows {
			if v := dst[i]; v != 0 { //vmalloc:nondet-ok structural zero test on stored LU coefficients; zeros are created exactly, never computed
				s -= vals[k] * v
			}
		}
		dst[lu.pivotRow[t]] = s
	}
}
