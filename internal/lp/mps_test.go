package lp_test

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmalloc/internal/lp"
	"vmalloc/internal/presolve"
)

// netlibOptima lists the vendored corpus with optima in the solver's
// maximization form (minimizing files negate: e.g. transp's min 210 is a
// max of -210). These values gate both the raw simplex and the presolve
// backend in CI.
var netlibOptima = map[string]float64{
	"klee3.mps":   10000,
	"beale.mps":   0.05,
	"transp.mps":  -210,
	"diet.mps":    -7,
	"degen.mps":   2,
	"bndtest.mps": 7,
}

func parseNetlib(t *testing.T, name string) *lp.Problem {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "netlib", name))
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	p, err := lp.ParseMPS(f)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return p
}

// TestNetlibKnownOptima is the CI gate for solver correctness on the
// vendored corpus: every backend must reproduce the documented optimum to
// 1e-4.
func TestNetlibKnownOptima(t *testing.T) {
	backends := []lp.Backend{lp.Simplex{}, presolve.Backend{}}
	for name, want := range netlibOptima {
		p := parseNetlib(t, name)
		for _, be := range backends {
			sol, err := be.Solve(p)
			if err != nil {
				t.Errorf("%s via %s: %v", name, be.Name(), err)
				continue
			}
			if sol.Status != lp.Optimal {
				t.Errorf("%s via %s: status %v, want optimal", name, be.Name(), sol.Status)
				continue
			}
			if math.Abs(sol.Objective-want) > 1e-4 {
				t.Errorf("%s via %s: objective %.6f, want %.6f", name, be.Name(), sol.Objective, want)
			}
		}
	}
}

// TestMPSRoundTripNetlib checks writer canonicalization: parsing any valid
// file and writing it yields a form that is a fixed point of write→parse.
func TestMPSRoundTripNetlib(t *testing.T) {
	for name := range netlibOptima {
		p := parseNetlib(t, name)
		var first bytes.Buffer
		if err := lp.WriteMPS(&first, p); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		q, err := lp.ParseMPS(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reparse %s: %v", name, err)
		}
		var second bytes.Buffer
		if err := lp.WriteMPS(&second, q); err != nil {
			t.Fatalf("rewrite %s: %v", name, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: write->parse->write not byte-stable", name)
		}
	}
}

// randomProblem builds a small LP with the full variety of features the MPS
// layer must carry: all three senses, zero coefficients, empty columns,
// negative and fixed bounds, infinite uppers.
func randomProblem(rng *rand.Rand) *lp.Problem {
	n := 1 + rng.Intn(8)
	m := rng.Intn(7)
	p := &lp.Problem{
		Obj:   make([]float64, n),
		A:     make([][]float64, m),
		Sense: make([]lp.Sense, m),
		B:     make([]float64, m),
		Lower: make([]float64, n),
		Upper: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		if rng.Intn(4) > 0 {
			p.Obj[j] = math.Round(rng.NormFloat64()*100) / 16 // dyadic: exact in float
		}
		p.Lower[j] = 0
		if rng.Intn(3) == 0 {
			p.Lower[j] = math.Round(rng.NormFloat64()*32) / 16
		}
		p.Upper[j] = math.Inf(1)
		switch rng.Intn(3) {
		case 0:
			p.Upper[j] = p.Lower[j] + float64(rng.Intn(20))/4
		case 1:
			p.Upper[j] = p.Lower[j] // fixed
		}
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			if rng.Intn(2) == 0 {
				row[j] = math.Round(rng.NormFloat64()*64) / 16
			}
		}
		p.A[i] = row
		p.Sense[i] = lp.Sense(rng.Intn(3))
		p.B[i] = math.Round(rng.NormFloat64() * 8)
	}
	return p
}

// TestMPSRoundTripProperty: for random problems, write→parse→write is
// byte-stable and the parsed problem is solver-equivalent to the original.
func TestMPSRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng)
		var first bytes.Buffer
		if err := lp.WriteMPS(&first, p); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		q, err := lp.ParseMPS(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, first.String())
		}
		var second bytes.Buffer
		if err := lp.WriteMPS(&second, q); err != nil {
			t.Fatalf("trial %d: rewrite: %v", trial, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: write->parse->write not byte-stable:\n--- first\n%s\n--- second\n%s",
				trial, first.String(), second.String())
		}
		if q.NumVars() != p.NumVars() || q.NumRows() != p.NumRows() {
			t.Fatalf("trial %d: dims changed: %dx%d -> %dx%d",
				trial, p.NumRows(), p.NumVars(), q.NumRows(), q.NumVars())
		}
		sp, errP := lp.SolveSparse(p.Sparsify())
		sq, errQ := lp.SolveSparse(q)
		if (errP == nil) != (errQ == nil) {
			t.Fatalf("trial %d: solve error mismatch: %v vs %v", trial, errP, errQ)
		}
		if errP != nil {
			continue
		}
		if sp.Status != sq.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, sp.Status, sq.Status)
		}
		if sp.Status == lp.Optimal && math.Abs(sp.Objective-sq.Objective) > 1e-9*(1+math.Abs(sp.Objective)) {
			t.Fatalf("trial %d: objective %.12g vs %.12g", trial, sp.Objective, sq.Objective)
		}
	}
}

func TestMPSUnsupportedAndMalformed(t *testing.T) {
	var unsup *lp.MPSUnsupportedError
	var malformed *lp.MPSParseError
	cases := []struct {
		name string
		src  string
		want any
	}{
		{"ranges", "NAME X\nROWS\n N OBJ\n L R0\nCOLUMNS\n    A OBJ 1\nRANGES\n    RNG R0 4\nENDATA\n", &unsup},
		{"free bound", "NAME X\nROWS\n N OBJ\nCOLUMNS\n    A OBJ 1\nBOUNDS\n FR BND A\nENDATA\n", &unsup},
		{"mi bound", "NAME X\nROWS\n N OBJ\nCOLUMNS\n    A OBJ 1\nBOUNDS\n MI BND A\nENDATA\n", &unsup},
		{"marker", "NAME X\nROWS\n N OBJ\nCOLUMNS\n    M1 'MARKER' 'INTORG'\nENDATA\n", &unsup},
		{"second N row", "NAME X\nROWS\n N OBJ\n N OBJ2\nENDATA\n", &unsup},
		{"negative UP", "NAME X\nROWS\n N OBJ\nCOLUMNS\n    A OBJ 1\nBOUNDS\n UP BND A -3\nENDATA\n", &unsup},
		{"no endata", "NAME X\nROWS\n N OBJ\nCOLUMNS\n    A OBJ 1\n", &malformed},
		{"unknown row", "NAME X\nROWS\n N OBJ\nCOLUMNS\n    A NOPE 1\nENDATA\n", &malformed},
		{"bad number", "NAME X\nROWS\n N OBJ\nCOLUMNS\n    A OBJ abc\nENDATA\n", &malformed},
		{"no columns", "NAME X\nROWS\n N OBJ\nENDATA\n", &malformed},
		{"no objective", "NAME X\nROWS\n L R0\nCOLUMNS\n    A R0 1\nENDATA\n", &malformed},
		{"dup coefficient", "NAME X\nROWS\n N OBJ\n L R0\nCOLUMNS\n    A R0 1\n    A R0 2\nENDATA\n", &malformed},
	}
	for _, tc := range cases {
		_, err := lp.ParseMPS(strings.NewReader(tc.src))
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !errors.As(err, tc.want) {
			t.Errorf("%s: error %v has wrong type (want %T)", tc.name, err, tc.want)
		}
	}
}
