// MPS reader/writer for the canonical Problem form, so models built by
// internal/relax can be dumped for external solvers (GLPK, CPLEX, HiGHS) and
// reference instances can be vendored as fixtures (testdata/netlib). The
// reader accepts both fixed- and free-format files: section headers start in
// column one, data lines are indented, and fields are whitespace-delimited —
// the fixed-format column positions are a strict subset of that grammar for
// any file whose names contain no blanks. The writer emits canonical fixed
// format with deterministic names and shortest round-tripping numerals, so
// write→parse→write is byte-stable.
//
// MPS has no native objective sense; the historical convention is
// minimization. Problem is a maximization form, so the reader honours an
// OBJSENSE section (MIN negates the objective into max form, MAX keeps it)
// and defaults to MIN for bare files; the writer always emits OBJSENSE MAX
// with the coefficients as stored. Constructs with no Problem equivalent —
// RANGES sections, free (FR) and minus-infinity (MI) bounds, integrality
// markers — are rejected with *MPSUnsupportedError rather than silently
// mangled.

package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MPSParseError reports malformed MPS input.
type MPSParseError struct {
	Line int // 1-based line number, 0 when not tied to a line
	Msg  string
}

func (e *MPSParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("lp: mps line %d: %s", e.Line, e.Msg)
	}
	return "lp: mps: " + e.Msg
}

// MPSUnsupportedError reports a well-formed MPS construct that Problem
// cannot represent (RANGES, FR/MI/BV bounds, integrality markers).
type MPSUnsupportedError struct {
	Line    int
	Feature string
}

func (e *MPSUnsupportedError) Error() string {
	return fmt.Sprintf("lp: mps line %d: unsupported feature: %s", e.Line, e.Feature)
}

// mpsRow is a ROWS-section entry being assembled.
type mpsRow struct {
	sense Sense
	index int // constraint index; -1 for the objective row
}

// ParseMPS reads an MPS model and returns it in the solver's maximization
// form (a minimizing file has its objective negated). The constraint matrix
// comes back column-sparse with columns in order of first appearance; the
// result passes Validate. Names are not retained: Problem has no name
// fields, and the writer regenerates canonical ones.
func ParseMPS(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	const (
		secNone = iota
		secObjsense
		secRows
		secColumns
		secRHS
		secBounds
	)
	section := secNone
	minimize := true // historical default
	sawObjsense := false

	rows := map[string]*mpsRow{}
	rowOrder := []string{} // constraint rows in declaration order
	objRow := ""

	cols := map[string]int{}
	colOrder := []string{}
	type coef struct {
		row int // -1 = objective
		v   float64
	}
	entries := map[int][]coef{} // col index -> coefficients
	rhs := map[int]float64{}    // row index -> rhs
	type bnd struct {
		l, u       float64
		hasL, hasU bool
	}
	bounds := map[int]*bnd{}

	lineNo := 0
	ended := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if ended {
			if strings.TrimSpace(line) != "" {
				return nil, &MPSParseError{lineNo, "content after ENDATA"}
			}
			continue
		}
		if i := strings.IndexByte(line, '*'); i == 0 {
			continue // comment line
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if line[0] != ' ' && line[0] != '\t' {
			// Section header.
			fields := strings.Fields(line)
			switch fields[0] {
			case "NAME":
				section = secNone // name operand ignored
			case "OBJSENSE":
				section = secObjsense
			case "ROWS":
				section = secRows
			case "COLUMNS":
				section = secColumns
			case "RHS":
				section = secRHS
			case "BOUNDS":
				section = secBounds
			case "RANGES":
				return nil, &MPSUnsupportedError{lineNo, "RANGES section"}
			case "ENDATA":
				ended = true
			default:
				return nil, &MPSParseError{lineNo, "unknown section " + fields[0]}
			}
			continue
		}

		fields := strings.Fields(line)
		switch section {
		case secObjsense:
			if sawObjsense {
				return nil, &MPSParseError{lineNo, "duplicate OBJSENSE value"}
			}
			sawObjsense = true
			switch fields[0] {
			case "MIN", "MINIMIZE":
				minimize = true
			case "MAX", "MAXIMIZE":
				minimize = false
			default:
				return nil, &MPSParseError{lineNo, "bad OBJSENSE " + fields[0]}
			}
		case secRows:
			if len(fields) != 2 {
				return nil, &MPSParseError{lineNo, "ROWS entry needs a type and a name"}
			}
			typ, name := fields[0], fields[1]
			if _, dup := rows[name]; dup {
				return nil, &MPSParseError{lineNo, "duplicate row " + name}
			}
			switch typ {
			case "N":
				if objRow != "" {
					return nil, &MPSUnsupportedError{lineNo, "second free (N) row " + name}
				}
				objRow = name
				rows[name] = &mpsRow{index: -1}
			case "L":
				rows[name] = &mpsRow{sense: LE, index: len(rowOrder)}
				rowOrder = append(rowOrder, name)
			case "G":
				rows[name] = &mpsRow{sense: GE, index: len(rowOrder)}
				rowOrder = append(rowOrder, name)
			case "E":
				rows[name] = &mpsRow{sense: EQ, index: len(rowOrder)}
				rowOrder = append(rowOrder, name)
			default:
				return nil, &MPSParseError{lineNo, "bad row type " + typ}
			}
		case secColumns:
			if len(fields) >= 3 && fields[1] == "'MARKER'" {
				return nil, &MPSUnsupportedError{lineNo, "integrality marker"}
			}
			if len(fields) != 3 && len(fields) != 5 {
				return nil, &MPSParseError{lineNo, "COLUMNS entry needs 1 or 2 row/value pairs"}
			}
			name := fields[0]
			j, ok := cols[name]
			if !ok {
				j = len(colOrder)
				cols[name] = j
				colOrder = append(colOrder, name)
			}
			for k := 1; k < len(fields); k += 2 {
				row, ok := rows[fields[k]]
				if !ok {
					return nil, &MPSParseError{lineNo, "unknown row " + fields[k]}
				}
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, &MPSParseError{lineNo, "bad value " + fields[k+1]}
				}
				for _, e := range entries[j] {
					if e.row == row.index {
						return nil, &MPSParseError{lineNo, "duplicate coefficient for column " + name + " in row " + fields[k]}
					}
				}
				entries[j] = append(entries[j], coef{row.index, v})
			}
		case secRHS:
			if len(fields) != 3 && len(fields) != 5 {
				return nil, &MPSParseError{lineNo, "RHS entry needs 1 or 2 row/value pairs"}
			}
			for k := 1; k < len(fields); k += 2 {
				row, ok := rows[fields[k]]
				if !ok {
					return nil, &MPSParseError{lineNo, "unknown row " + fields[k]}
				}
				if row.index < 0 {
					return nil, &MPSUnsupportedError{lineNo, "objective-row RHS (constant offset)"}
				}
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, &MPSParseError{lineNo, "bad value " + fields[k+1]}
				}
				rhs[row.index] = v
			}
		case secBounds:
			if len(fields) < 3 {
				return nil, &MPSParseError{lineNo, "BOUNDS entry needs a type, set name, and column"}
			}
			typ, name := fields[0], fields[2]
			j, ok := cols[name]
			if !ok {
				return nil, &MPSParseError{lineNo, "bound on unknown column " + name}
			}
			b := bounds[j]
			if b == nil {
				b = &bnd{}
				bounds[j] = b
			}
			switch typ {
			case "FR", "MI", "BV", "LI", "UI":
				return nil, &MPSUnsupportedError{lineNo, "bound type " + typ}
			}
			var v float64
			if typ != "PL" {
				if len(fields) != 4 {
					return nil, &MPSParseError{lineNo, "bound type " + typ + " needs a value"}
				}
				var err error
				v, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, &MPSParseError{lineNo, "bad value " + fields[3]}
				}
			}
			switch typ {
			case "UP":
				if v < 0 && !b.hasL {
					// Classic MPS gives UP<0 an implied -inf lower bound,
					// which Problem cannot hold.
					return nil, &MPSUnsupportedError{lineNo, "negative UP bound without explicit lower bound (implies -inf)"}
				}
				b.u, b.hasU = v, true
			case "LO":
				b.l, b.hasL = v, true
			case "FX":
				b.l, b.hasL = v, true
				b.u, b.hasU = v, true
			case "PL":
				b.u, b.hasU = math.Inf(1), true
			default:
				return nil, &MPSParseError{lineNo, "bad bound type " + typ}
			}
		default:
			return nil, &MPSParseError{lineNo, "data line outside any section"}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !ended {
		return nil, &MPSParseError{lineNo, "missing ENDATA"}
	}
	if objRow == "" {
		return nil, &MPSParseError{0, "no objective (N) row"}
	}
	if len(colOrder) == 0 {
		return nil, &MPSParseError{0, "no columns"}
	}

	n, m := len(colOrder), len(rowOrder)
	p := &Problem{
		Obj:   make([]float64, n),
		Sense: make([]Sense, m),
		B:     make([]float64, m),
		Lower: make([]float64, n),
		Upper: make([]float64, n),
	}
	for _, name := range rowOrder {
		r := rows[name]
		p.Sense[r.index] = r.sense
	}
	for i, v := range rhs { //vmalloc:nondet-ok dense RHS slots are written independently; result is order-free
		p.B[i] = v
	}
	bld := NewSparseBuilder(n)
	for j := range colOrder {
		for _, e := range entries[j] {
			if e.row < 0 {
				p.Obj[j] = e.v
				continue
			}
			bld.Add(e.row, j, e.v)
		}
	}
	p.Cols = bld.Build(m)
	for j := 0; j < n; j++ {
		p.Upper[j] = math.Inf(1)
		if b := bounds[j]; b != nil {
			if b.hasL {
				p.Lower[j] = b.l
			}
			if b.hasU {
				p.Upper[j] = b.u
			}
		}
	}
	if minimize {
		for j := range p.Obj {
			p.Obj[j] = -p.Obj[j]
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("lp: mps model invalid after parse: %w", err)
	}
	return p, nil
}

// mpsName returns the canonical generated name for a row or column.
func mpsColName(j int) string { return "X" + strconv.Itoa(j) }
func mpsRowName(i int) string { return "R" + strconv.Itoa(i) }

// mpsNum renders a value with the shortest representation that ParseFloat
// recovers exactly, keeping write→parse→write byte-stable.
func mpsNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteMPS writes the problem in canonical fixed-format MPS: OBJSENSE MAX
// (coefficients as stored), generated names COST/RHS/BND and X<j>/R<i>, one
// coefficient per COLUMNS line, zero objective and RHS entries omitted
// (except that a column with no matrix entries keeps its objective entry so
// it stays declared). Output is deterministic, so writing, parsing, and
// writing again reproduces the bytes exactly.
func WriteMPS(w io.Writer, p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	sp := p.Sparsify()
	c := sp.Cols
	bw := bufio.NewWriter(w)

	field := func(s string) string {
		if len(s) < 10 {
			return s + strings.Repeat(" ", 10-len(s))
		}
		return s + "  "
	}

	fmt.Fprintln(bw, "NAME          VMALLOC")
	fmt.Fprintln(bw, "OBJSENSE")
	fmt.Fprintln(bw, "    MAX")
	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintln(bw, " N  COST")
	for i, s := range sp.Sense {
		t := "L"
		switch s {
		case GE:
			t = "G"
		case EQ:
			t = "E"
		}
		fmt.Fprintf(bw, " %s  %s\n", t, mpsRowName(i))
	}
	fmt.Fprintln(bw, "COLUMNS")
	for j := 0; j < c.N; j++ {
		name := field(mpsColName(j))
		wrote := false
		if sp.Obj[j] != 0 { //vmalloc:nondet-ok structural zero test deciding MPS section membership
			fmt.Fprintf(bw, "    %s%s%s\n", name, field("COST"), mpsNum(sp.Obj[j]))
			wrote = true
		}
		for k := c.ColPtr[j]; k < c.ColPtr[j+1]; k++ {
			fmt.Fprintf(bw, "    %s%s%s\n", name, field(mpsRowName(c.RowIdx[k])), mpsNum(c.Val[k]))
			wrote = true
		}
		if !wrote {
			// Columns only exist through COLUMNS entries; declare with an
			// explicit zero objective coefficient.
			fmt.Fprintf(bw, "    %s%s0\n", name, field("COST"))
		}
	}
	fmt.Fprintln(bw, "RHS")
	for i, b := range sp.B {
		if b != 0 { //vmalloc:nondet-ok structural zero test deciding MPS section membership
			fmt.Fprintf(bw, "    %s%s%s\n", field("RHS"), field(mpsRowName(i)), mpsNum(b))
		}
	}
	needBounds := false
	for j := 0; j < c.N; j++ {
		if lowerOf(sp, j) != 0 || !math.IsInf(upperOf(sp, j), 1) { //vmalloc:nondet-ok structural zero/default-bound test deciding MPS section membership
			needBounds = true
			break
		}
	}
	if needBounds {
		fmt.Fprintln(bw, "BOUNDS")
		for j := 0; j < c.N; j++ {
			l, u := lowerOf(sp, j), upperOf(sp, j)
			switch {
			case l == u: //vmalloc:nondet-ok exact bound equality encodes a fixed variable; bounds are stored, not computed
				fmt.Fprintf(bw, " FX %s%s%s\n", field("BND"), field(mpsColName(j)), mpsNum(l))
			default:
				if l != 0 { //vmalloc:nondet-ok structural zero test deciding MPS section membership
					fmt.Fprintf(bw, " LO %s%s%s\n", field("BND"), field(mpsColName(j)), mpsNum(l))
				}
				if !math.IsInf(u, 1) {
					fmt.Fprintf(bw, " UP %s%s%s\n", field("BND"), field(mpsColName(j)), mpsNum(u))
				}
			}
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

func lowerOf(p *Problem, j int) float64 {
	if p.Lower == nil {
		return 0
	}
	return p.Lower[j]
}

func upperOf(p *Problem, j int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[j]
}
