// Sparse-matrix support for the revised simplex: compressed-sparse-column
// (CSC) constraint storage, a triplet builder for row-oriented encoders such
// as internal/relax, and warm-started solve entry points that reuse the
// optimal basis of a previous solve. The allocation LP of the paper (Eqs.
// 1–7) touches only a handful of variables per constraint, so the CSC form
// cuts both memory and per-iteration cost from O(m·n) to O(m² + nnz), and
// warm starts collapse re-solves of perturbed instances (rounding retries,
// branch-and-bound children) to a refactorization plus a few pivots.

package lp

import (
	"fmt"
	"math"
)

// CSC is a constraint matrix in compressed-sparse-column form: the nonzeros
// of column j are Val[ColPtr[j]:ColPtr[j+1]], sitting in rows
// RowIdx[ColPtr[j]:ColPtr[j+1]].
type CSC struct {
	M, N   int
	ColPtr []int
	RowIdx []int
	Val    []float64
}

// NNZ returns the number of stored entries.
func (c *CSC) NNZ() int { return len(c.Val) }

// validate checks structural consistency.
func (c *CSC) validate() error {
	if len(c.ColPtr) != c.N+1 {
		return fmt.Errorf("lp: CSC ColPtr has length %d, want %d", len(c.ColPtr), c.N+1)
	}
	if c.ColPtr[0] != 0 || c.ColPtr[c.N] != len(c.Val) || len(c.RowIdx) != len(c.Val) {
		return fmt.Errorf("lp: CSC pointer/entry mismatch: ColPtr ends at %d with %d rows, %d values",
			c.ColPtr[c.N], len(c.RowIdx), len(c.Val))
	}
	for j := 0; j < c.N; j++ {
		if c.ColPtr[j] > c.ColPtr[j+1] {
			return fmt.Errorf("lp: CSC ColPtr decreases at column %d", j)
		}
	}
	for k, r := range c.RowIdx {
		if r < 0 || r >= c.M {
			return fmt.Errorf("lp: CSC row index %d out of range [0,%d) at entry %d", r, c.M, k)
		}
	}
	return nil
}

// Dense materializes the matrix as one dense row per constraint.
func (c *CSC) Dense() [][]float64 {
	a := make([][]float64, c.M)
	for i := range a {
		a[i] = make([]float64, c.N)
	}
	for j := 0; j < c.N; j++ {
		for k := c.ColPtr[j]; k < c.ColPtr[j+1]; k++ {
			a[c.RowIdx[k]][j] = c.Val[k]
		}
	}
	return a
}

// NewCSCFromDense compresses a dense row-major matrix with numVars columns,
// dropping zeros.
func NewCSCFromDense(a [][]float64, numVars int) *CSC {
	b := NewSparseBuilder(numVars)
	for i, row := range a {
		for j, v := range row {
			b.Add(i, j, v)
		}
	}
	return b.Build(len(a))
}

// Sparsify returns a copy of the problem with the constraint matrix in CSC
// form (the copy shares everything else). Problems already sparse are
// returned unchanged.
func (p *Problem) Sparsify() *Problem {
	if p.Cols != nil {
		return p
	}
	q := *p
	q.Cols = NewCSCFromDense(p.A, p.NumVars())
	q.A = nil
	return &q
}

// SparseBuilder accumulates matrix entries in any order (typically row by
// row, the natural order for constraint encoders) and compresses them into
// CSC form. Zero entries are dropped at Add time.
type SparseBuilder struct {
	n    int
	rows []int
	cols []int
	vals []float64
}

// NewSparseBuilder returns a builder for a matrix with numVars columns.
func NewSparseBuilder(numVars int) *SparseBuilder {
	return &SparseBuilder{n: numVars}
}

// Add records entry (row, col) = val; zero values are ignored. Each
// (row, col) position must be added at most once — duplicates are not
// summed.
func (b *SparseBuilder) Add(row, col int, val float64) {
	if val == 0 { //vmalloc:nondet-ok structural zero dropped when building the sparse matrix; exact by construction
		return
	}
	b.rows = append(b.rows, row)
	b.cols = append(b.cols, col)
	b.vals = append(b.vals, val)
}

// Build compresses the recorded triplets into a CSC matrix with numRows
// rows. Entries within a column keep their insertion order.
func (b *SparseBuilder) Build(numRows int) *CSC {
	c := &CSC{
		M:      numRows,
		N:      b.n,
		ColPtr: make([]int, b.n+1),
		RowIdx: make([]int, len(b.vals)),
		Val:    make([]float64, len(b.vals)),
	}
	for _, j := range b.cols {
		c.ColPtr[j+1]++
	}
	for j := 0; j < b.n; j++ {
		c.ColPtr[j+1] += c.ColPtr[j]
	}
	next := append([]int(nil), c.ColPtr[:b.n]...)
	for k, j := range b.cols {
		at := next[j]
		next[j]++
		c.RowIdx[at] = b.rows[k]
		c.Val[at] = b.vals[k]
	}
	return c
}

// Basis is a snapshot of the simplex basis at the end of a solve: which
// column is basic in each row, and at which bound every nonbasic column
// rests. It is opaque to callers and valid for warm-starting any problem
// with the same constraint-matrix shape (same rows, variables and senses);
// objective, right-hand side and bounds may differ.
type Basis struct {
	m, nStruct, nReal int
	cols              []int
	status            []varStatus
}

// BasisVarStatus is the exported view of a simplex variable's position in a
// Basis: resting at its lower bound, resting at its upper bound, or basic.
type BasisVarStatus int8

const (
	// BasisAtLower marks a nonbasic variable at its lower bound.
	BasisAtLower BasisVarStatus = BasisVarStatus(atLower)
	// BasisAtUpper marks a nonbasic variable at its upper bound.
	BasisAtUpper BasisVarStatus = BasisVarStatus(atUpper)
	// BasisBasic marks a basic variable.
	BasisBasic BasisVarStatus = BasisVarStatus(basic)
)

// SlackColumns returns, for each row, the equality-form column index of its
// slack variable, or -1 for EQ rows (which have none). This is the column
// convention shared by the solvers and Basis: structural variables occupy
// columns 0..numStruct-1, slacks are assigned to non-EQ rows in row order
// starting at numStruct, and the artificial of row i is numReal+i where
// numReal = numStruct + (number of non-EQ rows).
func SlackColumns(senses []Sense, numStruct int) []int {
	slackOf := make([]int, len(senses))
	next := numStruct
	for i, s := range senses {
		if s == EQ {
			slackOf[i] = -1
		} else {
			slackOf[i] = next
			next++
		}
	}
	return slackOf
}

// Dims returns the basis shape: constraint rows, structural columns, and
// real (structural + slack) columns. Artificial columns are numReal..
// numReal+m-1, with the artificial of row i at numReal+i.
func (b *Basis) Dims() (m, numStruct, numReal int) {
	return b.m, b.nStruct, b.nReal
}

// Export returns the basis contents in the equality-form column convention
// documented on SlackColumns: basicByRow[i] is the column basic in row i
// (possibly an artificial >= numReal for a redundant row), and nonbasic[j]
// is the resting status of every real column j < numReal. Both slices are
// fresh copies.
func (b *Basis) Export() (basicByRow []int, nonbasic []BasisVarStatus) {
	basicByRow = append([]int(nil), b.cols...)
	nonbasic = make([]BasisVarStatus, len(b.status))
	for j, st := range b.status {
		nonbasic[j] = BasisVarStatus(st)
	}
	return basicByRow, nonbasic
}

// NewBasis assembles a Basis from explicit contents, the inverse of Export:
// senses give the row senses of the target problem (fixing the slack-column
// layout per SlackColumns), basicByRow names the column basic in each row,
// and nonbasic gives the resting status of every real column (entries for
// basic columns are ignored). It validates shape and duplicates only;
// numerical fitness (nonsingularity, primal feasibility) is checked when the
// basis is installed, where a failure falls back to a cold start.
func NewBasis(senses []Sense, numStruct int, basicByRow []int, nonbasic []BasisVarStatus) (*Basis, error) {
	m := len(senses)
	if len(basicByRow) != m {
		return nil, fmt.Errorf("lp: NewBasis: %d basic columns for %d rows", len(basicByRow), m)
	}
	nSlack := 0
	for _, s := range senses {
		if s != EQ {
			nSlack++
		}
	}
	nReal := numStruct + nSlack
	if len(nonbasic) != nReal {
		return nil, fmt.Errorf("lp: NewBasis: %d statuses for %d real columns", len(nonbasic), nReal)
	}
	b := &Basis{
		m: m, nStruct: numStruct, nReal: nReal,
		cols:   append([]int(nil), basicByRow...),
		status: make([]varStatus, nReal),
	}
	for j, st := range nonbasic {
		switch st {
		case BasisAtLower, BasisAtUpper, BasisBasic:
			b.status[j] = varStatus(st)
		default:
			return nil, fmt.Errorf("lp: NewBasis: invalid status %d for column %d", st, j)
		}
	}
	seen := make(map[int]bool, m)
	for i, col := range basicByRow {
		if col < 0 || col >= nReal+m || seen[col] {
			return nil, fmt.Errorf("lp: NewBasis: invalid or duplicate basic column %d in row %d", col, i)
		}
		seen[col] = true
		if col < nReal {
			b.status[col] = basic
		}
	}
	return b, nil
}

// captureBasis snapshots the solver's current basis.
func (rv *revised) captureBasis() *Basis {
	return &Basis{
		m: rv.m, nStruct: rv.nStruct, nReal: rv.nReal,
		cols:   append([]int(nil), rv.basis...),
		status: append([]varStatus(nil), rv.status[:rv.nReal]...),
	}
}

// installBasis seeds the solver from a previously captured basis: nonbasic
// statuses are clamped to the new bounds, the basis matrix is refactorized
// from scratch, and the implied basic values are checked for primal
// feasibility. It reports false — leaving the solver in an undefined state,
// so callers must rebuild it — when the basis does not fit the problem
// shape, is singular, or is primal infeasible under the new bounds.
func (rv *revised) installBasis(wb *Basis) bool {
	if wb == nil || wb.m != rv.m || wb.nStruct != rv.nStruct || wb.nReal != rv.nReal {
		return false
	}
	for j := 0; j < rv.nReal; j++ {
		st := wb.status[j]
		if st == basic || (st == atUpper && math.IsInf(rv.upper[j], 1)) {
			st = atLower
		}
		rv.status[j] = st
	}
	// Artificials are disabled exactly as after a completed phase 1; a
	// basic artificial (redundant row) is allowed but must sit at ~0.
	for j := rv.nReal; j < rv.n; j++ {
		rv.status[j] = atLower
		rv.banned[j] = true
		rv.upper[j] = 0
		rv.cost[j] = 0
	}
	for j := range rv.inBasis {
		rv.inBasis[j] = -1
	}
	seen := make([]bool, rv.n)
	for i, col := range wb.cols {
		if col < 0 || col >= rv.n || seen[col] {
			return false
		}
		seen[col] = true
		rv.basis[i] = col
		rv.inBasis[col] = i
		rv.status[col] = basic
	}
	if !rv.lu.factorize(rv.basisCols()) {
		return false
	}
	rv.refreshXB()
	for i, col := range rv.basis {
		v := rv.xB[i]
		if v < -feasTol || v > rv.upper[col]+feasTol {
			return false
		}
		// Clamp roundoff so the ratio test starts from clean values.
		if v < 0 {
			rv.xB[i] = 0
		} else if v > rv.upper[col] {
			rv.xB[i] = rv.upper[col]
		}
	}
	return true
}

// SolveSparse maximizes the problem with the sparse revised simplex. It
// shares the Problem/Solution API with Solve and accepts either matrix form,
// but never densifies: column-sparse problems run directly on their CSC
// storage. The returned Solution carries the optimal Basis for
// warm-starting.
func SolveSparse(p *Problem) (*Solution, error) {
	return SolveSparseWarm(p, nil)
}

// SolveSparseWarm is SolveSparse warm-started from the basis of a previous
// solve of a same-shaped problem (bounds, objective and right-hand side may
// differ). When the basis still fits and remains primal feasible the two
// simplex phases collapse into a refactorization plus the few pivots the
// perturbation requires; otherwise the solver falls back to a cold start, so
// a stale or mismatched basis costs only the failed feasibility check.
//
// When the iteration cap (Problem.MaxIter, or the automatic cap) is hit the
// returned error wraps ErrIterLimit and the Solution — still returned —
// carries Status == IterLimit plus the iteration count.
func SolveSparseWarm(p *Problem, warm *Basis) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	q, lower := p.shiftLower()
	sol := runRevised(q, warm)
	unshiftSolution(sol, p.Obj, lower)
	if sol.Status == IterLimit {
		return sol, fmt.Errorf("%w (after %d iterations)", ErrIterLimit, sol.Iters)
	}
	return sol, nil
}
