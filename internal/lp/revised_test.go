package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRevisedSimpleMaximization(t *testing.T) {
	p := &Problem{
		Obj:   []float64{3, 5},
		A:     [][]float64{{1, 0}, {0, 2}, {3, 2}},
		Sense: []Sense{LE, LE, LE},
		B:     []float64{4, 12, 18},
	}
	s, err := SolveRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-36) > 1e-8 {
		t.Fatalf("got %v obj %v", s.Status, s.Objective)
	}
	checkFeasible(t, p, s.X)
	checkDuality(t, p, s)
}

func TestRevisedStatuses(t *testing.T) {
	infeasible := &Problem{
		Obj: []float64{1}, A: [][]float64{{1}, {1}},
		Sense: []Sense{GE, LE}, B: []float64{5, 2},
	}
	s, err := SolveRevised(infeasible)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v", s.Status)
	}
	unbounded := &Problem{
		Obj: []float64{1, 0}, A: [][]float64{{0, 1}},
		Sense: []Sense{LE}, B: []float64{1},
	}
	s, err = SolveRevised(unbounded)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v", s.Status)
	}
}

func TestRevisedEqualityAndNegativeRHS(t *testing.T) {
	p := &Problem{
		Obj:   []float64{1, 2},
		A:     [][]float64{{1, 1}, {-1, 0}},
		Sense: []Sense{EQ, LE},
		B:     []float64{3, -0.5}, // x >= 0.5
	}
	s, err := SolveRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	// Maximize x+2y with x+y=3, x>=0.5 -> x=0.5, y=2.5, obj 5.5.
	if math.Abs(s.Objective-5.5) > 1e-8 {
		t.Fatalf("obj = %v (x=%v)", s.Objective, s.X)
	}
	checkDuality(t, p, s)
}

// Cross-check: on random LPs the dense and revised solvers must agree on
// status and optimal objective, and both solutions must be feasible.
func TestRevisedMatchesDenseOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 400; iter++ {
		n := 2 + rng.Intn(5)
		rows := 1 + rng.Intn(6)
		p := &Problem{Obj: make([]float64, n), Upper: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Obj[j] = rng.NormFloat64()
			if rng.Float64() < 0.3 {
				p.Upper[j] = math.Inf(1)
			} else {
				p.Upper[j] = 0.5 + 3*rng.Float64()
			}
		}
		for i := 0; i < rows; i++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					row[j] = rng.NormFloat64()
				}
			}
			p.A = append(p.A, row)
			p.Sense = append(p.Sense, Sense(rng.Intn(3)))
			p.B = append(p.B, rng.NormFloat64())
		}
		dense, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := SolveRevised(p)
		if err != nil {
			t.Fatal(err)
		}
		if dense.Status != rev.Status {
			t.Fatalf("iter %d: status dense=%v revised=%v\nproblem %+v", iter, dense.Status, rev.Status, p)
		}
		if dense.Status != Optimal {
			continue
		}
		checkFeasible(t, p, rev.X)
		if math.Abs(dense.Objective-rev.Objective) > 1e-5*(1+math.Abs(dense.Objective)) {
			t.Fatalf("iter %d: objective dense=%v revised=%v", iter, dense.Objective, rev.Objective)
		}
		checkDuality(t, p, rev)
	}
}

// Larger sparse LPs: the class internal/relax produces.
func TestRevisedModerateSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 5; iter++ {
		n, m := 150, 100
		p := &Problem{Obj: make([]float64, n), Upper: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Obj[j] = rng.Float64()
			p.Upper[j] = 1
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.1 {
					row[j] = rng.Float64()
				}
			}
			p.A = append(p.A, row)
			p.Sense = append(p.Sense, LE)
			p.B = append(p.B, 0.5+rng.Float64())
		}
		dense, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := SolveRevised(p)
		if err != nil {
			t.Fatal(err)
		}
		if dense.Status != Optimal || rev.Status != Optimal {
			t.Fatalf("iter %d: statuses %v/%v", iter, dense.Status, rev.Status)
		}
		if math.Abs(dense.Objective-rev.Objective) > 1e-5*(1+dense.Objective) {
			t.Fatalf("iter %d: %v vs %v", iter, dense.Objective, rev.Objective)
		}
		checkFeasible(t, p, rev.X)
	}
}

func BenchmarkRevisedVsDenseSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, m := 240, 160
	p := &Problem{Obj: make([]float64, n), Upper: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Obj[j] = rng.Float64()
		p.Upper[j] = 1
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.05 {
				row[j] = rng.Float64()
			}
		}
		p.A = append(p.A, row)
		p.Sense = append(p.Sense, LE)
		p.B = append(p.B, 0.5+rng.Float64())
	}
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("revised", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveRevised(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
