// Package lp implements a dense two-phase primal simplex solver for linear
// programs with bounded variables. It stands in for the GLPK/CPLEX back-ends
// used in the paper (§3.2): the resource-allocation relaxation (Eqs. 1–7)
// only needs a correct optimum, not an industrial-strength solver.
//
// The solver maximizes c·x subject to A x {<=,>=,=} b and 0 <= x <= u, where
// upper bounds may be +Inf. Bounds are handled implicitly (bounded-variable
// simplex with bound flips) so the [0,1] box constraints of the relaxation do
// not inflate the row count.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relational operator of one constraint row.
type Sense int

const (
	// LE is a <= constraint.
	LE Sense = iota
	// GE is a >= constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no feasible point exists.
	Infeasible
	// Unbounded means the objective is unbounded above.
	Unbounded
	// IterLimit means the iteration cap was hit before convergence.
	IterLimit
)

// ErrIterLimit is returned (wrapped) by SolveSparse and SolveSparseWarm when
// the simplex hits its iteration cap before reaching optimality; the
// accompanying Solution still reports Status == IterLimit and the iteration
// count. Test with errors.Is.
var ErrIterLimit = errors.New("lp: simplex iteration limit reached")

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is a linear program in the solver's canonical form: maximize Obj·x
// subject to the rows of the constraint matrix, with every variable bounded
// to [Lower[j], Upper[j]] (Lower defaults to 0).
//
// The constraint matrix is given either dense (A, one row per constraint) or
// column-sparse (Cols); exactly one of the two may be non-nil. The sparse
// form is what internal/relax emits and what SolveSparse consumes without
// densification.
type Problem struct {
	// Obj holds the objective coefficients (length = number of variables).
	Obj []float64
	// A holds one dense coefficient row per constraint. Nil when Cols is set.
	A [][]float64
	// Cols holds the constraint matrix in compressed-sparse-column form.
	// Nil when A is set.
	Cols *CSC
	// Sense holds the relational operator of each row.
	Sense []Sense
	// B holds the right-hand side of each row.
	B []float64
	// Upper holds per-variable upper bounds; math.Inf(1) means unbounded
	// above. A nil Upper means all variables are unbounded above.
	Upper []float64
	// Lower holds per-variable lower bounds; nil means all zero. Lower
	// bounds must be finite and not exceed the matching upper bound. The
	// solvers handle them by variable shifting, so nonzero lower bounds do
	// not inflate the row count (internal/milp fixes binaries to 1 this way).
	Lower []float64
	// MaxIter caps the total simplex iterations across both phases. Zero
	// selects the automatic cap 200*(rows+columns+10), which is generous
	// enough that only genuinely degenerate instances hit it (the solvers
	// switch to Bland's rule after a degenerate stall, so the cap bounds
	// slow convergence, not cycling). When the cap is hit the sparse
	// solvers return ErrIterLimit alongside a Status == IterLimit solution.
	MaxIter int
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// NumRows returns the number of constraints.
func (p *Problem) NumRows() int {
	if p.Cols != nil {
		return p.Cols.M
	}
	return len(p.A)
}

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	n := p.NumVars()
	if n == 0 {
		return errors.New("lp: no variables")
	}
	if p.Cols != nil {
		if p.A != nil {
			return errors.New("lp: both A and Cols set; supply exactly one constraint matrix")
		}
		if err := p.Cols.validate(); err != nil {
			return err
		}
		if p.Cols.N != n {
			return fmt.Errorf("lp: Cols has %d columns, want %d", p.Cols.N, n)
		}
		if len(p.B) != p.Cols.M || len(p.Sense) != p.Cols.M {
			return fmt.Errorf("lp: rows mismatch: |Cols|=%d |B|=%d |Sense|=%d", p.Cols.M, len(p.B), len(p.Sense))
		}
	} else {
		if len(p.B) != len(p.A) || len(p.Sense) != len(p.A) {
			return fmt.Errorf("lp: rows mismatch: |A|=%d |B|=%d |Sense|=%d", len(p.A), len(p.B), len(p.Sense))
		}
		for i, row := range p.A {
			if len(row) != n {
				return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
			}
		}
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("lp: |Upper|=%d, want %d", len(p.Upper), n)
	}
	if p.Lower != nil && len(p.Lower) != n {
		return fmt.Errorf("lp: |Lower|=%d, want %d", len(p.Lower), n)
	}
	for j := 0; j < n; j++ {
		l, u := 0.0, math.Inf(1)
		if p.Lower != nil {
			l = p.Lower[j]
		}
		if p.Upper != nil {
			u = p.Upper[j]
		}
		if math.IsNaN(u) || u < l {
			return fmt.Errorf("lp: invalid bounds [%g,%g] for variable %d", l, u, j)
		}
		if math.IsInf(l, 0) || math.IsNaN(l) {
			return fmt.Errorf("lp: invalid lower bound %g for variable %d", l, j)
		}
		if p.Lower == nil && u < 0 {
			return fmt.Errorf("lp: invalid upper bound %g for variable %d", u, j)
		}
	}
	if p.MaxIter < 0 {
		return fmt.Errorf("lp: negative MaxIter %d", p.MaxIter)
	}
	return nil
}

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // values of the structural variables
	Objective float64   // objective value at X (valid when Status == Optimal)
	Iters     int       // simplex iterations performed across both phases
	// Duals holds one dual value per constraint row (valid when Status ==
	// Optimal). For this maximization form, LE rows have Duals[i] >= 0 and
	// GE rows Duals[i] <= 0 at optimality; together with the upper-bound
	// duals they satisfy strong duality:
	// Objective = Duals·B + Σ_j BoundDuals[j]·Upper[j].
	Duals []float64
	// BoundDuals holds the dual value of each variable's upper bound
	// (nonzero only for variables at their upper bound). For problems with
	// nonzero lower bounds the strong-duality identity additionally involves
	// lower-bound duals, which are not reported.
	BoundDuals []float64
	// Basis is the optimal simplex basis, populated by the sparse/revised
	// solvers when Status == Optimal. Pass it to SolveSparseWarm to
	// warm-start the next solve of a same-shaped problem.
	Basis *Basis
	// WarmStarted reports whether a supplied warm basis was actually used
	// (a stale or mismatched basis makes the solver fall back to a cold
	// start rather than fail).
	WarmStarted bool
	// Refactorizations counts LU rebuilds of the basis (sparse/revised
	// solver only; the dense tableau never factorizes).
	Refactorizations int
	// BlandActivations counts switches from Dantzig pricing into Bland's
	// anti-cycling rule after a degenerate stall.
	BlandActivations int
	// Presolve carries the reduction counters when the problem was solved
	// through the presolving backend; nil for a direct simplex solve.
	Presolve *PresolveStats
}

// PresolveStats summarizes what presolve eliminated before the simplex ran.
// It lives in this package (not internal/presolve) so Solution can carry it
// without an import cycle; the presolving backend fills it in.
type PresolveStats struct {
	RowsEliminated  int `json:"rows_eliminated"`
	ColsEliminated  int `json:"cols_eliminated"`
	FixedCols       int `json:"fixed_cols"`
	DroppedRows     int `json:"dropped_rows"`
	SubstCols       int `json:"subst_cols"`
	BoundsTightened int `json:"bounds_tightened"`
	DoubletonSlacks int `json:"doubleton_slacks"`
}

const (
	pivotTol   = 1e-9
	costTol    = 1e-9
	feasTol    = 1e-7
	zeroClampT = 1e-11
)

// iterCap resolves the effective iteration limit: a caller-supplied
// Problem.MaxIter when positive, else the automatic cap.
func iterCap(maxIter, m, n int) int {
	if maxIter > 0 {
		return maxIter
	}
	return 200 * (m + n + 10)
}

// variable status within the simplex dictionary.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
)

// tableau is the mutable simplex state: T = B^{-1} * [A | I_slack | I_art],
// the reduced-cost row, current basic values, and variable metadata.
type tableau struct {
	m, n    int // rows, total columns (structural + slack + artificial)
	nStruct int
	nReal   int // structural + slack (artificials are columns >= nReal)
	t       [][]float64
	rhs     []float64 // current values of basic variables, per row
	obj     []float64 // reduced costs d_j for the current objective
	upper   []float64 // per-column upper bound (lower bounds are all 0)
	status  []varStatus
	basis   []int // basis[i] = column basic in row i
	banned  []bool
	rowSign []float64 // +1/-1 applied to each row during normalization
	iters   int
	maxIter int

	blandActs int // Dantzig -> Bland switches, surfaced on the Solution
}

// Solve maximizes the problem with the two-phase bounded simplex method on a
// dense tableau. Column-sparse problems are densified first; prefer
// SolveSparse for the large sparse relaxations produced by internal/relax.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	orig := p
	p, lower := p.shiftLower()
	if p.Cols != nil {
		q := *p
		q.A = p.Cols.Dense()
		q.Cols = nil
		p = &q
	}
	tb := newTableau(p)

	// Phase 1: maximize -(sum of artificials). Feasible iff optimum is ~0.
	if tb.needPhase1() {
		for j := tb.nReal; j < tb.n; j++ {
			tb.setPhaseCost(j, -1)
		}
		tb.priceOut()
		st := tb.iterate()
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: tb.iters, BlandActivations: tb.blandActs}, nil
		}
		if tb.phase1Objective() < -feasTol {
			return &Solution{Status: Infeasible, Iters: tb.iters, BlandActivations: tb.blandActs}, nil
		}
		tb.driveOutArtificials()
	}
	for j := tb.nReal; j < tb.n; j++ {
		tb.banned[j] = true
		tb.upper[j] = 0
	}

	// Phase 2: true objective.
	tb.loadObjective(p.Obj)
	st := tb.iterate()
	sol := &Solution{Status: st, Iters: tb.iters, BlandActivations: tb.blandActs}
	if st != Optimal {
		return sol, nil
	}
	x := tb.extract()
	sol.X = x[:tb.nStruct]
	for j, c := range p.Obj {
		sol.Objective += c * sol.X[j]
	}
	sol.Duals = tb.duals()
	sol.BoundDuals = tb.boundDuals()
	unshiftSolution(sol, orig.Obj, lower)
	return sol, nil
}

// shiftLower returns an equivalent problem whose lower bounds are all zero,
// plus the per-variable offsets applied (nil when no shifting was needed).
// Substituting x = l + x' leaves the matrix untouched: only B and Upper move.
func (p *Problem) shiftLower() (*Problem, []float64) {
	if p.Lower == nil {
		return p, nil
	}
	shifted := false
	for _, l := range p.Lower {
		if l != 0 { //vmalloc:nondet-ok structural zero test: only exactly-zero lower bounds skip the shift
			shifted = true
			break
		}
	}
	if !shifted {
		q := *p
		q.Lower = nil
		return &q, nil
	}
	n := p.NumVars()
	q := *p
	q.Lower = nil
	q.Upper = make([]float64, n)
	for j := 0; j < n; j++ {
		u := math.Inf(1)
		if p.Upper != nil {
			u = p.Upper[j]
		}
		q.Upper[j] = u - p.Lower[j] // Inf stays Inf
	}
	q.B = append([]float64(nil), p.B...)
	if p.Cols != nil {
		c := p.Cols
		for j := 0; j < n; j++ {
			l := p.Lower[j]
			if l == 0 { //vmalloc:nondet-ok structural zero test: only exactly-zero lower bounds skip the shift
				continue
			}
			for k := c.ColPtr[j]; k < c.ColPtr[j+1]; k++ {
				q.B[c.RowIdx[k]] -= c.Val[k] * l
			}
		}
	} else {
		for i, row := range p.A {
			for j, a := range row {
				if l := p.Lower[j]; l != 0 && a != 0 { //vmalloc:nondet-ok structural zero tests on stored bound and coefficient; exact by construction
					q.B[i] -= a * l
				}
			}
		}
	}
	return &q, p.Lower
}

// unshiftSolution translates a solution of the lower-shifted problem back to
// the original variable space. Row duals and upper-bound duals are unchanged
// by the shift.
func unshiftSolution(sol *Solution, obj, lower []float64) {
	if lower == nil || sol.X == nil {
		return
	}
	for j := range sol.X {
		sol.X[j] += lower[j]
		sol.Objective += obj[j] * lower[j]
	}
}

// duals recovers the constraint duals y = c_B·B^{-1} from the reduced costs
// of the artificial columns: artificial i entered the sign-normalized system
// as the identity column e_i, so d_{art_i} = -y'_i, and the dual of the
// original row is rowSign_i · y'_i.
func (tb *tableau) duals() []float64 {
	y := make([]float64, tb.m)
	for i := 0; i < tb.m; i++ {
		y[i] = tb.rowSign[i] * -tb.obj[tb.nReal+i]
	}
	return y
}

// boundDuals returns the dual of each structural variable's upper bound:
// the reduced cost of variables resting at their upper bound (clamped at 0),
// zero elsewhere.
func (tb *tableau) boundDuals() []float64 {
	w := make([]float64, tb.nStruct)
	for j := 0; j < tb.nStruct; j++ {
		if tb.status[j] == atUpper && tb.obj[j] > 0 {
			w[j] = tb.obj[j]
		}
	}
	return w
}

// newTableau converts the problem to equality form with slack variables and
// one artificial per row, sign-normalized so every right-hand side is >= 0,
// and seeds the basis with slacks where possible, artificials elsewhere.
func newTableau(p *Problem) *tableau {
	m, ns := p.NumRows(), p.NumVars()
	nSlack := 0
	slackOf := make([]int, m)
	for i, s := range p.Sense {
		if s == EQ {
			slackOf[i] = -1
		} else {
			slackOf[i] = ns + nSlack
			nSlack++
		}
	}
	nReal := ns + nSlack
	n := nReal + m // one artificial per row; unused ones stay nonbasic at 0

	tb := &tableau{
		m: m, n: n, nStruct: ns, nReal: nReal,
		t:       make([][]float64, m),
		rhs:     make([]float64, m),
		obj:     make([]float64, n),
		upper:   make([]float64, n),
		status:  make([]varStatus, n),
		basis:   make([]int, m),
		banned:  make([]bool, n),
		rowSign: make([]float64, m),
		// Generous cap: phase transitions and degeneracy need headroom.
		maxIter: iterCap(p.MaxIter, m, n),
	}
	for j := 0; j < ns; j++ {
		if p.Upper != nil {
			tb.upper[j] = p.Upper[j]
		} else {
			tb.upper[j] = math.Inf(1)
		}
	}
	for j := ns; j < n; j++ {
		tb.upper[j] = math.Inf(1)
	}

	for i := 0; i < m; i++ {
		row := make([]float64, n)
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		tb.rowSign[i] = sign
		for j := 0; j < ns; j++ {
			row[j] = sign * p.A[i][j]
		}
		rhs := sign * p.B[i]
		if sj := slackOf[i]; sj >= 0 {
			// LE gets +slack, GE gets -slack (before sign normalization).
			c := 1.0
			if p.Sense[i] == GE {
				c = -1
			}
			row[sj] = sign * c
		}
		aj := nReal + i
		row[aj] = 1
		tb.t[i] = row
		tb.rhs[i] = rhs

		// Prefer the slack as the initial basic variable when its
		// coefficient is +1 (so the basis starts as an identity without
		// artificials for that row).
		if sj := slackOf[i]; sj >= 0 && row[sj] == 1 { //vmalloc:nondet-ok slack coefficients are exactly 1 by construction
			tb.basis[i] = sj
			tb.status[sj] = basic
			tb.upper[aj] = 0 // artificial never needed for this row
		} else {
			tb.basis[i] = aj
			tb.status[aj] = basic
		}
	}
	return tb
}

// needPhase1 reports whether any artificial variable is basic.
func (tb *tableau) needPhase1() bool {
	for _, b := range tb.basis {
		if b >= tb.nReal {
			return true
		}
	}
	return false
}

// setPhaseCost assigns raw cost c to column j (used for phase 1).
func (tb *tableau) setPhaseCost(j int, c float64) { tb.obj[j] = c }

// priceOut recomputes reduced costs assuming tb.obj currently holds raw
// costs: d = c - c_B^T B^{-1} A, using the tableau rows as B^{-1}A.
func (tb *tableau) priceOut() {
	raw := make([]float64, tb.n)
	copy(raw, tb.obj)
	for i := 0; i < tb.m; i++ {
		cb := raw[tb.basis[i]]
		if cb == 0 { //vmalloc:nondet-ok structural zero test on stored cost coefficient
			continue
		}
		row := tb.t[i]
		for j := 0; j < tb.n; j++ {
			tb.obj[j] -= cb * row[j]
		}
	}
	for i := 0; i < tb.m; i++ {
		tb.obj[tb.basis[i]] = 0
	}
}

// loadObjective installs the phase-2 objective (raw costs over structural
// variables) and prices it out against the current basis.
func (tb *tableau) loadObjective(c []float64) {
	for j := range tb.obj {
		tb.obj[j] = 0
	}
	copy(tb.obj, c)
	tb.priceOut()
}

// phase1Objective returns -(sum of basic artificial values): 0 iff feasible.
func (tb *tableau) phase1Objective() float64 {
	s := 0.0
	for i, b := range tb.basis {
		if b >= tb.nReal {
			s -= tb.rhs[i]
		}
	}
	return s
}

// driveOutArtificials pivots basic artificials (all at value ~0 after a
// feasible phase 1) onto any real column with a nonzero tableau entry; rows
// with no such entry are redundant and keep a zero-fixed artificial.
func (tb *tableau) driveOutArtificials() {
	for i := 0; i < tb.m; i++ {
		if tb.basis[i] < tb.nReal {
			continue
		}
		row := tb.t[i]
		piv := -1
		for j := 0; j < tb.nReal; j++ {
			if tb.status[j] != basic && math.Abs(row[j]) > 1e-7 {
				piv = j
				break
			}
		}
		if piv >= 0 {
			tb.pivot(i, piv, tb.statusAfterZeroPivot(piv))
		}
	}
}

// statusAfterZeroPivot decides where the (degenerate, value-0) incoming
// variable sits: entering from lower keeps value 0 which is its lower bound.
func (tb *tableau) statusAfterZeroPivot(j int) float64 {
	if tb.status[j] == atUpper {
		return tb.upper[j]
	}
	return 0
}

// value returns the current value of column j.
func (tb *tableau) value(j int) float64 {
	switch tb.status[j] {
	case basic:
		for i, b := range tb.basis {
			if b == j {
				return tb.rhs[i]
			}
		}
		return 0
	case atUpper:
		return tb.upper[j]
	default:
		return 0
	}
}

// extract returns the values of all columns.
func (tb *tableau) extract() []float64 {
	x := make([]float64, tb.n)
	for j := 0; j < tb.n; j++ {
		if tb.status[j] == atUpper {
			x[j] = tb.upper[j]
		}
	}
	for i, b := range tb.basis {
		v := tb.rhs[i]
		if v < 0 && v > -feasTol {
			v = 0
		}
		x[b] = v
	}
	return x
}

// iterate runs primal simplex iterations until optimality, unboundedness, or
// the iteration cap. It uses Dantzig pricing and switches to Bland's rule
// after a long degenerate stall to guarantee termination.
func (tb *tableau) iterate() Status {
	stall := 0
	bland := false
	for ; tb.iters < tb.maxIter; tb.iters++ {
		enter := tb.chooseEntering(bland)
		if enter < 0 {
			return Optimal
		}
		gain := math.Abs(tb.obj[enter]) // per-unit objective improvement
		leaveRow, bound, delta := tb.ratioTest(enter)
		if leaveRow == -2 {
			return Unbounded
		}
		tb.apply(enter, leaveRow, bound, delta)

		// Anti-cycling: the objective strictly increases by gain*delta on a
		// non-degenerate pivot; a long run of zero-progress pivots switches
		// pricing to Bland's rule, which cannot cycle.
		if gain*delta > 1e-12 {
			stall = 0
			bland = false
		} else if stall++; stall > 2*(tb.m+10) {
			if !bland {
				tb.blandActs++
			}
			bland = true
		}
	}
	return IterLimit
}

// chooseEntering picks an improving nonbasic column, or -1 at optimality.
func (tb *tableau) chooseEntering(bland bool) int {
	best, bestScore := -1, costTol
	for j := 0; j < tb.n; j++ {
		if tb.status[j] == basic || tb.banned[j] || tb.upper[j] == 0 { //vmalloc:nondet-ok upper bound exactly 0 means fixed-at-zero variable; exact by construction
			continue
		}
		d := tb.obj[j]
		var score float64
		if tb.status[j] == atLower && d > costTol {
			score = d
		} else if tb.status[j] == atUpper && d < -costTol {
			score = -d
		} else {
			continue
		}
		if bland {
			return j
		}
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// ratioTest finds how far the entering variable can move. It returns the
// leaving row (-1 for a bound flip of the entering variable itself, -2 for
// unbounded), the bound the leaving basic variable reaches ("lower"/"upper"
// as a varStatus), and the step length.
func (tb *tableau) ratioTest(enter int) (row int, leaveTo varStatus, delta float64) {
	dir := 1.0
	if tb.status[enter] == atUpper {
		dir = -1
	}
	limit := math.Inf(1)
	if u := tb.upper[enter]; !math.IsInf(u, 1) {
		limit = u // bound-flip distance
	}
	row, leaveTo = -1, atLower
	for i := 0; i < tb.m; i++ {
		a := tb.t[i][enter] * dir
		if math.Abs(a) < pivotTol {
			continue
		}
		b := tb.basis[i]
		var ratio float64
		var to varStatus
		if a > 0 {
			// basic value decreases toward its lower bound 0
			ratio = tb.rhs[i] / a
			to = atLower
		} else {
			u := tb.upper[b]
			if math.IsInf(u, 1) {
				continue
			}
			ratio = (u - tb.rhs[i]) / -a
			to = atUpper
		}
		if ratio < -1e-9 {
			ratio = 0
		}
		if ratio < limit-1e-12 {
			limit = ratio
			row, leaveTo = i, to
		}
	}
	if math.IsInf(limit, 1) {
		return -2, atLower, 0
	}
	return row, leaveTo, limit
}

// apply performs either a bound flip (row == -1) or a pivot.
func (tb *tableau) apply(enter, row int, leaveTo varStatus, delta float64) {
	dir := 1.0
	if tb.status[enter] == atUpper {
		dir = -1
	}
	// Update all basic values along the step.
	if delta != 0 { //vmalloc:nondet-ok structural zero test: an exactly-zero step is a no-op update
		for i := 0; i < tb.m; i++ {
			tb.rhs[i] -= tb.t[i][enter] * dir * delta
			if tb.rhs[i] < 0 && tb.rhs[i] > -zeroClampT {
				tb.rhs[i] = 0
			}
		}
	}
	if row == -1 {
		// Bound flip: entering variable jumps to its opposite bound.
		if tb.status[enter] == atLower {
			tb.status[enter] = atUpper
		} else {
			tb.status[enter] = atLower
		}
		return
	}
	newVal := 0.0
	if tb.status[enter] == atLower {
		newVal = delta
	} else {
		newVal = tb.upper[enter] - delta
	}
	_ = leaveTo // the leaving bound is recovered from the updated rhs in pivot
	tb.pivot(row, enter, newVal)
}

// pivot makes column enter basic in the given row, with the entering
// variable taking value newVal. The previously basic column becomes nonbasic
// at whichever bound its (already updated) value matches.
func (tb *tableau) pivot(row, enter int, newVal float64) {
	old := tb.basis[row]
	p := tb.t[row][enter]
	inv := 1 / p
	r := tb.t[row]
	for j := 0; j < tb.n; j++ {
		r[j] *= inv
	}
	r[enter] = 1 // crush roundoff
	for i := 0; i < tb.m; i++ {
		if i == row {
			continue
		}
		f := tb.t[i][enter]
		if f == 0 { //vmalloc:nondet-ok structural zero test on stored coefficient
			continue
		}
		ri := tb.t[i]
		for j := 0; j < tb.n; j++ {
			ri[j] -= f * r[j]
		}
		ri[enter] = 0
	}
	if f := tb.obj[enter]; f != 0 { //vmalloc:nondet-ok structural zero test on stored objective coefficient
		for j := 0; j < tb.n; j++ {
			tb.obj[j] -= f * r[j]
		}
		tb.obj[enter] = 0
	}

	// Old basic variable leaves at the bound closest to its final value.
	if old != enter {
		u := tb.upper[old]
		leftVal := tb.rhs[row] // value it would have reached; rhs updated in apply
		if !math.IsInf(u, 1) && math.Abs(leftVal-u) < math.Abs(leftVal) {
			tb.status[old] = atUpper
		} else {
			tb.status[old] = atLower
		}
	}
	tb.basis[row] = enter
	tb.status[enter] = basic
	tb.rhs[row] = newVal
}
