package lp_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmalloc/internal/lp"
)

// FuzzParseMPS asserts the reader never panics on arbitrary input and that
// anything it accepts survives a write→parse round trip. The vendored
// corpus plus a few malformed fragments seed the fuzzer; `go test` runs the
// seeds as plain unit cases, CI adds a short fuzzing smoke on top.
func FuzzParseMPS(f *testing.F) {
	dir := filepath.Join("testdata", "netlib")
	files, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, fe := range files {
		data, err := os.ReadFile(filepath.Join(dir, fe.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("")
	f.Add("NAME\nROWS\n N OBJ\nCOLUMNS\n    A OBJ 1\nENDATA\n")
	f.Add("ROWS\n N OBJ\n L R\nCOLUMNS\n    A OBJ 1e308\n    A R 1e308\nRHS\n    S R -1e308\nENDATA\n")
	f.Add("OBJSENSE\n    MAX\nROWS\n N OBJ\nCOLUMNS\n    A OBJ nan\nENDATA\n")
	f.Add("ROWS\n N OBJ\nCOLUMNS\n    A OBJ 1\nBOUNDS\n UP B A 0\n LO B A 0\n FX B A 0\nENDATA\n")
	f.Add("RANGES\n    R A 1\nENDATA\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := lp.ParseMPS(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := lp.WriteMPS(&buf, p); err != nil {
			t.Fatalf("accepted model fails to write: %v\ninput:\n%s", err, src)
		}
		q, err := lp.ParseMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("written model fails to reparse: %v\nwritten:\n%s", err, buf.String())
		}
		if q.NumVars() != p.NumVars() || q.NumRows() != p.NumRows() {
			t.Fatalf("round trip changed dims: %dx%d -> %dx%d",
				p.NumRows(), p.NumVars(), q.NumRows(), q.NumVars())
		}
	})
}
