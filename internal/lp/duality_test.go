package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkDuality verifies, at a claimed optimum, dual sign feasibility and the
// strong duality identity for the bounded form:
// Objective = Duals·B + Σ_j BoundDuals[j]·Upper[j].
func checkDuality(t *testing.T, p *Problem, s *Solution) {
	t.Helper()
	if len(s.Duals) != p.NumRows() {
		t.Fatalf("|Duals| = %d, want %d", len(s.Duals), p.NumRows())
	}
	const tol = 1e-5
	for i, y := range s.Duals {
		switch p.Sense[i] {
		case LE:
			if y < -tol {
				t.Fatalf("row %d (LE): dual %v < 0", i, y)
			}
		case GE:
			if y > tol {
				t.Fatalf("row %d (GE): dual %v > 0", i, y)
			}
		}
	}
	dualObj := 0.0
	for i, y := range s.Duals {
		dualObj += y * p.B[i]
	}
	for j, w := range s.BoundDuals {
		if w == 0 {
			continue
		}
		u := math.Inf(1)
		if p.Upper != nil {
			u = p.Upper[j]
		}
		if math.IsInf(u, 1) {
			t.Fatalf("variable %d: bound dual %v with infinite upper bound", j, w)
		}
		dualObj += w * u
	}
	if math.Abs(dualObj-s.Objective) > 1e-4*(1+math.Abs(s.Objective)) {
		t.Fatalf("strong duality violated: primal %v vs dual %v", s.Objective, dualObj)
	}
}

func TestDualityOnTextbookLP(t *testing.T) {
	p := &Problem{
		Obj:   []float64{3, 5},
		A:     [][]float64{{1, 0}, {0, 2}, {3, 2}},
		Sense: []Sense{LE, LE, LE},
		B:     []float64{4, 12, 18},
	}
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatal(s.Status)
	}
	checkDuality(t, p, s)
	// Known duals for this classic: y = (0, 1.5, 1).
	want := []float64{0, 1.5, 1}
	for i := range want {
		if math.Abs(s.Duals[i]-want[i]) > 1e-6 {
			t.Fatalf("duals = %v, want %v", s.Duals, want)
		}
	}
}

func TestDualityWithBindingUpperBounds(t *testing.T) {
	// max x + y st x + y <= 10, x <= 1.5, y <= 2.5 (boxes). Optimal 4; the
	// row is slack so its dual is 0 and the bound duals carry everything.
	p := &Problem{
		Obj:   []float64{1, 1},
		A:     [][]float64{{1, 1}},
		Sense: []Sense{LE},
		B:     []float64{10},
		Upper: []float64{1.5, 2.5},
	}
	s := solveOK(t, p)
	checkDuality(t, p, s)
	if math.Abs(s.Duals[0]) > 1e-9 {
		t.Fatalf("slack row should have zero dual, got %v", s.Duals[0])
	}
	if math.Abs(s.BoundDuals[0]-1) > 1e-9 || math.Abs(s.BoundDuals[1]-1) > 1e-9 {
		t.Fatalf("bound duals = %v, want (1,1)", s.BoundDuals)
	}
}

func TestDualityWithEqualityAndGE(t *testing.T) {
	p := &Problem{
		Obj:   []float64{1, 2},
		A:     [][]float64{{1, 1}, {1, -1}},
		Sense: []Sense{EQ, LE},
		B:     []float64{3, 1},
	}
	s := solveOK(t, p)
	checkDuality(t, p, s)

	q := &Problem{
		Obj:   []float64{-1, -1},
		A:     [][]float64{{1, 2}, {3, 1}},
		Sense: []Sense{GE, GE},
		B:     []float64{4, 6},
	}
	sq := solveOK(t, q)
	checkDuality(t, q, sq)
}

func TestDualityRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(4)
		rows := 1 + rng.Intn(5)
		p := &Problem{Obj: make([]float64, n), Upper: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Obj[j] = rng.NormFloat64()
			p.Upper[j] = 0.5 + 3*rng.Float64()
		}
		for i := 0; i < rows; i++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = rng.NormFloat64()
			}
			p.A = append(p.A, row)
			p.Sense = append(p.Sense, Sense(rng.Intn(3)))
			p.B = append(p.B, rng.NormFloat64())
		}
		s := solveOK(t, p)
		if s.Status != Optimal {
			continue
		}
		checkFeasible(t, p, s.X)
		checkDuality(t, p, s)
	}
}
