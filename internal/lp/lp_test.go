package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantOptimal(t *testing.T, p *Problem, obj float64, tol float64) *Solution {
	t.Helper()
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if math.Abs(s.Objective-obj) > tol {
		t.Fatalf("objective = %v, want %v (x=%v)", s.Objective, obj, s.X)
	}
	checkFeasible(t, p, s.X)
	return s
}

// checkFeasible verifies s satisfies all rows and bounds of p.
func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j, v := range x {
		u := math.Inf(1)
		if p.Upper != nil {
			u = p.Upper[j]
		}
		if v < -tol || v > u+tol {
			t.Fatalf("x[%d] = %v violates bounds [0,%v]", j, v, u)
		}
	}
	for i, row := range p.A {
		lhs := 0.0
		for j, a := range row {
			lhs += a * x[j]
		}
		switch p.Sense[i] {
		case LE:
			if lhs > p.B[i]+tol {
				t.Fatalf("row %d: %v <= %v violated", i, lhs, p.B[i])
			}
		case GE:
			if lhs < p.B[i]-tol {
				t.Fatalf("row %d: %v >= %v violated", i, lhs, p.B[i])
			}
		case EQ:
			if math.Abs(lhs-p.B[i]) > tol {
				t.Fatalf("row %d: %v == %v violated", i, lhs, p.B[i])
			}
		}
	}
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18 -> (2,6), obj 36.
	p := &Problem{
		Obj:   []float64{3, 5},
		A:     [][]float64{{1, 0}, {0, 2}, {3, 2}},
		Sense: []Sense{LE, LE, LE},
		B:     []float64{4, 12, 18},
	}
	s := wantOptimal(t, p, 36, 1e-9)
	if math.Abs(s.X[0]-2) > 1e-9 || math.Abs(s.X[1]-6) > 1e-9 {
		t.Fatalf("x = %v, want (2,6)", s.X)
	}
}

func TestUpperBoundsViaBox(t *testing.T) {
	// max x + y st x + y <= 10, x <= 1.5 (box), y <= 2.5 (box) -> 4.
	p := &Problem{
		Obj:   []float64{1, 1},
		A:     [][]float64{{1, 1}},
		Sense: []Sense{LE},
		B:     []float64{10},
		Upper: []float64{1.5, 2.5},
	}
	wantOptimal(t, p, 4, 1e-9)
}

func TestBoundFlipOnly(t *testing.T) {
	// No binding rows at all: solution is everything at its upper bound.
	p := &Problem{
		Obj:   []float64{2, 3, 1},
		A:     [][]float64{{1, 1, 1}},
		Sense: []Sense{LE},
		B:     []float64{100},
		Upper: []float64{1, 1, 1},
	}
	wantOptimal(t, p, 6, 1e-9)
}

func TestGEConstraints(t *testing.T) {
	// max -x - y (i.e. minimize x+y) st x + 2y >= 4, 3x + y >= 6.
	// Optimum at intersection: x = 1.6, y = 1.2, sum = 2.8.
	p := &Problem{
		Obj:   []float64{-1, -1},
		A:     [][]float64{{1, 2}, {3, 1}},
		Sense: []Sense{GE, GE},
		B:     []float64{4, 6},
	}
	wantOptimal(t, p, -2.8, 1e-9)
}

func TestEqualityConstraints(t *testing.T) {
	// max x + 2y st x + y == 3, x - y <= 1 -> y as large as possible:
	// x = 0, y = 3, obj 6.
	p := &Problem{
		Obj:   []float64{1, 2},
		A:     [][]float64{{1, 1}, {1, -1}},
		Sense: []Sense{EQ, LE},
		B:     []float64{3, 1},
	}
	wantOptimal(t, p, 6, 1e-9)
}

func TestNegativeRHS(t *testing.T) {
	// max x st -x <= -2 (i.e. x >= 2), x <= 5.
	p := &Problem{
		Obj:   []float64{1},
		A:     [][]float64{{-1}, {1}},
		Sense: []Sense{LE, LE},
		B:     []float64{-2, 5},
	}
	wantOptimal(t, p, 5, 1e-9)
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Obj:   []float64{1},
		A:     [][]float64{{1}, {1}},
		Sense: []Sense{GE, LE},
		B:     []float64{5, 2},
	}
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := &Problem{
		Obj:   []float64{1, 1},
		A:     [][]float64{{1, 1}, {1, 1}},
		Sense: []Sense{EQ, EQ},
		B:     []float64{2, 3},
	}
	if s := solveOK(t, p); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		Obj:   []float64{1, 0},
		A:     [][]float64{{0, 1}},
		Sense: []Sense{LE},
		B:     []float64{1},
	}
	if s := solveOK(t, p); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestBoundedByBoxNotUnbounded(t *testing.T) {
	// Same as above but with a box bound: not unbounded anymore.
	p := &Problem{
		Obj:   []float64{1, 0},
		A:     [][]float64{{0, 1}},
		Sense: []Sense{LE},
		B:     []float64{1},
		Upper: []float64{7, math.Inf(1)},
	}
	wantOptimal(t, p, 7, 1e-9)
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate vertex: multiple constraints meet at optimum.
	p := &Problem{
		Obj:   []float64{1, 1},
		A:     [][]float64{{1, 0}, {0, 1}, {1, 1}},
		Sense: []Sense{LE, LE, LE},
		B:     []float64{1, 1, 2},
	}
	wantOptimal(t, p, 2, 1e-9)
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows create a redundant row in phase 1.
	p := &Problem{
		Obj:   []float64{1, 1},
		A:     [][]float64{{1, 1}, {2, 2}, {1, -1}},
		Sense: []Sense{EQ, EQ, LE},
		B:     []float64{2, 4, 0},
	}
	wantOptimal(t, p, 2, 1e-9)
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility problem.
	p := &Problem{
		Obj:   []float64{0, 0},
		A:     [][]float64{{1, 1}, {1, -1}},
		Sense: []Sense{EQ, EQ},
		B:     []float64{4, 0},
	}
	s := wantOptimal(t, p, 0, 1e-9)
	if math.Abs(s.X[0]-2) > 1e-7 || math.Abs(s.X[1]-2) > 1e-7 {
		t.Fatalf("x = %v, want (2,2)", s.X)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Problem{
		{},
		{Obj: []float64{1}, A: [][]float64{{1, 2}}, Sense: []Sense{LE}, B: []float64{1}},
		{Obj: []float64{1}, A: [][]float64{{1}}, Sense: []Sense{LE}, B: []float64{1, 2}},
		{Obj: []float64{1}, A: [][]float64{{1}}, Sense: []Sense{LE}, B: []float64{1}, Upper: []float64{-1}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestKleeMintyDoesNotCycle(t *testing.T) {
	// 3-D Klee–Minty cube: exponential path for naive Dantzig, but must
	// terminate and find the known optimum 125 (max x3 over the cube form).
	n := 3
	p := &Problem{Obj: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Obj[j] = math.Pow(2, float64(n-1-j))
	}
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for j := 0; j < i; j++ {
			row[j] = math.Pow(2, float64(i-j+1))
		}
		row[i] = 1
		p.A = append(p.A, row)
		p.Sense = append(p.Sense, LE)
		p.B = append(p.B, math.Pow(5, float64(i+1)))
	}
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-125) > 1e-6 {
		t.Fatalf("objective = %v, want 125", s.Objective)
	}
}

// referenceSolve2D brute-forces a 2-variable LP by enumerating all candidate
// vertices (row intersections and bound intersections) and picking the best
// feasible one.
func referenceSolve2D(p *Problem) (best float64, found bool) {
	var cands [][2]float64
	type line struct{ a, b, c float64 } // a*x + b*y = c
	var lines []line
	for i, row := range p.A {
		lines = append(lines, line{row[0], row[1], p.B[i]})
	}
	ub := [2]float64{math.Inf(1), math.Inf(1)}
	if p.Upper != nil {
		ub[0], ub[1] = p.Upper[0], p.Upper[1]
	}
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0})
	if !math.IsInf(ub[0], 1) {
		lines = append(lines, line{1, 0, ub[0]})
	}
	if !math.IsInf(ub[1], 1) {
		lines = append(lines, line{0, 1, ub[1]})
	}
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			d := lines[i].a*lines[j].b - lines[j].a*lines[i].b
			if math.Abs(d) < 1e-12 {
				continue
			}
			x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / d
			y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / d
			cands = append(cands, [2]float64{x, y})
		}
	}
	best = math.Inf(-1)
	for _, c := range cands {
		x, y := c[0], c[1]
		if x < -1e-9 || y < -1e-9 || x > ub[0]+1e-9 || y > ub[1]+1e-9 {
			continue
		}
		ok := true
		for i, row := range p.A {
			lhs := row[0]*x + row[1]*y
			switch p.Sense[i] {
			case LE:
				ok = ok && lhs <= p.B[i]+1e-9
			case GE:
				ok = ok && lhs >= p.B[i]-1e-9
			case EQ:
				ok = ok && math.Abs(lhs-p.B[i]) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		found = true
		if v := p.Obj[0]*x + p.Obj[1]*y; v > best {
			best = v
		}
	}
	return best, found
}

func TestRandomLPsAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		rows := 1 + rng.Intn(4)
		p := &Problem{
			Obj:   []float64{rng.NormFloat64(), rng.NormFloat64()},
			Upper: []float64{1 + 4*rng.Float64(), 1 + 4*rng.Float64()},
		}
		for i := 0; i < rows; i++ {
			p.A = append(p.A, []float64{rng.NormFloat64(), rng.NormFloat64()})
			p.Sense = append(p.Sense, Sense(rng.Intn(2))) // LE or GE
			p.B = append(p.B, rng.NormFloat64()*2)
		}
		ref, feasible := referenceSolve2D(p)
		s := solveOK(t, p)
		if !feasible {
			if s.Status == Optimal {
				// The reference grid may miss feasibility only through
				// numerical ties; accept but verify the point is feasible.
				checkFeasible(t, p, s.X)
			}
			continue
		}
		if s.Status != Optimal {
			t.Fatalf("iter %d: status %v but reference found feasible optimum %v\nproblem: %+v", iter, s.Status, ref, p)
		}
		checkFeasible(t, p, s.X)
		if math.Abs(s.Objective-ref) > 1e-5*(1+math.Abs(ref)) {
			t.Fatalf("iter %d: objective %v != reference %v\nproblem: %+v", iter, s.Objective, ref, p)
		}
	}
}

func TestModerateSizeRandomFeasible(t *testing.T) {
	// Random transportation-flavored LPs with known feasible structure:
	// verify the solver returns optimal and feasible points at m≈60, n≈80.
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 10; iter++ {
		n, m := 80, 60
		p := &Problem{Obj: make([]float64, n), Upper: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Obj[j] = rng.Float64()
			p.Upper[j] = 1
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.2 {
					row[j] = rng.Float64()
				}
			}
			p.A = append(p.A, row)
			p.Sense = append(p.Sense, LE)
			p.B = append(p.B, 0.5+rng.Float64()*2)
		}
		s := solveOK(t, p)
		if s.Status != Optimal {
			t.Fatalf("iter %d: status %v", iter, s.Status)
		}
		checkFeasible(t, p, s.X)
		// x = 0 is feasible, so the optimum is >= 0.
		if s.Objective < -1e-9 {
			t.Fatalf("iter %d: negative objective %v", iter, s.Objective)
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, m := 120, 90
	p := &Problem{Obj: make([]float64, n), Upper: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Obj[j] = rng.Float64()
		p.Upper[j] = 1
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.25 {
				row[j] = rng.Float64()
			}
		}
		p.A = append(p.A, row)
		p.Sense = append(p.Sense, LE)
		p.B = append(p.B, 1+rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
