package lp

import (
	"math"
)

// SolveRevised maximizes the problem with a revised bounded simplex: the
// constraint matrix is stored column-sparse and only the dense m×m basis
// inverse is maintained, so memory is O(m² + nnz) instead of the dense
// tableau's O(m·(n+m)). Results match Solve (both are exact); the revised
// path wins on the large sparse relaxations produced by internal/relax.
func SolveRevised(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rv := newRevised(p)

	if rv.needPhase1() {
		for i := 0; i < rv.m; i++ {
			rv.cost[rv.nReal+i] = -1
		}
		st := rv.iterate()
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: rv.iters}, nil
		}
		if rv.phase1Objective() < -feasTol {
			return &Solution{Status: Infeasible, Iters: rv.iters}, nil
		}
		rv.driveOutArtificials()
	}
	for j := rv.nReal; j < rv.n; j++ {
		rv.banned[j] = true
		rv.upper[j] = 0
		rv.cost[j] = 0
	}
	for j := 0; j < rv.nStruct; j++ {
		rv.cost[j] = p.Obj[j]
	}
	for j := rv.nStruct; j < rv.nReal; j++ {
		rv.cost[j] = 0
	}

	st := rv.iterate()
	sol := &Solution{Status: st, Iters: rv.iters}
	if st != Optimal {
		return sol, nil
	}
	x := rv.extract()
	sol.X = x[:rv.nStruct]
	for j, c := range p.Obj {
		sol.Objective += c * sol.X[j]
	}
	y := rv.dualVector()
	sol.Duals = make([]float64, rv.m)
	for i := 0; i < rv.m; i++ {
		sol.Duals[i] = rv.rowSign[i] * y[i]
	}
	sol.BoundDuals = make([]float64, rv.nStruct)
	for j := 0; j < rv.nStruct; j++ {
		if rv.status[j] == atUpper {
			if d := rv.reducedCost(j, y); d > 0 {
				sol.BoundDuals[j] = d
			}
		}
	}
	return sol, nil
}

// sparseCol is one column of the equality-form constraint matrix.
type sparseCol struct {
	rows []int
	vals []float64
}

// revised is the revised-simplex state.
type revised struct {
	m, n    int
	nStruct int
	nReal   int
	cols    []sparseCol // all n columns, sign-normalized
	b       []float64   // sign-normalized rhs
	rowSign []float64
	binv    [][]float64 // dense basis inverse
	xB      []float64   // values of basic variables per row
	basis   []int
	inBasis []int // column -> row, or -1
	status  []varStatus
	upper   []float64
	cost    []float64 // raw costs of the current phase
	banned  []bool
	iters   int
	maxIter int
	scratch []float64
}

func newRevised(p *Problem) *revised {
	m, ns := p.NumRows(), p.NumVars()
	nSlack := 0
	slackOf := make([]int, m)
	for i, s := range p.Sense {
		if s == EQ {
			slackOf[i] = -1
		} else {
			slackOf[i] = ns + nSlack
			nSlack++
		}
	}
	nReal := ns + nSlack
	n := nReal + m

	rv := &revised{
		m: m, n: n, nStruct: ns, nReal: nReal,
		cols:    make([]sparseCol, n),
		b:       make([]float64, m),
		rowSign: make([]float64, m),
		binv:    make([][]float64, m),
		xB:      make([]float64, m),
		basis:   make([]int, m),
		inBasis: make([]int, n),
		status:  make([]varStatus, n),
		upper:   make([]float64, n),
		cost:    make([]float64, n),
		banned:  make([]bool, n),
		maxIter: 200 * (m + n + 10),
		scratch: make([]float64, m),
	}
	for j := range rv.inBasis {
		rv.inBasis[j] = -1
	}
	for j := 0; j < ns; j++ {
		if p.Upper != nil {
			rv.upper[j] = p.Upper[j]
		} else {
			rv.upper[j] = math.Inf(1)
		}
	}
	for j := ns; j < n; j++ {
		rv.upper[j] = math.Inf(1)
	}

	// Build sign-normalized sparse columns.
	sign := make([]float64, m)
	for i := 0; i < m; i++ {
		sign[i] = 1
		if p.B[i] < 0 {
			sign[i] = -1
		}
		rv.rowSign[i] = sign[i]
		rv.b[i] = sign[i] * p.B[i]
	}
	for j := 0; j < ns; j++ {
		var c sparseCol
		for i := 0; i < m; i++ {
			if v := p.A[i][j]; v != 0 {
				c.rows = append(c.rows, i)
				c.vals = append(c.vals, sign[i]*v)
			}
		}
		rv.cols[j] = c
	}
	for i := 0; i < m; i++ {
		if sj := slackOf[i]; sj >= 0 {
			v := 1.0
			if p.Sense[i] == GE {
				v = -1
			}
			rv.cols[sj] = sparseCol{rows: []int{i}, vals: []float64{sign[i] * v}}
		}
		rv.cols[nReal+i] = sparseCol{rows: []int{i}, vals: []float64{1}}
	}

	// Initial basis: slack when its coefficient is +1, else artificial.
	for i := 0; i < m; i++ {
		rv.binv[i] = make([]float64, m)
		rv.binv[i][i] = 1
		rv.xB[i] = rv.b[i]
		col := nReal + i
		if sj := slackOf[i]; sj >= 0 && rv.cols[sj].vals[0] == 1 {
			col = sj
			rv.upper[nReal+i] = 0
		}
		rv.basis[i] = col
		rv.inBasis[col] = i
		rv.status[col] = basic
	}
	return rv
}

func (rv *revised) needPhase1() bool {
	for _, b := range rv.basis {
		if b >= rv.nReal {
			return true
		}
	}
	return false
}

func (rv *revised) phase1Objective() float64 {
	s := 0.0
	for i, b := range rv.basis {
		if b >= rv.nReal {
			s -= rv.xB[i]
		}
	}
	return s
}

// dualVector returns y = c_B^T · B^{-1}.
func (rv *revised) dualVector() []float64 {
	y := make([]float64, rv.m)
	for i := 0; i < rv.m; i++ {
		cb := rv.cost[rv.basis[i]]
		if cb == 0 {
			continue
		}
		row := rv.binv[i]
		for k := 0; k < rv.m; k++ {
			y[k] += cb * row[k]
		}
	}
	return y
}

// reducedCost computes d_j = c_j - y·A_j.
func (rv *revised) reducedCost(j int, y []float64) float64 {
	d := rv.cost[j]
	c := &rv.cols[j]
	for k, r := range c.rows {
		d -= y[r] * c.vals[k]
	}
	return d
}

// ftran computes w = B^{-1} · A_j into rv.scratch.
func (rv *revised) ftran(j int) []float64 {
	w := rv.scratch
	for i := range w {
		w[i] = 0
	}
	c := &rv.cols[j]
	for k, r := range c.rows {
		v := c.vals[k]
		for i := 0; i < rv.m; i++ {
			w[i] += rv.binv[i][r] * v
		}
	}
	return w
}

func (rv *revised) iterate() Status {
	stall := 0
	bland := false
	for ; rv.iters < rv.maxIter; rv.iters++ {
		if rv.iters%256 == 255 {
			rv.refreshXB() // limit incremental drift
		}
		y := rv.dualVector()
		enter, d := rv.chooseEntering(y, bland)
		if enter < 0 {
			return Optimal
		}
		w := rv.ftran(enter)
		row, leaveTo, delta := rv.ratioTest(enter, w)
		if row == -2 {
			return Unbounded
		}
		rv.apply(enter, w, row, leaveTo, delta)
		if math.Abs(d)*delta > 1e-12 {
			stall = 0
			bland = false
		} else if stall++; stall > 2*(rv.m+10) {
			bland = true
		}
	}
	return IterLimit
}

func (rv *revised) chooseEntering(y []float64, bland bool) (int, float64) {
	best, bestScore, bestD := -1, costTol, 0.0
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic || rv.banned[j] || rv.upper[j] == 0 {
			continue
		}
		d := rv.reducedCost(j, y)
		var score float64
		if rv.status[j] == atLower && d > costTol {
			score = d
		} else if rv.status[j] == atUpper && d < -costTol {
			score = -d
		} else {
			continue
		}
		if bland {
			return j, d
		}
		if score > bestScore {
			best, bestScore, bestD = j, score, d
		}
	}
	return best, bestD
}

// ratioTest mirrors the dense solver's bounded ratio test over the computed
// direction w = B^{-1}A_enter.
func (rv *revised) ratioTest(enter int, w []float64) (row int, leaveTo varStatus, delta float64) {
	dir := 1.0
	if rv.status[enter] == atUpper {
		dir = -1
	}
	limit := math.Inf(1)
	if u := rv.upper[enter]; !math.IsInf(u, 1) {
		limit = u
	}
	row, leaveTo = -1, atLower
	for i := 0; i < rv.m; i++ {
		a := w[i] * dir
		if math.Abs(a) < pivotTol {
			continue
		}
		var ratio float64
		var to varStatus
		if a > 0 {
			ratio = rv.xB[i] / a
			to = atLower
		} else {
			u := rv.upper[rv.basis[i]]
			if math.IsInf(u, 1) {
				continue
			}
			ratio = (u - rv.xB[i]) / -a
			to = atUpper
		}
		if ratio < -1e-9 {
			ratio = 0
		}
		if ratio < limit-1e-12 {
			limit = ratio
			row, leaveTo = i, to
		}
	}
	if math.IsInf(limit, 1) {
		return -2, atLower, 0
	}
	return row, leaveTo, limit
}

func (rv *revised) apply(enter int, w []float64, row int, leaveTo varStatus, delta float64) {
	dir := 1.0
	if rv.status[enter] == atUpper {
		dir = -1
	}
	if delta != 0 {
		for i := 0; i < rv.m; i++ {
			rv.xB[i] -= w[i] * dir * delta
			if rv.xB[i] < 0 && rv.xB[i] > -zeroClampT {
				rv.xB[i] = 0
			}
		}
	}
	if row == -1 {
		if rv.status[enter] == atLower {
			rv.status[enter] = atUpper
		} else {
			rv.status[enter] = atLower
		}
		return
	}
	newVal := delta
	if rv.status[enter] == atUpper {
		newVal = rv.upper[enter] - delta
	}
	old := rv.basis[row]
	rv.status[old] = leaveTo
	rv.inBasis[old] = -1

	// Update the basis inverse: eliminate w from all rows but the pivot row.
	piv := w[row]
	br := rv.binv[row]
	inv := 1 / piv
	for k := 0; k < rv.m; k++ {
		br[k] *= inv
	}
	for i := 0; i < rv.m; i++ {
		if i == row {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		bi := rv.binv[i]
		for k := 0; k < rv.m; k++ {
			bi[k] -= f * br[k]
		}
	}

	rv.basis[row] = enter
	rv.inBasis[enter] = row
	rv.status[enter] = basic
	rv.xB[row] = newVal
}

func (rv *revised) driveOutArtificials() {
	for i := 0; i < rv.m; i++ {
		if rv.basis[i] < rv.nReal {
			continue
		}
		// Find a real nonbasic column with a nonzero entry in row i of
		// B^{-1}A.
		piv := -1
		var wPiv []float64
		for j := 0; j < rv.nReal; j++ {
			if rv.status[j] == basic {
				continue
			}
			w := rv.ftran(j)
			if math.Abs(w[i]) > 1e-7 {
				piv = j
				wPiv = append([]float64(nil), w...)
				break
			}
		}
		if piv < 0 {
			continue // redundant row: artificial stays basic at ~0
		}
		// Degenerate pivot at value 0 (or the variable's current bound).
		val := 0.0
		if rv.status[piv] == atUpper {
			val = rv.upper[piv]
		}
		copy(rv.scratch, wPiv)
		old := rv.basis[i]
		rv.status[old] = atLower
		rv.inBasis[old] = -1
		pivV := wPiv[i]
		br := rv.binv[i]
		inv := 1 / pivV
		for k := 0; k < rv.m; k++ {
			br[k] *= inv
		}
		for r := 0; r < rv.m; r++ {
			if r == i {
				continue
			}
			f := wPiv[r]
			if f == 0 {
				continue
			}
			bi := rv.binv[r]
			for k := 0; k < rv.m; k++ {
				bi[k] -= f * br[k]
			}
		}
		rv.basis[i] = piv
		rv.inBasis[piv] = i
		rv.status[piv] = basic
		rv.xB[i] = val
	}
}

// refreshXB recomputes the basic values from scratch:
// x_B = B^{-1}·(b − Σ_{j at upper} A_j·u_j), countering incremental drift.
func (rv *revised) refreshXB() {
	r := make([]float64, rv.m)
	copy(r, rv.b)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == atUpper && rv.upper[j] != 0 {
			c := &rv.cols[j]
			u := rv.upper[j]
			for k, row := range c.rows {
				r[row] -= c.vals[k] * u
			}
		}
	}
	for i := 0; i < rv.m; i++ {
		s := 0.0
		row := rv.binv[i]
		for k := 0; k < rv.m; k++ {
			s += row[k] * r[k]
		}
		if s < 0 && s > -feasTol {
			s = 0
		}
		rv.xB[i] = s
	}
}

func (rv *revised) extract() []float64 {
	x := make([]float64, rv.n)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == atUpper {
			x[j] = rv.upper[j]
		}
	}
	for i, b := range rv.basis {
		v := rv.xB[i]
		if v < 0 && v > -feasTol {
			v = 0
		}
		x[b] = v
	}
	return x
}
