package lp

import (
	"math"
)

// SolveRevised maximizes the problem with a revised bounded simplex: the
// constraint matrix is stored column-sparse and only the dense m×m basis
// inverse is maintained, so memory is O(m² + nnz) instead of the dense
// tableau's O(m·(n+m)). Results match Solve (both are exact); the revised
// path wins on the large sparse relaxations produced by internal/relax.
// It is SolveSparse without a warm basis.
func SolveRevised(p *Problem) (*Solution, error) {
	return SolveSparseWarm(p, nil)
}

// runRevised solves a validated, lower-shifted problem with the revised
// simplex, warm-starting from warm when it installs cleanly (see
// installBasis) and cold-starting through phase 1 otherwise.
func runRevised(p *Problem, warm *Basis) *Solution {
	rv := newRevised(p)
	warmed := warm != nil && rv.installBasis(warm)
	if warm != nil && !warmed {
		rv = newRevised(p) // a failed install leaves partial state behind
	}
	if !warmed {
		if rv.needPhase1() {
			for i := 0; i < rv.m; i++ {
				rv.cost[rv.nReal+i] = -1
			}
			st := rv.iterate()
			if st == IterLimit {
				return &Solution{Status: IterLimit, Iters: rv.iters,
					Refactorizations: rv.refactors, BlandActivations: rv.blandActs}
			}
			if rv.phase1Objective() < -feasTol {
				return &Solution{Status: Infeasible, Iters: rv.iters,
					Refactorizations: rv.refactors, BlandActivations: rv.blandActs}
			}
			rv.driveOutArtificials()
		}
		for j := rv.nReal; j < rv.n; j++ {
			rv.banned[j] = true
			rv.upper[j] = 0
			rv.cost[j] = 0
		}
	}
	for j := 0; j < rv.nStruct; j++ {
		rv.cost[j] = p.Obj[j]
	}
	for j := rv.nStruct; j < rv.nReal; j++ {
		rv.cost[j] = 0
	}

	st := rv.iterate()
	sol := &Solution{Status: st, Iters: rv.iters, WarmStarted: warmed,
		Refactorizations: rv.refactors, BlandActivations: rv.blandActs}
	if st != Optimal {
		return sol
	}
	x := rv.extract()
	sol.X = x[:rv.nStruct:rv.nStruct]
	for j, c := range p.Obj {
		sol.Objective += c * sol.X[j]
	}
	y := rv.dualVector()
	sol.Duals = make([]float64, rv.m)
	for i := 0; i < rv.m; i++ {
		sol.Duals[i] = rv.rowSign[i] * y[i]
	}
	sol.BoundDuals = make([]float64, rv.nStruct)
	for j := 0; j < rv.nStruct; j++ {
		if rv.status[j] == atUpper {
			if d := rv.reducedCost(j, y); d > 0 {
				sol.BoundDuals[j] = d
			}
		}
	}
	sol.Basis = rv.captureBasis()
	return sol
}

// sparseCol is one column of the equality-form constraint matrix.
type sparseCol struct {
	rows []int
	vals []float64
}

// revised is the revised-simplex state. The basis is represented by a
// sparse LU factorization plus an eta file (see factor.go), never by an
// explicit inverse.
type revised struct {
	m, n    int
	nStruct int
	nReal   int
	cols    []sparseCol // all n columns, sign-normalized
	b       []float64   // sign-normalized rhs
	rowSign []float64
	lu      *basisLU
	xB      []float64 // values of basic variables per row
	basis   []int
	inBasis []int // column -> row, or -1
	status  []varStatus
	upper   []float64
	cost    []float64 // raw costs of the current phase
	banned  []bool
	broken  bool // a refactorization failed; abort with IterLimit

	// Work counters surfaced on the Solution for observability.
	refactors int // LU rebuilds
	blandActs int // Dantzig -> Bland switches after degenerate stalls

	// d holds the reduced costs, maintained incrementally across pivots via
	// the pivot row (alpha = rho·A computed row-wise through the CSR mirror)
	// and recomputed exactly at refactorizations and before any optimality
	// claim, so pricing drift can steer pivot choice but never the result.
	d []float64
	// CSR mirror of the sign-normalized equality-form matrix (structural,
	// slack and artificial columns), for row-wise pricing.
	rowPtr    []int
	rowCol    []int
	rowVal    []float64
	alpha     []float64 // scatter scratch for the pivot-row coefficients
	iters     int
	maxIter   int
	scratch   []float64
	yScratch  []float64
	cbScratch []float64
}

func newRevised(p *Problem) *revised {
	m, ns := p.NumRows(), p.NumVars()
	nSlack := 0
	slackOf := make([]int, m)
	for i, s := range p.Sense {
		if s == EQ {
			slackOf[i] = -1
		} else {
			slackOf[i] = ns + nSlack
			nSlack++
		}
	}
	nReal := ns + nSlack
	n := nReal + m

	rv := &revised{
		m: m, n: n, nStruct: ns, nReal: nReal,
		cols:      make([]sparseCol, n),
		b:         make([]float64, m),
		rowSign:   make([]float64, m),
		lu:        newBasisLU(m),
		xB:        make([]float64, m),
		basis:     make([]int, m),
		inBasis:   make([]int, n),
		status:    make([]varStatus, n),
		upper:     make([]float64, n),
		cost:      make([]float64, n),
		banned:    make([]bool, n),
		d:         make([]float64, n),
		alpha:     make([]float64, n),
		maxIter:   iterCap(p.MaxIter, m, n),
		scratch:   make([]float64, m),
		yScratch:  make([]float64, m),
		cbScratch: make([]float64, m),
	}
	for j := range rv.inBasis {
		rv.inBasis[j] = -1
	}
	for j := 0; j < ns; j++ {
		if p.Upper != nil {
			rv.upper[j] = p.Upper[j]
		} else {
			rv.upper[j] = math.Inf(1)
		}
	}
	for j := ns; j < n; j++ {
		rv.upper[j] = math.Inf(1)
	}

	// Build sign-normalized sparse columns. CSC input shares its row-index
	// slices (never mutated); dense rows are scanned column by column.
	sign := make([]float64, m)
	for i := 0; i < m; i++ {
		sign[i] = 1
		if p.B[i] < 0 {
			sign[i] = -1
		}
		rv.rowSign[i] = sign[i]
		rv.b[i] = sign[i] * p.B[i]
	}
	if p.Cols != nil {
		csc := p.Cols
		for j := 0; j < ns; j++ {
			lo, hi := csc.ColPtr[j], csc.ColPtr[j+1]
			if lo == hi {
				continue
			}
			rows := csc.RowIdx[lo:hi:hi]
			vals := make([]float64, hi-lo)
			for k, r := range rows {
				vals[k] = sign[r] * csc.Val[lo+k]
			}
			rv.cols[j] = sparseCol{rows: rows, vals: vals}
		}
	} else {
		for j := 0; j < ns; j++ {
			var c sparseCol
			for i := 0; i < m; i++ {
				if v := p.A[i][j]; v != 0 { //vmalloc:nondet-ok structural zero test when building sparse columns
					c.rows = append(c.rows, i)
					c.vals = append(c.vals, sign[i]*v)
				}
			}
			rv.cols[j] = c
		}
	}
	for i := 0; i < m; i++ {
		if sj := slackOf[i]; sj >= 0 {
			v := 1.0
			if p.Sense[i] == GE {
				v = -1
			}
			rv.cols[sj] = sparseCol{rows: []int{i}, vals: []float64{sign[i] * v}}
		}
		rv.cols[nReal+i] = sparseCol{rows: []int{i}, vals: []float64{1}}
	}

	// Initial basis: slack when its coefficient is +1, else artificial.
	for i := 0; i < m; i++ {
		rv.xB[i] = rv.b[i]
		col := nReal + i
		if sj := slackOf[i]; sj >= 0 && rv.cols[sj].vals[0] == 1 { //vmalloc:nondet-ok slack coefficients are exactly 1 by construction
			col = sj
			rv.upper[nReal+i] = 0
		}
		rv.basis[i] = col
		rv.inBasis[col] = i
		rv.status[col] = basic
	}
	// The initial basis is all singleton ±1 columns; factorization is
	// trivial and cannot fail.
	rv.lu.factorize(rv.basisCols())
	rv.buildCSR()
	return rv
}

// buildCSR mirrors the sign-normalized columns row-wise for pricing.
func (rv *revised) buildCSR() {
	counts := make([]int, rv.m+1)
	nnz := 0
	for j := range rv.cols {
		for _, r := range rv.cols[j].rows {
			counts[r+1]++
			nnz++
		}
	}
	rv.rowPtr = counts
	for i := 0; i < rv.m; i++ {
		rv.rowPtr[i+1] += rv.rowPtr[i]
	}
	rv.rowCol = make([]int, nnz)
	rv.rowVal = make([]float64, nnz)
	next := append([]int(nil), rv.rowPtr[:rv.m]...)
	for j := range rv.cols {
		c := &rv.cols[j]
		for k, r := range c.rows {
			at := next[r]
			next[r]++
			rv.rowCol[at] = j
			rv.rowVal[at] = c.vals[k]
		}
	}
}

// basisCols collects pointers to the current basis columns, slot by slot.
func (rv *revised) basisCols() []*sparseCol {
	bc := make([]*sparseCol, rv.m)
	for i, col := range rv.basis {
		bc[i] = &rv.cols[col]
	}
	return bc
}

func (rv *revised) needPhase1() bool {
	for _, b := range rv.basis {
		if b >= rv.nReal {
			return true
		}
	}
	return false
}

func (rv *revised) phase1Objective() float64 {
	s := 0.0
	for i, b := range rv.basis {
		if b >= rv.nReal {
			s -= rv.xB[i]
		}
	}
	return s
}

// dualVector returns y = c_B^T · B^{-1} (a sparse BTRAN through the LU
// factors and eta file). The returned slice is scratch storage overwritten
// by the next call.
func (rv *revised) dualVector() []float64 {
	cb := rv.cbScratch
	for i, b := range rv.basis {
		cb[i] = rv.cost[b]
	}
	rv.lu.btran(rv.yScratch, cb)
	return rv.yScratch
}

// reducedCost computes d_j = c_j - y·A_j.
func (rv *revised) reducedCost(j int, y []float64) float64 {
	d := rv.cost[j]
	c := &rv.cols[j]
	for k, r := range c.rows {
		d -= y[r] * c.vals[k]
	}
	return d
}

// ftran computes w = B^{-1} · A_j into rv.scratch (a sparse FTRAN through
// the LU factors and eta file).
func (rv *revised) ftran(j int) []float64 {
	rv.lu.ftran(rv.scratch, &rv.cols[j])
	return rv.scratch
}

func (rv *revised) iterate() Status {
	rv.priceAll()
	stall := 0
	bland := false
	for ; rv.iters < rv.maxIter; rv.iters++ {
		if rv.broken {
			return IterLimit
		}
		if rv.iters%256 == 255 {
			rv.refreshXB() // limit incremental drift
		}
		if bland {
			// Bland's anti-cycling guarantee needs exact reduced-cost
			// signs, not incrementally maintained ones.
			rv.priceAll()
		}
		enter := rv.chooseEntering(bland)
		if enter < 0 {
			// Confirm against exact prices: the incremental reduced costs
			// may have drifted since the last refactorization.
			rv.priceAll()
			if enter = rv.chooseEntering(bland); enter < 0 {
				return Optimal
			}
		}
		dq := rv.d[enter]
		w := rv.ftran(enter)
		row, leaveTo, delta := rv.ratioTest(enter, w)
		if row == -2 {
			return Unbounded
		}
		if row >= 0 {
			rv.updateDuals(enter, row, w)
		}
		rv.apply(enter, w, row, leaveTo, delta)
		if math.Abs(dq)*delta > 1e-12 {
			stall = 0
			bland = false
		} else if stall++; stall > 2*(rv.m+10) {
			if !bland {
				rv.blandActs++
			}
			bland = true
		}
	}
	return IterLimit
}

// priceAll recomputes every reduced cost exactly from y = c_B·B^{-1}.
func (rv *revised) priceAll() {
	y := rv.dualVector()
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic {
			rv.d[j] = 0
		} else {
			rv.d[j] = rv.reducedCost(j, y)
		}
	}
}

// updateDuals carries the reduced costs across the coming pivot (enter
// becomes basic in row) using the pivot row of B^{-1}A: rho = e_rowᵀB^{-1}
// by BTRAN, then alpha = rhoᵀA row-wise through the CSR mirror, touching
// only the columns of rows where rho is nonzero. Must run before the
// pivot's eta is appended.
func (rv *revised) updateDuals(enter, row int, w []float64) {
	ratio := rv.d[enter] / w[row]
	if ratio != 0 { //vmalloc:nondet-ok structural zero test on a stored ratio entry
		e := rv.cbScratch
		for i := range e {
			e[i] = 0
		}
		e[row] = 1
		rho := rv.yScratch
		rv.lu.btran(rho, e)
		for i := 0; i < rv.m; i++ {
			ri := rho[i]
			if ri == 0 { //vmalloc:nondet-ok structural zero test on a stored eta value
				continue
			}
			for k := rv.rowPtr[i]; k < rv.rowPtr[i+1]; k++ {
				rv.alpha[rv.rowCol[k]] += ri * rv.rowVal[k]
			}
		}
		for i := 0; i < rv.m; i++ {
			if rho[i] == 0 { //vmalloc:nondet-ok structural zero test on a stored row value
				continue
			}
			for k := rv.rowPtr[i]; k < rv.rowPtr[i+1]; k++ {
				j := rv.rowCol[k]
				if a := rv.alpha[j]; a != 0 { //vmalloc:nondet-ok structural zero test on a stored pricing value
					rv.d[j] -= ratio * a
					rv.alpha[j] = 0
				}
			}
		}
	}
	rv.d[enter] = 0
}

func (rv *revised) chooseEntering(bland bool) int {
	best, bestScore := -1, costTol
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic || rv.banned[j] || rv.upper[j] == 0 { //vmalloc:nondet-ok upper bound exactly 0 means fixed-at-zero variable; exact by construction
			continue
		}
		d := rv.d[j]
		var score float64
		if rv.status[j] == atLower && d > costTol {
			score = d
		} else if rv.status[j] == atUpper && d < -costTol {
			score = -d
		} else {
			continue
		}
		if bland {
			return j
		}
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// ratioTest mirrors the dense solver's bounded ratio test over the computed
// direction w = B^{-1}A_enter.
func (rv *revised) ratioTest(enter int, w []float64) (row int, leaveTo varStatus, delta float64) {
	dir := 1.0
	if rv.status[enter] == atUpper {
		dir = -1
	}
	limit := math.Inf(1)
	if u := rv.upper[enter]; !math.IsInf(u, 1) {
		limit = u
	}
	row, leaveTo = -1, atLower
	for i := 0; i < rv.m; i++ {
		a := w[i] * dir
		if math.Abs(a) < pivotTol {
			continue
		}
		var ratio float64
		var to varStatus
		if a > 0 {
			ratio = rv.xB[i] / a
			to = atLower
		} else {
			u := rv.upper[rv.basis[i]]
			if math.IsInf(u, 1) {
				continue
			}
			ratio = (u - rv.xB[i]) / -a
			to = atUpper
		}
		if ratio < -1e-9 {
			ratio = 0
		}
		if ratio < limit-1e-12 {
			limit = ratio
			row, leaveTo = i, to
		}
	}
	if math.IsInf(limit, 1) {
		return -2, atLower, 0
	}
	return row, leaveTo, limit
}

func (rv *revised) apply(enter int, w []float64, row int, leaveTo varStatus, delta float64) {
	dir := 1.0
	if rv.status[enter] == atUpper {
		dir = -1
	}
	if delta != 0 { //vmalloc:nondet-ok structural zero test: an exactly-zero step is a no-op update
		for i := 0; i < rv.m; i++ {
			rv.xB[i] -= w[i] * dir * delta
			if rv.xB[i] < 0 && rv.xB[i] > -zeroClampT {
				rv.xB[i] = 0
			}
		}
	}
	if row == -1 {
		if rv.status[enter] == atLower {
			rv.status[enter] = atUpper
		} else {
			rv.status[enter] = atLower
		}
		return
	}
	newVal := delta
	if rv.status[enter] == atUpper {
		newVal = rv.upper[enter] - delta
	}
	old := rv.basis[row]
	rv.status[old] = leaveTo
	rv.inBasis[old] = -1

	// Record the basis change as an eta; refactorize once the file grows.
	rv.lu.appendEta(row, w)

	rv.basis[row] = enter
	rv.inBasis[enter] = row
	rv.status[enter] = basic
	rv.xB[row] = newVal
	if rv.lu.nEtas() >= refactorEvery {
		rv.refactorize()
	}
}

// refactorize rebuilds the LU factors from the current basis and resets the
// incrementally maintained reduced costs against the fresh factors. A
// failure (numerically singular basis, which pivot-size guarantees should
// prevent) marks the solver broken so iterate aborts instead of diverging.
func (rv *revised) refactorize() {
	rv.refactors++
	if !rv.lu.factorize(rv.basisCols()) {
		rv.broken = true
		return
	}
	rv.priceAll()
}

func (rv *revised) driveOutArtificials() {
	for i := 0; i < rv.m; i++ {
		if rv.basis[i] < rv.nReal {
			continue
		}
		// Find a real nonbasic column with a nonzero entry in row i of
		// B^{-1}A.
		piv := -1
		var wPiv []float64
		for j := 0; j < rv.nReal; j++ {
			if rv.status[j] == basic {
				continue
			}
			w := rv.ftran(j)
			if math.Abs(w[i]) > 1e-7 {
				piv = j
				wPiv = append([]float64(nil), w...)
				break
			}
		}
		if piv < 0 {
			continue // redundant row: artificial stays basic at ~0
		}
		// Degenerate pivot at value 0 (or the variable's current bound).
		val := 0.0
		if rv.status[piv] == atUpper {
			val = rv.upper[piv]
		}
		old := rv.basis[i]
		rv.status[old] = atLower
		rv.inBasis[old] = -1
		rv.lu.appendEta(i, wPiv)
		rv.basis[i] = piv
		rv.inBasis[piv] = i
		rv.status[piv] = basic
		rv.xB[i] = val
		if rv.lu.nEtas() >= refactorEvery {
			rv.refactorize()
		}
	}
}

// refreshXB recomputes the basic values from scratch:
// x_B = B^{-1}·(b − Σ_{j at upper} A_j·u_j), countering incremental drift.
func (rv *revised) refreshXB() {
	r := make([]float64, rv.m)
	copy(r, rv.b)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == atUpper && rv.upper[j] != 0 { //vmalloc:nondet-ok structural zero test on a stored bound
			c := &rv.cols[j]
			u := rv.upper[j]
			for k, row := range c.rows {
				r[row] -= c.vals[k] * u
			}
		}
	}
	rv.lu.ftranDense(rv.scratch, r)
	for i := 0; i < rv.m; i++ {
		s := rv.scratch[i]
		if s < 0 && s > -feasTol {
			s = 0
		}
		rv.xB[i] = s
	}
}

func (rv *revised) extract() []float64 {
	x := make([]float64, rv.n)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == atUpper {
			x[j] = rv.upper[j]
		}
	}
	for i, b := range rv.basis {
		v := rv.xB[i]
		if v < 0 && v > -feasTol {
			v = 0
		}
		x[b] = v
	}
	return x
}
