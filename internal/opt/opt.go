// Package opt post-processes placements: Improve raises the minimum yield
// of an existing placement by hill-climbing over single-service moves and
// pairwise swaps, and Repair adapts an existing placement to a changed
// workload under a migration budget — the operations a production resource
// manager (§8) needs between full reallocations.
//
// Both operations only ever return placements that satisfy all rigid
// requirements, and Improve is monotone: the returned minimum yield is never
// below the input's.
package opt

import (
	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// ImproveOptions tunes the local search.
type ImproveOptions struct {
	// MaxRounds caps full passes over the service list (<= 0 selects 10).
	MaxRounds int
	// MinGain is the minimum-yield improvement below which the search stops
	// (<= 0 selects 1e-6).
	MinGain float64
}

func (o *ImproveOptions) rounds() int {
	if o == nil || o.MaxRounds <= 0 {
		return 10
	}
	return o.MaxRounds
}

func (o *ImproveOptions) gain() float64 {
	if o == nil || o.MinGain <= 0 {
		return 1e-6
	}
	return o.MinGain
}

// Improve hill-climbs from a solved placement: each round it examines, for
// every service on a bottleneck node, all single moves to other nodes and
// all swaps with services on other nodes, applying the change that most
// increases the minimum yield. It stops at a local optimum, after MaxRounds,
// or when the improvement drops below MinGain. The input placement is not
// modified.
func Improve(p *core.Problem, pl core.Placement, opts *ImproveOptions) *core.Result {
	cur := core.EvaluatePlacement(p, pl)
	if !cur.Solved {
		return cur
	}
	for round := 0; round < opts.rounds(); round++ {
		next := bestNeighbor(p, cur)
		if next == nil || next.MinYield <= cur.MinYield+opts.gain() {
			break
		}
		cur = next
	}
	return cur
}

// bestNeighbor returns the best move/swap neighbor strictly improving the
// minimum yield, or nil when none exists.
func bestNeighbor(p *core.Problem, cur *core.Result) *core.Result {
	// Bottleneck nodes: those whose uniform yield equals the minimum.
	byNode := make([][]int, p.NumNodes())
	for j, h := range cur.Placement {
		byNode[h] = append(byNode[h], j)
	}
	bottleneck := map[int]bool{}
	for h := range byNode {
		if len(byNode[h]) == 0 {
			continue
		}
		if core.MaxUniformYield(p, h, byNode[h]) <= cur.MinYield+1e-9 {
			bottleneck[h] = true
		}
	}

	var best *core.Result
	// One scratch placement serves every candidate: each mutation is undone
	// after evaluation, and EvaluatePlacement clones internally, so the
	// retained best result never aliases the scratch.
	scratch := cur.Placement.Clone()
	try := func(pl core.Placement) {
		res := core.EvaluatePlacement(p, pl)
		if !res.Solved {
			return
		}
		if res.MinYield > cur.MinYield+1e-12 && (best == nil || res.MinYield > best.MinYield) {
			best = res
		}
	}

	for j, hj := range cur.Placement {
		if !bottleneck[hj] {
			continue
		}
		// Moves.
		for h := 0; h < p.NumNodes(); h++ {
			if h == hj {
				continue
			}
			scratch[j] = h
			try(scratch)
			scratch[j] = hj
		}
		// Swaps with services on other nodes.
		for k, hk := range cur.Placement {
			if k == j || hk == hj {
				continue
			}
			scratch[j], scratch[k] = hk, hj
			try(scratch)
			scratch[j], scratch[k] = hj, hk
		}
	}
	return best
}

// RepairOptions tunes Repair.
type RepairOptions struct {
	// Budget caps the number of already-placed services that may change
	// node (new services do not count). Negative means unlimited.
	Budget int
	// Improve additionally runs the local search after repair, still within
	// the remaining migration budget... the search counts each move/swap of
	// an old service against the budget.
	Improve bool
}

// Repair places the services of p starting from a previous placement prev:
// entries with a valid node are kept if their requirements still fit;
// services that are new (prev entry Unplaced or out of range) or no longer
// fit are (re)placed by best-fit on remaining requirement capacity. At most
// opts.Budget previously-placed services are moved. It returns an unsolved
// result if the workload cannot be accommodated within the budget.
func Repair(p *core.Problem, prev core.Placement, opts *RepairOptions) *core.Result {
	if opts == nil {
		opts = &RepairOptions{Budget: -1}
	}
	budget := opts.Budget
	J, H := p.NumServices(), p.NumNodes()
	pl := core.NewPlacement(J)
	loads := make([]vec.Vec, H)
	for h := range loads {
		loads[h] = vec.New(p.Dim())
	}

	// Pass 1: keep still-feasible old assignments.
	type pending struct {
		j   int
		old bool // previously placed (a move costs budget)
	}
	var todo []pending
	for j := 0; j < J; j++ {
		h := core.Unplaced
		if j < len(prev) {
			h = prev[j]
		}
		if h >= 0 && h < H {
			s := &p.Services[j]
			if s.FitsRequirements(&p.Nodes[h], loads[h]) {
				pl[j] = h
				loads[h].AccumAdd(s.ReqAgg)
				continue
			}
			todo = append(todo, pending{j, true})
			continue
		}
		todo = append(todo, pending{j, false})
	}

	// Pass 2: place the rest by best fit (least remaining requirement
	// capacity), charging moves of old services against the budget.
	for _, t := range todo {
		if t.old && budget == 0 {
			return &core.Result{Placement: pl}
		}
		s := &p.Services[t.j]
		best, bestScore := -1, 0.0
		for h := 0; h < H; h++ {
			if !s.FitsRequirements(&p.Nodes[h], loads[h]) {
				continue
			}
			rem := p.Nodes[h].Aggregate.Sub(loads[h]).Sum()
			if best == -1 || rem < bestScore {
				best, bestScore = h, rem
			}
		}
		if best == -1 {
			return &core.Result{Placement: pl}
		}
		pl[t.j] = best
		loads[best].AccumAdd(s.ReqAgg)
		if t.old && budget > 0 {
			budget--
		}
	}

	res := core.EvaluatePlacement(p, pl)
	if !res.Solved || !opts.Improve {
		return res
	}
	// Budget-aware improvement: accept neighbors only while budget allows.
	cur := res
	for budget != 0 {
		next := bestNeighbor(p, cur)
		if next == nil || next.MinYield <= cur.MinYield+1e-6 {
			break
		}
		moved := countMoves(cur.Placement, next.Placement)
		if budget > 0 {
			if moved > budget {
				break
			}
			budget -= moved
		}
		cur = next
	}
	return cur
}

// countMoves returns how many services differ between two placements.
func countMoves(a, b core.Placement) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// Migrations returns how many services moved from prev to next, ignoring
// services that were unplaced in prev (new arrivals are free).
func Migrations(prev, next core.Placement) int {
	n := 0
	for i := range next {
		if i < len(prev) && prev[i] >= 0 && prev[i] != next[i] {
			n++
		}
	}
	return n
}
