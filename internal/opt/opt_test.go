package opt

import (
	"math"
	"math/rand"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/greedy"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

// unbalanced builds two identical nodes with two services stacked on node 0,
// so one move doubles the minimum yield.
func unbalanced() (*core.Problem, core.Placement) {
	n := core.Node{Elementary: vec.Of(0.5, 1), Aggregate: vec.Of(1, 1)}
	s := core.Service{
		ReqElem: vec.Of(0.01, 0.2), ReqAgg: vec.Of(0.01, 0.2),
		NeedElem: vec.Of(0.25, 0), NeedAgg: vec.Of(1.0, 0),
	}
	p := &core.Problem{Nodes: []core.Node{n, n}, Services: []core.Service{s, s}}
	return p, core.Placement{0, 0}
}

func TestImproveMovesOffBottleneck(t *testing.T) {
	p, pl := unbalanced()
	before := core.EvaluatePlacement(p, pl)
	res := Improve(p, pl, nil)
	if !res.Solved {
		t.Fatal("improve lost feasibility")
	}
	if res.MinYield <= before.MinYield {
		t.Fatalf("no improvement: %v -> %v", before.MinYield, res.MinYield)
	}
	if res.Placement[0] == res.Placement[1] {
		t.Fatalf("services should be spread: %v", res.Placement)
	}
	// Spread placement: each service alone gets (1-0.01)/1.0 ~ 0.99 CPU.
	if res.MinYield < 0.9 {
		t.Fatalf("yield = %v", res.MinYield)
	}
}

func TestImproveMonotoneAndValidOnRandom(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		p := workload.Generate(workload.Scenario{
			Hosts: 5, Services: 15, COV: 0.7, Slack: 0.5, Seed: int64(iter),
		})
		base := greedy.Solve(p, greedy.S1, greedy.P7)
		if !base.Solved {
			continue
		}
		res := Improve(p, base.Placement, nil)
		if !res.Solved {
			t.Fatalf("iter %d: improve lost feasibility", iter)
		}
		if res.MinYield < base.MinYield-1e-9 {
			t.Fatalf("iter %d: yield decreased %v -> %v", iter, base.MinYield, res.MinYield)
		}
		if err := res.Placement.Validate(p); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestImproveOnUnsolvedInput(t *testing.T) {
	p, _ := unbalanced()
	res := Improve(p, core.NewPlacement(2), nil)
	if res.Solved {
		t.Fatal("unsolved input should remain unsolved")
	}
}

func TestImproveRespectsMaxRounds(t *testing.T) {
	p, pl := unbalanced()
	res := Improve(p, pl, &ImproveOptions{MaxRounds: 1})
	if !res.Solved {
		t.Fatal("should still be solved")
	}
}

func TestRepairKeepsFeasibleAssignments(t *testing.T) {
	p, _ := unbalanced()
	prev := core.Placement{0, 1}
	res := Repair(p, prev, &RepairOptions{Budget: 0})
	if !res.Solved {
		t.Fatal("repair failed")
	}
	if res.Placement[0] != 0 || res.Placement[1] != 1 {
		t.Fatalf("placement changed without need: %v", res.Placement)
	}
	if n := Migrations(prev, res.Placement); n != 0 {
		t.Fatalf("migrations = %d", n)
	}
}

func TestRepairPlacesNewServices(t *testing.T) {
	p, _ := unbalanced()
	// Third service arrives; prev covers only two.
	p.Services = append(p.Services, p.Services[0])
	prev := core.Placement{0, 1}
	res := Repair(p, prev, &RepairOptions{Budget: 0})
	if !res.Solved {
		t.Fatal("repair failed to place arrival")
	}
	if res.Placement[0] != 0 || res.Placement[1] != 1 {
		t.Fatal("old assignments must be preserved with zero budget")
	}
	if res.Placement[2] == core.Unplaced {
		t.Fatal("new service unplaced")
	}
}

func TestRepairBudgetBlocksMoves(t *testing.T) {
	p, _ := unbalanced()
	// Shrink node 0 so service 0 no longer fits there: repair must move it,
	// which the zero budget forbids.
	p.Nodes[0].Aggregate = vec.Of(1, 0.1)
	p.Nodes[0].Elementary = vec.Of(0.5, 0.1)
	prev := core.Placement{0, 1}
	res := Repair(p, prev, &RepairOptions{Budget: 0})
	if res.Solved {
		t.Fatal("zero budget should block the required move")
	}
	res = Repair(p, prev, &RepairOptions{Budget: 1})
	if !res.Solved {
		t.Fatal("budget 1 should allow the move")
	}
	if n := Migrations(prev, res.Placement); n != 1 {
		t.Fatalf("migrations = %d, want 1", n)
	}
}

func TestRepairUnlimitedBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 20; iter++ {
		p := workload.Generate(workload.Scenario{
			Hosts: 5, Services: 12, COV: 0.5, Slack: 0.5, Seed: int64(100 + iter),
		})
		// Random junk previous placement (may be partly infeasible).
		prev := make(core.Placement, 12)
		for i := range prev {
			prev[i] = rng.Intn(5)
		}
		res := Repair(p, prev, &RepairOptions{Budget: -1, Improve: true})
		if res.Solved {
			if err := res.Placement.Validate(p); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	}
}

func TestRepairWithImproveNeverWorseThanPlain(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := workload.Generate(workload.Scenario{
			Hosts: 4, Services: 12, COV: 0.6, Slack: 0.5, Seed: seed,
		})
		prev := core.NewPlacement(12) // everything new
		plain := Repair(p, prev, &RepairOptions{Budget: -1})
		improved := Repair(p, prev, &RepairOptions{Budget: -1, Improve: true})
		if plain.Solved != improved.Solved {
			t.Fatalf("seed %d: solved mismatch", seed)
		}
		if plain.Solved && improved.MinYield < plain.MinYield-1e-9 {
			t.Fatalf("seed %d: improve made it worse: %v -> %v", seed, plain.MinYield, improved.MinYield)
		}
	}
}

func TestCountAndMigrations(t *testing.T) {
	a := core.Placement{0, 1, 2, core.Unplaced}
	b := core.Placement{0, 2, 2, 1}
	if countMoves(a, b) != 2 {
		t.Fatalf("countMoves = %d", countMoves(a, b))
	}
	// Unplaced->1 is an arrival, not a migration.
	if Migrations(a, b) != 1 {
		t.Fatalf("Migrations = %d", Migrations(a, b))
	}
}

func TestImproveReachesNearOptimalOnTinyInstance(t *testing.T) {
	// Figure-1-like: improving from the worse node should find the better.
	p := &core.Problem{
		Nodes: []core.Node{
			{Elementary: vec.Of(0.8, 1.0), Aggregate: vec.Of(3.2, 1.0)},
			{Elementary: vec.Of(1.0, 0.5), Aggregate: vec.Of(2.0, 0.5)},
		},
		Services: []core.Service{{
			ReqElem: vec.Of(0.5, 0.5), ReqAgg: vec.Of(1.0, 0.5),
			NeedElem: vec.Of(0.5, 0), NeedAgg: vec.Of(1.0, 0),
		}},
	}
	res := Improve(p, core.Placement{0}, nil)
	if math.Abs(res.MinYield-1.0) > 1e-9 || res.Placement[0] != 1 {
		t.Fatalf("improve should move to node B: %+v", res)
	}
}
