package platform

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/workload"
)

// The golden-trajectory harness pins the simulator's observable behavior
// bit-for-bit: for a fixed seed, the full Stats (counters and every Sample
// field, floats compared exactly) must not change across refactors of the
// epoch hot path. The files under testdata were generated from the
// rebuild-per-epoch simulator that predates the persistent engine; run with
//
//	go test ./internal/platform -run TestGoldenTrajectories -golden.update
//
// to regenerate them after an intentional behavior change.
var updateGolden = flag.Bool("golden.update", false, "rewrite golden trajectory files")

// goldenNodes is the acceptance-criteria platform: 16 heterogeneous hosts.
func goldenNodes() []core.Node {
	return workload.Platform(workload.Scenario{
		Hosts: 16, COV: 0.5, Mode: workload.HeteroBoth, Seed: 1,
	}, rand.New(rand.NewSource(1)))
}

// goldenConfigs enumerates the pinned trajectories. "steady" is the
// acceptance-criteria scale (16 hosts, arrival rate 8, horizon 200) with
// noisy estimates and the adaptive threshold controller; "clean" exercises
// the error-free full-reallocation path; "repair" the migration-bounded
// incremental path with a static threshold.
func goldenConfigs() map[string]Config {
	nodes := goldenNodes()
	return map[string]Config{
		"steady": {
			Nodes: nodes, ArrivalRate: 8, MeanLifetime: 10, Horizon: 200,
			Epoch: 5, MaxErr: 0.2, Threshold: AdaptiveThreshold, Seed: 1,
		},
		"clean": {
			Nodes: nodes, ArrivalRate: 8, MeanLifetime: 10, Horizon: 60,
			Epoch: 5, Seed: 7,
		},
		"repair": {
			Nodes: nodes, ArrivalRate: 8, MeanLifetime: 10, Horizon: 60,
			Epoch: 5, MaxErr: 0.1, Threshold: 0.05,
			UseRepair: true, MigrationBudget: 3, Seed: 3,
		},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_"+name+".json")
}

func runGoldenConfig(t *testing.T, cfg Config) *Stats {
	t.Helper()
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// compareStats asserts exact equality, floats included: encoding/json emits
// the shortest round-trip representation of a float64, so unmarshalled golden
// values are bitwise-comparable to freshly computed ones.
func compareStats(t *testing.T, name string, got, want *Stats) {
	t.Helper()
	if got.Arrivals != want.Arrivals || got.Rejections != want.Rejections ||
		got.Departures != want.Departures || got.Migrations != want.Migrations ||
		got.Reallocs != want.Reallocs || got.FailedEpoch != want.FailedEpoch {
		t.Fatalf("%s: counters diverged:\n got  %+v\n want %+v",
			name, statsHeader(got), statsHeader(want))
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("%s: %d samples, want %d", name, len(got.Samples), len(want.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("%s: sample %d diverged:\n got  %+v\n want %+v",
				name, i, got.Samples[i], want.Samples[i])
		}
	}
}

func statsHeader(st *Stats) Stats {
	h := *st
	h.Samples = nil
	return h
}

func TestGoldenTrajectories(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			st := runGoldenConfig(t, cfg)
			path := goldenPath(name)
			if *updateGolden {
				data, err := json.MarshalIndent(st, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d samples)", path, len(st.Samples))
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -golden.update): %v", err)
			}
			var want Stats
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			compareStats(t, name, st, &want)
		})
	}
}

// TestGoldenTrajectoriesParallel re-runs the full-reallocation golden
// configs with the engine's parallel meta enabled: the deterministic
// lowest-index-success reduction must reproduce the sequential trajectories
// exactly, worker count notwithstanding. The "repair" config is excluded —
// repair epochs run through opt.Repair and never touch the parallel roster,
// so re-running it here would add no coverage.
func TestGoldenTrajectoriesParallel(t *testing.T) {
	for _, name := range []string{"clean"} {
		cfg := goldenConfigs()[name]
		cfg.Parallel = true
		cfg.Workers = 4
		t.Run(name, func(t *testing.T) {
			st := runGoldenConfig(t, cfg)
			data, err := os.ReadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("missing golden file (run with -golden.update): %v", err)
			}
			var want Stats
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			compareStats(t, name, st, &want)
		})
	}
	if testing.Short() {
		return
	}
	cfg := goldenConfigs()["steady"]
	cfg.Parallel = true
	cfg.Workers = 4
	st := runGoldenConfig(t, cfg)
	data, err := os.ReadFile(goldenPath("steady"))
	if err != nil {
		t.Fatal(err)
	}
	var want Stats
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	compareStats(t, "steady-parallel", st, &want)
}
