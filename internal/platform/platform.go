// Package platform is a discrete-event simulator of a virtualized service
// hosting platform driven by the paper's allocation algorithms — the §8
// "future work" system: METAHVPLIGHT (or any placer) runs as the resource
// management component of a hosting infrastructure, services arrive and
// depart over time, CPU-need estimates are noisy, and the error-mitigation
// threshold can adapt to the observed estimation error.
//
// The simulator is a thin driver over the persistent allocation engine
// (internal/engine): the engine owns the live cluster state — slab-resident
// services, incrementally maintained per-node loads, recycled problem views
// and long-lived solver arenas — while the simulator owns time: the event
// queue, the workload generator, the estimation-error window and the
// adaptive-threshold controller. Admission uses the engine's best-fit test,
// reallocation happens every epoch through the engine (full meta
// reallocation or migration-bounded repair), and achieved yields are sampled
// under the work-conserving ALLOCWEIGHTS policy. For a fixed seed the
// trajectory is deterministic regardless of Parallel/Workers, and the
// golden-trajectory tests pin it bit for bit against the historical
// rebuild-per-epoch simulator at the acceptance-scale seeds (see the
// internal/engine doc for the one ULP-level caveat on admission ties).
package platform

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vmalloc/internal/core"
	"vmalloc/internal/engine"
	"vmalloc/internal/heapx"
	"vmalloc/internal/hvp"
	"vmalloc/internal/sched"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

// Placer computes a placement from the (estimated) problem view.
type Placer func(p *core.Problem) *core.Result

// DefaultPlacer is METAHVPLIGHT at the paper's tolerance — the algorithm the
// engine's persistent path reproduces exactly; set Config.Placer only to
// override it.
func DefaultPlacer(p *core.Problem) *core.Result { return hvp.MetaHVPLight(p, 0) }

// AdaptiveThreshold requests the feedback controller of §8: the mitigation
// threshold follows the maximum estimation error observed on departed
// services (scaled by SafetyFactor).
const AdaptiveThreshold = -1

// Config parameterizes one simulation run.
type Config struct {
	// Nodes is the fixed physical platform.
	Nodes []core.Node
	// ArrivalRate is the mean number of service arrivals per unit time
	// (Poisson process).
	ArrivalRate float64
	// MeanLifetime is the mean service lifetime (exponential).
	MeanLifetime float64
	// Horizon is the simulated duration.
	Horizon float64
	// Epoch is the reallocation period; the placer runs at every multiple.
	Epoch float64
	// MaxErr bounds the uniform CPU-need estimation error of arriving
	// services (0 = perfect estimates).
	MaxErr float64
	// Threshold is the §6.2 mitigation threshold applied to estimates
	// before placement; AdaptiveThreshold enables the feedback controller.
	Threshold float64
	// SafetyFactor scales the adaptive threshold (default 1.0).
	SafetyFactor float64
	// Placer overrides the engine's built-in METAHVPLIGHT reallocation.
	Placer Placer
	// UseRepair switches epochs from full reallocation to migration-bounded
	// incremental repair (internal/opt): still-feasible services stay put,
	// and at most MigrationBudget services move per epoch.
	UseRepair bool
	// MigrationBudget caps migrations per repair epoch (negative =
	// unlimited). Ignored unless UseRepair is set.
	MigrationBudget int
	// Parallel races the reallocation strategy roster across Workers
	// goroutines inside the engine. The deterministic lowest-index-success
	// reduction keeps the trajectory bit-identical to the sequential run.
	Parallel bool
	// Workers is the parallel worker count; <= 0 selects GOMAXPROCS.
	Workers int
	// Seed drives all randomness.
	Seed int64
	// Google overrides the service-size marginals (DefaultGoogle when nil).
	Google *workload.Google
	// MeanCPUNeed sets the average aggregate CPU need of arrivals; when 0 a
	// value is derived so that steady-state CPU demand is ~70% of capacity.
	MeanCPUNeed float64
}

// Sample is one epoch observation.
type Sample struct {
	Time       float64
	Services   int
	MinYield   float64
	MeanYield  float64
	Migrations int
	Threshold  float64
	Solved     bool
}

// Stats aggregates a run.
type Stats struct {
	Samples     []Sample
	Arrivals    int
	Rejections  int
	Departures  int
	Migrations  int
	Reallocs    int
	FailedEpoch int // epochs where the placer could not place everything
}

// MeanMinYield averages the sampled minimum yield over epochs with at least
// one hosted service.
func (st *Stats) MeanMinYield() float64 {
	sum, n := 0.0, 0
	for _, s := range st.Samples {
		if s.Services > 0 && s.Solved {
			sum += s.MinYield
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RejectionRate is rejected arrivals over total arrivals.
func (st *Stats) RejectionRate() float64 {
	if st.Arrivals == 0 {
		return 0
	}
	return float64(st.Rejections) / float64(st.Arrivals)
}

// event kinds.
const (
	evArrival = iota
	evDeparture
	evEpoch
)

type event struct {
	t    float64
	kind int
	id   int // engine service id for departures
	seq  int // tie-breaker for deterministic ordering
}

// eventLess orders events by time, ties broken by insertion sequence — a
// total order, so the generic heap pops the exact sequence the historical
// container/heap implementation did.
func eventLess(a, b event) bool {
	if a.t != b.t { //vmalloc:nondet-ok event-time tie-break: exact equality is required for a deterministic total order
		return a.t < b.t
	}
	return a.seq < b.seq
}

// sim owns simulated time and the workload; cluster state lives in the
// engine.
type sim struct {
	cfg    Config
	rng    *rand.Rand
	now    float64
	queue  *heapx.Heap[event]
	seq    int
	eng    *engine.Engine
	nextID int // names arriving services (rejected ones consume a number too)
	stats  Stats
	// observed estimation errors of departed services, for adaptation
	errWindow []float64
	threshold float64
}

// Run executes the simulation and returns its statistics.
func Run(cfg Config) (*Stats, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("platform: no nodes")
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanLifetime <= 0 || cfg.Horizon <= 0 || cfg.Epoch <= 0 {
		return nil, fmt.Errorf("platform: rates, horizon and epoch must be positive")
	}
	if cfg.Google == nil {
		cfg.Google = workload.DefaultGoogle()
	}
	if cfg.SafetyFactor <= 0 {
		cfg.SafetyFactor = 1.0
	}
	if cfg.MeanCPUNeed <= 0 {
		totalCPU := 0.0
		for _, n := range cfg.Nodes {
			totalCPU += n.Aggregate[workload.CPU]
		}
		steady := cfg.ArrivalRate * cfg.MeanLifetime // mean live services
		cfg.MeanCPUNeed = 0.7 * totalCPU / math.Max(steady, 1)
	}

	eng, err := engine.New(engine.Config{
		Nodes:    cfg.Nodes,
		CPUDim:   workload.CPU,
		Placer:   engine.Placer(cfg.Placer),
		Parallel: cfg.Parallel,
		Workers:  cfg.Workers,
		Now:      time.Now,
	})
	if err != nil {
		return nil, fmt.Errorf("platform: %v", err)
	}
	s := &sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		queue: heapx.New(eventLess),
		eng:   eng,
	}
	if cfg.Threshold == AdaptiveThreshold { //vmalloc:nondet-ok AdaptiveThreshold is an exact sentinel constant, never computed
		s.threshold = 0
	} else {
		s.threshold = cfg.Threshold
	}

	s.push(event{t: s.expo(1 / cfg.ArrivalRate), kind: evArrival})
	s.push(event{t: cfg.Epoch, kind: evEpoch})

	for s.queue.Len() > 0 {
		ev := s.queue.Pop()
		if ev.t > cfg.Horizon {
			break
		}
		s.now = ev.t
		switch ev.kind {
		case evArrival:
			s.arrive()
			s.push(event{t: s.now + s.expo(1/cfg.ArrivalRate), kind: evArrival})
		case evDeparture:
			s.depart(ev.id)
		case evEpoch:
			s.reallocate()
			s.push(event{t: s.now + cfg.Epoch, kind: evEpoch})
		}
	}
	return &s.stats, nil
}

func (s *sim) push(ev event) {
	ev.seq = s.seq
	s.seq++
	s.queue.Push(ev)
}

// expo draws an exponential variate with the given mean.
func (s *sim) expo(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// newService draws a service from the Google marginals with CPU needs scaled
// to the configured mean and a perturbed estimate, plus its departure time.
// The draw sequence (core count, memory, estimate error, lifetime) is part
// of the pinned trajectory contract.
func (s *sim) newService() (trueSvc, estSvc core.Service, departAt float64) {
	g := s.cfg.Google
	cores := g.CoreChoices[0]
	{ // inline categorical draw (mirrors workload.sampleCores)
		total := 0.0
		for _, w := range g.CoreWeights {
			total += w
		}
		r := s.rng.Float64() * total
		for i, w := range g.CoreWeights {
			r -= w
			if r < 0 {
				cores = g.CoreChoices[i]
				break
			}
		}
	}
	mem := math.Exp(s.rng.NormFloat64()*g.MemLogSigma+g.MemLogMean) * 0.5
	if mem < g.MemMin {
		mem = g.MemMin
	}
	// Scale CPU need: core count relative to the mean core count maps the
	// configured mean need onto this service.
	meanCores := 0.0
	{
		tw := 0.0
		for i, w := range g.CoreWeights {
			meanCores += w * float64(g.CoreChoices[i])
			tw += w
		}
		meanCores /= tw
	}
	needCPU := s.cfg.MeanCPUNeed * float64(cores) / meanCores
	trueSvc = core.Service{
		Name:     fmt.Sprintf("svc-%d", s.nextID),
		ReqElem:  vec.Of(g.ElemCPURequirement, mem),
		ReqAgg:   vec.Of(g.ElemCPURequirement, mem),
		NeedElem: vec.Of(needCPU/float64(cores), 0),
		NeedAgg:  vec.Of(needCPU, 0),
	}
	estSvc = trueSvc
	estSvc.ReqElem = trueSvc.ReqElem.Clone()
	estSvc.ReqAgg = trueSvc.ReqAgg.Clone()
	estSvc.NeedElem = trueSvc.NeedElem.Clone()
	estSvc.NeedAgg = trueSvc.NeedAgg.Clone()
	if s.cfg.MaxErr > 0 {
		e := (s.rng.Float64()*2 - 1) * s.cfg.MaxErr
		est := math.Max(0.001, needCPU+e)
		estSvc.NeedAgg[workload.CPU] = est
		estSvc.NeedElem[workload.CPU] = est / float64(cores)
	}
	s.nextID++
	return trueSvc, estSvc, s.now + s.expo(s.cfg.MeanLifetime)
}

// arrive admits a new service through the engine's best-fit test against its
// incrementally maintained requirement loads; rejection counts but does not
// stop the simulation.
func (s *sim) arrive() {
	s.stats.Arrivals++
	trueSvc, estSvc, departAt := s.newService()
	id, _, ok := s.eng.Add(trueSvc, estSvc)
	if !ok {
		s.stats.Rejections++
		return
	}
	s.push(event{t: departAt, kind: evDeparture, id: id})
}

// depart removes a service and records its estimation error for adaptation.
func (s *sim) depart(id int) {
	trueSvc, estSvc, ok := s.eng.Service(id)
	if !ok {
		return // already gone
	}
	s.stats.Departures++
	errAbs := math.Abs(estSvc.NeedAgg[workload.CPU] - trueSvc.NeedAgg[workload.CPU])
	s.errWindow = append(s.errWindow, errAbs)
	if len(s.errWindow) > 64 {
		s.errWindow = s.errWindow[len(s.errWindow)-64:]
	}
	s.eng.Remove(id)
}

// adaptThreshold updates the mitigation threshold from the observed error
// window (paper §8: "determining and adapting the threshold").
func (s *sim) adaptThreshold() {
	if s.cfg.Threshold != AdaptiveThreshold || len(s.errWindow) == 0 { //vmalloc:nondet-ok AdaptiveThreshold is an exact sentinel constant, never computed
		return
	}
	maxErr := 0.0
	for _, e := range s.errWindow {
		if e > maxErr {
			maxErr = e
		}
	}
	s.threshold = s.cfg.SafetyFactor * maxErr
}

// reallocate runs one engine epoch (full reallocation or bounded repair),
// then samples achieved yields on the engine's views.
func (s *sim) reallocate() {
	s.adaptThreshold()
	s.eng.SetThreshold(s.threshold)
	sample := Sample{Time: s.now, Services: s.eng.Len(), Threshold: s.threshold}
	if sample.Services == 0 {
		sample.Solved = true
		s.stats.Samples = append(s.stats.Samples, sample)
		return
	}
	s.stats.Reallocs++
	var rep *engine.EpochReport
	if s.cfg.UseRepair {
		rep = s.eng.Repair(s.cfg.MigrationBudget)
	} else {
		rep = s.eng.Reallocate()
	}
	res := rep.Result
	trueP, estP := s.eng.TrueView(), s.eng.EstView()
	if !res.Solved {
		// Keep the previous placement; evaluate it as-is.
		s.stats.FailedEpoch++
		sample.MinYield = sched.EvaluatePlacement(trueP, estP, s.eng.ViewPlacement(), sched.AllocWeights, workload.CPU)
		s.stats.Samples = append(s.stats.Samples, sample)
		return
	}
	sample.Migrations = rep.Migrations
	s.stats.Migrations += rep.Migrations
	sample.Solved = true
	sample.MinYield = sched.EvaluatePlacement(trueP, estP, res.Placement, sched.AllocWeights, workload.CPU)
	// Mean yield under max-uniform-yield evaluation of the true problem.
	if ev := core.EvaluatePlacement(trueP, res.Placement); ev.Solved {
		sum := 0.0
		for _, y := range ev.Yields {
			sum += y
		}
		sample.MeanYield = sum / float64(len(ev.Yields))
	}
	s.stats.Samples = append(s.stats.Samples, sample)
}
