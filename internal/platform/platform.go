// Package platform is a discrete-event simulator of a virtualized service
// hosting platform driven by the paper's allocation algorithms — the §8
// "future work" system: METAHVPLIGHT (or any placer) runs as the resource
// management component of a hosting infrastructure, services arrive and
// depart over time, CPU-need estimates are noisy, and the error-mitigation
// threshold can adapt to the observed estimation error.
//
// The simulator maintains the true and estimated problem views, admits
// arrivals with a best-fit admission test, reallocates every epoch with the
// configured placer (counting migrations), and samples achieved yields under
// the work-conserving ALLOCWEIGHTS policy between epochs.
package platform

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"vmalloc/internal/core"
	"vmalloc/internal/hvp"
	"vmalloc/internal/opt"
	"vmalloc/internal/sched"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

// Placer computes a placement from the (estimated) problem view.
type Placer func(p *core.Problem) *core.Result

// DefaultPlacer is METAHVPLIGHT at the paper's tolerance.
func DefaultPlacer(p *core.Problem) *core.Result { return hvp.MetaHVPLight(p, 0) }

// AdaptiveThreshold requests the feedback controller of §8: the mitigation
// threshold follows the maximum estimation error observed on departed
// services (scaled by SafetyFactor).
const AdaptiveThreshold = -1

// Config parameterizes one simulation run.
type Config struct {
	// Nodes is the fixed physical platform.
	Nodes []core.Node
	// ArrivalRate is the mean number of service arrivals per unit time
	// (Poisson process).
	ArrivalRate float64
	// MeanLifetime is the mean service lifetime (exponential).
	MeanLifetime float64
	// Horizon is the simulated duration.
	Horizon float64
	// Epoch is the reallocation period; the placer runs at every multiple.
	Epoch float64
	// MaxErr bounds the uniform CPU-need estimation error of arriving
	// services (0 = perfect estimates).
	MaxErr float64
	// Threshold is the §6.2 mitigation threshold applied to estimates
	// before placement; AdaptiveThreshold enables the feedback controller.
	Threshold float64
	// SafetyFactor scales the adaptive threshold (default 1.0).
	SafetyFactor float64
	// Placer computes placements (DefaultPlacer when nil).
	Placer Placer
	// UseRepair switches epochs from full reallocation to migration-bounded
	// incremental repair (internal/opt): still-feasible services stay put,
	// and at most MigrationBudget services move per epoch.
	UseRepair bool
	// MigrationBudget caps migrations per repair epoch (negative =
	// unlimited). Ignored unless UseRepair is set.
	MigrationBudget int
	// Seed drives all randomness.
	Seed int64
	// Google overrides the service-size marginals (DefaultGoogle when nil).
	Google *workload.Google
	// MeanCPUNeed sets the average aggregate CPU need of arrivals; when 0 a
	// value is derived so that steady-state CPU demand is ~70% of capacity.
	MeanCPUNeed float64
}

// Sample is one epoch observation.
type Sample struct {
	Time       float64
	Services   int
	MinYield   float64
	MeanYield  float64
	Migrations int
	Threshold  float64
	Solved     bool
}

// Stats aggregates a run.
type Stats struct {
	Samples     []Sample
	Arrivals    int
	Rejections  int
	Departures  int
	Migrations  int
	Reallocs    int
	FailedEpoch int // epochs where the placer could not place everything
}

// MeanMinYield averages the sampled minimum yield over epochs with at least
// one hosted service.
func (st *Stats) MeanMinYield() float64 {
	sum, n := 0.0, 0
	for _, s := range st.Samples {
		if s.Services > 0 && s.Solved {
			sum += s.MinYield
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RejectionRate is rejected arrivals over total arrivals.
func (st *Stats) RejectionRate() float64 {
	if st.Arrivals == 0 {
		return 0
	}
	return float64(st.Rejections) / float64(st.Arrivals)
}

// event kinds.
const (
	evArrival = iota
	evDeparture
	evEpoch
)

type event struct {
	t    float64
	kind int
	id   int // service id for departures
	seq  int // tie-breaker for deterministic ordering
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// liveService is one hosted service with its true and estimated views.
type liveService struct {
	id       int
	trueSvc  core.Service
	estSvc   core.Service
	node     int
	arrived  float64
	departAt float64
}

// sim is the mutable simulation state.
type sim struct {
	cfg    Config
	rng    *rand.Rand
	now    float64
	queue  eventQueue
	seq    int
	live   map[int]*liveService
	order  []int // live service ids in arrival order (stable problem views)
	nextID int
	stats  Stats
	// observed estimation errors of departed services, for adaptation
	errWindow []float64
	threshold float64
}

// Run executes the simulation and returns its statistics.
func Run(cfg Config) (*Stats, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("platform: no nodes")
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanLifetime <= 0 || cfg.Horizon <= 0 || cfg.Epoch <= 0 {
		return nil, fmt.Errorf("platform: rates, horizon and epoch must be positive")
	}
	if cfg.Placer == nil {
		cfg.Placer = DefaultPlacer
	}
	if cfg.Google == nil {
		cfg.Google = workload.DefaultGoogle()
	}
	if cfg.SafetyFactor <= 0 {
		cfg.SafetyFactor = 1.0
	}
	if cfg.MeanCPUNeed <= 0 {
		totalCPU := 0.0
		for _, n := range cfg.Nodes {
			totalCPU += n.Aggregate[workload.CPU]
		}
		steady := cfg.ArrivalRate * cfg.MeanLifetime // mean live services
		cfg.MeanCPUNeed = 0.7 * totalCPU / math.Max(steady, 1)
	}

	s := &sim{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		live: map[int]*liveService{},
	}
	if cfg.Threshold == AdaptiveThreshold {
		s.threshold = 0
	} else {
		s.threshold = cfg.Threshold
	}

	s.push(event{t: s.expo(1 / cfg.ArrivalRate), kind: evArrival})
	s.push(event{t: cfg.Epoch, kind: evEpoch})

	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(event)
		if ev.t > cfg.Horizon {
			break
		}
		s.now = ev.t
		switch ev.kind {
		case evArrival:
			s.arrive()
			s.push(event{t: s.now + s.expo(1/cfg.ArrivalRate), kind: evArrival})
		case evDeparture:
			s.depart(ev.id)
		case evEpoch:
			s.reallocate()
			s.push(event{t: s.now + cfg.Epoch, kind: evEpoch})
		}
	}
	return &s.stats, nil
}

func (s *sim) push(ev event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
}

// expo draws an exponential variate with the given mean.
func (s *sim) expo(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// newService draws a service from the Google marginals with CPU needs scaled
// to the configured mean and a perturbed estimate.
func (s *sim) newService() *liveService {
	g := s.cfg.Google
	cores := g.CoreChoices[0]
	{ // inline categorical draw (mirrors workload.sampleCores)
		total := 0.0
		for _, w := range g.CoreWeights {
			total += w
		}
		r := s.rng.Float64() * total
		for i, w := range g.CoreWeights {
			r -= w
			if r < 0 {
				cores = g.CoreChoices[i]
				break
			}
		}
	}
	mem := math.Exp(s.rng.NormFloat64()*g.MemLogSigma+g.MemLogMean) * 0.5
	if mem < g.MemMin {
		mem = g.MemMin
	}
	// Scale CPU need: core count relative to the mean core count maps the
	// configured mean need onto this service.
	meanCores := 0.0
	{
		tw := 0.0
		for i, w := range g.CoreWeights {
			meanCores += w * float64(g.CoreChoices[i])
			tw += w
		}
		meanCores /= tw
	}
	needCPU := s.cfg.MeanCPUNeed * float64(cores) / meanCores
	trueSvc := core.Service{
		Name:     fmt.Sprintf("svc-%d", s.nextID),
		ReqElem:  vec.Of(g.ElemCPURequirement, mem),
		ReqAgg:   vec.Of(g.ElemCPURequirement, mem),
		NeedElem: vec.Of(needCPU/float64(cores), 0),
		NeedAgg:  vec.Of(needCPU, 0),
	}
	estSvc := trueSvc
	estSvc.ReqElem = trueSvc.ReqElem.Clone()
	estSvc.ReqAgg = trueSvc.ReqAgg.Clone()
	estSvc.NeedElem = trueSvc.NeedElem.Clone()
	estSvc.NeedAgg = trueSvc.NeedAgg.Clone()
	if s.cfg.MaxErr > 0 {
		e := (s.rng.Float64()*2 - 1) * s.cfg.MaxErr
		est := math.Max(0.001, needCPU+e)
		estSvc.NeedAgg[workload.CPU] = est
		estSvc.NeedElem[workload.CPU] = est / float64(cores)
	}
	ls := &liveService{
		id:       s.nextID,
		trueSvc:  trueSvc,
		estSvc:   estSvc,
		node:     core.Unplaced,
		arrived:  s.now,
		departAt: s.now + s.expo(s.cfg.MeanLifetime),
	}
	s.nextID++
	return ls
}

// problemViews builds the true and estimated problems over live services in
// arrival order, applying the current mitigation threshold to estimates.
// The returned index slice maps problem service positions to live ids.
func (s *sim) problemViews() (trueP, estP *core.Problem, ids []int) {
	trueP = &core.Problem{Nodes: s.cfg.Nodes}
	estP = &core.Problem{Nodes: s.cfg.Nodes}
	for _, id := range s.order {
		ls := s.live[id]
		trueP.Services = append(trueP.Services, ls.trueSvc)
		estP.Services = append(estP.Services, ls.estSvc)
		ids = append(ids, id)
	}
	if s.threshold > 0 {
		estP = sched.ApplyThreshold(estP, workload.CPU, s.threshold)
	}
	return trueP, estP, ids
}

// currentPlacement extracts the placement of the live services (ids order).
func (s *sim) currentPlacement(ids []int) core.Placement {
	pl := core.NewPlacement(len(ids))
	for i, id := range ids {
		pl[i] = s.live[id].node
	}
	return pl
}

// arrive admits a new service with a best-fit test on its (thresholded)
// estimate against current requirement loads; rejection counts but does not
// stop the simulation.
func (s *sim) arrive() {
	s.stats.Arrivals++
	ls := s.newService()
	// Requirement loads by node.
	loads := make([]vec.Vec, len(s.cfg.Nodes))
	for h := range loads {
		loads[h] = vec.New(workload.Dims)
	}
	for _, id := range s.order {
		l := s.live[id]
		if l.node >= 0 {
			loads[l.node].AccumAdd(l.trueSvc.ReqAgg)
		}
	}
	// Best fit: feasible node with least remaining capacity (sum).
	best, bestScore := -1, math.Inf(1)
	for h := range s.cfg.Nodes {
		if !ls.trueSvc.FitsRequirements(&s.cfg.Nodes[h], loads[h]) {
			continue
		}
		rem := s.cfg.Nodes[h].Aggregate.Sub(loads[h]).Sum()
		if rem < bestScore {
			best, bestScore = h, rem
		}
	}
	if best < 0 {
		s.stats.Rejections++
		return
	}
	ls.node = best
	s.live[ls.id] = ls
	s.order = append(s.order, ls.id)
	s.push(event{t: ls.departAt, kind: evDeparture, id: ls.id})
}

// depart removes a service and records its estimation error for adaptation.
func (s *sim) depart(id int) {
	ls, ok := s.live[id]
	if !ok {
		return // was rejected or already gone
	}
	s.stats.Departures++
	errAbs := math.Abs(ls.estSvc.NeedAgg[workload.CPU] - ls.trueSvc.NeedAgg[workload.CPU])
	s.errWindow = append(s.errWindow, errAbs)
	if len(s.errWindow) > 64 {
		s.errWindow = s.errWindow[len(s.errWindow)-64:]
	}
	delete(s.live, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// adaptThreshold updates the mitigation threshold from the observed error
// window (paper §8: "determining and adapting the threshold").
func (s *sim) adaptThreshold() {
	if s.cfg.Threshold != AdaptiveThreshold || len(s.errWindow) == 0 {
		return
	}
	maxErr := 0.0
	for _, e := range s.errWindow {
		if e > maxErr {
			maxErr = e
		}
	}
	s.threshold = s.cfg.SafetyFactor * maxErr
}

// reallocate runs the placer on the estimated view, applies the new
// placement (counting migrations) and samples achieved yields.
func (s *sim) reallocate() {
	s.adaptThreshold()
	trueP, estP, ids := s.problemViews()
	sample := Sample{Time: s.now, Services: len(ids), Threshold: s.threshold}
	if len(ids) == 0 {
		sample.Solved = true
		s.stats.Samples = append(s.stats.Samples, sample)
		return
	}
	s.stats.Reallocs++
	var res *core.Result
	if s.cfg.UseRepair {
		res = opt.Repair(estP, s.currentPlacement(ids), &opt.RepairOptions{
			Budget:  s.cfg.MigrationBudget,
			Improve: true,
		})
	} else {
		res = s.cfg.Placer(estP)
	}
	if !res.Solved {
		// Keep the previous placement; evaluate it as-is.
		s.stats.FailedEpoch++
		pl := s.currentPlacement(ids)
		sample.MinYield = sched.EvaluatePlacement(trueP, estP, pl, sched.AllocWeights, workload.CPU)
		s.stats.Samples = append(s.stats.Samples, sample)
		return
	}
	for i, id := range ids {
		ls := s.live[id]
		if ls.node != res.Placement[i] {
			if ls.node >= 0 {
				sample.Migrations++
			}
			ls.node = res.Placement[i]
		}
	}
	s.stats.Migrations += sample.Migrations
	sample.Solved = true
	sample.MinYield = sched.EvaluatePlacement(trueP, estP, res.Placement, sched.AllocWeights, workload.CPU)
	// Mean yield under max-uniform-yield evaluation of the true problem.
	if ev := core.EvaluatePlacement(trueP, res.Placement); ev.Solved {
		sum := 0.0
		for _, y := range ev.Yields {
			sum += y
		}
		sample.MeanYield = sum / float64(len(ev.Yields))
	}
	s.stats.Samples = append(s.stats.Samples, sample)
}
