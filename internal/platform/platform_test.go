package platform

import (
	"math"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

func testNodes(n int) []core.Node {
	nodes := make([]core.Node, n)
	for i := range nodes {
		nodes[i] = core.Node{
			Elementary: vec.Of(0.25, 1.0),
			Aggregate:  vec.Of(1.0, 1.0),
		}
	}
	return nodes
}

func baseConfig() Config {
	return Config{
		Nodes:        testNodes(4),
		ArrivalRate:  2.0,
		MeanLifetime: 5.0,
		Horizon:      50,
		Epoch:        2,
		Seed:         1,
	}
}

func TestRunBasicInvariants(t *testing.T) {
	st, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals == 0 {
		t.Fatal("no arrivals in 50 time units at rate 2")
	}
	if st.Departures > st.Arrivals-st.Rejections {
		t.Fatalf("departures %d exceed admitted %d", st.Departures, st.Arrivals-st.Rejections)
	}
	if len(st.Samples) == 0 {
		t.Fatal("no epoch samples")
	}
	for _, s := range st.Samples {
		if s.Services < 0 || s.MinYield < 0 || s.MinYield > 1 {
			t.Fatalf("bad sample %+v", s)
		}
		if s.Time <= 0 || s.Time > 50+1e-9 {
			t.Fatalf("sample outside horizon: %+v", s)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals != b.Arrivals || a.Migrations != b.Migrations || len(a.Samples) != len(b.Samples) {
		t.Fatalf("same seed differs: %+v vs %+v", a, b)
	}
	for i := range a.Samples {
		if math.Abs(a.Samples[i].MinYield-b.Samples[i].MinYield) > 1e-12 {
			t.Fatalf("sample %d differs", i)
		}
	}
	cfg := baseConfig()
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Arrivals == a.Arrivals && c.Migrations == a.Migrations && len(c.Samples) == len(a.Samples) {
		// Extremely unlikely to match on all three; treat as suspicious.
		same := true
		for i := range a.Samples {
			if i >= len(c.Samples) || a.Samples[i].MinYield != c.Samples[i].MinYield {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: testNodes(1)},
		{Nodes: testNodes(1), ArrivalRate: 1, MeanLifetime: 1, Horizon: 0, Epoch: 1},
		{Nodes: testNodes(1), ArrivalRate: 1, MeanLifetime: 1, Horizon: 1, Epoch: 0},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestOverloadCausesRejections(t *testing.T) {
	cfg := baseConfig()
	cfg.Nodes = testNodes(1)
	cfg.ArrivalRate = 20
	cfg.MeanLifetime = 50 // services pile up far beyond one node's memory
	cfg.Horizon = 30
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejections == 0 {
		t.Fatal("expected rejections under heavy overload")
	}
	if st.RejectionRate() <= 0 || st.RejectionRate() > 1 {
		t.Fatalf("rejection rate %v", st.RejectionRate())
	}
}

func TestPerfectEstimatesBeatNoisyOnes(t *testing.T) {
	perfect := baseConfig()
	perfect.Horizon = 60
	noisy := perfect
	noisy.MaxErr = 0.4

	a, err := Run(perfect)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	// With large estimate noise and no mitigation, average achieved minimum
	// yield should not improve.
	if b.MeanMinYield() > a.MeanMinYield()+0.05 {
		t.Fatalf("noisy (%v) should not beat perfect (%v)", b.MeanMinYield(), a.MeanMinYield())
	}
}

func TestStaticThresholdFlattens(t *testing.T) {
	noisy := baseConfig()
	noisy.Horizon = 60
	noisy.MaxErr = 0.3
	mitigated := noisy
	mitigated.Threshold = 0.15

	a, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mitigated)
	if err != nil {
		t.Fatal(err)
	}
	// Not asserting strict improvement (stochastic), but both must produce
	// sane samples and the threshold must be recorded.
	if a.MeanMinYield() < 0 || b.MeanMinYield() < 0 {
		t.Fatal("negative yields")
	}
	found := false
	for _, s := range b.Samples {
		if s.Threshold == 0.15 {
			found = true
		}
	}
	if !found {
		t.Fatal("static threshold not applied")
	}
}

func TestAdaptiveThresholdTracksError(t *testing.T) {
	cfg := baseConfig()
	cfg.Horizon = 80
	cfg.MaxErr = 0.2
	cfg.Threshold = AdaptiveThreshold
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After enough departures the adaptive threshold must be positive and
	// bounded by the maximum possible error.
	last := st.Samples[len(st.Samples)-1]
	if st.Departures > 5 && last.Threshold <= 0 {
		t.Fatalf("adaptive threshold stayed zero after %d departures", st.Departures)
	}
	for _, s := range st.Samples {
		if s.Threshold > cfg.MaxErr+1e-9 {
			t.Fatalf("adaptive threshold %v exceeds max possible error %v", s.Threshold, cfg.MaxErr)
		}
	}
}

func TestAdaptiveThresholdZeroWhenNoError(t *testing.T) {
	cfg := baseConfig()
	cfg.Threshold = AdaptiveThreshold
	cfg.MaxErr = 0
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st.Samples {
		if s.Threshold != 0 {
			t.Fatalf("threshold %v with perfect estimates", s.Threshold)
		}
	}
}

func TestMigrationsAreCounted(t *testing.T) {
	cfg := baseConfig()
	cfg.Horizon = 60
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range st.Samples {
		sum += s.Migrations
	}
	if sum != st.Migrations {
		t.Fatalf("per-sample migrations %d != total %d", sum, st.Migrations)
	}
}

func TestCustomPlacerIsUsed(t *testing.T) {
	cfg := baseConfig()
	calls := 0
	cfg.Placer = func(p *core.Problem) *core.Result {
		calls++
		return DefaultPlacer(p)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("custom placer never invoked")
	}
}

func TestFailedPlacerKeepsPreviousPlacement(t *testing.T) {
	cfg := baseConfig()
	cfg.Placer = func(p *core.Problem) *core.Result { return &core.Result{} } // always fails
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.FailedEpoch == 0 {
		t.Fatal("expected failed epochs with an always-failing placer")
	}
	if st.Migrations != 0 {
		t.Fatal("no migrations should happen when the placer fails")
	}
}

func TestMeanCPUNeedDerivation(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanCPUNeed = 0 // derive
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Derived sizing targets ~70% utilization: yields should usually be
	// positive and the platform should not reject everything.
	if st.RejectionRate() > 0.9 {
		t.Fatalf("derived sizing rejects %v of arrivals", st.RejectionRate())
	}
	_ = workload.CPU
}

func TestRepairModeBoundsMigrations(t *testing.T) {
	cfg := baseConfig()
	cfg.Horizon = 60
	cfg.UseRepair = true
	cfg.MigrationBudget = 2
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st.Samples {
		if s.Migrations > 2 {
			t.Fatalf("epoch migrated %d services, budget 2", s.Migrations)
		}
	}
}

func TestRepairModeMigratesLessThanFullRealloc(t *testing.T) {
	full := baseConfig()
	full.Horizon = 60
	repair := full
	repair.UseRepair = true
	repair.MigrationBudget = 1

	a, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(repair)
	if err != nil {
		t.Fatal(err)
	}
	if b.Migrations >= a.Migrations && a.Migrations > 0 {
		t.Fatalf("repair mode (%d) should migrate less than full realloc (%d)",
			b.Migrations, a.Migrations)
	}
}

func TestStatsMeanMinYieldEmptyAndZero(t *testing.T) {
	st := &Stats{}
	if st.MeanMinYield() != 0 {
		t.Fatal("empty stats mean should be 0")
	}
	if st.RejectionRate() != 0 {
		t.Fatal("empty stats rejection rate should be 0")
	}
}
