package shard

import (
	"testing"

	"vmalloc/internal/testutil/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine — parallel epoch
// solves fan out worker goroutines that must join before Reallocate returns.
func TestMain(m *testing.M) { leakcheck.Main(m) }
