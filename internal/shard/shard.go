// Package shard decomposes the node park into K near-independent placement
// domains so the online tier scales with cores instead of park size.
//
// The paper's introduction motivates hosting on federated platforms: several
// internally-homogeneous clusters pooled into one heterogeneous park. One
// engine over the whole park serializes every mutation and every epoch
// through a single solver, so epoch latency grows with total service count.
// A Router instead partitions the park into K contiguous placement domains,
// each owning its own engine.Engine (and therefore its own arena vp.Solver
// and LP warm-start basis), and
//
//   - admits services by shard headroom: the classic best-of-two-choices
//     load-balancing rule over estimated residual aggregate capacity, made
//     deterministic (and recovery-stable) by hashing a fixed seed with the
//     service id instead of drawing from a stateful RNG;
//   - runs reallocation and repair epochs scatter-gather, one goroutine per
//     shard, merging results into a global minimum yield;
//   - rebalances across shards when the bottleneck shard's yield trails the
//     median by a configurable gap, migrating its heaviest services into
//     the shard with the most headroom and re-solving the affected domains.
//
// Shards are fully independent placement subproblems (the same block
// structure two-stage stochastic IP decompositions exploit), so per-shard
// epochs run concurrently without locks, and under the durable tier each
// shard journals to its own WAL directory. Service ids remain global: the
// router owns the id space and installs services into shard engines via
// engine.AdmitWithID, so a service keeps its identity when it migrates
// between shards.
//
// With K=1 every code path reduces to the single-engine arithmetic of
// engine.Engine — the shard_test equivalence suite pins the K=1 trajectory
// bit-identical to an unsharded engine.
package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"vmalloc/internal/core"
	"vmalloc/internal/engine"
	"vmalloc/internal/obs"
	"vmalloc/internal/sched"
	"vmalloc/internal/vec"
)

// Default rebalance tuning: a bottleneck shard must trail the median shard
// yield by more than DefaultGap before the router migrates services out of
// it, and one epoch moves at most DefaultMoves services.
const (
	DefaultGap   = 0.1
	DefaultMoves = 2
)

// Config parameterizes a Router.
type Config struct {
	// Nodes is the full node park, split into Shards contiguous domains.
	Nodes []core.Node
	// Shards is the domain count K; it must satisfy 1 <= K <= len(Nodes).
	Shards int
	// Seed fixes the best-of-two-choices admission hash. Two routers with
	// the same seed and history admit identically.
	Seed int64
	// Gap is the rebalance trigger: migrate out of the bottleneck shard
	// when the median shard yield exceeds its yield by more than Gap.
	// 0 selects DefaultGap; negative disables rebalancing.
	Gap float64
	// Moves caps the services migrated per rebalance pass. 0 selects
	// DefaultMoves; negative disables rebalancing.
	Moves int

	// Per-domain engine knobs, as in engine.Config.
	CPUDim     int
	Tol        float64
	Placer     engine.Placer
	Parallel   bool
	Workers    int
	UseLPBound bool
	// Now is the injected wall clock forwarded to every domain engine for
	// EpochReport.SolveNs stamping; nil leaves solve times zero. The router
	// is determinism-critical and never reads the clock itself.
	Now func() time.Time
}

func (cfg *Config) gap() float64 {
	if cfg.Gap == 0 { //vmalloc:nondet-ok Gap==0 is an exact config sentinel selecting the default
		return DefaultGap
	}
	return cfg.Gap
}

func (cfg *Config) moves() int {
	if cfg.Moves == 0 {
		return DefaultMoves
	}
	return cfg.Moves
}

// Op identifies the kind of mutation an Event reports.
type Op uint8

const (
	// OpAdd is a successful admission into Event.Shard.
	OpAdd Op = iota + 1
	// OpRemove is a departure from Event.Shard.
	OpRemove
	// OpUpdateNeeds replaced a live service's fluid needs.
	OpUpdateNeeds
	// OpSetThreshold changed the mitigation threshold of Event.Shard (the
	// router emits one event per shard so each WAL carries its own copy).
	OpSetThreshold
	// OpEpoch applied a solved per-shard reallocation or repair epoch.
	OpEpoch
	// OpMoveIn installed a rebalanced service into Event.Shard. It replays
	// exactly like OpAdd; the distinct op (and Gen) let a durable tier
	// reconcile a move torn across two shard WALs.
	OpMoveIn
	// OpMoveOut departed a rebalanced service from Event.Shard. It replays
	// exactly like OpRemove.
	OpMoveOut
)

// Event describes one applied mutation of a single shard, delivered to the
// router's hook after the in-memory state changed — the sharded counterpart
// of the cluster event seam the durable tier journals through. Node indices
// are SHARD-LOCAL (each shard's WAL replays onto its own engine); the
// router's public accessors translate to park-global indices.
//
// Slice and pointer fields may alias engine-owned buffers and are valid only
// for the duration of the hook call.
type Event struct {
	Shard int
	Op    Op

	// ID names the service (OpAdd, OpRemove, OpUpdateNeeds, OpMove*).
	ID int
	// Node is the shard-local admission placement (OpAdd, OpMoveIn).
	Node int
	// Gen is the per-service move generation (OpMoveIn, OpMoveOut): the
	// n-th cross-shard migration of a service carries gen n. A durable
	// tier uses it to keep the newest copy when a crash leaves a moved
	// service live in two shards.
	Gen uint64
	// TrueSvc and EstSvc are the installed descriptors (OpAdd, OpMoveIn).
	TrueSvc, EstSvc *core.Service
	// Needs are the new true elem/agg and estimated elem/agg vectors
	// (OpUpdateNeeds).
	Needs [4]vec.Vec
	// Threshold is the new mitigation threshold (OpSetThreshold).
	Threshold float64
	// Epoch payload (OpEpoch): the shard's live ids in view order and the
	// shard-local placement applied to them.
	IDs        []int
	Placement  core.Placement
	Repair     bool
	Budget     int
	Migrations int
	MinYield   float64
}

// domain is one placement shard: a contiguous slice of the park with its own
// persistent engine.
type domain struct {
	index  int
	offset int // park-global index of the first node
	eng    *engine.Engine

	lastYield  float64
	lastSolved bool

	epochs       uint64
	failedEpochs uint64
	movedOut     uint64
	movedIn      uint64
}

// Router is the sharded allocation engine: K placement domains behind
// deterministic headroom-based admission and scatter-gather epochs. Like
// engine.Engine it is not safe for concurrent use; the internal parallelism
// (one goroutine per shard during epochs) is invisible to callers.
type Router struct {
	cfg     Config
	domains []*domain
	byID    map[int]int // global service id -> shard index
	nextID  int
	moveGen map[int]uint64 // per-service cross-shard move counter
	hook    func(*Event)

	headroomBuf []float64
	orderBuf    []int
}

// Partition returns the node range of shard s over h nodes in k shards:
// contiguous blocks differing in size by at most one. It is the single
// source of truth for the park partition — engines, recovery validation and
// the public NodeRange all derive from it.
func Partition(h, k, s int) (lo, hi int) {
	return s * h / k, (s + 1) * h / k
}

// New validates cfg and returns an empty router.
func New(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: %d shards (want >= 1)", cfg.Shards)
	}
	if cfg.Shards > len(cfg.Nodes) {
		return nil, fmt.Errorf("shard: %d shards over %d nodes (want <= nodes)", cfg.Shards, len(cfg.Nodes))
	}
	r := &Router{
		cfg:         cfg,
		byID:        make(map[int]int),
		moveGen:     make(map[int]uint64),
		headroomBuf: make([]float64, cfg.Shards),
		orderBuf:    make([]int, 0, cfg.Shards),
	}
	for s := 0; s < cfg.Shards; s++ {
		lo, hi := Partition(len(cfg.Nodes), cfg.Shards, s)
		eng, err := engine.New(engine.Config{
			Nodes:      cfg.Nodes[lo:hi],
			CPUDim:     cfg.CPUDim,
			Tol:        cfg.Tol,
			Placer:     cfg.Placer,
			Parallel:   cfg.Parallel,
			Workers:    cfg.Workers,
			UseLPBound: cfg.UseLPBound,
			Now:        cfg.Now,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		r.domains = append(r.domains, &domain{index: s, offset: lo, eng: eng, lastYield: math.NaN()})
	}
	return r, nil
}

// SetHook installs fn as the router's mutation observer (nil uninstalls).
// Events fire synchronously after every applied state change, in application
// order.
func (r *Router) SetHook(fn func(*Event)) { r.hook = fn }

// Shards returns the domain count K.
func (r *Router) Shards() int { return len(r.domains) }

// Len returns the number of live services across all shards.
func (r *Router) Len() int { return len(r.byID) }

// Dim returns the resource dimensionality.
func (r *Router) Dim() int { return r.domains[0].eng.Dim() }

// Nodes returns the full node park (not to be mutated).
func (r *Router) Nodes() []core.Node { return r.cfg.Nodes }

// NodeRange returns the park-global [lo, hi) node interval of shard s.
func (r *Router) NodeRange(s int) (lo, hi int) {
	return Partition(len(r.cfg.Nodes), len(r.domains), s)
}

// Engine returns shard s's engine, for state capture and tests. Callers must
// not mutate services through it (the router's id map would go stale).
func (r *Router) Engine(s int) *engine.Engine { return r.domains[s].eng }

// Threshold returns the current mitigation threshold.
func (r *Router) Threshold() float64 { return r.domains[0].eng.Threshold() }

// splitmix64 is the SplitMix64 finalizer: a well-mixed 64-bit hash used to
// derive the two admission candidates from (seed, id) without any stateful
// RNG — so admission is a pure function of history and survives recovery.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// admissionOrder returns the deterministic shard candidate order for
// admitting service id: the better of two hashed choices first (higher
// estimated residual capacity, ties to the lower index), then the other
// choice, then every remaining shard by descending headroom. Trying the
// full ordered list means a feasible service is never rejected just because
// both sampled shards happened to be full.
func (r *Router) admissionOrder(id int) []int {
	k := len(r.domains)
	r.orderBuf = r.orderBuf[:0]
	if k == 1 {
		return append(r.orderBuf, 0)
	}
	for s, d := range r.domains {
		r.headroomBuf[s] = d.eng.Headroom()
	}
	h := splitmix64(uint64(r.cfg.Seed) ^ splitmix64(uint64(id)+1))
	a := int(h % uint64(k))
	b := int((h >> 32) % uint64(k))
	if a != b && (r.headroomBuf[b] > r.headroomBuf[a] ||
		(r.headroomBuf[b] == r.headroomBuf[a] && b < a)) { //vmalloc:nondet-ok headroom tie-break: exact equality is required for a deterministic total order
		a, b = b, a
	}
	r.orderBuf = append(r.orderBuf, a)
	if b != a {
		r.orderBuf = append(r.orderBuf, b)
	}
	head := len(r.orderBuf) // the hashed choices; everything after is fallback
	for s := range r.domains {
		if s != a && s != b {
			r.orderBuf = append(r.orderBuf, s)
		}
	}
	rest := r.orderBuf[head:]
	sort.SliceStable(rest, func(i, j int) bool {
		hi, hj := r.headroomBuf[rest[i]], r.headroomBuf[rest[j]]
		if hi != hj { //vmalloc:nondet-ok comparator tie-break: exact equality is required for a deterministic total order
			return hi > hj
		}
		return rest[i] < rest[j]
	})
	return r.orderBuf
}

// Add admits a service under the deterministic two-choice headroom rule.
// The returned node index is park-global; shard names the owning domain.
// On rejection (no shard can host the service) ok is false and no state
// changes.
func (r *Router) Add(trueSvc, estSvc core.Service) (id, shard, node int, ok bool) {
	return r.addOne(trueSvc, estSvc)
}

// addOne is the single admission code path shared by Add and AddBatch: the
// deterministic candidate order, the engine install, the id-map update and
// the hook event. Batch admission is therefore bit-identical to the same
// services admitted one call at a time.
func (r *Router) addOne(trueSvc, estSvc core.Service) (id, shard, node int, ok bool) {
	id = r.nextID
	for _, s := range r.admissionOrder(id) {
		local, admitted := r.domains[s].eng.AdmitWithID(id, trueSvc, estSvc)
		if !admitted {
			continue
		}
		r.byID[id] = s
		r.nextID = id + 1
		if r.hook != nil {
			ts, es, _ := r.domains[s].eng.Service(id)
			r.hook(&Event{Op: OpAdd, Shard: s, ID: id, Node: local, TrueSvc: &ts, EstSvc: &es})
		}
		return id, s, r.domains[s].offset + local, true
	}
	return 0, -1, -1, false
}

// AddEntry is one service of a bulk admission.
type AddEntry struct {
	TrueSvc, EstSvc core.Service
}

// AddResult is the per-entry outcome of a bulk admission: the admitted id,
// owning shard and park-global node, or OK=false when no shard could host
// the entry.
type AddResult struct {
	ID    int
	Shard int
	Node  int
	OK    bool
}

// AddBatch admits entries in order through the same deterministic two-choice
// admission as Add, appending one AddResult per entry to out (allocating when
// out lacks capacity). Each admission sees the headroom left by the previous
// one, so the batch trajectory — ids, shard choices, hook events — is exactly
// the trajectory of len(entries) sequential Add calls; the batching win is in
// the layers above, which journal a batch's admissions per shard under a
// single group-commit fsync instead of one ticket per record.
func (r *Router) AddBatch(entries []AddEntry, out []AddResult) []AddResult {
	for i := range entries {
		id, s, node, ok := r.addOne(entries[i].TrueSvc, entries[i].EstSvc)
		out = append(out, AddResult{ID: id, Shard: s, Node: node, OK: ok})
	}
	return out
}

// Remove departs a live service in O(1). It reports whether id was live.
func (r *Router) Remove(id int) bool {
	s, ok := r.byID[id]
	if !ok {
		return false
	}
	r.domains[s].eng.Remove(id)
	delete(r.byID, id)
	delete(r.moveGen, id)
	if r.hook != nil {
		r.hook(&Event{Op: OpRemove, Shard: s, ID: id})
	}
	return true
}

// UpdateNeeds replaces the fluid needs of a live service. It reports whether
// the id was live.
func (r *Router) UpdateNeeds(id int, trueNeedElem, trueNeedAgg, estNeedElem, estNeedAgg vec.Vec) bool {
	s, ok := r.byID[id]
	if !ok {
		return false
	}
	r.domains[s].eng.UpdateNeeds(id, trueNeedElem, trueNeedAgg, estNeedElem, estNeedAgg)
	if r.hook != nil {
		r.hook(&Event{Op: OpUpdateNeeds, Shard: s, ID: id,
			Needs: [4]vec.Vec{trueNeedElem, trueNeedAgg, estNeedElem, estNeedAgg}})
	}
	return true
}

// SetThreshold sets the §6.2 mitigation threshold on every shard, emitting
// one event per shard so each shard's WAL carries its own copy.
func (r *Router) SetThreshold(th float64) {
	for s, d := range r.domains {
		d.eng.SetThreshold(th)
		if r.hook != nil {
			r.hook(&Event{Op: OpSetThreshold, Shard: s, Threshold: th})
		}
	}
}

// Node returns the park-global node currently hosting id.
func (r *Router) Node(id int) (int, bool) {
	s, ok := r.byID[id]
	if !ok {
		return -1, false
	}
	local, _ := r.domains[s].eng.Node(id)
	if local < 0 {
		return local, true
	}
	return r.domains[s].offset + local, true
}

// Shard returns the domain owning id.
func (r *Router) Shard(id int) (int, bool) {
	s, ok := r.byID[id]
	return s, ok
}

// Epoch is the merged outcome of one sharded Reallocate or Repair.
type Epoch struct {
	// Result is the merged solve outcome. Solved means every non-empty
	// shard holds a solved placement; MinYield is the minimum over their
	// yields (1 when the park is empty); Placement is park-global, aligned
	// with IDs. With K=1 it is the single engine's Result, untouched.
	Result *core.Result
	// IDs are the live service ids in ascending order.
	IDs []int
	// Migrations counts services that changed node, cross-shard moves
	// included.
	Migrations int
	// RebalanceMoves counts the services migrated between shards by the
	// rebalance pass of this epoch.
	RebalanceMoves int
	// Stats carries the per-shard solver telemetry of this epoch (solve
	// wall time and solver-tier work counters, rebalance re-solves
	// included).
	Stats *obs.EpochStats
}

// scatter runs fn over every shard concurrently (one goroutine per shard)
// and gathers the per-shard reports. Shard engines are disjoint, so the only
// synchronization needed is the join. When ctx carries a tracing span, each
// shard's solve runs under its own child span.
func (r *Router) scatter(ctx context.Context, fn func(*domain) *engine.EpochReport) []*engine.EpochReport {
	reps := make([]*engine.EpochReport, len(r.domains))
	parent := obs.SpanFromContext(ctx)
	run := func(s int, d *domain) *engine.EpochReport {
		sp := parent.StartChild("shard_epoch")
		sp.SetInt("shard", int64(s))
		rep := fn(d)
		sp.SetInt("services", int64(rep.Services))
		sp.End()
		return rep
	}
	if len(r.domains) == 1 {
		reps[0] = run(0, r.domains[0])
		return reps
	}
	var wg sync.WaitGroup
	for s, d := range r.domains {
		wg.Add(1)
		go func(s int, d *domain) {
			defer wg.Done()
			reps[s] = run(s, d)
		}(s, d)
	}
	wg.Wait()
	return reps
}

// noteEpoch updates per-domain stats and emits the epoch event for one
// per-shard report. Events are emitted sequentially after the scatter join,
// in shard order, so hook consumers see a deterministic stream.
func (r *Router) noteEpoch(s int, rep *engine.EpochReport, repair bool, budget int) {
	d := r.domains[s]
	d.epochs++
	if !rep.Result.Solved {
		d.failedEpochs++
		d.lastSolved = false
		return
	}
	if len(rep.IDs) > 0 {
		d.lastYield = rep.Result.MinYield
		d.lastSolved = true
		if r.hook != nil {
			r.hook(&Event{
				Op: OpEpoch, Shard: s,
				IDs: rep.IDs, Placement: rep.Result.Placement,
				Repair: repair, Budget: budget,
				Migrations: rep.Migrations, MinYield: rep.Result.MinYield,
			})
		}
	} else {
		d.lastYield = math.NaN()
		d.lastSolved = true
	}
}

// Reallocate runs one full reallocation epoch on every shard concurrently,
// then a cross-shard rebalance pass when the bottleneck shard trails the
// median yield by more than the configured gap.
func (r *Router) Reallocate() *Epoch { return r.ReallocateCtx(context.Background()) }

// ReallocateCtx is Reallocate under a tracing context: each shard's solve
// gets a child span of the span carried by ctx. The placement trajectory is
// identical to Reallocate.
func (r *Router) ReallocateCtx(ctx context.Context) *Epoch {
	reps := r.scatter(ctx, func(d *domain) *engine.EpochReport { return d.eng.Reallocate() })
	for s, rep := range reps {
		r.noteEpoch(s, rep, false, 0)
	}
	first := make([]*engine.EpochReport, len(reps))
	copy(first, reps)
	moves, carried := r.rebalance(reps)
	ep := r.merge(reps, moves, carried)
	ep.Stats = r.epochStats(first, reps)
	return ep
}

// Repair runs one migration-bounded repair epoch on every shard
// concurrently; budget applies per shard (negative = unlimited). Repair
// epochs skip the rebalance pass — they exist to bound migrations.
func (r *Router) Repair(budget int) *Epoch { return r.RepairCtx(context.Background(), budget) }

// RepairCtx is Repair under a tracing context.
func (r *Router) RepairCtx(ctx context.Context, budget int) *Epoch {
	reps := r.scatter(ctx, func(d *domain) *engine.EpochReport { return d.eng.Repair(budget) })
	for s, rep := range reps {
		r.noteEpoch(s, rep, true, budget)
	}
	ep := r.merge(reps, 0, 0)
	ep.Stats = r.epochStats(reps, reps)
	return ep
}

// epochStats folds the per-shard reports into the epoch's telemetry
// payload. first holds each shard's initial solve, final the report left
// after the rebalance pass (the same pointer when the shard was not
// re-solved); a re-solved shard's counters and solve time are summed over
// both solves while the outcome fields come from the final report.
func (r *Router) epochStats(first, final []*engine.EpochReport) *obs.EpochStats {
	st := &obs.EpochStats{Shards: make([]obs.ShardEpoch, len(final))}
	for s, rep := range final {
		se := obs.ShardEpoch{
			Shard:      s,
			Solved:     rep.Result.Solved,
			Services:   rep.Services,
			Migrations: rep.Migrations,
			SolveNs:    rep.SolveNs,
			Solver:     rep.Solver,
		}
		if rep.Result.Solved && rep.Services > 0 {
			se.MinYield = rep.Result.MinYield
		}
		if fr := first[s]; fr != rep {
			se.SolveNs += fr.SolveNs
			se.Solver.Add(fr.Solver)
			se.Migrations += fr.Migrations
		}
		st.SolveNs += se.SolveNs
		st.Solver.Add(se.Solver)
		st.Shards[s] = se
	}
	return st
}

// rebalance migrates services out of the bottleneck shard when its yield
// trails the median shard yield by more than the configured gap, then
// re-runs reallocation on the affected shards. It returns the number of
// services moved plus the migrations the affected shards' first solves had
// already applied (their reports are overwritten by the re-solve, so the
// caller must carry those into the epoch total). All choices are
// deterministic: the bottleneck is the lowest-yield shard (ties to the
// lower index), candidates leave in descending estimated CPU need (ties to
// the lower id), and targets are tried in descending headroom (ties to the
// lower index).
func (r *Router) rebalance(reps []*engine.EpochReport) (moved, carried int) {
	if len(r.domains) < 2 || r.cfg.gap() < 0 || r.cfg.moves() < 0 {
		return 0, 0
	}
	yields := make([]float64, 0, len(r.domains))
	bottleneck := -1
	for s, rep := range reps {
		if rep == nil || !rep.Result.Solved || len(rep.IDs) == 0 {
			continue
		}
		yields = append(yields, rep.Result.MinYield)
		if bottleneck < 0 || rep.Result.MinYield < reps[bottleneck].Result.MinYield {
			bottleneck = s
		}
	}
	if len(yields) < 2 {
		return 0, 0
	}
	sort.Float64s(yields)
	median := yields[len(yields)/2]
	if len(yields)%2 == 0 {
		median = (yields[len(yields)/2-1] + yields[len(yields)/2]) / 2
	}
	if median-reps[bottleneck].Result.MinYield <= r.cfg.gap() {
		return 0, 0
	}

	// Candidates: the bottleneck's services, heaviest estimated CPU need
	// first. Moving the heavy hitters relieves the most pressure per move.
	cpu := r.cfg.CPUDim
	src := r.domains[bottleneck]
	type cand struct {
		id   int
		need float64
	}
	cands := make([]cand, 0, len(reps[bottleneck].IDs))
	for _, id := range reps[bottleneck].IDs {
		_, est, _ := src.eng.Service(id)
		cands = append(cands, cand{id: id, need: est.NeedAgg[cpu]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].need != cands[j].need { //vmalloc:nondet-ok comparator tie-break: exact equality is required for a deterministic total order
			return cands[i].need > cands[j].need
		}
		return cands[i].id < cands[j].id
	})

	targets := make([]int, 0, len(r.domains)-1)
	for s := range r.domains {
		if s != bottleneck {
			targets = append(targets, s)
		}
	}

	touched := map[int]bool{}
	for _, c := range cands {
		if moved >= r.cfg.moves() {
			break
		}
		// Re-rank targets by current headroom before every move: each
		// admission changes the landscape.
		sort.SliceStable(targets, func(i, j int) bool {
			hi, hj := r.domains[targets[i]].eng.Headroom(), r.domains[targets[j]].eng.Headroom()
			if hi != hj { //vmalloc:nondet-ok comparator tie-break: exact equality is required for a deterministic total order
				return hi > hj
			}
			return targets[i] < targets[j]
		})
		ts, es, _ := src.eng.Service(c.id)
		trueSvc, estSvc := cloneService(ts), cloneService(es)
		for _, t := range targets {
			local, ok := r.domains[t].eng.AdmitWithID(c.id, trueSvc, estSvc)
			if !ok {
				continue
			}
			gen := r.moveGen[c.id] + 1
			r.moveGen[c.id] = gen
			// Hook order matters for durability: the destination's
			// move-in is journaled (and fsynced, see server.ShardedStore)
			// before the source's move-out, so a crash can duplicate a
			// moving service across WALs but never lose it.
			if r.hook != nil {
				its, ies, _ := r.domains[t].eng.Service(c.id)
				r.hook(&Event{Op: OpMoveIn, Shard: t, ID: c.id, Node: local, Gen: gen,
					TrueSvc: &its, EstSvc: &ies})
			}
			src.eng.Remove(c.id)
			if r.hook != nil {
				r.hook(&Event{Op: OpMoveOut, Shard: bottleneck, ID: c.id, Gen: gen})
			}
			r.byID[c.id] = t
			src.movedOut++
			r.domains[t].movedIn++
			touched[t] = true
			moved++
			break
		}
	}
	if moved == 0 {
		return 0, 0
	}

	// Re-solve the affected domains concurrently and refresh their reports;
	// their first solves' applied migrations must survive the overwrite.
	affected := append([]int{bottleneck}, sortedKeys(touched)...)
	for _, s := range affected {
		if reps[s].Result.Solved {
			carried += reps[s].Migrations
		}
	}
	var wg sync.WaitGroup
	for _, s := range affected {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			reps[s] = r.domains[s].eng.Reallocate()
		}(s)
	}
	wg.Wait()
	for _, s := range affected {
		r.noteEpoch(s, reps[s], false, 0)
	}
	return moved, carried
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m { //vmalloc:nondet-ok inside sortedKeys itself: keys are collected then sorted before iteration
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func cloneService(s core.Service) core.Service {
	s.ReqElem = s.ReqElem.Clone()
	s.ReqAgg = s.ReqAgg.Clone()
	s.NeedElem = s.NeedElem.Clone()
	s.NeedAgg = s.NeedAgg.Clone()
	return s
}

// merge folds the per-shard reports into one park-global epoch. With K=1
// the single engine's report passes through untouched, which keeps the
// sharded trajectory bit-identical to an unsharded engine.
func (r *Router) merge(reps []*engine.EpochReport, moves, carried int) *Epoch {
	if len(r.domains) == 1 {
		rep := reps[0]
		return &Epoch{
			Result:     rep.Result,
			IDs:        rep.IDs,
			Migrations: rep.Migrations,
		}
	}
	// carried holds the migrations the affected shards' pre-rebalance solves
	// already applied; their reports were overwritten by the re-solve.
	ep := &Epoch{RebalanceMoves: moves, Migrations: moves + carried}
	solved := true
	minYield := math.Inf(1)
	anyServices := false
	type placed struct {
		id   int
		node int
	}
	var all []placed
	var yields []placedYield
	for s, rep := range reps {
		d := r.domains[s]
		if !rep.Result.Solved {
			solved = false
		}
		ep.Migrations += rep.Migrations
		if len(rep.IDs) == 0 {
			continue
		}
		anyServices = true
		if rep.Result.Solved && rep.Result.MinYield < minYield {
			minYield = rep.Result.MinYield
		}
		// The applied (or, for a failed shard solve, the kept) placement.
		pl := rep.Result.Placement
		if !rep.Result.Solved {
			pl = d.eng.ViewPlacement()
		}
		for i, id := range rep.IDs {
			node := core.Unplaced
			if i < len(pl) && pl[i] != core.Unplaced {
				node = d.offset + pl[i]
			}
			all = append(all, placed{id: id, node: node})
			if rep.Result.Solved && i < len(rep.Result.Yields) {
				yields = append(yields, placedYield{id: id, yield: rep.Result.Yields[i]})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	res := &core.Result{Solved: solved}
	ep.IDs = make([]int, len(all))
	res.Placement = make(core.Placement, len(all))
	for i, p := range all {
		ep.IDs[i] = p.id
		res.Placement[i] = p.node
	}
	if len(yields) == len(all) && solved {
		sort.Slice(yields, func(i, j int) bool { return yields[i].id < yields[j].id })
		res.Yields = make([]float64, len(yields))
		for i, y := range yields {
			res.Yields[i] = y.yield
		}
	}
	switch {
	case !anyServices:
		res.Solved = true // an empty park trivially solves, as in engine
	case math.IsInf(minYield, 1):
		res.MinYield = 0 // no shard produced a solved yield
	default:
		res.MinYield = minYield
	}
	ep.Result = res
	return ep
}

type placedYield struct {
	id    int
	yield float64
}

// MinYield evaluates the achieved minimum yield of the current placement
// under the §6 error model: the minimum over non-empty shards (scheduling is
// per-node, so the park-global minimum decomposes over domains). Returns 1
// for an empty park.
func (r *Router) MinYield(policy sched.Policy) float64 {
	y := math.Inf(1)
	any := false
	for _, d := range r.domains {
		if d.eng.Len() == 0 {
			continue
		}
		any = true
		if v := d.eng.EvaluateMinYield(policy); v < y {
			y = v
		}
	}
	if !any {
		return 1
	}
	return y
}

// Snapshot returns a detached park-global copy of the cluster: the true
// problem view over all nodes, the current placement with park-global node
// indices, and the live ids, ascending.
func (r *Router) Snapshot() (*core.Problem, core.Placement, []int) {
	p := &core.Problem{Nodes: make([]core.Node, 0, len(r.cfg.Nodes))}
	for _, n := range r.cfg.Nodes {
		p.Nodes = append(p.Nodes, core.Node{
			Name:       n.Name,
			Elementary: n.Elementary.Clone(),
			Aggregate:  n.Aggregate.Clone(),
		})
	}
	type entry struct {
		id   int
		svc  core.Service
		node int
	}
	var all []entry
	for _, d := range r.domains {
		sp, pl, ids := d.eng.Snapshot()
		for i, id := range ids {
			node := pl[i]
			if node != core.Unplaced {
				node += d.offset
			}
			all = append(all, entry{id: id, svc: sp.Services[i], node: node})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	pl := make(core.Placement, len(all))
	ids := make([]int, len(all))
	for i, e := range all {
		p.Services = append(p.Services, e.svc)
		pl[i] = e.node
		ids[i] = e.id
	}
	return p, pl, ids
}

// Stat is a point-in-time description of one placement domain.
type Stat struct {
	Shard    int     `json:"shard"`
	Nodes    int     `json:"nodes"`
	Services int     `json:"services"`
	Headroom float64 `json:"headroom"`
	// LastMinYield is the yield of the shard's last solved non-empty
	// epoch; YieldValid is false (and LastMinYield 0) before any.
	LastMinYield float64 `json:"last_min_yield"`
	YieldValid   bool    `json:"yield_valid"`
	Epochs       uint64  `json:"epochs"`
	FailedEpochs uint64  `json:"failed_epochs"`
	// MovedOut/MovedIn count cross-shard rebalance migrations.
	MovedOut uint64 `json:"moved_out"`
	MovedIn  uint64 `json:"moved_in"`
}

// Stats returns per-shard statistics, indexed by shard.
func (r *Router) Stats() []Stat {
	out := make([]Stat, len(r.domains))
	for s, d := range r.domains {
		lo, hi := r.NodeRange(s)
		out[s] = Stat{
			Shard:        s,
			Nodes:        hi - lo,
			Services:     d.eng.Len(),
			Headroom:     d.eng.Headroom(),
			Epochs:       d.epochs,
			FailedEpochs: d.failedEpochs,
			MovedOut:     d.movedOut,
			MovedIn:      d.movedIn,
		}
		if !math.IsNaN(d.lastYield) {
			out[s].LastMinYield, out[s].YieldValid = d.lastYield, true
		}
	}
	return out
}
