package shard

import (
	"fmt"
	"math"
	"sort"

	"vmalloc/internal/core"
	"vmalloc/internal/engine"
	"vmalloc/internal/sched"
	"vmalloc/internal/vec"
)

// ShardState returns a deep copy of shard s's durable engine state (services
// carry global ids and shard-local nodes). The per-shard states are the
// snapshot payloads of the sharded durable tier; Restore accepts them back.
func (r *Router) ShardState(s int) *engine.State { return r.domains[s].eng.State() }

// Recovery rebuilds a Router from per-shard durable states plus per-shard
// WAL replay. The protocol mirrors the journal's snapshot-plus-tail recipe,
// shard by shard:
//
//  1. Restore constructs every shard engine from its snapshot state.
//  2. The caller replays each shard's journal tail through the Shard*
//     methods. Replay is purely shard-local — every record mutates only its
//     own engine — so per-journal prefix durability makes each shard
//     self-consistent on its own.
//  3. Finish reconciles the shards into one router: it rebuilds the global
//     id map, resolves services a torn rebalance move left live in two
//     shards (the move-in generation decides; the stale source copy is
//     dropped), drops copies resurrected past a durable departure, adopts
//     the newest mitigation threshold when a torn SetThreshold left shards
//     disagreeing, and recomputes the global fresh id.
//
// The only cross-WAL coupling a crash can produce is duplication: the
// durable tier fsyncs a move's destination record before enqueuing its
// source record, so a moving service can be recovered twice but never lost.
type Recovery struct {
	r        *Router
	movedIn  map[int]moveMark
	maxGen   map[int]uint64
	gone     map[int]bool
	finished bool
}

type moveMark struct {
	shard int
	gen   uint64
}

// Restore builds the shard engines from per-shard snapshot states (nil
// entries bootstrap an empty shard) and returns the Recovery to replay WAL
// tails through. cfg must describe the same park partition that produced
// the states.
func Restore(cfg Config, states []*engine.State) (*Recovery, error) {
	if len(states) != cfg.Shards {
		return nil, fmt.Errorf("shard: restore: %d states for %d shards", len(states), cfg.Shards)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: %d shards (want >= 1)", cfg.Shards)
	}
	if cfg.Shards > len(cfg.Nodes) {
		return nil, fmt.Errorf("shard: %d shards over %d nodes (want <= nodes)", cfg.Shards, len(cfg.Nodes))
	}
	r := &Router{
		cfg:         cfg,
		byID:        make(map[int]int),
		moveGen:     make(map[int]uint64),
		headroomBuf: make([]float64, cfg.Shards),
		orderBuf:    make([]int, 0, cfg.Shards),
	}
	for s := 0; s < cfg.Shards; s++ {
		lo, hi := Partition(len(cfg.Nodes), cfg.Shards, s)
		ecfg := engine.Config{
			Nodes:      cfg.Nodes[lo:hi],
			CPUDim:     cfg.CPUDim,
			Tol:        cfg.Tol,
			Placer:     cfg.Placer,
			Parallel:   cfg.Parallel,
			Workers:    cfg.Workers,
			UseLPBound: cfg.UseLPBound,
			Now:        cfg.Now,
		}
		var eng *engine.Engine
		var err error
		if states[s] == nil {
			eng, err = engine.New(ecfg)
		} else {
			eng, err = engine.Restore(ecfg, states[s])
		}
		if err != nil {
			return nil, fmt.Errorf("shard %d: restore: %w", s, err)
		}
		r.domains = append(r.domains, &domain{index: s, offset: lo, eng: eng, lastYield: math.NaN()})
	}
	return &Recovery{
		r:       r,
		movedIn: make(map[int]moveMark),
		maxGen:  make(map[int]uint64),
		gone:    make(map[int]bool),
	}, nil
}

func (rc *Recovery) domain(s int) (*domain, error) {
	if rc.finished {
		return nil, fmt.Errorf("shard: recovery already finished")
	}
	if s < 0 || s >= len(rc.r.domains) {
		return nil, fmt.Errorf("shard: replay names shard %d of %d", s, len(rc.r.domains))
	}
	return rc.r.domains[s], nil
}

// ShardAdd replays an admission into shard s.
func (rc *Recovery) ShardAdd(s, id, node int, trueSvc, estSvc core.Service) error {
	d, err := rc.domain(s)
	if err != nil {
		return err
	}
	return d.eng.RestoreAdd(id, node, trueSvc, estSvc)
}

// ShardMoveIn replays a rebalance arrival into shard s, recording the move
// generation for Finish's duplicate resolution.
func (rc *Recovery) ShardMoveIn(s, id, node int, gen uint64, trueSvc, estSvc core.Service) error {
	d, err := rc.domain(s)
	if err != nil {
		return err
	}
	if err := d.eng.RestoreAdd(id, node, trueSvc, estSvc); err != nil {
		return err
	}
	if gen > rc.maxGen[id] {
		rc.maxGen[id] = gen
	}
	if m, ok := rc.movedIn[id]; !ok || gen > m.gen {
		rc.movedIn[id] = moveMark{shard: s, gen: gen}
	}
	return nil
}

// ShardRemove replays a client departure from shard s. The id is
// tombstoned: ids are never reused, so any copy of it another shard's
// journal resurrects is stale and dropped at Finish.
func (rc *Recovery) ShardRemove(s, id int) error {
	d, err := rc.domain(s)
	if err != nil {
		return err
	}
	if !d.eng.Remove(id) {
		return fmt.Errorf("shard %d: replay: remove of unknown id %d", s, id)
	}
	rc.gone[id] = true
	return nil
}

// ShardMoveOut replays a rebalance departure from shard s.
func (rc *Recovery) ShardMoveOut(s, id int, gen uint64) error {
	d, err := rc.domain(s)
	if err != nil {
		return err
	}
	if !d.eng.Remove(id) {
		return fmt.Errorf("shard %d: replay: move-out of unknown id %d", s, id)
	}
	if gen > rc.maxGen[id] {
		rc.maxGen[id] = gen
	}
	return nil
}

// ShardUpdateNeeds replays a needs update in shard s.
func (rc *Recovery) ShardUpdateNeeds(s, id int, needs [4]vec.Vec) error {
	d, err := rc.domain(s)
	if err != nil {
		return err
	}
	if !d.eng.UpdateNeeds(id, needs[0], needs[1], needs[2], needs[3]) {
		return fmt.Errorf("shard %d: replay: needs update of unknown id %d", s, id)
	}
	return nil
}

// ShardSetThreshold replays a threshold change in shard s.
func (rc *Recovery) ShardSetThreshold(s int, th float64) error {
	d, err := rc.domain(s)
	if err != nil {
		return err
	}
	d.eng.SetThreshold(th)
	return nil
}

// ShardApplyPlacement replays an applied epoch in shard s (ids global,
// placement shard-local, exactly as journaled).
func (rc *Recovery) ShardApplyPlacement(s int, ids []int, pl core.Placement) error {
	d, err := rc.domain(s)
	if err != nil {
		return err
	}
	_, err = d.eng.ApplyPlacementByID(ids, pl)
	return err
}

// Read view — the surface a replication follower serves while it tails the
// leader's journals through a never-finished Recovery. Each method reads the
// shard engines exactly as the corresponding Router method would; none of
// them require the cross-shard reconciliation Finish performs, so they are
// valid mid-replay (a torn rebalance move may transiently show a service in
// two shards, which is the same duplication Finish repairs). The caller must
// serialize reads against Shard* replay calls. Reads are valid until Finish.

// Shards returns the number of placement domains.
func (rc *Recovery) Shards() int { return rc.r.Shards() }

// Len returns the number of live service copies across all shards. During a
// torn rebalance window a moving service is counted in both shards.
func (rc *Recovery) Len() int {
	n := 0
	for _, d := range rc.r.domains {
		n += d.eng.Len()
	}
	return n
}

// Nodes returns the full park node slice.
func (rc *Recovery) Nodes() []core.Node { return rc.r.Nodes() }

// NodeRange returns the park-global [lo, hi) node range of shard s.
func (rc *Recovery) NodeRange(s int) (lo, hi int) { return rc.r.NodeRange(s) }

// ShardState returns a deep copy of shard s's current engine state.
func (rc *Recovery) ShardState(s int) *engine.State { return rc.r.ShardState(s) }

// Threshold returns the mitigation threshold currently replayed into shard
// 0. Shards can transiently disagree after a torn SetThreshold; promotion
// re-opens the store and reconciles exactly as crash recovery does.
func (rc *Recovery) Threshold() float64 { return rc.r.Threshold() }

// MinYield evaluates the achieved minimum yield over the replayed shards.
func (rc *Recovery) MinYield(policy sched.Policy) float64 { return rc.r.MinYield(policy) }

// Stats returns per-shard statistics over the replayed engines. Epoch and
// migration counters are zero on a follower: epochs replay as journaled
// placements, not as locally-solved epochs.
func (rc *Recovery) Stats() []Stat { return rc.r.Stats() }

// Finish reconciles the replayed shards into a ready Router. It returns
// human-readable warnings for every cross-WAL repair it performed (dropped
// duplicate copies of moved services, dropped resurrections of departed
// services, threshold reconciliation); an empty slice is the common case.
func (rc *Recovery) Finish() (*Router, []string, error) {
	if rc.finished {
		return nil, nil, fmt.Errorf("shard: recovery already finished")
	}
	rc.finished = true
	r := rc.r

	live := map[int][]int{}
	nextID := 0
	for s, d := range r.domains {
		st := d.eng.State()
		if st.NextID > nextID {
			nextID = st.NextID
		}
		for i := range st.Services {
			id := st.Services[i].ID
			live[id] = append(live[id], s)
		}
	}
	var warnings []string
	ids := make([]int, 0, len(live))
	for id := range live { //vmalloc:nondet-ok ids are collected into a slice and sorted before any use
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		shards := live[id]
		if rc.gone[id] {
			for _, s := range shards {
				r.domains[s].eng.Remove(id)
				warnings = append(warnings, fmt.Sprintf(
					"dropped service %d from shard %d: a durable departure superseded it", id, s))
			}
			continue
		}
		if len(shards) == 1 {
			r.byID[id] = shards[0]
			continue
		}
		// A rebalance move torn across two WALs: the destination's
		// move-in was fsynced before the source's move-out was enqueued,
		// so the newest move-in marks the copy to keep.
		mark, ok := rc.movedIn[id]
		keep := -1
		if ok {
			for _, s := range shards {
				if s == mark.shard {
					keep = s
				}
			}
		}
		if keep < 0 {
			return nil, warnings, fmt.Errorf(
				"shard: service %d recovered live in shards %v with no move-in marker; journal directories disagree",
				id, shards)
		}
		for _, s := range shards {
			if s == keep {
				continue
			}
			r.domains[s].eng.Remove(id)
			warnings = append(warnings, fmt.Sprintf(
				"dropped stale copy of service %d from shard %d (move generation %d kept it in shard %d)",
				id, s, mark.gen, keep))
		}
		r.byID[id] = keep
	}
	r.nextID = nextID

	for id := range r.byID { //vmalloc:nondet-ok per-id generation writes are independent; result is order-free
		if g := rc.maxGen[id]; g > 0 {
			r.moveGen[id] = g
		}
	}

	// A torn SetThreshold can leave shard journals at different
	// thresholds; adopt the largest (both values were operator-chosen, and
	// the choice must be deterministic) and realign every shard.
	th := r.domains[0].eng.Threshold()
	mismatch := false
	for _, d := range r.domains[1:] {
		if d.eng.Threshold() != th { //vmalloc:nondet-ok replay compares a round-tripped threshold that is bit-identical by the WAL contract
			mismatch = true
			if d.eng.Threshold() > th {
				th = d.eng.Threshold()
			}
		}
	}
	if mismatch {
		warnings = append(warnings, fmt.Sprintf(
			"shard thresholds disagreed after replay; adopting %g on all shards", th))
		for _, d := range r.domains {
			d.eng.SetThreshold(th)
		}
	}
	return r, warnings, nil
}
