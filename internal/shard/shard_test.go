package shard

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/engine"
	"vmalloc/internal/vec"
	"vmalloc/internal/workload"
)

func testPark(hosts int, seed int64) []core.Node {
	return workload.Platform(workload.Scenario{
		Hosts: hosts, COV: 0.4, Mode: workload.HeteroBoth, Seed: seed,
	}, rand.New(rand.NewSource(seed)))
}

func randService(rng *rand.Rand) core.Service {
	req := vec.Of(0.02+0.05*rng.Float64(), 0.02+0.05*rng.Float64())
	need := vec.Of(0.05+0.2*rng.Float64(), 0.02*rng.Float64())
	return core.Service{
		ReqElem: req.Clone(), ReqAgg: req.Clone(),
		NeedElem: need.Clone(), NeedAgg: need.Clone(),
	}
}

// uniformService builds a service with the given CPU need and tiny
// requirements, for hand-built scenarios.
func uniformService(cpuNeed float64) core.Service {
	req := vec.Of(0.001, 0.001)
	return core.Service{
		ReqElem: req.Clone(), ReqAgg: req.Clone(),
		NeedElem: vec.Of(cpuNeed, 0), NeedAgg: vec.Of(cpuNeed, 0),
	}
}

// uniformPark builds h identical nodes with unit capacity in both
// dimensions.
func uniformPark(h int) []core.Node {
	nodes := make([]core.Node, h)
	for i := range nodes {
		nodes[i] = core.Node{
			Name:       "n",
			Elementary: vec.Of(1, 1),
			Aggregate:  vec.Of(1, 1),
		}
	}
	return nodes
}

// TestAdmissionDeterministic pins the best-of-two-choices admission: two
// routers with the same seed and history assign every service to the same
// shard and node; the hash is stateless, so determinism survives arbitrary
// interleaving with reads.
func TestAdmissionDeterministic(t *testing.T) {
	nodes := testPark(16, 7)
	mk := func() *Router {
		r, err := New(Config{Nodes: nodes, Shards: 4, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(3))
	svcs := make([]core.Service, 200)
	for i := range svcs {
		svcs[i] = randService(rng)
	}
	admitted := 0
	for i, svc := range svcs {
		idA, shardA, nodeA, okA := a.Add(svc, svc)
		// Interleave reads on b only — they must not perturb admission.
		b.Stats()
		b.MinYield(0)
		idB, shardB, nodeB, okB := b.Add(svc, svc)
		if okA != okB || idA != idB || shardA != shardB || nodeA != nodeB {
			t.Fatalf("service %d: router a got (id=%d shard=%d node=%d ok=%v), router b (id=%d shard=%d node=%d ok=%v)",
				i, idA, shardA, nodeA, okA, idB, shardB, nodeB, okB)
		}
		if okA {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("no service admitted")
	}
	// The two-choice rule must actually spread load across shards.
	used := 0
	for _, st := range a.Stats() {
		if st.Services > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("admission used %d shards, want >= 2", used)
	}
}

// TestAdmissionSpillsToOtherShards verifies a feasible service is not
// rejected just because both sampled shards are full: fill one tiny shard,
// then admit more than it can take.
func TestAdmissionSpillsToOtherShards(t *testing.T) {
	r, err := New(Config{Nodes: uniformPark(4), Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Each service fills most of a node: only 4 fit in the park, one per
	// shard, whatever the hashed choices say.
	big := core.Service{
		ReqElem: vec.Of(0.9, 0.9), ReqAgg: vec.Of(0.9, 0.9),
		NeedElem: vec.Of(0.5, 0), NeedAgg: vec.Of(0.5, 0),
	}
	for i := 0; i < 4; i++ {
		if _, _, _, ok := r.Add(big, big); !ok {
			t.Fatalf("admission %d rejected with free shards left", i)
		}
	}
	if _, _, _, ok := r.Add(big, big); ok {
		t.Fatal("admission into a full park succeeded")
	}
}

// TestRebalanceBottleneck hand-builds a bottleneck shard (all load in shard
// 0, shard 1 nearly idle) and checks the rebalance pass fires: services
// migrate out of the bottleneck and the merged min yield improves over a
// rebalance-disabled router on the same state.
func TestRebalanceBottleneck(t *testing.T) {
	nodes := uniformPark(4) // 2 nodes per shard
	build := func(gap float64) *Router {
		states := []*engine.State{
			{NextID: 100, Services: mkStates(0, 10, 0.30)}, // 10 heavy services on shard 0
			{NextID: 100, Services: mkStates(50, 1, 0.10)}, // 1 light service on shard 1
		}
		rc, err := Restore(Config{Nodes: nodes, Shards: 2, Seed: 1, Gap: gap, Moves: 4}, states)
		if err != nil {
			t.Fatal(err)
		}
		r, warnings, err := rc.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(warnings) > 0 {
			t.Fatalf("unexpected recovery warnings: %v", warnings)
		}
		return r
	}

	frozen := build(-1) // rebalance disabled
	base := frozen.Reallocate()
	if !base.Result.Solved {
		t.Fatal("baseline epoch failed")
	}

	r := build(0.05)
	ep := r.Reallocate()
	if !ep.Result.Solved {
		t.Fatal("rebalanced epoch failed")
	}
	if ep.RebalanceMoves == 0 {
		t.Fatal("rebalance did not trigger on a hand-built bottleneck")
	}
	stats := r.Stats()
	if stats[0].MovedOut == 0 || stats[1].MovedIn == 0 {
		t.Fatalf("moves not reflected in stats: %+v", stats)
	}
	if stats[0].Services >= 10 {
		t.Fatalf("bottleneck shard still holds %d services", stats[0].Services)
	}
	if ep.Result.MinYield <= base.Result.MinYield {
		t.Fatalf("rebalance did not improve min yield: %.4f <= %.4f",
			ep.Result.MinYield, base.Result.MinYield)
	}
	// Every live service must still be tracked consistently.
	if got := stats[0].Services + stats[1].Services; got != 11 {
		t.Fatalf("park holds %d services after rebalance, want 11", got)
	}
	for _, id := range ep.IDs {
		if _, ok := r.Node(id); !ok {
			t.Fatalf("service %d lost its node after rebalance", id)
		}
	}
}

// mkStates builds n placed service states with ids starting at base,
// round-robin across the two nodes of a shard.
func mkStates(base, n int, cpuNeed float64) []engine.ServiceState {
	out := make([]engine.ServiceState, n)
	for i := range out {
		svc := uniformService(cpuNeed)
		out[i] = engine.ServiceState{ID: base + i, Node: i % 2, True: svc, Est: svc}
	}
	return out
}

// TestRepairSkipsRebalance pins that bounded repair epochs never move
// services across shards.
func TestRepairSkipsRebalance(t *testing.T) {
	states := []*engine.State{
		{NextID: 100, Services: mkStates(0, 10, 0.30)},
		{NextID: 100, Services: mkStates(50, 1, 0.10)},
	}
	rc, err := Restore(Config{Nodes: uniformPark(4), Shards: 2, Seed: 1, Gap: 0.01, Moves: 8}, states)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := rc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ep := r.Repair(2)
	if !ep.Result.Solved {
		t.Fatal("repair epoch failed")
	}
	if ep.RebalanceMoves != 0 {
		t.Fatalf("repair moved %d services across shards", ep.RebalanceMoves)
	}
}

// TestFinishResolvesTornMove replays the one cross-WAL state a crash can
// produce — a move-in durable in the destination, the matching move-out
// lost from the source — and checks Finish keeps exactly the destination
// copy.
func TestFinishResolvesTornMove(t *testing.T) {
	svc := uniformService(0.2)
	states := []*engine.State{
		{NextID: 5, Services: []engine.ServiceState{{ID: 3, Node: 0, True: svc, Est: svc}}},
		{NextID: 5},
	}
	rc, err := Restore(Config{Nodes: uniformPark(4), Shards: 2, Seed: 1}, states)
	if err != nil {
		t.Fatal(err)
	}
	// Destination WAL replays the move-in; the source WAL lost its
	// move-out, so shard 0 still holds the stale copy.
	if err := rc.ShardMoveIn(1, 3, 1, 1, svc, svc); err != nil {
		t.Fatal(err)
	}
	r, warnings, err := rc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "stale copy") {
		t.Fatalf("warnings = %v, want one stale-copy repair", warnings)
	}
	if s, ok := r.Shard(3); !ok || s != 1 {
		t.Fatalf("service 3 recovered in shard %d (ok=%v), want 1", s, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("park holds %d services, want 1", r.Len())
	}
	// The stale copy must be gone from shard 0's engine (its loads too).
	if got := r.Stats()[0].Services; got != 0 {
		t.Fatalf("shard 0 still holds %d services", got)
	}
	if hr0, hr1 := r.Stats()[0].Headroom, r.Stats()[1].Headroom; hr0 <= hr1 {
		t.Fatalf("headroom not restored after drop: shard0 %.3f <= shard1 %.3f", hr0, hr1)
	}
}

// TestFinishDropsResurrectedService replays a departure durable in one WAL
// while the source WAL of an earlier torn move still holds the service, and
// checks the tombstone wins.
func TestFinishDropsResurrectedService(t *testing.T) {
	svc := uniformService(0.2)
	states := []*engine.State{
		{NextID: 5, Services: []engine.ServiceState{{ID: 3, Node: 0, True: svc, Est: svc}}},
		{NextID: 5},
	}
	rc, err := Restore(Config{Nodes: uniformPark(4), Shards: 2, Seed: 1}, states)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1: move-in then client remove, both durable. Shard 0: move-out
	// lost.
	if err := rc.ShardMoveIn(1, 3, 1, 1, svc, svc); err != nil {
		t.Fatal(err)
	}
	if err := rc.ShardRemove(1, 3); err != nil {
		t.Fatal(err)
	}
	r, warnings, err := rc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "departure") {
		t.Fatalf("warnings = %v, want one resurrection drop", warnings)
	}
	if r.Len() != 0 {
		t.Fatalf("park holds %d services, want 0", r.Len())
	}
}

// TestFinishThresholdReconciliation pins the torn-SetThreshold rule: shards
// recovered at different thresholds realign to the maximum.
func TestFinishThresholdReconciliation(t *testing.T) {
	states := []*engine.State{
		{NextID: 1, Threshold: 0.1},
		{NextID: 1, Threshold: 0.3},
	}
	rc, err := Restore(Config{Nodes: uniformPark(4), Shards: 2, Seed: 1}, states)
	if err != nil {
		t.Fatal(err)
	}
	r, warnings, err := rc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want one threshold repair", warnings)
	}
	if th := r.Threshold(); th != 0.3 {
		t.Fatalf("threshold = %g, want 0.3", th)
	}
}

// TestMinYieldDecomposes checks the park-global min yield equals the
// minimum over per-shard evaluations on a populated router.
func TestMinYieldDecomposes(t *testing.T) {
	r, err := New(Config{Nodes: testPark(8, 11), Shards: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if y := r.MinYield(0); y != 1 {
		t.Fatalf("empty park min yield = %g, want 1", y)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		svc := randService(rng)
		r.Add(svc, svc)
	}
	r.Reallocate()
	y := r.MinYield(0)
	if math.IsNaN(y) || y < 0 || y > 1 {
		t.Fatalf("min yield %g out of range", y)
	}
	min := math.Inf(1)
	for s := 0; s < r.Shards(); s++ {
		if r.Engine(s).Len() == 0 {
			continue
		}
		if v := r.Engine(s).EvaluateMinYield(0); v < min {
			min = v
		}
	}
	if y != min {
		t.Fatalf("router min yield %g != min over shards %g", y, min)
	}
}
