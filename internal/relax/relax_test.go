package relax

import (
	"math"
	"math/rand"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/lp"
	"vmalloc/internal/milp"
	"vmalloc/internal/vec"
)

// fig1 is the paper's Figure 1 instance (see internal/core tests).
func fig1() *core.Problem {
	return &core.Problem{
		Nodes: []core.Node{
			{Elementary: vec.Of(0.8, 1.0), Aggregate: vec.Of(3.2, 1.0)},
			{Elementary: vec.Of(1.0, 0.5), Aggregate: vec.Of(2.0, 0.5)},
		},
		Services: []core.Service{{
			ReqElem: vec.Of(0.5, 0.5), ReqAgg: vec.Of(1.0, 0.5),
			NeedElem: vec.Of(0.5, 0.0), NeedAgg: vec.Of(1.0, 0.0),
		}},
	}
}

// twoServices builds a 2-node, 2-service instance where the optimum is to
// put one service on each node.
func twoServices() *core.Problem {
	svc := core.Service{
		ReqElem: vec.Of(0.2, 0.4), ReqAgg: vec.Of(0.4, 0.4),
		NeedElem: vec.Of(0.3, 0.0), NeedAgg: vec.Of(0.6, 0.0),
	}
	return &core.Problem{
		Nodes: []core.Node{
			{Elementary: vec.Of(0.5, 1.0), Aggregate: vec.Of(1.0, 1.0)},
			{Elementary: vec.Of(0.5, 1.0), Aggregate: vec.Of(1.0, 1.0)},
		},
		Services: []core.Service{svc, svc},
	}
}

func TestEncodeShapes(t *testing.T) {
	p := fig1()
	enc := Encode(p)
	if enc.J != 1 || enc.H != 2 || enc.D != 2 {
		t.Fatalf("J,H,D = %d,%d,%d", enc.J, enc.H, enc.D)
	}
	if got, want := enc.LP.NumVars(), 2*1*2+1; got != want {
		t.Fatalf("vars = %d, want %d", got, want)
	}
	if enc.EVar(0, 1) != 1 || enc.YVar(0, 0) != 2 || enc.MinYieldVar() != 4 {
		t.Fatal("variable indexing broken")
	}
}

func TestRelaxedFig1(t *testing.T) {
	rel, err := SolveRelaxed(fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Feasible {
		t.Fatal("fig1 relaxation should be feasible")
	}
	// The integral optimum is 1.0 (place on node B); the relaxation can only
	// be >= that, and is capped at 1.
	if rel.MinYield < 1.0-1e-6 {
		t.Fatalf("relaxed min yield = %v, want >= 1", rel.MinYield)
	}
	// Fractional placement must sum to 1 per service.
	sum := rel.E[0][0] + rel.E[0][1]
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("e values sum to %v", sum)
	}
}

func TestExactMatchesBestPlacementFig1(t *testing.T) {
	p := fig1()
	res, err := SolveExact(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("exact solver failed on feasible instance")
	}
	if math.Abs(res.MinYield-1.0) > 1e-6 {
		t.Fatalf("exact min yield = %v, want 1.0", res.MinYield)
	}
	if res.Placement[0] != 1 {
		t.Fatalf("exact placement = %v, want node 1", res.Placement)
	}
}

func TestExactTwoServices(t *testing.T) {
	p := twoServices()
	res, err := SolveExact(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("should be solvable")
	}
	// One per node: each node then has CPU slack 1.0-0.4 = 0.6 against need
	// 0.6 -> yield 1. Elementary: 0.2+y*0.3 <= 0.5 -> y <= 1.
	if math.Abs(res.MinYield-1.0) > 1e-6 {
		t.Fatalf("min yield = %v, want 1.0 (placement %v)", res.MinYield, res.Placement)
	}
	if res.Placement[0] == res.Placement[1] {
		t.Fatalf("services should be spread: %v", res.Placement)
	}
}

func TestUpperBoundDominatesExact(t *testing.T) {
	ps := []*core.Problem{fig1(), twoServices()}
	for i, p := range ps {
		ub, err := UpperBound(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveExact(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Solved && ub < res.MinYield-1e-6 {
			t.Fatalf("case %d: upper bound %v below exact %v", i, ub, res.MinYield)
		}
	}
}

func TestUpperBoundInfeasible(t *testing.T) {
	p := fig1()
	// Memory requirement larger than any node: infeasible.
	p.Services[0].ReqAgg = vec.Of(1.0, 5.0)
	p.Services[0].ReqElem = vec.Of(0.5, 5.0)
	ub, err := UpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if ub >= 0 {
		t.Fatalf("upper bound = %v, want negative (infeasible)", ub)
	}
}

func TestRRNDPlacesFeasibly(t *testing.T) {
	p := twoServices()
	rel, err := SolveRelaxed(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	res := RRND(p, rel, 10, rng)
	if !res.Solved {
		t.Fatal("RRND failed on an easy instance")
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestRRNZHandlesZeroProbabilities(t *testing.T) {
	p := twoServices()
	// A relaxation that puts all mass on node 0 for both services; node 0
	// cannot hold both (memory 0.4+0.4 <= 1.0 fits; CPU requirement
	// 0.4+0.4 <= 1.0 fits... so make it tighter).
	p.Nodes[0].Aggregate = vec.Of(0.5, 0.5)
	rel := &Relaxed{Feasible: true, E: [][]float64{{1, 0}, {1, 0}}}
	rng := rand.New(rand.NewSource(2))
	// RRND can only try node 0 for both; the second service cannot fit
	// (CPU 0.8 > 0.5), and with zero probability elsewhere it must fail.
	if res := RRND(p, rel, 5, rng); res.Solved {
		t.Fatal("RRND should fail when mass is stuck on a full node")
	}
	// RRNZ floors the zero to Epsilon and eventually places on node 1.
	if res := RRNZ(p, rel, 50, rng); !res.Solved {
		t.Fatal("RRNZ should succeed via the epsilon floor")
	}
}

func TestRoundingRespectsInfeasibleRelaxation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if res := RRND(fig1(), &Relaxed{}, 3, rng); res.Solved {
		t.Fatal("infeasible relaxation must yield failed result")
	}
	if res := RRNZ(fig1(), &Relaxed{}, 3, rng); res.Solved {
		t.Fatal("infeasible relaxation must yield failed result")
	}
}

// Random small instances: relaxation upper bound must always dominate the
// exact MILP optimum, and RRNZ solutions must be valid placements.
func TestRandomInstancesBoundAndRounding(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 15; iter++ {
		p := randomProblem(rng, 2, 3)
		ub, err := UpperBound(p)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := SolveExact(p, &milp.Options{MaxNodes: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if exact.Solved {
			if ub < exact.MinYield-1e-5 {
				t.Fatalf("iter %d: UB %v < exact %v", iter, ub, exact.MinYield)
			}
			rel, err := SolveRelaxed(p)
			if err != nil {
				t.Fatal(err)
			}
			res := RRNZ(p, rel, 40, rng)
			if res.Solved {
				if err := res.Placement.Validate(p); err != nil {
					t.Fatalf("iter %d: invalid RRNZ placement: %v", iter, err)
				}
				if res.MinYield > ub+1e-6 {
					t.Fatalf("iter %d: RRNZ yield %v exceeds UB %v", iter, res.MinYield, ub)
				}
			}
		}
	}
}

func randomProblem(rng *rand.Rand, h, j int) *core.Problem {
	p := &core.Problem{}
	for i := 0; i < h; i++ {
		cpu := 0.4 + rng.Float64()*0.6
		mem := 0.4 + rng.Float64()*0.6
		p.Nodes = append(p.Nodes, core.Node{
			Elementary: vec.Of(cpu/4, mem),
			Aggregate:  vec.Of(cpu, mem),
		})
	}
	for s := 0; s < j; s++ {
		needCPU := rng.Float64() * 0.3
		mem := rng.Float64() * 0.15
		p.Services = append(p.Services, core.Service{
			ReqElem:  vec.Of(0.01, mem),
			ReqAgg:   vec.Of(0.01, mem),
			NeedElem: vec.Of(needCPU/2, 0),
			NeedAgg:  vec.Of(needCPU, 0),
		})
	}
	return p
}

// Encode must emit the constraint matrix in sparse form, and the sparse
// matrix must agree with its own densification through both solver paths.
func TestEncodeEmitsSparseMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := randomProblem(rng, 3, 6)
	enc := Encode(p)
	if enc.LP.Cols == nil || enc.LP.A != nil {
		t.Fatal("Encode should emit CSC columns, not dense rows")
	}
	if enc.LP.Cols.M != enc.LP.NumRows() || enc.LP.Cols.N != enc.LP.NumVars() {
		t.Fatalf("CSC shape %dx%d vs problem %dx%d",
			enc.LP.Cols.M, enc.LP.Cols.N, enc.LP.NumRows(), enc.LP.NumVars())
	}
	// Eqs. (3)+(4)+(6)+(7) populate few entries per row; the matrix must
	// actually be sparse, not accidentally dense.
	if nnz, cells := enc.LP.Cols.NNZ(), enc.LP.NumRows()*enc.LP.NumVars(); nnz*4 > cells {
		t.Fatalf("relaxation matrix not sparse: %d nonzeros of %d cells", nnz, cells)
	}
}

// A warm-started re-solve of the same instance must agree with the cold
// solve and actually reuse the basis.
func TestSolveRelaxedWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for iter := 0; iter < 6; iter++ {
		p := randomProblem(rng, 3, 6)
		cold, err := SolveRelaxed(p)
		if err != nil {
			t.Fatal(err)
		}
		if !cold.Feasible {
			continue
		}
		if cold.Basis == nil {
			t.Fatal("feasible relaxation should carry a basis")
		}
		warm, err := SolveRelaxedWarm(p, cold.Basis)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Feasible || math.Abs(warm.MinYield-cold.MinYield) > 1e-8 {
			t.Fatalf("iter %d: warm yield %v vs cold %v", iter, warm.MinYield, cold.MinYield)
		}
	}
}

// The dense and revised simplex back-ends must agree on the relaxation.
func TestRelaxationSolverBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 8; iter++ {
		p := randomProblem(rng, 3, 6)
		enc := Encode(p)
		dense, err := lp.Solve(enc.LP)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := lp.SolveRevised(enc.LP)
		if err != nil {
			t.Fatal(err)
		}
		if dense.Status != rev.Status {
			t.Fatalf("iter %d: status %v vs %v", iter, dense.Status, rev.Status)
		}
		if dense.Status == lp.Optimal && math.Abs(dense.Objective-rev.Objective) > 1e-6 {
			t.Fatalf("iter %d: objective %v vs %v", iter, dense.Objective, rev.Objective)
		}
	}
}

// Encode must not store structural zeros in the CSC, and aggregate rows for
// dimensions no service demands must be skipped entirely rather than emitted
// empty (0 <= capacity holds vacuously and only bloats the basis).
func TestEncodeSkipsZeroCoefficientsAndVacuousRows(t *testing.T) {
	svc := core.Service{
		ReqElem: vec.Of(0.2, 0.1), ReqAgg: vec.Of(0.4, 0),
		NeedElem: vec.Of(0.3, 0.1), NeedAgg: vec.Of(0.6, 0),
	}
	p := &core.Problem{
		Nodes: []core.Node{
			{Elementary: vec.Of(0.5, 1.0), Aggregate: vec.Of(1.0, 1.0)},
			{Elementary: vec.Of(0.5, 1.0), Aggregate: vec.Of(1.0, 1.0)},
		},
		Services: []core.Service{svc, svc},
	}
	enc := Encode(p)
	c := enc.LP.Cols
	for k, v := range c.Val {
		if v == 0 {
			t.Fatalf("stored structural zero at nnz index %d", k)
		}
	}
	perRow := make([]int, c.M)
	for k := 0; k < len(c.RowIdx); k++ {
		perRow[c.RowIdx[k]]++
	}
	for i, cnt := range perRow {
		if cnt == 0 {
			t.Fatalf("row %d emitted empty", i)
		}
	}
	// Dimension 1 has zero aggregate demand everywhere: adding demand there
	// must grow the encoding by exactly one aggregate row per node.
	q := *p
	q.Services = append([]core.Service(nil), p.Services...)
	q.Services[0].NeedAgg = vec.Of(0.6, 0.1)
	encQ := Encode(&q)
	if got, want := encQ.LP.NumRows(), enc.LP.NumRows()+len(p.Nodes); got != want {
		t.Fatalf("demanding dim 1 should add %d aggregate rows: %d -> %d, want %d",
			len(p.Nodes), enc.LP.NumRows(), got, want)
	}
}
