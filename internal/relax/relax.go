// Package relax encodes the service placement and resource allocation
// problem as the paper's MILP (Eqs. 1–7), solves its rational relaxation
// with the internal simplex, solves small instances exactly by branch and
// bound, and implements the randomized-rounding heuristics RRND and RRNZ
// (§3.3) driven by the relaxed solution.
package relax

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"vmalloc/internal/core"
	"vmalloc/internal/lp"
	"vmalloc/internal/milp"
	"vmalloc/internal/presolve"
	"vmalloc/internal/vec"
)

// The relaxation solves route through a pluggable lp.Backend, by default the
// presolving wrapper around the in-tree sparse simplex: the reduction
// pipeline shrinks every warm-started re-solve (RRND/RRNZ rosters, LPBOUND
// brackets) before the simplex runs.
var (
	backendMu sync.RWMutex
	backend   lp.Backend = presolve.Backend{}
)

// SetBackend swaps the LP backend used by all relaxation solves and returns
// the previous one. Safe for concurrent use; intended for experiments and
// tests (e.g. comparing the raw simplex against the presolved path).
func SetBackend(b lp.Backend) lp.Backend {
	backendMu.Lock()
	defer backendMu.Unlock()
	prev := backend
	backend = b
	return prev
}

// CurrentBackend returns the backend used by relaxation solves.
func CurrentBackend() lp.Backend {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backend
}

// Epsilon is the probability floor used by RRNZ (paper uses 0.01).
const Epsilon = 0.01

// Encoding maps problem entities to LP variable indices:
// e_jh at j*H+h, y_jh at J*H + j*H+h, and the minimum yield Y last.
type Encoding struct {
	J, H, D int
	LP      *lp.Problem
}

// EVar returns the variable index of e_jh.
func (enc *Encoding) EVar(j, h int) int { return j*enc.H + h }

// YVar returns the variable index of y_jh.
func (enc *Encoding) YVar(j, h int) int { return enc.J*enc.H + j*enc.H + h }

// MinYieldVar returns the variable index of Y.
func (enc *Encoding) MinYieldVar() int { return 2 * enc.J * enc.H }

// Encode builds the LP for problem p, emitting the constraint matrix
// directly in compressed-sparse-column form: every row touches only a
// handful of the e_jh/y_jh variables, so the sparse encoding is what lets
// lp.SolveSparse run the full-scale relaxation without materializing
// O(rows·vars) dense storage. Elementary rows that can never bind
// (requirement plus need within elementary capacity) are omitted; elementary
// requirements that exceed a node's elementary capacity force e_jh = 0 via a
// bound row.
func Encode(p *core.Problem) *Encoding {
	J, H, D := p.NumServices(), p.NumNodes(), p.Dim()
	n := 2*J*H + 1
	enc := &Encoding{J: J, H: H, D: D}
	prob := &lp.Problem{
		Obj:   make([]float64, n),
		Upper: make([]float64, n),
	}
	for i := range prob.Upper {
		prob.Upper[i] = 1
	}
	prob.Obj[2*J*H] = 1 // maximize Y

	mat := lp.NewSparseBuilder(n)
	row := 0
	endRow := func(s lp.Sense, b float64) {
		prob.Sense = append(prob.Sense, s)
		prob.B = append(prob.B, b)
		row++
	}

	// (3) each service on exactly one node.
	for j := 0; j < J; j++ {
		for h := 0; h < H; h++ {
			mat.Add(row, enc.EVar(j, h), 1)
		}
		endRow(lp.EQ, 1)
	}
	// (4) y_jh <= e_jh.
	for j := 0; j < J; j++ {
		for h := 0; h < H; h++ {
			mat.Add(row, enc.YVar(j, h), 1)
			mat.Add(row, enc.EVar(j, h), -1)
			endRow(lp.LE, 0)
		}
	}
	// (5) elementary capacities: e_jh*r^e_jd + y_jh*n^e_jd <= c^e_hd.
	for j := 0; j < J; j++ {
		s := &p.Services[j]
		for h := 0; h < H; h++ {
			nd := &p.Nodes[h]
			for d := 0; d < D; d++ {
				re, ne, ce := s.ReqElem[d], s.NeedElem[d], nd.Elementary[d]
				if re+ne <= ce {
					continue // can never bind with e,y in [0,1]
				}
				mat.Add(row, enc.EVar(j, h), re)
				mat.Add(row, enc.YVar(j, h), ne)
				endRow(lp.LE, ce)
			}
		}
	}
	// (6) aggregate capacities per node and dimension. The builder already
	// drops structurally-zero coefficients (zero-need dimensions contribute
	// no y_jh terms); additionally skip dimensions no service demands at
	// all, whose rows would be empty — 0 <= capacity holds vacuously.
	hasAgg := make([]bool, D)
	for d := 0; d < D; d++ {
		for j := 0; j < J; j++ {
			if p.Services[j].ReqAgg[d] != 0 || p.Services[j].NeedAgg[d] != 0 { //vmalloc:nondet-ok structural zero tests decide constraint membership; coefficients are stored, not computed
				hasAgg[d] = true
				break
			}
		}
	}
	for h := 0; h < H; h++ {
		nd := &p.Nodes[h]
		for d := 0; d < D; d++ {
			if !hasAgg[d] && nd.Aggregate[d] >= 0 {
				continue
			}
			for j := 0; j < J; j++ {
				mat.Add(row, enc.EVar(j, h), p.Services[j].ReqAgg[d])
				mat.Add(row, enc.YVar(j, h), p.Services[j].NeedAgg[d])
			}
			endRow(lp.LE, nd.Aggregate[d])
		}
	}
	// (7) sum_h y_jh >= Y.
	for j := 0; j < J; j++ {
		for h := 0; h < H; h++ {
			mat.Add(row, enc.YVar(j, h), 1)
		}
		mat.Add(row, enc.MinYieldVar(), -1)
		endRow(lp.GE, 0)
	}
	prob.Cols = mat.Build(row)
	enc.LP = prob
	return enc
}

// Relaxed is the solution of the rational relaxation.
type Relaxed struct {
	// Feasible reports whether the relaxation has a solution at all.
	Feasible bool
	// MinYield is the relaxation's optimal Y: an upper bound on any
	// integral solution's minimum yield (paper §3.2).
	MinYield float64
	// E[j][h] is the fractional placement of service j on node h.
	E [][]float64
	// Basis is the backend's warm-start token (nil when infeasible): with
	// the default presolving backend it is the basis of the REDUCED model,
	// valid for re-solving the relaxation of the identical instance (the
	// RRND-then-RRNZ roster pattern). A token that no longer fits falls
	// back to a cold start inside the solver.
	Basis *lp.Basis
	// Iters/Refactorizations/BlandActivations count the simplex work of
	// this solve and WarmStarted reports whether a supplied basis actually
	// installed; Presolve carries the reduction counters when the backend
	// presolves (nil otherwise). Valid on infeasible outcomes too.
	Iters            int
	Refactorizations int
	BlandActivations int
	WarmStarted      bool
	Presolve         *lp.PresolveStats
}

// fillWork copies the solver-work counters off a backend solution.
func (r *Relaxed) fillWork(sol *lp.Solution) {
	r.Iters = sol.Iters
	r.Refactorizations = sol.Refactorizations
	r.BlandActivations = sol.BlandActivations
	r.WarmStarted = sol.WarmStarted
	r.Presolve = sol.Presolve
}

// SolveRelaxed solves the rational relaxation of the MILP for p through the
// configured backend (presolve + sparse revised simplex by default).
func SolveRelaxed(p *core.Problem) (*Relaxed, error) {
	return SolveRelaxedWarm(p, nil)
}

// SolveRelaxedWarm is SolveRelaxed warm-started from the basis token of a
// previous relaxation solve of the identical instance (a stale token falls
// back to a cold start inside the solver).
func SolveRelaxedWarm(p *core.Problem, warm *lp.Basis) (*Relaxed, error) {
	enc := Encode(p)
	sol, err := CurrentBackend().SolveWarm(enc.LP, warm)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Infeasible:
		r := &Relaxed{}
		r.fillWork(sol)
		return r, nil
	case lp.Optimal:
	default:
		return nil, fmt.Errorf("relax: simplex returned %v", sol.Status)
	}
	r := &Relaxed{Feasible: true, MinYield: sol.X[enc.MinYieldVar()], Basis: sol.Basis}
	r.fillWork(sol)
	r.E = make([][]float64, enc.J)
	for j := 0; j < enc.J; j++ {
		r.E[j] = make([]float64, enc.H)
		for h := 0; h < enc.H; h++ {
			v := sol.X[enc.EVar(j, h)]
			if v < 0 {
				v = 0
			}
			r.E[j][h] = v
		}
	}
	return r, nil
}

// SolveExact solves the MILP exactly by branch and bound. Intended for small
// instances (the paper notes MILP solve time is exponential). The returned
// result carries the optimal placement and its evaluated minimum yield.
func SolveExact(p *core.Problem, opts *milp.Options) (*core.Result, error) {
	enc := Encode(p)
	bins := make([]int, 0, enc.J*enc.H)
	for j := 0; j < enc.J; j++ {
		for h := 0; h < enc.H; h++ {
			bins = append(bins, enc.EVar(j, h))
		}
	}
	sol, err := milp.Solve(&milp.Problem{LP: *enc.LP, Binary: bins}, opts)
	if err != nil {
		return nil, err
	}
	if !sol.HasIncumbent {
		return &core.Result{}, nil
	}
	pl := core.NewPlacement(enc.J)
	for j := 0; j < enc.J; j++ {
		for h := 0; h < enc.H; h++ {
			if sol.X[enc.EVar(j, h)] > 0.5 {
				pl[j] = h
				break
			}
		}
	}
	return core.EvaluatePlacement(p, pl), nil
}

// roundPlacement samples a placement from fractional probabilities. For each
// service, nodes are drawn with probability proportional to probs[j][h];
// nodes where the service's rigid requirements do not fit (given services
// placed so far) get their probability zeroed and the draw repeats, as in
// paper §3.3.1. It returns an incomplete placement if some service fits
// nowhere with positive probability.
func roundPlacement(p *core.Problem, probs [][]float64, rng *rand.Rand) core.Placement {
	J, H := p.NumServices(), p.NumNodes()
	pl := core.NewPlacement(J)
	loads := make([]vec.Vec, H)
	for h := range loads {
		loads[h] = vec.New(p.Dim())
	}
	for j := 0; j < J; j++ {
		s := &p.Services[j]
		w := append([]float64(nil), probs[j]...)
		for {
			total := 0.0
			for _, x := range w {
				total += x
			}
			if total <= 1e-15 {
				return pl // service j cannot be placed
			}
			r := rng.Float64() * total
			h := 0
			for ; h < H-1; h++ {
				r -= w[h]
				if r < 0 {
					break
				}
			}
			if s.FitsRequirements(&p.Nodes[h], loads[h]) {
				pl[j] = h
				loads[h].AccumAdd(s.ReqAgg)
				break
			}
			w[h] = 0
		}
	}
	return pl
}

// RRND is Randomized Rounding: it samples placements from the relaxed e_jh
// values and returns the evaluated result of the first complete sample found
// within attempts tries, or a failed result.
func RRND(p *core.Problem, rel *Relaxed, attempts int, rng *rand.Rand) *core.Result {
	if !rel.Feasible {
		return &core.Result{}
	}
	if attempts <= 0 {
		attempts = 1
	}
	for a := 0; a < attempts; a++ {
		pl := roundPlacement(p, rel.E, rng)
		if pl.Complete() {
			if res := core.EvaluatePlacement(p, pl); res.Solved {
				return res
			}
		}
	}
	return &core.Result{}
}

// RRNZ is Randomized Rounding with No Zero probabilities: every zero e_jh is
// raised to Epsilon before sampling, so services retain a small chance of
// landing on any node that can host them (§3.3.2).
func RRNZ(p *core.Problem, rel *Relaxed, attempts int, rng *rand.Rand) *core.Result {
	if !rel.Feasible {
		return &core.Result{}
	}
	probs := make([][]float64, len(rel.E))
	for j := range rel.E {
		probs[j] = make([]float64, len(rel.E[j]))
		for h, v := range rel.E[j] {
			if v < Epsilon {
				v = Epsilon
			}
			probs[j][h] = v
		}
	}
	if attempts <= 0 {
		attempts = 1
	}
	for a := 0; a < attempts; a++ {
		pl := roundPlacement(p, probs, rng)
		if pl.Complete() {
			if res := core.EvaluatePlacement(p, pl); res.Solved {
				return res
			}
		}
	}
	return &core.Result{}
}

// UpperBound returns the relaxation's optimal minimum yield, which bounds
// every feasible integral solution from above, or -1 if the relaxation is
// infeasible.
func UpperBound(p *core.Problem) (float64, error) {
	rel, err := SolveRelaxed(p)
	if err != nil {
		return 0, err
	}
	if !rel.Feasible {
		return -1, nil
	}
	return math.Min(rel.MinYield, 1), nil
}
