//go:build !unix

package journal

import "os"

// lockDir is a no-op where flock is unavailable; single-process use is then
// the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }
