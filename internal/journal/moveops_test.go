package journal

import (
	"reflect"
	"testing"
)

// TestMoveOpsRoundTrip pins the codec of the sharded-tier move records: a
// MOVE_IN carries everything an ADD does plus the move generation, a
// MOVE_OUT everything a REMOVE does plus the generation, and both survive
// encode/decode exactly.
func TestMoveOpsRoundTrip(t *testing.T) {
	recs := []*Record{
		{Seq: 7, Op: OpMoveIn, ID: 42, Node: 3, Gen: 9,
			TrueSvc: testService(0.25), EstSvc: testService(0.5)},
		{Seq: 8, Op: OpMoveOut, ID: 42, Gen: 9},
		{Seq: 9, Op: OpMoveIn, ID: 0, Node: 0, Gen: 1,
			TrueSvc: testService(1), EstSvc: testService(1)},
		{Seq: 10, Op: OpMoveOut, ID: 1 << 40, Gen: 1 << 50},
	}
	for _, want := range recs {
		payload := encodePayload(nil, want)
		got, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}
	if OpMoveIn.String() != "MOVE_IN" || OpMoveOut.String() != "MOVE_OUT" {
		t.Fatalf("op mnemonics: %s, %s", OpMoveIn, OpMoveOut)
	}
	// Truncating a MOVE_IN anywhere must error, never panic.
	payload := encodePayload(nil, recs[0])
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodePayload(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
