package journal

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"vmalloc/internal/faultfs"
)

// walBytes concatenates every retained segment in log order. Two journals
// holding the same record range produce equal concatenations regardless of
// where their rotations fell.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, _, err := listDir(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, base := range segs {
		data, err := os.ReadFile(segmentPath(dir, base))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, data...)
	}
	return all
}

// streamAll pumps ReadEncoded→AppendFrames until the follower reaches the
// leader's committed seq, with a small byte budget to force many batches.
func streamAll(t *testing.T, leader, follower *Journal) {
	t.Helper()
	for {
		cursor := follower.LastSeq()
		if cursor >= leader.CommittedSeq() {
			return
		}
		data, first, last, err := leader.ReadEncoded(cursor, 512)
		if err != nil {
			t.Fatalf("ReadEncoded(%d): %v", cursor, err)
		}
		if first == 0 {
			t.Fatalf("ReadEncoded(%d) returned nothing below committed %d", cursor, leader.CommittedSeq())
		}
		if first != cursor+1 {
			t.Fatalf("ReadEncoded(%d) started at %d", cursor, first)
		}
		got, err := follower.AppendFrames(data)
		if err != nil {
			t.Fatalf("AppendFrames: %v", err)
		}
		if got != last {
			t.Fatalf("AppendFrames advanced to %d, batch ended at %d", got, last)
		}
	}
}

// TestStreamReplication is the core tentpole property at the journal layer:
// frames shipped ReadEncoded→AppendFrames leave the follower with the same
// chain, the same ledger, the same replayable records, and a byte-identical
// WAL — despite different segment sizes and batch boundaries on each side.
func TestStreamReplication(t *testing.T) {
	leader := openFresh(t, Options{Dir: t.TempDir(), SegmentBytes: 300, ChainInterval: 4, Fsync: FsyncNone})
	defer leader.Close()
	follower := openFresh(t, Options{Dir: t.TempDir(), SegmentBytes: 450, ChainInterval: 4, Fsync: FsyncNone})
	defer follower.Close()

	recs := testRecords(30)
	for _, r := range recs[:17] {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	b := leader.NewBatch()
	for _, r := range recs[17:] {
		if err := b.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit().Wait(); err != nil {
		t.Fatal(err)
	}

	streamAll(t, leader, follower)

	if lh, fh := leader.ChainHead(), follower.ChainHead(); lh != fh {
		t.Fatalf("chains diverge after streaming:\n leader:   %+v\n follower: %+v", lh, fh)
	}
	if _, diverged := CompareChains(leader.Entries(), follower.Entries()); diverged {
		t.Fatal("ledgers diverge after streaming")
	}
	if err := follower.Barrier().Wait(); err != nil {
		t.Fatal(err)
	}
	if lw, fw := walBytes(t, leader.opts.Dir), walBytes(t, follower.opts.Dir); !bytes.Equal(lw, fw) {
		t.Fatalf("WAL bytes differ: leader %d bytes, follower %d bytes", len(lw), len(fw))
	}

	// The follower's log replays to the leader's records.
	fdir := follower.opts.Dir
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	got, info, j2 := replayAll(t, Options{Dir: fdir, ChainInterval: 4})
	defer j2.Close()
	if info.Replayed != len(recs) {
		t.Fatalf("follower replayed %d, want %d", info.Replayed, len(recs))
	}
	for i := range recs {
		recs[i].Seq = uint64(i + 1) // Batch.Add does not stamp the caller's copy
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

// TestReadEncodedBounds: cursor at the committed head returns nothing;
// maxBytes caps the batch but always ships at least one frame.
func TestReadEncodedBounds(t *testing.T) {
	j := openFresh(t, Options{Dir: t.TempDir(), Fsync: FsyncNone})
	defer j.Close()
	for _, r := range testRecords(5) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if data, first, _, err := j.ReadEncoded(j.CommittedSeq(), 1<<20); err != nil || data != nil || first != 0 {
		t.Fatalf("read at head: %v %d %v", data, first, err)
	}
	data, first, last, err := j.ReadEncoded(0, 1)
	if err != nil || first != 1 || last != 1 {
		t.Fatalf("tiny budget: first=%d last=%d err=%v", first, last, err)
	}
	if n, err := scanFrames(data, nil); err != nil || n != len(data) {
		t.Fatalf("tiny batch is not clean frames: %d of %d, %v", n, len(data), err)
	}
}

// TestReadEncodedCompacted: a cursor behind the oldest retained segment is
// ErrCompacted, and InstallSnapshot re-bootstraps a follower that then
// streams the tail and converges.
func TestReadEncodedCompacted(t *testing.T) {
	opts := Options{Dir: t.TempDir(), SegmentBytes: 200, ChainInterval: 4, KeepSnapshots: 1, Fsync: FsyncNone}
	leader := openFresh(t, opts)
	defer leader.Close()
	recs := testRecords(40)
	for _, r := range recs[:30] {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.WriteSnapshot(leader.ChainHead(), []byte(`{"at":30}`)); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[30:] {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := leader.ReadEncoded(0, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("cursor 0 after compaction: %v, want ErrCompacted", err)
	}

	// Re-bootstrap: install the leader's checkpoint, then stream the tail.
	cp := Checkpoint{
		At:       mustBase(t, leader),
		Interval: leader.Interval(),
		Entries:  leader.Entries(),
		State:    []byte(`{"at":30}`),
	}
	fopts := Options{Dir: t.TempDir(), ChainInterval: 4, Fsync: FsyncNone}
	if err := InstallSnapshot(fopts, cp); err != nil {
		t.Fatal(err)
	}
	if err := InstallSnapshot(fopts, cp); err == nil {
		t.Fatal("InstallSnapshot into a seeded directory must refuse")
	}
	follower, info, err := Open(fopts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if info.SnapshotSeq != 30 || string(info.Snapshot) != `{"at":30}` {
		t.Fatalf("bootstrap recovery: %+v", info)
	}
	streamAll(t, leader, follower)
	if lh, fh := leader.ChainHead(), follower.ChainHead(); lh != fh {
		t.Fatalf("chains diverge after re-bootstrap: %+v vs %+v", lh, fh)
	}
}

// mustBase returns the leader's persisted base point at its last snapshot —
// what a checkpoint endpoint would pair with the snapshot state.
func mustBase(t *testing.T, j *Journal) ChainPoint {
	t.Helper()
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	if len(j.bases) == 0 {
		t.Fatal("no snapshot base")
	}
	return j.bases[len(j.bases)-1]
}

// TestAppendFramesRejects: a gap, a stale cursor, or garbage bytes leave the
// follower journal untouched.
func TestAppendFramesRejects(t *testing.T) {
	leader := openFresh(t, Options{Dir: t.TempDir(), Fsync: FsyncNone})
	defer leader.Close()
	for _, r := range testRecords(6) {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	follower := openFresh(t, Options{Dir: t.TempDir(), Fsync: FsyncNone})
	defer follower.Close()

	// Frames starting at seq 3 cannot land on an empty journal.
	data, _, _, err := leader.ReadEncoded(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.AppendFrames(data); err == nil {
		t.Fatal("accepted frames starting at seq 3 on an empty journal")
	}
	if follower.LastSeq() != 0 {
		t.Fatalf("failed append advanced seq to %d", follower.LastSeq())
	}

	// Garbage suffix after valid frames.
	data, _, _, err = leader.ReadEncoded(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.AppendFrames(append(append([]byte{}, data...), "junk"...)); err == nil {
		t.Fatal("accepted frames with a garbage suffix")
	}
	if follower.LastSeq() != 0 {
		t.Fatalf("failed append advanced seq to %d", follower.LastSeq())
	}

	// The clean batch lands, and replaying it again is rejected (stale).
	if last, err := follower.AppendFrames(data); err != nil || last != 6 {
		t.Fatalf("clean append: %d, %v", last, err)
	}
	if _, err := follower.AppendFrames(data); err == nil {
		t.Fatal("accepted a replayed batch")
	}
}
