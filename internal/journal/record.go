// Package journal implements the durable write-ahead log behind the online
// allocation service: an append-only sequence of cluster mutations, framed as
// CRC32C-checked binary records, written with group-commit batched fsync,
// rotated into bounded segments and compacted through snapshots.
//
// The design follows the classic log-plus-checkpoint recipe. Every applied
// mutation of the cluster (admission, departure, need update, threshold
// change, applied reallocation/repair epoch) becomes one Record carrying the
// *decision*, not the request: an admission record stores the id and node the
// engine chose, an epoch record stores the placement that was applied. Replay
// therefore re-applies recorded outcomes instead of re-running solver or
// admission logic, which makes recovery fast and — together with the engine's
// incremental load arithmetic being mirrored exactly on replay — reconstructs
// the live state bit for bit.
//
// On disk a journal directory holds:
//
//	wal-<firstseq>.seg   segments of framed records, rotated by size
//	snap-<seq>.json      state snapshots; <seq> is the last record included
//
// A record with sequence number s is covered by a snapshot with seq >= s;
// recovery loads the newest readable snapshot and replays the tail. Torn
// writes at the end of the last segment (a crash mid-append) are detected by
// the frame CRC and truncated; corruption anywhere else is reported as an
// error rather than silently dropped.
package journal

import (
	"fmt"
	"math"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// Op identifies the kind of cluster mutation a record describes.
type Op uint8

const (
	// OpAdd is a successful admission: TrueSvc/EstSvc were installed as
	// service ID on node Node.
	OpAdd Op = 1
	// OpRemove is a departure of service ID.
	OpRemove Op = 2
	// OpUpdateNeeds replaced the fluid needs of service ID with Needs
	// (true elementary, true aggregate, estimated elementary, estimated
	// aggregate, in that order).
	OpUpdateNeeds Op = 3
	// OpSetThreshold set the §6.2 mitigation threshold to Threshold.
	OpSetThreshold Op = 4
	// OpEpoch applied a solved reallocation (Repair=false) or repair
	// (Repair=true, with Budget) epoch: the services in IDs moved to
	// Placement, index by index.
	OpEpoch Op = 5
	// OpMoveIn installed service ID on node Node after a cross-shard
	// rebalance move (sharded tier only). It replays exactly like OpAdd;
	// the distinct op plus Gen let recovery keep the newest copy when a
	// move is torn across two shard WALs.
	OpMoveIn Op = 6
	// OpMoveOut departed service ID after a cross-shard rebalance move
	// (sharded tier only). It replays exactly like OpRemove.
	OpMoveOut Op = 7
)

// String returns the mnemonic of the op.
func (op Op) String() string {
	switch op {
	case OpAdd:
		return "ADD"
	case OpRemove:
		return "REMOVE"
	case OpUpdateNeeds:
		return "UPDATE_NEEDS"
	case OpSetThreshold:
		return "SET_THRESHOLD"
	case OpEpoch:
		return "EPOCH"
	case OpMoveIn:
		return "MOVE_IN"
	case OpMoveOut:
		return "MOVE_OUT"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Record is one journaled cluster mutation. Which fields are meaningful
// depends on Op; unused fields are zero. Seq is assigned by the journal at
// enqueue time and is strictly consecutive within a directory.
type Record struct {
	Seq uint64
	Op  Op

	// ID and Node (OpAdd, OpRemove, OpUpdateNeeds).
	ID   int
	Node int

	// TrueSvc and EstSvc (OpAdd).
	TrueSvc core.Service
	EstSvc  core.Service

	// Needs (OpUpdateNeeds): true elem, true agg, est elem, est agg.
	Needs [4]vec.Vec

	// Threshold (OpSetThreshold).
	Threshold float64

	// Gen is the per-service cross-shard move generation (OpMoveIn,
	// OpMoveOut).
	Gen uint64

	// Epoch payload (OpEpoch).
	Repair    bool
	Budget    int
	IDs       []int
	Placement core.Placement
}

// appendUvarint/appendVarint are local aliases to keep the encoders short.
func appendUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

func appendVarint(b []byte, x int64) []byte {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return appendUvarint(b, ux)
}

func appendU64(b []byte, x uint64) []byte {
	return append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
		byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
}

func appendVec(b []byte, v vec.Vec) []byte {
	b = appendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = appendU64(b, math.Float64bits(x))
	}
	return b
}

func appendService(b []byte, s *core.Service) []byte {
	b = appendUvarint(b, uint64(len(s.Name)))
	b = append(b, s.Name...)
	b = appendVec(b, s.ReqElem)
	b = appendVec(b, s.ReqAgg)
	b = appendVec(b, s.NeedElem)
	b = appendVec(b, s.NeedAgg)
	return b
}

// encodePayload appends the payload encoding of r (sequence number, op byte,
// op-specific body, all little-endian with varint-compressed integers).
func encodePayload(b []byte, r *Record) []byte {
	b = appendU64(b, r.Seq)
	b = append(b, byte(r.Op))
	switch r.Op {
	case OpAdd:
		b = appendVarint(b, int64(r.ID))
		b = appendVarint(b, int64(r.Node))
		b = appendService(b, &r.TrueSvc)
		b = appendService(b, &r.EstSvc)
	case OpMoveIn:
		b = appendVarint(b, int64(r.ID))
		b = appendVarint(b, int64(r.Node))
		b = appendUvarint(b, r.Gen)
		b = appendService(b, &r.TrueSvc)
		b = appendService(b, &r.EstSvc)
	case OpRemove:
		b = appendVarint(b, int64(r.ID))
	case OpMoveOut:
		b = appendVarint(b, int64(r.ID))
		b = appendUvarint(b, r.Gen)
	case OpUpdateNeeds:
		b = appendVarint(b, int64(r.ID))
		for _, v := range r.Needs {
			b = appendVec(b, v)
		}
	case OpSetThreshold:
		b = appendU64(b, math.Float64bits(r.Threshold))
	case OpEpoch:
		flags := byte(0)
		if r.Repair {
			flags = 1
		}
		b = append(b, flags)
		b = appendVarint(b, int64(r.Budget))
		b = appendUvarint(b, uint64(len(r.IDs)))
		for _, id := range r.IDs {
			b = appendVarint(b, int64(id))
		}
		for _, h := range r.Placement {
			b = appendVarint(b, int64(h))
		}
	}
	return b
}

// byteReader is a bounds-checked cursor over a payload. Every read reports
// failure through ok so decodePayload can never panic on corrupt input.
type byteReader struct {
	b   []byte
	pos int
	ok  bool
}

func (r *byteReader) u8() byte {
	if !r.ok || r.pos >= len(r.b) {
		r.ok = false
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *byteReader) u64() uint64 {
	if !r.ok || r.pos+8 > len(r.b) {
		r.ok = false
		return 0
	}
	b := r.b[r.pos : r.pos+8]
	r.pos += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *byteReader) uvarint() uint64 {
	var x uint64
	var shift uint
	for {
		c := r.u8()
		if !r.ok {
			return 0
		}
		if shift >= 64 || (shift == 63 && c > 1) {
			r.ok = false // overflow
			return 0
		}
		x |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return x
		}
		shift += 7
	}
}

func (r *byteReader) varint() int64 {
	ux := r.uvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x
}

// maxVecDim bounds decoded vector dimensionality: real problems use a
// handful of resource dimensions, so anything enormous is corruption and
// must not trigger a huge allocation.
const maxVecDim = 1 << 16

// maxEpochServices bounds decoded epoch roster sizes for the same reason.
const maxEpochServices = 1 << 24

func (r *byteReader) vec() vec.Vec {
	n := r.uvarint()
	if !r.ok || n > maxVecDim {
		r.ok = false
		return nil
	}
	if n == 0 {
		return vec.Vec{}
	}
	v := make(vec.Vec, n)
	for i := range v {
		v[i] = math.Float64frombits(r.u64())
	}
	if !r.ok {
		return nil
	}
	return v
}

func (r *byteReader) service() core.Service {
	var s core.Service
	n := r.uvarint()
	// Compare in uint64: a length >= 2^63 must not wrap negative through
	// int() and sneak past the bounds check into a panicking slice.
	if !r.ok || n > uint64(len(r.b)-r.pos) {
		r.ok = false
		return s
	}
	s.Name = string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	s.ReqElem = r.vec()
	s.ReqAgg = r.vec()
	s.NeedElem = r.vec()
	s.NeedAgg = r.vec()
	return s
}

// decodePayload parses one record payload. It returns an error (never
// panics) on truncated, overlong or structurally invalid input.
func decodePayload(payload []byte) (*Record, error) {
	rd := &byteReader{b: payload, ok: true}
	rec := &Record{}
	rec.Seq = rd.u64()
	rec.Op = Op(rd.u8())
	switch rec.Op {
	case OpAdd:
		rec.ID = int(rd.varint())
		rec.Node = int(rd.varint())
		rec.TrueSvc = rd.service()
		rec.EstSvc = rd.service()
	case OpMoveIn:
		rec.ID = int(rd.varint())
		rec.Node = int(rd.varint())
		rec.Gen = rd.uvarint()
		rec.TrueSvc = rd.service()
		rec.EstSvc = rd.service()
	case OpRemove:
		rec.ID = int(rd.varint())
	case OpMoveOut:
		rec.ID = int(rd.varint())
		rec.Gen = rd.uvarint()
	case OpUpdateNeeds:
		rec.ID = int(rd.varint())
		for i := range rec.Needs {
			rec.Needs[i] = rd.vec()
		}
	case OpSetThreshold:
		rec.Threshold = math.Float64frombits(rd.u64())
	case OpEpoch:
		rec.Repair = rd.u8()&1 != 0
		rec.Budget = int(rd.varint())
		n := rd.uvarint()
		if !rd.ok || n > maxEpochServices {
			return nil, fmt.Errorf("journal: epoch record roster size %d invalid", n)
		}
		rec.IDs = make([]int, n)
		for i := range rec.IDs {
			rec.IDs[i] = int(rd.varint())
		}
		rec.Placement = make(core.Placement, n)
		for i := range rec.Placement {
			rec.Placement[i] = int(rd.varint())
		}
	default:
		return nil, fmt.Errorf("journal: unknown op %d", uint8(rec.Op))
	}
	if !rd.ok {
		return nil, fmt.Errorf("journal: truncated %s record payload (%d bytes)", rec.Op, len(payload))
	}
	if rd.pos != len(payload) {
		return nil, fmt.Errorf("journal: %d trailing bytes after %s record", len(payload)-rd.pos, rec.Op)
	}
	return rec, nil
}
