package journal

import (
	"reflect"
	"sync"
	"testing"
)

// TestBatchCommitRoundTrip pins the group-append contract: every record of a
// committed batch is durable, in order, with consecutive sequence numbers —
// and the whole batch costs one commit write and (in FsyncBatch mode) one
// fsync.
func TestBatchCommitRoundTrip(t *testing.T) {
	opts := Options{Dir: t.TempDir(), Fsync: FsyncBatch}
	j := openFresh(t, opts)
	want := testRecords(25)
	b := j.NewBatch()
	for _, r := range want {
		if err := b.Add(r); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if b.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(want))
	}
	if err := b.Commit().Wait(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("batch not reset after Commit: Len = %d", b.Len())
	}
	st := j.IOStats()
	if st.Records != uint64(len(want)) || st.Batches != 1 || st.Fsyncs != 1 {
		t.Fatalf("IOStats after one batch: %+v", st)
	}
	// 25 records land in the (16, 32] bucket.
	if st.BatchSizes[5] != 1 {
		t.Fatalf("batch-size histogram: %+v", st.BatchSizes)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, info, j2 := replayAll(t, opts)
	defer j2.Close()
	if info.Replayed != len(want) {
		t.Fatalf("replayed %d records, want %d", info.Replayed, len(want))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d replayed with seq %d", i, r.Seq)
		}
		wantCp := *want[i]
		wantCp.Seq = r.Seq
		if !reflect.DeepEqual(*r, wantCp) {
			t.Fatalf("record %d differs:\ngot  %+v\nwant %+v", i, *r, wantCp)
		}
	}
}

// TestBatchEmptyCommit: committing an empty batch is a durable no-op.
func TestBatchEmptyCommit(t *testing.T) {
	j := openFresh(t, Options{Dir: t.TempDir()})
	defer j.Close()
	if err := j.NewBatch().Commit().Wait(); err != nil {
		t.Fatalf("empty Commit: %v", err)
	}
	if st := j.IOStats(); st.Records != 0 || st.Batches != 0 {
		t.Fatalf("empty commit touched the log: %+v", st)
	}
	if j.LastSeq() != 0 {
		t.Fatalf("empty commit advanced seq to %d", j.LastSeq())
	}
}

// TestBatchInterleavedWithEnqueue: batches racing single appends must yield
// unique, gap-free sequence numbers with every batch's records contiguous.
func TestBatchInterleavedWithEnqueue(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	const (
		writers   = 4
		perWriter = 20
		batchLen  = 5
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				b := j.NewBatch()
				for i := 0; i < perWriter; i++ {
					if err := b.Add(testRecords(1)[0]); err != nil {
						t.Errorf("Add: %v", err)
						return
					}
					if b.Len() == batchLen {
						if err := b.Commit().Wait(); err != nil {
							t.Errorf("Commit: %v", err)
							return
						}
					}
				}
			} else {
				for i := 0; i < perWriter; i++ {
					if err := j.Append(testRecords(1)[0]); err != nil {
						t.Errorf("Append: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, info, j2 := replayAll(t, opts)
	defer j2.Close()
	const total = writers * perWriter
	if info.Replayed != total {
		t.Fatalf("replayed %d, want %d", info.Replayed, total)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("sequence gap at %d: seq %d", i, r.Seq)
		}
	}
}

// TestBatchOversizeRecord: a record over the frame limit is rejected without
// corrupting the rest of the batch.
func TestBatchOversizeRecord(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	b := j.NewBatch()
	if err := b.Add(testRecords(1)[0]); err != nil {
		t.Fatalf("Add small: %v", err)
	}
	huge := testRecords(1)[0]
	huge.TrueSvc.Name = string(make([]byte, maxPayloadBytes))
	if err := b.Add(huge); err == nil {
		t.Fatal("oversize record joined the batch")
	}
	if b.Len() != 1 {
		t.Fatalf("Len after rejected Add = %d, want 1", b.Len())
	}
	if err := b.Commit().Wait(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, info, j2 := replayAll(t, opts)
	defer j2.Close()
	if info.Replayed != 1 {
		t.Fatalf("replayed %d, want 1", info.Replayed)
	}
}

// TestGroupCommitAmortization: N concurrent single appends under FsyncBatch
// must complete with fewer fsyncs than records — the group commit is the
// mechanism the batched admission path builds on.
func TestGroupCommitAmortization(t *testing.T) {
	j := openFresh(t, Options{Dir: t.TempDir(), Fsync: FsyncBatch})
	defer j.Close()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := j.Append(testRecords(1)[0]); err != nil {
				t.Errorf("Append: %v", err)
			}
		}()
	}
	wg.Wait()
	st := j.IOStats()
	if st.Records != n {
		t.Fatalf("Records = %d, want %d", st.Records, n)
	}
	if st.Fsyncs == 0 || st.Fsyncs > st.Records {
		t.Fatalf("Fsyncs = %d for %d records", st.Fsyncs, st.Records)
	}
}
