package journal

import (
	"fmt"
	"sync/atomic"
)

// Batch accumulates records for one atomic group append. Records are encoded
// by Add off the journal lock (so aliased engine buffers are captured
// immediately, exactly like Enqueue), and Commit hands every frame to the
// committer under a single lock acquisition: the records receive consecutive
// sequence numbers with nothing interleaved, land in the same commit batch,
// and therefore share one write and one fsync. The returned ticket resolves
// once the whole batch is durable.
//
// A Batch is single-goroutine; callers that must keep the log faithful to
// application order Add and Commit while holding their own state lock and
// Wait after releasing it, exactly as with Enqueue.
type Batch struct {
	j        *Journal
	payloads []byte // concatenated encoded payloads
	ends     []int  // end offset of each payload in payloads
}

// NewBatch returns an empty batch bound to the journal. The batch's buffers
// are reusable: after Commit (or Reset) it is empty and ready for the next
// group.
func (j *Journal) NewBatch() *Batch { return &Batch{j: j} }

// Add encodes r into the batch. The record's aliased buffers are copied out
// now, so they only need to stay valid for the duration of the call. A record
// exceeding the frame limit is rejected without joining the batch — the
// remaining records are unaffected.
func (b *Batch) Add(r *Record) error {
	start := len(b.payloads)
	b.payloads = encodePayload(b.payloads, r)
	if n := len(b.payloads) - start; n > maxPayloadBytes {
		b.payloads = b.payloads[:start]
		return fmt.Errorf("journal: %s record payload %d bytes exceeds frame limit %d",
			r.Op, n, maxPayloadBytes)
	}
	b.ends = append(b.ends, len(b.payloads))
	return nil
}

// Len returns the number of records accumulated so far.
func (b *Batch) Len() int { return len(b.ends) }

// Reset discards the accumulated records, keeping the buffers.
func (b *Batch) Reset() {
	b.payloads = b.payloads[:0]
	b.ends = b.ends[:0]
}

// Commit enqueues every accumulated record as one unit — consecutive
// sequence numbers, one commit write, one shared fsync — and resets the
// batch. The single returned ticket resolves when the whole group is durable.
// Committing an empty batch returns an immediately resolved ticket.
func (b *Batch) Commit() *Ticket {
	ch := make(chan error, 1)
	if len(b.ends) == 0 {
		ch <- nil
		return &Ticket{ch}
	}
	j := b.j
	j.mu.Lock()
	if j.failed != nil {
		err := j.failed
		j.mu.Unlock()
		b.Reset()
		ch <- err
		return &Ticket{ch}
	}
	start := 0
	for _, end := range b.ends {
		payload := b.payloads[start:end]
		start = end
		j.seq++
		// Patch the sequence number into the fixed 8-byte payload prefix
		// (the frame CRC is computed by appendFrame, after the patch).
		for i := 0; i < 8; i++ {
			payload[i] = byte(j.seq >> (8 * i))
		}
		j.pend.buf = appendFrame(j.pend.buf, payload)
		j.advanceChain(payload)
	}
	j.pend.recs += len(b.ends)
	j.pend.waiters = append(j.pend.waiters, ch)
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	b.Reset()
	return &Ticket{ch}
}

// BatchSizeBounds are the upper bounds (inclusive) of the commit batch size
// histogram buckets reported by IOStats; batches larger than the last bound
// land in the final open bucket.
var BatchSizeBounds = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// IOStats is a point-in-time snapshot of the journal's write-path counters:
// how many records were durably written, in how many commit batches (group
// commits), with how many fsyncs and segment rotations. BatchSizes[i] counts
// commit batches whose record count was <= BatchSizeBounds[i] (and greater
// than the previous bound); the final bucket is open-ended. The ratio
// Records/Fsyncs is the fsync amortization factor the group commit achieves.
type IOStats struct {
	Records    uint64
	Batches    uint64
	Fsyncs     uint64
	Rotations  uint64
	BatchSizes [len(BatchSizeBounds) + 1]uint64
}

// ioCounters is the committer-side instrumentation, atomics so IOStats can
// be read from any goroutine without taking the journal lock.
type ioCounters struct {
	records    atomic.Uint64
	batches    atomic.Uint64
	fsyncs     atomic.Uint64
	rotations  atomic.Uint64
	batchSizes [len(BatchSizeBounds) + 1]atomic.Uint64
}

func (c *ioCounters) noteBatch(recs int, synced bool) {
	if recs > 0 {
		c.records.Add(uint64(recs))
		c.batches.Add(1)
		i := 0
		for i < len(BatchSizeBounds) && uint64(recs) > BatchSizeBounds[i] {
			i++
		}
		c.batchSizes[i].Add(1)
	}
	if synced {
		c.fsyncs.Add(1)
	}
}

// IOStats returns the journal's cumulative write-path counters.
func (j *Journal) IOStats() IOStats {
	var st IOStats
	st.Records = j.io.records.Load()
	st.Batches = j.io.batches.Load()
	st.Fsyncs = j.io.fsyncs.Load()
	st.Rotations = j.io.rotations.Load()
	for i := range st.BatchSizes {
		st.BatchSizes[i] = j.io.batchSizes[i].Load()
	}
	return st
}
