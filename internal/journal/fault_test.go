package journal

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"vmalloc/internal/faultfs"
)

// TestTortureAckedNeverLost is the durability contract under injected write
// and fsync faults: a record whose Append returned nil must survive recovery,
// for every torture seed, no matter where in the commit path the fault
// landed. Unacked records may or may not survive — but never out of order.
func TestTortureAckedNeverLost(t *testing.T) {
	recs := testRecords(400)
	injectedTotal := uint64(0)
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(nil, seed)
			opts := Options{Dir: dir, FS: inj, ChainInterval: 8, SegmentBytes: 4096}
			j, _, err := Open(opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			acked := 0
			for i, r := range recs {
				if i == 40 {
					// Let the journal warm up clean, then turn on the weather.
					inj.Torture(0.01, 0.01, 0)
				}
				if err := j.Append(r); err != nil {
					if !errors.Is(err, faultfs.ErrInjected) {
						t.Fatalf("append %d failed with a non-injected error: %v", i, err)
					}
					break
				}
				acked = i + 1
			}
			j.Close() // returns the sticky fault; the "crash"

			// Reboot on clean hardware: every acked record must replay, in
			// order, byte-for-byte, and the chain must verify.
			var got []*Record
			clean := Options{Dir: dir, ChainInterval: 8}
			j2, info, err := Open(clean, func(r *Record) error {
				cp := *r
				got = append(got, &cp)
				return nil
			})
			if err != nil {
				t.Fatalf("recovery after torture (acked=%d): %v", acked, err)
			}
			defer j2.Close()
			if info.Replayed < acked {
				t.Fatalf("recovered %d records but %d were acked", info.Replayed, acked)
			}
			for i, r := range got {
				want := *recs[i]
				want.Seq = uint64(i + 1)
				if !reflect.DeepEqual(*r, want) {
					t.Fatalf("record %d differs after recovery:\n got %+v\nwant %+v", i, *r, want)
				}
			}
			// The survivor journal is fully writable again.
			if err := j2.Append(recs[len(recs)-1]); err != nil {
				t.Fatal(err)
			}
			c := inj.Counts()
			for op := range c.Injected {
				injectedTotal += c.Injected[op]
			}
		})
	}
	if injectedTotal == 0 {
		t.Fatal("torture injected zero faults across all seeds; the test is vacuous")
	}
}

// TestSnapshotRenameFaultRecoverable: a checkpoint whose snapshot rename
// fails leaves the directory fully recoverable — chain.json may already
// carry a base for the snapshot that never landed, and recovery must shrug
// that off and fall back to the log.
func TestSnapshotRenameFaultRecoverable(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 7)
	opts := Options{Dir: dir, FS: inj, ChainInterval: 4}
	j := openFresh(t, opts)
	recs := testRecords(12)
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// First rename is chain.json (succeeds), second is the snapshot (fails):
	// the worst ordering, because the ledger now references a base with no
	// matching snapshot file.
	inj.FailRenames(1)
	if err := j.WriteSnapshot(j.ChainHead(), []byte(`{"at":12}`)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("snapshot under rename fault: %v, want injected", err)
	}
	inj.Disarm()
	// The journal itself is not poisoned: appends and a retried checkpoint
	// still work.
	if err := j.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, j2 := replayAll(t, Options{Dir: dir, ChainInterval: 4})
	defer j2.Close()
	if info.SnapshotSeq != 0 || info.Replayed != 13 || info.LastSeq != 13 {
		t.Fatalf("recovery after failed checkpoint: %+v", info)
	}
	if err := j2.WriteSnapshot(j2.ChainHead(), []byte(`{"at":13}`)); err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
}

// TestTornTailMovePair exercises the rebalance durability order with real
// injected faults (satellite of the duplicate-not-lost guarantee): the
// MOVE_IN is acked durable, the paired MOVE_OUT is torn mid-write by an
// injected fault, and recovery must deliver the MOVE_IN while truncating the
// torn MOVE_OUT — the service is duplicated across shards, never lost.
func TestTornTailMovePair(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 3)
	opts := Options{Dir: dir, FS: inj, ChainInterval: 4}
	j := openFresh(t, opts)
	for _, r := range testRecords(8) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	svc := testService(9.5)
	moveIn := &Record{Op: OpMoveIn, ID: 99, Node: 1, Gen: 5, TrueSvc: svc, EstSvc: svc}
	if err := j.Append(moveIn); err != nil {
		t.Fatal(err)
	}
	// The destination's MOVE_IN is on disk. Now the source's MOVE_OUT tears.
	inj.FailWrites(0, true)
	moveOut := &Record{Op: OpMoveOut, ID: 99, Gen: 5}
	if err := j.Append(moveOut); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn MOVE_OUT: %v, want injected fault", err)
	}
	j.Close()

	var ops []Op
	j2, info, err := Open(Options{Dir: dir, ChainInterval: 4}, func(r *Record) error {
		ops = append(ops, r.Op)
		return nil
	})
	if err != nil {
		t.Fatalf("recovery after torn MOVE_OUT: %v", err)
	}
	defer j2.Close()
	if info.LastSeq != 9 || ops[len(ops)-1] != OpMoveIn {
		t.Fatalf("recovery: LastSeq=%d lastOp=%v, want 9/MOVE_IN", info.LastSeq, ops[len(ops)-1])
	}
	for _, op := range ops {
		if op == OpMoveOut {
			t.Fatal("torn MOVE_OUT replayed")
		}
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("no torn tail truncated; the injected tear did not land")
	}
	// Recovery is idempotent from here: the retried MOVE_OUT lands cleanly.
	if err := j2.Append(moveOut); err != nil {
		t.Fatal(err)
	}
}

// TestFsyncFaultFailsAck: an fsync fault on the commit path must surface as
// an append error (no ack), and the journal must refuse further work with
// the sticky fault rather than silently dropping durability.
func TestFsyncFaultFailsAck(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 5)
	opts := Options{Dir: dir, FS: inj, ChainInterval: 4}
	j := openFresh(t, opts)
	if err := j.Append(testRecords(1)[0]); err != nil {
		t.Fatal(err)
	}
	inj.FailSyncs(0)
	if err := j.Append(testRecords(2)[1]); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append over failed fsync acked: %v", err)
	}
	if err := j.Err(); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("journal not sticky-failed: %v", err)
	}
	if err := j.Append(testRecords(3)[2]); err == nil {
		t.Fatal("failed journal accepted an append")
	}
	j.Close()
	_, info, j2 := replayAll(t, Options{Dir: dir, ChainInterval: 4})
	defer j2.Close()
	// Whether the unacked record's bytes survived is the OS's business; the
	// acked record must be there.
	if info.LastSeq < 1 {
		t.Fatalf("acked record lost: %+v", info)
	}
}
