package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/faultfs"
	"vmalloc/internal/vec"
)

func testService(x float64) core.Service {
	return core.Service{
		Name:    fmt.Sprintf("svc-%g", x),
		ReqElem: vec.Of(x, x/2), ReqAgg: vec.Of(x, x/2),
		NeedElem: vec.Of(x/4, 0), NeedAgg: vec.Of(x/3, 0.125),
	}
}

// testRecords builds one record of every op with non-trivial payloads.
func testRecords(n int) []*Record {
	var recs []*Record
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			recs = append(recs, &Record{
				Op: OpAdd, ID: i, Node: i % 3,
				TrueSvc: testService(float64(i) + 0.25),
				EstSvc:  testService(float64(i) + 0.5),
			})
		case 1:
			recs = append(recs, &Record{Op: OpRemove, ID: i - 1})
		case 2:
			recs = append(recs, &Record{
				Op: OpUpdateNeeds, ID: i,
				Needs: [4]vec.Vec{vec.Of(1, 2), vec.Of(3, 4), vec.Of(5, 6), vec.Of(7, 8)},
			})
		case 3:
			recs = append(recs, &Record{Op: OpSetThreshold, Threshold: 0.3 + float64(i)/100})
		case 4:
			recs = append(recs, &Record{
				Op: OpEpoch, Repair: i%2 == 0, Budget: i,
				IDs:       []int{i, i + 1, i + 2},
				Placement: core.Placement{0, 2, 1},
			})
		}
	}
	return recs
}

func openFresh(t *testing.T, opts Options) *Journal {
	t.Helper()
	j, info, err := Open(opts, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if info.Replayed != 0 || info.Snapshot != nil {
		t.Fatalf("fresh dir recovered state: %+v", info)
	}
	return j
}

func replayAll(t *testing.T, opts Options) ([]*Record, RecoveryInfo, *Journal) {
	t.Helper()
	var got []*Record
	j, info, err := Open(opts, func(r *Record) error {
		cp := *r
		got = append(got, &cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return got, info, j
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	want := testRecords(25)
	for i, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d got seq %d", i, r.Seq)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, info, j2 := replayAll(t, opts)
	defer j2.Close()
	if info.Replayed != len(want) || info.TruncatedBytes != 0 {
		t.Fatalf("recovery info: %+v", info)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	// Appends continue the sequence.
	r := &Record{Op: OpRemove, ID: 1}
	if err := j2.Append(r); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if r.Seq != uint64(len(want)+1) {
		t.Fatalf("post-recovery seq %d, want %d", r.Seq, len(want)+1)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	const goroutines, per = 16, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(&Record{Op: OpRemove, ID: g*per + i}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, info, j2 := replayAll(t, opts)
	j2.Close()
	if len(got) != goroutines*per {
		t.Fatalf("replayed %d, want %d", len(got), goroutines*per)
	}
	seen := make(map[int]bool)
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
	}
	if info.LastSeq != uint64(goroutines*per) {
		t.Fatalf("LastSeq %d", info.LastSeq)
	}
}

func TestSegmentRotation(t *testing.T) {
	opts := Options{Dir: t.TempDir(), SegmentBytes: 256}
	j := openFresh(t, opts)
	want := testRecords(60)
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(faultfs.OS{}, opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	got, _, j2 := replayAll(t, opts)
	j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch after rotation", i)
		}
	}
}

func TestSnapshotCompactionAndFallback(t *testing.T) {
	opts := Options{Dir: t.TempDir(), SegmentBytes: 128, KeepSnapshots: 2}
	j := openFresh(t, opts)
	for _, r := range testRecords(20) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.WriteSnapshot(j.ChainHead(), []byte(`{"at":20}`)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for _, r := range testRecords(10) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.WriteSnapshot(j.ChainHead(), []byte(`{"at":30}`)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for _, r := range testRecords(5) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	segs, snaps, err := listDir(faultfs.OS{}, opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("want 2 retained snapshots, got %v", snaps)
	}
	if segs[0] > snaps[0]+1 {
		t.Fatalf("segments %v do not cover oldest kept snapshot %d", segs, snaps[0])
	}

	// Normal recovery uses the newest snapshot and replays 5 records.
	got, info, j2 := replayAll(t, opts)
	j2.Close()
	if string(info.Snapshot) != `{"at":30}` || info.SnapshotSeq != 30 || len(got) != 5 {
		t.Fatalf("recovery: snap=%q seq=%d replayed=%d", info.Snapshot, info.SnapshotSeq, len(got))
	}
	if got[0].Seq != 31 {
		t.Fatalf("first replayed seq %d, want 31", got[0].Seq)
	}

	// Corrupt the newest snapshot: recovery falls back to the older one and
	// replays the longer tail.
	if err := os.WriteFile(snapshotPath(opts.Dir, 30), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	validate := func(b []byte) error {
		if !bytes.HasPrefix(b, []byte(`{"at"`)) {
			return fmt.Errorf("bad snapshot")
		}
		return nil
	}
	got, info, j3 := replayAll(t, Options{Dir: opts.Dir, ValidateSnapshot: validate})
	j3.Close()
	if string(info.Snapshot) != `{"at":20}` || info.SkippedSnapshots != 1 {
		t.Fatalf("fallback recovery: snap=%q skipped=%d", info.Snapshot, info.SkippedSnapshots)
	}
	if len(got) != 15 {
		t.Fatalf("fallback replayed %d records, want 15", len(got))
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(data []byte) []byte
	}{
		{"garbage appended", func(d []byte) []byte { return append(d, 0xde, 0xad, 0xbe, 0xef, 0x01) }},
		{"partial frame", func(d []byte) []byte {
			extra := appendFrame(nil, encodePayload(nil, &Record{Seq: 99, Op: OpRemove, ID: 7}))
			return append(d, extra[:len(extra)-3]...)
		}},
		{"bitflip in last record", func(d []byte) []byte {
			d[len(d)-1] ^= 0xff
			return d
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Dir: t.TempDir()}
			j := openFresh(t, opts)
			want := testRecords(10)
			for _, r := range want {
				if err := j.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			segs, _, err := listDir(faultfs.OS{}, opts.Dir)
			if err != nil || len(segs) != 1 {
				t.Fatalf("segments: %v %v", segs, err)
			}
			path := segmentPath(opts.Dir, segs[0])
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.tear(data), 0o644); err != nil {
				t.Fatal(err)
			}

			got, info, j2 := replayAll(t, opts)
			j2.Close()
			if info.TruncatedBytes == 0 {
				t.Fatalf("expected torn-tail truncation, info=%+v", info)
			}
			wantN := len(want)
			if tc.name == "bitflip in last record" {
				wantN-- // the damaged final record is dropped
			}
			if len(got) != wantN {
				t.Fatalf("replayed %d records, want %d", len(got), wantN)
			}
			// After truncation a fresh recovery is clean.
			got2, info2, j3 := replayAll(t, opts)
			j3.Close()
			if info2.TruncatedBytes != 0 || len(got2) != wantN {
				t.Fatalf("second recovery not clean: %+v, %d records", info2, len(got2))
			}
		})
	}
}

func TestCorruptMiddleSegmentIsError(t *testing.T) {
	opts := Options{Dir: t.TempDir(), SegmentBytes: 128}
	j := openFresh(t, opts)
	for _, r := range testRecords(40) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(faultfs.OS{}, opts.Dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %v (%v)", segs, err)
	}
	path := segmentPath(opts.Dir, segs[1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(opts, nil); err == nil {
		t.Fatal("recovery over a corrupt middle segment should fail, not silently drop records")
	}
}

func TestFailedJournalRejectsAppends(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	if err := j.Append(&Record{Op: OpRemove, ID: 1}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the committer's file descriptor: further appends must fail
	// and the failure must be sticky.
	j.file.Close()
	if err := j.Append(&Record{Op: OpRemove, ID: 2}); err == nil {
		t.Fatal("append to failed journal succeeded")
	}
	if err := j.Append(&Record{Op: OpRemove, ID: 3}); err == nil {
		t.Fatal("failure not sticky")
	}
	if j.Err() == nil {
		t.Fatal("Err() nil after failure")
	}
	j.file = nil // already closed
	j.Close()
}

func TestSnapshotOnlyDirectory(t *testing.T) {
	// A directory can end up with a snapshot covering every record and a
	// pruned, empty tail; recovery must come back with zero replay.
	opts := Options{Dir: t.TempDir(), KeepSnapshots: 1}
	j := openFresh(t, opts)
	for _, r := range testRecords(8) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.WriteSnapshot(j.ChainHead(), []byte(`{"s":8}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, info, j2 := replayAll(t, opts)
	defer j2.Close()
	if len(got) != 0 || info.SnapshotSeq != 8 || info.LastSeq != 8 {
		t.Fatalf("recovery: %d records, info %+v", len(got), info)
	}
	r := &Record{Op: OpRemove, ID: 42}
	if err := j2.Append(r); err != nil {
		t.Fatal(err)
	}
	if r.Seq != 9 {
		t.Fatalf("seq %d, want 9", r.Seq)
	}
}

func TestReplayCallbackErrorStopsRecovery(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	for _, r := range testRecords(5) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	wantErr := fmt.Errorf("apply failed")
	_, _, err := Open(opts, func(r *Record) error {
		if r.Seq == 3 {
			return wantErr
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
}

func TestScanFramesValidPrefixInvariants(t *testing.T) {
	var buf []byte
	recs := testRecords(6)
	for i, r := range recs {
		r.Seq = uint64(i + 1)
		buf = appendFrame(buf, encodePayload(nil, r))
	}
	n := 0
	valid, err := scanFrames(buf, func(p []byte) error { n++; return nil })
	if err != nil || valid != len(buf) || n != len(recs) {
		t.Fatalf("clean scan: valid=%d/%d n=%d err=%v", valid, len(buf), n, err)
	}
	// Truncations at every byte boundary never panic and never over-read.
	for cut := 0; cut <= len(buf); cut++ {
		v, err := scanFrames(buf[:cut], nil)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if v > cut {
			t.Fatalf("cut=%d: valid prefix %d past end", cut, v)
		}
	}
}

func TestSegmentNameOrdering(t *testing.T) {
	names := []string{segmentName(2), segmentName(10), segmentName(100000000000)}
	for i := 1; i < len(names); i++ {
		if !(names[i-1] < names[i]) {
			t.Fatalf("lexical order broken: %v", names)
		}
	}
	seq, ok := parseSeq(filepath.Base(segmentPath("x", 42)), segPrefix, segSuffix)
	if !ok || seq != 42 {
		t.Fatalf("parseSeq: %d %v", seq, ok)
	}
}

func TestDirectoryLockRejectsSecondOpen(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	defer j.Close()
	if _, _, err := Open(opts, nil); err == nil {
		t.Fatal("second Open on a locked directory succeeded")
	}
	// Releasing the lock frees the directory.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, _, err := Open(opts, nil)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	j2.Close()
}

func TestNoAcksAfterCommitFailure(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	if err := j.Append(&Record{Op: OpRemove, ID: 1}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the committer's fd: the next batch fails, and everything
	// after it must fail too — a success ack after a failed batch could sit
	// beyond a torn frame and be truncated at recovery.
	j.file.Close()
	var errs [8]error
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = j.Append(&Record{Op: OpRemove, ID: 100 + i})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("append %d acked as durable after a prior batch failed", i)
		}
	}
	j.file = nil
	j.Close()
}

func TestOversizeRecordRejectedAtEnqueue(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	j := openFresh(t, opts)
	defer j.Close()
	huge := &Record{Op: OpAdd, ID: 1, Node: 0}
	huge.TrueSvc = core.Service{Name: string(make([]byte, maxPayloadBytes+1024))}
	if err := j.Append(huge); err == nil {
		t.Fatal("oversize record acknowledged; the scanner would reject it at recovery")
	}
	// The journal is still healthy and the sequence has no gap.
	r := &Record{Op: OpRemove, ID: 2}
	if err := j.Append(r); err != nil {
		t.Fatalf("append after oversize rejection: %v", err)
	}
	if r.Seq != 1 {
		t.Fatalf("seq %d after rejected oversize record, want 1 (no burned seq)", r.Seq)
	}
}
