package journal

import (
	"errors"
	"fmt"
	"os"
	"sort"
)

// This file is the replication I/O surface: a leader serves raw committed
// frames with ReadEncoded, a follower appends them verbatim with
// AppendFrames, and InstallSnapshot seeds a fresh follower directory from a
// leader checkpoint when the requested cursor has been compacted away.
//
// Frames travel as bytes, never re-encoded: the follower's log is a
// byte-identical prefix of the leader's (modulo segment boundaries, which
// are rotation-local), so both compute the same integrity chain and the
// same checkpoint ledger — divergence detection needs no record semantics.

// ErrCompacted reports that the requested resume point predates the oldest
// retained segment: the reader must re-bootstrap from a checkpoint.
var ErrCompacted = errors.New("journal: cursor compacted away")

// ReadEncoded returns raw committed frames for records with sequence numbers
// in (from, CommittedSeq], starting at from+1, bounded by maxBytes
// (best-effort: at least one frame is returned when any is available).
// first/last are the record range covered; first == 0 means no data was
// available. A from below the oldest retained segment returns ErrCompacted.
// Safe to call concurrently with appends: only bytes written before the
// committed watermark was read are returned, and every frame is re-verified
// by CRC on the way out.
func (j *Journal) ReadEncoded(from uint64, maxBytes int) (data []byte, first, last uint64, err error) {
	committed := j.committedSeq.Load()
	if from >= committed {
		return nil, 0, 0, nil
	}
	segs, _, err := listDir(j.fs, j.opts.Dir)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("journal: %w", err)
	}
	start := from + 1
	if len(segs) == 0 || start < segs[0] {
		return nil, 0, 0, ErrCompacted
	}
	// The segment holding start is the last one whose base is <= start.
	i := sort.Search(len(segs), func(i int) bool { return segs[i] > start }) - 1
	expect := start
	for ; i < len(segs); i++ {
		raw, err := j.fs.ReadFile(segmentPath(j.opts.Dir, segs[i]))
		if err != nil {
			if os.IsNotExist(err) {
				// Pruned between listing and reading; the caller retries
				// and lands after the new oldest segment or re-bootstraps.
				return nil, 0, 0, ErrCompacted
			}
			return nil, 0, 0, fmt.Errorf("journal: %w", err)
		}
		stop := false
		scanFrames(raw, func(payload []byte) error {
			if stop || len(payload) < 8 {
				stop = true
				return errStopScan
			}
			seq := leU64(payload)
			if seq < expect {
				return nil // below the cursor (or snapshot-covered)
			}
			if seq != expect || seq > committed || len(data) >= maxBytes {
				// A gap (short-read artifact), uncommitted tail, or a full
				// buffer all end the batch; the caller resumes from `last`.
				stop = true
				return errStopScan
			}
			data = appendFrame(data, payload)
			last = seq
			expect++
			return nil
		})
		if stop || expect > committed {
			break
		}
	}
	if last == 0 {
		return nil, 0, 0, nil
	}
	return data, start, last, nil
}

// errStopScan aborts a scanFrames walk early; never escapes this file.
var errStopScan = errors.New("journal: stop scan")

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// AppendFrames validates and appends pre-framed records verbatim, returning
// once they are durable. The frames must decode cleanly, carry consecutive
// sequence numbers, and start exactly at LastSeq+1 — a replica applies the
// leader's log bytes or nothing. Returns the new last sequence number.
//
// Because the bytes land unmodified, a follower fed by ReadEncoded holds a
// log that is a byte-identical prefix of the leader's and computes the same
// integrity chain.
func (j *Journal) AppendFrames(data []byte) (uint64, error) {
	if len(data) == 0 {
		return j.LastSeq(), nil
	}
	type span struct{ start, end int }
	var spans []span
	var seqs []uint64
	off := 0
	valid, err := scanFrames(data, func(payload []byte) error {
		rec, err := decodePayload(payload)
		if err != nil {
			return err
		}
		if n := len(seqs); n > 0 && rec.Seq != seqs[n-1]+1 {
			return fmt.Errorf("journal: AppendFrames: seq %d after %d, not consecutive", rec.Seq, seqs[n-1])
		}
		spans = append(spans, span{off + frameHeader, off + frameHeader + len(payload)})
		seqs = append(seqs, rec.Seq)
		off += frameHeader + len(payload)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if valid != len(data) {
		return 0, fmt.Errorf("journal: AppendFrames: invalid frame at offset %d of %d", valid, len(data))
	}
	if len(seqs) == 0 {
		return j.LastSeq(), nil
	}
	ch := make(chan error, 1)
	j.mu.Lock()
	if j.failed != nil {
		err := j.failed
		j.mu.Unlock()
		return 0, err
	}
	if seqs[0] != j.seq+1 {
		at := j.seq
		j.mu.Unlock()
		return 0, fmt.Errorf("journal: AppendFrames: frames start at seq %d, journal is at %d", seqs[0], at)
	}
	j.pend.buf = append(j.pend.buf, data...)
	for k, sp := range spans {
		j.seq = seqs[k]
		j.advanceChain(data[sp.start:sp.end])
	}
	j.pend.recs += len(seqs)
	j.pend.waiters = append(j.pend.waiters, ch)
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	if err := <-ch; err != nil {
		return 0, err
	}
	return seqs[len(seqs)-1], nil
}

// DecodeFrames walks pre-framed records (the bytes ReadEncoded serves and
// AppendFrames accepts), decoding each payload into a Record. The whole
// buffer must be clean frames.
func DecodeFrames(data []byte, fn func(*Record) error) error {
	n, err := scanFrames(data, func(payload []byte) error {
		rec, err := decodePayload(payload)
		if err != nil {
			return err
		}
		return fn(rec)
	})
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("journal: DecodeFrames: invalid frame at offset %d of %d", n, len(data))
	}
	return nil
}

// LatestCheckpoint pairs the newest durable snapshot with its chain base and
// the persisted checkpoint ledger — everything a follower needs to bootstrap
// via InstallSnapshot. Returns (nil, nil) when the directory has no usable
// snapshot yet; bases whose snapshot file is missing (a checkpoint whose
// rename failed) are skipped.
func (j *Journal) LatestCheckpoint() (*Checkpoint, error) {
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	for k := len(j.bases) - 1; k >= 0; k-- {
		base := j.bases[k]
		state, err := j.fs.ReadFile(snapshotPath(j.opts.Dir, base.Seq))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		return &Checkpoint{
			At:       base,
			Interval: j.Interval(),
			Entries:  j.Entries(),
			State:    state,
		}, nil
	}
	return nil, nil
}

// InstallSnapshot seeds an empty journal directory from a checkpoint: the
// ledger (chain.json) and the snapshot land durably, so a subsequent Open
// recovers to the checkpoint state with the leader's chain — the replica
// continues the leader's history instead of starting its own. A directory
// already holding journal state is refused.
func InstallSnapshot(opts Options, cp Checkpoint) error {
	if opts.Dir == "" {
		return errors.New("journal: no directory")
	}
	if cp.Interval == 0 {
		return errors.New("journal: checkpoint has zero interval")
	}
	if opts.ValidateSnapshot != nil {
		if err := opts.ValidateSnapshot(cp.State); err != nil {
			return fmt.Errorf("journal: checkpoint state: %w", err)
		}
	}
	fsys := opts.fs()
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	segs, snaps, err := listDir(fsys, opts.Dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if len(segs) > 0 || len(snaps) > 0 {
		return fmt.Errorf("journal: %s already holds journal state", opts.Dir)
	}
	if m, err := loadChain(fsys, opts.Dir); err != nil {
		return err
	} else if m != nil {
		return fmt.Errorf("journal: %s already holds a checkpoint ledger", opts.Dir)
	}
	entries := make([]ChainPoint, 0, len(cp.Entries))
	for _, e := range cp.Entries {
		if n := len(entries); n > 0 && e.Seq <= entries[n-1].Seq {
			return fmt.Errorf("journal: checkpoint entries out of order at seq %d", e.Seq)
		}
		if e.Seq <= cp.At.Seq {
			entries = append(entries, e)
		}
	}
	m := &chainManifest{Interval: cp.Interval, Entries: entries, Bases: []ChainPoint{cp.At}}
	if err := writeChain(fsys, opts.Dir, m); err != nil {
		return err
	}
	path := snapshotPath(opts.Dir, cp.At.Seq)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(cp.State); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	return syncDir(fsys, opts.Dir)
}
