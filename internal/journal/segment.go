package journal

import (
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vmalloc/internal/faultfs"
)

// Each record is framed as
//
//	[4B little-endian payload length][4B little-endian CRC32C(payload)][payload]
//
// so a reader can skip records without decoding them and a torn or corrupt
// tail is detected by length/CRC mismatch.
const frameHeader = 8

// maxPayloadBytes caps a single record payload (16 MiB). A frame whose
// declared length exceeds it is treated as corruption, not as a request to
// allocate gigabytes.
const maxPayloadBytes = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the frame for payload to b.
func appendFrame(b, payload []byte) []byte {
	n := uint32(len(payload))
	crc := crc32.Checksum(payload, castagnoli)
	b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	b = append(b, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	return append(b, payload...)
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// scanFrames walks the framed records in data, calling fn with each verified
// payload (aliasing data; fn must not retain it). It returns the length of
// the valid prefix: the byte offset just past the last frame whose length and
// CRC check out and whose payload fn accepted. A non-nil error from fn stops
// the scan and is returned alongside the offset of the frame that failed.
//
// An invalid suffix (short header, declared length past the end, CRC
// mismatch, absurd length) ends the scan with err == nil: distinguishing a
// torn tail from mid-log corruption is the caller's policy, based on whether
// the suffix sits in the last segment. scanFrames itself never panics on
// arbitrary input.
func scanFrames(data []byte, fn func(payload []byte) error) (valid int, err error) {
	off := 0
	for {
		if off+frameHeader > len(data) {
			return off, nil
		}
		n := leU32(data[off:])
		if n > maxPayloadBytes || off+frameHeader+int(n) > len(data) {
			return off, nil
		}
		crc := leU32(data[off+4:])
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off += frameHeader + int(n)
	}
}

// Segment and snapshot file naming: the 20-digit zero-padded decimal keeps
// lexical order equal to numeric order, so sorted directory listings are
// already in log order.
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".json"
)

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix)
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listDir returns the segment base sequences and snapshot sequences present
// in dir, each sorted ascending.
func listDir(fsys faultfs.FS, dir string) (segs, snaps []uint64, err error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, seq)
		} else if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, segmentName(firstSeq))
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, snapshotName(seq))
}
