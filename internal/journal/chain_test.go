package journal

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"vmalloc/internal/faultfs"
)

// jsonSnapshots rejects snapshot bytes that are not valid JSON — the
// validator tests use to force recovery fallback to an older snapshot.
func jsonSnapshots(b []byte) error {
	if !json.Valid(b) {
		return errors.New("snapshot is not JSON")
	}
	return nil
}

// TestChainDeterministic: two journals fed identical records hold identical
// chain heads and identical checkpoint ledgers — the property replication
// comparison rests on.
func TestChainDeterministic(t *testing.T) {
	build := func() *Journal {
		j := openFresh(t, Options{Dir: t.TempDir(), ChainInterval: 4, Fsync: FsyncNone})
		for _, r := range testRecords(21) {
			if err := j.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		return j
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	ha, hb := a.ChainHead(), b.ChainHead()
	if ha != hb {
		t.Fatalf("chain heads diverge:\n a: %+v\n b: %+v", ha, hb)
	}
	if ha.Hash == ([32]byte{}) {
		t.Fatal("chain head is zero after 21 records")
	}
	ea, eb := a.Entries(), b.Entries()
	if len(ea) != 5 { // 4, 8, 12, 16, 20
		t.Fatalf("ledger has %d entries, want 5: %+v", len(ea), ea)
	}
	if MerkleRoot(ea) != MerkleRoot(eb) {
		t.Fatalf("ledger roots diverge:\n a: %+v\n b: %+v", ea, eb)
	}
	if _, diverged := CompareChains(ea, eb); diverged {
		t.Fatal("identical ledgers compare as diverged")
	}
	if ca, cb := a.CommittedHead(), b.CommittedHead(); ca != cb || ca != ha {
		t.Fatalf("committed heads: %+v vs %+v (head %+v)", ca, cb, ha)
	}
}

// TestChainContinuesAcrossRecovery: the chain head after reopen equals the
// head before close — seeded from the snapshot base, extended by replay.
func TestChainContinuesAcrossRecovery(t *testing.T) {
	opts := Options{Dir: t.TempDir(), ChainInterval: 4}
	j := openFresh(t, opts)
	recs := testRecords(20)
	for _, r := range recs[:10] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.WriteSnapshot(j.ChainHead(), []byte(`{"at":10}`)); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[10:] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	want := j.ChainHead()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, j2 := replayAll(t, opts)
	defer j2.Close()
	if info.Replayed != 10 {
		t.Fatalf("replayed %d, want 10: %+v", info.Replayed, info)
	}
	if got := j2.ChainHead(); got != want {
		t.Fatalf("chain head after recovery %+v, want %+v", got, want)
	}
	if got := j2.CommittedHead(); got != want {
		t.Fatalf("committed head after recovery %+v, want %+v", got, want)
	}
}

// chainTamperDir builds a directory where recovery must replay records
// 11..20 under persisted checkpoints: snapshot at 10 and at 20, the newest
// snapshot corrupted so recovery falls back and verifies the ledger over the
// replayed range.
func chainTamperDir(t *testing.T) (opts Options, headAt20 ChainPoint) {
	t.Helper()
	opts = Options{Dir: t.TempDir(), ChainInterval: 4, ValidateSnapshot: jsonSnapshots}
	j := openFresh(t, opts)
	recs := testRecords(20)
	for _, r := range recs[:10] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.WriteSnapshot(j.ChainHead(), []byte(`{"at":10}`)); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[10:] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	headAt20 = j.ChainHead()
	if err := j.WriteSnapshot(headAt20, []byte(`{"at":20}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot: recovery falls back to seq 10 and must
	// replay 11..20 under the ledger persisted by the second checkpoint.
	if err := os.WriteFile(snapshotPath(opts.Dir, 20), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	return opts, headAt20
}

// TestChainVerifiedOnReplay: the fallback replay verifies the persisted
// checkpoints (entries at 12, 16, 20 and the base at 20) and recovers.
func TestChainVerifiedOnReplay(t *testing.T) {
	opts, headAt20 := chainTamperDir(t)
	got, info, j := replayAll(t, opts)
	defer j.Close()
	if info.SnapshotSeq != 10 || info.SkippedSnapshots != 1 || len(got) != 10 {
		t.Fatalf("fallback recovery: %+v, %d records", info, len(got))
	}
	if info.VerifiedChain != 4 {
		t.Fatalf("verified %d checkpoints, want 4 (entries 12,16,20 + base 20)", info.VerifiedChain)
	}
	if j.ChainHead() != headAt20 {
		t.Fatalf("chain head %+v, want %+v", j.ChainHead(), headAt20)
	}
}

// TestChainDetectsCRCValidTampering is the attack the CRC cannot catch: a
// payload byte flipped and the frame CRC recomputed to match. The scanner
// accepts the frame; the chain must not.
func TestChainDetectsCRCValidTampering(t *testing.T) {
	opts, _ := chainTamperDir(t)
	// Find a frame in the replayed range (seq 11..20) whose record decodes
	// after mutation: a SetThreshold record's float byte is safe to flip.
	segs, _, err := listDir(faultfs.OS{}, opts.Dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	path := segmentPath(opts.Dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	var out []byte
	if _, err := scanFrames(data, func(payload []byte) error {
		rec, err := decodePayload(payload)
		if err != nil {
			return err
		}
		if !tampered && rec.Seq > 10 && rec.Op == OpSetThreshold {
			cp := *rec
			cp.Threshold += 1e-9 // the tampered decision still decodes
			forged := encodePayload(nil, &cp)
			for i := 0; i < 8; i++ {
				forged[i] = byte(rec.Seq >> (8 * i))
			}
			if len(forged) != len(payload) {
				t.Fatalf("forged payload %d bytes, original %d", len(forged), len(payload))
			}
			payload = forged
			tampered = true
		}
		out = appendFrame(out, payload) // recomputes the CRC: scanner-clean
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !tampered {
		t.Fatal("no SetThreshold record above seq 10 to tamper with")
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(opts, nil)
	if err == nil || !strings.Contains(err.Error(), "chain mismatch") {
		t.Fatalf("tampered log recovered: err = %v, want chain mismatch", err)
	}
}

// TestChainRefusesTruncatingDurableRecords: a last segment that ends before
// a persisted checkpoint (torn read, tampering-by-truncation) must fail
// recovery without truncating the file — re-reading it intact must succeed.
func TestChainRefusesTruncatingDurableRecords(t *testing.T) {
	opts, _ := chainTamperDir(t)
	segs, _, err := listDir(faultfs.OS{}, opts.Dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	path := segmentPath(opts.Dir, segs[0])
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A short read of the same bytes: the injector shortens the segment
	// read during replay without touching the file.
	inj := faultfs.NewInjector(nil, 11)
	short := opts
	short.FS = inj
	// Reads during open: chain.json, snap-20 (invalid), snap-10, segment.
	inj.ShortReads(3)
	_, _, err = Open(short, nil)
	if err == nil || !strings.Contains(err.Error(), "refusing to truncate") {
		t.Fatalf("short-read recovery: err = %v, want refusal", err)
	}
	if got, _ := os.ReadFile(path); len(got) != len(intact) {
		t.Fatalf("segment truncated from %d to %d bytes by a failed recovery", len(intact), len(got))
	}

	// The same bytes through a clean filesystem still recover.
	j, info, err := Open(opts, nil)
	if err != nil {
		t.Fatalf("intact reopen: %v", err)
	}
	defer j.Close()
	if info.LastSeq != 20 {
		t.Fatalf("LastSeq %d, want 20", info.LastSeq)
	}

	// Genuinely truncating the file below a checkpoint is the same refusal:
	// durable records are gone and recovery must say so, not shrug.
	j.Close()
	if err := os.Truncate(path, int64(len(intact)-1)); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(opts, nil)
	if err == nil || !strings.Contains(err.Error(), "refusing to truncate") {
		t.Fatalf("truncated log recovered: err = %v", err)
	}
}

// TestCompareChainsLocalizesDivergence: two ledgers that fork at a known
// point are reported diverged at the first checkpoint after the fork, and
// pruned prefixes (asymmetric retention) do not count as divergence.
func TestCompareChainsLocalizesDivergence(t *testing.T) {
	mk := func(n int, forkAt uint64) []ChainPoint {
		var pts []ChainPoint
		var h [32]byte
		for i := 1; i <= n; i++ {
			seq := uint64(i * 4)
			payload := []byte{byte(i)}
			if forkAt != 0 && seq >= forkAt {
				payload = []byte{byte(i), 0xFF}
			}
			h = chainNext(h, payload)
			pts = append(pts, ChainPoint{Seq: seq, Hash: h})
		}
		return pts
	}
	honest := mk(16, 0)
	if at, diverged := CompareChains(honest, mk(16, 0)); diverged {
		t.Fatalf("identical ledgers diverged at %+v", at)
	}
	forked := mk(16, 36) // first divergent checkpoint at seq 36
	at, diverged := CompareChains(honest, forked)
	if !diverged || at.Seq != 36 {
		t.Fatalf("divergence at %+v (diverged=%v), want seq 36", at, diverged)
	}
	// One side pruned its prefix: comparison covers the overlap only.
	if at, diverged := CompareChains(honest[8:], mk(16, 0)); diverged {
		t.Fatalf("pruned prefix reported divergence at %+v", at)
	}
	at, diverged = CompareChains(honest[2:], forked)
	if !diverged || at.Seq != 36 {
		t.Fatalf("pruned+forked: divergence at %+v (diverged=%v), want seq 36", at, diverged)
	}
	// Disjoint ranges cannot be compared — not treated as divergence.
	if at, diverged := CompareChains(honest[:4], forked[12:]); diverged {
		t.Fatalf("disjoint ranges diverged at %+v", at)
	}
}

// TestChainPointJSON: hex round-trip and malformed-hash rejection.
func TestChainPointJSON(t *testing.T) {
	p := ChainPoint{Seq: 42}
	for i := range p.Hash {
		p.Hash[i] = byte(i)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got ChainPoint
	if err := json.Unmarshal(data, &got); err != nil || got != p {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	for _, bad := range []string{
		`{"seq":1,"hash":"zz"}`,
		`{"seq":1,"hash":"abcd"}`,
		`{"seq":1,"hash":""}`,
	} {
		if err := json.Unmarshal([]byte(bad), &got); err == nil {
			t.Fatalf("accepted %s", bad)
		}
	}
}
