package journal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"vmalloc/internal/faultfs"
)

// FsyncMode selects the durability of Append.
type FsyncMode int

const (
	// FsyncBatch (the default) fsyncs once per commit batch: every Append
	// returns only after its record is on stable storage, and concurrent
	// appends share one fsync (group commit).
	FsyncBatch FsyncMode = iota
	// FsyncNone writes without syncing; a crash can lose the OS-buffered
	// tail. Useful for replay benchmarks and bulk loads.
	FsyncNone
)

// Options configures a journal directory.
type Options struct {
	// Dir is the journal directory, created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size;
	// <= 0 selects 8 MiB. Rotation happens at batch boundaries, so segments
	// can overshoot by one commit batch.
	SegmentBytes int64
	// Fsync selects the Append durability mode.
	Fsync FsyncMode
	// KeepSnapshots is how many snapshots (and the segments needed to
	// recover from the oldest of them) are retained; <= 0 selects 2.
	// Keeping more than one lets recovery fall back when the newest
	// snapshot file is torn.
	KeepSnapshots int
	// ValidateSnapshot, when non-nil, is applied to snapshot bytes during
	// recovery; a snapshot failing validation is skipped in favor of the
	// next older one. The journal itself treats snapshot state as opaque.
	ValidateSnapshot func([]byte) error
	// FS is the filesystem the journal runs on; nil selects the real OS.
	// Tests thread a faultfs.Injector to prove the durability contract
	// under injected write/fsync/rename faults.
	FS faultfs.FS
	// ChainInterval is how often, in records, the rolling integrity chain
	// is checkpointed (see chain.go); <= 0 selects 512. The interval is
	// sticky per directory: an existing chain.json's interval wins, so
	// replicas of one history always checkpoint at the same seqs.
	ChainInterval int
}

func (o Options) fs() faultfs.FS {
	if o.FS == nil {
		return faultfs.OS{}
	}
	return o.FS
}

func (o Options) chainInterval() uint64 {
	if o.ChainInterval <= 0 {
		return 512
	}
	return uint64(o.ChainInterval)
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 8 << 20
	}
	return o.SegmentBytes
}

func (o Options) keepSnapshots() int {
	if o.KeepSnapshots <= 0 {
		return 2
	}
	return o.KeepSnapshots
}

// RecoveryInfo summarizes what recovery found in a journal directory.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence number covered by the loaded snapshot
	// (0 when the directory held none).
	SnapshotSeq uint64
	// Snapshot is the loaded snapshot state, nil when none was found.
	Snapshot []byte
	// SkippedSnapshots counts newer snapshot files that were unreadable or
	// failed validation and were passed over.
	SkippedSnapshots int
	// Replayed counts the records delivered to the replay callback.
	Replayed int
	// TruncatedBytes is the size of the torn tail cut from the last
	// segment, 0 for a clean shutdown.
	TruncatedBytes int
	// LastSeq is the sequence number of the last durable record (equal to
	// SnapshotSeq when the log held nothing newer).
	LastSeq uint64
	// VerifiedChain counts the chain checkpoints recomputed and matched
	// during replay; 0 for a directory that predates the chain or whose
	// checkpoints all sit at or below the snapshot.
	VerifiedChain int
}

// Recovery is the first phase of opening a journal: the snapshot has been
// located and loaded, the segment plan is known, and the record tail can be
// replayed exactly once before the journal is opened for appending.
type Recovery struct {
	opts     Options
	fs       faultfs.FS
	info     RecoveryInfo
	segs     []uint64
	replayed bool
	lock     *os.File // exclusive directory lock; transferred to the Journal

	// Integrity-chain state: the manifest from chain.json (nil for a
	// legacy directory), the interval in force, the chain head after
	// replay, and the checkpoint ledger carried into the journal.
	manifest *chainManifest
	interval uint64
	head     ChainPoint
	entries  []ChainPoint
}

// Close releases the directory lock when the recovery is abandoned before
// Journal() took ownership of it. Harmless to call otherwise.
func (rc *Recovery) Close() error {
	if rc.lock == nil {
		return nil
	}
	err := rc.lock.Close()
	rc.lock = nil
	return err
}

// DirHasJournal reports whether dir already holds journal state (segments
// or snapshots) — i.e. whether opening it would recover an existing cluster
// rather than bootstrap a fresh one. A missing directory reports false; the
// check does not take the directory lock.
func DirHasJournal(dir string) bool {
	segs, snaps, err := listDir(faultfs.OS{}, dir)
	return err == nil && (len(segs) > 0 || len(snaps) > 0)
}

// Recover locates the newest usable snapshot in opts.Dir (creating the
// directory if needed) and prepares tail replay. Snapshot files that fail to
// read or validate are skipped in favor of older ones.
func Recover(opts Options) (*Recovery, error) {
	if opts.Dir == "" {
		return nil, errors.New("journal: no directory")
	}
	fsys := opts.fs()
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	segs, snaps, err := listDir(fsys, opts.Dir)
	if err != nil {
		if lock != nil {
			lock.Close()
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	rc := &Recovery{opts: opts, fs: fsys, segs: segs, lock: lock}
	if rc.manifest, err = loadChain(fsys, opts.Dir); err != nil {
		rc.Close()
		return nil, err
	}
	rc.interval = opts.chainInterval()
	if rc.manifest != nil {
		rc.interval = rc.manifest.Interval
		rc.entries = rc.manifest.Entries
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := fsys.ReadFile(snapshotPath(opts.Dir, snaps[i]))
		if err == nil && opts.ValidateSnapshot != nil {
			err = opts.ValidateSnapshot(data)
		}
		if err != nil {
			rc.info.SkippedSnapshots++
			continue
		}
		rc.info.SnapshotSeq = snaps[i]
		rc.info.Snapshot = data
		break
	}
	if rc.info.Snapshot == nil && rc.info.SkippedSnapshots > 0 {
		rc.Close()
		return nil, fmt.Errorf("journal: all %d snapshots in %s are unreadable", rc.info.SkippedSnapshots, opts.Dir)
	}
	rc.info.LastSeq = rc.info.SnapshotSeq
	// Seed the chain at the snapshot: records it covers are not replayed,
	// so their chain comes from the persisted base. chain.json is written
	// before its snapshot is renamed into place, so a selected snapshot
	// always has a base — except in a legacy directory (no chain.json),
	// which seeds zero and starts checkpointing from here on.
	rc.head = ChainPoint{Seq: rc.info.SnapshotSeq}
	if rc.manifest != nil && rc.info.SnapshotSeq > 0 {
		base, ok := findPoint(rc.manifest.Bases, rc.info.SnapshotSeq)
		if !ok {
			base, ok = findPoint(rc.manifest.Entries, rc.info.SnapshotSeq)
		}
		if !ok {
			rc.Close()
			return nil, fmt.Errorf("journal: chain.json has no point for snapshot seq %d", rc.info.SnapshotSeq)
		}
		rc.head = base
	}
	return rc, nil
}

// Info returns what recovery has established so far. The snapshot fields are
// valid immediately after Recover; Replayed, TruncatedBytes and LastSeq are
// final only after Replay.
func (rc *Recovery) Info() RecoveryInfo { return rc.info }

// Replay streams every durable record newer than the snapshot to fn, in
// sequence order. A torn final record (crash mid-append) is truncated from
// the last segment and not delivered; any other framing or continuity damage
// is an error, as is a non-nil error from fn. Replay must be called exactly
// once before Journal.
//
// Replay also recomputes the integrity chain from the snapshot's base and
// verifies every persisted checkpoint it crosses: a record whose bytes were
// altered after commit — even with its frame CRC recomputed to match —
// produces a chain mismatch and fails recovery, as does a checkpoint
// claiming a seq the log no longer reaches (durable records removed).
func (rc *Recovery) Replay(fn func(*Record) error) error {
	if rc.replayed {
		return errors.New("journal: Replay called twice")
	}
	rc.replayed = true
	snapSeq := rc.info.SnapshotSeq
	prevSeq := snapSeq // last sequence number seen (or covered by snapshot)
	// Checkpoints above the snapshot are verification targets; interval
	// crossings beyond the last known entry extend the ledger.
	var checks []ChainPoint
	if rc.manifest != nil {
		checks = mergePoints(rc.manifest.Entries, rc.manifest.Bases, snapSeq)
	}
	lastEntry := uint64(0)
	if n := len(rc.entries); n > 0 {
		lastEntry = rc.entries[n-1].Seq
	}
	for i, base := range rc.segs {
		last := i == len(rc.segs)-1
		// Skip segments entirely covered by the snapshot: segment i holds
		// [base_i, base_{i+1}-1].
		if !last && rc.segs[i+1] <= snapSeq+1 {
			continue
		}
		path := segmentPath(rc.opts.Dir, base)
		data, err := rc.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		expect := base
		valid, err := scanFrames(data, func(payload []byte) error {
			rec, err := decodePayload(payload)
			if err != nil {
				return err
			}
			if rec.Seq != expect {
				return fmt.Errorf("journal: %s: record seq %d, want %d", path, rec.Seq, expect)
			}
			expect++
			if rec.Seq <= snapSeq {
				return nil // covered by the snapshot
			}
			if rec.Seq != prevSeq+1 {
				return fmt.Errorf("journal: %s: gap: record seq %d after %d", path, rec.Seq, prevSeq)
			}
			prevSeq = rec.Seq
			rc.head = ChainPoint{Seq: rec.Seq, Hash: chainNext(rc.head.Hash, payload)}
			for len(checks) > 0 && checks[0].Seq == rec.Seq {
				if checks[0].Hash != rc.head.Hash {
					return fmt.Errorf("journal: %s: chain mismatch at seq %d: log bytes do not match the checkpoint ledger (tampered or diverged)", path, rec.Seq)
				}
				rc.info.VerifiedChain++
				checks = checks[1:]
			}
			if rec.Seq%rc.interval == 0 && rec.Seq > lastEntry {
				rc.entries = append(rc.entries, rc.head)
			}
			rc.info.Replayed++
			if fn != nil {
				return fn(rec)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if valid < len(data) {
			if !last {
				return fmt.Errorf("journal: %s: corrupt record at offset %d (not the last segment)", path, valid)
			}
			// A real torn tail (crash mid-append) holds only records that
			// were never barrier-durable, and those can never reach a
			// persisted checkpoint. A tail that stops short of one means
			// the file bytes are lying — a torn read or tampering — and
			// truncating would destroy durable records, so refuse.
			if len(checks) > 0 {
				return fmt.Errorf("journal: %s: tail ends at offset %d before checkpoint seq %d: refusing to truncate durable records (torn read or tampering)", path, valid, checks[0].Seq)
			}
			// Torn tail from a crash mid-append: drop it.
			rc.info.TruncatedBytes = len(data) - valid
			if err := rc.fs.Truncate(path, int64(valid)); err != nil {
				return fmt.Errorf("journal: truncating torn tail: %w", err)
			}
		}
		if expect == base && !last {
			return fmt.Errorf("journal: %s: empty non-final segment", path)
		}
	}
	if len(checks) > 0 {
		// chain.json only records checkpoints for barrier-durable records,
		// so a leftover target means durable records are gone — a torn tail
		// never legitimately reaches them.
		return fmt.Errorf("journal: checkpoint ledger covers seq %d but the log ends at %d: durable records are missing", checks[0].Seq, prevSeq)
	}
	rc.info.LastSeq = prevSeq
	return nil
}

// mergePoints merges two seq-sorted checkpoint lists into the verification
// queue: every point above floor, seq-sorted, duplicates collapsed only when
// identical (a base and an entry at the same seq must agree; keeping both
// would double-verify, keeping a mismatched pair must fail, so both are kept
// and the replay check compares each).
func mergePoints(a, b []ChainPoint, floor uint64) []ChainPoint {
	out := make([]ChainPoint, 0, len(a)+len(b))
	i, k := 0, 0
	for i < len(a) || k < len(b) {
		var p ChainPoint
		switch {
		case i == len(a):
			p, k = b[k], k+1
		case k == len(b):
			p, i = a[i], i+1
		case a[i].Seq <= b[k].Seq:
			p, i = a[i], i+1
		default:
			p, k = b[k], k+1
		}
		if p.Seq > floor {
			out = append(out, p)
		}
	}
	return out
}

// pending is the enqueue-side state handed to the committer in one batch.
// lastSeq/lastChain are the chain head as of the batch's final record, so the
// committer can publish the committed head without hashing anything itself.
type pending struct {
	buf       []byte
	waiters   []chan error
	recs      int
	barrier   bool
	lastSeq   uint64
	lastChain [32]byte
}

// Ticket is a pending durable append; Wait blocks until the record's commit
// batch is on stable storage (or the journal has failed).
type Ticket struct{ ch chan error }

// Wait blocks for the group commit covering this ticket.
func (t *Ticket) Wait() error { return <-t.ch }

// Journal is an open write-ahead log. Enqueue/Append are safe for concurrent
// use; one background committer serializes writes, batching all concurrently
// enqueued records into a single write+fsync (group commit).
type Journal struct {
	opts Options
	fs   faultfs.FS

	mu         sync.Mutex
	seq        uint64 // last assigned sequence number
	pend       pending
	spare      pending // recycled buffers for the next batch
	payloadBuf []byte
	failed     error

	// Integrity chain (under mu): the rolling hash at seq, the interval
	// checkpoint ledger, and the checkpoint spacing in force.
	chain    ChainPoint
	entries  []ChainPoint
	interval uint64

	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	// Committer-owned file state; committedSeq/committedHead are published
	// for lock-free readers (replication streams ship only committed data).
	file          faultfs.File
	fileBase      uint64
	fileSize      int64
	committedSeq  atomic.Uint64
	committedHead atomic.Pointer[ChainPoint]

	lock *os.File // exclusive directory lock, released at Close

	io ioCounters // write-path instrumentation (see IOStats)

	snapMu         sync.Mutex   // serializes WriteSnapshot
	bases          []ChainPoint // snapshot seed points (under snapMu)
	persistedEntry uint64       // newest ledger entry seq written to chain.json (under snapMu)
}

// Journal finishes opening: it positions the append point after the last
// durable record and starts the group-commit committer. Replay must have
// completed first.
func (rc *Recovery) Journal() (*Journal, error) {
	if !rc.replayed {
		return nil, errors.New("journal: Journal before Replay")
	}
	j := &Journal{
		opts:     rc.opts,
		fs:       rc.fs,
		seq:      rc.info.LastSeq,
		chain:    rc.head,
		entries:  rc.entries,
		interval: rc.interval,
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		lock:     rc.lock,
	}
	if rc.manifest != nil {
		j.bases = rc.manifest.Bases
	}
	j.committedSeq.Store(rc.info.LastSeq)
	head := rc.head
	j.committedHead.Store(&head)
	rc.lock = nil // the journal now owns the directory lock
	fail := func(err error) (*Journal, error) {
		if j.lock != nil {
			j.lock.Close()
		}
		return nil, err
	}
	if n := len(rc.segs); n > 0 {
		base := rc.segs[n-1]
		f, err := j.fs.OpenFile(segmentPath(rc.opts.Dir, base), os.O_WRONLY, 0)
		if err != nil {
			return fail(fmt.Errorf("journal: %w", err))
		}
		size, err := f.Seek(0, 2)
		if err != nil {
			f.Close()
			return fail(fmt.Errorf("journal: %w", err))
		}
		j.file, j.fileBase, j.fileSize = f, base, size
	} else {
		if err := j.openSegment(rc.info.LastSeq + 1); err != nil {
			return fail(err)
		}
	}
	go j.run()
	return j, nil
}

// Open is the convenience one-shot: Recover, Replay(fn), Journal.
func Open(opts Options, fn func(*Record) error) (*Journal, RecoveryInfo, error) {
	rc, err := Recover(opts)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	if err := rc.Replay(fn); err != nil {
		rc.Close()
		return nil, rc.info, err
	}
	j, err := rc.Journal()
	if err != nil {
		rc.Close()
		return nil, rc.info, err
	}
	return j, rc.info, nil
}

// LastSeq returns the sequence number of the last enqueued record.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// ChainHead returns the integrity chain at the last enqueued record. Callers
// that pair state with its chain point capture both under their own state
// lock, exactly as with LastSeq.
func (j *Journal) ChainHead() ChainPoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.chain
}

// CommittedSeq returns the sequence number of the last durably committed
// record: everything at or below it is fsynced (or handed to the OS under
// FsyncNone) and safe to stream to a replica.
func (j *Journal) CommittedSeq() uint64 { return j.committedSeq.Load() }

// CommittedHead returns the integrity chain at CommittedSeq — the acked
// high-water mark a promotion check compares against.
func (j *Journal) CommittedHead() ChainPoint { return *j.committedHead.Load() }

// Interval returns the checkpoint spacing in force for this directory.
func (j *Journal) Interval() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.interval
}

// Entries returns the committed checkpoint ledger: the chain at every
// interval multiple up to CommittedSeq. Replicas of the same history return
// pointwise-equal ledgers over their common range (see CompareChains).
func (j *Journal) Entries() []ChainPoint {
	committed := j.committedSeq.Load()
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for n < len(j.entries) && j.entries[n].Seq <= committed {
		n++
	}
	out := make([]ChainPoint, n)
	copy(out, j.entries[:n])
	return out
}

// advanceChain extends the integrity chain over one just-assigned payload.
// Called under mu with j.seq already advanced and the seq prefix patched in.
func (j *Journal) advanceChain(payload []byte) {
	j.chain = ChainPoint{Seq: j.seq, Hash: chainNext(j.chain.Hash, payload)}
	if j.seq%j.interval == 0 {
		j.entries = append(j.entries, j.chain)
	}
	j.pend.lastSeq, j.pend.lastChain = j.seq, j.chain.Hash
}

// Err returns the sticky write failure, if any. A failed journal rejects all
// further appends: the in-memory state it was logging is now ahead of the
// log, so the owner must stop accepting mutations.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Enqueue assigns the next sequence number to r, encodes it and queues it for
// the committer. The returned ticket resolves when the record's batch is
// durable. Enqueue order equals sequence order, so callers that must keep
// the log faithful to application order enqueue while holding their own
// state lock and Wait after releasing it.
func (j *Journal) Enqueue(r *Record) *Ticket {
	ch := make(chan error, 1)
	j.mu.Lock()
	if j.failed != nil {
		err := j.failed
		j.mu.Unlock()
		ch <- err
		return &Ticket{ch}
	}
	j.payloadBuf = encodePayload(j.payloadBuf[:0], r)
	// Enforce the frame limit on the write path too: an overlong record
	// would be acknowledged now and rejected as corruption by the scanner
	// at recovery.
	if len(j.payloadBuf) > maxPayloadBytes {
		err := fmt.Errorf("journal: %s record payload %d bytes exceeds frame limit %d",
			r.Op, len(j.payloadBuf), maxPayloadBytes)
		j.mu.Unlock()
		ch <- err
		return &Ticket{ch}
	}
	j.seq++
	r.Seq = j.seq
	// The sequence number is the fixed 8-byte payload prefix: patch it in
	// place now that the record is known to fit (assigning before the size
	// check would burn a seq on rejection and break replay continuity).
	for i := 0; i < 8; i++ {
		j.payloadBuf[i] = byte(j.seq >> (8 * i))
	}
	j.pend.buf = appendFrame(j.pend.buf, j.payloadBuf)
	j.advanceChain(j.payloadBuf)
	j.pend.waiters = append(j.pend.waiters, ch)
	j.pend.recs++
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return &Ticket{ch}
}

// Append durably writes r (group-committed with concurrent appends) and
// fills in r.Seq.
func (j *Journal) Append(r *Record) error { return j.Enqueue(r).Wait() }

// Barrier returns a ticket that resolves once everything enqueued before it
// is durable (forcing an fsync even under FsyncNone).
func (j *Journal) Barrier() *Ticket {
	ch := make(chan error, 1)
	j.mu.Lock()
	if j.failed != nil {
		err := j.failed
		j.mu.Unlock()
		ch <- err
		return &Ticket{ch}
	}
	j.pend.waiters = append(j.pend.waiters, ch)
	j.pend.barrier = true
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return &Ticket{ch}
}

// Close flushes pending appends, stops the committer and closes the active
// segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	select {
	case <-j.quit:
		j.mu.Unlock()
		<-j.done
		return nil
	default:
		close(j.quit)
	}
	j.mu.Unlock()
	<-j.done
	// Reject and drain anything enqueued after the final flush.
	j.mu.Lock()
	if j.failed == nil {
		j.failed = errClosed
	}
	late := j.pend.waiters
	j.pend.waiters = nil
	err := j.failed
	j.mu.Unlock()
	for _, ch := range late {
		ch <- errClosed
	}
	if j.file != nil {
		if cerr := j.file.Close(); cerr != nil && err == errClosed {
			err = cerr
		}
		j.file = nil
	}
	if j.lock != nil {
		j.lock.Close()
		j.lock = nil
	}
	if err == errClosed {
		return nil
	}
	return err
}

var errClosed = errors.New("journal: closed")

func (j *Journal) run() {
	defer close(j.done)
	for {
		select {
		case <-j.kick:
			j.flush()
		case <-j.quit:
			j.flush()
			return
		}
	}
}

// flush swaps out the pending batch and commits it: one write, one fsync,
// then every waiter is released. Buffers are recycled batch to batch.
//
// A write or fsync failure is terminal for the whole journal, not just the
// batch: a partial write may have advanced the file offset past garbage
// bytes, so committing anything after it could land acknowledged records
// beyond a torn frame — recovery would then truncate them silently. The
// sticky failure is therefore set *before* any waiter learns of it, and
// commit refuses to run once it is set.
func (j *Journal) flush() {
	j.mu.Lock()
	batch := j.pend
	j.pend = pending{buf: j.spare.buf[:0], waiters: j.spare.waiters[:0]}
	failed := j.failed
	j.mu.Unlock()
	if len(batch.waiters) == 0 && len(batch.buf) == 0 {
		j.spare = batch
		return
	}
	err := failed
	if err == nil {
		if err = j.commit(&batch); err != nil {
			j.mu.Lock()
			if j.failed == nil {
				j.failed = err
			}
			j.mu.Unlock()
		}
	}
	for _, ch := range batch.waiters {
		ch <- err
	}
	batch.waiters = batch.waiters[:0]
	batch.recs, batch.barrier, batch.lastSeq = 0, false, 0
	j.spare = batch
}

// commit writes one batch to the active segment, rotating first when the
// segment is full, and syncs according to the fsync mode (a barrier forces
// the sync).
func (j *Journal) commit(b *pending) error {
	if len(b.buf) > 0 && j.fileSize >= j.opts.segmentBytes() {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	if len(b.buf) > 0 {
		if _, err := j.file.Write(b.buf); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.fileSize += int64(len(b.buf))
	}
	synced := j.opts.Fsync == FsyncBatch || b.barrier
	if synced {
		if err := j.file.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	j.io.noteBatch(b.recs, synced)
	if b.recs > 0 {
		j.committedSeq.Store(b.lastSeq)
		head := ChainPoint{Seq: b.lastSeq, Hash: b.lastChain}
		j.committedHead.Store(&head)
	}
	return nil
}

// rotate syncs and closes the active segment and starts a fresh one whose
// first record is the next sequence number.
func (j *Journal) rotate() error {
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.file.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.file = nil
	j.io.rotations.Add(1)
	return j.openSegment(j.committedSeq.Load() + 1)
}

func (j *Journal) openSegment(firstSeq uint64) error {
	f, err := j.fs.OpenFile(segmentPath(j.opts.Dir, firstSeq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.fs, j.opts.Dir); err != nil {
		f.Close()
		return err
	}
	j.file, j.fileBase, j.fileSize = f, firstSeq, 0
	return nil
}

// WriteSnapshot durably records state as covering every record with sequence
// number <= at.Seq, then applies the retention policy: old snapshots beyond
// KeepSnapshots are deleted, along with every segment entirely below the
// oldest kept snapshot. The chain point pairs the state with its integrity
// hash — callers capture it with ChainHead under the same lock that captured
// the state. The checkpoint ledger (chain.json) is written before the
// snapshot is renamed into place, so a snapshot recovery can select always
// has its chain base. Safe to call concurrently with appends; concurrent
// WriteSnapshot calls serialize.
func (j *Journal) WriteSnapshot(at ChainPoint, state []byte) error {
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	// Make sure every record the snapshot claims to cover is durable.
	if err := j.Barrier().Wait(); err != nil {
		return err
	}
	committed := j.committedSeq.Load()
	if at.Seq > committed {
		return fmt.Errorf("journal: snapshot at seq %d beyond committed %d", at.Seq, committed)
	}
	// Persist the ledger first: only checkpoints for barrier-durable
	// records, plus the new base.
	j.mu.Lock()
	entries := make([]ChainPoint, 0, len(j.entries))
	for _, e := range j.entries {
		if e.Seq <= committed {
			entries = append(entries, e)
		}
	}
	interval := j.interval
	j.mu.Unlock()
	bases := addPoint(j.bases, at)
	if err := writeChain(j.fs, j.opts.Dir, &chainManifest{Interval: interval, Entries: entries, Bases: bases}); err != nil {
		return err
	}
	j.bases = bases
	path := snapshotPath(j.opts.Dir, at.Seq)
	tmp := path + ".tmp"
	f, err := j.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(state); err != nil {
		f.Close()
		j.fs.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		j.fs.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		j.fs.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.fs.Rename(tmp, path); err != nil {
		j.fs.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.fs, j.opts.Dir); err != nil {
		return err
	}
	return j.prune()
}

// PersistChain durably rewrites the checkpoint ledger (chain.json) with
// every chain entry covering committed records, without cutting a snapshot.
// A replication follower calls it as it applies streamed batches: snapshot
// cadence stays the leader's job, but the follower's persisted ledger keeps
// pace with its WAL — so recovery (and therefore promotion) re-verifies the
// whole replicated history and refuses a tampered or truncated log. No-op
// when the persisted ledger is already current.
func (j *Journal) PersistChain() error {
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	committed := j.committedSeq.Load()
	j.mu.Lock()
	entries := make([]ChainPoint, 0, len(j.entries))
	for _, e := range j.entries {
		if e.Seq <= committed {
			entries = append(entries, e)
		}
	}
	interval := j.interval
	j.mu.Unlock()
	if n := len(entries); n == 0 || entries[n-1].Seq <= j.persistedEntry {
		return nil
	}
	if err := writeChain(j.fs, j.opts.Dir, &chainManifest{Interval: interval, Entries: entries, Bases: j.bases}); err != nil {
		return err
	}
	j.persistedEntry = entries[len(entries)-1].Seq
	return nil
}

// addPoint inserts p into a seq-sorted list, replacing an existing point at
// the same seq (a re-checkpoint at an unchanged seq is idempotent).
func addPoint(pts []ChainPoint, p ChainPoint) []ChainPoint {
	out := make([]ChainPoint, 0, len(pts)+1)
	inserted := false
	for _, q := range pts {
		if q.Seq == p.Seq {
			continue
		}
		if !inserted && q.Seq > p.Seq {
			out = append(out, p)
			inserted = true
		}
		out = append(out, q)
	}
	if !inserted {
		out = append(out, p)
	}
	return out
}

// prune deletes snapshots beyond the retention count and segments entirely
// covered by the oldest kept snapshot, then drops ledger points below the
// oldest kept snapshot (the rolling chain makes recent checkpoints
// sufficient: divergence anywhere in history changes every later hash).
// Best-effort: a crash between snapshot and prune just leaves extra files
// for the next prune. Called under snapMu.
func (j *Journal) prune() error {
	segs, snaps, err := listDir(j.fs, j.opts.Dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	keep := j.opts.keepSnapshots()
	if len(snaps) <= keep {
		keep = len(snaps)
	}
	for _, seq := range snaps[:len(snaps)-keep] {
		if err := j.fs.Remove(snapshotPath(j.opts.Dir, seq)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("journal: %w", err)
		}
	}
	if keep == 0 {
		return nil
	}
	pruneSeq := snaps[len(snaps)-keep] // oldest kept snapshot
	// Segment i covers [segs[i], segs[i+1]-1]; it is disposable when its
	// whole range is <= pruneSeq. The last (active) segment always stays.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= pruneSeq+1 {
			if err := j.fs.Remove(segmentPath(j.opts.Dir, segs[i])); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("journal: %w", err)
			}
		}
	}
	// Trim the ledger to what the retained log can still verify or a
	// replica could still compare.
	cut := func(pts []ChainPoint) ([]ChainPoint, bool) {
		i := 0
		for i < len(pts) && pts[i].Seq < pruneSeq {
			i++
		}
		return pts[i:], i > 0
	}
	j.mu.Lock()
	entries, dropped := cut(j.entries)
	j.entries = entries
	entriesCopy := make([]ChainPoint, len(entries))
	copy(entriesCopy, entries)
	committed := j.committedSeq.Load()
	n := 0
	for n < len(entriesCopy) && entriesCopy[n].Seq <= committed {
		n++
	}
	interval := j.interval
	j.mu.Unlock()
	bases, droppedBases := cut(j.bases)
	if dropped || droppedBases {
		j.bases = bases
		if err := writeChain(j.fs, j.opts.Dir, &chainManifest{Interval: interval, Entries: entriesCopy[:n], Bases: bases}); err != nil {
			return err
		}
	}
	return nil
}

// SyncDir fsyncs a directory on the real filesystem so file creation,
// rename and truncation inside it are durable. It is the sanctioned
// directory-fsync entry point for packages outside the journal: the
// syncorder analyzer confines raw fsync calls to internal/journal, so
// callers that need a durable directory (e.g. manifest writers) route
// through this helper instead of opening the directory themselves.
func SyncDir(dir string) error {
	return syncDir(faultfs.OS{}, dir)
}

// syncDir fsyncs a directory so entry creation/rename/truncation is durable.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
