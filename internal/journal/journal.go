package journal

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// FsyncMode selects the durability of Append.
type FsyncMode int

const (
	// FsyncBatch (the default) fsyncs once per commit batch: every Append
	// returns only after its record is on stable storage, and concurrent
	// appends share one fsync (group commit).
	FsyncBatch FsyncMode = iota
	// FsyncNone writes without syncing; a crash can lose the OS-buffered
	// tail. Useful for replay benchmarks and bulk loads.
	FsyncNone
)

// Options configures a journal directory.
type Options struct {
	// Dir is the journal directory, created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size;
	// <= 0 selects 8 MiB. Rotation happens at batch boundaries, so segments
	// can overshoot by one commit batch.
	SegmentBytes int64
	// Fsync selects the Append durability mode.
	Fsync FsyncMode
	// KeepSnapshots is how many snapshots (and the segments needed to
	// recover from the oldest of them) are retained; <= 0 selects 2.
	// Keeping more than one lets recovery fall back when the newest
	// snapshot file is torn.
	KeepSnapshots int
	// ValidateSnapshot, when non-nil, is applied to snapshot bytes during
	// recovery; a snapshot failing validation is skipped in favor of the
	// next older one. The journal itself treats snapshot state as opaque.
	ValidateSnapshot func([]byte) error
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 8 << 20
	}
	return o.SegmentBytes
}

func (o Options) keepSnapshots() int {
	if o.KeepSnapshots <= 0 {
		return 2
	}
	return o.KeepSnapshots
}

// RecoveryInfo summarizes what recovery found in a journal directory.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence number covered by the loaded snapshot
	// (0 when the directory held none).
	SnapshotSeq uint64
	// Snapshot is the loaded snapshot state, nil when none was found.
	Snapshot []byte
	// SkippedSnapshots counts newer snapshot files that were unreadable or
	// failed validation and were passed over.
	SkippedSnapshots int
	// Replayed counts the records delivered to the replay callback.
	Replayed int
	// TruncatedBytes is the size of the torn tail cut from the last
	// segment, 0 for a clean shutdown.
	TruncatedBytes int
	// LastSeq is the sequence number of the last durable record (equal to
	// SnapshotSeq when the log held nothing newer).
	LastSeq uint64
}

// Recovery is the first phase of opening a journal: the snapshot has been
// located and loaded, the segment plan is known, and the record tail can be
// replayed exactly once before the journal is opened for appending.
type Recovery struct {
	opts     Options
	info     RecoveryInfo
	segs     []uint64
	replayed bool
	lock     *os.File // exclusive directory lock; transferred to the Journal
}

// Close releases the directory lock when the recovery is abandoned before
// Journal() took ownership of it. Harmless to call otherwise.
func (rc *Recovery) Close() error {
	if rc.lock == nil {
		return nil
	}
	err := rc.lock.Close()
	rc.lock = nil
	return err
}

// DirHasJournal reports whether dir already holds journal state (segments
// or snapshots) — i.e. whether opening it would recover an existing cluster
// rather than bootstrap a fresh one. A missing directory reports false; the
// check does not take the directory lock.
func DirHasJournal(dir string) bool {
	segs, snaps, err := listDir(dir)
	return err == nil && (len(segs) > 0 || len(snaps) > 0)
}

// Recover locates the newest usable snapshot in opts.Dir (creating the
// directory if needed) and prepares tail replay. Snapshot files that fail to
// read or validate are skipped in favor of older ones.
func Recover(opts Options) (*Recovery, error) {
	if opts.Dir == "" {
		return nil, errors.New("journal: no directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	segs, snaps, err := listDir(opts.Dir)
	if err != nil {
		if lock != nil {
			lock.Close()
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	rc := &Recovery{opts: opts, segs: segs, lock: lock}
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(snapshotPath(opts.Dir, snaps[i]))
		if err == nil && opts.ValidateSnapshot != nil {
			err = opts.ValidateSnapshot(data)
		}
		if err != nil {
			rc.info.SkippedSnapshots++
			continue
		}
		rc.info.SnapshotSeq = snaps[i]
		rc.info.Snapshot = data
		break
	}
	if rc.info.Snapshot == nil && rc.info.SkippedSnapshots > 0 {
		rc.Close()
		return nil, fmt.Errorf("journal: all %d snapshots in %s are unreadable", rc.info.SkippedSnapshots, opts.Dir)
	}
	rc.info.LastSeq = rc.info.SnapshotSeq
	return rc, nil
}

// Info returns what recovery has established so far. The snapshot fields are
// valid immediately after Recover; Replayed, TruncatedBytes and LastSeq are
// final only after Replay.
func (rc *Recovery) Info() RecoveryInfo { return rc.info }

// Replay streams every durable record newer than the snapshot to fn, in
// sequence order. A torn final record (crash mid-append) is truncated from
// the last segment and not delivered; any other framing or continuity damage
// is an error, as is a non-nil error from fn. Replay must be called exactly
// once before Journal.
func (rc *Recovery) Replay(fn func(*Record) error) error {
	if rc.replayed {
		return errors.New("journal: Replay called twice")
	}
	rc.replayed = true
	snapSeq := rc.info.SnapshotSeq
	prevSeq := snapSeq // last sequence number seen (or covered by snapshot)
	for i, base := range rc.segs {
		last := i == len(rc.segs)-1
		// Skip segments entirely covered by the snapshot: segment i holds
		// [base_i, base_{i+1}-1].
		if !last && rc.segs[i+1] <= snapSeq+1 {
			continue
		}
		path := segmentPath(rc.opts.Dir, base)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		expect := base
		valid, err := scanFrames(data, func(payload []byte) error {
			rec, err := decodePayload(payload)
			if err != nil {
				return err
			}
			if rec.Seq != expect {
				return fmt.Errorf("journal: %s: record seq %d, want %d", path, rec.Seq, expect)
			}
			expect++
			if rec.Seq <= snapSeq {
				return nil // covered by the snapshot
			}
			if rec.Seq != prevSeq+1 {
				return fmt.Errorf("journal: %s: gap: record seq %d after %d", path, rec.Seq, prevSeq)
			}
			prevSeq = rec.Seq
			rc.info.Replayed++
			if fn != nil {
				return fn(rec)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if valid < len(data) {
			if !last {
				return fmt.Errorf("journal: %s: corrupt record at offset %d (not the last segment)", path, valid)
			}
			// Torn tail from a crash mid-append: drop it.
			rc.info.TruncatedBytes = len(data) - valid
			if err := os.Truncate(path, int64(valid)); err != nil {
				return fmt.Errorf("journal: truncating torn tail: %w", err)
			}
		}
		if expect == base && !last {
			return fmt.Errorf("journal: %s: empty non-final segment", path)
		}
	}
	rc.info.LastSeq = prevSeq
	return nil
}

// pending is the enqueue-side state handed to the committer in one batch.
type pending struct {
	buf     []byte
	waiters []chan error
	recs    int
	barrier bool
}

// Ticket is a pending durable append; Wait blocks until the record's commit
// batch is on stable storage (or the journal has failed).
type Ticket struct{ ch chan error }

// Wait blocks for the group commit covering this ticket.
func (t *Ticket) Wait() error { return <-t.ch }

// Journal is an open write-ahead log. Enqueue/Append are safe for concurrent
// use; one background committer serializes writes, batching all concurrently
// enqueued records into a single write+fsync (group commit).
type Journal struct {
	opts Options

	mu         sync.Mutex
	seq        uint64 // last assigned sequence number
	pend       pending
	spare      pending // recycled buffers for the next batch
	payloadBuf []byte
	failed     error

	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	// Committer-owned state.
	file         *os.File
	fileBase     uint64
	fileSize     int64
	committedSeq uint64

	lock *os.File // exclusive directory lock, released at Close

	io ioCounters // write-path instrumentation (see IOStats)

	snapMu sync.Mutex // serializes WriteSnapshot
}

// Journal finishes opening: it positions the append point after the last
// durable record and starts the group-commit committer. Replay must have
// completed first.
func (rc *Recovery) Journal() (*Journal, error) {
	if !rc.replayed {
		return nil, errors.New("journal: Journal before Replay")
	}
	j := &Journal{
		opts:         rc.opts,
		seq:          rc.info.LastSeq,
		committedSeq: rc.info.LastSeq,
		kick:         make(chan struct{}, 1),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		lock:         rc.lock,
	}
	rc.lock = nil // the journal now owns the directory lock
	fail := func(err error) (*Journal, error) {
		if j.lock != nil {
			j.lock.Close()
		}
		return nil, err
	}
	if n := len(rc.segs); n > 0 {
		base := rc.segs[n-1]
		f, err := os.OpenFile(segmentPath(rc.opts.Dir, base), os.O_WRONLY, 0)
		if err != nil {
			return fail(fmt.Errorf("journal: %w", err))
		}
		size, err := f.Seek(0, 2)
		if err != nil {
			f.Close()
			return fail(fmt.Errorf("journal: %w", err))
		}
		j.file, j.fileBase, j.fileSize = f, base, size
	} else {
		if err := j.openSegment(rc.info.LastSeq + 1); err != nil {
			return fail(err)
		}
	}
	go j.run()
	return j, nil
}

// Open is the convenience one-shot: Recover, Replay(fn), Journal.
func Open(opts Options, fn func(*Record) error) (*Journal, RecoveryInfo, error) {
	rc, err := Recover(opts)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	if err := rc.Replay(fn); err != nil {
		rc.Close()
		return nil, rc.info, err
	}
	j, err := rc.Journal()
	if err != nil {
		rc.Close()
		return nil, rc.info, err
	}
	return j, rc.info, nil
}

// LastSeq returns the sequence number of the last enqueued record.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Err returns the sticky write failure, if any. A failed journal rejects all
// further appends: the in-memory state it was logging is now ahead of the
// log, so the owner must stop accepting mutations.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Enqueue assigns the next sequence number to r, encodes it and queues it for
// the committer. The returned ticket resolves when the record's batch is
// durable. Enqueue order equals sequence order, so callers that must keep
// the log faithful to application order enqueue while holding their own
// state lock and Wait after releasing it.
func (j *Journal) Enqueue(r *Record) *Ticket {
	ch := make(chan error, 1)
	j.mu.Lock()
	if j.failed != nil {
		err := j.failed
		j.mu.Unlock()
		ch <- err
		return &Ticket{ch}
	}
	j.payloadBuf = encodePayload(j.payloadBuf[:0], r)
	// Enforce the frame limit on the write path too: an overlong record
	// would be acknowledged now and rejected as corruption by the scanner
	// at recovery.
	if len(j.payloadBuf) > maxPayloadBytes {
		err := fmt.Errorf("journal: %s record payload %d bytes exceeds frame limit %d",
			r.Op, len(j.payloadBuf), maxPayloadBytes)
		j.mu.Unlock()
		ch <- err
		return &Ticket{ch}
	}
	j.seq++
	r.Seq = j.seq
	// The sequence number is the fixed 8-byte payload prefix: patch it in
	// place now that the record is known to fit (assigning before the size
	// check would burn a seq on rejection and break replay continuity).
	for i := 0; i < 8; i++ {
		j.payloadBuf[i] = byte(j.seq >> (8 * i))
	}
	j.pend.buf = appendFrame(j.pend.buf, j.payloadBuf)
	j.pend.waiters = append(j.pend.waiters, ch)
	j.pend.recs++
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return &Ticket{ch}
}

// Append durably writes r (group-committed with concurrent appends) and
// fills in r.Seq.
func (j *Journal) Append(r *Record) error { return j.Enqueue(r).Wait() }

// Barrier returns a ticket that resolves once everything enqueued before it
// is durable (forcing an fsync even under FsyncNone).
func (j *Journal) Barrier() *Ticket {
	ch := make(chan error, 1)
	j.mu.Lock()
	if j.failed != nil {
		err := j.failed
		j.mu.Unlock()
		ch <- err
		return &Ticket{ch}
	}
	j.pend.waiters = append(j.pend.waiters, ch)
	j.pend.barrier = true
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return &Ticket{ch}
}

// Close flushes pending appends, stops the committer and closes the active
// segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	select {
	case <-j.quit:
		j.mu.Unlock()
		<-j.done
		return nil
	default:
		close(j.quit)
	}
	j.mu.Unlock()
	<-j.done
	// Reject and drain anything enqueued after the final flush.
	j.mu.Lock()
	if j.failed == nil {
		j.failed = errClosed
	}
	late := j.pend.waiters
	j.pend.waiters = nil
	err := j.failed
	j.mu.Unlock()
	for _, ch := range late {
		ch <- errClosed
	}
	if j.file != nil {
		if cerr := j.file.Close(); cerr != nil && err == errClosed {
			err = cerr
		}
		j.file = nil
	}
	if j.lock != nil {
		j.lock.Close()
		j.lock = nil
	}
	if err == errClosed {
		return nil
	}
	return err
}

var errClosed = errors.New("journal: closed")

func (j *Journal) run() {
	defer close(j.done)
	for {
		select {
		case <-j.kick:
			j.flush()
		case <-j.quit:
			j.flush()
			return
		}
	}
}

// flush swaps out the pending batch and commits it: one write, one fsync,
// then every waiter is released. Buffers are recycled batch to batch.
//
// A write or fsync failure is terminal for the whole journal, not just the
// batch: a partial write may have advanced the file offset past garbage
// bytes, so committing anything after it could land acknowledged records
// beyond a torn frame — recovery would then truncate them silently. The
// sticky failure is therefore set *before* any waiter learns of it, and
// commit refuses to run once it is set.
func (j *Journal) flush() {
	j.mu.Lock()
	batch := j.pend
	j.pend = pending{buf: j.spare.buf[:0], waiters: j.spare.waiters[:0]}
	failed := j.failed
	j.mu.Unlock()
	if len(batch.waiters) == 0 && len(batch.buf) == 0 {
		j.spare = batch
		return
	}
	err := failed
	if err == nil {
		if err = j.commit(&batch); err != nil {
			j.mu.Lock()
			if j.failed == nil {
				j.failed = err
			}
			j.mu.Unlock()
		}
	}
	for _, ch := range batch.waiters {
		ch <- err
	}
	batch.waiters = batch.waiters[:0]
	batch.recs, batch.barrier = 0, false
	j.spare = batch
}

// commit writes one batch to the active segment, rotating first when the
// segment is full, and syncs according to the fsync mode (a barrier forces
// the sync).
func (j *Journal) commit(b *pending) error {
	if len(b.buf) > 0 && j.fileSize >= j.opts.segmentBytes() {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	if len(b.buf) > 0 {
		if _, err := j.file.Write(b.buf); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.fileSize += int64(len(b.buf))
	}
	synced := j.opts.Fsync == FsyncBatch || b.barrier
	if synced {
		if err := j.file.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	j.io.noteBatch(b.recs, synced)
	j.committedSeq += uint64(b.recs)
	return nil
}

// rotate syncs and closes the active segment and starts a fresh one whose
// first record is the next sequence number.
func (j *Journal) rotate() error {
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.file.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.file = nil
	j.io.rotations.Add(1)
	return j.openSegment(j.committedSeq + 1)
}

func (j *Journal) openSegment(firstSeq uint64) error {
	f, err := os.OpenFile(segmentPath(j.opts.Dir, firstSeq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.opts.Dir); err != nil {
		f.Close()
		return err
	}
	j.file, j.fileBase, j.fileSize = f, firstSeq, 0
	return nil
}

// WriteSnapshot durably records state as covering every record with sequence
// number <= seq, then applies the retention policy: old snapshots beyond
// KeepSnapshots are deleted, along with every segment entirely below the
// oldest kept snapshot. Safe to call concurrently with appends; concurrent
// WriteSnapshot calls serialize.
func (j *Journal) WriteSnapshot(seq uint64, state []byte) error {
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	// Make sure every record the snapshot claims to cover is durable.
	if err := j.Barrier().Wait(); err != nil {
		return err
	}
	path := snapshotPath(j.opts.Dir, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(state); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.opts.Dir); err != nil {
		return err
	}
	return j.prune()
}

// prune deletes snapshots beyond the retention count and segments entirely
// covered by the oldest kept snapshot. Best-effort: a crash between snapshot
// and prune just leaves extra files for the next prune.
func (j *Journal) prune() error {
	segs, snaps, err := listDir(j.opts.Dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	keep := j.opts.keepSnapshots()
	if len(snaps) <= keep {
		keep = len(snaps)
	}
	for _, seq := range snaps[:len(snaps)-keep] {
		if err := os.Remove(snapshotPath(j.opts.Dir, seq)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("journal: %w", err)
		}
	}
	if keep == 0 {
		return nil
	}
	pruneSeq := snaps[len(snaps)-keep] // oldest kept snapshot
	// Segment i covers [segs[i], segs[i+1]-1]; it is disposable when its
	// whole range is <= pruneSeq. The last (active) segment always stays.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= pruneSeq+1 {
			if err := os.Remove(segmentPath(j.opts.Dir, segs[i])); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("journal: %w", err)
			}
		}
	}
	return nil
}

// syncDir fsyncs a directory so entry creation/rename/truncation is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
