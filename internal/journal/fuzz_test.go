package journal

import (
	"bytes"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// seedFrames builds a small valid log image used to seed both fuzzers.
func seedFrames() []byte {
	var buf []byte
	for i, r := range testRecords(5) {
		r.Seq = uint64(i + 1)
		buf = appendFrame(buf, encodePayload(nil, r))
	}
	return buf
}

// FuzzScanFrames feeds arbitrary bytes to the segment scanner. The scanner
// must never panic, must never report a valid prefix longer than the input,
// and every payload it accepts must decode or fail cleanly. This is the
// recovery path for corrupt and truncated WAL tails, so "never panic" is the
// contract that keeps a damaged disk from taking the daemon down.
func FuzzScanFrames(f *testing.F) {
	valid := seedFrames()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                        // torn final record
	f.Add(append(append([]byte{}, valid...), 0xff, 0)) // garbage tail
	f.Add([]byte{})                                    // empty segment
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})  // absurd length
	f.Add(bytes.Repeat([]byte{0}, 64))                 // zero frames
	f.Add(appendFrame(nil, nil))                       // empty payload frame
	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		valid, err := scanFrames(data, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("scan callback returned no error but scanFrames did: %v", err)
		}
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		// Accepted payloads must decode without panicking (errors are fine:
		// the CRC guards integrity, not semantics).
		for _, p := range payloads {
			_, _ = decodePayload(p)
		}
		// Re-scanning the valid prefix must accept exactly the same frames.
		n := 0
		revalid, _ := scanFrames(data[:valid], func(p []byte) error { n++; return nil })
		if revalid != valid || n != len(payloads) {
			t.Fatalf("re-scan of valid prefix: %d/%d frames, %d/%d bytes",
				n, len(payloads), revalid, valid)
		}
	})
}

// FuzzDecodeRecord feeds arbitrary payloads to the record decoder: it must
// never panic and never allocate absurdly, and every record it accepts must
// reach a codec fixed point after one re-encode (the encoder is canonical
// even when the accepted input used non-minimal varints).
func FuzzDecodeRecord(f *testing.F) {
	for i, r := range testRecords(5) {
		r.Seq = uint64(i + 1)
		f.Add(encodePayload(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 99})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodePayload(payload)
		if err != nil {
			return
		}
		canon := encodePayload(nil, rec)
		rec2, err := decodePayload(canon)
		if err != nil {
			t.Fatalf("canonical re-encode no longer decodes: %v (payload %x)", err, canon)
		}
		if again := encodePayload(nil, rec2); !bytes.Equal(again, canon) {
			t.Fatalf("encoder not a fixed point:\n one %x\n two %x", canon, again)
		}
	})
}

// TestFuzzSeedsAsUnitTests pins the seed corpus behavior explicitly so the
// properties hold even when the fuzz engine is not invoked (plain `go test`
// runs f.Add seeds through the fuzz function already; this adds the decoded
// expectations).
func TestFuzzSeedsAsUnitTests(t *testing.T) {
	valid := seedFrames()
	n := 0
	off, err := scanFrames(valid, func(p []byte) error { n++; return nil })
	if err != nil || off != len(valid) || n != 5 {
		t.Fatalf("seed image: %d frames, %d/%d bytes, err=%v", n, off, len(valid), err)
	}
	// A record with every field populated survives the codec bit for bit.
	r := &Record{
		Seq: 7, Op: OpAdd, ID: 3, Node: 2,
		TrueSvc: core.Service{Name: "s", ReqElem: vec.Of(1), ReqAgg: vec.Of(1),
			NeedElem: vec.Of(0.5), NeedAgg: vec.Of(0.5)},
		EstSvc: core.Service{Name: "", ReqElem: vec.Of(1), ReqAgg: vec.Of(1),
			NeedElem: vec.Of(0.25), NeedAgg: vec.Of(0.25)},
	}
	back, err := decodePayload(encodePayload(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	if back.TrueSvc.Name != "s" || back.Seq != 7 || back.Node != 2 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

// TestDecodeHugeNameLengthNoPanic pins the regression where a CRC-valid
// payload declaring a service-name length >= 2^63 wrapped negative through
// int() and panicked the decoder instead of reporting corruption.
func TestDecodeHugeNameLengthNoPanic(t *testing.T) {
	payload := []byte{
		1, 0, 0, 0, 0, 0, 0, 0, // seq
		byte(OpAdd),
		2, 2, // id, node varints
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, // name len = 1<<63
	}
	if _, err := decodePayload(payload); err == nil {
		t.Fatal("huge name length accepted")
	}
}
