package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"vmalloc/internal/faultfs"
)

// The integrity chain is a rolling SHA-256 over every record payload:
//
//	h_0 = 0, h_n = SHA256(h_{n-1} || payload_n)
//
// The payload includes the record's sequence number, so two journals hold the
// same chain hash at seq n if and only if they hold bit-identical histories
// through n. Frame CRCs catch accidental corruption; the chain catches
// deliberate tampering (a flipped byte with a recomputed CRC) and divergent
// replicas (same seq, different decision).
//
// Chain checkpoints land in chain.json next to the segments:
//
//   - entries: the chain at every multiple of the interval. Deterministic
//     across replicas with the same history, so two replicas are compared by
//     their entries — Merkle-style, a mismatch is localized to the first
//     divergent checkpoint by binary search in O(log n) without re-reading
//     any segment.
//   - bases: the chain at each local snapshot's seq, seeding replay (records
//     at or below the snapshot are not replayed, so their chain cannot be
//     recomputed). Bases are replica-local: snapshot cadence differs between
//     leader and follower even when histories are identical.
//
// chain.json is written before its snapshot is renamed into place, so a
// snapshot that recovery selects always has a base. Replay recomputes the
// chain from the base and verifies every checkpoint it crosses; a mismatch
// fails recovery rather than resurrecting a tampered history.

// ChainPoint is the integrity chain at a sequence number: the rolling hash
// covering every record with Seq' <= Seq.
type ChainPoint struct {
	Seq  uint64
	Hash [32]byte
}

type chainPointWire struct {
	Seq  uint64 `json:"seq"`
	Hash string `json:"hash"`
}

// MarshalJSON encodes the hash as lowercase hex.
func (c ChainPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(chainPointWire{Seq: c.Seq, Hash: hex.EncodeToString(c.Hash[:])})
}

// UnmarshalJSON decodes the hex hash, rejecting wrong lengths.
func (c *ChainPoint) UnmarshalJSON(data []byte) error {
	var w chainPointWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	raw, err := hex.DecodeString(w.Hash)
	if err != nil {
		return fmt.Errorf("chain point %d: %w", w.Seq, err)
	}
	if len(raw) != len(c.Hash) {
		return fmt.Errorf("chain point %d: hash is %d bytes, want %d", w.Seq, len(raw), len(c.Hash))
	}
	c.Seq = w.Seq
	copy(c.Hash[:], raw)
	return nil
}

// chainNext advances the rolling hash over one record payload.
func chainNext(prev [32]byte, payload []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

const chainFile = "chain.json"

// chainManifest is the persisted form of chain.json.
type chainManifest struct {
	Interval uint64       `json:"interval"`
	Entries  []ChainPoint `json:"entries"`
	Bases    []ChainPoint `json:"bases"`
}

func chainPath(dir string) string { return filepath.Join(dir, chainFile) }

// loadChain reads chain.json; a missing file returns (nil, nil) — a legacy
// directory that predates the chain.
func loadChain(fsys faultfs.FS, dir string) (*chainManifest, error) {
	data, err := fsys.ReadFile(chainPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var m chainManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("journal: %s: %w", chainPath(dir), err)
	}
	if m.Interval == 0 {
		return nil, fmt.Errorf("journal: %s: zero interval", chainPath(dir))
	}
	for _, pts := range [][]ChainPoint{m.Entries, m.Bases} {
		for i := 1; i < len(pts); i++ {
			if pts[i].Seq <= pts[i-1].Seq {
				return nil, fmt.Errorf("journal: %s: points out of order at seq %d", chainPath(dir), pts[i].Seq)
			}
		}
	}
	return &m, nil
}

// writeChain durably replaces chain.json (tmp + fsync + rename + dirsync).
func writeChain(fsys faultfs.FS, dir string, m *chainManifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	path := chainPath(dir)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	return syncDir(fsys, dir)
}

// findPoint returns the point with exactly seq, if present.
func findPoint(pts []ChainPoint, seq uint64) (ChainPoint, bool) {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Seq >= seq })
	if i < len(pts) && pts[i].Seq == seq {
		return pts[i], true
	}
	return ChainPoint{}, false
}

// MerkleRoot folds a checkpoint list into a single hash: leaves are
// H(seq || chain), interior nodes H(left || right), an odd node promoted.
// Two replicas holding the same checkpoint range agree on the root iff they
// agree on every checkpoint.
func MerkleRoot(pts []ChainPoint) [32]byte {
	if len(pts) == 0 {
		return [32]byte{}
	}
	level := make([][32]byte, len(pts))
	for i, p := range pts {
		h := sha256.New()
		var seq [8]byte
		for k := 0; k < 8; k++ {
			seq[k] = byte(p.Seq >> (8 * k))
		}
		h.Write(seq[:])
		h.Write(p.Hash[:])
		h.Sum(level[i][:0])
	}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var node [32]byte
			h.Sum(node[:0])
			next = append(next, node)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// CompareChains diffs two checkpoint lists over their common seq range.
// It reports whether they diverge and, if so, the first divergent checkpoint
// (ours). The chain's prefix property — once two histories differ, every
// later chain hash differs — makes the first divergence binary-searchable:
// the comparison is O(log n) in the number of shared checkpoints, with a
// Merkle-root fast path when the ranges coincide.
//
// Lists must be seq-sorted with aligned checkpoints in the overlap (the
// interval discipline guarantees this for journal entries). Checkpoints
// outside the common range cannot be compared and are ignored: a replica
// that pruned older checkpoints is not thereby divergent.
func CompareChains(ours, theirs []ChainPoint) (at ChainPoint, diverged bool) {
	a, b := overlap(ours, theirs)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	if n == 0 || MerkleRoot(a) == MerkleRoot(b) {
		return ChainPoint{}, false
	}
	i := sort.Search(n, func(i int) bool { return a[i] != b[i] })
	if i == n {
		return ChainPoint{}, false
	}
	return a[i], true
}

// overlap trims both seq-sorted lists to their common seq range.
func overlap(a, b []ChainPoint) ([]ChainPoint, []ChainPoint) {
	if len(a) == 0 || len(b) == 0 {
		return nil, nil
	}
	lo := a[0].Seq
	if b[0].Seq > lo {
		lo = b[0].Seq
	}
	hi := a[len(a)-1].Seq
	if b[len(b)-1].Seq < hi {
		hi = b[len(b)-1].Seq
	}
	trim := func(pts []ChainPoint) []ChainPoint {
		i := sort.Search(len(pts), func(i int) bool { return pts[i].Seq >= lo })
		j := sort.Search(len(pts), func(j int) bool { return pts[j].Seq > hi })
		return pts[i:j]
	}
	return trim(a), trim(b)
}

// Checkpoint is the portable bootstrap package for a fresh replica: state,
// the chain point it covers, and the checkpoint ledger up to that point.
// InstallSnapshot seeds an empty directory from it so the replica continues
// the leader's chain rather than starting one of its own.
type Checkpoint struct {
	At       ChainPoint      `json:"at"`
	Interval uint64          `json:"interval"`
	Entries  []ChainPoint    `json:"entries"`
	State    json.RawMessage `json:"state"`
}
