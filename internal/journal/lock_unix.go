//go:build unix

package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on dir/LOCK so two processes
// cannot append to the same journal (interleaved writes from independent
// committers would corrupt acknowledged frames). The lock is released by
// closing the returned file — explicitly on Close, or by the kernel when
// the process dies, so a kill -9 never wedges the directory.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: directory %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
