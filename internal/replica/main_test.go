package replica

import (
	"testing"

	"vmalloc/internal/testutil/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine — followers run
// background appliers and stream readers that must stop on Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
