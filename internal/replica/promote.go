package replica

import (
	"context"
	"fmt"

	"vmalloc/internal/journal"
	"vmalloc/internal/server"
)

// Promote flips the follower into a writable leader.
//
// When the old leader is still reachable, promotion first proves the replica
// is safe to take over: every shard must have applied at least the leader's
// committed (acked-durable) high-water mark, and the local checkpoint ledger
// must agree with the leader's — journal.CompareChains walks the two ledgers
// and localizes any divergence in O(log n) checkpoint comparisons. Either
// failure refuses promotion (the HTTP layer maps it to 409 Conflict) and the
// follower keeps pulling.
//
// When the leader is unreachable (the failover case), those cross-checks are
// skipped and local integrity stands in for them: the pull loops stop, the
// journals close, and the directory re-opens through the ordinary crash
// recovery path — which re-hashes every record against the persisted chain
// ledger. A tampered WAL (bit flips, truncated acked records, spliced
// history) fails that verification and the promotion errors out instead of
// serving corrupt state.
//
// On success the follower is closed and the returned ShardedStore serves
// writes; the caller (Switch) swaps it into the HTTP surface atomically.
func (f *Follower) Promote(ctx context.Context) (*server.ShardedStore, error) {
	if err := f.Err(); err != nil {
		return nil, fmt.Errorf("replica: promote: replication failed: %w", err)
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return nil, server.ErrClosed
	}

	rctx, cancel := context.WithTimeout(ctx, f.opts.reqTimeout())
	chains, err := f.client.Chains(rctx)
	cancel()
	if err == nil {
		if err := f.verifyAgainst(chains); err != nil {
			return nil, err
		}
	}
	// err != nil: leader unreachable — dead-leader failover. Proceed on
	// local chain verification below.

	f.cancel()
	f.wg.Wait()
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	if err := f.rep.Close(); err != nil {
		return nil, fmt.Errorf("replica: promote: closing journals: %w", err)
	}
	st, err := server.OpenSharded(f.opts.Dir, nil, f.opts.Server)
	if err != nil {
		return nil, fmt.Errorf("replica: promote: %w", err)
	}
	f.promoted.Store(true)
	return st, nil
}

// verifyAgainst checks catch-up and chain agreement against a reachable
// leader's per-shard status.
func (f *Follower) verifyAgainst(chains []server.ShardChain) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return server.ErrClosed
	}
	if len(chains) != len(f.rep.Journals) {
		return fmt.Errorf("replica: promote: leader reports %d shards, replica has %d",
			len(chains), len(f.rep.Journals))
	}
	for _, c := range chains {
		if c.Shard < 0 || c.Shard >= len(f.rep.Journals) {
			return fmt.Errorf("replica: promote: leader reports unknown shard %d", c.Shard)
		}
		applied := f.cursors[c.Shard].Load()
		if applied < c.CommittedSeq {
			return fmt.Errorf("replica: promote: shard %d lags leader (applied %d < committed %d)",
				c.Shard, applied, c.CommittedSeq)
		}
		j := f.rep.Journals[c.Shard]
		if at, diverged := journal.CompareChains(j.Entries(), c.Entries); diverged {
			return fmt.Errorf("replica: promote: shard %d history diverges from leader at seq %d — replica tampered or split-brain, refusing",
				c.Shard, at.Seq)
		}
		// The heads must agree wherever both sides have hashed the same
		// prefix: at the leader's committed seq the replica has applied at
		// least as far, so a leader head ahead of the replica chain means
		// divergence the sparse ledger missed.
		if applied == c.CommittedSeq && c.Head.Seq == applied {
			if local := j.CommittedHead(); local.Seq == c.Head.Seq && local.Hash != c.Head.Hash {
				return fmt.Errorf("replica: promote: shard %d chain head mismatch at seq %d — replica tampered or split-brain, refusing",
					c.Shard, applied)
			}
		}
	}
	return nil
}
