package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/server"
)

// Options configures a Follower.
type Options struct {
	// Leader is the leader's base URL (required).
	Leader string
	// Dir is the local journal directory. Empty directories bootstrap from
	// the leader's manifest and checkpoints; non-empty ones must hold a
	// matching shard manifest and resume from their local cursors.
	Dir string
	// Poll is the idle pull interval once caught up (default 200ms).
	Poll time.Duration
	// ReadyLag is the per-shard record lag above which Ready() fails
	// (default 4096). Zero means the default; -1 disables the bound.
	ReadyLag int64
	// PullBytes bounds one stream batch (default 1 MiB).
	PullBytes int
	// Server carries the store options used to open the local journals and,
	// at promotion, the writable store (segment size, fsync policy, chain
	// interval, cluster options...).
	Server *server.Options
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// RequestTimeout bounds every single leader request (default 10s).
	RequestTimeout time.Duration
}

func (o *Options) poll() time.Duration {
	if o.Poll <= 0 {
		return 200 * time.Millisecond
	}
	return o.Poll
}

func (o *Options) readyLag() int64 {
	if o.ReadyLag == 0 {
		return 4096
	}
	return o.ReadyLag
}

func (o *Options) pullBytes() int {
	if o.PullBytes <= 0 {
		return 1 << 20
	}
	return o.PullBytes
}

func (o *Options) reqTimeout() time.Duration {
	if o.RequestTimeout <= 0 {
		return 10 * time.Second
	}
	return o.RequestTimeout
}

// Follower is a read-only vmallocd store fed by a leader's WAL stream. It
// implements the server API surface: reads are served from the continuously
// replayed restore seam, mutations fail with server.ErrReadOnly (503 +
// Retry-After at the HTTP layer), and Promote flips the directory into a
// writable ShardedStore after verifying chain agreement with the leader.
//
// Apply order is durable-first: a streamed batch lands in the local WAL
// (fsynced per the configured policy) before it mutates the in-memory
// engines, so the follower never serves state it could lose.
type Follower struct {
	opts   Options
	client *Client

	mu     sync.Mutex // serializes restore applies vs. reads; guards closed/failErr
	rep    *server.ShardedReplay
	closed bool
	fail   error // sticky: first fatal replication fault

	cursors    []atomic.Uint64 // last seq applied durably, per shard
	leaderSeqs []atomic.Uint64 // leader committed seq at last chain poll
	polled     atomic.Bool     // at least one successful chain poll
	promoted   atomic.Bool

	// Per-shard apply telemetry feeding the lag metrics: cumulative applied
	// stream bytes and records (their ratio is the mean record size the
	// bytes-behind estimate uses) and the apply time of the newest record.
	shardBytes   []atomic.Uint64
	shardRecords []atomic.Uint64
	lastApplied  []atomic.Int64 // unix nanos; seeded with the open time

	batches    atomic.Uint64
	records    atomic.Uint64
	retries    atomic.Uint64
	bootstraps atomic.Uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Open bootstraps (if dir is fresh) and recovers the local replica state,
// then starts the per-shard pull loops. ctx bounds only the bootstrap phase;
// the pull loops run until Close or Promote.
func Open(ctx context.Context, opts Options) (*Follower, error) {
	if opts.Leader == "" {
		return nil, errors.New("replica: no leader URL")
	}
	if opts.Dir == "" {
		return nil, errors.New("replica: no journal directory")
	}
	if opts.Server == nil {
		opts.Server = &server.Options{}
	}
	f := &Follower{opts: opts, client: NewClient(opts.Leader, opts.HTTPClient)}

	if err := f.bootstrap(ctx); err != nil {
		return nil, err
	}
	rep, err := server.OpenShardedReplay(opts.Dir, opts.Server)
	if err != nil {
		return nil, err
	}
	f.rep = rep
	n := rep.Manifest.Shards
	f.cursors = make([]atomic.Uint64, n)
	f.leaderSeqs = make([]atomic.Uint64, n)
	f.shardBytes = make([]atomic.Uint64, n)
	f.shardRecords = make([]atomic.Uint64, n)
	f.lastApplied = make([]atomic.Int64, n)
	now := time.Now().UnixNano()
	for i, j := range rep.Journals {
		f.cursors[i].Store(j.LastSeq())
		f.lastApplied[i].Store(now)
	}

	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.wg.Add(n + 1)
	for i := 0; i < n; i++ {
		go f.pullLoop(i)
	}
	go f.chainLoop()
	return f, nil
}

// bootstrap seeds an empty directory from the leader: the shard manifest
// first, then one checkpoint per shard (journal.InstallSnapshot), each with
// capped-backoff retries. A directory that already holds a manifest resumes
// as-is — its shard count must match the leader's.
func (f *Follower) bootstrap(ctx context.Context) error {
	local, err := server.LoadShardManifest(f.opts.Dir)
	if err != nil {
		return err
	}
	m, err := f.retryManifest(ctx)
	if err != nil && local == nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	if local != nil {
		if m != nil && m.Shards != local.Shards {
			return fmt.Errorf("replica: local manifest has %d shards, leader has %d", local.Shards, m.Shards)
		}
		return nil
	}
	if err := server.SaveShardManifest(f.opts.Dir, m); err != nil {
		return err
	}
	for i := 0; i < m.Shards; i++ {
		cp, err := f.retryCheckpoint(ctx, i)
		if err != nil {
			return fmt.Errorf("replica: bootstrap shard %d: %w", i, err)
		}
		jopts := journal.Options{
			Dir: server.ShardDir(f.opts.Dir, i),
			FS:  f.opts.Server.FS,
			ValidateSnapshot: func(b []byte) error {
				_, err := server.DecodeState(b)
				return err
			},
		}
		if err := journal.InstallSnapshot(jopts, *cp); err != nil {
			return fmt.Errorf("replica: bootstrap shard %d: %w", i, err)
		}
		f.bootstraps.Add(1)
	}
	return nil
}

func (f *Follower) retryManifest(ctx context.Context) (*server.ShardManifest, error) {
	var last error
	for attempt := 0; ; attempt++ {
		rctx, cancel := context.WithTimeout(ctx, f.opts.reqTimeout())
		m, err := f.client.Manifest(rctx)
		cancel()
		if err == nil {
			return m, nil
		}
		last = err
		f.retries.Add(1)
		select {
		case <-ctx.Done():
			return nil, last
		case <-time.After(f.client.Backoff(attempt)):
		}
		if attempt >= 6 {
			return nil, last
		}
	}
}

func (f *Follower) retryCheckpoint(ctx context.Context, shard int) (*journal.Checkpoint, error) {
	var last error
	for attempt := 0; ; attempt++ {
		rctx, cancel := context.WithTimeout(ctx, f.opts.reqTimeout())
		cp, err := f.client.Checkpoint(rctx, shard)
		cancel()
		if err == nil {
			return cp, nil
		}
		last = err
		f.retries.Add(1)
		select {
		case <-ctx.Done():
			return nil, last
		case <-time.After(f.client.Backoff(attempt)):
		}
		if attempt >= 6 {
			return nil, last
		}
	}
}

// pullLoop tails one shard: pull a batch, append it durably, apply it to the
// engines, repeat. Transient failures back off with jitter; a compacted
// cursor or a local journal fault is fatal and sticks (Ready then fails, and
// the operator re-seeds per docs/operations.md).
func (f *Follower) pullLoop(shard int) {
	defer f.wg.Done()
	attempt := 0
	for {
		if f.ctx.Err() != nil {
			return
		}
		applied, err := f.pullOnce(shard)
		switch {
		case err == nil && applied:
			attempt = 0
			continue // drain: more may be pending
		case err == nil:
			attempt = 0
			if !sleep(f.ctx, f.opts.poll()) {
				return
			}
		case errors.Is(err, errFatal):
			return // already stuck in f.fail
		case Transient(err):
			f.retries.Add(1)
			if !sleep(f.ctx, f.client.Backoff(attempt)) {
				return
			}
			attempt++
		default: // ErrCompacted
			f.setFailed(fmt.Errorf(
				"replica: shard %d cursor %d compacted away at leader; wipe %s and restart to re-bootstrap",
				shard, f.cursors[shard].Load(), f.opts.Dir))
			return
		}
	}
}

// errFatal marks local faults already recorded in f.fail.
var errFatal = errors.New("replica: fatal")

// pullOnce pulls and applies at most one batch. applied reports whether any
// records landed (false when caught up).
func (f *Follower) pullOnce(shard int) (applied bool, err error) {
	rctx, cancel := context.WithTimeout(f.ctx, f.opts.reqTimeout())
	defer cancel()
	b, err := f.client.Stream(rctx, shard, f.cursors[shard].Load(), f.opts.pullBytes())
	if err != nil {
		return false, err
	}
	if b == nil {
		return false, nil
	}
	// Durable first: the frames land verbatim in the local WAL and are
	// fsynced before any of them becomes visible to readers.
	last, err := f.rep.Journals[shard].AppendFrames(b.Data)
	if err != nil {
		f.setFailed(fmt.Errorf("replica: shard %d append: %w", shard, err))
		return false, errFatal
	}
	f.mu.Lock()
	if !f.closed {
		err = journal.DecodeFrames(b.Data, func(r *journal.Record) error {
			return server.ApplyShardRecord(f.rep.Restore, shard, r)
		})
	}
	f.mu.Unlock()
	if err != nil {
		f.setFailed(fmt.Errorf("replica: shard %d apply: %w", shard, err))
		return false, errFatal
	}
	// Keep the persisted checkpoint ledger abreast of the WAL: the follower
	// never snapshots, so without this chain.json would stay at the bootstrap
	// base and recovery at promotion would have nothing to verify tampering
	// against.
	if err := f.rep.Journals[shard].PersistChain(); err != nil {
		f.setFailed(fmt.Errorf("replica: shard %d ledger: %w", shard, err))
		return false, errFatal
	}
	f.cursors[shard].Store(last)
	f.batches.Add(1)
	f.records.Add(last - b.First + 1)
	f.shardBytes[shard].Add(uint64(len(b.Data)))
	f.shardRecords[shard].Add(last - b.First + 1)
	f.lastApplied[shard].Store(time.Now().UnixNano())
	return true, nil
}

// chainLoop refreshes the leader's committed marks for lag accounting.
func (f *Follower) chainLoop() {
	defer f.wg.Done()
	for {
		rctx, cancel := context.WithTimeout(f.ctx, f.opts.reqTimeout())
		cs, err := f.client.Chains(rctx)
		cancel()
		if err == nil {
			for _, c := range cs {
				if c.Shard >= 0 && c.Shard < len(f.leaderSeqs) {
					f.leaderSeqs[c.Shard].Store(c.CommittedSeq)
				}
			}
			f.polled.Store(true)
		}
		if !sleep(f.ctx, f.opts.poll()) {
			return
		}
	}
}

func sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

func (f *Follower) setFailed(err error) {
	f.mu.Lock()
	if f.fail == nil {
		f.fail = err
	}
	f.mu.Unlock()
}

// Err returns the sticky replication fault, if any.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fail
}

// Close stops the pull loops and releases the local journals.
func (f *Follower) Close() error {
	f.cancel()
	f.wg.Wait()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	return f.rep.Close()
}

// --- server API surface (read-only) ---

// AddWithEstimate refuses: the follower is read-only until promoted.
func (f *Follower) AddWithEstimate(trueSvc, estSvc vmalloc.Service) (int, int, error) {
	return 0, -1, server.ErrReadOnly
}

// AddBatch refuses: the follower is read-only until promoted.
func (f *Follower) AddBatch(specs []server.AddSpec) ([]server.AddOutcome, error) {
	return nil, server.ErrReadOnly
}

// Remove refuses: the follower is read-only until promoted.
func (f *Follower) Remove(id int) (bool, error) { return false, server.ErrReadOnly }

// UpdateNeeds refuses: the follower is read-only until promoted.
func (f *Follower) UpdateNeeds(id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error {
	return server.ErrReadOnly
}

// SetThreshold refuses: the follower is read-only until promoted.
func (f *Follower) SetThreshold(th float64) error { return server.ErrReadOnly }

// Reallocate refuses: the follower is read-only until promoted.
func (f *Follower) Reallocate() (*vmalloc.ClusterEpoch, error) { return nil, server.ErrReadOnly }

// Repair refuses: the follower is read-only until promoted.
func (f *Follower) Repair(budget int) (*vmalloc.ClusterEpoch, error) {
	return nil, server.ErrReadOnly
}

// Checkpoint refuses: snapshot cadence is the leader's job; the follower
// bootstraps from the leader's checkpoints instead of cutting its own.
func (f *Follower) Checkpoint() (uint64, error) { return 0, server.ErrReadOnly }

// MinYield evaluates the replicated placement under the §6 error model.
func (f *Follower) MinYield(policy vmalloc.SchedPolicy) (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, server.ErrClosed
	}
	return f.rep.Restore.MinYield(policy), nil
}

// State returns the merged park-global state of the replicated placement.
func (f *Follower) State() (*vmalloc.ClusterState, []byte, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, nil, server.ErrClosed
	}
	st := f.rep.Restore.State()
	f.mu.Unlock()
	data, err := server.EncodeState(st)
	if err != nil {
		return nil, nil, err
	}
	return st, data, nil
}

// Stats returns a point-in-time counter snapshot of the replica.
func (f *Follower) Stats() server.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := server.Stats{}
	if f.closed {
		return st
	}
	st.Services = f.rep.Restore.Len()
	st.Threshold = f.rep.Restore.Threshold()
	st.Shards = f.rep.Manifest.Shards
	st.Replayed = f.rep.Replayed
	st.TruncatedBytes = f.rep.TruncatedBytes
	st.SnapshotSeq = f.rep.SnapshotSeq
	st.Records = f.records.Load()
	for _, j := range f.rep.Journals {
		st.LastSeq += j.LastSeq()
	}
	return st
}

// ShardStats returns per-shard statistics of the replicated placement.
func (f *Follower) ShardStats() ([]vmalloc.ShardStat, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, server.ErrClosed
	}
	return f.rep.Restore.ShardStats(), nil
}

// JournalIOStats sums the local shard journals' write-path counters.
func (f *Follower) JournalIOStats() journal.IOStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	var sum journal.IOStats
	if f.closed {
		return sum
	}
	for _, j := range f.rep.Journals {
		st := j.IOStats()
		sum.Records += st.Records
		sum.Batches += st.Batches
		sum.Fsyncs += st.Fsyncs
		sum.Rotations += st.Rotations
		for i := range sum.BatchSizes {
			sum.BatchSizes[i] += st.BatchSizes[i]
		}
	}
	return sum
}

// --- leader-side replication surface (chained followers, status) ---

// ReplicaManifest returns the mirrored shard manifest, so a follower can
// itself seed further replicas.
func (f *Follower) ReplicaManifest() (*server.ShardManifest, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, server.ErrClosed
	}
	return f.rep.Manifest, nil
}

// ReplicaCheckpoint returns the newest local checkpoint of one shard (the
// bootstrap checkpoint installed from the leader, until promotion cuts new
// ones).
func (f *Follower) ReplicaCheckpoint(shard int) (*journal.Checkpoint, error) {
	j, err := f.shardJournal(shard)
	if err != nil {
		return nil, err
	}
	cp, err := j.LatestCheckpoint()
	if err != nil {
		return nil, err
	}
	if cp == nil {
		return nil, fmt.Errorf("replica: shard %d has no checkpoint", shard)
	}
	return cp, nil
}

// ReplicaStream serves raw committed frames from the local WAL.
func (f *Follower) ReplicaStream(shard int, from uint64, maxBytes int) (*server.StreamBatch, error) {
	j, err := f.shardJournal(shard)
	if err != nil {
		return nil, err
	}
	data, first, last, err := j.ReadEncoded(from, maxBytes)
	if err != nil {
		return nil, err
	}
	if first == 0 {
		return nil, nil
	}
	return &server.StreamBatch{First: first, Last: last, Data: data}, nil
}

// ChainStatus returns the local shard journals' integrity-chain status.
func (f *Follower) ChainStatus() ([]server.ShardChain, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, server.ErrClosed
	}
	js := f.rep.Journals
	f.mu.Unlock()
	out := make([]server.ShardChain, len(js))
	for i, j := range js {
		out[i] = server.ShardChain{
			Shard:        i,
			CommittedSeq: j.CommittedSeq(),
			Head:         j.CommittedHead(),
			Entries:      j.Entries(),
		}
	}
	return out, nil
}

func (f *Follower) shardJournal(shard int) (*journal.Journal, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, server.ErrClosed
	}
	if shard < 0 || shard >= len(f.rep.Journals) {
		return nil, fmt.Errorf("replica: shard %d of %d", shard, len(f.rep.Journals))
	}
	return f.rep.Journals[shard], nil
}

// ReplicationStatus reports the follower's cursors, lag and counters.
func (f *Follower) ReplicationStatus() *server.ReplicationStatus {
	st := &server.ReplicationStatus{
		Leader:     f.opts.Leader,
		Batches:    f.batches.Load(),
		Records:    f.records.Load(),
		Retries:    f.retries.Load(),
		Bootstraps: f.bootstraps.Load(),
		Promoted:   f.promoted.Load(),
	}
	now := time.Now().UnixNano()
	for i := range f.cursors {
		applied, leader := f.cursors[i].Load(), f.leaderSeqs[i].Load()
		sh := server.FollowerShardStatus{Shard: i, AppliedSeq: applied, LeaderSeq: leader}
		if leader > applied {
			sh.Lag = leader - applied
		}
		if recs := f.shardRecords[i].Load(); recs > 0 {
			sh.BytesBehind = sh.Lag * (f.shardBytes[i].Load() / recs)
		}
		sh.SecondsSinceApplied = float64(now-f.lastApplied[i].Load()) / 1e9
		st.Shards = append(st.Shards, sh)
	}
	return st
}

// Ready reports whether the follower can serve reads: no sticky fault, at
// least one successful leader poll, and every shard within the lag bound.
func (f *Follower) Ready() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return server.ErrClosed
	}
	if f.fail != nil {
		err := f.fail
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()
	if !f.polled.Load() {
		return errors.New("replica: leader not yet reached")
	}
	bound := f.opts.readyLag()
	if bound < 0 {
		return nil
	}
	for i := range f.cursors {
		applied, leader := f.cursors[i].Load(), f.leaderSeqs[i].Load()
		if leader > applied && int64(leader-applied) > bound {
			return fmt.Errorf("replica: shard %d lags %d records (bound %d)", i, leader-applied, bound)
		}
	}
	return nil
}
