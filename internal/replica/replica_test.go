package replica

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/server"
	"vmalloc/internal/workload"
)

func testNodes(h int, seed int64) []vmalloc.Node {
	return workload.Platform(workload.Scenario{
		Hosts: h, COV: 0.4, Mode: workload.HeteroBoth, Seed: seed,
	}, rand.New(rand.NewSource(seed)))
}

func testService(rng *rand.Rand) vmalloc.Service {
	req := vmalloc.Of(0.02+0.05*rng.Float64(), 0.02+0.05*rng.Float64())
	need := vmalloc.Of(0.05+0.2*rng.Float64(), 0.05*rng.Float64())
	return vmalloc.Service{
		ReqElem: req.Clone(), ReqAgg: req.Clone(),
		NeedElem: need.Clone(), NeedAgg: need.Clone(),
	}
}

// drive applies a deterministic mutation mix: admissions (some batched),
// removes, threshold changes and epochs. Every returned call is acked
// (durable on the leader).
func drive(t *testing.T, s *server.ShardedStore, n int, seed int64) (live []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		switch {
		case i%13 == 12:
			if _, err := s.Reallocate(); err != nil {
				t.Fatalf("op %d reallocate: %v", i, err)
			}
		case i%9 == 8 && len(live) > 0:
			k := rng.Intn(len(live))
			if _, err := s.Remove(live[k]); err != nil {
				t.Fatalf("op %d remove: %v", i, err)
			}
			live = append(live[:k], live[k+1:]...)
		case i%7 == 6:
			specs := make([]server.AddSpec, 4)
			for j := range specs {
				svc := testService(rng)
				specs[j] = server.AddSpec{True: svc, Est: svc}
			}
			out, err := s.AddBatch(specs)
			if err != nil {
				t.Fatalf("op %d batch: %v", i, err)
			}
			for _, o := range out {
				if o.Err == nil {
					live = append(live, o.ID)
				}
			}
		default:
			svc := testService(rng)
			id, _, err := s.AddWithEstimate(svc, svc)
			if err != nil && !errors.Is(err, server.ErrRejected) {
				t.Fatalf("op %d add: %v", i, err)
			}
			if err == nil {
				live = append(live, id)
			}
		}
	}
	return live
}

func leaderOpts() *server.Options {
	return &server.Options{
		Fsync:         journal.FsyncNone,
		Shards:        2,
		ChainInterval: 4,
		SegmentBytes:  4096,
	}
}

// boot starts a sharded leader and its HTTP surface.
func boot(t *testing.T, seed int64) (*server.ShardedStore, *httptest.Server) {
	t.Helper()
	s, err := server.OpenSharded(t.TempDir(), testNodes(8, seed), leaderOpts())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(s))
	return s, ts
}

// follow opens a follower of ts with a fast poll.
func follow(t *testing.T, ts *httptest.Server) *Follower {
	t.Helper()
	f, err := Open(context.Background(), Options{
		Leader: ts.URL,
		Dir:    t.TempDir(),
		Poll:   5 * time.Millisecond,
		Server: &server.Options{Fsync: journal.FsyncNone, ChainInterval: 4, SegmentBytes: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// waitCaughtUp blocks until the follower has applied every record the leader
// has committed (as of one leader-side reading per probe).
func waitCaughtUp(t *testing.T, leader *server.ShardedStore, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		cs, err := leader.ChainStatus()
		if err != nil {
			t.Fatal(err)
		}
		st := f.ReplicationStatus()
		caught := len(st.Shards) == len(cs)
		for _, c := range cs {
			if st.Shards[c.Shard].AppliedSeq < c.CommittedSeq {
				caught = false
			}
		}
		if caught {
			return
		}
		if err := f.Err(); err != nil {
			t.Fatalf("follower failed while catching up: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: leader %+v follower %+v", cs, st.Shards)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// shardWALBytes concatenates the WAL segment bytes of one shard directory in
// base order.
func shardWALBytes(t *testing.T, dir string, shard int) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(server.ShardDir(dir, shard), "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	var all []byte
	for _, p := range segs {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

func stateBytes(t *testing.T, s server.API) []byte {
	t.Helper()
	_, data, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFollowerReplicatesAndServes(t *testing.T) {
	leader, ts := boot(t, 31)
	defer ts.Close()
	defer leader.Close()

	drive(t, leader, 80, 7)
	f := follow(t, ts)
	defer f.Close()
	waitCaughtUp(t, leader, f)

	// The replicated read view matches the leader byte for byte.
	if got, want := stateBytes(t, f), stateBytes(t, leader); !bytes.Equal(got, want) {
		t.Fatalf("follower state differs from leader:\n got %s\nwant %s", got, want)
	}
	ly, err := leader.MinYield(vmalloc.PolicyAllocCaps)
	if err != nil {
		t.Fatal(err)
	}
	fy, err := f.MinYield(vmalloc.PolicyAllocCaps)
	if err != nil {
		t.Fatal(err)
	}
	if ly != fy {
		t.Fatalf("min yield: follower %v, leader %v", fy, ly)
	}

	// Mutations are refused with the read-only sentinel.
	if _, _, err := f.AddWithEstimate(vmalloc.Service{}, vmalloc.Service{}); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("follower add: %v, want ErrReadOnly", err)
	}
	if _, err := f.Remove(1); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("follower remove: %v, want ErrReadOnly", err)
	}
	if _, err := f.Checkpoint(); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("follower checkpoint: %v, want ErrReadOnly", err)
	}

	// Caught up and polled: ready.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := f.Ready(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("follower never ready: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// New leader traffic keeps flowing (resumable cursor, no re-bootstrap).
	drive(t, leader, 40, 8)
	waitCaughtUp(t, leader, f)
	if got, want := stateBytes(t, f), stateBytes(t, leader); !bytes.Equal(got, want) {
		t.Fatal("follower state diverged after second burst")
	}
	if f.ReplicationStatus().Bootstraps != uint64(leader.Stats().Shards) {
		t.Fatalf("bootstraps = %d, want one per shard", f.ReplicationStatus().Bootstraps)
	}
}

// TestFollowerHTTPSurface drives the follower through its own HTTP server:
// reads serve, mutations get 503 + Retry-After, /readyz reports readiness,
// and POST /v1/promote returns 409 while the follower lags a live leader.
func TestFollowerHTTPSurface(t *testing.T) {
	leader, ts := boot(t, 33)
	defer ts.Close()
	defer leader.Close()
	drive(t, leader, 40, 9)

	f := follow(t, ts)
	sw := NewSwitch(f)
	defer sw.Close()
	fts := httptest.NewServer(server.Handler(sw))
	defer fts.Close()
	waitCaughtUp(t, leader, f)

	get := func(path string) (*http.Response, error) { return http.Get(fts.URL + path) }
	for _, path := range []string{"/v1/minyield?policy=ALLOCCAPS", "/v1/stats", "/v1/snapshot", "/v1/replica/status", "/readyz", "/healthz"} {
		resp, err := get(path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	resp, err := http.Post(fts.URL+"/v1/services", "application/json",
		bytes.NewReader([]byte(`{"true":{"req_elem":[0.01,0.01],"req_agg":[0.01,0.01],"need_elem":[0.01,0.01],"need_agg":[0.01,0.01]}}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation on follower = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After")
	}

	// Stall the follower behind fresh leader traffic (poll sleeps are long
	// gone by now — rely on the pull loop being between polls is racy, so
	// instead stop it deterministically by closing the leader server after
	// appending; promotion against an unreachable leader proceeds, so use a
	// live leader with fresh records and promote before the follower can
	// catch up only if we pause it — skip the race and instead verify the
	// lag rejection with a directly constructed gap below).
	drive(t, leader, 20, 10)
	cs, err := leader.ChainStatus()
	if err != nil {
		t.Fatal(err)
	}
	var gap bool
	st := f.ReplicationStatus()
	for _, c := range cs {
		if st.Shards[c.Shard].AppliedSeq < c.CommittedSeq {
			gap = true
		}
	}
	if gap {
		// The follower demonstrably lags right now: promotion must refuse.
		resp, err := http.Post(fts.URL+"/v1/promote", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
			t.Fatalf("promote while lagging = %d, want 409 (or 200 if the race resolved)", resp.StatusCode)
		}
	}

	waitCaughtUp(t, leader, f)
	resp, err = http.Post(fts.URL+"/v1/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote caught up = %d, want 200", resp.StatusCode)
	}
	// Promotion is idempotent, and the switch now serves writes.
	resp, err = http.Post(fts.URL+"/v1/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-promote = %d, want 200", resp.StatusCode)
	}
	if _, _, err := sw.AddWithEstimate(testService(rand.New(rand.NewSource(1))), testService(rand.New(rand.NewSource(1)))); err != nil {
		t.Fatalf("promoted switch refuses writes: %v", err)
	}
	if !sw.ReplicationStatus().Promoted {
		t.Fatal("replication status does not report promotion")
	}
}

// TestPromoteDeadLeaderByteIdentity is the failover torture: quiesce, pin the
// acked state as golden, kill the leader without a checkpoint, promote the
// follower against the dead leader, and require byte identity — promoted
// HTTP state bytes, recovered-leader state bytes and the golden all agree,
// and the follower's WAL is byte-identical to the leader's.
func TestPromoteDeadLeaderByteIdentity(t *testing.T) {
	leaderDir := t.TempDir()
	leader, err := server.OpenSharded(leaderDir, testNodes(8, 41), leaderOpts())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(leader))

	drive(t, leader, 120, 11)
	f := follow(t, ts)
	waitCaughtUp(t, leader, f)
	golden := stateBytes(t, leader) // every record behind this is acked

	// Crash: connections die, no Close-time checkpoint.
	ts.CloseClientConnections()
	ts.Close()
	leader.Kill()

	for shard := 0; shard < 2; shard++ {
		lw := shardWALBytes(t, leaderDir, shard)
		fw := shardWALBytes(t, f.opts.Dir, shard)
		if !bytes.Equal(lw, fw) {
			t.Fatalf("shard %d WAL bytes differ: leader %d bytes, follower %d", shard, len(lw), len(fw))
		}
	}

	sw := NewSwitch(f)
	if err := sw.Promote(); err != nil {
		t.Fatalf("promote against dead leader: %v", err)
	}
	defer sw.Close()
	if got := stateBytes(t, sw); !bytes.Equal(got, golden) {
		t.Fatalf("promoted state differs from acked golden:\n got %s\nwant %s", got, golden)
	}

	// Cross-check: recovering the leader's own directory yields the same
	// bytes — the promoted follower is indistinguishable from the leader.
	rec, err := server.OpenSharded(leaderDir, nil, leaderOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := stateBytes(t, rec); !bytes.Equal(got, golden) {
		t.Fatalf("recovered leader differs from golden:\n got %s\nwant %s", got, golden)
	}

	// The promoted store is writable and keeps journaling. A full cluster may
	// reject admission — that is a normal outcome, not read-only refusal.
	if _, _, err := sw.AddWithEstimate(testService(rand.New(rand.NewSource(2))), testService(rand.New(rand.NewSource(2)))); err != nil && !errors.Is(err, server.ErrRejected) {
		t.Fatalf("promoted store add: %v", err)
	}
}

// TestPromoteMidBatchNeverLosesAcked kills the leader while an admission
// batch is in flight: every batch acked AND confirmed replicated must
// survive promotion; the in-flight batch may land or not, but nothing acked
// disappears.
func TestPromoteMidBatchNeverLosesAcked(t *testing.T) {
	leader, ts := boot(t, 43)
	drive(t, leader, 30, 13)
	f := follow(t, ts)
	waitCaughtUp(t, leader, f)

	rng := rand.New(rand.NewSource(99))
	var ackedIDs []int
	for round := 0; round < 5; round++ {
		specs := make([]server.AddSpec, 8)
		for j := range specs {
			svc := testService(rng)
			specs[j] = server.AddSpec{True: svc, Est: svc}
		}
		out, err := leader.AddBatch(specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range out {
			if o.Err == nil {
				ackedIDs = append(ackedIDs, o.ID)
			}
		}
		waitCaughtUp(t, leader, f) // acked AND replicated
	}

	// One more batch rides into the crash.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		specs := make([]server.AddSpec, 8)
		r := rand.New(rand.NewSource(100))
		for j := range specs {
			svc := testService(r)
			specs[j] = server.AddSpec{True: svc, Est: svc}
		}
		leader.AddBatch(specs) // may fail: the store dies underneath it
	}()
	leader.Kill()
	wg.Wait()
	ts.CloseClientConnections()
	ts.Close()

	sw := NewSwitch(f)
	if err := sw.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer sw.Close()
	st, _, err := sw.State()
	if err != nil {
		t.Fatal(err)
	}
	have := map[int]bool{}
	for _, svc := range st.Services {
		have[svc.ID] = true
	}
	for _, id := range ackedIDs {
		if !have[id] {
			t.Fatalf("acked service %d lost at failover", id)
		}
	}
}

// TestPromoteRejectsTamperedWAL flips one byte of an acked, committed record
// in the follower's WAL and then promotes against a dead leader: recovery's
// chain verification must refuse to serve the tampered history.
func TestPromoteRejectsTamperedWAL(t *testing.T) {
	leader, ts := boot(t, 47)
	drive(t, leader, 100, 17)
	f := follow(t, ts)
	waitCaughtUp(t, leader, f)
	ts.CloseClientConnections()
	ts.Close()
	leader.Kill()

	// Flip one byte in the middle of shard 0's oldest WAL segment — past the
	// frame header of some committed record.
	segs, err := filepath.Glob(filepath.Join(server.ShardDir(f.opts.Dir, 0), "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no follower segments: %v", err)
	}
	sort.Strings(segs)
	target := segs[0]
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 64 {
		t.Fatalf("segment too small to tamper: %d bytes", len(data))
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sw := NewSwitch(f)
	err = sw.Promote()
	if err == nil {
		t.Fatal("promotion served a tampered WAL")
	}
	t.Logf("tamper rejected: %v", err)
}

// TestPromoteRejectsDivergedReplica forks the follower's history — extra
// records the leader never shipped — and verifies a reachable leader's chain
// comparison refuses promotion.
func TestPromoteRejectsDivergedReplica(t *testing.T) {
	leader, ts := boot(t, 53)
	defer ts.Close()
	defer leader.Close()
	drive(t, leader, 60, 19)
	f := follow(t, ts)
	defer f.Close()
	waitCaughtUp(t, leader, f)

	// Forge divergence: append a record to the follower's shard 0 journal
	// that the leader never issued. The cursors now run ahead of the leader,
	// and the rolling chain differs from the leader's at the forged seq.
	j := f.rep.Journals[0]
	forged := &journal.Record{Op: journal.OpSetThreshold, Threshold: 0.99}
	if err := j.Append(forged); err != nil {
		t.Fatal(err)
	}
	f.cursors[0].Store(j.LastSeq())

	// Push the leader past the forged seq so the chains overlap at a
	// checkpoint entry and the divergence is visible to CompareChains.
	drive(t, leader, 60, 23)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if f.Err() != nil {
			break // pull loop hit the divergence (AppendFrames gap) — also a pass
		}
		cs, err := leader.ChainStatus()
		if err != nil {
			t.Fatal(err)
		}
		ent, err := f.ChainStatus()
		if err != nil {
			t.Fatal(err)
		}
		if len(ent[0].Entries) > 0 && len(cs[0].Entries) > 0 {
			if _, diverged := journal.CompareChains(ent[0].Entries, cs[0].Entries); diverged {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("divergence never became visible in the ledgers")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sw := NewSwitch(f)
	if err := sw.Promote(); err == nil {
		t.Fatal("promotion accepted a diverged replica")
	} else {
		t.Logf("divergence rejected: %v", err)
	}
}
