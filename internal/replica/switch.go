package replica

import (
	"context"
	"sync"
	"sync/atomic"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/server"
)

// Switch fronts a follower and, after promotion, the writable store that
// replaces it — one stable value the HTTP server holds for the life of the
// process. Every server interface (the core API plus the optional shard,
// journal, replication, promotion and readiness surfaces) delegates to the
// current backend through one atomic pointer, so promotion is a single
// pointer swap: in-flight reads finish against the old follower, new
// requests land on the writable store, and no request ever observes a
// half-switched server.
type Switch struct {
	cur atomic.Pointer[backend]

	mu       sync.Mutex // serializes Promote
	follower *Follower
}

// backend is the current serving state: exactly one of f/st is non-nil.
type backend struct {
	f  *Follower
	st *server.ShardedStore
}

func (b *backend) api() server.API {
	if b.st != nil {
		return b.st
	}
	return b.f
}

// NewSwitch wraps a running follower.
func NewSwitch(f *Follower) *Switch {
	s := &Switch{follower: f}
	s.cur.Store(&backend{f: f})
	return s
}

// Promote verifies and promotes the follower, then atomically swaps the
// writable store in. Idempotent: promoting an already-promoted switch is a
// no-op.
func (s *Switch) Promote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur.Load().st != nil {
		return nil
	}
	st, err := s.follower.Promote(context.Background())
	if err != nil {
		return err
	}
	s.cur.Store(&backend{st: st})
	return nil
}

// Close shuts down whichever backend is serving.
func (s *Switch) Close() error {
	b := s.cur.Load()
	if b.st != nil {
		return b.st.Close()
	}
	return b.f.Close()
}

// --- server.API ---

func (s *Switch) AddWithEstimate(trueSvc, estSvc vmalloc.Service) (int, int, error) {
	return s.cur.Load().api().AddWithEstimate(trueSvc, estSvc)
}

func (s *Switch) AddBatch(specs []server.AddSpec) ([]server.AddOutcome, error) {
	return s.cur.Load().api().AddBatch(specs)
}

func (s *Switch) Remove(id int) (bool, error) { return s.cur.Load().api().Remove(id) }

func (s *Switch) UpdateNeeds(id int, trueElem, trueAgg, estElem, estAgg vmalloc.Vec) error {
	return s.cur.Load().api().UpdateNeeds(id, trueElem, trueAgg, estElem, estAgg)
}

func (s *Switch) SetThreshold(th float64) error { return s.cur.Load().api().SetThreshold(th) }

func (s *Switch) Reallocate() (*vmalloc.ClusterEpoch, error) {
	return s.cur.Load().api().Reallocate()
}

func (s *Switch) Repair(budget int) (*vmalloc.ClusterEpoch, error) {
	return s.cur.Load().api().Repair(budget)
}

func (s *Switch) MinYield(policy vmalloc.SchedPolicy) (float64, error) {
	return s.cur.Load().api().MinYield(policy)
}

func (s *Switch) State() (*vmalloc.ClusterState, []byte, error) {
	return s.cur.Load().api().State()
}

func (s *Switch) Checkpoint() (uint64, error) { return s.cur.Load().api().Checkpoint() }

func (s *Switch) Stats() server.Stats { return s.cur.Load().api().Stats() }

// --- optional surfaces (shard stats, journal I/O, replication, readiness) ---

func (s *Switch) ShardStats() ([]vmalloc.ShardStat, error) {
	if b := s.cur.Load(); b.st != nil {
		return b.st.ShardStats()
	} else {
		return b.f.ShardStats()
	}
}

func (s *Switch) JournalIOStats() journal.IOStats {
	if b := s.cur.Load(); b.st != nil {
		return b.st.JournalIOStats()
	} else {
		return b.f.JournalIOStats()
	}
}

func (s *Switch) ReplicaManifest() (*server.ShardManifest, error) {
	if b := s.cur.Load(); b.st != nil {
		return b.st.ReplicaManifest()
	} else {
		return b.f.ReplicaManifest()
	}
}

func (s *Switch) ReplicaCheckpoint(shard int) (*journal.Checkpoint, error) {
	if b := s.cur.Load(); b.st != nil {
		return b.st.ReplicaCheckpoint(shard)
	} else {
		return b.f.ReplicaCheckpoint(shard)
	}
}

func (s *Switch) ReplicaStream(shard int, from uint64, maxBytes int) (*server.StreamBatch, error) {
	if b := s.cur.Load(); b.st != nil {
		return b.st.ReplicaStream(shard, from, maxBytes)
	} else {
		return b.f.ReplicaStream(shard, from, maxBytes)
	}
}

func (s *Switch) ChainStatus() ([]server.ShardChain, error) {
	if b := s.cur.Load(); b.st != nil {
		return b.st.ChainStatus()
	} else {
		return b.f.ChainStatus()
	}
}

// ReplicationStatus always reports the follower's history — after promotion
// the counters freeze with Promoted set, preserving how this leader came to
// be.
func (s *Switch) ReplicationStatus() *server.ReplicationStatus {
	return s.follower.ReplicationStatus()
}

func (s *Switch) Ready() error {
	if b := s.cur.Load(); b.st != nil {
		return b.st.Ready()
	} else {
		return b.f.Ready()
	}
}
