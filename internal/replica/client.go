// Package replica implements vmallocd's replication follower: a daemon that
// bootstraps from a leader's checkpoints, tails the leader's shard WALs over
// HTTP, applies every record through the same restore seam crash recovery
// uses, and serves the read surface until it is explicitly promoted.
//
// The design invariant is byte identity: the follower's WAL is a verbatim
// prefix of the leader's (journal.AppendFrames appends the streamed frames
// unmodified), so both sides compute the same integrity chain and the same
// checkpoint ledger. Promotion verifies that chain agreement — a tampered or
// diverged replica is refused, and the divergence point is localized in
// O(log n) checkpoint comparisons.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"vmalloc/internal/journal"
	"vmalloc/internal/server"
)

// Client is the follower side of the /v1/replica/* wire protocol. Safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client

	mu   sync.Mutex
	rng  *rand.Rand
	seed bool
}

// NewClient returns a client for the leader at base (e.g.
// "http://10.0.0.1:7070"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Backoff parameters for transient pull failures: capped exponential with
// full jitter, so a partitioned follower neither hammers a recovering leader
// nor thunders in lockstep with its siblings.
const (
	backoffBase = 50 * time.Millisecond
	backoffCap  = 2 * time.Second
)

// Backoff returns the sleep before retry number attempt (0-based): a random
// duration in (0, min(cap, base<<attempt)].
func (c *Client) Backoff(attempt int) time.Duration {
	max := backoffBase << uint(attempt)
	if max > backoffCap || max <= 0 {
		max = backoffCap
	}
	c.mu.Lock()
	if !c.seed {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		c.seed = true
	}
	d := time.Duration(c.rng.Int63n(int64(max))) + 1
	c.mu.Unlock()
	return d
}

// Manifest fetches the leader's shard manifest.
func (c *Client) Manifest(ctx context.Context) (*server.ShardManifest, error) {
	var m server.ShardManifest
	if err := c.getJSON(ctx, "/v1/replica/manifest", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Checkpoint fetches the leader's newest durable checkpoint for one shard.
func (c *Client) Checkpoint(ctx context.Context, shard int) (*journal.Checkpoint, error) {
	var cp journal.Checkpoint
	q := url.Values{"shard": {strconv.Itoa(shard)}}
	if err := c.getJSON(ctx, "/v1/replica/checkpoint", q, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// Chains fetches the leader's per-shard committed marks and checkpoint
// ledgers.
func (c *Client) Chains(ctx context.Context) ([]server.ShardChain, error) {
	var cs []server.ShardChain
	if err := c.getJSON(ctx, "/v1/replica/chains", nil, &cs); err != nil {
		return nil, err
	}
	return cs, nil
}

// Stream pulls one batch of raw committed frames of shard starting after
// cursor from. A nil batch means caught up; journal.ErrCompacted means the
// cursor predates the leader's retention and the shard must re-bootstrap.
func (c *Client) Stream(ctx context.Context, shard int, from uint64, maxBytes int) (*server.StreamBatch, error) {
	q := url.Values{
		"shard": {strconv.Itoa(shard)},
		"from":  {strconv.FormatUint(from, 10)},
		"max":   {strconv.Itoa(maxBytes)},
	}
	resp, err := c.get(ctx, "/v1/replica/stream", q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return nil, journal.ErrCompacted
	case http.StatusOK:
	default:
		return nil, httpError(resp)
	}
	first, err1 := strconv.ParseUint(resp.Header.Get("Vmalloc-First-Seq"), 10, 64)
	last, err2 := strconv.ParseUint(resp.Header.Get("Vmalloc-Last-Seq"), 10, 64)
	if err1 != nil || err2 != nil || first == 0 || last < first {
		return nil, fmt.Errorf("replica: malformed stream headers (first=%q last=%q)",
			resp.Header.Get("Vmalloc-First-Seq"), resp.Header.Get("Vmalloc-Last-Seq"))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replica: reading stream body: %w", err)
	}
	return &server.StreamBatch{First: first, Last: last, Data: data}, nil
}

func (c *Client) get(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	return resp, nil
}

func (c *Client) getJSON(ctx context.Context, path string, q url.Values, v any) error {
	resp, err := c.get(ctx, path, q)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("replica: decoding %s: %w", path, err)
	}
	return nil
}

// httpError turns a non-2xx response into an error, preferring the server's
// JSON error envelope over the raw status line.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		return fmt.Errorf("replica: leader returned %s: %s", resp.Status, env.Error)
	}
	return fmt.Errorf("replica: leader returned %s", resp.Status)
}

// Transient reports whether a pull error is worth retrying in place:
// network-level failures, per-request timeouts and leader-side 5xx all are.
// ErrCompacted is not — the shard must re-bootstrap from a checkpoint. (The
// pull loop checks its own context separately; a canceled parent stops the
// loop before any retry sleep matters.)
func Transient(err error) bool {
	return err != nil && !errors.Is(err, journal.ErrCompacted)
}
