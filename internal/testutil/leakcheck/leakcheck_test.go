package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestDetectsAndClearsLeak proves both directions: a parked goroutine is
// reported as an offender, and once released the drain converges to clean.
func TestDetectsAndClearsLeak(t *testing.T) {
	stop := make(chan struct{})
	go func() { <-stop }()
	time.Sleep(10 * time.Millisecond)

	found := false
	for _, g := range offenders() {
		if strings.Contains(g, "leakcheck.TestDetectsAndClearsLeak") {
			found = true
		}
	}
	if !found {
		t.Fatal("offenders missed a parked goroutine")
	}

	close(stop)
	if leaked := drain(2 * time.Second); leaked != "" {
		t.Errorf("drain still reports leaks after release:\n%s", leaked)
	}
}

// TestBenignFilter pins the allowlist shape: the runtime's own goroutines
// never count as leaks, so an idle test binary is clean.
func TestBenignFilter(t *testing.T) {
	if leaked := drain(2 * time.Second); leaked != "" {
		t.Errorf("idle binary reports leaks:\n%s", leaked)
	}
}
