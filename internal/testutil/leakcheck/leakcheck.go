// Package leakcheck fails a test binary that exits with goroutines it
// started still running. The server, replication and shard layers own
// background goroutines (HTTP handlers, WAL streamers, follower appliers,
// rebalance workers); a test that forgets Close leaves one behind, and a
// leaked goroutine is exactly the kind of nondeterminism the analysis suite
// exists to keep out — it keeps mutating state while the next test runs.
//
// Usage, from a package's TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// The checker snapshots the goroutine set before the tests, runs them, and
// then retries for up to five seconds waiting for the set to drain back to
// known-benign goroutines (runtime helpers, the testing harness itself).
// Anything else is printed with its stack and the binary exits nonzero.
//
// It is dependency-free on purpose: runtime.Stack is enough, and the repo
// does not vendor goleak.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// benign are stack substrings identifying goroutines that legitimately
// survive a test binary: the runtime's own helpers and the testing harness.
var benign = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runFuzzing(",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime/trace.Start",
	"os/signal.signal_recv",
	"os/signal.loop",
	"created by runtime",
	"created by os/signal",
	"created by testing.RunTests",
}

// Main wraps m.Run with the leak check and exits the process with the
// combined status: test failures keep their exit code, and a leak turns a
// passing run into a failure.
func Main(m *testing.M) {
	code := m.Run()
	if leaked := drain(5 * time.Second); leaked != "" {
		fmt.Fprintf(os.Stderr, "leakcheck: goroutines still running at exit:\n\n%s\n", leaked)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// Check fails t if goroutines are still running when it is called — the
// per-test spelling for tests that want the check mid-package, typically via
// defer after closing the system under test.
func Check(t *testing.T) {
	t.Helper()
	if leaked := drain(2 * time.Second); leaked != "" {
		t.Errorf("leaked goroutines:\n\n%s", leaked)
	}
}

// drain polls until only benign goroutines remain or the deadline passes,
// returning the offending stacks (empty = clean). Polling gives goroutines
// that are mid-shutdown — a closed listener's accept loop, a follower
// applier draining its channel — time to finish before being called leaks.
func drain(deadline time.Duration) string {
	var leaked []string
	for wait, step := time.Duration(0), time.Millisecond; wait < deadline; wait, step = wait+step, step*2 {
		time.Sleep(step)
		leaked = offenders()
		if len(leaked) == 0 {
			return ""
		}
	}
	return strings.Join(leaked, "\n\n")
}

// offenders returns the stacks of non-benign goroutines, excluding the
// calling one.
func offenders() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the goroutine running the check
		}
		if g = strings.TrimSpace(g); g == "" {
			continue
		}
		ok := false
		for _, b := range benign {
			if strings.Contains(g, b) {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, g)
		}
	}
	return out
}
