// Package detrange forbids `for range` over maps in determinism-critical
// packages. Go randomizes map iteration order on purpose; any decision,
// journal record, or merged statistic derived from an unordered walk differs
// between the run that wrote the WAL and the replay that consumes it, between
// the K-sharded park and its K=1 golden twin, and between a leader and its
// followers. The fix is to iterate a sorted key slice; sites that provably
// cannot influence replayed state carry a //vmalloc:nondet-ok justification.
package detrange

import (
	"go/ast"
	"go/types"

	"vmalloc/internal/analysis/lintkit"
)

// Analyzer is the detrange invariant.
var Analyzer = &lintkit.Analyzer{
	Name: "detrange",
	Doc: "forbid map iteration in determinism-critical packages " +
		"(engine, vp, shard, journal, lp, milp, presolve): map order is " +
		"randomized, so anything derived from it breaks WAL replay, K=1 " +
		"equivalence and follower state. Iterate sorted keys instead, or " +
		"annotate with //vmalloc:nondet-ok <reason>.",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !lintkit.IsDeterminismCritical(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if isMap(tv.Type) {
				pass.Reportf(rng.Range, "range over map %s in determinism-critical package %s: iteration order is randomized; iterate a sorted key slice",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), pass.PkgPath)
			}
			return true
		})
	}
	return nil
}

// isMap reports whether t ranges in map order: a map type, or a type
// parameter whose core type is a map.
func isMap(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Map:
		return true
	case *types.Interface:
		// A generic range over a type-parameter constraint with a map core
		// type iterates in map order too.
		if u.NumEmbeddeds() == 0 {
			return false
		}
		allMaps := true
		for i := 0; i < u.NumEmbeddeds(); i++ {
			if _, ok := u.EmbeddedType(i).Underlying().(*types.Map); !ok {
				allMaps = false
			}
		}
		return allMaps
	}
	return false
}
