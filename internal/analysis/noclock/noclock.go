// Package noclock bans wall-clock reads and ambient randomness in
// determinism-critical packages. The solver and commit pipeline must be pure
// functions of the instance: time enters only through injected seams (the
// engine's Now hook, the platform driver that owns simulated time) and
// randomness only through deterministic hashes (the splitmix64 admission
// hash keyed on (seed,id)). A stray time.Now or math/rand draw changes
// decisions between the original run and WAL replay.
package noclock

import (
	"go/ast"
	"go/types"
	"strconv"

	"vmalloc/internal/analysis/lintkit"
)

// Analyzer is the noclock invariant.
var Analyzer = &lintkit.Analyzer{
	Name: "noclock",
	Doc: "forbid time.Now/time.Since/time.Until and the math/rand packages " +
		"in determinism-critical packages: time and randomness must enter " +
		"through injected seams (engine Now hook, splitmix64 admission " +
		"hash), never ambiently.",
	Run: run,
}

// bannedTimeFuncs are the wall-clock entry points; the time package's types
// and constants (Duration arithmetic, formatting) remain fine.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *lintkit.Pass) error {
	if !lintkit.IsDeterminismCritical(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in determinism-critical package %s: randomness must be a deterministic function of the instance (e.g. the splitmix64 admission hash)",
					path, pass.PkgPath)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "time.%s in determinism-critical package %s: wall-clock reads must come through an injected seam",
					sel.Sel.Name, pass.PkgPath)
			}
			return true
		})
	}
	return nil
}
