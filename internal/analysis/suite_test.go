package analysis_test

import (
	"testing"

	"vmalloc/internal/analysis"
	"vmalloc/internal/analysis/atest"
	"vmalloc/internal/analysis/detrange"
	"vmalloc/internal/analysis/floateq"
	"vmalloc/internal/analysis/lintkit"
	"vmalloc/internal/analysis/noclock"
	"vmalloc/internal/analysis/slogonly"
	"vmalloc/internal/analysis/syncorder"
)

func TestDetrangeCriticalPackage(t *testing.T) {
	atest.Run(t, "testdata/detrange", "vmalloc/internal/engine", detrange.Analyzer)
}

func TestDetrangeNonCriticalPackage(t *testing.T) {
	atest.Run(t, "testdata/detrange_clean", "vmalloc/internal/obs", detrange.Analyzer)
}

func TestNoclock(t *testing.T) {
	atest.Run(t, "testdata/noclock", "vmalloc/internal/vp", noclock.Analyzer)
}

func TestNoclockNonCriticalPackage(t *testing.T) {
	// The same fixture outside the critical set produces no findings.
	diags, err := atest.Analyze("testdata/noclock", "vmalloc/internal/obs", noclock.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("noclock flagged a non-critical package: %v", diags)
	}
}

func TestFloateq(t *testing.T) {
	atest.Run(t, "testdata/floateq", "vmalloc/internal/demo", floateq.Analyzer)
}

func TestSyncorderForeign(t *testing.T) {
	atest.Run(t, "testdata/syncorder_foreign", "vmalloc/internal/server", syncorder.Analyzer)
}

func TestSyncorderJournal(t *testing.T) {
	atest.Run(t, "testdata/syncorder_journal", "vmalloc/internal/journal", syncorder.Analyzer)
}

func TestSlogonlyLibrary(t *testing.T) {
	atest.Run(t, "testdata/slogonly", "vmalloc/internal/demo", slogonly.Analyzer)
}

func TestSlogonlyCmdExempt(t *testing.T) {
	atest.Run(t, "testdata/slogonly_cmd", "vmalloc/cmd/demo", slogonly.Analyzer)
}

// TestEmptySuppressionReasonIsFlagged is the suppression meta-test: a bare
// //vmalloc:nondet-ok waives the underlying finding but must surface as a
// finding itself, so suppressing without a justification can never pass the
// suite.
func TestEmptySuppressionReasonIsFlagged(t *testing.T) {
	diags, err := atest.Analyze("testdata/suppression_empty", "vmalloc/internal/engine", analysis.All...)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the empty-reason finding: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "suppression" {
		t.Fatalf("diagnostic came from %q, want the suppression meta-rule: %v", d.Analyzer, d)
	}
	for _, dd := range diags {
		if dd.Analyzer == detrange.Analyzer.Name {
			t.Fatalf("empty-reason comment failed to waive the underlying finding: %v", dd)
		}
	}
}

// TestRegistryComplete pins the registry: the vet driver runs exactly the
// five invariants, and each carries documentation.
func TestRegistryComplete(t *testing.T) {
	want := map[string]bool{
		"detrange": true, "noclock": true, "floateq": true,
		"syncorder": true, "slogonly": true,
	}
	if len(analysis.All) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(analysis.All), len(want))
	}
	for _, a := range analysis.All {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in registry", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestDeterminismCriticalSet pins the policed package list against the
// documented contract in docs/analysis.md.
func TestDeterminismCriticalSet(t *testing.T) {
	want := []string{
		"vmalloc/internal/engine",
		"vmalloc/internal/vp",
		"vmalloc/internal/shard",
		"vmalloc/internal/journal",
		"vmalloc/internal/lp",
		"vmalloc/internal/milp",
		"vmalloc/internal/presolve",
	}
	got := map[string]bool{}
	for _, p := range lintkit.DeterminismCritical {
		got[p] = true
	}
	for _, p := range want {
		if !got[p] {
			t.Errorf("package %s missing from the determinism-critical set", p)
		}
		if !lintkit.IsDeterminismCritical(p) {
			t.Errorf("IsDeterminismCritical(%s) = false", p)
		}
	}
	if lintkit.IsDeterminismCritical("vmalloc/internal/obs") {
		t.Error("IsDeterminismCritical(vmalloc/internal/obs) = true, want false")
	}
}
