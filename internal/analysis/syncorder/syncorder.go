// Package syncorder polices the durability boundary. Two rules:
//
//  1. Only internal/journal may call Sync on an *os.File or on the
//     faultfs File seam. Every other layer expresses durability through the
//     journal (Append/Barrier tickets, SyncDir), so there is exactly one
//     place where "durable" is defined — the place the torn-frame recovery
//     proof covers.
//
//  2. Inside internal/journal, a function that performs the fsync (calls
//     Sync, or the commit helper that wraps it) must not acknowledge
//     waiters — send on a channel — before that call. This is the PR 4
//     no-ack-past-torn-frame rule made structural: an ack delivered before
//     the sync could let a client observe a record that recovery later
//     truncates.
package syncorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"vmalloc/internal/analysis/lintkit"
)

// Analyzer is the syncorder invariant.
var Analyzer = &lintkit.Analyzer{
	Name: "syncorder",
	Doc: "only internal/journal may call (*os.File).Sync or the faultfs " +
		"File seam's Sync, and inside internal/journal no channel send " +
		"(waiter ack) may precede the fsync call in the same function " +
		"(the no-ack-past-torn-frame rule).",
	Run: run,
}

const (
	journalPkg = "vmalloc/internal/journal"
	faultfsPkg = "vmalloc/internal/faultfs"
)

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		if pass.PkgPath != journalPkg {
			checkForeignSync(pass, f)
		}
		if pass.PkgPath == journalPkg {
			checkAckOrder(pass, f)
		}
	}
	return nil
}

// checkForeignSync flags Sync calls on the durable-file types outside the
// journal.
func checkForeignSync(pass *lintkit.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sync" {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || tv.Type == nil {
			return true
		}
		if isDurableFile(tv.Type) {
			pass.Reportf(call.Pos(), "Sync on %s outside %s: durability belongs to the journal (Append/Barrier tickets, journal.SyncDir) so the torn-frame recovery proof covers every fsync",
				types.TypeString(tv.Type, nil), journalPkg)
		}
		return true
	})
}

// isDurableFile reports whether t is *os.File, os.File, or a type declared
// by the faultfs seam (its File interface or an implementation).
func isDurableFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "os":
		return obj.Name() == "File"
	case faultfsPkg:
		return true
	}
	return false
}

// checkAckOrder enforces send-after-sync inside journal functions that sync.
func checkAckOrder(pass *lintkit.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		firstSync := token.NoPos
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := calleeName(call); ok && (name == "Sync" || name == "commit") {
				if !firstSync.IsValid() || call.Pos() < firstSync {
					firstSync = call.Pos()
				}
			}
			return true
		})
		if !firstSync.IsValid() {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if send.Pos() < firstSync {
				pass.Reportf(send.Pos(), "channel send before the fsync call in %s: acks must follow the sync, or an acknowledged record could sit beyond a torn frame",
					fn.Name.Name)
			}
			return true
		})
	}
}

// calleeName extracts the bare method/function name of a call.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	case *ast.Ident:
		return fun.Name, true
	}
	return "", false
}
