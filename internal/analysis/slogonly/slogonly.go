// Package slogonly bans the global log package outside cmd/. Library and
// server code logs through log/slog (internal/obs.NewLogger wires level,
// format and request ids); the unstructured global logger bypasses all of
// that, races with the daemon's JSON output, and cannot carry request_id.
// This replaces the PR 9 CI grep for `log.Print` with a real import-level
// check that also catches log.Fatal, log.New, and friends.
package slogonly

import (
	"strconv"
	"strings"

	"vmalloc/internal/analysis/lintkit"
)

// Analyzer is the slogonly invariant.
var Analyzer = &lintkit.Analyzer{
	Name: "slogonly",
	Doc: "forbid importing the global log package outside cmd/: use " +
		"log/slog (internal/obs.NewLogger) so output stays structured and " +
		"carries request ids.",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if strings.HasPrefix(pass.PkgPath, "vmalloc/cmd/") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "log" {
				continue
			}
			pass.Reportf(imp.Pos(), `import of the global "log" package outside cmd/: use log/slog (internal/obs.NewLogger) instead`)
		}
	}
	return nil
}
