// Package atest replays analysistest-style fixtures against the lintkit
// analyzers without depending on golang.org/x/tools. A fixture is a
// directory of Go files forming one package; lines that should be flagged
// carry a trailing `// want "regexp"` comment (several quoted regexps allowed
// on one line). Run typechecks the fixture with the source importer — so
// fixtures may import the standard library — runs the analyzers, and fails
// the test on any missed, unexpected, or mismatched diagnostic.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"vmalloc/internal/analysis/lintkit"
)

// want is one expectation: a diagnostic matching rx at (file, line).
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// Run analyzes the fixture package in dir as if its import path were
// pkgPath (so package-scoped analyzers such as detrange see the path they
// police) and asserts the diagnostics equal the `// want` expectations.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*lintkit.Analyzer) {
	t.Helper()
	diags, fset, files, err := analyze(dir, pkgPath, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(fset, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// Analyze runs the analyzers over the fixture package in dir under pkgPath
// and returns the surviving (post-suppression) diagnostics. Tests that need
// to assert on diagnostics programmatically — e.g. the suppression meta-test
// — use this instead of want-comments.
func Analyze(dir, pkgPath string, analyzers ...*lintkit.Analyzer) ([]lintkit.Diagnostic, error) {
	diags, _, _, err := analyze(dir, pkgPath, analyzers)
	return diags, err
}

// analyze parses, typechecks and runs the suite over the fixture.
func analyze(dir, pkgPath string, analyzers []*lintkit.Analyzer) ([]lintkit.Diagnostic, *token.FileSet, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("atest: no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	info := lintkit.NewInfo()
	conf := types.Config{
		// The source importer compiles imports from GOROOT source, so
		// fixtures can use os/time/math-rand without prebuilt export data.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("atest: typechecking %s: %w", dir, err)
	}
	diags, err := lintkit.RunPackage(analyzers, fset, files, pkg, info, pkgPath)
	if err != nil {
		return nil, nil, nil, err
	}
	return diags, fset, files, nil
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants parses the `// want "rx" ["rx" ...]` comments.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%s:%d: malformed want clause %q", pos.Filename, pos.Line, rest)
					}
					end := strings.IndexByte(rest[1:], rest[0])
					if end < 0 {
						return nil, fmt.Errorf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
					}
					quoted := rest[:end+2]
					rest = strings.TrimSpace(rest[end+2:])
					pat, err := strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, quoted, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants, nil
}

// matchWant consumes the first unmatched expectation matching d.
func matchWant(wants []*want, d lintkit.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}
