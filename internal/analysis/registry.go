// Package analysis aggregates the vmalloc invariant suite: the five
// determinism/durability analyzers run by cmd/vmalloc-lint under
// `go vet -vettool`. See docs/analysis.md for the rules and the
// //vmalloc:nondet-ok suppression contract.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"vmalloc/internal/analysis/detrange"
	"vmalloc/internal/analysis/floateq"
	"vmalloc/internal/analysis/lintkit"
	"vmalloc/internal/analysis/noclock"
	"vmalloc/internal/analysis/slogonly"
	"vmalloc/internal/analysis/syncorder"
)

// All is the invariant suite in documentation order.
var All = []*lintkit.Analyzer{
	detrange.Analyzer,
	noclock.Analyzer,
	floateq.Analyzer,
	syncorder.Analyzer,
	slogonly.Analyzer,
}

// RunVet applies the whole suite to one typed package, with suppression
// filtering and the empty-reason meta-check applied.
func RunVet(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, pkgPath string) ([]lintkit.Diagnostic, error) {
	return lintkit.RunPackage(All, fset, files, pkg, info, pkgPath)
}
