// Fixture for the syncorder foreign-sync rule, typechecked as a package
// outside internal/journal (vmalloc/internal/server).
package fixture

import "os"

// flaggedSync fsyncs a file outside the journal.
func flaggedSync(f *os.File) error {
	return f.Sync() // want "Sync on [*]os.File outside vmalloc/internal/journal"
}

// flaggedValueSync covers the value-receiver spelling.
func flaggedValueSync(f os.File) error {
	return f.Sync() // want "Sync on os.File outside vmalloc/internal/journal"
}

// waitGroup has its own Sync method; calling it is fine — only the durable
// file types are policed.
type waitGroup struct{ n int }

func (w *waitGroup) Sync() { w.n = 0 }

func cleanSync(w *waitGroup) { w.Sync() }
