// Fixture for the floateq analyzer. The rule applies in every package, so
// the impersonated import path does not matter here.
package fixture

// flaggedCompares exercises ==/!= between distinct float operands.
func flaggedCompares(a, b float64, f float32) bool {
	if a == b { // want "float == comparison"
		return true
	}
	if f != float32(a) { // want "float != comparison"
		return true
	}
	return a+1 == b*2 // want "float == comparison"
}

// cleanCompares shows the allowed shapes: integer equality, float
// ordering, and the x != x NaN idiom.
func cleanCompares(i, j int, a float64) bool {
	if i == j {
		return true
	}
	if a < 1 || a > 2 {
		return true
	}
	return a != a // NaN test: exact by definition
}

// approxEqual is a margin helper by name: it owns its exact comparison
// (the fast path before the relative test).
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= tol
}

// withinTolerance is exempt through the "tol" fragment.
func withinTolerance(a, b float64) bool { return a == b }

// sentinels shows the suppression shape for exact sentinel checks.
func sentinels(threshold float64) bool {
	const adaptive = -1
	return threshold == adaptive //vmalloc:nondet-ok adaptive is an exact sentinel constant, never computed
}
