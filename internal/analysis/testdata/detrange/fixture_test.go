// Test files are exempt: tests may walk maps freely (ordering asserts go
// through sorted copies anyway, and test code never feeds the WAL).
package fixture

func rangeInTest(m map[int]int) int {
	n := 0
	for k := range m {
		n += k
	}
	return n
}
