// Fixture for the detrange analyzer, typechecked as a determinism-critical
// package (vmalloc/internal/engine).
package fixture

import "sort"

// flaggedRanges exercises the flagged shapes: direct map ranges.
func flaggedRanges(m map[int]string, set map[string]bool) int {
	n := 0
	for k := range m { // want "range over map"
		n += k
	}
	for s := range set { // want "range over map"
		n += len(s)
	}
	return n
}

// cleanRanges shows the sanctioned patterns: slices, channels, and sorted
// key extraction.
func cleanRanges(m map[int]string, xs []int, ch chan int) int {
	n := 0
	keys := make([]int, 0, len(m))
	//vmalloc:nondet-ok keys are collected into a slice and sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		n += k
	}
	for _, x := range xs {
		n += x
	}
	for x := range ch {
		n += x
	}
	return n
}

// suppressedTrailing shows the trailing-comment suppression shape.
func suppressedTrailing(m map[int]int) int {
	n := 0
	for k := range m { //vmalloc:nondet-ok per-key writes are independent; result is order-free
		n += k
	}
	return n
}
