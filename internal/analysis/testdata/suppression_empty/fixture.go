// Fixture for the suppression meta-rule: a //vmalloc:nondet-ok comment with
// no reason still waives the underlying finding but is itself reported, so
// content-free suppressions cannot land. Asserted programmatically by
// TestEmptySuppressionReasonIsFlagged (want-comments would also have to
// predict the meta-finding).
package fixture

func emptyReason(m map[int]int) int {
	n := 0
	for k := range m { //vmalloc:nondet-ok
		n += k
	}
	return n
}
