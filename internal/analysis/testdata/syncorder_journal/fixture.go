// Fixture for the syncorder ack-ordering rule, typechecked as the journal
// package itself (vmalloc/internal/journal).
package fixture

// commit stands in for the journal's fsync-wrapping commit helper; the
// analyzer recognizes it by name.
func commit() {}

// ackBeforeSync acknowledges a waiter before the fsync: the torn-frame
// hazard the rule exists for.
func ackBeforeSync(ch chan error) {
	ch <- nil // want "channel send before the fsync call"
	commit()
}

// ackAfterSync is the correct order: fsync first, ack second.
func ackAfterSync(ch chan error) {
	commit()
	ch <- nil
}

// ackWithoutSync never syncs, so its early sends are fine (the journal's
// fast-fail error acks take this shape).
func ackWithoutSync(ch chan error, err error) {
	if err != nil {
		ch <- err
		return
	}
	ch <- nil
}
