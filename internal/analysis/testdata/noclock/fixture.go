// Fixture for the noclock analyzer, typechecked as a determinism-critical
// package (vmalloc/internal/vp).
package fixture

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// flaggedClock reads the ambient wall clock two ways.
func flaggedClock() time.Duration {
	start := time.Now() // want `time\.Now`
	_ = rand.Int()
	return time.Since(start) // want `time\.Since`
}

// cleanClock shows the sanctioned patterns: injected clocks and pure
// time.Duration arithmetic.
func cleanClock(now func() time.Time) time.Duration {
	start := now()
	d := now().Sub(start)
	return d + 5*time.Millisecond
}
