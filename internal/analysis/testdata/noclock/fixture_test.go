// Test files are exempt: benchmarks and tests legitimately time themselves.
package fixture

import "time"

func clockInTest() time.Time { return time.Now() }
