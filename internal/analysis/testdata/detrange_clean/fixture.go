// Fixture for the detrange analyzer, typechecked as a package outside the
// determinism-critical set (vmalloc/internal/obs): map iteration is allowed
// and nothing is flagged.
package fixture

func freeRange(m map[int]string) int {
	n := 0
	for k := range m {
		n += k
	}
	return n
}
