// Fixture for the slogonly analyzer, typechecked as a library package
// (vmalloc/internal/demo): the global log package is banned.
package fixture

import (
	"log" // want `import of the global "log" package outside cmd/`
	"log/slog"
)

func logs() {
	log.Println("unstructured")
	slog.Info("structured")
}
