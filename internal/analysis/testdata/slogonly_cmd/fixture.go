// Fixture for the slogonly analyzer, typechecked as a main package under
// cmd/ (vmalloc/cmd/demo): entry points may use the global logger.
package fixture

import "log"

func logs() { log.Println("fine here") }
