// Package floateq flags == and != between floating-point operands. PR 2's
// order-invariance work established the repo rule: yield and load comparisons
// must go through magnitude-relative margin helpers, because two
// algebraically equal float expressions routinely differ in the last ulp
// once evaluation order changes (warm vs cold LP starts, sharded vs K=1
// merges). Exact float equality is allowed only inside approved margin/
// epsilon helpers (where the comparison IS the tolerance implementation),
// for the x != x NaN idiom, and at sites annotated //vmalloc:nondet-ok with
// a reason (e.g. comparing a value against an exact sentinel it was
// assigned, or bit-identity replay checks).
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vmalloc/internal/analysis/lintkit"
)

// Analyzer is the floateq invariant.
var Analyzer = &lintkit.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on floating-point operands outside approved margin " +
		"helpers: use a magnitude-relative margin (the PR 2 FP-robustness " +
		"rule), or annotate exact-sentinel/bit-identity sites with " +
		"//vmalloc:nondet-ok <reason>. The x != x NaN idiom is allowed.",
	Run: run,
}

// approvedHelper reports whether a comparison inside the named function is
// the implementation of a tolerance, not a use of exact equality: margin,
// epsilon and approx helpers own their float comparisons.
func approvedHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"approx", "margin", "eps", "tol", "near", "close"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if approvedHelper(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				// Comparisons inside a nested margin-helper closure are not
				// reachable this way (closures are anonymous); only named
				// declarations get the helper exemption.
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.TypesInfo, bin.X) || !isFloat(pass.TypesInfo, bin.Y) {
					return true
				}
				if sameExpr(bin.X, bin.Y) {
					return true // x != x: the NaN test, exact by definition
				}
				pass.Reportf(bin.OpPos, "float %s comparison: use a magnitude-relative margin helper, or annotate an exact-sentinel check with %s <reason>",
					bin.Op, lintkit.SuppressionPrefix)
				return true
			})
		}
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr reports whether two expressions are the identical simple operand
// (covers the `x != x` and `f.v == f.v` NaN-test shapes).
func sameExpr(a, b ast.Expr) bool {
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	}
	return false
}
