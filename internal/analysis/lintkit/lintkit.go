// Package lintkit is a dependency-free miniature of golang.org/x/tools'
// go/analysis framework: just enough Analyzer/Pass machinery to express the
// vmalloc invariant suite (detrange, noclock, floateq, syncorder, slogonly)
// without pulling x/tools into the module. The cmd/vmalloc-lint driver speaks
// the `go vet -vettool` unitchecker protocol on top of it, and the atest
// package replays analysistest-style fixtures against it.
//
// The framework deliberately mirrors the upstream API shape (Analyzer.Run
// over a *Pass carrying Fset/Files/Pkg/TypesInfo) so the analyzers port
// mechanically to x/tools if the module ever takes that dependency.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and docs. It must be a
	// valid Go identifier.
	Name string

	// Doc is the one-paragraph rule statement shown by `vmalloc-lint help`.
	Doc string

	// Run applies the analyzer to one package. Diagnostics are emitted via
	// pass.Reportf; the error return is for operational failures only.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one typed package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// PkgPath is the import path under analysis. It is carried separately
	// from Pkg.Path() so fixture runs can impersonate a determinism-critical
	// package path while compiling under a throwaway name.
	PkgPath string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The invariant suite polices production code; tests legitimately read the
// clock, range over maps, and compare floats for bit-identity.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// DeterminismCritical lists the packages whose control flow must be a pure
// function of the instance: every path here is replayed from the WAL
// (decisions, not requests), compared bit-for-bit across shards at K=1, and
// mirrored by followers. One map-range or clock read desynchronizes replay.
var DeterminismCritical = []string{
	"vmalloc/internal/engine",
	"vmalloc/internal/vp",
	"vmalloc/internal/shard",
	"vmalloc/internal/journal",
	"vmalloc/internal/lp",
	"vmalloc/internal/milp",
	"vmalloc/internal/presolve",
}

// IsDeterminismCritical reports whether pkgPath is in the replay-critical set.
func IsDeterminismCritical(pkgPath string) bool {
	for _, p := range DeterminismCritical {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// SuppressionPrefix is the magic comment that waives a finding on its line
// (or, for a comment alone on a line, the line below it). The text after the
// prefix is the mandatory justification; RunPackage reports an empty reason
// as a finding in its own right, so suppressions cannot be content-free.
const SuppressionPrefix = "//vmalloc:nondet-ok"

// suppression is one parsed //vmalloc:nondet-ok comment.
type suppression struct {
	file   string
	line   int  // line the comment sits on
	onOwn  bool // comment is the whole line -> covers line+1
	reason string
	pos    token.Pos
}

// collectSuppressions parses every suppression comment in the files. A
// comment sharing its line with code (`x := y //vmalloc:nondet-ok r`) waives
// findings on that line only; a comment alone on its line waives the line
// below it, the conventional "annotation above the statement" shape.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, SuppressionPrefix) {
					continue
				}
				rest := c.Text[len(SuppressionPrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //vmalloc:nondet-okay — not ours
				}
				pos := fset.Position(c.Slash)
				out = append(out, suppression{
					file:   pos.Filename,
					line:   pos.Line,
					onOwn:  !code[pos.Line],
					reason: strings.TrimSpace(rest),
					pos:    c.Slash,
				})
			}
		}
	}
	return out
}

// codeLines returns the set of lines in f that contain a non-comment token,
// so a suppression comment can tell "trailing after code" from "alone on its
// line". Comment nodes (including doc comments) are skipped.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()-1).Line] = true
		return true
	})
	return lines
}

// suppressed reports whether a diagnostic at position p is waived, and by
// which suppression.
func suppressed(sups []suppression, p token.Position) (suppression, bool) {
	for _, s := range sups {
		if s.file != p.Filename {
			continue
		}
		if s.line == p.Line || (s.onOwn && s.line+1 == p.Line) {
			return s, true
		}
	}
	return suppression{}, false
}

// RunPackage applies every analyzer to one typed package, filters findings
// through the suppression comments, and appends a finding for every
// suppression that lacks a reason. Diagnostics come back sorted by position.
func RunPackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, pkgPath string) ([]Diagnostic, error) {

	sups := collectSuppressions(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			PkgPath:   pkgPath,
			report: func(d Diagnostic) {
				if _, ok := suppressed(sups, d.Pos); ok {
					return
				}
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for _, s := range sups {
		if s.reason == "" {
			diags = append(diags, Diagnostic{
				Analyzer: "suppression",
				Pos:      fset.Position(s.pos),
				Message:  "vmalloc:nondet-ok requires a non-empty reason",
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// NewInfo returns a types.Info with every map analyzers need populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
