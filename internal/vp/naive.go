package vp

import (
	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// PackPermutationNaive is the reference implementation of Permutation-Pack
// following Leinberger et al. as described in §3.5.2: items are conceptually
// split into D! lists keyed by their dimension permutation, and for each bin
// the lists are probed in the bin's lexicographic preference order. It
// produces exactly the same packing as the improved key-mapping
// implementation (Pack with Alg=PermutationPack and a full window) but costs
// O(D!·J) per selection instead of O(J·D); it exists for the ablation
// benchmark and as a cross-check oracle in tests.
func PackPermutationNaive(p *core.Problem, y float64, itemOrder, binOrder Order) (core.Placement, bool) {
	inst := NewInstance(p, y)
	items := itemOrder.Sort(inst.ItemAgg)
	d := p.Dim()
	perms := permutations(d)

	itemRank := make([][]int, p.NumServices())
	for _, j := range items {
		itemRank[j] = vec.Rank(inst.ItemAgg[j], true)
	}

	for _, h := range binOrder.Sort(binCaps(p)) {
		for {
			binRank := vec.Rank(inst.Load[h], false)
			placed := false
			// Probe candidate keys from best (identity) to worst.
			for _, key := range perms {
				for _, j := range items {
					if inst.placed[j] || !inst.Fits(j, h) {
						continue
					}
					if !equalInts(vec.PermutationKey(binRank, itemRank[j]), key) {
						continue
					}
					inst.Place(j, h)
					placed = true
					break
				}
				if placed {
					break
				}
			}
			if !placed {
				break
			}
		}
	}
	return inst.Placement, inst.Done()
}

func binCaps(p *core.Problem) []vec.Vec {
	caps := make([]vec.Vec, p.NumNodes())
	for h := range caps {
		caps[h] = p.Nodes[h].Aggregate
	}
	return caps
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// permutations returns every permutation of 0..n-1 in lexicographic order.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	used := make([]bool, n)
	perm := make([]int, n)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[k] = v
			rec(k + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}
