package vp

import (
	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// PackNaive is the retained reference implementation of Pack: it rebuilds the
// packing instance from scratch, re-sorts items and bins per call, and uses
// the straightforward allocating vector operations in every inner loop —
// exactly the shape of the pre-arena hot path. It produces bit-identical
// placements to Solver.Pack and exists as the equivalence oracle for the
// property tests and as the baseline for the paper-scale speedup benchmarks.
func PackNaive(p *core.Problem, y float64, c Config) (core.Placement, bool) {
	inst := newInstanceNaive(p, y)
	items := c.ItemOrder.Sort(inst.ItemAgg)

	switch c.Alg {
	case FirstFit:
		bins := naiveBinOrder(p, c.BinOrder)
		for _, j := range items {
			ok := false
			for _, h := range bins {
				if naiveFits(inst, j, h) {
					inst.Place(j, h)
					ok = true
					break
				}
			}
			if !ok {
				return inst.Placement, false
			}
		}
	case BestFit:
		for _, j := range items {
			best, found := -1, false
			var bestScore float64
			for h := 0; h < p.NumNodes(); h++ {
				if !naiveFits(inst, j, h) {
					continue
				}
				var score float64
				if c.Hetero {
					// Least total remaining capacity wins.
					score = -inst.Remaining(h).Sum()
				} else {
					// Greatest total load wins.
					score = inst.Load[h].Sum()
				}
				if !found || score > bestScore {
					best, bestScore, found = h, score, true
				}
			}
			if !found {
				return inst.Placement, false
			}
			inst.Place(j, best)
		}
	case PermutationPack, ChoosePack:
		naivePackByBins(inst, items, c)
	default:
		panic("vp: unknown algorithm")
	}
	return inst.Placement, inst.Done()
}

// newInstanceNaive freezes the problem at yield y the way the pre-arena
// implementation did: one fresh vector allocation per item pair and per bin,
// on every call.
func newInstanceNaive(p *core.Problem, y float64) *Instance {
	inst := &Instance{
		P:         p,
		Yield:     y,
		ItemAgg:   make([]vec.Vec, p.NumServices()),
		ItemElem:  make([]vec.Vec, p.NumServices()),
		Load:      make([]vec.Vec, p.NumNodes()),
		placed:    make([]bool, p.NumServices()),
		Placement: core.NewPlacement(p.NumServices()),
		remaining: p.NumServices(),
	}
	for j := range p.Services {
		s := &p.Services[j]
		inst.ItemAgg[j] = s.AggAt(y)
		inst.ItemElem[j] = s.ElemAt(y)
	}
	for h := range inst.Load {
		inst.Load[h] = vec.New(p.Dim())
	}
	return inst
}

// naiveFits is the allocating formulation of Instance.Fits.
func naiveFits(inst *Instance, j, h int) bool {
	n := &inst.P.Nodes[h]
	if !inst.ItemElem[j].LessEq(n.Elementary, core.DefaultEpsilon) {
		return false
	}
	return inst.Load[h].Add(inst.ItemAgg[j]).LessEq(n.Aggregate, core.DefaultEpsilon)
}

// naiveBinOrder re-sorts bin indices by aggregate capacity on every call.
func naiveBinOrder(p *core.Problem, o Order) []int {
	return o.Sort(binCaps(p))
}

// naivePackByBins is the Permutation-/Choose-Pack loop with per-call rank and
// key allocations.
func naivePackByBins(inst *Instance, items []int, c Config) {
	p := inst.P
	d := p.Dim()
	w := c.Window
	if w <= 0 || w > d {
		w = d
	}
	bins := naiveBinOrder(p, c.BinOrder)
	// Item dimension rankings are static for the whole pack.
	itemRank := make([][]int, p.NumServices())
	for _, j := range items {
		itemRank[j] = vec.Rank(inst.ItemAgg[j], true)
	}
	for _, h := range bins {
		for {
			var binRank []int
			if c.Hetero {
				binRank = vec.Rank(inst.Remaining(h), true)
			} else {
				binRank = vec.Rank(inst.Load[h], false)
			}
			best := -1
			var bestKey []int
			bestWithin := false
			for _, j := range items {
				if inst.placed[j] || !naiveFits(inst, j, h) {
					continue
				}
				key := vec.PermutationKey(binRank, itemRank[j])
				if c.Alg == ChoosePack {
					if bestWithin {
						continue
					}
					if vec.KeyWithinWindow(key, w) {
						best, bestKey, bestWithin = j, key, true
					} else if best == -1 || vec.CompareKeys(key, bestKey, w) < 0 {
						best, bestKey = j, key
					}
				} else if best == -1 || vec.CompareKeys(key, bestKey, w) < 0 {
					best, bestKey = j, key
				}
			}
			if best == -1 {
				break
			}
			inst.Place(best, h)
		}
	}
}

// SolveNaive runs one strategy inside the yield binary search with the naive
// packing path.
func SolveNaive(p *core.Problem, c Config, tol float64) *core.Result {
	return SearchMaxYield(p, tol, func(y float64) (core.Placement, bool) {
		return PackNaive(p, y, c)
	})
}

// MetaConfigsNaive is MetaConfigs over the naive packing path: every
// binary-search step rebuilds each strategy's instance and sort permutations
// from scratch. It probes exactly the same (yield, strategy) sequence as
// MetaConfigs, so the two must agree bit-for-bit.
func MetaConfigsNaive(p *core.Problem, configs []Config, tol float64) *core.Result {
	return SearchMaxYield(p, tol, func(y float64) (core.Placement, bool) {
		for _, c := range configs {
			if pl, ok := PackNaive(p, y, c); ok {
				return pl, true
			}
		}
		return nil, false
	})
}

// PackPermutationNaive is the reference implementation of Permutation-Pack
// following Leinberger et al. as described in §3.5.2: items are conceptually
// split into D! lists keyed by their dimension permutation, and for each bin
// the lists are probed in the bin's lexicographic preference order. It
// produces exactly the same packing as the improved key-mapping
// implementation (Pack with Alg=PermutationPack and a full window) but costs
// O(D!·J) per selection instead of O(J·D); it exists for the ablation
// benchmark and as a cross-check oracle in tests.
func PackPermutationNaive(p *core.Problem, y float64, itemOrder, binOrder Order) (core.Placement, bool) {
	inst := NewInstance(p, y)
	items := itemOrder.Sort(inst.ItemAgg)
	d := p.Dim()
	perms := permutations(d)

	itemRank := make([][]int, p.NumServices())
	for _, j := range items {
		itemRank[j] = vec.Rank(inst.ItemAgg[j], true)
	}

	for _, h := range binOrder.Sort(binCaps(p)) {
		for {
			binRank := vec.Rank(inst.Load[h], false)
			placed := false
			// Probe candidate keys from best (identity) to worst.
			for _, key := range perms {
				for _, j := range items {
					if inst.placed[j] || !inst.Fits(j, h) {
						continue
					}
					if !equalInts(vec.PermutationKey(binRank, itemRank[j]), key) {
						continue
					}
					inst.Place(j, h)
					placed = true
					break
				}
				if placed {
					break
				}
			}
			if !placed {
				break
			}
		}
	}
	return inst.Placement, inst.Done()
}

func binCaps(p *core.Problem) []vec.Vec {
	caps := make([]vec.Vec, p.NumNodes())
	for h := range caps {
		caps[h] = p.Nodes[h].Aggregate
	}
	return caps
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// permutations returns every permutation of 0..n-1 in lexicographic order.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	used := make([]bool, n)
	perm := make([]int, n)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[k] = v
			rec(k + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}
