package vp

import (
	"context"

	"vmalloc/internal/core"
	"vmalloc/internal/sliceutil"
	"vmalloc/internal/vec"
)

// Solver is the reusable, allocation-free search core behind the METAVP /
// METAHVP meta-heuristics. It owns one arena-backed Instance plus every
// scratch buffer the packing loops need, and caches sort permutations:
//
//   - bin orders depend only on node capacities, never on the yield, so each
//     distinct bin Order is sorted exactly once per Solver lifetime;
//   - item orders are computed once per (order, yield) and shared among all
//     strategies of a meta step that use the same Order — most of the 253
//     METAHVP configs differ only in packing rule, not order;
//   - item orders whose key is provably monotone in r + y·n (SUM, LEX and
//     NONE with matching endpoint permutations) are cached across binary-
//     search steps entirely;
//   - the per-item dimension rankings used by Permutation-/Choose-Pack are
//     computed once per yield and shared by all 121+ PP/CP strategies.
//
// A handful of lazy one-time allocations remain after the constructor: the
// cache entry of each first-seen Order (plus, for the first SUM/LEX order,
// the endpoint vectors backing invariance detection) and the item-rank table
// on the first Permutation-/Choose-Pack call. Once those caches are warm,
// repacking is allocation-free at any yield. A Solver is not safe for
// concurrent use; parallel metas hold one Solver per worker.
type Solver struct {
	p    *core.Problem
	inst *Instance

	// caps[h] aliases node h's aggregate capacity vector for bin sorting.
	caps []vec.Vec

	// capTotal[d] = total aggregate capacity; reqTotal/needTotal are the
	// summed service requirement and need vectors, so StepFeasible can bound
	// total demand at yield y as reqTotal + y·needTotal in O(D).
	capTotal, reqTotal, needTotal []float64

	binOrders  map[Order][]int
	itemOrders map[Order]*itemOrderEntry

	// Yield-1 demand vectors (r+n) and yield-0 requirement views, built
	// lazily for yield-invariance detection of item orders; endpointBuf backs
	// demandVecs and survives Rebind, permBuf is the endpoint-permutation
	// scratch of invariance detection.
	demandVecs    []vec.Vec
	reqVecs       []vec.Vec
	endpointBuf   []float64
	permBuf       []int
	haveEndpoints bool

	// itemRank[j] ranks item j's aggregate dimensions descending; valid for
	// the current yield when haveItemRank.
	itemRank     [][]int
	itemRankBuf  []int
	haveItemRank bool

	// elemFit[j*H+h] caches whether item j's elementary vector fits node h.
	// Elementary fits depend only on the yield, never on bin loads, so one
	// O(J·H·D) pass per yield serves every strategy of the step.
	elemFit     []bool
	haveElemFit bool

	// live is the unplaced-item scratch list of packByBins.
	live []int

	// Scratch for the packing loops (all of dimension D).
	binRank, pos, key, bestKey []int
	rem                        vec.Vec

	yield     float64
	haveYield bool

	// stats counts packing work since the last TakeStats. Plain fields, not
	// atomics: a Solver is single-threaded by contract (parallel meta search
	// gives each worker its own Solver), and the pack loop must stay
	// allocation- and contention-free.
	stats Stats
}

// Stats counts a Solver's work: packing attempts, successful packs, and
// meta steps pruned by the StepFeasible bound before any strategy ran.
type Stats struct {
	Packs       uint64
	PacksSolved uint64
	StepsPruned uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Packs += o.Packs
	s.PacksSolved += o.PacksSolved
	s.StepsPruned += o.StepsPruned
}

// TakeStats returns the counters accumulated since the last call and resets
// them. Call between epochs from the goroutine that owns the Solver.
func (s *Solver) TakeStats() Stats {
	st := s.stats
	s.stats = Stats{}
	return st
}

// itemOrderEntry caches one item-order permutation. invariant entries stay
// valid at every yield; others are refreshed per binary-search step.
type itemOrderEntry struct {
	perm      []int
	invariant bool
	valid     bool
}

// NewSolver returns a Solver for p with all backing arrays allocated.
func NewSolver(p *core.Problem) *Solver {
	d := p.Dim()
	s := &Solver{
		p:          p,
		inst:       NewInstance(p, 0),
		caps:       make([]vec.Vec, p.NumNodes()),
		binOrders:  make(map[Order][]int),
		itemOrders: make(map[Order]*itemOrderEntry),
		elemFit:    make([]bool, p.NumServices()*p.NumNodes()),
		live:       make([]int, 0, p.NumServices()),
		binRank:    make([]int, d),
		pos:        make([]int, d),
		key:        make([]int, d),
		bestKey:    make([]int, d),
		rem:        vec.New(d),
		haveYield:  true, // inst is fresh at yield 0
	}
	s.capTotal = make([]float64, d)
	s.reqTotal = make([]float64, d)
	s.needTotal = make([]float64, d)
	for h := range s.caps {
		s.caps[h] = p.Nodes[h].Aggregate
		for dd := 0; dd < d; dd++ {
			s.capTotal[dd] += p.Nodes[h].Aggregate[dd]
		}
	}
	for j := range p.Services {
		svc := &p.Services[j]
		for dd := 0; dd < d; dd++ {
			s.reqTotal[dd] += svc.ReqAgg[dd]
			s.needTotal[dd] += svc.NeedAgg[dd]
		}
	}
	return s
}

// Problem returns the problem this solver packs.
func (s *Solver) Problem() *core.Problem { return s.p }

// Rebind re-points the solver at problem p after its service list changed,
// reusing every backing array whose capacity still suffices and every cache
// that does not depend on the service list. The platform must be unchanged:
// same node count, dimensionality and capacity vectors (value-checked).
// Under that contract the bin-order permutations and capacity totals carry
// over verbatim, while all per-service state — instance arena, demand
// totals, item-order entries with their yield-invariance proofs, item ranks
// and fit caches — is rebuilt for the new list. Typically p is the same
// *core.Problem the solver was constructed on with Services rewritten in
// place between epochs of an online cluster; a rebound solver behaves
// exactly like a freshly constructed one, at amortized zero allocation.
func (s *Solver) Rebind(p *core.Problem) {
	d := s.p.Dim()
	if p.NumNodes() != s.p.NumNodes() || p.Dim() != d {
		panic("vp: Rebind requires an unchanged platform shape")
	}
	for h := range s.caps {
		agg := p.Nodes[h].Aggregate
		for dd := 0; dd < d; dd++ {
			if s.caps[h][dd] != agg[dd] { //vmalloc:nondet-ok cache validity requires bit-identity with the cached capacities
				panic("vp: Rebind requires unchanged node capacities")
			}
		}
		s.caps[h] = agg
	}
	s.p = p
	s.inst.Rebind(p)
	j := p.NumServices()
	for dd := 0; dd < d; dd++ {
		s.reqTotal[dd], s.needTotal[dd] = 0, 0
	}
	for i := range p.Services {
		svc := &p.Services[i]
		for dd := 0; dd < d; dd++ {
			s.reqTotal[dd] += svc.ReqAgg[dd]
			s.needTotal[dd] += svc.NeedAgg[dd]
		}
	}
	s.haveEndpoints = false
	for o, e := range s.itemOrders { //vmalloc:nondet-ok per-entry permutations are rebuilt independently; result is order-free
		s.initItemOrderEntry(o, e)
	}
	if s.itemRank != nil {
		s.itemRankBuf = sliceutil.Grow(s.itemRankBuf, j*d)
		s.itemRank = sliceutil.Grow(s.itemRank, j)
		for i := 0; i < j; i++ {
			s.itemRank[i] = s.itemRankBuf[i*d : (i+1)*d]
		}
	}
	s.haveItemRank = false
	s.elemFit = sliceutil.Grow(s.elemFit, j*p.NumNodes())
	s.haveElemFit = false
	s.haveYield = false // force an instance Reset on the next prepare
}

// Pack attempts to pack every service at yield y under strategy c. The
// returned placement is a view into the solver's arena: it is valid only
// until the next Pack call, and callers that retain it must Clone it.
func (s *Solver) Pack(y float64, c Config) (core.Placement, bool) {
	return s.pack(nil, y, c)
}

// PackCtx is Pack with cooperative cancellation: the packing loops poll
// ctx.Done() once per placement decision and bail out with a failure as soon
// as it fires. Meta searches racing sibling strategies use this to stop the
// losers the moment one strategy packs the step.
func (s *Solver) PackCtx(ctx context.Context, y float64, c Config) (core.Placement, bool) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	return s.pack(done, y, c)
}

// prepare brings the arena to yield y: an O(J·D) refresh plus cache
// invalidation when the yield changed, or a load/placement clear when it
// did not.
func (s *Solver) prepare(y float64) {
	if !s.haveYield || s.yield != y { //vmalloc:nondet-ok cache key match requires bit-identity with the cached yield
		s.inst.Reset(y)
		s.yield, s.haveYield = y, true
		for _, e := range s.itemOrders { //vmalloc:nondet-ok only clears per-entry valid flags; result is order-free
			if !e.invariant {
				e.valid = false
			}
		}
		s.haveItemRank = false
		s.haveElemFit = false
	} else {
		s.inst.Clear()
	}
}

// fits is Instance.Fits with the elementary half served from the per-yield
// cache.
func (s *Solver) fits(j, h int) bool {
	if !s.elemFit[j*s.p.NumNodes()+h] {
		return false
	}
	n := &s.p.Nodes[h]
	return vec.AddFitsWithin(s.inst.Load[h], s.inst.ItemAgg[j], n.Aggregate, core.DefaultEpsilon)
}

// ensureElemFit fills the elementary-fit cache for the current yield.
func (s *Solver) ensureElemFit() {
	if s.haveElemFit {
		return
	}
	numNodes := s.p.NumNodes()
	for j := range s.inst.ItemElem {
		elem := s.inst.ItemElem[j]
		for h := 0; h < numNodes; h++ {
			s.elemFit[j*numNodes+h] = elem.LessEq(s.p.Nodes[h].Elementary, core.DefaultEpsilon)
		}
	}
	s.haveElemFit = true
}

// StepFeasible reports whether any packing strategy could possibly produce a
// complete placement at yield y. It checks two necessary conditions every
// complete placement satisfies under the Fits tolerance: the total item
// demand fits the total bin capacity per dimension, and every single item
// fits at least one empty bin. When either fails, all strategies of a meta
// step must fail, so the step can be declared unsuccessful in O(J·H·D)
// instead of running the full strategy roster — the cheap complement to the
// LP bracket bound for the yields inside the bracket. A true result promises
// nothing; a false result is exact (up to a conservative margin on the
// aggregate sums), so meta results stay bit-identical.
func (s *Solver) StepFeasible(y float64) bool {
	s.prepare(y)
	inst := s.inst
	numNodes := s.p.NumNodes()
	// Each bin's final per-dimension load may exceed its capacity by at most
	// DefaultEpsilon under Fits, so any packable instance keeps total demand
	// within H·eps of total capacity. The remaining terms absorb
	// floating-point summation error — the gap between what packing actually
	// accumulates (Σ fl(r+y·n)) and the precomputed reqTotal + y·needTotal —
	// scaled to the magnitude of the totals so large-valued problems (e.g.
	// capacities in KB) are never wrongly pruned, plus a small absolute
	// floor for near-zero scales.
	fpSlack := 64 * float64(s.p.NumServices()+2) * ulp
	for d, cap := range s.capTotal {
		margin := float64(numNodes)*core.DefaultEpsilon + 1e-9 +
			fpSlack*(cap+s.reqTotal[d]+s.needTotal[d])
		if s.reqTotal[d]+y*s.needTotal[d] > cap+margin {
			s.stats.StepsPruned++
			return false
		}
	}
	s.ensureElemFit()
	for j := range inst.ItemAgg {
		ok := false
		for h := 0; h < numNodes; h++ {
			if s.fits(j, h) {
				ok = true
				break
			}
		}
		if !ok {
			s.stats.StepsPruned++
			return false
		}
	}
	return true
}

func (s *Solver) pack(done <-chan struct{}, y float64, c Config) (core.Placement, bool) {
	s.stats.Packs++
	s.prepare(y)
	s.ensureElemFit()
	items := s.itemOrderPerm(c.ItemOrder)
	var pl core.Placement
	var ok bool
	switch c.Alg {
	case FirstFit:
		pl, ok = s.packFirstFit(done, items, c)
	case BestFit:
		pl, ok = s.packBestFit(done, items, c)
	case PermutationPack, ChoosePack:
		pl, ok = s.packByBins(done, items, c)
	default:
		panic("vp: unknown algorithm")
	}
	if ok {
		s.stats.PacksSolved++
	}
	return pl, ok
}

// binOrderPerm returns bin indices sorted by aggregate capacity under o,
// cached for the Solver's lifetime (capacities are yield-invariant).
func (s *Solver) binOrderPerm(o Order) []int {
	if perm, ok := s.binOrders[o]; ok {
		return perm
	}
	perm := o.SortInto(make([]int, len(s.caps)), s.caps)
	s.binOrders[o] = perm
	return perm
}

// itemOrderPerm returns item indices ordered by o over the current item
// aggregate vectors, shared by every strategy of the current step that uses
// the same order, and across steps when the order is yield-invariant.
func (s *Solver) itemOrderPerm(o Order) []int {
	e := s.itemOrders[o]
	if e == nil {
		e = s.newItemOrderEntry(o)
		s.itemOrders[o] = e
	}
	if !e.valid {
		o.SortInto(e.perm, s.inst.ItemAgg)
		e.valid = true
	}
	return e.perm
}

// newItemOrderEntry builds the cache entry for a first-seen item order,
// detecting yield invariance from the bracket endpoint permutations.
//
// Item vectors are r + y·n, so every scalar key that is a *linear* function
// of the vector (SUM) — and lexicographic comparison, whose per-dimension
// comparisons are linear — evolves linearly in y in exact arithmetic: two
// linear keys that do not cross order between y=0 and y=1 cannot cross
// anywhere inside the bracket. Floating point breaks pure linearity (the
// computed key fl(r + y·n) can wobble by a few ulps between endpoints), so
// endpoint agreement alone is NOT sufficient; an order is only marked
// invariant when every adjacent pair in the sorted permutation is separated
// by more than the maximum possible rounding wobble at both endpoints (or
// is bitwise-identical, hence tied at every yield). MAX, MAXRATIO and
// MAXDIFFERENCE are only piecewise linear in y and may genuinely dip
// between endpoints, so they are never treated as invariant.
func (s *Solver) newItemOrderEntry(o Order) *itemOrderEntry {
	e := &itemOrderEntry{}
	s.initItemOrderEntry(o, e)
	return e
}

// initItemOrderEntry (re)builds an order-cache entry against the solver's
// current service list, re-running invariance detection; Rebind re-inits
// every cached entry through here so stale permutations and stale invariance
// proofs can never leak across epochs.
func (s *Solver) initItemOrderEntry(o Order, e *itemOrderEntry) {
	j := s.p.NumServices()
	e.perm = sliceutil.Grow(e.perm, j)
	e.invariant, e.valid = false, false
	if o.None {
		o.SortInto(e.perm, s.inst.ItemAgg)
		e.invariant, e.valid = true, true
		return
	}
	if o.Metric == vec.MetricSum || o.Metric == vec.MetricLex {
		s.ensureEndpointVecs()
		s.permBuf = sliceutil.Grow(s.permBuf, j)
		permAt1 := s.permBuf
		o.SortInto(e.perm, s.reqVecs)
		o.SortInto(permAt1, s.demandVecs)
		if equalPerms(e.perm, permAt1) && s.orderYieldInvariant(o, e.perm) {
			e.invariant, e.valid = true, true
		}
	}
}

func equalPerms(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ulp is the float64 machine epsilon used to bound rounding wobble in the
// invariance margins.
const ulp = 0x1p-52

// servicesIdentical reports whether two services' aggregate requirement and
// need vectors are component-wise equal, in which case their item vectors
// are the result of identical computations at every yield.
func (s *Solver) servicesIdentical(a, b int) bool {
	sa, sb := &s.p.Services[a], &s.p.Services[b]
	for d := range sa.ReqAgg {
		if sa.ReqAgg[d] != sb.ReqAgg[d] || sa.NeedAgg[d] != sb.NeedAgg[d] { //vmalloc:nondet-ok comparator tie-break: exact equality is required for a deterministic total order
			return false
		}
	}
	return true
}

// orderYieldInvariant verifies, pair by adjacent pair of the sorted
// permutation, that the computed keys keep their strict order at every yield
// in [0,1]. For each non-identical pair the computed-key gap must exceed a
// conservative bound on the floating-point deviation of fl(r + y·n)-derived
// keys from their exact linear interpolation, at both bracket endpoints;
// exact linearity then pins the order everywhere inside. Computed ties
// between non-identical services fail the margin and correctly bail out:
// their true keys may differ and cross between the endpoints even when the
// rounded endpoint keys agree bitwise.
func (s *Solver) orderYieldInvariant(o Order, perm []int) bool {
	d := s.p.Dim()
	for t := 0; t+1 < len(perm); t++ {
		a, b := perm[t], perm[t+1]
		if s.servicesIdentical(a, b) {
			continue
		}
		var g0, g1, margin float64
		switch o.Metric {
		case vec.MetricSum:
			s0a, s0b := s.reqVecs[a].Sum(), s.reqVecs[b].Sum()
			s1a, s1b := s.demandVecs[a].Sum(), s.demandVecs[b].Sum()
			g0, g1 = s0b-s0a, s1b-s1a
			// Per-item key error: one rounding for y·n, one for r+·, plus
			// D-term accumulation — within (D+2)·ulp of the exact sum, which
			// is itself bounded by the yield-1 sum (all entries
			// non-negative). Factor 4 for slack.
			margin = 4 * float64(d+2) * ulp * (s1a + s1b)
		case vec.MetricLex:
			// Dimensions where both services carry bitwise-equal (r, n)
			// compute bitwise-equal components at every yield; the first
			// differing dimension must therefore decide the comparison, with
			// margin, at both endpoints.
			dd := 0
			sa, sb := &s.p.Services[a], &s.p.Services[b]
			for dd < d && sa.ReqAgg[dd] == sb.ReqAgg[dd] && sa.NeedAgg[dd] == sb.NeedAgg[dd] { //vmalloc:nondet-ok comparator tie-break: exact equality is required for a deterministic total order
				dd++
			}
			if dd == d {
				continue // identical (handled above, kept for safety)
			}
			g0 = s.reqVecs[b][dd] - s.reqVecs[a][dd]
			g1 = s.demandVecs[b][dd] - s.demandVecs[a][dd]
			// Component error: two roundings in fl(r + y·n), bounded by the
			// yield-1 component values. Factor 8 for slack.
			margin = 8 * ulp * (s.demandVecs[a][dd] + s.demandVecs[b][dd])
		default:
			return false
		}
		if o.Descending {
			g0, g1 = -g0, -g1
		}
		if g0 <= margin || g1 <= margin {
			return false
		}
	}
	return true
}

// ensureEndpointVecs lazily builds the item vectors at the bracket endpoints
// y=0 (requirements) and y=1 (requirements plus needs), reusing the backing
// buffer across Rebind cycles.
func (s *Solver) ensureEndpointVecs() {
	if s.haveEndpoints {
		return
	}
	d := s.p.Dim()
	j := s.p.NumServices()
	s.reqVecs = sliceutil.Grow(s.reqVecs, j)
	s.demandVecs = sliceutil.Grow(s.demandVecs, j)
	s.endpointBuf = sliceutil.Grow(s.endpointBuf, j*d)
	for i := 0; i < j; i++ {
		svc := &s.p.Services[i]
		s.reqVecs[i] = svc.ReqAgg
		dem := vec.Vec(s.endpointBuf[i*d : (i+1)*d])
		for dd := range dem {
			dem[dd] = svc.ReqAgg[dd] + 1*svc.NeedAgg[dd]
		}
		s.demandVecs[i] = dem
	}
	s.haveEndpoints = true
}

// itemRanks returns the per-item descending dimension rankings for the
// current yield, computing them once and sharing them across every
// Permutation-/Choose-Pack strategy of the step.
func (s *Solver) itemRanks() [][]int {
	if s.haveItemRank {
		return s.itemRank
	}
	d := s.p.Dim()
	if s.itemRank == nil {
		j := s.p.NumServices()
		s.itemRank = make([][]int, j)
		s.itemRankBuf = make([]int, j*d)
		for i := range s.itemRank {
			s.itemRank[i] = s.itemRankBuf[i*d : (i+1)*d]
		}
	}
	for i := range s.itemRank {
		vec.RankInto(s.itemRank[i], s.inst.ItemAgg[i], true)
	}
	s.haveItemRank = true
	return s.itemRank
}

// canceled reports whether the cancellation channel has fired.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// packFirstFit places each item in the first bin (in bin order) that fits.
func (s *Solver) packFirstFit(done <-chan struct{}, items []int, c Config) (core.Placement, bool) {
	inst := s.inst
	bins := s.binOrderPerm(c.BinOrder)
	for _, j := range items {
		if canceled(done) {
			return nil, false
		}
		ok := false
		for _, h := range bins {
			if s.fits(j, h) {
				inst.Place(j, h)
				ok = true
				break
			}
		}
		if !ok {
			return inst.Placement, false
		}
	}
	return inst.Placement, inst.Done()
}

// packBestFit places each item in the fullest feasible bin: greatest load
// sum in the homogeneous variant, least remaining capacity sum in the
// heterogeneous variant.
func (s *Solver) packBestFit(done <-chan struct{}, items []int, c Config) (core.Placement, bool) {
	inst := s.inst
	numNodes := s.p.NumNodes()
	for _, j := range items {
		if canceled(done) {
			return nil, false
		}
		best, found := -1, false
		var bestScore float64
		for h := 0; h < numNodes; h++ {
			if !s.fits(j, h) {
				continue
			}
			var score float64
			if c.Hetero {
				score = -inst.remainingSum(h)
			} else {
				score = inst.Load[h].Sum()
			}
			if !found || score > bestScore {
				best, bestScore, found = h, score, true
			}
		}
		if !found {
			return inst.Placement, false
		}
		inst.Place(j, best)
	}
	return inst.Placement, inst.Done()
}

// packByBins runs the Permutation-Pack / Choose-Pack loop: for each bin in
// order, repeatedly select the unplaced fitting item whose dimension
// permutation best complements the bin, until nothing more fits.
func (s *Solver) packByBins(done <-chan struct{}, items []int, c Config) (core.Placement, bool) {
	inst := s.inst
	d := s.p.Dim()
	w := c.Window
	if w <= 0 || w > d {
		w = d
	}
	bins := s.binOrderPerm(c.BinOrder)
	ranks := s.itemRanks()
	// live holds the unplaced items in item order; placements compact it so
	// every selection scan touches only candidates still in play. Iteration
	// order (hence tie-breaking) is exactly the placed-item-skipping scan of
	// the naive reference.
	live := append(s.live[:0], items...)
	for _, h := range bins {
		for {
			if canceled(done) {
				return nil, false
			}
			// Rank the bin's dimensions: ascending load (homogeneous) or,
			// equivalently for the heterogeneous variant, descending
			// remaining capacity.
			if c.Hetero {
				inst.remainingInto(s.rem, h)
				vec.RankInto(s.binRank, s.rem, true)
			} else {
				vec.RankInto(s.binRank, inst.Load[h], false)
			}
			vec.RankPositionsInto(s.pos, s.binRank)
			best, bestIdx := -1, -1
			for idx, j := range live {
				if !s.fits(j, h) {
					continue
				}
				ir := ranks[j]
				for i := 0; i < d; i++ {
					s.key[i] = s.pos[ir[i]]
				}
				if c.Alg == ChoosePack {
					// The first within-window item in item order wins — the
					// scan can stop there; with none in the window, fall back
					// to lexicographic keys.
					if vec.KeyWithinWindow(s.key, w) {
						best, bestIdx = j, idx
						copy(s.bestKey, s.key)
						break
					}
					if best == -1 || vec.CompareKeys(s.key, s.bestKey, w) < 0 {
						best, bestIdx = j, idx
						copy(s.bestKey, s.key)
					}
				} else if best == -1 || vec.CompareKeys(s.key, s.bestKey, w) < 0 {
					best, bestIdx = j, idx
					copy(s.bestKey, s.key)
				}
			}
			if best == -1 {
				break
			}
			inst.Place(best, h)
			live = append(live[:bestIdx], live[bestIdx+1:]...)
		}
	}
	return inst.Placement, inst.Done()
}
