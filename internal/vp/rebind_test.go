package vp

import (
	"math/rand"
	"testing"

	"vmalloc/internal/core"
)

// churn rewrites p's service list in place to a new random set of size j,
// reusing the slice — the mutation pattern of an online cluster between
// epochs.
func churn(rng *rand.Rand, p *core.Problem, j int) {
	fresh := randomProblem(rng, 1, j)
	p.Services = append(p.Services[:0], fresh.Services...)
}

// TestRebindMatchesFreshSolver drives one persistent solver through many
// epochs of service churn (growing and shrinking J) and checks that every
// meta search result is bit-identical to a freshly constructed solver on a
// clone of the same problem: same Solved flag, same MinYield, same
// placement. This is the contract the online engine relies on to reuse one
// arena across epochs.
func TestRebindMatchesFreshSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 6, 20)
	configs := equivalenceConfigs()
	s := NewSolver(p)
	sizes := []int{20, 35, 12, 48, 1, 30, 64, 27}
	for epoch, j := range sizes {
		if epoch > 0 {
			churn(rng, p, j)
			s.Rebind(p)
		}
		got := MetaConfigsSolver(s, configs, SearchOptions{Tol: 1e-3})
		want := MetaConfigsOpt(p.Clone(), configs, SearchOptions{Tol: 1e-3})
		if got.Solved != want.Solved {
			t.Fatalf("epoch %d (J=%d): solved=%v, fresh solver says %v", epoch, j, got.Solved, want.Solved)
		}
		if got.MinYield != want.MinYield {
			t.Fatalf("epoch %d (J=%d): MinYield %v, fresh solver %v", epoch, j, got.MinYield, want.MinYield)
		}
		for i := range got.Placement {
			if got.Placement[i] != want.Placement[i] {
				t.Fatalf("epoch %d (J=%d): placement[%d]=%d, fresh solver %d",
					epoch, j, i, got.Placement[i], want.Placement[i])
			}
		}
	}
}

// TestRebindPackMatchesFreshPack checks single Pack calls per strategy and
// yield after rebinding, against fresh solvers.
func TestRebindPackMatchesFreshPack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 5, 16)
	s := NewSolver(p)
	for epoch := 0; epoch < 6; epoch++ {
		if epoch > 0 {
			churn(rng, p, 10+rng.Intn(30))
			s.Rebind(p)
		}
		fresh := NewSolver(p.Clone())
		for _, c := range equivalenceConfigs() {
			for _, y := range []float64{0, 0.37, 0.81, 1} {
				gotPl, gotOK := s.Pack(y, c)
				wantPl, wantOK := fresh.Pack(y, c)
				if gotOK != wantOK {
					t.Fatalf("epoch %d %v y=%v: ok=%v fresh=%v", epoch, c, y, gotOK, wantOK)
				}
				for i := range wantPl {
					if gotPl[i] != wantPl[i] {
						t.Fatalf("epoch %d %v y=%v: placement[%d]=%d fresh=%d",
							epoch, c, y, i, gotPl[i], wantPl[i])
					}
				}
			}
		}
	}
}

// TestRebindStepFeasibleMatchesFresh pins the pruning path: a rebound
// solver must prune exactly the yields a fresh solver prunes.
func TestRebindStepFeasibleMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomProblem(rng, 4, 12)
	s := NewSolver(p)
	for epoch := 0; epoch < 5; epoch++ {
		churn(rng, p, 8+rng.Intn(24))
		s.Rebind(p)
		fresh := NewSolver(p.Clone())
		for y := 0.0; y <= 1.0; y += 0.05 {
			if got, want := s.StepFeasible(y), fresh.StepFeasible(y); got != want {
				t.Fatalf("epoch %d y=%v: StepFeasible=%v fresh=%v", epoch, y, got, want)
			}
		}
	}
}

func TestRebindRejectsChangedPlatform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 4, 8)
	s := NewSolver(p)

	q := randomProblem(rng, 5, 8) // different node count
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Rebind accepted a different node count")
			}
		}()
		s.Rebind(q)
	}()

	r := p.Clone()
	r.Nodes[0].Aggregate[0] *= 1.5 // same shape, different capacity
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Rebind accepted changed capacities")
			}
		}()
		s.Rebind(r)
	}()
}
