// Package vp implements the vector-packing machinery of paper §3.5: the
// reduction from minimum-yield maximization to heterogeneous vector bin
// packing via binary search on the yield, the First-Fit, Best-Fit,
// Permutation-Pack and Choose-Pack heuristics, the eleven item/bin sorting
// strategies, and the METAVP combination algorithm.
//
// At a fixed yield Y every service becomes an item with aggregate vector
// r^a + Y·n^a and elementary vector r^e + Y·n^e; a bin accepts an item when
// the elementary vector fits within the node's elementary capacity and the
// bin's aggregate load plus the item's aggregate vector fits within the
// node's aggregate capacity.
package vp

import (
	"fmt"
	"sort"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// DefaultTolerance is the binary-search stopping threshold used in the
// paper's simulations.
const DefaultTolerance = 1e-4

// Order is one of the eleven vector sorting strategies: one of the five
// metrics ascending or descending, or no sorting at all.
type Order struct {
	// None leaves vectors in natural order; Metric/Descending are ignored.
	None       bool
	Metric     vec.Metric
	Descending bool
}

// NoOrder is the "do not sort" strategy.
var NoOrder = Order{None: true}

// String names the order like "DESC(SUM)" or "NONE".
func (o Order) String() string {
	if o.None {
		return "NONE"
	}
	dir := "ASC"
	if o.Descending {
		dir = "DESC"
	}
	return fmt.Sprintf("%s(%s)", dir, o.Metric)
}

// AllOrders returns the 11 sorting strategies of §3.5: 5 metrics × 2
// directions plus NONE.
func AllOrders() []Order {
	out := []Order{NoOrder}
	for _, m := range vec.Metrics() {
		out = append(out, Order{Metric: m, Descending: false})
		out = append(out, Order{Metric: m, Descending: true})
	}
	return out
}

// Sort returns the indices 0..n-1 ordered by o over the given vectors,
// stable with respect to natural order.
func (o Order) Sort(vectors []vec.Vec) []int {
	idx := make([]int, len(vectors))
	for i := range idx {
		idx[i] = i
	}
	if o.None {
		return idx
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c := o.Metric.Compare(vectors[idx[a]], vectors[idx[b]])
		if o.Descending {
			return c > 0
		}
		return c < 0
	})
	return idx
}

// Instance is a packing instance: the problem frozen at a common yield.
type Instance struct {
	P     *core.Problem
	Yield float64
	// ItemAgg[j] = r^a_j + Y·n^a_j, ItemElem[j] = r^e_j + Y·n^e_j.
	ItemAgg  []vec.Vec
	ItemElem []vec.Vec
	// Load[h] is the current aggregate load of bin h.
	Load []vec.Vec
	// placed[j] reports whether item j has been placed.
	placed []bool
	// Placement is the partial placement built so far.
	Placement core.Placement
	remaining int
}

// NewInstance freezes problem p at yield y.
func NewInstance(p *core.Problem, y float64) *Instance {
	inst := &Instance{
		P:         p,
		Yield:     y,
		ItemAgg:   make([]vec.Vec, p.NumServices()),
		ItemElem:  make([]vec.Vec, p.NumServices()),
		Load:      make([]vec.Vec, p.NumNodes()),
		placed:    make([]bool, p.NumServices()),
		Placement: core.NewPlacement(p.NumServices()),
		remaining: p.NumServices(),
	}
	for j := range p.Services {
		s := &p.Services[j]
		inst.ItemAgg[j] = s.AggAt(y)
		inst.ItemElem[j] = s.ElemAt(y)
	}
	for h := range inst.Load {
		inst.Load[h] = vec.New(p.Dim())
	}
	return inst
}

// Fits reports whether item j currently fits in bin h.
func (inst *Instance) Fits(j, h int) bool {
	n := &inst.P.Nodes[h]
	if !inst.ItemElem[j].LessEq(n.Elementary, core.DefaultEpsilon) {
		return false
	}
	return inst.Load[h].Add(inst.ItemAgg[j]).LessEq(n.Aggregate, core.DefaultEpsilon)
}

// Place commits item j to bin h.
func (inst *Instance) Place(j, h int) {
	if inst.placed[j] {
		panic("vp: item placed twice")
	}
	inst.placed[j] = true
	inst.Placement[j] = h
	inst.Load[h].AccumAdd(inst.ItemAgg[j])
	inst.remaining--
}

// Done reports whether every item is placed.
func (inst *Instance) Done() bool { return inst.remaining == 0 }

// Remaining returns the remaining capacity vector of bin h.
func (inst *Instance) Remaining(h int) vec.Vec {
	return inst.P.Nodes[h].Aggregate.Sub(inst.Load[h])
}

// Algorithm identifies one of the packing heuristics.
type Algorithm int

const (
	// FirstFit places each item in the first bin (in bin order) that fits.
	FirstFit Algorithm = iota
	// BestFit places each item in the fullest bin that fits: greatest load
	// sum in the homogeneous variant, least remaining capacity sum in the
	// heterogeneous variant.
	BestFit
	// PermutationPack fills bin by bin, choosing items whose dimension
	// ranking best complements the bin's (§3.5.2), using the improved
	// O(J²D) key-mapping implementation.
	PermutationPack
	// ChoosePack is Permutation-Pack with the window match relaxed to a set
	// test: an item qualifies if its top-w dimensions land in the bin's
	// top-w positions, regardless of order.
	ChoosePack
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case FirstFit:
		return "FF"
	case BestFit:
		return "BF"
	case PermutationPack:
		return "PP"
	case ChoosePack:
		return "CP"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config fully specifies one packing strategy.
type Config struct {
	Alg       Algorithm
	ItemOrder Order
	// BinOrder applies to FirstFit, PermutationPack and ChoosePack. BestFit
	// imposes its own dynamic bin selection and ignores it.
	BinOrder Order
	// Hetero switches BestFit and PermutationPack/ChoosePack to the
	// heterogeneity-aware variants (§3.5.4): bin fullness and dimension
	// ranking are measured on remaining capacity instead of load.
	Hetero bool
	// Window is the Permutation/Choose-Pack window size w; 0 means all D
	// dimensions.
	Window int
}

// String names the strategy, e.g. "HVP-PP[items=DESC(MAX),bins=ASC(SUM)]".
func (c Config) String() string {
	prefix := "VP"
	if c.Hetero {
		prefix = "HVP"
	}
	if c.Alg == BestFit {
		return fmt.Sprintf("%s-%s[items=%s]", prefix, c.Alg, c.ItemOrder)
	}
	return fmt.Sprintf("%s-%s[items=%s,bins=%s]", prefix, c.Alg, c.ItemOrder, c.BinOrder)
}

// Pack attempts to pack every service at yield y under strategy c, returning
// the placement and whether it is complete.
func Pack(p *core.Problem, y float64, c Config) (core.Placement, bool) {
	inst := NewInstance(p, y)
	items := c.ItemOrder.Sort(inst.ItemAgg)

	switch c.Alg {
	case FirstFit:
		bins := binOrder(p, c.BinOrder)
		for _, j := range items {
			ok := false
			for _, h := range bins {
				if inst.Fits(j, h) {
					inst.Place(j, h)
					ok = true
					break
				}
			}
			if !ok {
				return inst.Placement, false
			}
		}
	case BestFit:
		for _, j := range items {
			best, found := -1, false
			var bestScore float64
			for h := 0; h < p.NumNodes(); h++ {
				if !inst.Fits(j, h) {
					continue
				}
				var score float64
				if c.Hetero {
					// Least total remaining capacity wins.
					score = -inst.Remaining(h).Sum()
				} else {
					// Greatest total load wins.
					score = inst.Load[h].Sum()
				}
				if !found || score > bestScore {
					best, bestScore, found = h, score, true
				}
			}
			if !found {
				return inst.Placement, false
			}
			inst.Place(j, best)
		}
	case PermutationPack, ChoosePack:
		packByBins(inst, items, c)
	default:
		panic("vp: unknown algorithm")
	}
	return inst.Placement, inst.Done()
}

// binOrder returns bin indices sorted by aggregate capacity under o.
func binOrder(p *core.Problem, o Order) []int {
	caps := make([]vec.Vec, p.NumNodes())
	for h := range caps {
		caps[h] = p.Nodes[h].Aggregate
	}
	return o.Sort(caps)
}

// packByBins runs the Permutation-Pack / Choose-Pack loop: for each bin in
// order, repeatedly select the unplaced fitting item whose dimension
// permutation best complements the bin, until nothing more fits.
func packByBins(inst *Instance, items []int, c Config) {
	p := inst.P
	d := p.Dim()
	w := c.Window
	if w <= 0 || w > d {
		w = d
	}
	bins := binOrder(p, c.BinOrder)
	// Item dimension rankings are static for the whole pack.
	itemRank := make([][]int, p.NumServices())
	for _, j := range items {
		itemRank[j] = vec.Rank(inst.ItemAgg[j], true)
	}
	for _, h := range bins {
		for {
			// Rank the bin's dimensions: ascending load (homogeneous) or,
			// equivalently for the heterogeneous variant, descending
			// remaining capacity.
			var binRank []int
			if c.Hetero {
				binRank = vec.Rank(inst.Remaining(h), true)
			} else {
				binRank = vec.Rank(inst.Load[h], false)
			}
			best := -1
			var bestKey []int
			bestWithin := false
			for _, j := range items {
				if inst.placed[j] || !inst.Fits(j, h) {
					continue
				}
				key := vec.PermutationKey(binRank, itemRank[j])
				if c.Alg == ChoosePack {
					// The first within-window item in item order wins; with
					// none in the window, fall back to lexicographic keys.
					if bestWithin {
						continue
					}
					if vec.KeyWithinWindow(key, w) {
						best, bestKey, bestWithin = j, key, true
					} else if best == -1 || vec.CompareKeys(key, bestKey, w) < 0 {
						best, bestKey = j, key
					}
				} else if best == -1 || vec.CompareKeys(key, bestKey, w) < 0 {
					best, bestKey = j, key
				}
			}
			if best == -1 {
				break
			}
			inst.Place(best, h)
		}
	}
}

// TryFunc attempts a packing at a yield, returning a complete placement and
// success.
type TryFunc func(y float64) (core.Placement, bool)

// SearchMaxYield performs the paper's binary search for the largest yield at
// which try succeeds, with the given tolerance (DefaultTolerance if <= 0).
// The returned result evaluates the best placement found, so the reported
// minimum yield can slightly exceed the search's lower bound.
func SearchMaxYield(p *core.Problem, tol float64, try TryFunc) *core.Result {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	// Yield 1 first: saturated success short-circuits the search.
	if pl, ok := try(1); ok {
		return core.EvaluatePlacement(p, pl)
	}
	bestPl, ok := try(0)
	if !ok {
		return &core.Result{}
	}
	lo, hi := 0.0, 1.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if pl, ok := try(mid); ok {
			lo, bestPl = mid, pl
		} else {
			hi = mid
		}
	}
	return core.EvaluatePlacement(p, bestPl)
}

// Solve runs one packing strategy inside the yield binary search.
func Solve(p *core.Problem, c Config, tol float64) *core.Result {
	return SearchMaxYield(p, tol, func(y float64) (core.Placement, bool) {
		return Pack(p, y, c)
	})
}

// MetaVPConfigs returns the 33 homogeneous strategies of METAVP (§3.5.3):
// {FF, BF, PP} × 11 item orders, natural bin order.
func MetaVPConfigs() []Config {
	var out []Config
	for _, alg := range []Algorithm{FirstFit, BestFit, PermutationPack} {
		for _, io := range AllOrders() {
			out = append(out, Config{Alg: alg, ItemOrder: io, BinOrder: NoOrder})
		}
	}
	return out
}

// MetaVP runs the METAVP algorithm: at each binary-search step, all 33
// homogeneous strategies are tried until one succeeds.
func MetaVP(p *core.Problem, tol float64) *core.Result {
	return MetaConfigs(p, MetaVPConfigs(), tol)
}

// MetaConfigs is the generic meta-algorithm over an arbitrary strategy set:
// a binary-search step succeeds as soon as any strategy packs the instance.
func MetaConfigs(p *core.Problem, configs []Config, tol float64) *core.Result {
	return SearchMaxYield(p, tol, func(y float64) (core.Placement, bool) {
		for _, c := range configs {
			if pl, ok := Pack(p, y, c); ok {
				return pl, true
			}
		}
		return nil, false
	})
}
