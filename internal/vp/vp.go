// Package vp implements the vector-packing machinery of paper §3.5: the
// reduction from minimum-yield maximization to heterogeneous vector bin
// packing via binary search on the yield, the First-Fit, Best-Fit,
// Permutation-Pack and Choose-Pack heuristics, the eleven item/bin sorting
// strategies, and the METAVP combination algorithm.
//
// At a fixed yield Y every service becomes an item with aggregate vector
// r^a + Y·n^a and elementary vector r^e + Y·n^e; a bin accepts an item when
// the elementary vector fits within the node's elementary capacity and the
// bin's aggregate load plus the item's aggregate vector fits within the
// node's aggregate capacity.
package vp

import (
	"fmt"
	"sort"

	"vmalloc/internal/core"
	"vmalloc/internal/sliceutil"
	"vmalloc/internal/vec"
)

// DefaultTolerance is the binary-search stopping threshold used in the
// paper's simulations.
const DefaultTolerance = 1e-4

// Order is one of the eleven vector sorting strategies: one of the five
// metrics ascending or descending, or no sorting at all.
type Order struct {
	// None leaves vectors in natural order; Metric/Descending are ignored.
	None       bool
	Metric     vec.Metric
	Descending bool
}

// NoOrder is the "do not sort" strategy.
var NoOrder = Order{None: true}

// String names the order like "DESC(SUM)" or "NONE".
func (o Order) String() string {
	if o.None {
		return "NONE"
	}
	dir := "ASC"
	if o.Descending {
		dir = "DESC"
	}
	return fmt.Sprintf("%s(%s)", dir, o.Metric)
}

// AllOrders returns the 11 sorting strategies of §3.5: 5 metrics × 2
// directions plus NONE.
func AllOrders() []Order {
	out := []Order{NoOrder}
	for _, m := range vec.Metrics() {
		out = append(out, Order{Metric: m, Descending: false})
		out = append(out, Order{Metric: m, Descending: true})
	}
	return out
}

// Sort returns the indices 0..n-1 ordered by o over the given vectors,
// stable with respect to natural order.
func (o Order) Sort(vectors []vec.Vec) []int {
	return o.SortInto(make([]int, len(vectors)), vectors)
}

// SortInto is Sort writing the permutation into idx (which must have one
// entry per vector) instead of allocating, so solvers can reuse permutation
// buffers across binary-search steps.
func (o Order) SortInto(idx []int, vectors []vec.Vec) []int {
	if len(idx) != len(vectors) {
		panic(fmt.Sprintf("vp: order buffer has %d entries, want %d", len(idx), len(vectors)))
	}
	for i := range idx {
		idx[i] = i
	}
	if o.None {
		return idx
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c := o.Metric.Compare(vectors[idx[a]], vectors[idx[b]])
		if o.Descending {
			return c > 0
		}
		return c < 0
	})
	return idx
}

// Instance is a packing instance: the problem frozen at a common yield. All
// item/bin vectors are views into flat backing arrays allocated once, so an
// Instance can be refreshed at a new yield with Reset in O(J·D) without
// reallocating.
type Instance struct {
	P     *core.Problem
	Yield float64
	// ItemAgg[j] = r^a_j + Y·n^a_j, ItemElem[j] = r^e_j + Y·n^e_j.
	ItemAgg  []vec.Vec
	ItemElem []vec.Vec
	// Load[h] is the current aggregate load of bin h.
	Load []vec.Vec
	// placed[j] reports whether item j has been placed.
	placed []bool
	// Placement is the partial placement built so far.
	Placement core.Placement
	remaining int
	// Flat backing arrays behind ItemAgg/ItemElem/Load.
	aggBuf, elemBuf, loadBuf []float64
}

// NewInstance freezes problem p at yield y.
func NewInstance(p *core.Problem, y float64) *Instance {
	d := p.Dim()
	j, h := p.NumServices(), p.NumNodes()
	inst := &Instance{
		P:         p,
		ItemAgg:   make([]vec.Vec, j),
		ItemElem:  make([]vec.Vec, j),
		Load:      make([]vec.Vec, h),
		placed:    make([]bool, j),
		Placement: core.NewPlacement(j),
		aggBuf:    make([]float64, j*d),
		elemBuf:   make([]float64, j*d),
		loadBuf:   make([]float64, h*d),
	}
	for i := range inst.ItemAgg {
		inst.ItemAgg[i] = vec.Vec(inst.aggBuf[i*d : (i+1)*d])
		inst.ItemElem[i] = vec.Vec(inst.elemBuf[i*d : (i+1)*d])
	}
	for i := range inst.Load {
		inst.Load[i] = vec.Vec(inst.loadBuf[i*d : (i+1)*d])
	}
	inst.Reset(y)
	return inst
}

// Reset refreshes the instance at a new yield: item vectors are recomputed
// in place and all placement state is cleared. No memory is allocated.
func (inst *Instance) Reset(y float64) {
	inst.Yield = y
	for j := range inst.P.Services {
		s := &inst.P.Services[j]
		agg, elem := inst.ItemAgg[j], inst.ItemElem[j]
		for d := range agg {
			agg[d] = s.ReqAgg[d] + y*s.NeedAgg[d]
			elem[d] = s.ReqElem[d] + y*s.NeedElem[d]
		}
	}
	inst.Clear()
}

// Rebind re-points the instance at p after its service list changed, reusing
// the flat backing arrays whenever their capacity suffices (growth is
// amortized ×2, so steady-state online churn allocates nothing). The node
// count and dimensionality must be unchanged. Item vectors and placement
// state are left stale: callers must Reset before packing.
func (inst *Instance) Rebind(p *core.Problem) {
	d := p.Dim()
	j := p.NumServices()
	inst.P = p
	inst.aggBuf = sliceutil.Grow(inst.aggBuf, j*d)
	inst.elemBuf = sliceutil.Grow(inst.elemBuf, j*d)
	inst.ItemAgg = sliceutil.Grow(inst.ItemAgg, j)
	inst.ItemElem = sliceutil.Grow(inst.ItemElem, j)
	for i := 0; i < j; i++ {
		inst.ItemAgg[i] = vec.Vec(inst.aggBuf[i*d : (i+1)*d])
		inst.ItemElem[i] = vec.Vec(inst.elemBuf[i*d : (i+1)*d])
	}
	inst.placed = sliceutil.Grow(inst.placed, j)
	inst.Placement = sliceutil.Grow(inst.Placement, j)
}

// Clear empties every bin, keeping the frozen yield and item vectors: the
// fast path for retrying a different strategy at the same yield.
func (inst *Instance) Clear() {
	for i := range inst.loadBuf {
		inst.loadBuf[i] = 0
	}
	for j := range inst.placed {
		inst.placed[j] = false
		inst.Placement[j] = core.Unplaced
	}
	inst.remaining = len(inst.placed)
}

// Fits reports whether item j currently fits in bin h. It is called inside
// every packing inner loop and must not allocate.
func (inst *Instance) Fits(j, h int) bool {
	n := &inst.P.Nodes[h]
	if !inst.ItemElem[j].LessEq(n.Elementary, core.DefaultEpsilon) {
		return false
	}
	return vec.AddFitsWithin(inst.Load[h], inst.ItemAgg[j], n.Aggregate, core.DefaultEpsilon)
}

// Place commits item j to bin h.
func (inst *Instance) Place(j, h int) {
	if inst.placed[j] {
		panic("vp: item placed twice")
	}
	inst.placed[j] = true
	inst.Placement[j] = h
	inst.Load[h].AccumAdd(inst.ItemAgg[j])
	inst.remaining--
}

// Done reports whether every item is placed.
func (inst *Instance) Done() bool { return inst.remaining == 0 }

// Remaining returns the remaining capacity vector of bin h.
func (inst *Instance) Remaining(h int) vec.Vec {
	return inst.P.Nodes[h].Aggregate.Sub(inst.Load[h])
}

// remainingInto writes the remaining capacity of bin h into out.
func (inst *Instance) remainingInto(out vec.Vec, h int) {
	cap, load := inst.P.Nodes[h].Aggregate, inst.Load[h]
	for d := range out {
		out[d] = cap[d] - load[d]
	}
}

// remainingSum returns the summed remaining capacity of bin h; vec.SumDiff
// keeps heterogeneous Best-Fit tie-breaking bit-identical to the allocating
// Remaining(h).Sum() formulation.
func (inst *Instance) remainingSum(h int) float64 {
	return vec.SumDiff(inst.P.Nodes[h].Aggregate, inst.Load[h])
}

// Algorithm identifies one of the packing heuristics.
type Algorithm int

const (
	// FirstFit places each item in the first bin (in bin order) that fits.
	FirstFit Algorithm = iota
	// BestFit places each item in the fullest bin that fits: greatest load
	// sum in the homogeneous variant, least remaining capacity sum in the
	// heterogeneous variant.
	BestFit
	// PermutationPack fills bin by bin, choosing items whose dimension
	// ranking best complements the bin's (§3.5.2), using the improved
	// O(J²D) key-mapping implementation.
	PermutationPack
	// ChoosePack is Permutation-Pack with the window match relaxed to a set
	// test: an item qualifies if its top-w dimensions land in the bin's
	// top-w positions, regardless of order.
	ChoosePack
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case FirstFit:
		return "FF"
	case BestFit:
		return "BF"
	case PermutationPack:
		return "PP"
	case ChoosePack:
		return "CP"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config fully specifies one packing strategy.
type Config struct {
	Alg       Algorithm
	ItemOrder Order
	// BinOrder applies to FirstFit, PermutationPack and ChoosePack. BestFit
	// imposes its own dynamic bin selection and ignores it.
	BinOrder Order
	// Hetero switches BestFit and PermutationPack/ChoosePack to the
	// heterogeneity-aware variants (§3.5.4): bin fullness and dimension
	// ranking are measured on remaining capacity instead of load.
	Hetero bool
	// Window is the Permutation/Choose-Pack window size w; 0 means all D
	// dimensions.
	Window int
}

// String names the strategy, e.g. "HVP-PP[items=DESC(MAX),bins=ASC(SUM)]".
func (c Config) String() string {
	prefix := "VP"
	if c.Hetero {
		prefix = "HVP"
	}
	if c.Alg == BestFit {
		return fmt.Sprintf("%s-%s[items=%s]", prefix, c.Alg, c.ItemOrder)
	}
	return fmt.Sprintf("%s-%s[items=%s,bins=%s]", prefix, c.Alg, c.ItemOrder, c.BinOrder)
}

// Pack attempts to pack every service at yield y under strategy c, returning
// the placement and whether it is complete. It is the one-shot convenience
// front-end; callers packing the same problem repeatedly (binary-search
// steps, meta-strategy rosters) should hold a Solver, which reuses all
// scratch state and sort permutations across calls.
func Pack(p *core.Problem, y float64, c Config) (core.Placement, bool) {
	return NewSolver(p).Pack(y, c)
}

// TryFunc attempts a packing at a yield, returning a complete placement and
// success. The placement only needs to stay valid until the next invocation
// of the same TryFunc: searches copy any placement they retain, so solvers
// may return views into reused scratch.
type TryFunc func(y float64) (core.Placement, bool)

// SearchOptions tunes SearchMaxYieldOpt.
type SearchOptions struct {
	// Tol is the binary-search stopping threshold (DefaultTolerance if <= 0).
	Tol float64
	// UpperBound, when non-nil, is consulted once per search for an a-priori
	// upper bound on the achievable yield — typically the LP relaxation
	// bound (LPBOUND, relax.UpperBound), which every integral solution
	// respects. A bound below 1 shrinks the initial bracket to [0, bound]
	// before any packing runs. Errors fall back to the unbounded bracket; a
	// negative bound (infeasible relaxation) collapses the bracket to the
	// single probe y=0.
	UpperBound func(p *core.Problem) (float64, error)
}

// SearchMaxYield performs the paper's binary search for the largest yield at
// which try succeeds, with the given tolerance (DefaultTolerance if <= 0).
// The returned result evaluates the best placement found, so the reported
// minimum yield can slightly exceed the search's lower bound.
func SearchMaxYield(p *core.Problem, tol float64, try TryFunc) *core.Result {
	return SearchMaxYieldOpt(p, SearchOptions{Tol: tol}, try)
}

// SearchMaxYieldOpt is SearchMaxYield with an optional a-priori upper bound
// shrinking the initial bracket. With no bound the probe sequence is exactly
// the classic search: try 1, try 0, then bisect [0, 1].
func SearchMaxYieldOpt(p *core.Problem, opts SearchOptions, try TryFunc) *core.Result {
	tol := opts.Tol
	if tol <= 0 {
		tol = DefaultTolerance
	}
	hi := 1.0
	if opts.UpperBound != nil {
		if ub, err := opts.UpperBound(p); err == nil && ub < hi {
			if ub < 0 {
				ub = 0
			}
			hi = ub
		}
	}
	// The bracket top first: success there is optimal (up to the bound) and
	// short-circuits the search.
	if pl, ok := try(hi); ok {
		return core.EvaluatePlacement(p, pl)
	}
	if hi == 0 { //vmalloc:nondet-ok exact-zero bracket top short-circuits to the empty result
		return &core.Result{}
	}
	pl, ok := try(0)
	if !ok {
		return &core.Result{}
	}
	bestPl := pl.Clone()
	lo := 0.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if pl, ok := try(mid); ok {
			lo = mid
			bestPl = pl.Clone()
		} else {
			hi = mid
		}
	}
	return core.EvaluatePlacement(p, bestPl)
}

// Solve runs one packing strategy inside the yield binary search.
func Solve(p *core.Problem, c Config, tol float64) *core.Result {
	return SolveOpt(p, c, SearchOptions{Tol: tol})
}

// SolveOpt runs one packing strategy inside the yield binary search with
// search options (LP-bound bracketing).
func SolveOpt(p *core.Problem, c Config, opts SearchOptions) *core.Result {
	s := NewSolver(p)
	return SearchMaxYieldOpt(p, opts, func(y float64) (core.Placement, bool) {
		return s.Pack(y, c)
	})
}

// MetaVPConfigs returns the 33 homogeneous strategies of METAVP (§3.5.3):
// {FF, BF, PP} × 11 item orders, natural bin order.
func MetaVPConfigs() []Config {
	var out []Config
	for _, alg := range []Algorithm{FirstFit, BestFit, PermutationPack} {
		for _, io := range AllOrders() {
			out = append(out, Config{Alg: alg, ItemOrder: io, BinOrder: NoOrder})
		}
	}
	return out
}

// MetaVP runs the METAVP algorithm: at each binary-search step, all 33
// homogeneous strategies are tried until one succeeds.
func MetaVP(p *core.Problem, tol float64) *core.Result {
	return MetaConfigs(p, MetaVPConfigs(), tol)
}

// MetaConfigs is the generic meta-algorithm over an arbitrary strategy set:
// a binary-search step succeeds as soon as any strategy packs the instance.
// One Solver is shared across every strategy and every binary-search step,
// so the instance refresh at each new yield is a single O(J·D) pass and the
// sort permutations are computed once per distinct order, not per strategy.
func MetaConfigs(p *core.Problem, configs []Config, tol float64) *core.Result {
	return MetaConfigsOpt(p, configs, SearchOptions{Tol: tol})
}

// MetaConfigsOpt is MetaConfigs with search options (LP-bound bracketing).
// Each step first runs the O(J·H·D) StepFeasible necessary-condition check:
// a step no strategy can win is declared failed without packing at all.
func MetaConfigsOpt(p *core.Problem, configs []Config, opts SearchOptions) *core.Result {
	return MetaConfigsSolver(NewSolver(p), configs, opts)
}

// MetaConfigsSolver is MetaConfigsOpt on a caller-owned Solver. Long-lived
// callers that re-solve a mutating problem (online engines reallocating
// every epoch) hold one Solver for the cluster lifetime, Rebind it after
// editing the service list, and run the meta search here with warm bin-order
// caches and no per-epoch arena allocation. The strategy sweep is the exact
// sequential first-success scan of MetaConfigs, so results are identical to
// a fresh MetaConfigsOpt on the same problem.
func MetaConfigsSolver(s *Solver, configs []Config, opts SearchOptions) *core.Result {
	return SearchMaxYieldOpt(s.Problem(), opts, func(y float64) (core.Placement, bool) {
		if !s.StepFeasible(y) {
			return nil, false
		}
		for _, c := range configs {
			if pl, ok := s.Pack(y, c); ok {
				return pl, true
			}
		}
		return nil, false
	})
}
