package vp

import (
	"math"
	"math/rand"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/relax"
	"vmalloc/internal/vec"
)

// equivalenceConfigs covers every algorithm, hetero variant and a spread of
// item/bin orders, including the yield-invariant (SUM, LEX, NONE) and
// non-invariant (MAX, MAXRATIO, MAXDIFFERENCE) order caches and sub-D
// windows.
func equivalenceConfigs() []Config {
	descSum := Order{Metric: vec.MetricSum, Descending: true}
	ascLex := Order{Metric: vec.MetricLex}
	descMax := Order{Metric: vec.MetricMax, Descending: true}
	ascRatio := Order{Metric: vec.MetricMaxRatio}
	descDiff := Order{Metric: vec.MetricMaxDifference, Descending: true}
	return []Config{
		{Alg: FirstFit, ItemOrder: NoOrder, BinOrder: NoOrder},
		{Alg: FirstFit, ItemOrder: descSum, BinOrder: ascLex, Hetero: true},
		{Alg: FirstFit, ItemOrder: descMax, BinOrder: descDiff, Hetero: true},
		{Alg: BestFit, ItemOrder: descSum},
		{Alg: BestFit, ItemOrder: ascRatio, Hetero: true},
		{Alg: PermutationPack, ItemOrder: descSum, BinOrder: NoOrder},
		{Alg: PermutationPack, ItemOrder: descMax, BinOrder: ascLex, Hetero: true},
		{Alg: PermutationPack, ItemOrder: descDiff, BinOrder: descMax, Hetero: true, Window: 1},
		{Alg: ChoosePack, ItemOrder: descSum, BinOrder: NoOrder, Window: 1},
		{Alg: ChoosePack, ItemOrder: ascLex, BinOrder: ascRatio, Hetero: true},
	}
}

func placementsEqual(a, b core.Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The arena-backed Solver must produce bit-identical placements to the
// retained naive reference for every strategy, across yields probed out of
// order so the per-step caches are exercised through refreshes.
func TestSolverPackMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	yields := []float64{0, 1, 0.5, 0.25, 0.5, 0.75, 0.125}
	for iter := 0; iter < 60; iter++ {
		p := randomProblem(rng, 3+iter%4, 6+iter%9)
		s := NewSolver(p)
		for _, y := range yields {
			for _, c := range equivalenceConfigs() {
				fast, okFast := s.Pack(y, c)
				naive, okNaive := PackNaive(p, y, c)
				if okFast != okNaive {
					t.Fatalf("iter %d y=%v %v: success mismatch solver=%v naive=%v",
						iter, y, c, okFast, okNaive)
				}
				if !placementsEqual(fast, naive) {
					t.Fatalf("iter %d y=%v %v: placements differ:\nsolver %v\nnaive  %v",
						iter, y, c, fast, naive)
				}
			}
		}
	}
}

// MetaConfigs shares one solver across strategies and binary-search steps;
// the probe sequence is identical to the naive meta, so MinYield must agree
// bit-for-bit (asserted to 1e-9 per the acceptance bar) on 100+ instances.
func TestMetaConfigsMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	configs := append(MetaVPConfigs(),
		Config{Alg: FirstFit, ItemOrder: Order{Metric: vec.MetricMax, Descending: true}, BinOrder: Order{Metric: vec.MetricSum}, Hetero: true},
		Config{Alg: BestFit, ItemOrder: Order{Metric: vec.MetricSum, Descending: true}, Hetero: true},
		Config{Alg: PermutationPack, ItemOrder: Order{Metric: vec.MetricSum, Descending: true}, BinOrder: Order{Metric: vec.MetricLex}, Hetero: true},
	)
	for iter := 0; iter < 110; iter++ {
		p := randomProblem(rng, 3+iter%3, 5+iter%8)
		fast := MetaConfigs(p, configs, 1e-3)
		naive := MetaConfigsNaive(p, configs, 1e-3)
		if fast.Solved != naive.Solved {
			t.Fatalf("iter %d: solved mismatch solver=%v naive=%v", iter, fast.Solved, naive.Solved)
		}
		if !fast.Solved {
			continue
		}
		if math.Abs(fast.MinYield-naive.MinYield) > 1e-9 {
			t.Fatalf("iter %d: MinYield solver=%v naive=%v", iter, fast.MinYield, naive.MinYield)
		}
		if !placementsEqual(fast.Placement, naive.Placement) {
			t.Fatalf("iter %d: placements differ:\nsolver %v\nnaive  %v",
				iter, fast.Placement, naive.Placement)
		}
	}
}

// The LP-bracketed search must agree with the naive packing path fed through
// the identical bracket: the bound changes which yields are probed, not what
// each probe decides.
func TestBoundedSearchMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	configs := MetaVPConfigs()
	opts := SearchOptions{Tol: 1e-3, UpperBound: relax.UpperBound}
	for iter := 0; iter < 25; iter++ {
		p := randomProblem(rng, 3, 6+iter%6)
		fast := MetaConfigsOpt(p, configs, opts)
		naive := SearchMaxYieldOpt(p, opts, func(y float64) (core.Placement, bool) {
			for _, c := range configs {
				if pl, ok := PackNaive(p, y, c); ok {
					return pl, true
				}
			}
			return nil, false
		})
		if fast.Solved != naive.Solved {
			t.Fatalf("iter %d: solved mismatch solver=%v naive=%v", iter, fast.Solved, naive.Solved)
		}
		if fast.Solved && math.Abs(fast.MinYield-naive.MinYield) > 1e-9 {
			t.Fatalf("iter %d: MinYield solver=%v naive=%v", iter, fast.MinYield, naive.MinYield)
		}
	}
}

// The bracketed search may probe fewer yields but must land within tolerance
// of the classic unbounded search: the LP bound only removes yields that no
// packing can achieve.
func TestBoundedSearchWithinToleranceOfUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	configs := MetaVPConfigs()
	const tol = 1e-3
	for iter := 0; iter < 15; iter++ {
		p := randomProblem(rng, 3, 7)
		plain := MetaConfigs(p, configs, tol)
		bounded := MetaConfigsOpt(p, configs, SearchOptions{Tol: tol, UpperBound: relax.UpperBound})
		if plain.Solved != bounded.Solved {
			t.Fatalf("iter %d: solved mismatch plain=%v bounded=%v", iter, plain.Solved, bounded.Solved)
		}
		if plain.Solved && math.Abs(plain.MinYield-bounded.MinYield) > tol {
			t.Fatalf("iter %d: bounded MinYield %v vs plain %v differs by more than tol",
				iter, bounded.MinYield, plain.MinYield)
		}
	}
}

// An upper bound that errors must leave the classic search untouched.
func TestBoundedSearchBoundErrorFallsBack(t *testing.T) {
	p := simpleProblem()
	c := Config{Alg: FirstFit}
	plain := Solve(p, c, 1e-3)
	bounded := SolveOpt(p, c, SearchOptions{Tol: 1e-3, UpperBound: func(*core.Problem) (float64, error) {
		return 0, errBound
	}})
	if plain.Solved != bounded.Solved || math.Abs(plain.MinYield-bounded.MinYield) > 1e-12 {
		t.Fatalf("plain %+v vs bounded %+v", plain, bounded)
	}
}

type boundErr struct{}

func (boundErr) Error() string { return "bound unavailable" }

var errBound = boundErr{}

// A negative bound (infeasible relaxation) collapses the bracket to the
// single probe y=0.
func TestBoundedSearchNegativeBound(t *testing.T) {
	p := simpleProblem()
	probes := 0
	res := SearchMaxYieldOpt(p, SearchOptions{Tol: 1e-4, UpperBound: func(*core.Problem) (float64, error) {
		return -1, nil
	}}, func(y float64) (core.Placement, bool) {
		probes++
		if y != 0 {
			t.Fatalf("probe at y=%v, want only 0", y)
		}
		return Pack(p, y, Config{Alg: FirstFit})
	})
	if probes != 1 {
		t.Fatalf("probes = %d, want 1", probes)
	}
	if !res.Solved {
		t.Fatal("yield-0 packing should still be attempted and succeed")
	}
}

// Steady-state packing must stay within the acceptance bar of <= 2 allocs
// per op (it is 0 in practice once the order caches are warm).
func TestSolverPackAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := randomProblem(rng, 6, 32)
	s := NewSolver(p)
	for _, c := range equivalenceConfigs() {
		s.Pack(0.5, c) // warm the order caches at this yield
	}
	for _, c := range equivalenceConfigs() {
		c := c
		allocs := testing.AllocsPerRun(20, func() {
			s.Pack(0.5, c)
		})
		if allocs > 2 {
			t.Errorf("%v: %v allocs/op, want <= 2", c, allocs)
		}
	}
}

// Refreshing the arena at a new yield must also stay allocation-free once
// every order has been seen (invariant orders skip the re-sort entirely;
// the rest re-sort into cached buffers).
func TestSolverYieldRefreshAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	p := randomProblem(rng, 6, 32)
	s := NewSolver(p)
	c := Config{Alg: FirstFit, ItemOrder: Order{Metric: vec.MetricSum, Descending: true}, BinOrder: Order{Metric: vec.MetricLex}, Hetero: true}
	s.Pack(0.25, c)
	s.Pack(0.75, c)
	y := 0.1
	allocs := testing.AllocsPerRun(20, func() {
		y += 0.01 // force a full instance refresh every run
		s.Pack(y, c)
	})
	if allocs > 2 {
		t.Errorf("yield-refresh Pack: %v allocs/op, want <= 2", allocs)
	}
}

// Yield-invariance detection must only ever fire for SUM/LEX/NONE orders and
// must match a brute-force check across probed yields.
func TestItemOrderYieldInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, 3, 9)
		s := NewSolver(p)
		for _, o := range AllOrders() {
			s.Pack(0.3, Config{Alg: FirstFit, ItemOrder: o, BinOrder: NoOrder})
			e := s.itemOrders[o]
			if e == nil {
				t.Fatalf("order %v has no cache entry after Pack", o)
			}
			if e.invariant {
				if !o.None && o.Metric != vec.MetricSum && o.Metric != vec.MetricLex {
					t.Fatalf("order %v wrongly marked yield-invariant", o)
				}
				// Brute force: the cached permutation must equal a fresh sort
				// at arbitrary yields.
				for _, y := range []float64{0, 0.17, 0.5, 0.83, 1} {
					inst := NewInstance(p, y)
					want := o.Sort(inst.ItemAgg)
					for i := range want {
						if e.perm[i] != want[i] {
							t.Fatalf("order %v marked invariant but differs at y=%v: cached %v want %v",
								o, y, e.perm, want)
						}
					}
				}
			}
		}
	}
}

// Large-magnitude problems (capacities in the millions, e.g. memory in KB)
// must not be wrongly pruned by StepFeasible: its summation-error margin is
// relative to the totals, so the meta still matches the naive reference.
func TestMetaConfigsMatchesNaiveAtLargeMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	configs := MetaVPConfigs()
	const scale = 1e6
	for iter := 0; iter < 20; iter++ {
		p := randomProblem(rng, 3+iter%3, 6+iter%6)
		for h := range p.Nodes {
			for d := range p.Nodes[h].Aggregate {
				p.Nodes[h].Aggregate[d] *= scale
				p.Nodes[h].Elementary[d] *= scale
			}
		}
		for j := range p.Services {
			s := &p.Services[j]
			for d := range s.ReqAgg {
				s.ReqAgg[d] *= scale
				s.ReqElem[d] *= scale
				s.NeedAgg[d] *= scale
				s.NeedElem[d] *= scale
			}
		}
		fast := MetaConfigs(p, configs, 1e-3)
		naive := MetaConfigsNaive(p, configs, 1e-3)
		if fast.Solved != naive.Solved {
			t.Fatalf("iter %d: solved mismatch solver=%v naive=%v", iter, fast.Solved, naive.Solved)
		}
		if fast.Solved && math.Abs(fast.MinYield-naive.MinYield) > 1e-9 {
			t.Fatalf("iter %d: MinYield solver=%v naive=%v", iter, fast.MinYield, naive.MinYield)
		}
	}
}

// Regression: computed SUM keys that tie bitwise at both bracket endpoints
// can still differ at interior yields (floating-point rounding breaks exact
// linearity), so such orders must NOT be cached as yield-invariant — the
// cached permutation would diverge from the naive reference mid-search.
func TestYieldInvarianceFloatRoundingCounterexample(t *testing.T) {
	mk := func(req vec.Vec) core.Service {
		return core.Service{
			ReqElem: req.Clone(), ReqAgg: req,
			NeedElem: vec.Of(0.28, 0), NeedAgg: vec.Of(0.56, 0),
		}
	}
	p := &core.Problem{
		Nodes: []core.Node{
			{Elementary: vec.Of(2, 2), Aggregate: vec.Of(2, 2)},
			{Elementary: vec.Of(2, 2), Aggregate: vec.Of(2, 2)},
		},
		Services: []core.Service{
			mk(vec.Of(0.18, 0.25)),
			mk(vec.Of(0.4, 0.02999999999999997)),
		},
	}
	// The two computed sums tie bitwise at y=0 and y=1 but differ at 0.375.
	sumAt := func(j int, y float64) float64 {
		return p.Services[j].AggAt(y).Sum()
	}
	if sumAt(0, 0) != sumAt(1, 0) || sumAt(0, 1) != sumAt(1, 1) {
		t.Skip("construction no longer ties at the endpoints on this platform")
	}
	if sumAt(0, 0.375) == sumAt(1, 0.375) {
		t.Skip("construction no longer splits at y=0.375 on this platform")
	}
	c := Config{Alg: FirstFit, ItemOrder: Order{Metric: vec.MetricSum}, BinOrder: NoOrder}
	s := NewSolver(p)
	for _, y := range []float64{0, 1, 0.375} {
		fast, okFast := s.Pack(y, c)
		naive, okNaive := PackNaive(p, y, c)
		if okFast != okNaive || !placementsEqual(fast, naive) {
			t.Fatalf("y=%v: solver %v (ok=%v) vs naive %v (ok=%v)", y, fast, okFast, naive, okNaive)
		}
	}
	if e := s.itemOrders[c.ItemOrder]; e != nil && e.invariant {
		t.Fatal("endpoint-tied non-identical keys must not be cached as yield-invariant")
	}
}

// Identical services tie at every yield by construction, so a SUM order over
// them may (and should) still be cached as invariant.
func TestYieldInvarianceIdenticalServices(t *testing.T) {
	svc := core.Service{
		ReqElem: vec.Of(0.1, 0.2), ReqAgg: vec.Of(0.2, 0.2),
		NeedElem: vec.Of(0.1, 0), NeedAgg: vec.Of(0.2, 0),
	}
	p := &core.Problem{
		Nodes:    []core.Node{{Elementary: vec.Of(2, 2), Aggregate: vec.Of(2, 2)}},
		Services: []core.Service{svc, svc, svc},
	}
	s := NewSolver(p)
	c := Config{Alg: FirstFit, ItemOrder: Order{Metric: vec.MetricSum, Descending: true}, BinOrder: NoOrder}
	s.Pack(0.5, c)
	e := s.itemOrders[c.ItemOrder]
	if e == nil || !e.invariant {
		t.Fatal("identical services should allow invariant caching")
	}
}

// Clear must leave the instance indistinguishable from a fresh Reset at the
// same yield.
func TestInstanceClearEqualsReset(t *testing.T) {
	p := simpleProblem()
	inst := NewInstance(p, 0.6)
	inst.Place(0, 0)
	inst.Place(1, 1)
	inst.Clear()
	fresh := NewInstance(p, 0.6)
	if inst.Done() || inst.remaining != fresh.remaining {
		t.Fatalf("clear left remaining=%d", inst.remaining)
	}
	for j := range inst.Placement {
		if inst.Placement[j] != core.Unplaced || inst.placed[j] {
			t.Fatalf("service %d still placed after Clear", j)
		}
	}
	for h := range inst.Load {
		for d := range inst.Load[h] {
			if inst.Load[h][d] != 0 {
				t.Fatalf("bin %d load not cleared: %v", h, inst.Load[h])
			}
		}
	}
	for j := range inst.ItemAgg {
		for d := range inst.ItemAgg[j] {
			if inst.ItemAgg[j][d] != fresh.ItemAgg[j][d] || inst.ItemElem[j][d] != fresh.ItemElem[j][d] {
				t.Fatalf("item %d vectors drifted after Clear", j)
			}
		}
	}
}
