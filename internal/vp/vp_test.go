package vp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

func node(cpuElem, cpuAgg, mem float64) core.Node {
	return core.Node{Elementary: vec.Of(cpuElem, mem), Aggregate: vec.Of(cpuAgg, mem)}
}

func service(reqCPU, reqMem, needCPU float64) core.Service {
	return core.Service{
		ReqElem:  vec.Of(reqCPU/2, reqMem),
		ReqAgg:   vec.Of(reqCPU, reqMem),
		NeedElem: vec.Of(needCPU/2, 0),
		NeedAgg:  vec.Of(needCPU, 0),
	}
}

func simpleProblem() *core.Problem {
	return &core.Problem{
		Nodes:    []core.Node{node(0.5, 1.0, 1.0), node(0.5, 1.0, 1.0)},
		Services: []core.Service{service(0.1, 0.3, 0.6), service(0.1, 0.3, 0.6)},
	}
}

func TestAllOrdersCount(t *testing.T) {
	if got := len(AllOrders()); got != 11 {
		t.Fatalf("|orders| = %d, want 11", got)
	}
}

func TestOrderSortDirections(t *testing.T) {
	vs := []vec.Vec{vec.Of(0.2, 0.2), vec.Of(0.9, 0.1), vec.Of(0.5, 0.5)}
	asc := Order{Metric: vec.MetricSum}.Sort(vs)
	if asc[0] != 0 || asc[2] != 2 {
		t.Fatalf("asc sum order = %v", asc)
	}
	// Sums are 0.4, 1.0, 1.0: descending puts vector 0 last, and the tie
	// between 1 and 2 is broken stably (1 first).
	desc := Order{Metric: vec.MetricSum, Descending: true}.Sort(vs)
	if desc[0] != 1 || desc[1] != 2 || desc[2] != 0 {
		t.Fatalf("desc sum order = %v", desc)
	}
	none := NoOrder.Sort(vs)
	if none[0] != 0 || none[1] != 1 || none[2] != 2 {
		t.Fatalf("NONE order = %v", none)
	}
}

func TestOrderSortStable(t *testing.T) {
	vs := []vec.Vec{vec.Of(0.5), vec.Of(0.5), vec.Of(0.5)}
	got := Order{Metric: vec.MetricMax, Descending: true}.Sort(vs)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("ties must preserve natural order: %v", got)
	}
}

func TestInstanceFitsAndPlace(t *testing.T) {
	p := simpleProblem()
	inst := NewInstance(p, 1.0)
	// Item agg at yield 1: (0.7, 0.3).
	if !inst.Fits(0, 0) {
		t.Fatal("item 0 should fit empty bin")
	}
	inst.Place(0, 0)
	if inst.Fits(1, 0) {
		t.Fatal("second item should not fit (CPU 1.4 > 1.0)")
	}
	if !inst.Fits(1, 1) {
		t.Fatal("second item should fit bin 1")
	}
	inst.Place(1, 1)
	if !inst.Done() {
		t.Fatal("all placed")
	}
}

func TestInstanceElementaryFilter(t *testing.T) {
	p := simpleProblem()
	// Shrink node 0's cores so the item's elementary demand fails there.
	p.Nodes[0].Elementary = vec.Of(0.05, 1.0)
	inst := NewInstance(p, 1.0)
	if inst.Fits(0, 0) {
		t.Fatal("elementary filter should reject bin 0")
	}
	if !inst.Fits(0, 1) {
		t.Fatal("bin 1 should accept")
	}
}

func TestPlaceTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	inst := NewInstance(simpleProblem(), 0)
	inst.Place(0, 0)
	inst.Place(0, 1)
}

func TestPackFirstFitSucceedsAtYield1(t *testing.T) {
	p := simpleProblem()
	pl, ok := Pack(p, 1.0, Config{Alg: FirstFit, ItemOrder: NoOrder, BinOrder: NoOrder})
	if !ok {
		t.Fatal("FF should pack at yield 1")
	}
	if pl[0] == pl[1] {
		t.Fatalf("items must spread: %v", pl)
	}
}

func TestPackFailsWhenOverCapacity(t *testing.T) {
	p := simpleProblem()
	p.Services = append(p.Services, service(0.1, 0.9, 0.1)) // mem 0.9 + 0.3 > 1.0 anywhere combined
	p.Services = append(p.Services, service(0.1, 0.9, 0.1))
	_, ok := Pack(p, 1.0, Config{Alg: FirstFit})
	if ok {
		t.Fatal("should fail at yield 1 with four services")
	}
}

func TestBestFitHomogeneousStacks(t *testing.T) {
	p := simpleProblem()
	// At yield 0, items are tiny (0.1 CPU, 0.3 mem): homogeneous BF puts the
	// second item on the fullest bin = where the first went.
	pl, ok := Pack(p, 0, Config{Alg: BestFit})
	if !ok {
		t.Fatal("BF should pack at yield 0")
	}
	if pl[0] != pl[1] {
		t.Fatalf("homogeneous best fit should stack: %v", pl)
	}
}

func TestBestFitHeteroPrefersSmallestRemaining(t *testing.T) {
	p := &core.Problem{
		Nodes:    []core.Node{node(0.5, 2.0, 2.0), node(0.25, 1.0, 1.0)},
		Services: []core.Service{service(0.1, 0.3, 0.0)},
	}
	pl, ok := Pack(p, 0, Config{Alg: BestFit, Hetero: true})
	if !ok {
		t.Fatal("should pack")
	}
	if pl[0] != 1 {
		t.Fatalf("hetero BF should pick the smaller node: %v", pl)
	}
}

func TestPermutationPackComplementsBin(t *testing.T) {
	// One bin, two items: PP should first select the item whose large
	// dimension complements the bin's loaded dimension.
	p := &core.Problem{
		Nodes: []core.Node{{Elementary: vec.Of(1, 1), Aggregate: vec.Of(1, 1)}},
		Services: []core.Service{
			{ // CPU-heavy item
				ReqElem: vec.Of(0.6, 0.1), ReqAgg: vec.Of(0.6, 0.1),
				NeedElem: vec.New(2), NeedAgg: vec.New(2),
			},
			{ // memory-heavy item
				ReqElem: vec.Of(0.1, 0.6), ReqAgg: vec.Of(0.1, 0.6),
				NeedElem: vec.New(2), NeedAgg: vec.New(2),
			},
		},
	}
	pl, ok := Pack(p, 0, Config{Alg: PermutationPack})
	if !ok {
		t.Fatalf("PP should pack both items (loads 0.7, 0.7): %v", pl)
	}
}

func TestChoosePackWindowOneEqualsPermutationPack(t *testing.T) {
	// Paper §3.5.2: with window size 1 PP and CP operate identically.
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, 3, 8)
		for _, y := range []float64{0, 0.5} {
			c1 := Config{Alg: PermutationPack, ItemOrder: Order{Metric: vec.MetricSum, Descending: true}, Window: 1}
			c2 := c1
			c2.Alg = ChoosePack
			pl1, ok1 := Pack(p, y, c1)
			pl2, ok2 := Pack(p, y, c2)
			if ok1 != ok2 {
				t.Fatalf("iter %d y=%v: success mismatch PP=%v CP=%v", iter, y, ok1, ok2)
			}
			if ok1 {
				for j := range pl1 {
					if pl1[j] != pl2[j] {
						t.Fatalf("iter %d y=%v: placements differ at %d: %v vs %v", iter, y, j, pl1, pl2)
					}
				}
			}
		}
	}
}

func TestSearchMaxYieldFindsOptimum(t *testing.T) {
	// Single node, single service: yield = (cap - req)/need computable
	// exactly. cap 1.0, req 0.1, need 1.2 -> y* = 0.75.
	p := &core.Problem{
		Nodes:    []core.Node{node(0.5, 1.0, 1.0)},
		Services: []core.Service{service(0.1, 0.3, 1.2)},
	}
	res := Solve(p, Config{Alg: FirstFit}, 1e-4)
	if !res.Solved {
		t.Fatal("should solve")
	}
	if math.Abs(res.MinYield-0.75) > 1e-3 {
		t.Fatalf("yield = %v, want 0.75", res.MinYield)
	}
}

func TestSearchMaxYieldShortCircuitAtOne(t *testing.T) {
	p := simpleProblem()
	calls := 0
	res := SearchMaxYield(p, 1e-4, func(y float64) (core.Placement, bool) {
		calls++
		return Pack(p, y, Config{Alg: FirstFit})
	})
	if !res.Solved || res.MinYield < 1-1e-9 {
		t.Fatalf("yield = %v", res.MinYield)
	}
	if calls != 1 {
		t.Fatalf("expected single call at yield 1, got %d", calls)
	}
}

func TestSearchMaxYieldFailsWhenYieldZeroFails(t *testing.T) {
	p := simpleProblem()
	p.Services[0].ReqAgg = vec.Of(0.1, 9) // cannot ever fit
	res := Solve(p, Config{Alg: FirstFit}, 1e-4)
	if res.Solved {
		t.Fatal("should fail")
	}
}

func TestMetaVPConfigsCount(t *testing.T) {
	if got := len(MetaVPConfigs()); got != 33 {
		t.Fatalf("|METAVP strategies| = %d, want 33", got)
	}
}

func TestMetaVPDominatesEveryMember(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 8; iter++ {
		p := randomProblem(rng, 3, 9)
		meta := MetaVP(p, 1e-3)
		for _, c := range MetaVPConfigs() {
			r := Solve(p, c, 1e-3)
			if r.Solved && !meta.Solved {
				t.Fatalf("iter %d: %v solved but METAVP did not", iter, c)
			}
			if r.Solved && meta.Solved && r.MinYield > meta.MinYield+2e-3 {
				t.Fatalf("iter %d: %v yield %v beats METAVP %v by more than tolerance",
					iter, c, r.MinYield, meta.MinYield)
			}
		}
	}
}

func TestPackedPlacementsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 25; iter++ {
		p := randomProblem(rng, 4, 10)
		for _, alg := range []Algorithm{FirstFit, BestFit, PermutationPack, ChoosePack} {
			c := Config{Alg: alg, ItemOrder: Order{Metric: vec.MetricMax, Descending: true}}
			res := Solve(p, c, 1e-3)
			if !res.Solved {
				continue
			}
			if err := res.Placement.Validate(p); err != nil {
				t.Fatalf("iter %d %v: %v", iter, alg, err)
			}
			if !core.FeasibleAtYield(p, res.Placement, res.MinYield-1e-6) {
				t.Fatalf("iter %d %v: reported yield %v infeasible", iter, alg, res.MinYield)
			}
		}
	}
}

// Property: a packing success at yield y implies the evaluated placement
// achieves at least y.
func TestQuickPackYieldConsistency(t *testing.T) {
	f := func(seed int64, yRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		y := math.Abs(math.Mod(yRaw, 1))
		p := randomProblem(rng, 3, 6)
		pl, ok := Pack(p, y, Config{Alg: FirstFit, ItemOrder: Order{Metric: vec.MetricSum, Descending: true}})
		if !ok {
			return true
		}
		res := core.EvaluatePlacement(p, pl)
		return res.Solved && res.MinYield >= y-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randomProblem(rng *rand.Rand, h, j int) *core.Problem {
	p := &core.Problem{}
	for i := 0; i < h; i++ {
		cpu := 0.3 + rng.Float64()*0.7
		mem := 0.3 + rng.Float64()*0.7
		p.Nodes = append(p.Nodes, core.Node{
			Elementary: vec.Of(cpu/4, mem),
			Aggregate:  vec.Of(cpu, mem),
		})
	}
	for s := 0; s < j; s++ {
		mem := rng.Float64() * 0.15
		need := rng.Float64() * 0.3
		p.Services = append(p.Services, core.Service{
			ReqElem:  vec.Of(0.01, mem),
			ReqAgg:   vec.Of(0.01, mem),
			NeedElem: vec.Of(need/4, 0),
			NeedAgg:  vec.Of(need, 0),
		})
	}
	return p
}
