package vp

import (
	"math/rand"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

func TestPermutationsLexOrder(t *testing.T) {
	ps := permutations(3)
	if len(ps) != 6 {
		t.Fatalf("|perms(3)| = %d", len(ps))
	}
	want := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for i := range want {
		if !equalInts(ps[i], want[i]) {
			t.Fatalf("perm %d = %v, want %v", i, ps[i], want[i])
		}
	}
}

// The keyed O(J²D) implementation must produce exactly the same placements
// as the naive D!-list reference across random instances (paper §3.5.2
// claims the improvement is behavior-preserving).
func TestKeyedPPMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	io := Order{Metric: vec.MetricSum, Descending: true}
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, 3, 8)
		for _, y := range []float64{0, 0.4, 0.9} {
			fast, okF := Pack(p, y, Config{Alg: PermutationPack, ItemOrder: io, BinOrder: NoOrder})
			slow, okS := PackPermutationNaive(p, y, io, NoOrder)
			if okF != okS {
				t.Fatalf("iter %d y=%v: success mismatch fast=%v naive=%v", iter, y, okF, okS)
			}
			if !okF {
				continue
			}
			for j := range fast {
				if fast[j] != slow[j] {
					t.Fatalf("iter %d y=%v: placement differs at %d: %v vs %v", iter, y, j, fast, slow)
				}
			}
		}
	}
}

// Same check in 4 dimensions, where the D! lists are non-trivial (24 keys).
func TestKeyedPPMatchesNaive4D(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	io := Order{Metric: vec.MetricMax, Descending: true}
	for iter := 0; iter < 15; iter++ {
		p := random4DProblem(rng, 3, 7)
		fast, okF := Pack(p, 0, Config{Alg: PermutationPack, ItemOrder: io, BinOrder: NoOrder})
		slow, okS := PackPermutationNaive(p, 0, io, NoOrder)
		if okF != okS {
			t.Fatalf("iter %d: success mismatch fast=%v naive=%v", iter, okF, okS)
		}
		if !okF {
			continue
		}
		for j := range fast {
			if fast[j] != slow[j] {
				t.Fatalf("iter %d: placement differs: %v vs %v", iter, fast, slow)
			}
		}
	}
}

// random4DProblem builds a 4-dimensional instance (e.g. CPU, memory, disk,
// network) exercising the window machinery beyond the paper's 2-D setup.
func random4DProblem(rng *rand.Rand, h, j int) *core.Problem {
	p := &core.Problem{}
	for i := 0; i < h; i++ {
		agg := vec.Of(0.5+rng.Float64(), 0.5+rng.Float64(), 0.5+rng.Float64(), 0.5+rng.Float64())
		p.Nodes = append(p.Nodes, core.Node{Elementary: agg.Clone(), Aggregate: agg})
	}
	for s := 0; s < j; s++ {
		req := vec.Of(rng.Float64()*0.3, rng.Float64()*0.3, rng.Float64()*0.3, rng.Float64()*0.3)
		p.Services = append(p.Services, core.Service{
			ReqElem: req.Clone(), ReqAgg: req,
			NeedElem: vec.New(4), NeedAgg: vec.New(4),
		})
	}
	return p
}

func TestWindowSizeChangesSelection4D(t *testing.T) {
	// With a window of 1 only the top dimension must match; the full window
	// demands complete complementarity. Both must still produce valid
	// packings; they may differ in which bins items land on.
	rng := rand.New(rand.NewSource(16))
	io := Order{Metric: vec.MetricSum, Descending: true}
	for iter := 0; iter < 10; iter++ {
		p := random4DProblem(rng, 3, 8)
		for _, w := range []int{1, 2, 4} {
			pl, ok := Pack(p, 0, Config{Alg: PermutationPack, ItemOrder: io, Window: w})
			if !ok {
				continue
			}
			if err := pl.Validate(p); err != nil {
				t.Fatalf("iter %d w=%d: %v", iter, w, err)
			}
		}
	}
}
