package greedy

import (
	"math"
	"math/rand"
	"testing"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// twoNodeProblem: node 0 is large, node 1 small; two services, the bigger of
// which only fits on node 0.
func twoNodeProblem() *core.Problem {
	return &core.Problem{
		Nodes: []core.Node{
			{Elementary: vec.Of(0.5, 1.0), Aggregate: vec.Of(2.0, 1.0)},
			{Elementary: vec.Of(0.25, 0.5), Aggregate: vec.Of(1.0, 0.5)},
		},
		Services: []core.Service{
			{ // big: memory 0.8 only fits node 0
				ReqElem: vec.Of(0.1, 0.8), ReqAgg: vec.Of(0.1, 0.8),
				NeedElem: vec.Of(0.4, 0), NeedAgg: vec.Of(1.2, 0),
			},
			{ // small: fits anywhere
				ReqElem: vec.Of(0.1, 0.2), ReqAgg: vec.Of(0.1, 0.2),
				NeedElem: vec.Of(0.2, 0), NeedAgg: vec.Of(0.5, 0),
			},
		},
	}
}

func TestAllCombosProduceValidResults(t *testing.T) {
	p := twoNodeProblem()
	for _, s := range SortStrategies() {
		for _, k := range PickStrategies() {
			res := Solve(p, s, k)
			if !res.Solved {
				continue
			}
			if err := res.Placement.Validate(p); err != nil {
				t.Fatalf("%v/%v: invalid placement: %v", s, k, err)
			}
			if res.MinYield < 0 || res.MinYield > 1 {
				t.Fatalf("%v/%v: yield %v out of range", s, k, res.MinYield)
			}
		}
	}
}

func TestSortOrders(t *testing.T) {
	p := twoNodeProblem()
	// S2: decreasing max need -> service 0 (1.2) before service 1 (0.5).
	got := orderServices(p, S2)
	if got[0] != 0 {
		t.Fatalf("S2 order = %v", got)
	}
	// S1 keeps natural order.
	got = orderServices(p, S1)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("S1 order = %v", got)
	}
	// S5: decreasing sum of requirements -> svc0 (0.9) before svc1 (0.3).
	got = orderServices(p, S5)
	if got[0] != 0 {
		t.Fatalf("S5 order = %v", got)
	}
}

func TestSortKeysMatchDefinitions(t *testing.T) {
	svc := &core.Service{
		ReqAgg:  vec.Of(0.3, 0.1),
		NeedAgg: vec.Of(0.2, 0.6),
	}
	cases := []struct {
		s    SortStrategy
		want float64
	}{
		{S2, 0.6}, {S3, 0.8}, {S4, 0.3}, {S5, 0.4}, {S6, 0.8}, {S7, 1.2},
	}
	for _, c := range cases {
		if got := sortKey(c.s, svc); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v key = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestFirstFitP7PlacesOnFirstFeasible(t *testing.T) {
	p := twoNodeProblem()
	res := Solve(p, S1, P7)
	if !res.Solved {
		t.Fatal("P7 failed")
	}
	// Both services fit on node 0 at requirement level, so first-fit puts
	// both there.
	if res.Placement[0] != 0 || res.Placement[1] != 0 {
		t.Fatalf("placement = %v", res.Placement)
	}
}

func TestWorstFitSpreadsLoad(t *testing.T) {
	// Two identical nodes, two identical services: P6 (most total available)
	// must spread them.
	n := core.Node{Elementary: vec.Of(0.5, 1.0), Aggregate: vec.Of(1.0, 1.0)}
	s := core.Service{
		ReqElem: vec.Of(0.1, 0.3), ReqAgg: vec.Of(0.1, 0.3),
		NeedElem: vec.Of(0.4, 0), NeedAgg: vec.Of(0.8, 0),
	}
	p := &core.Problem{Nodes: []core.Node{n, n}, Services: []core.Service{s, s}}
	res := Solve(p, S1, P6)
	if !res.Solved {
		t.Fatal("failed")
	}
	if res.Placement[0] == res.Placement[1] {
		t.Fatalf("worst fit should spread: %v", res.Placement)
	}
	// Spread placement: each node has 0.9 CPU slack vs need 0.8 -> yield 1.
	if math.Abs(res.MinYield-1.0) > 1e-9 {
		t.Fatalf("yield = %v", res.MinYield)
	}
}

func TestBestFitPacksTogether(t *testing.T) {
	// Same setup: P4 (least available) stacks the second service on the
	// same node as the first.
	n := core.Node{Elementary: vec.Of(0.5, 1.0), Aggregate: vec.Of(1.0, 1.0)}
	s := core.Service{
		ReqElem: vec.Of(0.1, 0.3), ReqAgg: vec.Of(0.1, 0.3),
		NeedElem: vec.Of(0.4, 0), NeedAgg: vec.Of(0.8, 0),
	}
	p := &core.Problem{Nodes: []core.Node{n, n}, Services: []core.Service{s, s}}
	res := Solve(p, S1, P4)
	if !res.Solved {
		t.Fatal("failed")
	}
	if res.Placement[0] != res.Placement[1] {
		t.Fatalf("best fit should stack: %v", res.Placement)
	}
}

func TestFailureWhenNothingFits(t *testing.T) {
	p := twoNodeProblem()
	p.Services[0].ReqAgg = vec.Of(0.1, 5.0) // memory requirement too large
	for _, k := range PickStrategies() {
		if res := Solve(p, S1, k); res.Solved {
			t.Fatalf("%v: should fail", k)
		}
	}
	if res := MetaGreedy(p, false); res.Solved {
		t.Fatal("MetaGreedy should fail when no node fits")
	}
}

func TestMetaGreedyAtLeastAsGoodAsEveryCombo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 20; iter++ {
		p := randomProblem(rng, 3, 8)
		meta := MetaGreedy(p, false)
		for _, s := range SortStrategies() {
			for _, k := range PickStrategies() {
				r := Solve(p, s, k)
				if r.Solved && (!meta.Solved || r.MinYield > meta.MinYield+1e-9) {
					t.Fatalf("iter %d: %v/%v yield %v beats meta %v(solved=%v)",
						iter, s, k, r.MinYield, meta.MinYield, meta.Solved)
				}
			}
		}
	}
}

// A state arena reused across combos (as METAGREEDY's workers do) must give
// the same result for every combo as a fresh state per run.
func TestStateReuseMatchesFreshState(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for iter := 0; iter < 10; iter++ {
		p := randomProblem(rng, 4, 12)
		st := newState(p)
		orders := orderTable(p)
		for _, s := range SortStrategies() {
			for _, k := range PickStrategies() {
				reused := solveWith(st, orders[s], k)
				fresh := Solve(p, s, k)
				if reused.Solved != fresh.Solved {
					t.Fatalf("iter %d %v/%v: solved mismatch", iter, s, k)
				}
				if !reused.Solved {
					continue
				}
				if reused.MinYield != fresh.MinYield {
					t.Fatalf("iter %d %v/%v: yields %v vs %v", iter, s, k, reused.MinYield, fresh.MinYield)
				}
				for j := range reused.Placement {
					if reused.Placement[j] != fresh.Placement[j] {
						t.Fatalf("iter %d %v/%v: placements differ at %d", iter, s, k, j)
					}
				}
			}
		}
	}
}

// The node-selection loop must not allocate: everything it reads is either
// cached in the state arena or computed scalar-wise.
func TestPickNodeAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p := randomProblem(rng, 8, 40)
	st := newState(p)
	order := orderServices(p, S7)
	for _, k := range PickStrategies() {
		k := k
		allocs := testing.AllocsPerRun(10, func() {
			st.reset()
			for _, j := range order {
				h := st.pickNode(j, k)
				if h < 0 {
					return
				}
				st.place(j, h)
			}
		})
		if allocs > 0 {
			t.Errorf("%v: greedy placement loop allocated %v times per run", k, allocs)
		}
	}
}

func TestMetaGreedyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 10; iter++ {
		p := randomProblem(rng, 4, 12)
		seq := MetaGreedy(p, false)
		par := MetaGreedy(p, true)
		if seq.Solved != par.Solved {
			t.Fatalf("iter %d: solved mismatch %v vs %v", iter, seq.Solved, par.Solved)
		}
		if seq.Solved && math.Abs(seq.MinYield-par.MinYield) > 1e-12 {
			t.Fatalf("iter %d: yields differ: %v vs %v", iter, seq.MinYield, par.MinYield)
		}
	}
}

func randomProblem(rng *rand.Rand, h, j int) *core.Problem {
	p := &core.Problem{}
	for i := 0; i < h; i++ {
		cpu := 0.3 + rng.Float64()*0.7
		mem := 0.3 + rng.Float64()*0.7
		p.Nodes = append(p.Nodes, core.Node{
			Elementary: vec.Of(cpu/4, mem),
			Aggregate:  vec.Of(cpu, mem),
		})
	}
	for s := 0; s < j; s++ {
		mem := rng.Float64() * 0.2
		need := rng.Float64() * 0.4
		p.Services = append(p.Services, core.Service{
			ReqElem:  vec.Of(0.01, mem),
			ReqAgg:   vec.Of(0.01, mem),
			NeedElem: vec.Of(need/4, 0),
			NeedAgg:  vec.Of(need, 0),
		})
	}
	return p
}
