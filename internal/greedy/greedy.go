// Package greedy implements the paper's greedy placement family (§3.4):
// seven service sorting strategies S1–S7 crossed with seven node selection
// strategies P1–P7, for 49 algorithms, plus METAGREEDY, which runs all 49 and
// keeps the best solution.
//
// A greedy algorithm walks the (sorted) services and places each on a node
// chosen among those whose remaining capacity can still satisfy the
// service's rigid requirements. Load bookkeeping for the selection criteria
// uses the service's full demand (requirements plus needs), the quantity the
// service would consume at yield 1. Once every service is placed the
// minimum yield is obtained by giving each node its maximum uniform yield.
package greedy

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vmalloc/internal/core"
	"vmalloc/internal/vec"
)

// SortStrategy selects the service ordering (paper S1–S7).
type SortStrategy int

const (
	// S1 keeps services in their natural order.
	S1 SortStrategy = iota + 1
	// S2 sorts by decreasing maximum need.
	S2
	// S3 sorts by decreasing sum of needs.
	S3
	// S4 sorts by decreasing maximum requirement.
	S4
	// S5 sorts by decreasing sum of requirements.
	S5
	// S6 sorts by decreasing max(sum of requirements, sum of needs).
	S6
	// S7 sorts by decreasing sum of requirements and needs.
	S7
)

// String returns the paper's label for the strategy.
func (s SortStrategy) String() string { return fmt.Sprintf("S%d", int(s)) }

// PickStrategy selects the node choice rule (paper P1–P7).
type PickStrategy int

const (
	// P1 picks the node with the most available capacity in the service's
	// dimension of maximum need.
	P1 PickStrategy = iota + 1
	// P2 picks the node minimizing the ratio of summed loads to summed
	// capacities after placement.
	P2
	// P3 picks the node with the least remaining capacity in the service's
	// dimension of largest requirement (best fit).
	P3
	// P4 picks the node with the least aggregate available capacity
	// (best fit).
	P4
	// P5 picks the node with the most capacity remaining in the service's
	// dimension of largest requirement (worst fit).
	P5
	// P6 picks the node with the most total available resource (worst fit).
	P6
	// P7 picks the first node that fits (first fit).
	P7
)

// String returns the paper's label for the strategy.
func (p PickStrategy) String() string { return fmt.Sprintf("P%d", int(p)) }

// SortStrategies lists S1–S7.
func SortStrategies() []SortStrategy {
	return []SortStrategy{S1, S2, S3, S4, S5, S6, S7}
}

// PickStrategies lists P1–P7.
func PickStrategies() []PickStrategy {
	return []PickStrategy{P1, P2, P3, P4, P5, P6, P7}
}

// sortKey returns the (descending) key for a service under strategy s.
func sortKey(s SortStrategy, svc *core.Service) float64 {
	switch s {
	case S2:
		return svc.NeedAgg.Max()
	case S3:
		return svc.NeedAgg.Sum()
	case S4:
		return svc.ReqAgg.Max()
	case S5:
		return svc.ReqAgg.Sum()
	case S6:
		r, n := svc.ReqAgg.Sum(), svc.NeedAgg.Sum()
		if r > n {
			return r
		}
		return n
	case S7:
		return svc.ReqAgg.Sum() + svc.NeedAgg.Sum()
	default:
		return 0
	}
}

// orderServices returns service indices in the order mandated by s.
func orderServices(p *core.Problem, s SortStrategy) []int {
	idx := make([]int, p.NumServices())
	for i := range idx {
		idx[i] = i
	}
	if s == S1 {
		return idx
	}
	keys := make([]float64, len(idx))
	for i := range idx {
		keys[i] = sortKey(s, &p.Services[i])
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] > keys[idx[b]] })
	return idx
}

// orderTable computes the seven S1–S7 service permutations once, so
// METAGREEDY's 49 combos share 7 sorts instead of sorting per combo.
func orderTable(p *core.Problem) map[SortStrategy][]int {
	orders := make(map[SortStrategy][]int, len(SortStrategies()))
	for _, s := range SortStrategies() {
		orders[s] = orderServices(p, s)
	}
	return orders
}

// state tracks per-node bookkeeping during one greedy run. It is a reusable
// scratch arena: loads live in flat backing arrays, the per-service
// selection keys (demand vector, argmax dimensions) are precomputed once,
// and reset clears it for the next combo without reallocating.
type state struct {
	p *core.Problem
	// reqLoad is the sum of aggregate requirements (feasibility bookkeeping).
	reqLoad []vec.Vec
	// demandLoad is the sum of full demands (selection bookkeeping).
	demandLoad        []vec.Vec
	reqBuf, demandBuf []float64
	// demand[j] = ReqAgg + NeedAgg of service j, precomputed.
	demand       []vec.Vec
	demandVecBuf []float64
	// needArgMax/reqArgMax cache argMaxDim of each service's needs and
	// requirements (P1, P3, P5 keys).
	needArgMax, reqArgMax []int
	// capSum[h] = sum of node h's aggregate capacity (P2 denominator).
	capSum []float64
	// placement is the reusable output buffer of solveWith.
	placement core.Placement
}

func newState(p *core.Problem) *state {
	d := p.Dim()
	numNodes, numSvcs := p.NumNodes(), p.NumServices()
	st := &state{p: p,
		reqLoad:      make([]vec.Vec, numNodes),
		demandLoad:   make([]vec.Vec, numNodes),
		reqBuf:       make([]float64, numNodes*d),
		demandBuf:    make([]float64, numNodes*d),
		demand:       make([]vec.Vec, numSvcs),
		demandVecBuf: make([]float64, numSvcs*d),
		needArgMax:   make([]int, numSvcs),
		reqArgMax:    make([]int, numSvcs),
		capSum:       make([]float64, numNodes),
		placement:    core.NewPlacement(numSvcs),
	}
	for h := 0; h < numNodes; h++ {
		st.reqLoad[h] = vec.Vec(st.reqBuf[h*d : (h+1)*d])
		st.demandLoad[h] = vec.Vec(st.demandBuf[h*d : (h+1)*d])
		st.capSum[h] = p.Nodes[h].Aggregate.Sum()
	}
	for j := 0; j < numSvcs; j++ {
		s := &p.Services[j]
		dem := vec.Vec(st.demandVecBuf[j*d : (j+1)*d])
		for dd := range dem {
			dem[dd] = s.ReqAgg[dd] + s.NeedAgg[dd]
		}
		st.demand[j] = dem
		st.needArgMax[j] = argMaxDim(s.NeedAgg)
		st.reqArgMax[j] = argMaxDim(s.ReqAgg)
	}
	return st
}

// reset clears the load bookkeeping for a fresh run.
func (st *state) reset() {
	for i := range st.reqBuf {
		st.reqBuf[i] = 0
	}
	for i := range st.demandBuf {
		st.demandBuf[i] = 0
	}
}

func (st *state) place(j, h int) {
	s := &st.p.Services[j]
	st.reqLoad[h].AccumAdd(s.ReqAgg)
	st.demandLoad[h].AccumAdd(s.ReqAgg)
	st.demandLoad[h].AccumAdd(s.NeedAgg)
}

// available returns the node's aggregate capacity minus demand load (may be
// negative when a node is oversubscribed in terms of needs).
func (st *state) available(h int) vec.Vec {
	return st.p.Nodes[h].Aggregate.Sub(st.demandLoad[h])
}

// availAt returns one component of the node's available capacity without
// materializing the vector.
func (st *state) availAt(h, d int) float64 {
	return st.p.Nodes[h].Aggregate[d] - st.demandLoad[h][d]
}

// availSum returns the summed available capacity; vec.SumDiff keeps P4/P6
// tie-breaking bit-identical to the allocating available(h).Sum()
// formulation.
func (st *state) availSum(h int) float64 {
	return vec.SumDiff(st.p.Nodes[h].Aggregate, st.demandLoad[h])
}

// argMaxDim returns the index of the largest component, ties to the lowest
// dimension.
func argMaxDim(v vec.Vec) int {
	best, bestV := 0, v[0]
	for d := 1; d < len(v); d++ {
		if v[d] > bestV {
			best, bestV = d, v[d]
		}
	}
	return best
}

// pickNode applies strategy pick to choose among nodes that can satisfy the
// service's rigid requirements. It returns -1 when no node fits. All score
// computations run on cached keys and the flat load arrays; nothing in the
// loop allocates.
func (st *state) pickNode(j int, pick PickStrategy) int {
	s := &st.p.Services[j]
	best := -1
	var bestScore float64
	better := func(score float64, h int) bool {
		if best == -1 {
			return true
		}
		switch pick {
		case P2, P3, P4: // minimize
			return score < bestScore
		default: // maximize
			return score > bestScore
		}
	}
	for h := 0; h < st.p.NumNodes(); h++ {
		if !s.FitsRequirements(&st.p.Nodes[h], st.reqLoad[h]) {
			continue
		}
		if pick == P7 {
			return h
		}
		var score float64
		switch pick {
		case P1:
			score = st.availAt(h, st.needArgMax[j])
		case P2:
			if st.capSum[h] <= 0 {
				continue
			}
			// after = sum(demandLoad[h] + demand[j]), summed in dimension
			// order to match the allocating formulation bit-for-bit.
			dl, dem := st.demandLoad[h], st.demand[j]
			after := 0.0
			for d := range dl {
				after += dl[d] + dem[d]
			}
			score = after / st.capSum[h]
		case P3, P5:
			score = st.availAt(h, st.reqArgMax[j])
		case P4, P6:
			score = st.availSum(h)
		}
		if better(score, h) {
			best, bestScore = h, score
		}
	}
	return best
}

// solveWith runs one greedy algorithm on st's problem using a precomputed
// service order, reusing st and its placement buffer across calls.
func solveWith(st *state, order []int, pickStrat PickStrategy) *core.Result {
	st.reset()
	pl := st.placement
	for i := range pl {
		pl[i] = core.Unplaced
	}
	for _, j := range order {
		h := st.pickNode(j, pickStrat)
		if h < 0 {
			return &core.Result{Placement: pl.Clone()}
		}
		pl[j] = h
		st.place(j, h)
	}
	return core.EvaluatePlacement(st.p, pl)
}

// Solve runs one greedy algorithm (sortStrat, pickStrat) on p.
func Solve(p *core.Problem, sortStrat SortStrategy, pickStrat PickStrategy) *core.Result {
	return solveWith(newState(p), orderServices(p, sortStrat), pickStrat)
}

// MetaGreedy runs all 49 greedy algorithms and returns the best result
// (highest minimum yield among those that solve the instance). The seven
// service orders are sorted once and shared across the 49 combos. When
// parallel is true the combos are distributed over a bounded pool of at most
// GOMAXPROCS workers, each owning one reusable state arena.
func MetaGreedy(p *core.Problem, parallel bool) *core.Result {
	type combo struct {
		s SortStrategy
		k PickStrategy
	}
	var combos []combo
	for _, s := range SortStrategies() {
		for _, k := range PickStrategies() {
			combos = append(combos, combo{s, k})
		}
	}
	orders := orderTable(p)
	results := make([]*core.Result, len(combos))
	if parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(combos) {
			workers = len(combos)
		}
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st := newState(p)
				for i := range ch {
					c := combos[i]
					results[i] = solveWith(st, orders[c.s], c.k)
				}
			}()
		}
		for i := range combos {
			ch <- i
		}
		close(ch)
		wg.Wait()
	} else {
		st := newState(p)
		for i, c := range combos {
			results[i] = solveWith(st, orders[c.s], c.k)
		}
	}
	best := &core.Result{}
	for _, r := range results {
		if r.Solved && (!best.Solved || r.MinYield > best.MinYield) {
			best = r
		}
	}
	return best
}
