// Package trace reads and writes cluster workload traces in a simplified
// Google-cluster-data-style CSV format and extracts the two service-size
// marginals the paper uses from the dataset [19]: requested core counts and
// memory fractions. Extracted empirical distributions plug directly into the
// workload generator (they implement workload.Sampler), and can also be
// fitted back to the parametric form used by workload.Google.
//
// The public Google trace cannot ship with an offline module, so Synthesize
// produces statistically plausible trace files; the ingestion pipeline is
// identical either way.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"

	"vmalloc/internal/workload"
)

// EventType mirrors the Google trace task-event taxonomy (only the values
// the extractor interprets are listed).
type EventType int

const (
	// EventSubmit is a task submission (carries the resource request).
	EventSubmit EventType = 0
	// EventSchedule is a task being scheduled on a machine.
	EventSchedule EventType = 1
	// EventFinish is a normal task completion.
	EventFinish EventType = 4
)

// Record is one task event row: timestamp, job, task index within job,
// event type, requested CPU cores and requested memory as a fraction of a
// reference machine.
type Record struct {
	Timestamp int64
	JobID     int64
	TaskIndex int
	Event     EventType
	Cores     int
	MemFrac   float64
}

// Write emits records as CSV (one row per record, no header), the layout
// Read expects.
func Write(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	for _, r := range recs {
		row := []string{
			strconv.FormatInt(r.Timestamp, 10),
			strconv.FormatInt(r.JobID, 10),
			strconv.Itoa(r.TaskIndex),
			strconv.Itoa(int(r.Event)),
			strconv.Itoa(r.Cores),
			strconv.FormatFloat(r.MemFrac, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses a CSV trace. Rows with the wrong column count or unparsable
// fields produce errors identifying the offending line.
func Read(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	var out []Record
	line := 0
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
		}
		line++
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseRow(row []string) (Record, error) {
	var rec Record
	var err error
	if rec.Timestamp, err = strconv.ParseInt(row[0], 10, 64); err != nil {
		return rec, fmt.Errorf("bad timestamp %q", row[0])
	}
	if rec.JobID, err = strconv.ParseInt(row[1], 10, 64); err != nil {
		return rec, fmt.Errorf("bad job id %q", row[1])
	}
	if rec.TaskIndex, err = strconv.Atoi(row[2]); err != nil {
		return rec, fmt.Errorf("bad task index %q", row[2])
	}
	ev, err := strconv.Atoi(row[3])
	if err != nil {
		return rec, fmt.Errorf("bad event type %q", row[3])
	}
	rec.Event = EventType(ev)
	if rec.Cores, err = strconv.Atoi(row[4]); err != nil || rec.Cores < 0 {
		return rec, fmt.Errorf("bad core count %q", row[4])
	}
	if rec.MemFrac, err = strconv.ParseFloat(row[5], 64); err != nil ||
		rec.MemFrac < 0 || math.IsNaN(rec.MemFrac) || math.IsInf(rec.MemFrac, 0) {
		return rec, fmt.Errorf("bad memory fraction %q", row[5])
	}
	return rec, nil
}

// ReadFile reads a trace from the named file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile writes a trace to the named file.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, recs); err != nil {
		return err
	}
	return f.Close()
}

// Synthesize generates a plausible trace of n submitted tasks (with matching
// schedule/finish events) from the default Google marginals, for offline use
// of the ingestion pipeline.
func Synthesize(n int, seed int64) []Record {
	g := workload.DefaultGoogle()
	rng := rand.New(rand.NewSource(seed))
	var out []Record
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(rng.ExpFloat64() * 1e6)
		cores := g.SampleCores(rng)
		mem := g.SampleMem(rng)
		job, task := int64(1000+i/4), i%4
		out = append(out,
			Record{Timestamp: t, JobID: job, TaskIndex: task, Event: EventSubmit, Cores: cores, MemFrac: mem},
			Record{Timestamp: t + int64(rng.Intn(1e6)), JobID: job, TaskIndex: task, Event: EventSchedule, Cores: cores, MemFrac: mem},
			Record{Timestamp: t + int64(1e6+rng.Intn(1e8)), JobID: job, TaskIndex: task, Event: EventFinish, Cores: cores, MemFrac: mem},
		)
	}
	return out
}

// Empirical holds the marginals extracted from submit events. It implements
// workload.Sampler by bootstrap resampling.
type Empirical struct {
	// CoreValues and CoreWeights form the empirical core-count distribution.
	CoreValues  []int
	CoreWeights []float64
	// MemFracs holds the raw memory fractions (sorted ascending).
	MemFracs []float64
	// ElemCPURequirement is the reference elementary CPU requirement used
	// when generating services (defaults to the Google default).
	ElemCPURequirement float64
}

// Extract builds empirical marginals from the submit events of a trace.
func Extract(recs []Record) (*Empirical, error) {
	counts := map[int]int{}
	var mems []float64
	for _, r := range recs {
		if r.Event != EventSubmit {
			continue
		}
		if r.Cores <= 0 {
			continue // tasks without a CPU request carry no signal
		}
		counts[r.Cores]++
		mems = append(mems, clampMem(r.MemFrac))
	}
	if len(mems) == 0 {
		return nil, errors.New("trace: no usable submit events")
	}
	e := &Empirical{
		MemFracs:           mems,
		ElemCPURequirement: workload.DefaultGoogle().ElemCPURequirement,
	}
	for c := range counts {
		e.CoreValues = append(e.CoreValues, c)
	}
	sort.Ints(e.CoreValues)
	total := 0
	for _, c := range e.CoreValues {
		total += counts[c]
	}
	for _, c := range e.CoreValues {
		e.CoreWeights = append(e.CoreWeights, float64(counts[c])/float64(total))
	}
	sort.Float64s(e.MemFracs)
	return e, nil
}

func clampMem(m float64) float64 {
	g := workload.DefaultGoogle()
	if m < g.MemMin {
		return g.MemMin
	}
	if m > g.MemMax {
		return g.MemMax
	}
	return m
}

// SampleCores implements workload.Sampler by drawing from the empirical
// core-count distribution.
func (e *Empirical) SampleCores(rng *rand.Rand) int {
	r := rng.Float64()
	for i, w := range e.CoreWeights {
		r -= w
		if r < 0 {
			return e.CoreValues[i]
		}
	}
	return e.CoreValues[len(e.CoreValues)-1]
}

// SampleMem implements workload.Sampler by bootstrap resampling the
// empirical memory fractions.
func (e *Empirical) SampleMem(rng *rand.Rand) float64 {
	return e.MemFracs[rng.Intn(len(e.MemFracs))]
}

// ElemCPUReq implements workload.Sampler.
func (e *Empirical) ElemCPUReq() float64 { return e.ElemCPURequirement }

// FitGoogle fits the parametric workload.Google form to the empirical
// marginals: categorical core weights as observed, and a log-normal fitted
// to the memory fractions by log-moment matching.
func (e *Empirical) FitGoogle() *workload.Google {
	g := workload.DefaultGoogle()
	g.CoreChoices = append([]int(nil), e.CoreValues...)
	g.CoreWeights = append([]float64(nil), e.CoreWeights...)
	mean, sd := logMoments(e.MemFracs)
	g.MemLogMean = mean
	g.MemLogSigma = sd
	g.ElemCPURequirement = e.ElemCPURequirement
	return g
}

func logMoments(xs []float64) (mean, sd float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += math.Log(x)
	}
	mean /= n
	for _, x := range xs {
		d := math.Log(x) - mean
		sd += d * d
	}
	if len(xs) > 1 {
		sd = math.Sqrt(sd / (n - 1))
	}
	return mean, sd
}
