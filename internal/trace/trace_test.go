package trace

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"vmalloc/internal/workload"
)

func TestWriteReadRoundTrip(t *testing.T) {
	recs := Synthesize(50, 1)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"1,2,3\n",                    // wrong column count
		"x,2,3,0,1,0.5\n",            // bad timestamp
		"1,2,3,0,notanint,0.5\n",     // bad cores
		"1,2,3,0,1,NaN\n",            // NaN memory
		"1,2,3,0,-1,0.5\n",           // negative cores
		"1,2,3,zero,1,0.5\n",         // bad event
		"1,2,3.5,0,1,0.5\n",          // bad task index
		"1,notajob,3,0,1,0.5\n",      // bad job
		"1,2,3,0,1,-0.5\n",           // negative memory
		"1,2,3,0,1,0.5\n1,2,3,0,1\n", // second row short
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed row accepted: %q", i, c)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	recs := Synthesize(10, 2)
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d vs %d", len(got), len(recs))
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestSynthesizeStructure(t *testing.T) {
	recs := Synthesize(20, 3)
	if len(recs) != 60 {
		t.Fatalf("expected submit+schedule+finish per task: %d", len(recs))
	}
	submits := 0
	for _, r := range recs {
		if r.Event == EventSubmit {
			submits++
			if r.Cores < 1 || r.MemFrac <= 0 {
				t.Fatalf("bad submit %+v", r)
			}
		}
	}
	if submits != 20 {
		t.Fatalf("submits = %d", submits)
	}
}

func TestExtractMarginals(t *testing.T) {
	recs := Synthesize(2000, 4)
	e, err := Extract(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Weights sum to 1 and follow the generating distribution loosely.
	sum := 0.0
	for _, w := range e.CoreWeights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum %v", sum)
	}
	if len(e.MemFracs) != 2000 {
		t.Fatalf("|mems| = %d", len(e.MemFracs))
	}
	// 1-core tasks should dominate (generator weight 0.60).
	if e.CoreValues[0] != 1 || e.CoreWeights[0] < 0.5 {
		t.Fatalf("core marginal off: %v %v", e.CoreValues, e.CoreWeights)
	}
}

func TestExtractIgnoresNonSubmitAndZeroCore(t *testing.T) {
	recs := []Record{
		{Event: EventSchedule, Cores: 4, MemFrac: 0.2},
		{Event: EventSubmit, Cores: 0, MemFrac: 0.2}, // no CPU request
		{Event: EventSubmit, Cores: 2, MemFrac: 0.1},
	}
	e, err := Extract(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.MemFracs) != 1 || e.CoreValues[0] != 2 {
		t.Fatalf("extract = %+v", e)
	}
}

func TestExtractEmptyErrors(t *testing.T) {
	if _, err := Extract(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Extract([]Record{{Event: EventFinish}}); err == nil {
		t.Fatal("no-submit trace accepted")
	}
}

func TestEmpiricalSampler(t *testing.T) {
	e, err := Extract(Synthesize(1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		c := e.SampleCores(rng)
		seen[c] = true
		valid := false
		for _, v := range e.CoreValues {
			if v == c {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("sampled core %d not in support %v", c, e.CoreValues)
		}
		m := e.SampleMem(rng)
		if m < e.MemFracs[0] || m > e.MemFracs[len(e.MemFracs)-1] {
			t.Fatalf("sampled mem %v outside empirical range", m)
		}
	}
	if len(seen) < 2 {
		t.Fatal("sampler collapsed to one core value")
	}
}

func TestFitGoogleRecoversMoments(t *testing.T) {
	// Build a trace from known marginals, fit back, compare.
	e, err := Extract(Synthesize(5000, 7))
	if err != nil {
		t.Fatal(err)
	}
	g := e.FitGoogle()
	def := workload.DefaultGoogle()
	if math.Abs(g.MemLogMean-def.MemLogMean) > 0.2 {
		t.Fatalf("log-mean %v, want ~%v", g.MemLogMean, def.MemLogMean)
	}
	// Sigma is attenuated by truncation to [MemMin, MemMax]; allow slack.
	if g.MemLogSigma < 0.5 || g.MemLogSigma > 1.2 {
		t.Fatalf("log-sigma %v, want ~%v (truncated)", g.MemLogSigma, def.MemLogSigma)
	}
	// Core weights approximately match.
	for i, c := range g.CoreChoices {
		var want float64
		for k, v := range def.CoreChoices {
			if v == c {
				want = def.CoreWeights[k]
			}
		}
		if math.Abs(g.CoreWeights[i]-want) > 0.05 {
			t.Fatalf("core %d weight %v, want ~%v", c, g.CoreWeights[i], want)
		}
	}
}

func TestGenerateFromEmpirical(t *testing.T) {
	e, err := Extract(Synthesize(500, 8))
	if err != nil {
		t.Fatal(err)
	}
	scn := workload.Scenario{Hosts: 8, Services: 30, COV: 0.5, Slack: 0.4, Seed: 9}
	p := workload.GenerateSampled(scn, e)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumServices() != 30 {
		t.Fatalf("services = %d", p.NumServices())
	}
	// Normalizations still hold with an empirical sampler.
	totalNeed := 0.0
	for j := range p.Services {
		totalNeed += p.Services[j].NeedAgg[workload.CPU]
	}
	if math.Abs(totalNeed-p.TotalAggregate()[workload.CPU]) > 1e-6 {
		t.Fatal("CPU normalization broken with empirical sampler")
	}
}
