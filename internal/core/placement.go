package core

import (
	"fmt"
	"math"

	"vmalloc/internal/vec"
)

// Unplaced marks a service without a node in a Placement.
const Unplaced = -1

// Placement maps each service index to a node index (or Unplaced).
type Placement []int

// NewPlacement returns a placement with all services unplaced.
func NewPlacement(numServices int) Placement {
	p := make(Placement, numServices)
	for i := range p {
		p[i] = Unplaced
	}
	return p
}

// Complete reports whether every service has a node.
func (pl Placement) Complete() bool {
	for _, h := range pl {
		if h == Unplaced {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (pl Placement) Clone() Placement {
	c := make(Placement, len(pl))
	copy(c, pl)
	return c
}

// ServicesOn returns the indices of the services placed on node h, in
// increasing service order.
func (pl Placement) ServicesOn(h int) []int {
	var out []int
	for j, n := range pl {
		if n == h {
			out = append(out, j)
		}
	}
	return out
}

// Validate checks that pl is structurally consistent with the problem and
// that requirements are satisfiable at yield 0 on every node: elementary
// requirements fit within node elementary capacities and summed aggregate
// requirements fit within node aggregate capacities.
func (pl Placement) Validate(p *Problem) error {
	if len(pl) != p.NumServices() {
		return fmt.Errorf("core: placement has %d entries, want %d", len(pl), p.NumServices())
	}
	loads := make([]vec.Vec, p.NumNodes())
	for h := range loads {
		loads[h] = vec.New(p.Dim())
	}
	for j, h := range pl {
		if h == Unplaced {
			continue
		}
		if h < 0 || h >= p.NumNodes() {
			return fmt.Errorf("core: service %d placed on invalid node %d", j, h)
		}
		s := &p.Services[j]
		if !s.ReqElem.LessEq(p.Nodes[h].Elementary, DefaultEpsilon) {
			return fmt.Errorf("core: service %d elementary requirement %v exceeds node %d elementary capacity %v",
				j, s.ReqElem, h, p.Nodes[h].Elementary)
		}
		loads[h].AccumAdd(s.ReqAgg)
	}
	for h, load := range loads {
		if !load.LessEq(p.Nodes[h].Aggregate, 1e-6) {
			return fmt.Errorf("core: node %d aggregate requirement load %v exceeds capacity %v",
				h, load, p.Nodes[h].Aggregate)
		}
	}
	return nil
}

// MaxUniformYield returns the largest yield y in [0,1] such that every
// service in the given set can simultaneously run at yield y on node n, or a
// negative value if even the requirements (y = 0) do not fit.
//
// Because all constraints are linear and increasing in y, the max-min yield
// on a single node equals the max uniform yield: any allocation granting each
// service at least y can be reduced to the uniform-y allocation without
// violating constraints.
func MaxUniformYield(p *Problem, h int, services []int) float64 {
	n := &p.Nodes[h]
	d := p.Dim()
	y := 1.0
	// Elementary constraints: r^e + y*n^e <= c^e for each service.
	for _, j := range services {
		s := &p.Services[j]
		for dd := 0; dd < d; dd++ {
			slack := n.Elementary[dd] - s.ReqElem[dd]
			if slack < -DefaultEpsilon {
				return -1
			}
			if s.NeedElem[dd] > 0 {
				y = math.Min(y, slack/s.NeedElem[dd])
			}
		}
	}
	// Aggregate constraints: sum(r^a) + y*sum(n^a) <= c^a per dimension.
	for dd := 0; dd < d; dd++ {
		sumReq, sumNeed := 0.0, 0.0
		for _, j := range services {
			sumReq += p.Services[j].ReqAgg[dd]
			sumNeed += p.Services[j].NeedAgg[dd]
		}
		slack := n.Aggregate[dd] - sumReq
		if slack < -DefaultEpsilon {
			return -1
		}
		if sumNeed > 0 {
			y = math.Min(y, slack/sumNeed)
		}
	}
	if y < 0 {
		y = 0
	}
	return y
}

// Result is the outcome of running an allocation algorithm.
type Result struct {
	// Solved reports whether a complete placement satisfying all rigid
	// requirements was found.
	Solved bool
	// Placement maps services to nodes (valid only when Solved).
	Placement Placement
	// MinYield is the achieved minimum yield over all services.
	MinYield float64
	// Yields holds the per-service yields implied by giving every node its
	// max uniform yield (valid only when Solved).
	Yields []float64
}

// EvaluatePlacement computes the Result implied by a placement: each node
// grants its services the node's maximum uniform yield, and the minimum
// yield is the minimum over nodes hosting at least one service. If the
// placement is incomplete or infeasible, Solved is false.
func EvaluatePlacement(p *Problem, pl Placement) *Result {
	res := &Result{Placement: pl.Clone()}
	if !pl.Complete() {
		return res
	}
	byNode := make([][]int, p.NumNodes())
	for j, h := range pl {
		byNode[h] = append(byNode[h], j)
	}
	yields := make([]float64, p.NumServices())
	minY := 1.0
	for h, svcs := range byNode {
		if len(svcs) == 0 {
			continue
		}
		y := MaxUniformYield(p, h, svcs)
		if y < 0 {
			return res // infeasible placement
		}
		for _, j := range svcs {
			yields[j] = y
		}
		if y < minY {
			minY = y
		}
	}
	res.Solved = true
	res.MinYield = minY
	res.Yields = yields
	return res
}

// FeasibleAtYield reports whether the placement supports a uniform yield of
// at least y on every node.
func FeasibleAtYield(p *Problem, pl Placement, y float64) bool {
	if !pl.Complete() {
		return false
	}
	byNode := make([][]int, p.NumNodes())
	for j, h := range pl {
		byNode[h] = append(byNode[h], j)
	}
	for h, svcs := range byNode {
		if len(svcs) == 0 {
			continue
		}
		if MaxUniformYield(p, h, svcs) < y-1e-9 {
			return false
		}
	}
	return true
}
