package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"vmalloc/internal/vec"
)

// This file pins a *stable* JSON serialization for the problem model: the
// byte output of Marshal is a canonical function of the value — fixed key
// order, empty vectors as [], names omitted when empty, floats in the
// shortest representation that round-trips exactly — independent of
// encoding/json internals. Snapshots of the durable allocation service, the
// vmallocd HTTP API and the `vmalloc -state-in/-state-out` files all share
// it, so state written by one tier is bit-stable input for the others (and
// for golden tests).

// appendJSONFloat appends the canonical JSON form of f: shortest decimal
// that parses back to exactly f, using the same fixed/exponent cutover as
// encoding/json so canonical output matches what default marshaling has
// historically produced. Non-finite values are a hard error — they cannot
// survive a JSON round trip.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("core: value %g not representable in JSON", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) { //vmalloc:nondet-ok exact-zero/threshold test selecting a formatting branch, not an arithmetic comparison
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// appendJSONVec appends v as a JSON array; nil and empty both encode as [].
func appendJSONVec(b []byte, v vec.Vec) ([]byte, error) {
	b = append(b, '[')
	var err error
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		if b, err = appendJSONFloat(b, x); err != nil {
			return nil, err
		}
	}
	return append(b, ']'), nil
}

func appendJSONName(b []byte, name string) ([]byte, error) {
	q, err := json.Marshal(name)
	if err != nil {
		return nil, err
	}
	b = append(b, `"name":`...)
	b = append(b, q...)
	return append(b, ','), nil
}

// MarshalJSON emits the canonical form of a node:
// {"name":...,"elementary":[...],"aggregate":[...]} with name omitted when
// empty.
func (n Node) MarshalJSON() ([]byte, error) {
	b := []byte{'{'}
	var err error
	if n.Name != "" {
		if b, err = appendJSONName(b, n.Name); err != nil {
			return nil, err
		}
	}
	b = append(b, `"elementary":`...)
	if b, err = appendJSONVec(b, n.Elementary); err != nil {
		return nil, err
	}
	b = append(b, `,"aggregate":`...)
	if b, err = appendJSONVec(b, n.Aggregate); err != nil {
		return nil, err
	}
	return append(b, '}'), nil
}

// MarshalJSON emits the canonical form of a service: name (omitted when
// empty) followed by req_elem, req_agg, need_elem, need_agg.
func (s Service) MarshalJSON() ([]byte, error) {
	b := []byte{'{'}
	var err error
	if s.Name != "" {
		if b, err = appendJSONName(b, s.Name); err != nil {
			return nil, err
		}
	}
	for _, f := range []struct {
		key string
		v   vec.Vec
	}{
		{`"req_elem":`, s.ReqElem},
		{`,"req_agg":`, s.ReqAgg},
		{`,"need_elem":`, s.NeedElem},
		{`,"need_agg":`, s.NeedAgg},
	} {
		b = append(b, f.key...)
		if b, err = appendJSONVec(b, f.v); err != nil {
			return nil, err
		}
	}
	return append(b, '}'), nil
}

// MarshalJSON emits the canonical problem form: {"nodes":[...],
// "services":[...]} with empty slices as [].
func (p Problem) MarshalJSON() ([]byte, error) {
	b := append([]byte{'{'}, `"nodes":[`...)
	for i := range p.Nodes {
		if i > 0 {
			b = append(b, ',')
		}
		nb, err := p.Nodes[i].MarshalJSON()
		if err != nil {
			return nil, err
		}
		b = append(b, nb...)
	}
	b = append(b, `],"services":[`...)
	for i := range p.Services {
		if i > 0 {
			b = append(b, ',')
		}
		sb, err := p.Services[i].MarshalJSON()
		if err != nil {
			return nil, err
		}
		b = append(b, sb...)
	}
	return append(b, ']', '}'), nil
}

// MarshalJSON emits a placement as a plain array of node indices with
// Unplaced as -1; nil encodes as [].
func (pl Placement) MarshalJSON() ([]byte, error) {
	b := []byte{'['}
	for i, h := range pl {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(h), 10)
	}
	return append(b, ']'), nil
}

// The unmarshal side decodes through alias types (same field tags, no
// methods) so the wire format stays symmetric with historical output, then
// normalizes: null vectors become empty, and values must be finite and
// non-negative — the journal/snapshot layer depends on decoded state never
// smuggling NaN or Inf into the engine's incremental load arithmetic.

type nodeAlias struct {
	Name       string  `json:"name,omitempty"`
	Elementary vec.Vec `json:"elementary"`
	Aggregate  vec.Vec `json:"aggregate"`
}

type serviceAlias struct {
	Name     string  `json:"name,omitempty"`
	ReqElem  vec.Vec `json:"req_elem"`
	ReqAgg   vec.Vec `json:"req_agg"`
	NeedElem vec.Vec `json:"need_elem"`
	NeedAgg  vec.Vec `json:"need_agg"`
}

// problemAlias reuses the element decoders (and their finiteness checks) —
// []Node and []Service, not the alias element types.
type problemAlias struct {
	Nodes    []Node    `json:"nodes"`
	Services []Service `json:"services"`
}

func checkFinite(kind string, v vec.Vec) (vec.Vec, error) {
	if v == nil {
		return vec.Vec{}, nil
	}
	for dd, x := range v {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("core: %s has invalid value %g in dimension %d", kind, x, dd)
		}
	}
	return v, nil
}

// UnmarshalJSON decodes a node, normalizing null vectors to empty and
// rejecting negative or non-finite capacities.
func (n *Node) UnmarshalJSON(data []byte) error {
	var a nodeAlias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	var err error
	if a.Elementary, err = checkFinite("node elementary capacity", a.Elementary); err != nil {
		return err
	}
	if a.Aggregate, err = checkFinite("node aggregate capacity", a.Aggregate); err != nil {
		return err
	}
	*n = Node{Name: a.Name, Elementary: a.Elementary, Aggregate: a.Aggregate}
	return nil
}

// UnmarshalJSON decodes a service, normalizing null vectors to empty and
// rejecting negative or non-finite entries.
func (s *Service) UnmarshalJSON(data []byte) error {
	var a serviceAlias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	var err error
	if a.ReqElem, err = checkFinite("service elementary requirement", a.ReqElem); err != nil {
		return err
	}
	if a.ReqAgg, err = checkFinite("service aggregate requirement", a.ReqAgg); err != nil {
		return err
	}
	if a.NeedElem, err = checkFinite("service elementary need", a.NeedElem); err != nil {
		return err
	}
	if a.NeedAgg, err = checkFinite("service aggregate need", a.NeedAgg); err != nil {
		return err
	}
	*s = Service{Name: a.Name, ReqElem: a.ReqElem, ReqAgg: a.ReqAgg,
		NeedElem: a.NeedElem, NeedAgg: a.NeedAgg}
	return nil
}

// UnmarshalJSON decodes a problem. Per-vector validation happens in the
// element decoders; cross-field consistency (matching dimensionalities,
// elementary <= aggregate) stays with Validate, which ReadJSON applies.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var a problemAlias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*p = Problem{Nodes: a.Nodes, Services: a.Services}
	return nil
}

// UnmarshalJSON decodes a placement from an array of integer node indices
// (Unplaced as -1). Fractional or sub-Unplaced values are rejected.
func (pl *Placement) UnmarshalJSON(data []byte) error {
	var raw []int
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("core: placement must be an array of node indices: %w", err)
	}
	for i, h := range raw {
		if h < Unplaced {
			return fmt.Errorf("core: placement entry %d is %d, below Unplaced (%d)", i, h, Unplaced)
		}
	}
	*pl = Placement(raw)
	return nil
}
