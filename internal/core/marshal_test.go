package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vmalloc/internal/vec"
)

var updateMarshalGolden = flag.Bool("marshal-golden.update", false, "rewrite the stable-JSON golden file")

// marshalTestProblem exercises the float formats the canonical encoder must
// pin: integers, fractions without exact binary representation, tiny and
// huge magnitudes spanning the fixed/exponent cutover, and names needing
// escaping.
func marshalTestProblem() *Problem {
	return &Problem{
		Nodes: []Node{
			{Name: "node \"a\"", Elementary: vec.Of(0.8, 1), Aggregate: vec.Of(3.2, 1)},
			{Elementary: vec.Of(1, 0.5), Aggregate: vec.Of(2, 0.5)},
		},
		Services: []Service{
			{
				Name:    "svc-0",
				ReqElem: vec.Of(0.1, 1e-7), ReqAgg: vec.Of(1.0/3.0, 0.2),
				NeedElem: vec.Of(2e21, 0), NeedAgg: vec.Of(0.30000000000000004, 123456789.5),
			},
			{
				ReqElem: vec.Of(0, 0), ReqAgg: vec.Of(0, 0),
				NeedElem: vec.Vec{}, NeedAgg: vec.Of(1e-9, 5),
			},
		},
	}
}

func TestStableJSONGolden(t *testing.T) {
	p := marshalTestProblem()
	got, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "problem_golden.json")
	if *updateMarshalGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -marshal-golden.update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical JSON drifted from golden:\n got  %s\n want %s", got, want)
	}

	// The golden bytes decode back to the identical problem (bit-exact
	// floats), and re-encoding is a fixed point.
	var back Problem
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, p) {
		t.Fatalf("round trip not exact:\n got  %+v\n want %+v", &back, p)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("re-encoding the decoded problem is not byte-identical")
	}
}

func TestStableJSONAcceptsHistoricalForm(t *testing.T) {
	// Files written by the pre-canonical (default encoding/json) marshaler
	// must keep decoding: same keys, null for empty vectors.
	historical := `{
	  "nodes": [{"name":"A","elementary":[0.8,1],"aggregate":[3.2,1]}],
	  "services": [{"req_elem":[0.5,0.5],"req_agg":[1,0.5],"need_elem":null,"need_agg":[1,0]}]
	}`
	var p Problem
	if err := json.Unmarshal([]byte(historical), &p); err != nil {
		t.Fatal(err)
	}
	if p.Services[0].NeedElem == nil {
		t.Fatal("null vector not normalized to empty")
	}
	if p.Nodes[0].Name != "A" || p.Services[0].ReqAgg[0] != 1 {
		t.Fatalf("decoded problem wrong: %+v", p)
	}
}

func TestStableJSONRejectsInvalidValues(t *testing.T) {
	for _, tc := range []string{
		`{"elementary":[-1],"aggregate":[1]}`,                            // negative capacity
		`{"elementary":[1],"aggregate":[1e999]}`,                         // overflows to +Inf... rejected by json itself
		`{"req_elem":[-0.5],"req_agg":[1],"need_elem":[],"need_agg":[]}`, // negative requirement
	} {
		var n Node
		var s Service
		errN := json.Unmarshal([]byte(tc), &n)
		errS := json.Unmarshal([]byte(tc), &s)
		if errN == nil && errS == nil {
			t.Fatalf("invalid input accepted by both decoders: %s", tc)
		}
	}
	if _, err := json.Marshal(Node{Elementary: vec.Of(math.NaN()), Aggregate: vec.Of(1)}); err == nil {
		t.Fatal("NaN marshaled")
	}
	if _, err := json.Marshal(Service{ReqElem: vec.Of(math.Inf(1))}); err == nil {
		t.Fatal("Inf marshaled")
	}
}

func TestPlacementJSONRoundTrip(t *testing.T) {
	pl := Placement{0, 2, Unplaced, 5}
	b, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[0,2,-1,5]" {
		t.Fatalf("canonical placement form: %s", b)
	}
	var back Placement
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, pl) {
		t.Fatalf("round trip: %v != %v", back, pl)
	}
	if b, err := json.Marshal(Placement(nil)); err != nil || string(b) != "[]" {
		t.Fatalf("nil placement: %s, %v", b, err)
	}
	for _, bad := range []string{`[0.5]`, `[-2]`, `{"a":1}`} {
		var p Placement
		if err := json.Unmarshal([]byte(bad), &p); err == nil {
			t.Fatalf("invalid placement accepted: %s", bad)
		}
	}
}

// TestWriteReadJSONStillWorks guards the pre-existing file I/O entry points
// against regressions from the custom marshalers.
func TestWriteReadJSONStillWorks(t *testing.T) {
	p := &Problem{
		Nodes:    []Node{{Elementary: vec.Of(1, 1), Aggregate: vec.Of(2, 2)}},
		Services: []Service{{ReqElem: vec.Of(0.5, 0.5), ReqAgg: vec.Of(0.5, 0.5), NeedElem: vec.Of(0.1, 0), NeedAgg: vec.Of(0.1, 0)}},
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatalf("WriteJSON/ReadJSON round trip: %+v != %+v", back, p)
	}
}
