package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmalloc/internal/vec"
)

// fig1Problem builds the example of paper Figure 1: two nodes and one
// service, D = 2 (CPU, memory).
func fig1Problem() *Problem {
	return &Problem{
		Nodes: []Node{
			{ // Node A: 4 cores of 0.8 (agg 3.2), memory 1.0
				Name:       "A",
				Elementary: vec.Of(0.8, 1.0),
				Aggregate:  vec.Of(3.2, 1.0),
			},
			{ // Node B: 2 cores of 1.0 (agg 2.0), memory 0.5
				Name:       "B",
				Elementary: vec.Of(1.0, 0.5),
				Aggregate:  vec.Of(2.0, 0.5),
			},
		},
		Services: []Service{
			{
				Name:     "svc",
				ReqElem:  vec.Of(0.5, 0.5),
				ReqAgg:   vec.Of(1.0, 0.5),
				NeedElem: vec.Of(0.5, 0.0),
				NeedAgg:  vec.Of(1.0, 0.0),
			},
		},
	}
}

func TestFigure1YieldOnNodeA(t *testing.T) {
	p := fig1Problem()
	// On node A the aggregate CPU capacity usable by this service is capped
	// by the elementary allocation: each of its virtual CPUs can get at most
	// 0.8 of a core. With elementary need 0.5+y*0.5 <= 0.8 => y <= 0.6, and
	// the aggregate constraint 1.0 + y*1.0 <= 3.2 is slack. The paper reads
	// the same 0.6 from the aggregate side ((1.6-1.0)/1.0).
	y := MaxUniformYield(p, 0, []int{0})
	if math.Abs(y-0.6) > 1e-12 {
		t.Fatalf("yield on node A = %v, want 0.6", y)
	}
}

func TestFigure1YieldOnNodeB(t *testing.T) {
	p := fig1Problem()
	y := MaxUniformYield(p, 1, []int{0})
	if math.Abs(y-1.0) > 1e-12 {
		t.Fatalf("yield on node B = %v, want 1.0", y)
	}
}

func TestFigure1BestPlacement(t *testing.T) {
	p := fig1Problem()
	resA := EvaluatePlacement(p, Placement{0})
	resB := EvaluatePlacement(p, Placement{1})
	if !resA.Solved || !resB.Solved {
		t.Fatal("both placements should be feasible")
	}
	if resB.MinYield <= resA.MinYield {
		t.Fatalf("node B (%v) should beat node A (%v)", resB.MinYield, resA.MinYield)
	}
}

func TestValidateAcceptsFig1(t *testing.T) {
	if err := fig1Problem().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsDimensionMismatch(t *testing.T) {
	p := fig1Problem()
	p.Services[0].ReqAgg = vec.Of(1.0)
	if err := p.Validate(); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestValidateRejectsNegativeValues(t *testing.T) {
	p := fig1Problem()
	p.Nodes[0].Aggregate[0] = -1
	if err := p.Validate(); err == nil {
		t.Fatal("expected negative-value error")
	}
}

func TestValidateRejectsElementaryAboveAggregate(t *testing.T) {
	p := fig1Problem()
	p.Nodes[0].Elementary[0] = 5
	if err := p.Validate(); err == nil {
		t.Fatal("expected elementary>aggregate error")
	}
}

func TestValidateRejectsEmptyProblem(t *testing.T) {
	p := &Problem{}
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for empty problem")
	}
}

func TestServiceDemandAlgebra(t *testing.T) {
	s := &fig1Problem().Services[0]
	if got := s.AggAt(0.5); math.Abs(got[0]-1.5) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("AggAt(0.5) = %v", got)
	}
	if got := s.ElemAt(1.0); math.Abs(got[0]-1.0) > 1e-12 {
		t.Fatalf("ElemAt(1.0) = %v", got)
	}
	if got := s.Demand(); math.Abs(got[0]-2.0) > 1e-12 {
		t.Fatalf("Demand = %v", got)
	}
}

func TestFitsRequirements(t *testing.T) {
	p := fig1Problem()
	s := &p.Services[0]
	zero := vec.New(2)
	if !s.FitsRequirements(&p.Nodes[0], zero) {
		t.Fatal("service should fit on empty node A")
	}
	// With existing aggregate load 2.5 CPU, requirement 1.0 exceeds 3.2.
	if s.FitsRequirements(&p.Nodes[0], vec.Of(2.5, 0.0)) {
		t.Fatal("service should not fit CPU-wise")
	}
	// Elementary violation: node with tiny cores.
	tiny := Node{Elementary: vec.Of(0.1, 1.0), Aggregate: vec.Of(3.2, 1.0)}
	if s.FitsRequirements(&tiny, zero) {
		t.Fatal("elementary requirement should not fit on 0.1 cores")
	}
}

func TestPlacementHelpers(t *testing.T) {
	pl := NewPlacement(3)
	if pl.Complete() {
		t.Fatal("fresh placement should be incomplete")
	}
	pl[0], pl[1], pl[2] = 1, 0, 1
	if !pl.Complete() {
		t.Fatal("should be complete")
	}
	on1 := pl.ServicesOn(1)
	if len(on1) != 2 || on1[0] != 0 || on1[1] != 2 {
		t.Fatalf("ServicesOn(1) = %v", on1)
	}
	c := pl.Clone()
	c[0] = 0
	if pl[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestPlacementValidate(t *testing.T) {
	p := fig1Problem()
	if err := (Placement{1}).Validate(p); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	if err := (Placement{7}).Validate(p); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := (Placement{0, 1}).Validate(p); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestPlacementValidateAggregateOverflow(t *testing.T) {
	p := fig1Problem()
	// Two copies of the service on node B: 2 * 1.0 CPU requirement = 2.0
	// fits exactly, but memory 2*0.5 = 1.0 > 0.5 fails.
	p.Services = append(p.Services, p.Services[0])
	if err := (Placement{1, 1}).Validate(p); err == nil {
		t.Fatal("aggregate overflow accepted")
	}
}

func TestMaxUniformYieldInfeasible(t *testing.T) {
	p := fig1Problem()
	p.Services = append(p.Services, p.Services[0])
	// Node B cannot hold two copies (memory).
	if y := MaxUniformYield(p, 1, []int{0, 1}); y >= 0 {
		t.Fatalf("expected negative yield for infeasible set, got %v", y)
	}
}

func TestMaxUniformYieldZeroNeeds(t *testing.T) {
	p := fig1Problem()
	p.Services[0].NeedElem = vec.New(2)
	p.Services[0].NeedAgg = vec.New(2)
	if y := MaxUniformYield(p, 0, []int{0}); y != 1.0 {
		t.Fatalf("zero-need service should reach yield 1, got %v", y)
	}
}

func TestEvaluatePlacementIncomplete(t *testing.T) {
	p := fig1Problem()
	res := EvaluatePlacement(p, NewPlacement(1))
	if res.Solved {
		t.Fatal("incomplete placement should not be solved")
	}
}

func TestFeasibleAtYield(t *testing.T) {
	p := fig1Problem()
	if !FeasibleAtYield(p, Placement{0}, 0.6) {
		t.Fatal("yield 0.6 should be feasible on node A")
	}
	if FeasibleAtYield(p, Placement{0}, 0.61) {
		t.Fatal("yield 0.61 should be infeasible on node A")
	}
	if !FeasibleAtYield(p, Placement{1}, 1.0) {
		t.Fatal("yield 1.0 should be feasible on node B")
	}
}

func TestTotals(t *testing.T) {
	p := fig1Problem()
	agg := p.TotalAggregate()
	if math.Abs(agg[0]-5.2) > 1e-12 || math.Abs(agg[1]-1.5) > 1e-12 {
		t.Fatalf("TotalAggregate = %v", agg)
	}
	dem := p.TotalDemand()
	if math.Abs(dem[0]-2.0) > 1e-12 || math.Abs(dem[1]-0.5) > 1e-12 {
		t.Fatalf("TotalDemand = %v", dem)
	}
	req := p.TotalRequirements()
	if math.Abs(req[0]-1.0) > 1e-12 {
		t.Fatalf("TotalRequirements = %v", req)
	}
}

func TestCloneDeep(t *testing.T) {
	p := fig1Problem()
	q := p.Clone()
	q.Nodes[0].Aggregate[0] = 99
	q.Services[0].ReqAgg[0] = 99
	if p.Nodes[0].Aggregate[0] == 99 || p.Services[0].ReqAgg[0] == 99 {
		t.Fatal("Clone is shallow")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := fig1Problem()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 2 || q.NumServices() != 1 {
		t.Fatalf("round trip lost data: %+v", q)
	}
	if q.Nodes[0].Aggregate[0] != 3.2 {
		t.Fatalf("round trip changed values: %v", q.Nodes[0].Aggregate)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"nodes":[],"services":[]}`)); err == nil {
		t.Fatal("empty problem accepted")
	}
}

// randomFeasibleProblem builds a random problem plus a random complete
// placement guaranteed to satisfy requirements (requirements are scaled to
// fit), used by the property tests below.
func randomFeasibleProblem(rng *rand.Rand, h, j int) (*Problem, Placement) {
	p := &Problem{}
	for i := 0; i < h; i++ {
		agg := vec.Of(0.5+rng.Float64(), 0.5+rng.Float64())
		p.Nodes = append(p.Nodes, Node{
			Elementary: agg.Scale(0.25 + 0.75*rng.Float64()),
			Aggregate:  agg,
		})
	}
	pl := make(Placement, j)
	perNode := make([]int, h)
	for s := 0; s < j; s++ {
		pl[s] = rng.Intn(h)
		perNode[pl[s]]++
	}
	for s := 0; s < j; s++ {
		n := &p.Nodes[pl[s]]
		k := float64(perNode[pl[s]])
		req := n.Aggregate.Scale(rng.Float64() * 0.9 / k)
		reqE := req.Clone()
		for d := range reqE {
			if reqE[d] > n.Elementary[d] {
				reqE[d] = n.Elementary[d]
			}
		}
		p.Services = append(p.Services, Service{
			ReqElem: reqE, ReqAgg: req,
			NeedElem: vec.Of(rng.Float64()*0.2, rng.Float64()*0.2),
			NeedAgg:  vec.Of(rng.Float64()*0.5, rng.Float64()*0.5),
		})
	}
	return p, pl
}

// Property: the yield returned by MaxUniformYield is feasible, and a slightly
// larger yield is not (when the max is below 1).
func TestQuickMaxUniformYieldTight(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		p, pl := randomFeasibleProblem(rng, 1+rng.Intn(3), 1+rng.Intn(6))
		res := EvaluatePlacement(p, pl)
		if !res.Solved {
			continue
		}
		y := res.MinYield
		if y < 0 || y > 1 {
			t.Fatalf("yield out of range: %v", y)
		}
		if !FeasibleAtYield(p, pl, y-1e-7) {
			t.Fatalf("achieved yield %v not feasible", y)
		}
		if y < 0.999 && FeasibleAtYield(p, pl, y+1e-4) {
			t.Fatalf("yield %v is not maximal", y)
		}
	}
}

// Property: adding a service to a node never increases the node's max
// uniform yield (monotonicity).
func TestQuickYieldMonotoneInLoad(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randomFeasibleProblem(rng, 1, 4)
		all := []int{0, 1, 2, 3}
		sub := all[:3]
		ySub := MaxUniformYield(p, 0, sub)
		yAll := MaxUniformYield(p, 0, all)
		if ySub < 0 {
			// If the subset does not fit, the superset must not either.
			return yAll < 0
		}
		return yAll <= ySub+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
