package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaterializeFig1(t *testing.T) {
	p := fig1Problem()
	res := EvaluatePlacement(p, Placement{1})
	al, err := Materialize(p, res)
	if err != nil {
		t.Fatal(err)
	}
	sa := al.Services[0]
	if sa.Node != 1 || math.Abs(sa.Yield-1.0) > 1e-12 {
		t.Fatalf("allocation = %+v", sa)
	}
	// At yield 1: elementary (1.0, 0.5), aggregate (2.0, 0.5).
	if math.Abs(sa.Elementary[0]-1.0) > 1e-12 || math.Abs(sa.Aggregate[0]-2.0) > 1e-12 {
		t.Fatalf("vectors: elem %v agg %v", sa.Elementary, sa.Aggregate)
	}
	if err := al.Check(p, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeRejectsUnsolved(t *testing.T) {
	p := fig1Problem()
	if _, err := Materialize(p, &Result{}); err == nil {
		t.Fatal("expected error for unsolved result")
	}
	if _, err := Materialize(p, nil); err == nil {
		t.Fatal("expected error for nil result")
	}
}

func TestMaterializeRejectsShapeMismatch(t *testing.T) {
	p := fig1Problem()
	res := &Result{Solved: true, Placement: Placement{0, 1}, Yields: []float64{1, 1}}
	if _, err := Materialize(p, res); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAllocationCheckCatchesOverflow(t *testing.T) {
	p := fig1Problem()
	res := EvaluatePlacement(p, Placement{1})
	al, err := Materialize(p, res)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the load.
	al.NodeLoad[1][0] = 99
	if err := al.Check(p, 1e-9); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestUtilization(t *testing.T) {
	p := fig1Problem()
	res := EvaluatePlacement(p, Placement{1})
	al, err := Materialize(p, res)
	if err != nil {
		t.Fatal(err)
	}
	u := al.Utilization(p)
	// CPU: 2.0 used of 5.2 total; memory 0.5 of 1.5.
	if math.Abs(u[0]-2.0/5.2) > 1e-9 || math.Abs(u[1]-0.5/1.5) > 1e-9 {
		t.Fatalf("utilization = %v", u)
	}
}

// Property: every materialized allocation from EvaluatePlacement passes
// Check — the yields computed by MaxUniformYield are always realizable.
func TestMaterializedAllocationsAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 200; iter++ {
		p, pl := randomFeasibleProblem(rng, 1+rng.Intn(3), 1+rng.Intn(6))
		res := EvaluatePlacement(p, pl)
		if !res.Solved {
			continue
		}
		al, err := Materialize(p, res)
		if err != nil {
			t.Fatal(err)
		}
		if err := al.Check(p, 1e-6); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		u := al.Utilization(p)
		for d, x := range u {
			if x < -1e-9 || x > 1+1e-6 {
				t.Fatalf("iter %d: utilization[%d] = %v", iter, d, x)
			}
		}
	}
}

func TestValidateRejectsNaNAndInf(t *testing.T) {
	p := fig1Problem()
	p.Nodes[0].Aggregate[0] = math.NaN()
	if err := p.Validate(); err == nil {
		t.Fatal("NaN accepted")
	}
	q := fig1Problem()
	q.Services[0].NeedAgg[0] = math.Inf(1)
	if err := q.Validate(); err == nil {
		t.Fatal("Inf accepted")
	}
}
