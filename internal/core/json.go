package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the problem to w as indented JSON.
func (p *Problem) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON parses a problem from r and validates it.
func ReadJSON(r io.Reader) (*Problem, error) {
	var p Problem
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding problem: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// SaveFile writes the problem to the named file.
func (p *Problem) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads and validates a problem from the named file.
func LoadFile(path string) (*Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
