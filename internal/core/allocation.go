package core

import (
	"fmt"

	"vmalloc/internal/vec"
)

// ServiceAllocation materializes the concrete resource allocation of one
// service at its assigned yield: the ordered vector pair of §2 — the maximum
// elementary allocation and the aggregate allocation — alongside the node
// and yield that produced it.
type ServiceAllocation struct {
	Service int
	Node    int
	Yield   float64
	// Elementary = r^e + yield·n^e: the cap on any single virtual element.
	Elementary vec.Vec
	// Aggregate = r^a + yield·n^a: the total allocation across elements.
	Aggregate vec.Vec
}

// Allocation is the full materialized allocation of a solved placement.
type Allocation struct {
	Services []ServiceAllocation
	// NodeLoad[h] is the summed aggregate allocation on node h.
	NodeLoad []vec.Vec
}

// Materialize converts a solved Result into concrete per-service allocation
// vectors. It errors if the result is unsolved or internally inconsistent.
func Materialize(p *Problem, res *Result) (*Allocation, error) {
	if res == nil || !res.Solved {
		return nil, fmt.Errorf("core: cannot materialize an unsolved result")
	}
	if len(res.Placement) != p.NumServices() || len(res.Yields) != p.NumServices() {
		return nil, fmt.Errorf("core: result shape mismatch: placement %d, yields %d, services %d",
			len(res.Placement), len(res.Yields), p.NumServices())
	}
	al := &Allocation{
		Services: make([]ServiceAllocation, p.NumServices()),
		NodeLoad: make([]vec.Vec, p.NumNodes()),
	}
	for h := range al.NodeLoad {
		al.NodeLoad[h] = vec.New(p.Dim())
	}
	for j := range p.Services {
		s := &p.Services[j]
		h := res.Placement[j]
		if h < 0 || h >= p.NumNodes() {
			return nil, fmt.Errorf("core: service %d placed on invalid node %d", j, h)
		}
		y := res.Yields[j]
		sa := ServiceAllocation{
			Service:    j,
			Node:       h,
			Yield:      y,
			Elementary: s.ElemAt(y),
			Aggregate:  s.AggAt(y),
		}
		al.Services[j] = sa
		al.NodeLoad[h].AccumAdd(sa.Aggregate)
	}
	return al, nil
}

// Check verifies that the materialized allocation respects every node's
// elementary and aggregate capacities within tolerance eps.
func (al *Allocation) Check(p *Problem, eps float64) error {
	for _, sa := range al.Services {
		if !sa.Elementary.LessEq(p.Nodes[sa.Node].Elementary, eps) {
			return fmt.Errorf("core: service %d elementary allocation %v exceeds node %d capacity %v",
				sa.Service, sa.Elementary, sa.Node, p.Nodes[sa.Node].Elementary)
		}
	}
	for h, load := range al.NodeLoad {
		if !load.LessEq(p.Nodes[h].Aggregate, eps) {
			return fmt.Errorf("core: node %d aggregate load %v exceeds capacity %v",
				h, load, p.Nodes[h].Aggregate)
		}
	}
	return nil
}

// Utilization returns, per dimension, the fraction of total platform
// capacity consumed by the allocation.
func (al *Allocation) Utilization(p *Problem) vec.Vec {
	total := p.TotalAggregate()
	used := vec.New(p.Dim())
	for _, load := range al.NodeLoad {
		used.AccumAdd(load)
	}
	u := vec.New(p.Dim())
	for d := range u {
		if total[d] > 0 {
			u[d] = used[d] / total[d]
		}
	}
	return u
}
