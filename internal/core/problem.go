// Package core defines the service placement and resource allocation problem
// of Casanova, Stillwell and Vivien (IPDPS 2012, INRIA RR-7772): services with
// rigid requirements and fluid needs must each be placed on one node of a
// heterogeneous platform so as to maximize the minimum yield.
//
// Each node carries an elementary and an aggregate capacity vector; each
// service carries elementary/aggregate requirement and need vector pairs. The
// allocation a service receives at yield y is (r^e + y*n^e, r^a + y*n^a).
package core

import (
	"errors"
	"fmt"
	"math"

	"vmalloc/internal/vec"
)

// DefaultEpsilon is the numerical tolerance used by feasibility checks.
const DefaultEpsilon = 1e-9

// Node is one physical host. Elementary gives the capacity of a single
// resource element in each dimension (e.g. one core); Aggregate gives the
// total capacity over all elements. For arbitrarily divisible resources such
// as memory the two coincide.
type Node struct {
	Name       string  `json:"name,omitempty"`
	Elementary vec.Vec `json:"elementary"`
	Aggregate  vec.Vec `json:"aggregate"`
}

// Service is one hosted service (one VM instance). ReqElem/ReqAgg are the
// rigid requirements (r^e, r^a): the minimum acceptable allocation. NeedElem/
// NeedAgg are the fluid needs (n^e, n^a): the additional resources required
// to reach maximum performance (yield 1).
type Service struct {
	Name     string  `json:"name,omitempty"`
	ReqElem  vec.Vec `json:"req_elem"`
	ReqAgg   vec.Vec `json:"req_agg"`
	NeedElem vec.Vec `json:"need_elem"`
	NeedAgg  vec.Vec `json:"need_agg"`
}

// Problem is a complete instance: a platform and a workload.
type Problem struct {
	Nodes    []Node    `json:"nodes"`
	Services []Service `json:"services"`
}

// Dim returns the number of resource dimensions, 0 for an empty problem.
func (p *Problem) Dim() int {
	if len(p.Nodes) > 0 {
		return p.Nodes[0].Aggregate.Dim()
	}
	if len(p.Services) > 0 {
		return p.Services[0].ReqAgg.Dim()
	}
	return 0
}

// NumNodes returns H, the number of nodes.
func (p *Problem) NumNodes() int { return len(p.Nodes) }

// NumServices returns J, the number of services.
func (p *Problem) NumServices() int { return len(p.Services) }

// Validate checks structural consistency: every vector has the same number of
// dimensions, no negative entries, and requirements/needs/capacities are
// internally consistent (elementary <= aggregate for nodes).
func (p *Problem) Validate() error {
	d := p.Dim()
	if d == 0 {
		return errors.New("core: problem has no dimensions")
	}
	check := func(kind string, i int, v vec.Vec) error {
		if v.Dim() != d {
			return fmt.Errorf("core: %s %d has %d dimensions, want %d", kind, i, v.Dim(), d)
		}
		for dd, x := range v {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("core: %s %d has invalid value %g in dimension %d", kind, i, x, dd)
			}
		}
		return nil
	}
	for h, n := range p.Nodes {
		if err := check("node elementary capacity of node", h, n.Elementary); err != nil {
			return err
		}
		if err := check("node aggregate capacity of node", h, n.Aggregate); err != nil {
			return err
		}
		if !n.Elementary.LessEq(n.Aggregate, DefaultEpsilon) {
			return fmt.Errorf("core: node %d elementary capacity %v exceeds aggregate %v", h, n.Elementary, n.Aggregate)
		}
	}
	for j, s := range p.Services {
		for _, vv := range []struct {
			kind string
			v    vec.Vec
		}{
			{"service elementary requirement", s.ReqElem},
			{"service aggregate requirement", s.ReqAgg},
			{"service elementary need", s.NeedElem},
			{"service aggregate need", s.NeedAgg},
		} {
			if err := check(vv.kind, j, vv.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// ElemAt returns the elementary demand of service s at yield y:
// r^e + y*n^e.
func (s *Service) ElemAt(y float64) vec.Vec { return s.ReqElem.AddScaled(y, s.NeedElem) }

// AggAt returns the aggregate demand of service s at yield y:
// r^a + y*n^a.
func (s *Service) AggAt(y float64) vec.Vec { return s.ReqAgg.AddScaled(y, s.NeedAgg) }

// Demand returns the full demand of the service at yield 1
// (requirements plus needs), the natural "size" for placement heuristics.
func (s *Service) Demand() vec.Vec { return s.ReqAgg.Add(s.NeedAgg) }

// FitsRequirements reports whether the service's rigid requirements alone fit
// on node n given the node's current aggregate load (sum of aggregate
// requirement vectors of services already placed there). This is the minimum
// condition for a placement to be valid at yield 0. It sits inside every
// greedy/repair selection loop and must not allocate.
func (s *Service) FitsRequirements(n *Node, load vec.Vec) bool {
	if !s.ReqElem.LessEq(n.Elementary, DefaultEpsilon) {
		return false
	}
	return vec.AddFitsWithin(load, s.ReqAgg, n.Aggregate, DefaultEpsilon)
}

// TotalAggregate returns the element-wise sum of all node aggregate
// capacities.
func (p *Problem) TotalAggregate() vec.Vec {
	t := vec.New(p.Dim())
	for _, n := range p.Nodes {
		t.AccumAdd(n.Aggregate)
	}
	return t
}

// TotalDemand returns the element-wise sum over services of requirements plus
// needs (aggregate).
func (p *Problem) TotalDemand() vec.Vec {
	t := vec.New(p.Dim())
	for _, s := range p.Services {
		t.AccumAdd(s.ReqAgg)
		t.AccumAdd(s.NeedAgg)
	}
	return t
}

// TotalRequirements returns the element-wise sum of aggregate requirements.
func (p *Problem) TotalRequirements() vec.Vec {
	t := vec.New(p.Dim())
	for _, s := range p.Services {
		t.AccumAdd(s.ReqAgg)
	}
	return t
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		Nodes:    make([]Node, len(p.Nodes)),
		Services: make([]Service, len(p.Services)),
	}
	for i, n := range p.Nodes {
		q.Nodes[i] = Node{Name: n.Name, Elementary: n.Elementary.Clone(), Aggregate: n.Aggregate.Clone()}
	}
	for i, s := range p.Services {
		q.Services[i] = Service{
			Name:    s.Name,
			ReqElem: s.ReqElem.Clone(), ReqAgg: s.ReqAgg.Clone(),
			NeedElem: s.NeedElem.Clone(), NeedAgg: s.NeedAgg.Clone(),
		}
	}
	return q
}
