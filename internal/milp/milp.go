// Package milp implements a best-first branch-and-bound solver for mixed
// integer linear programs whose integer variables are binary, layered on the
// pure-Go simplex in internal/lp. It provides exact optima for small
// instances of the paper's MILP (Eqs. 1–7), used both as a correctness oracle
// for the heuristics and to reproduce the §3.2 claim that the rational
// relaxation upper-bounds the mixed solution.
package milp

import (
	"errors"
	"fmt"
	"math"

	"vmalloc/internal/heapx"
	"vmalloc/internal/lp"
	"vmalloc/internal/presolve"
)

// Problem is an LP plus a set of variables restricted to {0, 1}.
type Problem struct {
	LP lp.Problem
	// Binary lists variable indices that must take value 0 or 1. Their Upper
	// bound must be >= 1 (it is tightened to 1 internally).
	Binary []int
}

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Infeasible means no integral feasible point exists.
	Infeasible
	// NodeLimit means the search stopped early; the incumbent (if any) is
	// the best known feasible solution.
	NodeLimit
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Bound is the best proven upper bound on the optimum.
	Bound float64
	// Nodes is the number of branch-and-bound nodes solved.
	Nodes int
	// Pruned is the number of open nodes discarded because their bound
	// could not beat the incumbent (before or after their relaxation
	// solved).
	Pruned int
	// HasIncumbent reports whether X/Objective hold a feasible solution.
	HasIncumbent bool
}

// Options tunes the search.
type Options struct {
	// MaxNodes caps the number of LP relaxations solved (0 = default 100000).
	MaxNodes int
	// IntTol is the integrality tolerance (0 = default 1e-6).
	IntTol float64
	// Gap is the relative optimality gap at which search stops early
	// (0 = prove exact optimality).
	Gap float64
	// DisableWarmStart turns off basis reuse between parent and child
	// nodes. Child relaxations differ from their parent only in variable
	// bounds, so by default each node is solved warm-started from its
	// parent's optimal basis (the solver falls back to a cold start when
	// the stale basis no longer fits).
	DisableWarmStart bool
	// DisablePresolve turns off per-node presolve. By default every node
	// LP is reduced before the simplex runs: branched binaries are fixed
	// purely by bound shrinking, so presolve's fixed-column and forcing-row
	// rules cascade (a placement fixed to 1 zeroes its siblings, which
	// empties their linked rows) and child nodes presolve smaller every
	// level down the tree. Integrality marks let presolve prune nodes whose
	// reductions force a binary to a fractional value.
	DisablePresolve bool
}

type node struct {
	fix0, fix1 []int
	bound      float64
	// warm is the optimal basis of the parent relaxation, shared by both
	// children; nil at the root or when warm starts are disabled.
	warm *lp.Basis
}

// newNodeQueue orders open nodes best bound first (max-heap on bound via the
// shared generic min-heap helper).
func newNodeQueue() *heapx.Heap[*node] {
	return heapx.New(func(a, b *node) bool { return a.bound > b.bound })
}

// Solve runs best-first branch and bound. The relaxation at each node is the
// LP with branched binaries fixed purely via bound changes (Upper = 0 for a
// 0-fix, Lower = Upper = 1 for a 1-fix), so every node shares the base
// constraint matrix and can be warm-started from its parent's basis.
func Solve(p *Problem, opts *Options) (*Solution, error) {
	if opts == nil {
		opts = &Options{}
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	intTol := opts.IntTol
	if intTol <= 0 {
		intTol = 1e-6
	}
	if err := p.LP.Validate(); err != nil {
		return nil, err
	}
	isBin := make(map[int]bool, len(p.Binary))
	for _, j := range p.Binary {
		if j < 0 || j >= p.LP.NumVars() {
			return nil, fmt.Errorf("milp: binary index %d out of range", j)
		}
		isBin[j] = true
	}

	// Fixing binaries via bound changes keeps every node's LP the same
	// shape, which is what makes parent bases reusable; sparsify the matrix
	// once so node solves share one CSC instead of copying rows.
	base := p.LP
	if base.Cols == nil {
		base = *base.Sparsify()
	}
	var solver lp.Backend = lp.Simplex{}
	if !opts.DisablePresolve {
		integral := make([]bool, base.NumVars())
		for _, j := range p.Binary {
			integral[j] = true
		}
		solver = presolve.Backend{Opts: &presolve.Options{Integral: integral}}
	}

	sol := &Solution{Status: NodeLimit, Objective: math.Inf(-1), Bound: math.Inf(1)}
	q := newNodeQueue()
	q.Push(&node{bound: math.Inf(1)})

	for q.Len() > 0 {
		if sol.Nodes >= maxNodes {
			sol.Bound = q.Peek().bound
			return sol, nil
		}
		nd := q.Pop()
		if nd.bound <= sol.Objective+1e-12 && sol.HasIncumbent {
			sol.Pruned++
			continue // pruned by incumbent
		}
		if opts.Gap > 0 && sol.HasIncumbent &&
			nd.bound <= sol.Objective*(1+opts.Gap)+1e-12 {
			// Within the requested relative gap: accept the incumbent.
			sol.Status = Optimal
			sol.Bound = nd.bound
			return sol, nil
		}
		rel, err := solveRelaxation(solver, &base, nd)
		sol.Nodes++
		if err != nil {
			if errors.Is(err, lp.ErrIterLimit) {
				return nil, fmt.Errorf("milp: branch-and-bound node hit the simplex cap: %w", err)
			}
			return nil, err
		}
		switch rel.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, errors.New("milp: relaxation unbounded; bound the binary problem")
		}
		if rel.Objective <= sol.Objective+1e-12 && sol.HasIncumbent {
			sol.Pruned++
			continue
		}
		branch := pickBranchVar(rel.X, p.Binary, intTol)
		if branch < 0 {
			// Integral: new incumbent.
			if rel.Objective > sol.Objective {
				sol.Objective = rel.Objective
				sol.X = append([]float64(nil), rel.X...)
				sol.HasIncumbent = true
			}
			continue
		}
		var warm *lp.Basis
		if !opts.DisableWarmStart {
			warm = rel.Basis
		}
		lo := &node{fix0: append(append([]int(nil), nd.fix0...), branch), fix1: nd.fix1, bound: rel.Objective, warm: warm}
		hi := &node{fix0: nd.fix0, fix1: append(append([]int(nil), nd.fix1...), branch), bound: rel.Objective, warm: warm}
		q.Push(lo)
		q.Push(hi)
	}

	if sol.HasIncumbent {
		sol.Status = Optimal
		sol.Bound = sol.Objective
	} else {
		sol.Status = Infeasible
	}
	return sol, nil
}

// solveRelaxation solves the node LP through the configured backend: the
// base problem with branched binaries fixed purely through bound changes (0
// via Upper, 1 via Lower+Upper), so every node shares the base constraint
// matrix. With presolve enabled the bound fixings happen before reduction,
// so each level's fixings shrink the child's reduced model further; the
// warm token then only installs when parent and child reduce to the same
// shape, and costs a cheap cold fallback otherwise.
func solveRelaxation(solver lp.Backend, base *lp.Problem, nd *node) (*lp.Solution, error) {
	q := *base
	// Copy bounds so fixings do not leak across nodes.
	upper := make([]float64, base.NumVars())
	if base.Upper != nil {
		copy(upper, base.Upper)
	} else {
		for j := range upper {
			upper[j] = math.Inf(1)
		}
	}
	for _, j := range nd.fix0 {
		upper[j] = 0
	}
	q.Upper = upper
	if len(nd.fix1) > 0 {
		lower := make([]float64, base.NumVars())
		if base.Lower != nil {
			copy(lower, base.Lower)
		}
		for _, j := range nd.fix1 {
			if upper[j] < 1 {
				// The variable cannot reach 1: the node is infeasible.
				return &lp.Solution{Status: lp.Infeasible}, nil
			}
			lower[j] = 1
			upper[j] = 1
		}
		q.Lower = lower
	}
	return solver.SolveWarm(&q, nd.warm)
}

// pickBranchVar returns the most fractional binary variable, or -1 if all
// binaries are integral within tol.
func pickBranchVar(x []float64, binary []int, tol float64) int {
	best, bestDist := -1, tol
	for _, j := range binary {
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = j, dist
		}
	}
	return best
}
