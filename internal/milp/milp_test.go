package milp

import (
	"math"
	"math/rand"
	"testing"

	"vmalloc/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> {a,c}: 17... check:
	// a+b: 7 <= 6? no (3+4=7). b+c: 6, value 20. So optimum is b+c = 20.
	p := &Problem{
		LP: lp.Problem{
			Obj:   []float64{10, 13, 7},
			A:     [][]float64{{3, 4, 2}},
			Sense: []lp.Sense{lp.LE},
			B:     []float64{6},
			Upper: []float64{1, 1, 1},
		},
		Binary: []int{0, 1, 2},
	}
	s, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-20) > 1e-6 {
		t.Fatalf("objective = %v, want 20 (x=%v)", s.Objective, s.X)
	}
}

func TestRelaxationTighterThanInteger(t *testing.T) {
	// Fractional relaxation of the knapsack above is strictly better than
	// the integer optimum, matching the paper's §3.2 upper-bound claim.
	rel, err := lp.Solve(&lp.Problem{
		Obj:   []float64{10, 13, 7},
		A:     [][]float64{{3, 4, 2}},
		Sense: []lp.Sense{lp.LE},
		B:     []float64{6},
		Upper: []float64{1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Objective <= 20 {
		t.Fatalf("relaxation %v should exceed integer optimum 20", rel.Objective)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 5e + y st y <= 2e (continuous y, binary e), y <= 1.5.
	// e=1: y = 1.5 -> 6.5. e=0: 0.
	p := &Problem{
		LP: lp.Problem{
			Obj:   []float64{5, 1},
			A:     [][]float64{{-2, 1}, {0, 1}},
			Sense: []lp.Sense{lp.LE, lp.LE},
			B:     []float64{0, 1.5},
			Upper: []float64{1, math.Inf(1)},
		},
		Binary: []int{0},
	}
	s, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-6.5) > 1e-6 {
		t.Fatalf("got %v obj %v, want 6.5", s.Status, s.Objective)
	}
	if math.Abs(s.X[0]-1) > 1e-6 {
		t.Fatalf("e = %v, want 1", s.X[0])
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// a + b == 1.5 with both binary: LP-feasible, integer-infeasible.
	p := &Problem{
		LP: lp.Problem{
			Obj:   []float64{1, 1},
			A:     [][]float64{{1, 1}},
			Sense: []lp.Sense{lp.EQ},
			B:     []float64{1.5},
			Upper: []float64{1, 1},
		},
		Binary: []int{0, 1},
	}
	s, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	p := &Problem{
		LP: lp.Problem{
			Obj:   []float64{1, 1, 1, 1},
			A:     [][]float64{{1, 1, 1, 1}},
			Sense: []lp.Sense{lp.LE},
			B:     []float64{2.5},
			Upper: []float64{1, 1, 1, 1},
		},
		Binary: []int{0, 1, 2, 3},
	}
	s, err := Solve(p, &Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", s.Status)
	}
}

func TestBadBinaryIndex(t *testing.T) {
	p := &Problem{
		LP: lp.Problem{
			Obj: []float64{1}, A: [][]float64{{1}}, Sense: []lp.Sense{lp.LE}, B: []float64{1},
		},
		Binary: []int{5},
	}
	if _, err := Solve(p, nil); err == nil {
		t.Fatal("expected error for out-of-range binary index")
	}
}

// bruteForceKnapsack enumerates all binary assignments.
func bruteForceKnapsack(obj, w []float64, cap float64) float64 {
	n := len(obj)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		val, wt := 0.0, 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				val += obj[j]
				wt += w[j]
			}
		}
		if wt <= cap+1e-12 && val > best {
			best = val
		}
	}
	return best
}

// Warm-started and cold branch-and-bound must find the same optimum: basis
// reuse changes the per-node simplex trajectory, never the result.
func TestWarmStartMatchesColdSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		n := 4 + rng.Intn(6)
		obj := make([]float64, n)
		w := make([]float64, n)
		up := make([]float64, n)
		bins := make([]int, n)
		for j := 0; j < n; j++ {
			obj[j] = rng.Float64() * 10
			w[j] = rng.Float64() * 5
			up[j] = 1
			bins[j] = j
		}
		p := &Problem{
			LP: lp.Problem{
				Obj: obj, A: [][]float64{w}, Sense: []lp.Sense{lp.LE},
				B: []float64{rng.Float64() * 10}, Upper: up,
			},
			Binary: bins,
		}
		warm, err := Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(p, &Options{DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status || math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("iter %d: warm %v/%.6f vs cold %v/%.6f",
				iter, warm.Status, warm.Objective, cold.Status, cold.Objective)
		}
	}
}

func TestRandomKnapsacksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(8)
		obj := make([]float64, n)
		w := make([]float64, n)
		up := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = rng.Float64() * 10
			w[j] = rng.Float64() * 5
			up[j] = 1
		}
		capacity := rng.Float64() * 10
		p := &Problem{
			LP: lp.Problem{
				Obj: obj, A: [][]float64{w}, Sense: []lp.Sense{lp.LE}, B: []float64{capacity}, Upper: up,
			},
			Binary: func() []int {
				b := make([]int, n)
				for j := range b {
					b[j] = j
				}
				return b
			}(),
		}
		s, err := Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceKnapsack(obj, w, capacity)
		if s.Status != Optimal || math.Abs(s.Objective-want) > 1e-5 {
			t.Fatalf("iter %d: got %v obj %.6f, brute force %.6f", iter, s.Status, s.Objective, want)
		}
		if s.Bound < s.Objective-1e-9 {
			t.Fatalf("iter %d: bound %v below objective %v", iter, s.Bound, s.Objective)
		}
	}
}
