package server

import (
	"testing"

	"vmalloc/internal/testutil/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine — the HTTP
// server, batcher and WAL streamer all own background goroutines that must
// die with Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
