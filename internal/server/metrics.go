package server

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/metrics"
	"vmalloc/internal/obs"
)

// journalStatser is the optional journal I/O statistics surface; stores that
// provide it feed the vmallocd_journal_* families.
type journalStatser interface {
	JournalIOStats() journal.IOStats
}

// Metrics instruments the HTTP surface and exposes store, shard and journal
// state in the Prometheus text format on GET /metrics.
type Metrics struct {
	reg  *metrics.Registry
	reqs *metrics.CounterVec
	lat  *metrics.HistogramVec
}

// NewMetrics builds the metric registry over a store: per-endpoint request
// counters and latency histograms, plus scrape-time collectors over
// s.Stats(), per-shard statistics (sharded stores) and journal I/O
// counters. Equivalent to NewObservedMetrics(s, nil).
func NewMetrics(s API) *Metrics { return NewObservedMetrics(s, nil) }

// NewObservedMetrics is NewMetrics plus the observer-backed families: Go
// runtime gauges, build info, cumulative epoch phase timing and the
// solver-tier work counters aggregated from the epoch ring, and the count
// of traces started.
func NewObservedMetrics(s API, o *obs.Observer) *Metrics {
	reg := metrics.NewRegistry()
	m := &Metrics{reg: reg}
	m.reqs = reg.NewCounterVec("vmallocd_http_requests_total",
		"HTTP requests served, by method, route pattern and status code.")
	m.lat = reg.NewHistogramVec("vmallocd_http_request_seconds",
		"HTTP request latency in seconds, by method and route pattern.",
		metrics.ExpBuckets(0.0001, 2, 16))

	gauge := func(name, help string, f func(st Stats) float64) {
		reg.Collect(name, help, "gauge", func(emit func(metrics.Labels, float64)) {
			emit(nil, f(s.Stats()))
		})
	}
	counter := func(name, help string, f func(st Stats) float64) {
		reg.Collect(name, help, "counter", func(emit func(metrics.Labels, float64)) {
			emit(nil, f(s.Stats()))
		})
	}
	gauge("vmallocd_services", "Live services currently placed.",
		func(st Stats) float64 { return float64(st.Services) })
	gauge("vmallocd_threshold", "Resource-pressure mitigation threshold.",
		func(st Stats) float64 { return st.Threshold })
	gauge("vmallocd_last_min_yield", "Minimum yield of the last solved epoch.",
		func(st Stats) float64 { return st.LastMinYield })
	reg.Collect("vmallocd_admissions_total",
		"Admission requests by result.", "counter",
		func(emit func(metrics.Labels, float64)) {
			st := s.Stats()
			emit(metrics.L("result", "admitted"), float64(st.Adds))
			emit(metrics.L("result", "rejected"), float64(st.Rejected))
		})
	counter("vmallocd_admission_batches_total", "Bulk admission batches committed.",
		func(st Stats) float64 { return float64(st.Batches) })
	counter("vmallocd_removes_total", "Service departures.",
		func(st Stats) float64 { return float64(st.Removes) })
	counter("vmallocd_need_updates_total", "Fluid-need replacements.",
		func(st Stats) float64 { return float64(st.NeedUpdates) })
	counter("vmallocd_epochs_total", "Reallocation epochs run.",
		func(st Stats) float64 { return float64(st.Epochs) })
	counter("vmallocd_failed_epochs_total", "Reallocation epochs that failed to solve.",
		func(st Stats) float64 { return float64(st.FailedEpochs) })
	counter("vmallocd_migrations_total", "Service migrations applied by epochs.",
		func(st Stats) float64 { return float64(st.Migrations) })
	counter("vmallocd_journal_records_total", "Records appended to the journal.",
		func(st Stats) float64 { return float64(st.Records) })
	counter("vmallocd_snapshots_total", "Checkpoints written.",
		func(st Stats) float64 { return float64(st.Snapshots) })
	gauge("vmallocd_journal_last_seq", "Sequence number of the newest journal record.",
		func(st Stats) float64 { return float64(st.LastSeq) })
	gauge("vmallocd_snapshot_seq", "Sequence number covered by the newest snapshot.",
		func(st Stats) float64 { return float64(st.SnapshotSeq) })

	if js, ok := s.(journalStatser); ok {
		reg.Collect("vmallocd_journal_fsyncs_total",
			"Fsync barriers issued by the journal committer; records divided by "+
				"fsyncs is the group-commit amortization factor.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(js.JournalIOStats().Fsyncs))
			})
		reg.Collect("vmallocd_journal_rotations_total",
			"Journal segment rotations.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(js.JournalIOStats().Rotations))
			})
		bounds := make([]float64, len(journal.BatchSizeBounds))
		for i, b := range journal.BatchSizeBounds {
			bounds[i] = float64(b)
		}
		reg.CollectHistogram("vmallocd_journal_commit_records",
			"Records per journal commit batch (one write, at most one fsync).",
			func() metrics.HistogramSnapshot {
				io := js.JournalIOStats()
				cum := make([]uint64, len(bounds))
				run := uint64(0)
				for i := range bounds {
					run += io.BatchSizes[i]
					cum[i] = run
				}
				return metrics.HistogramSnapshot{
					Bounds: bounds, CumCounts: cum,
					Count: io.Batches, Sum: float64(io.Records),
				}
			})
	}

	if src, ok := s.(replicaSource); ok {
		reg.Collect("vmallocd_replication_committed_seq",
			"Leader-side committed (acked-durable) sequence per shard journal.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				cs, err := src.ChainStatus()
				if err != nil {
					return
				}
				for _, c := range cs {
					emit(metrics.L("shard", strconv.Itoa(c.Shard)), float64(c.CommittedSeq))
				}
			})
	}
	if rst, ok := s.(replicaStatser); ok {
		reg.Collect("vmallocd_replication_applied_seq",
			"Follower-side applied-durable sequence per shard journal.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				for _, sh := range rst.ReplicationStatus().Shards {
					emit(metrics.L("shard", strconv.Itoa(sh.Shard)), float64(sh.AppliedSeq))
				}
			})
		reg.Collect("vmallocd_replication_lag_records",
			"Follower lag behind the leader's committed seq, per shard, at the last poll.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				for _, sh := range rst.ReplicationStatus().Shards {
					emit(metrics.L("shard", strconv.Itoa(sh.Shard)), float64(sh.Lag))
				}
			})
		reg.Collect("vmallocd_replication_bytes_behind",
			"Estimated backlog still to pull per shard: record lag times the "+
				"mean applied record size.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				for _, sh := range rst.ReplicationStatus().Shards {
					emit(metrics.L("shard", strconv.Itoa(sh.Shard)), float64(sh.BytesBehind))
				}
			})
		reg.Collect("vmallocd_replication_last_applied_age_seconds",
			"Seconds since the newest record applied to each shard.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				for _, sh := range rst.ReplicationStatus().Shards {
					emit(metrics.L("shard", strconv.Itoa(sh.Shard)), sh.SecondsSinceApplied)
				}
			})
		reg.Collect("vmallocd_replication_batches_total",
			"Stream batches applied by the follower.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(rst.ReplicationStatus().Batches))
			})
		reg.Collect("vmallocd_replication_records_total",
			"Records applied by the follower.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(rst.ReplicationStatus().Records))
			})
		reg.Collect("vmallocd_replication_retries_total",
			"Transient pull failures retried by the replication client.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(rst.ReplicationStatus().Retries))
			})
		reg.Collect("vmallocd_replication_promoted",
			"1 once this process has been promoted to leader, else 0.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				v := 0.0
				if rst.ReplicationStatus().Promoted {
					v = 1
				}
				emit(nil, v)
			})
	}

	if ss, ok := s.(shardStatser); ok {
		shardGauge := func(name, help string, f func(st vmalloc.ShardStat) (float64, bool)) {
			reg.Collect(name, help, "gauge", func(emit func(metrics.Labels, float64)) {
				stats, err := ss.ShardStats()
				if err != nil {
					return
				}
				for _, st := range stats {
					if v, ok := f(st); ok {
						emit(metrics.L("shard", strconv.Itoa(st.Shard)), v)
					}
				}
			})
		}
		shardGauge("vmallocd_shard_services", "Live services per placement domain.",
			func(st vmalloc.ShardStat) (float64, bool) { return float64(st.Services), true })
		shardGauge("vmallocd_shard_headroom", "Admission headroom per placement domain.",
			func(st vmalloc.ShardStat) (float64, bool) { return st.Headroom, true })
		shardGauge("vmallocd_shard_min_yield",
			"Minimum yield of the shard's last solved epoch (absent before any).",
			func(st vmalloc.ShardStat) (float64, bool) { return st.LastMinYield, st.YieldValid })
		reg.Collect("vmallocd_shard_epochs_total",
			"Per-shard reallocation epochs by result.", "counter",
			func(emit func(metrics.Labels, float64)) {
				stats, err := ss.ShardStats()
				if err != nil {
					return
				}
				for _, st := range stats {
					sh := strconv.Itoa(st.Shard)
					emit(metrics.L("shard", sh, "result", "solved"), float64(st.Epochs-st.FailedEpochs))
					emit(metrics.L("shard", sh, "result", "failed"), float64(st.FailedEpochs))
				}
			})
		reg.Collect("vmallocd_shard_moves_total",
			"Cross-shard rebalance migrations by direction.", "counter",
			func(emit func(metrics.Labels, float64)) {
				stats, err := ss.ShardStats()
				if err != nil {
					return
				}
				for _, st := range stats {
					sh := strconv.Itoa(st.Shard)
					emit(metrics.L("shard", sh, "direction", "in"), float64(st.MovedIn))
					emit(metrics.L("shard", sh, "direction", "out"), float64(st.MovedOut))
				}
			})
	}

	registerRuntimeMetrics(reg)
	registerObserverMetrics(reg, o)
	return m
}

// registerRuntimeMetrics exports process-level Go runtime state and the
// build identity.
func registerRuntimeMetrics(reg *metrics.Registry) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	goVersion := runtime.Version()
	reg.Collect("vmalloc_build_info",
		"Build identity; the value is always 1.", "gauge",
		func(emit func(metrics.Labels, float64)) {
			emit(metrics.L("version", version, "go_version", goVersion), 1)
		})
	reg.Collect("vmallocd_goroutines",
		"Live goroutines.", "gauge",
		func(emit func(metrics.Labels, float64)) {
			emit(nil, float64(runtime.NumGoroutine()))
		})
	reg.Collect("vmallocd_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", "gauge",
		func(emit func(metrics.Labels, float64)) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(nil, float64(ms.HeapAlloc))
		})
	reg.Collect("vmallocd_gc_cycles_total",
		"Completed GC cycles.", "counter",
		func(emit func(metrics.Labels, float64)) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(nil, float64(ms.NumGC))
		})
	reg.Collect("vmallocd_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.", "counter",
		func(emit func(metrics.Labels, float64)) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(nil, float64(ms.PauseTotalNs)/1e9)
		})
}

// registerObserverMetrics exports the observer's retained telemetry as
// cumulative families: epoch phase timing and the solver tier's work
// counters (aggregated over every epoch ever run), plus trace volume.
func registerObserverMetrics(reg *metrics.Registry, o *obs.Observer) {
	ring := o.EpochsOf()
	if ring != nil {
		reg.Collect("vmallocd_epoch_wall_seconds_total",
			"Wall time spent inside epoch requests (apply + solve + fsync wait).", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(ring.Totals().TotalNs)/1e9)
			})
		reg.Collect("vmallocd_epoch_solve_seconds_total",
			"Wall time spent in the solver tier across epochs.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(ring.Totals().SolveNs)/1e9)
			})
		reg.Collect("vmallocd_epoch_fsync_wait_seconds_total",
			"Wall time epochs spent waiting on journal durability.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(ring.Totals().FsyncWaitNs)/1e9)
			})
		reg.Collect("vmallocd_solver_work_total",
			"Solver-tier work counters summed over every epoch, by kind: presolve "+
				"reductions, simplex effort, branch-and-bound nodes and vector-packing pruning.", "counter",
			func(emit func(metrics.Labels, float64)) {
				sv := ring.Totals().Solver
				for _, kv := range []struct {
					kind string
					v    int64
				}{
					{"presolve_rows_eliminated", sv.PresolveRowsEliminated},
					{"presolve_cols_eliminated", sv.PresolveColsEliminated},
					{"presolve_fixed_cols", sv.PresolveFixedCols},
					{"presolve_dropped_rows", sv.PresolveDroppedRows},
					{"presolve_subst_cols", sv.PresolveSubstCols},
					{"presolve_bounds_tightened", sv.PresolveBoundsTightened},
					{"presolve_doubleton_slacks", sv.PresolveDoubletonSlacks},
					{"lp_solves", sv.LPSolves},
					{"lp_iterations", sv.LPIterations},
					{"lp_refactorizations", sv.LPRefactorizations},
					{"lp_bland_activations", sv.LPBlandActivations},
					{"lp_warm_starts", sv.LPWarmStarts},
					{"lp_cold_starts", sv.LPColdStarts},
					{"milp_nodes", sv.MILPNodes},
					{"milp_pruned", sv.MILPPruned},
					{"vp_packs", sv.VPPacks},
					{"vp_packs_solved", sv.VPPacksSolved},
					{"vp_steps_pruned", sv.VPStepsPruned},
				} {
					emit(metrics.L("kind", kv.kind), float64(kv.v))
				}
			})
	}
	if t := o.TracerOf(); t != nil {
		reg.Collect("vmallocd_traces_started_total",
			"Request traces started (excludes requests with tracing disabled).", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(t.Started()))
			})
	}
}

// serveText renders the registry as Prometheus text exposition 0.0.4.
func (m *Metrics) serveText(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.reg.WriteText(w)
}

// statusWriter captures the response status code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps h with a request counter and latency histogram labelled by
// method and route pattern; the status code labels the counter only, keeping
// histogram cardinality down.
func (m *Metrics) instrument(method, pattern string, h http.HandlerFunc) http.HandlerFunc {
	hist := m.lat.With(metrics.L("method", method, "path", pattern))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		hist.Observe(time.Since(start).Seconds())
		m.reqs.With(metrics.L("method", method, "path", pattern, "code", strconv.Itoa(code))).Inc()
	}
}
