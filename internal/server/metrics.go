package server

import (
	"net/http"
	"strconv"
	"time"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/metrics"
)

// journalStatser is the optional journal I/O statistics surface; stores that
// provide it feed the vmallocd_journal_* families.
type journalStatser interface {
	JournalIOStats() journal.IOStats
}

// Metrics instruments the HTTP surface and exposes store, shard and journal
// state in the Prometheus text format on GET /metrics.
type Metrics struct {
	reg  *metrics.Registry
	reqs *metrics.CounterVec
	lat  *metrics.HistogramVec
}

// NewMetrics builds the metric registry over a store: per-endpoint request
// counters and latency histograms, plus scrape-time collectors over
// s.Stats(), per-shard statistics (sharded stores) and journal I/O counters.
func NewMetrics(s API) *Metrics {
	reg := metrics.NewRegistry()
	m := &Metrics{reg: reg}
	m.reqs = reg.NewCounterVec("vmallocd_http_requests_total",
		"HTTP requests served, by method, route pattern and status code.")
	m.lat = reg.NewHistogramVec("vmallocd_http_request_seconds",
		"HTTP request latency in seconds, by method and route pattern.",
		metrics.ExpBuckets(0.0001, 2, 16))

	gauge := func(name, help string, f func(st Stats) float64) {
		reg.Collect(name, help, "gauge", func(emit func(metrics.Labels, float64)) {
			emit(nil, f(s.Stats()))
		})
	}
	counter := func(name, help string, f func(st Stats) float64) {
		reg.Collect(name, help, "counter", func(emit func(metrics.Labels, float64)) {
			emit(nil, f(s.Stats()))
		})
	}
	gauge("vmallocd_services", "Live services currently placed.",
		func(st Stats) float64 { return float64(st.Services) })
	gauge("vmallocd_threshold", "Resource-pressure mitigation threshold.",
		func(st Stats) float64 { return st.Threshold })
	gauge("vmallocd_last_min_yield", "Minimum yield of the last solved epoch.",
		func(st Stats) float64 { return st.LastMinYield })
	reg.Collect("vmallocd_admissions_total",
		"Admission requests by result.", "counter",
		func(emit func(metrics.Labels, float64)) {
			st := s.Stats()
			emit(metrics.L("result", "admitted"), float64(st.Adds))
			emit(metrics.L("result", "rejected"), float64(st.Rejected))
		})
	counter("vmallocd_admission_batches_total", "Bulk admission batches committed.",
		func(st Stats) float64 { return float64(st.Batches) })
	counter("vmallocd_removes_total", "Service departures.",
		func(st Stats) float64 { return float64(st.Removes) })
	counter("vmallocd_need_updates_total", "Fluid-need replacements.",
		func(st Stats) float64 { return float64(st.NeedUpdates) })
	counter("vmallocd_epochs_total", "Reallocation epochs run.",
		func(st Stats) float64 { return float64(st.Epochs) })
	counter("vmallocd_failed_epochs_total", "Reallocation epochs that failed to solve.",
		func(st Stats) float64 { return float64(st.FailedEpochs) })
	counter("vmallocd_migrations_total", "Service migrations applied by epochs.",
		func(st Stats) float64 { return float64(st.Migrations) })
	counter("vmallocd_journal_records_total", "Records appended to the journal.",
		func(st Stats) float64 { return float64(st.Records) })
	counter("vmallocd_snapshots_total", "Checkpoints written.",
		func(st Stats) float64 { return float64(st.Snapshots) })
	gauge("vmallocd_journal_last_seq", "Sequence number of the newest journal record.",
		func(st Stats) float64 { return float64(st.LastSeq) })
	gauge("vmallocd_snapshot_seq", "Sequence number covered by the newest snapshot.",
		func(st Stats) float64 { return float64(st.SnapshotSeq) })

	if js, ok := s.(journalStatser); ok {
		reg.Collect("vmallocd_journal_fsyncs_total",
			"Fsync barriers issued by the journal committer; records divided by "+
				"fsyncs is the group-commit amortization factor.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(js.JournalIOStats().Fsyncs))
			})
		reg.Collect("vmallocd_journal_rotations_total",
			"Journal segment rotations.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(js.JournalIOStats().Rotations))
			})
		bounds := make([]float64, len(journal.BatchSizeBounds))
		for i, b := range journal.BatchSizeBounds {
			bounds[i] = float64(b)
		}
		reg.CollectHistogram("vmallocd_journal_commit_records",
			"Records per journal commit batch (one write, at most one fsync).",
			func() metrics.HistogramSnapshot {
				io := js.JournalIOStats()
				cum := make([]uint64, len(bounds))
				run := uint64(0)
				for i := range bounds {
					run += io.BatchSizes[i]
					cum[i] = run
				}
				return metrics.HistogramSnapshot{
					Bounds: bounds, CumCounts: cum,
					Count: io.Batches, Sum: float64(io.Records),
				}
			})
	}

	if src, ok := s.(replicaSource); ok {
		reg.Collect("vmallocd_replication_committed_seq",
			"Leader-side committed (acked-durable) sequence per shard journal.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				cs, err := src.ChainStatus()
				if err != nil {
					return
				}
				for _, c := range cs {
					emit(metrics.L("shard", strconv.Itoa(c.Shard)), float64(c.CommittedSeq))
				}
			})
	}
	if rst, ok := s.(replicaStatser); ok {
		reg.Collect("vmallocd_replication_applied_seq",
			"Follower-side applied-durable sequence per shard journal.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				for _, sh := range rst.ReplicationStatus().Shards {
					emit(metrics.L("shard", strconv.Itoa(sh.Shard)), float64(sh.AppliedSeq))
				}
			})
		reg.Collect("vmallocd_replication_lag_records",
			"Follower lag behind the leader's committed seq, per shard, at the last poll.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				for _, sh := range rst.ReplicationStatus().Shards {
					emit(metrics.L("shard", strconv.Itoa(sh.Shard)), float64(sh.Lag))
				}
			})
		reg.Collect("vmallocd_replication_batches_total",
			"Stream batches applied by the follower.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(rst.ReplicationStatus().Batches))
			})
		reg.Collect("vmallocd_replication_records_total",
			"Records applied by the follower.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(rst.ReplicationStatus().Records))
			})
		reg.Collect("vmallocd_replication_retries_total",
			"Transient pull failures retried by the replication client.", "counter",
			func(emit func(metrics.Labels, float64)) {
				emit(nil, float64(rst.ReplicationStatus().Retries))
			})
		reg.Collect("vmallocd_replication_promoted",
			"1 once this process has been promoted to leader, else 0.", "gauge",
			func(emit func(metrics.Labels, float64)) {
				v := 0.0
				if rst.ReplicationStatus().Promoted {
					v = 1
				}
				emit(nil, v)
			})
	}

	if ss, ok := s.(shardStatser); ok {
		shardGauge := func(name, help string, f func(st vmalloc.ShardStat) (float64, bool)) {
			reg.Collect(name, help, "gauge", func(emit func(metrics.Labels, float64)) {
				stats, err := ss.ShardStats()
				if err != nil {
					return
				}
				for _, st := range stats {
					if v, ok := f(st); ok {
						emit(metrics.L("shard", strconv.Itoa(st.Shard)), v)
					}
				}
			})
		}
		shardGauge("vmallocd_shard_services", "Live services per placement domain.",
			func(st vmalloc.ShardStat) (float64, bool) { return float64(st.Services), true })
		shardGauge("vmallocd_shard_headroom", "Admission headroom per placement domain.",
			func(st vmalloc.ShardStat) (float64, bool) { return st.Headroom, true })
		shardGauge("vmallocd_shard_min_yield",
			"Minimum yield of the shard's last solved epoch (absent before any).",
			func(st vmalloc.ShardStat) (float64, bool) { return st.LastMinYield, st.YieldValid })
		reg.Collect("vmallocd_shard_epochs_total",
			"Per-shard reallocation epochs by result.", "counter",
			func(emit func(metrics.Labels, float64)) {
				stats, err := ss.ShardStats()
				if err != nil {
					return
				}
				for _, st := range stats {
					sh := strconv.Itoa(st.Shard)
					emit(metrics.L("shard", sh, "result", "solved"), float64(st.Epochs-st.FailedEpochs))
					emit(metrics.L("shard", sh, "result", "failed"), float64(st.FailedEpochs))
				}
			})
		reg.Collect("vmallocd_shard_moves_total",
			"Cross-shard rebalance migrations by direction.", "counter",
			func(emit func(metrics.Labels, float64)) {
				stats, err := ss.ShardStats()
				if err != nil {
					return
				}
				for _, st := range stats {
					sh := strconv.Itoa(st.Shard)
					emit(metrics.L("shard", sh, "direction", "in"), float64(st.MovedIn))
					emit(metrics.L("shard", sh, "direction", "out"), float64(st.MovedOut))
				}
			})
	}
	return m
}

// serveText renders the registry as Prometheus text exposition 0.0.4.
func (m *Metrics) serveText(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.reg.WriteText(w)
}

// statusWriter captures the response status code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps h with a request counter and latency histogram labelled by
// method and route pattern; the status code labels the counter only, keeping
// histogram cardinality down.
func (m *Metrics) instrument(method, pattern string, h http.HandlerFunc) http.HandlerFunc {
	hist := m.lat.With(metrics.L("method", method, "path", pattern))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		hist.Observe(time.Since(start).Seconds())
		m.reqs.With(metrics.L("method", method, "path", pattern, "code", strconv.Itoa(code))).Inc()
	}
}
