package server

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmalloc"
	"vmalloc/internal/journal"
	"vmalloc/internal/workload"
)

var updateRecoveryGolden = flag.Bool("recovery-golden.update", false, "rewrite the crash-recovery golden state file")

func testNodes(h int, seed int64) []vmalloc.Node {
	return workload.Platform(workload.Scenario{
		Hosts: h, COV: 0.4, Mode: workload.HeteroBoth, Seed: seed,
	}, rand.New(rand.NewSource(seed)))
}

// op is one entry of the deterministic operation tape: the tape is data, so
// interrupted and uninterrupted runs apply byte-identical inputs.
type op struct {
	kind      string // add, remove, update, threshold, realloc, repair
	trueSvc   vmalloc.Service
	estSvc    vmalloc.Service
	pick      int // live-set index for remove/update
	needs     [4]vmalloc.Vec
	threshold float64
	budget    int
}

func opTape(n int, seed int64) []op {
	rng := rand.New(rand.NewSource(seed))
	svc := func() vmalloc.Service {
		req := vmalloc.Of(0.05+0.1*rng.Float64(), 0.05+0.1*rng.Float64())
		need := vmalloc.Of(0.1+0.3*rng.Float64(), 0.05*rng.Float64())
		return vmalloc.Service{
			ReqElem: req.Clone(), ReqAgg: req.Clone(),
			NeedElem: need.Clone(), NeedAgg: need.Clone(),
		}
	}
	tape := make([]op, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%10 == 9:
			tape = append(tape, op{kind: "realloc"})
		case i%25 == 24:
			tape = append(tape, op{kind: "repair", budget: 2})
		case i%17 == 16:
			tape = append(tape, op{kind: "threshold", threshold: 0.1 + 0.2*rng.Float64()})
		default:
			switch k := rng.Intn(10); {
			case k < 6:
				t := svc()
				e := t
				e.NeedAgg = t.NeedAgg.Scale(1 + 0.3*(rng.Float64()-0.5))
				tape = append(tape, op{kind: "add", trueSvc: t, estSvc: e})
			case k < 8:
				tape = append(tape, op{kind: "remove", pick: rng.Int()})
			default:
				nv := vmalloc.Of(0.1+0.3*rng.Float64(), 0.05*rng.Float64())
				tape = append(tape, op{kind: "update", pick: rng.Int(),
					needs: [4]vmalloc.Vec{nv.Clone(), nv.Clone(), nv.Clone(), nv.Clone()}})
			}
		}
	}
	return tape
}

// applyOps drives tape[from:to] against the store, maintaining the live-id
// set (which evolves identically across runs because every decision is
// deterministic).
func applyOps(t *testing.T, s *Store, tape []op, from, to int, live *[]int) {
	t.Helper()
	for i := from; i < to; i++ {
		o := &tape[i]
		switch o.kind {
		case "add":
			id, _, err := s.AddWithEstimate(o.trueSvc, o.estSvc)
			if err == nil {
				*live = append(*live, id)
			} else if err != ErrRejected {
				t.Fatalf("op %d add: %v", i, err)
			}
		case "remove":
			if len(*live) == 0 {
				continue
			}
			idx := o.pick % len(*live)
			id := (*live)[idx]
			ok, err := s.Remove(id)
			if err != nil || !ok {
				t.Fatalf("op %d remove %d: ok=%v err=%v", i, id, ok, err)
			}
			*live = append((*live)[:idx], (*live)[idx+1:]...)
		case "update":
			if len(*live) == 0 {
				continue
			}
			id := (*live)[o.pick%len(*live)]
			if err := s.UpdateNeeds(id, o.needs[0], o.needs[1], o.needs[2], o.needs[3]); err != nil {
				t.Fatalf("op %d update %d: %v", i, id, err)
			}
		case "threshold":
			if err := s.SetThreshold(o.threshold); err != nil {
				t.Fatalf("op %d threshold: %v", i, err)
			}
		case "realloc":
			if _, err := s.Reallocate(); err != nil {
				t.Fatalf("op %d realloc: %v", i, err)
			}
		case "repair":
			if _, err := s.Repair(o.budget); err != nil {
				t.Fatalf("op %d repair: %v", i, err)
			}
		}
	}
}

func stateJSON(t *testing.T, s *Store) []byte {
	t.Helper()
	_, data, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStoreDurableAcrossCleanReopen(t *testing.T) {
	dir := t.TempDir()
	nodes := testNodes(6, 41)
	opts := &Options{Fsync: journal.FsyncNone}
	s, err := Open(dir, nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	tape := opTape(60, 7)
	var live []int
	applyOps(t, s, tape, 0, len(tape), &live)
	want := stateJSON(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, nil, opts) // nodes come from the snapshot
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := stateJSON(t, s2); !bytes.Equal(got, want) {
		t.Fatalf("state changed across clean reopen:\n got  %s\n want %s", got, want)
	}
	if st := s2.Stats(); st.Replayed != 0 {
		t.Fatalf("clean reopen replayed %d records (checkpoint at close should cover all)", st.Replayed)
	}
	// The store keeps working after recovery.
	var live2 []int
	applyOps(t, s2, opTape(10, 8), 0, 10, &live2)
}

// TestCrashRecoveryGolden is the acceptance test of the durable tier: a
// fixed-seed run is killed mid-epoch (the epoch record is torn off the WAL
// tail mid-write), recovered from snapshot + replay, and the recovered
// trajectory must be bit-identical — both at the crash point and after
// finishing the run — to the uninterrupted one. The final state is pinned
// in a golden file so cross-version drift in any layer (solver, engine,
// journal, serialization) surfaces here.
func TestCrashRecoveryGolden(t *testing.T) {
	nodes := testNodes(8, 17)
	tape := opTape(120, 23)
	// Crash at an epoch boundary mid-tape: the epoch op at crashAt was "in
	// flight" when the process died — its record is the torn tail.
	crashAt := -1
	for i := 60; i < len(tape); i++ {
		if tape[i].kind == "realloc" {
			crashAt = i
			break
		}
	}
	if crashAt < 0 {
		t.Fatal("tape has no epoch op after index 60")
	}
	opts := func() *Options {
		return &Options{Fsync: journal.FsyncNone, SnapshotEvery: 32, SegmentBytes: 16 << 10}
	}

	// Uninterrupted reference run, capturing the state at the crash point.
	dirA := t.TempDir()
	a, err := Open(dirA, nodes, opts())
	if err != nil {
		t.Fatal(err)
	}
	var liveA []int
	applyOps(t, a, tape, 0, crashAt, &liveA)
	wantAtCrash := append([]byte(nil), stateJSON(t, a)...)
	applyOps(t, a, tape, crashAt, len(tape), &liveA)
	wantFinal := append([]byte(nil), stateJSON(t, a)...)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: same prefix, then a kill mid-epoch-append.
	dirB := t.TempDir()
	b, err := Open(dirB, nodes, opts())
	if err != nil {
		t.Fatal(err)
	}
	var liveB []int
	applyOps(t, b, tape, 0, crashAt, &liveB)
	b.Kill()
	tearLastSegment(t, dirB)

	// Recover and check bit-identity at the crash point.
	b2, err := Open(dirB, nil, opts())
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	st := b2.Stats()
	if st.TruncatedBytes == 0 {
		t.Fatal("recovery did not truncate the torn epoch record")
	}
	if got := stateJSON(t, b2); !bytes.Equal(got, wantAtCrash) {
		t.Fatalf("recovered state differs from uninterrupted state at crash point:\n got  %s\n want %s", got, wantAtCrash)
	}

	// Finish the run on the recovered store: still bit-identical.
	applyOps(t, b2, tape, crashAt, len(tape), &liveB)
	gotFinal := stateJSON(t, b2)
	if !bytes.Equal(gotFinal, wantFinal) {
		t.Fatalf("post-recovery trajectory diverged:\n got  %s\n want %s", gotFinal, wantFinal)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}

	// Pin the trajectory against the golden file.
	golden := filepath.Join("testdata", "recovery_golden.json")
	if *updateRecoveryGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(gotFinal, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -recovery-golden.update): %v", err)
	}
	if !bytes.Equal(bytes.TrimSuffix(want, []byte{'\n'}), gotFinal) {
		t.Fatal("final state drifted from the recovery golden file")
	}
}

// tearLastSegment simulates a kill mid-append: a prefix of a valid-looking
// record lands on the WAL tail without its full frame.
func tearLastSegment(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no segment to tear")
	}
	f, err := os.OpenFile(filepath.Join(dir, last), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Half a frame header plus garbage: unmistakably torn.
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	nodes := testNodes(4, 5)
	opts := &Options{Fsync: journal.FsyncNone, SnapshotEvery: 8, SegmentBytes: 4 << 10, KeepSnapshots: 2}
	s, err := Open(dir, nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	tape := opTape(80, 3)
	var live []int
	applyOps(t, s, tape, 0, len(tape), &live)
	stats := s.Stats()
	if stats.Snapshots < 2 {
		t.Fatalf("expected automatic checkpoints, got %d", stats.Snapshots)
	}
	s.Kill() // skip the close-time checkpoint so reopen has a tail to replay

	s2, err := Open(dir, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2 := s2.Stats()
	if st2.Replayed >= int(stats.Records) {
		t.Fatalf("compaction ineffective: replayed %d of %d records", st2.Replayed, stats.Records)
	}
	if st2.Services != stats.Services {
		t.Fatalf("service count %d after recovery, want %d", st2.Services, stats.Services)
	}
	// Snapshot retention bounded the directory.
	count := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") {
			count++
		}
	}
	if count > 3 { // 2 kept + possibly one fresh from this boot
		t.Fatalf("%d snapshots retained, want <= 3", count)
	}
}

func TestOpenFreshNeedsNodes(t *testing.T) {
	if _, err := Open(t.TempDir(), nil, nil); err == nil {
		t.Fatal("fresh open without nodes succeeded")
	}
}

func TestOpenFromInitialState(t *testing.T) {
	// Build a state with the CLI-style path, then boot a daemon dir from it.
	nodes := testNodes(3, 9)
	c, err := vmalloc.NewCluster(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := vmalloc.Service{
		ReqElem: vmalloc.Of(0.1, 0.1), ReqAgg: vmalloc.Of(0.1, 0.1),
		NeedElem: vmalloc.Of(0.2, 0), NeedAgg: vmalloc.Of(0.2, 0),
	}
	id, ok, err := c.Add(svc)
	if err != nil || !ok {
		t.Fatalf("seed add: ok=%v err=%v", ok, err)
	}
	st := c.State()

	s, err := Open(t.TempDir(), nil, &Options{Fsync: journal.FsyncNone, InitialState: st})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, _, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Services) != 1 || got.Services[0].ID != id {
		t.Fatalf("initial state not loaded: %+v", got.Services)
	}
}

func TestStoreStatsCounters(t *testing.T) {
	s, err := Open(t.TempDir(), testNodes(4, 1), &Options{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	svc := vmalloc.Service{
		ReqElem: vmalloc.Of(0.1, 0.1), ReqAgg: vmalloc.Of(0.1, 0.1),
		NeedElem: vmalloc.Of(0.2, 0), NeedAgg: vmalloc.Of(0.2, 0),
	}
	id, _, err := s.Add(svc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reallocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Remove(id); err != nil {
		t.Fatal(err)
	}
	// An impossible service is rejected but not journaled.
	big := svc
	big.ReqElem = vmalloc.Of(1e6, 1e6)
	big.ReqAgg = vmalloc.Of(1e6, 1e6)
	if _, _, err := s.Add(big); err != ErrRejected {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	st := s.Stats()
	if st.Adds != 1 || st.Removes != 1 || st.Epochs != 1 || st.Rejected != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.Records != 3 { // add + epoch + remove; the rejection wrote nothing
		t.Fatalf("journaled %d records, want 3", st.Records)
	}
	if st.Services != 0 {
		t.Fatalf("services %d, want 0", st.Services)
	}
}

func TestMutationsFailAfterClose(t *testing.T) {
	s, err := Open(t.TempDir(), testNodes(3, 1), &Options{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	svc := vmalloc.Service{
		ReqElem: vmalloc.Of(0.1, 0.1), ReqAgg: vmalloc.Of(0.1, 0.1),
		NeedElem: vmalloc.Of(0.1, 0), NeedAgg: vmalloc.Of(0.1, 0),
	}
	if _, _, err := s.Add(svc); err != ErrClosed {
		t.Fatalf("Add after close: %v", err)
	}
	if _, err := s.Reallocate(); err != ErrClosed {
		t.Fatalf("Reallocate after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestStateSharedAcrossReads(t *testing.T) {
	s, err := Open(t.TempDir(), testNodes(3, 1), &Options{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, d1, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	if &d1[0] != &d2[0] {
		t.Fatal("published state not reused between mutations")
	}
	svc := vmalloc.Service{
		ReqElem: vmalloc.Of(0.1, 0.1), ReqAgg: vmalloc.Of(0.1, 0.1),
		NeedElem: vmalloc.Of(0.1, 0), NeedAgg: vmalloc.Of(0.1, 0),
	}
	if _, _, err := s.Add(svc); err != nil {
		t.Fatal(err)
	}
	_, d3, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(d1, d3) {
		t.Fatal("published state not refreshed after mutation")
	}
}

func BenchmarkStoreAdd(b *testing.B) {
	s, err := Open(b.TempDir(), testNodes(16, 1), &Options{Fsync: journal.FsyncNone, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	svc := vmalloc.Service{
		ReqElem: vmalloc.Of(1e-6, 1e-6), ReqAgg: vmalloc.Of(1e-6, 1e-6),
		NeedElem: vmalloc.Of(1e-6, 0), NeedAgg: vmalloc.Of(1e-6, 0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Add(svc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStoreRejectsInvalidThresholdAndServesNoStateAfterClose(t *testing.T) {
	s, err := Open(t.TempDir(), testNodes(3, 1), &Options{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetThreshold(-1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative threshold: %v, want ErrInvalid", err)
	}
	if err := s.SetThreshold(math.NaN()); !errors.Is(err, ErrInvalid) {
		t.Fatalf("NaN threshold: %v, want ErrInvalid", err)
	}
	// The rejected thresholds journaled nothing; snapshots stay valid.
	if st := s.Stats(); st.Records != 0 {
		t.Fatalf("invalid thresholds journaled %d records", st.Records)
	}
	// Warm the read cache, close, and demand ErrClosed on the fast path.
	if _, _, err := s.State(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.State(); !errors.Is(err, ErrClosed) {
		t.Fatalf("State after Close: %v, want ErrClosed", err)
	}
}
